(* Log-linear bucketing: values in [0, 256) are exact (unit-width
   buckets); each later power-of-two magnitude [256*2^(b-1), 256*2^b)
   is split into 128 sub-buckets of width 2^b. Worst-case relative
   error of a bucket midpoint is (2^b / 2) / (128 * 2^b) < 0.5%. The
   top magnitude reachable from [max_int] (62 bits) gives b = 54, so
   the whole range fits in 256 + 54*128 = 7168 buckets. *)

let sub_bits = 8
let sub_count = 1 lsl sub_bits (* 256 *)
let sub_half = sub_count / 2 (* 128 *)
let n_buckets = sub_count + ((62 - sub_bits) * sub_half)

type t = {
  counts : int array;
  mutable total : int;
  mutable vsum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { counts = Array.make n_buckets 0; total = 0; vsum = 0; vmin = max_int; vmax = 0 }

let bit_len v =
  let n = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then (n := !n + 32; v := !v lsr 32);
  if !v lsr 16 <> 0 then (n := !n + 16; v := !v lsr 16);
  if !v lsr 8 <> 0 then (n := !n + 8; v := !v lsr 8);
  if !v lsr 4 <> 0 then (n := !n + 4; v := !v lsr 4);
  if !v lsr 2 <> 0 then (n := !n + 2; v := !v lsr 2);
  if !v lsr 1 <> 0 then (n := !n + 1; v := !v lsr 1);
  !n + !v

let index_of v =
  if v < sub_count then v
  else
    let b = bit_len v - sub_bits in
    let slot = (v lsr b) - sub_half in
    sub_count + ((b - 1) * sub_half) + slot

(* Inclusive lower edge and exclusive upper edge of bucket [i]. *)
let bounds_of i =
  if i < sub_count then (i, i + 1)
  else
    let b = ((i - sub_count) / sub_half) + 1 in
    let slot = (i - sub_count) mod sub_half in
    let lower = (sub_half + slot) lsl b in
    (lower, lower + (1 lsl b))

let representative t i =
  let lower, upper = bounds_of i in
  let mid = lower + ((upper - lower) / 2) in
  let mid = if mid > t.vmax then t.vmax else mid in
  if mid < t.vmin then t.vmin else mid

let record_n t v ~n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    t.counts.(index_of v) <- t.counts.(index_of v) + n;
    t.total <- t.total + n;
    t.vsum <- t.vsum + (v * n);
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end

let record t v = record_n t v ~n:1
let count t = t.total
let min_value t = if t.total = 0 then 0 else t.vmin
let max_value t = if t.total = 0 then 0 else t.vmax
let sum t = t.vsum
let mean t = if t.total = 0 then 0.0 else float_of_int t.vsum /. float_of_int t.total

let quantile t q =
  if t.total = 0 then 0
  else if q >= 1.0 then t.vmax
  else begin
    let q = if q < 0.0 then 0.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let res = ref t.vmax and cum = ref 0 and i = ref 0 in
    (try
       while !i < n_buckets do
         let c = t.counts.(!i) in
         if c > 0 then begin
           cum := !cum + c;
           if !cum >= rank then begin
             res := representative t !i;
             raise Exit
           end
         end;
         incr i
       done
     with Exit -> ());
    !res
  end

let percentile t p = quantile t (p /. 100.0)

let merge_into ~into src =
  if src.total > 0 then begin
    Array.iteri
      (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
      src.counts;
    into.total <- into.total + src.total;
    into.vsum <- into.vsum + src.vsum;
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
  end

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let fold_nonzero f init t =
  let acc = ref init in
  for i = 0 to n_buckets - 1 do
    let c = t.counts.(i) in
    if c > 0 then begin
      let lower, upper = bounds_of i in
      acc := f ~acc:!acc ~lower ~upper ~count:c
    end
  done;
  !acc

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.total);
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("mean", Json.Float (mean t));
      ("p50", Json.Int (percentile t 50.0));
      ("p90", Json.Int (percentile t 90.0));
      ("p99", Json.Int (percentile t 99.0));
      ("p999", Json.Int (percentile t 99.9));
    ]

let summary t =
  Printf.sprintf "n=%d p50=%d p99=%d p99.9=%d max=%d" t.total
    (percentile t 50.0) (percentile t 99.0) (percentile t 99.9) (max_value t)
