type data_block = {
  block_label : string;
  block_addr : int;
  block_init : int array;
}

type t = {
  name : string;
  code : Instr.t array;
  data : data_block list;
  data_words : int;
  entry : int;
  code_labels : (string * int) list;
  branch_counted : bool;
}

let data_base = 0x10000

let label_addr t l = List.assoc l t.code_labels

let data_addr t l =
  match List.find_opt (fun b -> String.equal b.block_label l) t.data with
  | Some b -> b.block_addr
  | None -> raise Not_found

let data_image t =
  let img = Array.make t.data_words 0 in
  List.iter
    (fun b ->
      Array.blit b.block_init 0 img (b.block_addr - data_base)
        (Array.length b.block_init))
    t.data;
  img

let float_to_word f = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF

let word_to_float w = Int32.float_of_bits (Int32.of_int (w land 0xFFFFFFFF))

let disassemble t =
  let buf = Buffer.create 1024 in
  let labels_at addr =
    List.filter_map
      (fun (l, a) -> if a = addr then Some l else None)
      t.code_labels
  in
  Array.iteri
    (fun i instr ->
      List.iter (fun l -> Buffer.add_string buf (l ^ ":\n")) (labels_at i);
      Buffer.add_string buf (Printf.sprintf "%6d  %s\n" i (Instr.to_string instr)))
    t.code;
  Buffer.contents buf

let instruction_count t = Array.length t.code
