(** Assembler eDSL.

    Workloads are written against this interface: emit instructions with
    symbolic label targets, declare data blocks, and use the structured
    control-flow helpers; [assemble] resolves labels and produces a
    {!Program.t}.

    Passing [~branch_count:true] to {!assemble} runs the
    compiler-assisted branch-counting pass (see {!Branch_count}), which
    models the paper's GCC plugin for Armv7-A: a [Cntinc] is inserted
    immediately before every branch, call, and return. *)

type t

val create : string -> t
(** [create name] is an empty assembly unit. *)

(* --- emission ------------------------------------------------------- *)

val emit : t -> Instr.t -> unit

val label : t -> string -> unit
(** Bind a label at the current position. Raises [Invalid_argument] if
    the label is already bound. *)

val new_label : t -> string -> string
(** [new_label t hint] is a fresh label name (not yet bound). *)

(* --- data ----------------------------------------------------------- *)

val data : t -> string -> int array -> unit
(** Declare an initialised data block. Raises [Invalid_argument] on a
    duplicate block label. *)

val data_floats : t -> string -> float array -> unit
(** Initialised block of single-precision float words. *)

val space : t -> string -> int -> unit
(** [space t lbl n]: BSS block of [n] zero words. *)

(* --- shorthand emitters --------------------------------------------- *)

val nop : t -> unit
val mov : t -> Reg.t -> Reg.t -> unit
val movi : t -> Reg.t -> int -> unit
val la : t -> Reg.t -> string -> unit
val add : t -> Reg.t -> Reg.t -> Reg.t -> unit
val addi : t -> Reg.t -> Reg.t -> int -> unit
val sub : t -> Reg.t -> Reg.t -> Reg.t -> unit
val subi : t -> Reg.t -> Reg.t -> int -> unit
val mul : t -> Reg.t -> Reg.t -> Reg.t -> unit
val muli : t -> Reg.t -> Reg.t -> int -> unit
val div : t -> Reg.t -> Reg.t -> Reg.t -> unit
val divi : t -> Reg.t -> Reg.t -> int -> unit
val rem : t -> Reg.t -> Reg.t -> Reg.t -> unit
val remi : t -> Reg.t -> Reg.t -> int -> unit
val and_ : t -> Reg.t -> Reg.t -> Reg.t -> unit
val andi : t -> Reg.t -> Reg.t -> int -> unit
val or_ : t -> Reg.t -> Reg.t -> Reg.t -> unit
val ori : t -> Reg.t -> Reg.t -> int -> unit
val xor : t -> Reg.t -> Reg.t -> Reg.t -> unit
val xori : t -> Reg.t -> Reg.t -> int -> unit
val not_ : t -> Reg.t -> Reg.t -> unit
val shli : t -> Reg.t -> Reg.t -> int -> unit
val shri : t -> Reg.t -> Reg.t -> int -> unit
val shl : t -> Reg.t -> Reg.t -> Reg.t -> unit
val shr : t -> Reg.t -> Reg.t -> Reg.t -> unit
val ld : t -> Reg.t -> Reg.t -> int -> unit
val st : t -> Reg.t -> Reg.t -> int -> unit
val push : t -> Reg.t -> unit
val pop : t -> Reg.t -> unit
val b : t -> Instr.cond -> Reg.t -> Instr.operand -> string -> unit
val jmp : t -> string -> unit
val jal : t -> string -> unit
val ret : t -> unit
val syscall : t -> int -> unit
val halt : t -> unit

(* --- structured control flow ---------------------------------------- *)

val while_ : t -> Instr.cond -> Reg.t -> Instr.operand -> (unit -> unit) -> unit
(** [while_ t c r o body]: top-tested loop running while [r c o] holds. *)

val for_up : t -> Reg.t -> start:int -> stop:Instr.operand -> (unit -> unit) -> unit
(** [for_up t r ~start ~stop body]: [r] from [start] while [r < stop],
    incrementing by 1. The body must preserve [r]. *)

val if_ : t -> Instr.cond -> Reg.t -> Instr.operand -> ?else_:(unit -> unit) ->
  (unit -> unit) -> unit

(* --- assembly ------------------------------------------------------- *)

val assemble :
  ?entry:string -> ?branch_count:bool -> ?verify:bool -> t -> Program.t
(** Resolve labels and produce the program. [entry] defaults to address
    0. Raises [Invalid_argument] on undefined labels or (with
    [~branch_count:true]) if the program uses the reserved branch-counter
    register (see {!Check.reserved_register_violations}).

    [~verify:true] additionally runs the full static analyzer
    ({!Lint.analyze}) and raises [Invalid_argument] if the program is
    {!Lint.Rejected} — a reachable out-of-range or symbolic branch
    target, a fallthrough off the end of the code, an unbalanced stack,
    or (for branch-counted programs) a broken branch-count invariant. *)
