lib/rcoe/signature.ml: Array Mem Rcoe_machine
