(** Whetstone-like floating-point benchmark.

    Mirrors the structure that matters for Table II: the suite is a
    sequence of *several tight loops* (8 "modules": simple identities,
    array element updates, trigonometric-style polynomial evaluation,
    conditional jumps, square roots/divisions, …). Because a preemption
    lands inside a tight loop with high probability, CC-RCoE pays a
    breakpoint exception per loop iteration of drift when catching up,
    producing the ~20% TMR overhead (and the up-to-5% run-to-run standard
    deviation) the paper reports — versus Dhrystone's few percent. *)

val default_loops : int

val program : ?loops:int -> branch_count:bool -> unit -> Rcoe_isa.Program.t

val result_label : string
