(* rcoe_run: command-line front end.

   - `rcoe_run list` — available workloads
   - `rcoe_run run -w dhrystone -m lc -n 3 -a arm` — run one workload
     under a replication configuration and report timing and stats
   - `rcoe_run kv -m cc -n 2 --workload A` — run the KV/YCSB benchmark
   - `rcoe_run disasm -w whetstone` — show the assembled program *)

open Cmdliner
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness

let workload_names =
  [ "dhrystone"; "whetstone"; "membw"; "datarace"; "datarace-locked"; "md5sum" ]
  @ List.map (fun k -> "splash:" ^ k) Splash.names

let program_of_name name ~branch_count =
  match name with
  | "dhrystone" -> Dhrystone.program ~branch_count ()
  | "whetstone" -> Whetstone.program ~branch_count ()
  | "membw" -> Membw.program ~branch_count ()
  | "datarace" -> Datarace.program ~branch_count ()
  | "datarace-locked" -> Datarace.program ~locked:true ~branch_count ()
  | "md5sum" -> Md5sum.program ~branch_count ()
  | other ->
      let prefix = "splash:" in
      let plen = String.length prefix in
      if String.length other > plen && String.sub other 0 plen = prefix then
        Splash.program (String.sub other plen (String.length other - plen))
          ~branch_count ()
      else
        invalid_arg
          (Printf.sprintf "unknown workload %s (try `rcoe_run list`)" other)

(* --- common options --------------------------------------------------- *)

let mode_arg =
  let mode_conv = Arg.enum [ ("base", Config.Base); ("lc", Config.LC); ("cc", Config.CC) ] in
  Arg.(value & opt mode_conv Config.Base & info [ "m"; "mode" ] ~doc:"base | lc | cc")

let replicas_arg =
  Arg.(value & opt int 1 & info [ "n"; "replicas" ] ~doc:"replica count (1/2/3)")

let arch_arg =
  let arch_conv =
    Arg.enum [ ("x86", Rcoe_machine.Arch.X86); ("arm", Rcoe_machine.Arch.Arm) ]
  in
  Arg.(value & opt arch_conv Rcoe_machine.Arch.X86 & info [ "a"; "arch" ] ~doc:"x86 | arm")

let vm_arg = Arg.(value & flag & info [ "vm" ] ~doc:"run as a virtual-machine guest")

let level_arg =
  let level_conv =
    Arg.enum
      [ ("N", Config.Sync_none); ("A", Config.Sync_args); ("S", Config.Sync_vote) ]
  in
  Arg.(value & opt level_conv Config.Sync_args & info [ "level" ] ~doc:"sync level N | A | S")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"simulation seed")

let fast_catchup_arg =
  Arg.(value & flag
       & info [ "fast-catchup" ]
           ~doc:"PMU-assisted CC catch-up (the paper's Section VI proposal)")

let mk_config ?(fast_catchup = false) ?(masking = false) mode n arch vm level
    seed ~with_net =
  {
    (Runner.config_for ~mode ~nreplicas:n ~arch ~vm ~sync_level:level ~seed
       ~with_net ())
    with
    Config.fast_catchup;
    masking;
  }

(* --- commands ---------------------------------------------------------- *)

let list_cmd =
  let doc = "list available workloads" in
  let run () =
    List.iter print_endline workload_names;
    print_endline "kv (via the `kv` subcommand)"
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "run a workload under a replication configuration" in
  let wl_arg =
    Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")
  in
  let run wl mode n arch vm level seed fast_catchup =
    let branch_count = Wl.branch_count_for arch in
    let program = program_of_name wl ~branch_count in
    let config =
      mk_config ~fast_catchup mode n arch vm level seed ~with_net:false
    in
    let r = Runner.run_program ~config ~program () in
    let profile = Rcoe_machine.Arch.profile_of arch in
    Printf.printf "workload:   %s\n" wl;
    Printf.printf "config:     %s on %s%s, level %s\n"
      (Config.replicas_label config)
      (Rcoe_machine.Arch.to_string arch)
      (if vm then " (VM)" else "")
      (Config.sync_level_to_string level);
    Printf.printf "finished:   %b\n" r.Runner.finished;
    (match r.Runner.halted with
    | Some h -> Printf.printf "halted:     %s\n" (System.halt_reason_to_string h)
    | None -> ());
    Printf.printf "cycles:     %d (%.1f us at %d MHz)\n" r.Runner.cycles
      (Rcoe_machine.Arch.cycles_to_us profile r.Runner.cycles)
      profile.Rcoe_machine.Arch.freq_mhz;
    let st = r.Runner.stats in
    Printf.printf
      "sync:       %d rounds, %d ticks, %d votes, %d bp fires, %d FT rounds\n"
      st.System.rounds st.System.ticks_delivered st.System.votes
      st.System.bp_fires st.System.ft_rounds;
    let out = System.output r.Runner.sys 0 in
    if out <> "" then Printf.printf "output:     %S\n" out
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ wl_arg $ mode_arg $ replicas_arg $ arch_arg $ vm_arg
      $ level_arg $ seed_arg $ fast_catchup_arg)

let kv_cmd =
  let doc = "run the KV server under a YCSB workload" in
  let ycsb_arg =
    Arg.(value & opt string "A" & info [ "workload" ] ~doc:"YCSB workload A-F")
  in
  let records_arg =
    Arg.(value & opt int 200 & info [ "records" ] ~doc:"record count")
  in
  let ops_arg =
    Arg.(value & opt int 1000 & info [ "operations" ] ~doc:"operation count")
  in
  let masking_arg =
    Arg.(value & flag
         & info [ "masking" ]
             ~doc:"enable TMR->DMR error masking (requires -n 3)")
  in
  let run mode n arch level seed wl records operations masking =
    let config = mk_config ~masking mode n arch false level seed ~with_net:true in
    let res =
      Kv_run.run ~config ~workload:(Ycsb.workload_of_string wl) ~records
        ~operations ()
    in
    let c = res.Kv_run.counters in
    Printf.printf "config:      %s on %s, level %s, YCSB-%s\n"
      (Config.replicas_label config)
      (Rcoe_machine.Arch.to_string arch)
      (Config.sync_level_to_string level)
      wl;
    Printf.printf "throughput:  %.1f kops/s (run phase: %d ops, %d cycles)\n"
      res.Kv_run.kops_per_sec res.Kv_run.ops_completed res.Kv_run.elapsed_cycles;
    Printf.printf "client:      %d issued, %d completed, %d corrupted, %d errors\n"
      c.Ycsb.issued c.Ycsb.completed c.Ycsb.corrupted c.Ycsb.client_errors;
    match System.halted res.Kv_run.sys with
    | Some h -> Printf.printf "halted:      %s\n" (System.halt_reason_to_string h)
    | None -> ()
  in
  Cmd.v (Cmd.info "kv" ~doc)
    Term.(
      const run $ mode_arg $ replicas_arg $ arch_arg $ level_arg $ seed_arg
      $ ycsb_arg $ records_arg $ ops_arg $ masking_arg)

let disasm_cmd =
  let doc = "disassemble a workload program" in
  let wl_arg =
    Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")
  in
  let counted_arg =
    Arg.(value & flag & info [ "branch-count" ] ~doc:"apply the branch-counting pass")
  in
  let run wl counted =
    let program = program_of_name wl ~branch_count:counted in
    Printf.printf "%s: %d instructions, %d data words%s\n\n"
      program.Rcoe_isa.Program.name
      (Rcoe_isa.Program.instruction_count program)
      program.Rcoe_isa.Program.data_words
      (if counted then " (branch-counted)" else "");
    print_string (Rcoe_isa.Program.disassemble program)
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ wl_arg $ counted_arg)

let () =
  let doc = "redundant co-execution on a simulated COTS multicore" in
  let info = Cmd.info "rcoe_run" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; kv_cmd; disasm_cmd ]))
