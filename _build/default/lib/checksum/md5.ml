let mask32 = 0xFFFFFFFF

let k =
  Array.init 64 (fun i ->
      let x = Float.abs (sin (float_of_int (i + 1))) *. 4294967296.0 in
      int_of_float (Float.trunc x) land mask32)

let s =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

(* One 512-bit block; [m] holds 16 little-endian 32-bit words. *)
let process_block state m =
  let a0, b0, c0, d0 = state in
  let a = ref a0 and b = ref b0 and c = ref c0 and d = ref d0 in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then ((!b land !c) lor (lnot !b land !d) land mask32, i)
      else if i < 32 then
        ((!d land !b) lor (lnot !d land !c) land mask32, ((5 * i) + 1) mod 16)
      else if i < 48 then (!b lxor !c lxor !d, ((3 * i) + 5) mod 16)
      else (!c lxor (!b lor (lnot !d land mask32)), 7 * i mod 16)
    in
    let f = (f + !a + k.(i) + m.(g)) land mask32 in
    a := !d;
    d := !c;
    c := !b;
    b := (!b + rotl32 f s.(i)) land mask32
  done;
  ( (a0 + !a) land mask32,
    (b0 + !b) land mask32,
    (c0 + !c) land mask32,
    (d0 + !d) land mask32 )

let initial_state = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)

(* Pad per RFC 1321: 0x80, zeros, 64-bit little-endian bit length. *)
let padded_bytes s =
  let n = String.length s in
  let total = ((n + 8) / 64 * 64) + 64 in
  let buf = Bytes.make total '\000' in
  Bytes.blit_string s 0 buf 0 n;
  Bytes.set buf n '\x80';
  let bitlen = n * 8 in
  for i = 0 to 7 do
    Bytes.set buf (total - 8 + i) (Char.chr ((bitlen lsr (8 * i)) land 0xFF))
  done;
  buf

let digest_bytes buf =
  let nblocks = Bytes.length buf / 64 in
  let m = Array.make 16 0 in
  let state = ref initial_state in
  for blk = 0 to nblocks - 1 do
    for w = 0 to 15 do
      let base = (blk * 64) + (w * 4) in
      let byte i = Char.code (Bytes.get buf (base + i)) in
      m.(w) <- byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)
    done;
    state := process_block !state m
  done;
  let a, b, c, d = !state in
  let out = Bytes.create 16 in
  let put off v =
    for i = 0 to 3 do
      Bytes.set out (off + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
    done
  in
  put 0 a;
  put 4 b;
  put 8 c;
  put 12 d;
  Bytes.to_string out

let string s = digest_bytes (padded_bytes s)

let hex s =
  let d = string s in
  let buf = Buffer.create 32 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let words ws =
  let buf = Buffer.create (Array.length ws * 4) in
  Array.iter
    (fun w ->
      for i = 0 to 3 do
        Buffer.add_char buf (Char.chr ((w lsr (8 * i)) land 0xFF))
      done)
    ws;
  string (Buffer.contents buf)
