(** Block-compiled execution backend.

    The interpreter ({!Core.step}) re-decodes every instruction on every
    cycle: a wide match on the instruction constructor, another per
    register operand, another per operand/target kind. This module is a
    second execution backend that pays those costs once per code page:
    on first entry into a page every instruction on it is compiled into
    a pre-decoded closure (register indices, immediates, branch targets
    and ALU/condition functions resolved at decode time), the page's
    basic blocks are discovered and summarised with pre-summed minimum
    cycle charges, and subsequent steps dispatch through a flat closure
    array indexed by the instruction pointer.

    {b The contract with the oracle is cycle identity}, not mere
    semantic equivalence. {!step} mirrors the {!Core.step} shell
    decision for decision — halted / stall / breakpoint / bad-ip
    ordering, the [bp_suppress] re-arm, bus-wait accounting and its
    trace flush, and the jitter RNG draw on exactly the cycles the
    interpreter would draw it — and every compiled closure either
    reproduces the corresponding {!Core.exec} arm exactly or, for the
    stateful instructions (rep-strings, exclusives, kernel atomics),
    calls {!Core.exec} itself. Replicated execution, signatures, votes,
    breakpoints, checkpoints and traces therefore cannot distinguish the
    backends; [test/test_exec_blocks.ml] and the [bench exec] baseline
    rows enforce this bit for bit and cycle for cycle.

    {b Invalidation contract.} The compiler's only mutable input is the
    kernel's private code array (guest code is Harvard-separate from
    simulated data memory). Translations, register operands and memory
    contents are read live at execution time, so data writes, dirty-page
    traffic and page-table remaps need no invalidation hook. The cache
    must be invalidated exactly when the code array changes: a code
    patch ([Kernel.patch_code] / the [code_patch] syscall), a snapshot
    restore that rewinds past one, or a re-integration adopt. Use
    {!invalidate_addr} for a single patched location and
    {!invalidate_all} for wholesale replacement. *)

(** Which execution backend a kernel/replica should run. [Interp] is
    the oracle interpreter ({!Core.step}); [Blocks] is this module. *)
type backend = Interp | Blocks

val backend_to_string : backend -> string
(** ["interp"] or ["blocks"]. *)

type t
(** A block cache bound to one core and its environment. Create one per
    kernel; it shares the core's mutable state and observes every
    architectural effect the interpreter would. *)

(** A compiled basic block: [b_len] instructions starting at
    [b_first], ending at a control transfer (or page edge), with the
    minimum cycle charge — one cycle per instruction plus the profile's
    guaranteed memory-access stalls — pre-summed in [b_min_cycles].
    Blocks are decode/caching metadata: execution still proceeds one
    architectural cycle per {!step} so that bus arbitration, IRQ/IPI
    delivery points and sync phases interleave exactly as under the
    interpreter. *)
type block = { b_first : int; b_len : int; b_min_cycles : int }

(** Lifetime counters for the cache, surfaced in tests and benches. *)
type stats = {
  mutable pages_decoded : int;  (** pages compiled (including re-compiles) *)
  mutable blocks_compiled : int;  (** basic blocks discovered *)
  mutable ops_compiled : int;  (** instruction slots compiled *)
  mutable invalidations : int;  (** pages thrown away *)
}

val create : Core.t -> Core.env -> t
(** [create core env] builds an empty cache over [env.code]. Nothing is
    compiled until execution first enters a page. *)

val step : t -> Core.step_result
(** One architectural cycle, observably identical to
    [Core.step core env] on the same state: same cycle charge, same
    stall/breakpoint/fault/event outcomes, same trace emissions, same
    RNG consumption. Lazily compiles the current page on first entry. *)

val run : t -> buses:Bus.t array -> fuel:int -> int * Core.event option
(** [run t ~buses ~fuel] executes up to [fuel] architectural cycles in
    one call, for the sequential engine's quiescent-burst fast path:
    each iteration refills every lane in [buses] (exactly
    {!Machine.tick}'s bus work on a device-free machine) and then
    performs one {!step}, absorbing [Ran]/[Stalled] results and
    returning at the first event. Returns the number of cycles consumed
    — including the cycle of a terminating event — and that event, if
    any; the caller must add the consumed count to [Machine.now].

    Preconditions, checked by the caller: the core is not halted, no
    breakpoint is armed ([bp = None], [bp_suppress] clear), tracing is
    disabled, and no device-visible activity (frame delivery, raised
    IRQ line), IPI delivery or preemption tick can fall within [fuel]
    cycles. Devices may exist: a per-cycle [dev_tick] over a quiescent
    window only refreshes the device's cycle cache, so the caller clips
    [fuel] strictly short of [Netdev.next_event] and runs
    [Machine.tick_devices] once after accounting the consumed cycles —
    before dispatching a terminating event, whose handler may touch
    device registers. Under those conditions a burst of [n] cycles is
    bit-identical to [n] successive [Machine.tick] + {!step} pairs —
    the per-cycle checks it hoists are all loop-invariant. *)

val invalidate_addr : t -> int -> unit
(** Drop the compiled page containing the given code address (no-op if
    the address is out of range or the page was never compiled). Call
    after patching a single instruction. *)

val invalidate_all : t -> unit
(** Drop every compiled page. Call after wholesale code replacement
    (snapshot restore across a patch, re-integration adopt). *)

val stats : t -> stats
(** Live counters; mutated in place as the cache operates. *)

val blocks : t -> block list
(** Basic-block summaries of every currently-compiled page, in
    discovery order. Diagnostic surface for tests and benches. *)
