(* Public facade over the replication scheduler and its execution
   engines. All state and semantics live in [Sched]; [run] dispatches on
   the configured detection mode, then engine. Replay detection owns its
   own loop ([Engine_replay]: sequential stepping plus chunk cuts and
   checker domains), so it pre-empts the engine dispatch — [validate]
   already pins [engine = Sequential] for it. *)

include Sched

let run ?stop t ~max_cycles =
  if (config t).Config.detection = Config.Replay then
    Engine_replay.run ?stop t ~max_cycles
  else
    match (config t).Config.engine with
    | Config.Sequential -> Engine_seq.run ?stop t ~max_cycles
    | Config.Parallel -> Engine_par.run ?stop t ~max_cycles

let replay_drain t =
  if (config t).Config.detection = Config.Replay then Engine_replay.drain t
