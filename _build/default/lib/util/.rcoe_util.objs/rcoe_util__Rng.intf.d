lib/util/rng.mli:
