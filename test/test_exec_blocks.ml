(* Differential suite for the block-compiled execution backend
   ([Rcoe_machine.Blockc]): the interpreter is the oracle, and [Blocks]
   must be bit-for-bit and cycle-for-cycle identical to it — final
   cycle, outputs, sync stats, metrics, event logs and cycle-stamped
   trace events — across LC/CC x DMR/TMR on both engines, under fault
   injection with rollback recovery, and through the ingress-checksum
   drop path. Plus the backend-specific hazards: a twin-core lockstep
   run against [Core.step] (including a breakpoint planted on a
   compiled block and the bp_suppress single-step resume), an
   interrupt that lands mid-[Rep_movs] under CC catch-up, and the
   self-modifying-code invalidation regression through the
   [code_patch] syscall. *)

open Rcoe_machine
open Rcoe_kernel
open Rcoe_isa
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
module Trace = Rcoe_obs.Trace
module Metrics = Rcoe_obs.Metrics
module Outcome = Rcoe_faults.Outcome

let x86 = Arch.X86

(* --- twin-core lockstep against the oracle ------------------------------ *)

(* Two identical kernels on two identical machines, one per backend,
   stepped strictly in lockstep: after every single cycle the step
   results and the full architectural core state must agree. This is
   the finest-grained oracle check — a divergence surfaces at the exact
   cycle it happens, not at the end of a run. *)

let lockstep_program =
  let a = Asm.create "lockstep" in
  Asm.space a "buf" 16;
  Asm.label a "main";
  Asm.movi a Reg.R4 0;
  Asm.la a Reg.R5 "buf";
  Asm.for_up a Reg.R7 ~start:0 ~stop:(Instr.Imm 40) (fun () ->
      Asm.label a "hot";
      Asm.addi a Reg.R4 Reg.R4 3;
      Asm.andi a Reg.R8 Reg.R4 15;
      Asm.add a Reg.R8 Reg.R8 Reg.R5;
      Asm.st a Reg.R8 Reg.R4 0;
      Asm.ld a Reg.R6 Reg.R8 0;
      Asm.push a Reg.R6;
      Asm.pop a Reg.R6;
      Asm.xori a Reg.R4 Reg.R4 0x11);
  Asm.andi a Reg.R0 Reg.R4 15;
  Asm.addi a Reg.R0 Reg.R0 65;
  Asm.syscall a Syscall.sys_putchar;
  Asm.syscall a Syscall.sys_exit;
  Asm.assemble ~entry:"main" a

let null_callbacks =
  { Kernel.cb_info = (fun _ _ -> 0); cb_kernel_update = (fun _ _ -> ()) }

let mk_twin backend =
  let lay = Layout.compute ~nreplicas:1 ~user_words:16384 in
  let machine =
    Machine.create ~profile:Arch.x86 ~mem_words:lay.Layout.total_words
      ~ncores:1 ~seed:5 ()
  in
  let k =
    Kernel.create ~backend ~machine ~rid:0 ~core_id:0 ~layout:lay
      ~program:lockstep_program ~callbacks:null_callbacks ()
  in
  Kernel.setup_address_space k;
  ignore (Kernel.spawn k ~entry:lockstep_program.Program.entry ~arg:0);
  Kernel.start k;
  (machine, k)

let check_cores_equal ~cycle ca cb =
  let fail what = Alcotest.failf "lockstep diverged at cycle %d: %s" cycle what in
  if ca.Core.ip <> cb.Core.ip then fail "ip";
  if ca.Core.cycles <> cb.Core.cycles then fail "cycles";
  if ca.Core.instret <> cb.Core.instret then fail "instret";
  if ca.Core.stall <> cb.Core.stall then fail "stall";
  if ca.Core.bus_wait <> cb.Core.bus_wait then fail "bus_wait";
  if ca.Core.hw_branches <> cb.Core.hw_branches then fail "hw_branches";
  if ca.Core.last_was_cntinc <> cb.Core.last_was_cntinc then fail "cntinc flag";
  if ca.Core.bp_suppress <> cb.Core.bp_suppress then fail "bp_suppress";
  if ca.Core.halted <> cb.Core.halted then fail "halted";
  if ca.Core.regs <> cb.Core.regs then fail "registers";
  if ca.Core.fregs <> cb.Core.fregs then fail "fp registers"

let test_lockstep_oracle () =
  let ma, ka = mk_twin Blockc.Interp and mb, kb = mk_twin Blockc.Blocks in
  let ca = Kernel.core ka and cb = Kernel.core kb in
  let hot = Program.label_addr lockstep_program "hot" in
  let bp_fired = ref 0 and suppressed = ref 0 in
  let exited = ref false in
  let cycle = ref 0 in
  while (not !exited) && !cycle < 20_000 do
    incr cycle;
    Machine.tick ma;
    Machine.tick mb;
    let ra = Kernel.step ka and rb = Kernel.step kb in
    if ra <> rb then
      Alcotest.failf "lockstep diverged at cycle %d: step results differ"
        !cycle;
    check_cores_equal ~cycle:!cycle ca cb;
    (match ra with
    | Core.Ran | Core.Stalled -> ()
    | Core.Event (Core.Ev_syscall n) ->
        if n = Syscall.sys_exit then exited := true
        else begin
          ignore (Kernel.handle_syscall ka n);
          ignore (Kernel.handle_syscall kb n)
        end
    | Core.Event Core.Ev_breakpoint ->
        (* The engine's single-step resume pair: suppress, step past,
           let the re-arm logic clear the flag — on both backends. *)
        incr bp_fired;
        ca.Core.bp_suppress <- true;
        cb.Core.bp_suppress <- true;
        incr suppressed;
        if !bp_fired >= 2 then begin
          ca.Core.bp <- None;
          cb.Core.bp <- None
        end
    | Core.Event (Core.Ev_fault _) ->
        Alcotest.failf "unexpected fault at cycle %d" !cycle
    | Core.Event Core.Ev_halt -> exited := true);
    (* Plant a breakpoint on the (by now compiled) loop body mid-run. *)
    if !cycle = 120 then begin
      ca.Core.bp <- Some hot;
      cb.Core.bp <- Some hot
    end
  done;
  Alcotest.(check bool) "program completed" true !exited;
  Alcotest.(check bool)
    (Printf.sprintf "breakpoint on compiled block fired (%d)" !bp_fired)
    true (!bp_fired >= 2);
  Alcotest.(check bool) "single-step resume exercised" true (!suppressed >= 2);
  Alcotest.(check string) "same console output"
    (Buffer.contents (Kernel.output ka))
    (Buffer.contents (Kernel.output kb));
  (* The Blocks twin actually compiled something. *)
  match Kernel.block_cache kb with
  | None -> Alcotest.fail "Blocks kernel has no cache"
  | Some bc ->
      let st = Blockc.stats bc in
      Alcotest.(check bool) "pages compiled" true (st.Blockc.pages_decoded >= 1);
      Alcotest.(check bool) "blocks discovered" true
        (st.Blockc.blocks_compiled >= 3)

(* --- full-system sweep: LC/CC x DMR/TMR x Seq/Par ----------------------- *)

let backend_cfg backend cfg =
  {
    cfg with
    Config.exec_backend = backend;
    trace = Some { Trace.capacity = 1 lsl 16 };
  }

let sweep_program () =
  Md5sum.program ~message_words:48 ~iters:4 ~seed:2 ~branch_count:false ()

let run_sweep cfg backend =
  let sys =
    System.create ~config:(backend_cfg backend cfg) ~program:(sweep_program ())
  in
  System.run sys ~max_cycles:80_000_000;
  sys

let backend_pair ~label cfg =
  let a = run_sweep cfg Config.Interp and b = run_sweep cfg Config.Blocks in
  Alcotest.(check bool) (label ^ ": interp run completed") true
    (System.finished a || System.halted a <> None);
  Test_engine_par.check_identical ~label a b;
  (a, b)

let sweep_cfg ~mode ~nreplicas ~engine =
  {
    (Runner.config_for ~mode ~nreplicas ~arch:x86 ~seed:7 ()) with
    Config.engine;
    (* Parallel replication requires exception barriers; keep both
       engines' rows apples-to-apples. *)
    exception_barriers = (mode <> Config.Base);
  }

let test_sweep_seq () =
  List.iter
    (fun (mode, n) ->
      let label =
        Printf.sprintf "%s-%d/seq" (Config.mode_to_string mode) n
      in
      ignore
        (backend_pair ~label (sweep_cfg ~mode ~nreplicas:n ~engine:Config.Sequential)))
    [
      (Config.Base, 1);
      (Config.LC, 2);
      (Config.LC, 3);
      (Config.CC, 2);
      (Config.CC, 3);
    ]

let test_sweep_par () =
  List.iter
    (fun (mode, n) ->
      let label =
        Printf.sprintf "%s-%d/par" (Config.mode_to_string mode) n
      in
      ignore
        (backend_pair ~label (sweep_cfg ~mode ~nreplicas:n ~engine:Config.Parallel)))
    [ (Config.LC, 3); (Config.CC, 2) ]

let test_sweep_exercises_catchup () =
  (* The CC rows must actually have used breakpoints and single-steps
     on compiled blocks, or the sweep proves less than it claims. A
     short tick interval on a jittery branch-heavy workload forces the
     laggard-catch-up machinery on nearly every tick. *)
  let cfg =
    {
      (sweep_cfg ~mode:Config.CC ~nreplicas:2 ~engine:Config.Sequential) with
      Config.tick_interval = 20_000;
      barrier_timeout = 2_000_000;
    }
  in
  let program = Whetstone.program ~loops:60 ~branch_count:false () in
  let run backend =
    let sys = System.create ~config:(backend_cfg backend cfg) ~program in
    System.run sys ~max_cycles:50_000_000;
    sys
  in
  let a = run Config.Interp and b = run Config.Blocks in
  Alcotest.(check bool) "interp run completed" true (System.finished a);
  Test_engine_par.check_identical ~label:"CC-2/seq-catchup" a b;
  let count name =
    match Metrics.find_counter (System.metrics b) name with
    | Some c -> Metrics.count c
    | None -> 0
  in
  Alcotest.(check bool) "bp fires on compiled blocks" true
    (count "catchup.bp_fires" > 0);
  Alcotest.(check bool) "single-step resumes on compiled blocks" true
    (count "catchup.single_steps" > 0)

(* --- fault injection + rollback recovery -------------------------------- *)

let test_recovery_differential () =
  List.iter
    (fun fault ->
      let run backend =
        Fault_experiments.recovery_trial ~exec_backend:backend
          ~checkpointing:true ~fault ~seed:2 ()
      in
      let oa, ra, ca, la = run Config.Interp in
      let ob, rb, cb, lb = run Config.Blocks in
      let tag =
        match fault with `Transient -> "transient" | `Persistent -> "persistent"
      in
      Alcotest.(check string) (tag ^ ": outcome") (Outcome.to_string oa)
        (Outcome.to_string ob);
      Alcotest.(check int) (tag ^ ": rollbacks") ra rb;
      Alcotest.(check int) (tag ^ ": checkpoints") ca cb;
      Alcotest.(check (list (float 0.0))) (tag ^ ": recovery latencies") la lb)
    [ `Transient; `Persistent ]

(* --- ingress-checksum drop ---------------------------------------------- *)

let test_ingress_drop_differential () =
  let run backend =
    Fault_experiments.ingress_trial ~exec_backend:backend ~mode:Config.CC
      ~n:2 ~ingress_check:true ~fault:true ~seed:3 ()
  in
  let oa, ra = run Config.Interp and ob, rb = run Config.Blocks in
  Alcotest.(check string) "outcome" (Outcome.to_string oa)
    (Outcome.to_string ob);
  Alcotest.(check int) "completions" ra.Loadgen.completed rb.Loadgen.completed;
  Alcotest.(check int) "run-phase cycles" ra.Loadgen.elapsed_cycles
    rb.Loadgen.elapsed_cycles;
  Alcotest.(check int) "outcome digest" ra.Loadgen.outcome_sorted_digest
    rb.Loadgen.outcome_sorted_digest;
  Alcotest.(check int) "ingress checks" ra.Loadgen.ingress_checked
    rb.Loadgen.ingress_checked;
  Alcotest.(check int) "ingress drops" ra.Loadgen.ingress_dropped
    rb.Loadgen.ingress_dropped;
  Alcotest.(check bool) "counters" true
    (ra.Loadgen.counters = rb.Loadgen.counters);
  Alcotest.(check bool) "the drop path actually fired" true
    (ra.Loadgen.ingress_dropped > 0)

(* --- interrupt mid-Rep_movs under CC catch-up --------------------------- *)

let test_mid_rep_movs_differential () =
  (* A rep-string-heavy workload with a short tick interval: IPIs land
     while a replica sits mid-[Rep_movs], forcing the step-past-and-
     defer-publish path (paper Section III-D) through the compiled
     backend's oracle fallback. *)
  let cfg =
    Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~seed:9
      ~tick_interval:2_000 ()
  in
  let program = Membw.program ~buffer_words:1024 ~reps:3 ~branch_count:false () in
  let run backend =
    let sys = System.create ~config:(backend_cfg backend cfg) ~program in
    System.run sys ~max_cycles:80_000_000;
    sys
  in
  let a = run Config.Interp and b = run Config.Blocks in
  Alcotest.(check bool) "finished" true (System.finished a);
  Test_engine_par.check_identical ~label:"mid-rep" a b;
  let rep_steps sys =
    match Metrics.find_counter (System.metrics sys) "catchup.rep_steps" with
    | Some c -> Metrics.count c
    | None -> 0
  in
  Alcotest.(check bool) "an IPI landed mid-rep-string" true (rep_steps a > 0)

(* --- self-modifying code: invalidation regression ------------------------ *)

(* A function returns a constant baked into a [Mov]; the program calls
   it, patches that very instruction through the [code_patch] syscall,
   and calls it again. A stale pre-decoded closure would keep returning
   the old constant — output "BB" instead of "BJ" — so this pins the
   patch -> invalidate -> recompile chain. Two-pass assembly: the slot
   address is read off a first assembly of the identical program. *)

let smc_program ~slot_addr =
  let a = Asm.create "smc" in
  Asm.label a "main";
  Asm.jal a "f";
  Asm.addi a Reg.R0 Reg.R0 65;
  Asm.syscall a Syscall.sys_putchar;
  Asm.movi a Reg.R0 slot_addr;
  Asm.movi a Reg.R1 1 (* kind: Mov rd, #imm *);
  Asm.movi a Reg.R2 0 (* rd = r0 *);
  Asm.movi a Reg.R3 9;
  Asm.syscall a Syscall.sys_code_patch;
  Asm.jal a "f";
  Asm.addi a Reg.R0 Reg.R0 65;
  Asm.syscall a Syscall.sys_putchar;
  Asm.syscall a Syscall.sys_exit;
  Asm.label a "f";
  Asm.label a "slot";
  Asm.movi a Reg.R0 1;
  Asm.ret a;
  Asm.assemble ~entry:"main" a

let test_smc_invalidation () =
  let slot_addr = Program.label_addr (smc_program ~slot_addr:0) "slot" in
  let program = smc_program ~slot_addr in
  Alcotest.(check int) "two-pass slot address stable" slot_addr
    (Program.label_addr program "slot");
  let run backend =
    let cfg =
      backend_cfg backend
        (Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 ())
    in
    let sys = System.create ~config:cfg ~program in
    System.run sys ~max_cycles:2_000_000;
    sys
  in
  let a = run Config.Interp and b = run Config.Blocks in
  Alcotest.(check bool) "finished" true (System.finished a);
  Test_engine_par.check_identical ~label:"smc" a b;
  Alcotest.(check string) "patched constant visible" "BJ"
    (System.output b 0);
  match Kernel.block_cache (System.kernel b 0) with
  | None -> Alcotest.fail "Blocks run has no cache"
  | Some bc ->
      let st = Blockc.stats bc in
      Alcotest.(check bool) "patch invalidated the page" true
        (st.Blockc.invalidations >= 1);
      Alcotest.(check bool) "page recompiled after the patch" true
        (st.Blockc.pages_decoded >= 2)

let suite =
  [
    Alcotest.test_case
      "twin-core lockstep vs oracle (+ breakpoint on compiled block)" `Quick
      test_lockstep_oracle;
    Alcotest.test_case "healthy sweep: Base/LC/CC x DMR/TMR, sequential"
      `Slow test_sweep_seq;
    Alcotest.test_case "healthy sweep: LC-T/CC-D, parallel engine" `Slow
      test_sweep_par;
    Alcotest.test_case "CC sweep exercises catch-up breakpoints" `Slow
      test_sweep_exercises_catchup;
    Alcotest.test_case "fault + rollback recovery differential" `Slow
      test_recovery_differential;
    Alcotest.test_case "ingress-drop differential" `Slow
      test_ingress_drop_differential;
    Alcotest.test_case "interrupt mid-Rep_movs under CC catch-up" `Slow
      test_mid_rep_movs_differential;
    Alcotest.test_case "self-modifying code invalidation regression" `Quick
      test_smc_invalidation;
  ]
