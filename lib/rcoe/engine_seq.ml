(* The sequential execution engine: the reference semantics. Every
   simulated cycle ticks the machine, steps each replica in rid order on
   the calling domain, and advances the round state machine. The
   parallel engine ([Engine_par]) is required to be bit-for-bit
   equivalent to this loop. *)

open Sched

let run ?stop t ~max_cycles =
  let start = now t in
  let continue_ = ref true in
  while
    !continue_ && t.halt = None
    && (not (finished t))
    && now t - start < max_cycles
  do
    classic_cycle t;
    (match stop with
    | Some f when now t land 127 = 0 -> if f t then continue_ := false
    | _ -> ())
  done
