type phase = Queue | Ring | Service | Drain

(* Stall classes chargeable against an open request. Compute is never
   stored: it is defined as the end-to-end remainder at receipt, which
   is what makes the attribution sum exact by construction. *)
type cls = Sync | Vote | Ckpt | Roll | Ingress | Replay

type record = {
  id : int;
  t_inject : int;
  mutable t_rx : int;
  mutable t_consume : int;
  mutable t_tx : int;
  mutable t_done : int;
  mutable t_drop : int;  (* cycle of the last ingress drop of this id *)
  mutable status : int;
  mutable a_sync : int;
  mutable a_vote : int;
  mutable a_ckpt : int;
  mutable a_roll : int;
  mutable a_ingress : int;
  mutable a_replay : int;
  mutable a_compute : int;
}

type t = {
  keep : int;
  open_reqs : (int, record) Hashtbl.t;
  mutable open_hwm : int;
  mutable n_completed : int;
  mutable retained : record list; (* newest first, trimmed to [keep] *)
  mutable n_retained : int;
  h_e2e : Hdr.t;
  h_queue : Hdr.t;
  h_ring : Hdr.t;
  h_service : Hdr.t;
  h_drain : Hdr.t;
  h_detect : Hdr.t;
  h_stall : Hdr.t;
  h_ingress : Hdr.t;
  mutable ag_sync : int;
  mutable ag_vote : int;
  mutable ag_ckpt : int;
  mutable ag_roll : int;
  mutable ag_ingress : int;
  mutable ag_replay : int;
  mutable ag_compute : int;
  mutable ag_total : int;
  (* Trace-absorption state. *)
  mutable seen_events : int;
  removed : (int, unit) Hashtbl.t; (* downgraded replica ids *)
  mutable open_span : (cls * int) option; (* followed replica's live span *)
  mutable last_inj : int; (* cycle of last unconsumed injection; -1 none *)
}

let create ?(keep = 4096) () =
  {
    keep = max 1 keep;
    open_reqs = Hashtbl.create 64;
    open_hwm = 0;
    n_completed = 0;
    retained = [];
    n_retained = 0;
    h_e2e = Hdr.create ();
    h_queue = Hdr.create ();
    h_ring = Hdr.create ();
    h_service = Hdr.create ();
    h_drain = Hdr.create ();
    h_detect = Hdr.create ();
    h_stall = Hdr.create ();
    h_ingress = Hdr.create ();
    ag_sync = 0;
    ag_vote = 0;
    ag_ckpt = 0;
    ag_roll = 0;
    ag_ingress = 0;
    ag_replay = 0;
    ag_compute = 0;
    ag_total = 0;
    seen_events = 0;
    removed = Hashtbl.create 4;
    open_span = None;
    last_inj = -1;
  }

let inject t ~id ~now =
  if not (Hashtbl.mem t.open_reqs id) then begin
    Hashtbl.replace t.open_reqs id
      {
        id;
        t_inject = now;
        t_rx = -1;
        t_consume = -1;
        t_tx = -1;
        t_done = -1;
        t_drop = -1;
        status = -1;
        a_sync = 0;
        a_vote = 0;
        a_ckpt = 0;
        a_roll = 0;
        a_ingress = 0;
        a_replay = 0;
        a_compute = 0;
      };
    let n = Hashtbl.length t.open_reqs in
    if n > t.open_hwm then t.open_hwm <- n
  end

let stamp t ~id ~now f =
  match Hashtbl.find_opt t.open_reqs id with
  | Some r -> f r now
  | None -> ()

let rx t ~id ~now = stamp t ~id ~now (fun r now -> if r.t_rx < 0 then r.t_rx <- now)
let consume t ~id ~now =
  stamp t ~id ~now (fun r now -> if r.t_consume < 0 then r.t_consume <- now)
let tx t ~id ~now = stamp t ~id ~now (fun r now -> if r.t_tx < 0 then r.t_tx <- now)

(* Charge [cycles] of class [c] to one open request. *)
let charge r c cycles =
  if cycles > 0 then
    match c with
    | Sync -> r.a_sync <- r.a_sync + cycles
    | Vote -> r.a_vote <- r.a_vote + cycles
    | Ckpt -> r.a_ckpt <- r.a_ckpt + cycles
    | Roll -> r.a_roll <- r.a_roll + cycles
    | Ingress -> r.a_ingress <- r.a_ingress + cycles
    | Replay -> r.a_replay <- r.a_replay + cycles

(* A closed stall span [start, stop): each open request is charged its
   overlap with the span (from its inject time on). *)
let apply_span t c start stop =
  if stop > start then
    Hashtbl.iter
      (fun _ r ->
        let s = if r.t_inject > start then r.t_inject else start in
        charge r c (stop - s))
      t.open_reqs

(* A forward-stall event of [cost] cycles at its emission point
   (checkpoint capture, rollback restore): every open request is about
   to sit through it in full. Receipt-time clamping bounds any
   overcharge for requests that complete inside the span. *)
let apply_cost t c cost =
  if cost > 0 then Hashtbl.iter (fun _ r -> charge r c cost) t.open_reqs

let record_detection t ts =
  if t.last_inj >= 0 && ts >= t.last_inj then begin
    let lat = ts - t.last_inj in
    Hashtbl.iter (fun _ _r -> Hdr.record t.h_detect lat) t.open_reqs;
    t.last_inj <- -1
  end

let followed t =
  let rec go i = if Hashtbl.mem t.removed i then go (i + 1) else i in
  go 0

let class_of_phase = function
  | Trace.Gather_wait | Trace.Chase | Trace.Catchup | Trace.Pmu_catchup ->
      Some Sync
  | Trace.Vote_wait | Trace.Rendezvous -> Some Vote
  | Trace.Ipi_wait -> None (* replica still executing user code *)

let close_span t stop =
  match t.open_span with
  | Some (c, start) ->
      t.open_span <- None;
      apply_span t c start stop
  | None -> ()

let absorb_event t { Trace.ts; rid; body } =
  match body with
  | Trace.Phase_begin ph when rid = followed t -> (
      match class_of_phase ph with
      | Some c ->
          close_span t ts;
          t.open_span <- Some (c, ts)
      | None -> ())
  | Trace.Phase_end ph when rid = followed t -> (
      match class_of_phase ph with Some _ -> close_span t ts | None -> ())
  | Trace.Checkpoint { cost; _ } -> apply_cost t Ckpt cost
  | Trace.Rollback { cost; _ } ->
      record_detection t ts;
      apply_cost t Roll cost
  | Trace.Downgrade { rid = down; cost } ->
      record_detection t ts;
      if down = followed t then close_span t ts;
      Hashtbl.replace t.removed down ();
      apply_cost t Roll cost
  | Trace.Ingress_drop { id; _ } -> (
      (* The drop is itself a detection (the injected corruption became
         observable at consume), and opens a redelivery stall for the
         dropped request: from the drop until the retransmitted frame is
         consumed. The id comes from the corrupt frame, so it may be
         unparseable (-1) or itself damaged — then no request matches
         and only the detection is recorded. *)
      record_detection t ts;
      match Hashtbl.find_opt t.open_reqs id with
      | Some r -> r.t_drop <- ts
      | None -> ())
  | Trace.Replay_verdict { chunk_end; ok; _ } ->
      (* A mismatch verdict closes a detection-lag window: the fault was
         live on the primary from the chunk's end until the checker
         caught it. Requests open during that window were served (or
         queued) under undetected-fault shadow and are about to be
         replayed past the rollback — charge them the lag span. Clean
         verdicts cost the open requests nothing (checkers run on host
         domains, off the simulated clock). *)
      if not ok then begin
        record_detection t ts;
        apply_span t Replay chunk_end ts
      end
  | Trace.Injection _ -> t.last_inj <- ts
  | _ -> ()

let absorb t tr =
  let total = Trace.total tr in
  if total > t.seen_events then begin
    let evs = Trace.events_since tr t.seen_events in
    t.seen_events <- total;
    List.iter (absorb_event t) evs
  end

let receipt t ~id ~now ~status =
  match Hashtbl.find_opt t.open_reqs id with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.open_reqs id;
      r.t_done <- now;
      r.status <- status;
      let total = max 0 (now - r.t_inject) in
      Hdr.record t.h_e2e total;
      if r.t_rx >= 0 then Hdr.record t.h_queue (max 0 (r.t_rx - r.t_inject));
      if r.t_rx >= 0 && r.t_consume >= 0 then
        Hdr.record t.h_ring (max 0 (r.t_consume - r.t_rx));
      if r.t_consume >= 0 && r.t_tx >= 0 then
        Hdr.record t.h_service (max 0 (r.t_tx - r.t_consume));
      if r.t_tx >= 0 then Hdr.record t.h_drain (max 0 (now - r.t_tx));
      (* An ingress drop stalls its request from the drop until the
         retransmitted frame is finally consumed (or, failing that,
         until receipt): the redelivery wait the checksum path trades
         rollback for. *)
      if r.t_drop >= 0 then begin
        let stop = if r.t_consume > r.t_drop then r.t_consume else now in
        charge r Ingress (stop - r.t_drop)
      end;
      (* Clamp stall charges into the request's own window, then define
         compute as the remainder: the six classes sum to [total]
         exactly. *)
      let s =
        r.a_sync + r.a_vote + r.a_ckpt + r.a_roll + r.a_ingress + r.a_replay
      in
      if s > total && s > 0 then begin
        r.a_sync <- r.a_sync * total / s;
        r.a_vote <- r.a_vote * total / s;
        r.a_ckpt <- r.a_ckpt * total / s;
        r.a_roll <- r.a_roll * total / s;
        r.a_ingress <- r.a_ingress * total / s;
        r.a_replay <- r.a_replay * total / s
      end;
      r.a_compute <-
        total
        - (r.a_sync + r.a_vote + r.a_ckpt + r.a_roll + r.a_ingress + r.a_replay);
      if r.a_roll > 0 then Hdr.record t.h_stall r.a_roll;
      if r.a_ingress > 0 then Hdr.record t.h_ingress r.a_ingress;
      t.ag_sync <- t.ag_sync + r.a_sync;
      t.ag_vote <- t.ag_vote + r.a_vote;
      t.ag_ckpt <- t.ag_ckpt + r.a_ckpt;
      t.ag_roll <- t.ag_roll + r.a_roll;
      t.ag_ingress <- t.ag_ingress + r.a_ingress;
      t.ag_replay <- t.ag_replay + r.a_replay;
      t.ag_compute <- t.ag_compute + r.a_compute;
      t.ag_total <- t.ag_total + total;
      t.n_completed <- t.n_completed + 1;
      t.retained <- r :: t.retained;
      t.n_retained <- t.n_retained + 1;
      if t.n_retained > 2 * t.keep then begin
        t.retained <- List.filteri (fun i _ -> i < t.keep) t.retained;
        t.n_retained <- t.keep
      end

let open_requests t = Hashtbl.length t.open_reqs
let open_hwm t = t.open_hwm
let completed t = t.n_completed
let e2e t = t.h_e2e

let phase_hdr t = function
  | Queue -> t.h_queue
  | Ring -> t.h_ring
  | Service -> t.h_service
  | Drain -> t.h_drain

let attribution t =
  [
    ("compute", t.ag_compute);
    ("sync_wait", t.ag_sync);
    ("vote", t.ag_vote);
    ("checkpoint", t.ag_ckpt);
    ("rollback_stall", t.ag_roll);
    ("ingress_stall", t.ag_ingress);
    ("replay_lag", t.ag_replay);
    ("total_cycles", t.ag_total);
  ]

let detect_hdr t = t.h_detect
let stall_hdr t = t.h_stall
let ingress_hdr t = t.h_ingress

let to_json t =
  Json.Obj
    [
      ("completed", Json.Int t.n_completed);
      ("open", Json.Int (open_requests t));
      ("open_hwm", Json.Int t.open_hwm);
      ("e2e", Hdr.to_json t.h_e2e);
      ( "phases",
        Json.Obj
          [
            ("queue", Hdr.to_json t.h_queue);
            ("ring", Hdr.to_json t.h_ring);
            ("service", Hdr.to_json t.h_service);
            ("drain", Hdr.to_json t.h_drain);
          ] );
      ( "attribution",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (attribution t)) );
      ("detect", Hdr.to_json t.h_detect);
      ("rollback_stall", Hdr.to_json t.h_stall);
      ("ingress_stall", Hdr.to_json t.h_ingress);
    ]

let pid_requests = 2
let n_lanes = 16

let chrome_events t =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid_requests);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "requests") ]);
      ]
  in
  let lanes =
    List.init n_lanes (fun l ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid_requests);
            ("tid", Json.Int l);
            ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "req lane %d" l)) ]);
          ])
  in
  let reqs =
    List.rev_map
      (fun r ->
        Json.Obj
          [
            ("name", Json.String (Printf.sprintf "req %d" r.id));
            ("ph", Json.String "X");
            ("pid", Json.Int pid_requests);
            ("tid", Json.Int (r.id mod n_lanes));
            ("ts", Json.Int r.t_inject);
            ("dur", Json.Int (max 0 (r.t_done - r.t_inject)));
            ( "args",
              Json.Obj
                [
                  ("status", Json.Int r.status);
                  ("queue", Json.Int (max 0 (r.t_rx - r.t_inject)));
                  ("ring", Json.Int (max 0 (r.t_consume - r.t_rx)));
                  ("service", Json.Int (max 0 (r.t_tx - r.t_consume)));
                  ("drain", Json.Int (max 0 (r.t_done - r.t_tx)));
                  ("compute", Json.Int r.a_compute);
                  ("sync_wait", Json.Int r.a_sync);
                  ("vote", Json.Int r.a_vote);
                  ("checkpoint", Json.Int r.a_ckpt);
                  ("rollback_stall", Json.Int r.a_roll);
                  ("ingress_stall", Json.Int r.a_ingress);
                  ("replay_lag", Json.Int r.a_replay);
                ] );
          ])
      t.retained
  in
  (meta :: lanes) @ reqs
