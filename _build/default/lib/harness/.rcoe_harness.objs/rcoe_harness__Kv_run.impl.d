lib/harness/kv_run.ml: Config Kvstore List Option Rcoe_core Rcoe_machine Rcoe_workloads System Wl Ycsb
