lib/workloads/splash.ml: Array Asm Instr Printf Rcoe_isa Rcoe_kernel Rcoe_util Reg Rng Wl
