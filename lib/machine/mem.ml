exception Abort of int

let page_shift = 8
let page_size = 1 lsl page_shift

type t = { words : int array; dirty : bool array }

let create size =
  let npages = (size + page_size - 1) lsr page_shift in
  { words = Array.make size 0; dirty = Array.make npages false }

let size t = Array.length t.words

(* The first physical address a [addr, addr+len) transfer touches that
   lies outside memory: [addr] itself when negative or past the end,
   otherwise the first word beyond the array. *)
let first_oob t addr = max addr (Array.length t.words)

let mark_dirty t addr = Array.unsafe_set t.dirty (addr lsr page_shift) true

let mark_dirty_range t addr len =
  if len > 0 then
    for p = addr lsr page_shift to (addr + len - 1) lsr page_shift do
      Array.unsafe_set t.dirty p true
    done

let read t addr =
  if addr < 0 || addr >= Array.length t.words then raise (Abort addr);
  Array.unsafe_get t.words addr

let write t addr v =
  if addr < 0 || addr >= Array.length t.words then raise (Abort addr);
  Array.unsafe_set t.words addr v;
  mark_dirty t addr

let blit t ~src ~dst ~len =
  let n = Array.length t.words in
  if len < 0 then invalid_arg "Mem.blit: negative length";
  if src < 0 then raise (Abort src);
  if src + len > n then raise (Abort (first_oob t src));
  if dst < 0 then raise (Abort dst);
  if dst + len > n then raise (Abort (first_oob t dst));
  Array.blit t.words src t.words dst len;
  mark_dirty_range t dst len

let read_block t addr len =
  if addr < 0 || len < 0 then raise (Abort addr);
  if addr + len > Array.length t.words then raise (Abort (first_oob t addr));
  Array.sub t.words addr len

let write_block t addr block =
  let len = Array.length block in
  if addr < 0 then raise (Abort addr);
  if addr + len > Array.length t.words then raise (Abort (first_oob t addr));
  Array.blit block 0 t.words addr len;
  mark_dirty_range t addr len

let flip_bit t ~addr ~bit =
  if bit < 0 || bit > 61 then invalid_arg "Mem.flip_bit: bit out of range";
  write t addr (read t addr lxor (1 lsl bit))

let fill t ~addr ~len v =
  if addr < 0 || len < 0 then raise (Abort addr);
  if addr + len > Array.length t.words then raise (Abort (first_oob t addr));
  Array.fill t.words addr len v;
  mark_dirty_range t addr len

let page_is_dirty t ~addr = t.dirty.(addr lsr page_shift)

let snapshot_dirty t ~addr ~len =
  if len <= 0 then []
  else begin
    let n = Array.length t.words in
    if addr < 0 || addr + len > n then invalid_arg "Mem.snapshot_dirty";
    let acc = ref [] in
    for p = (addr + len - 1) lsr page_shift downto addr lsr page_shift do
      if Array.unsafe_get t.dirty p then acc := (p lsl page_shift) :: !acc
    done;
    !acc
  end

let clear_dirty t = Array.fill t.dirty 0 (Array.length t.dirty) false
