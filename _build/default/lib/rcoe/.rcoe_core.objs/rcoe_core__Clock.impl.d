lib/rcoe/clock.ml: Array Printf Rcoe_machine Stdlib
