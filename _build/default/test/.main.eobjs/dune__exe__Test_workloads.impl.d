test/test_workloads.ml: Alcotest Config Datarace Dhrystone Kv_run List Md5sum Membw Printf Rcoe_core Rcoe_harness Rcoe_isa Rcoe_kernel Rcoe_machine Rcoe_workloads Runner Splash System Whetstone Ycsb
