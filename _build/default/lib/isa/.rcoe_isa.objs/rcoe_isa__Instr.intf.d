lib/isa/instr.mli: Reg
