(* Public facade over the replication scheduler and its two execution
   engines. All state and semantics live in [Sched]; [run] dispatches on
   the configured engine. *)

include Sched

let run ?stop t ~max_cycles =
  match (config t).Config.engine with
  | Config.Sequential -> Engine_seq.run ?stop t ~max_cycles
  | Config.Parallel -> Engine_par.run ?stop t ~max_cycles
