type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 4096 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "bad escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* ASCII only — enough for our own output. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_char buf '?';
                   pos := !pos + 4
               | _ -> fail "bad escape");
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let is_float = ref false in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          List [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at byte %d" !pos)
    else Ok v
  with Bad (at, msg) -> Error (Printf.sprintf "%s at byte %d" msg at)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
