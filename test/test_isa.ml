open Rcoe_isa

(* --- Reg -------------------------------------------------------------- *)

let test_reg_roundtrip () =
  List.iter
    (fun r -> Alcotest.(check bool) "roundtrip" true
        (Reg.equal r (Reg.of_index (Reg.index r))))
    Reg.all;
  Alcotest.(check int) "count" 16 (List.length Reg.all)

let test_reg_of_index_rejects () =
  Alcotest.(check bool) "raises" true
    (try ignore (Reg.of_index 16); false with Invalid_argument _ -> true)

let test_freg_roundtrip () =
  for i = 0 to Reg.fcount - 1 do
    Alcotest.(check int) "roundtrip" i (Reg.findex (Reg.f_of_index i))
  done

let test_reserved_register_is_r9 () =
  Alcotest.(check int) "r9" 9 (Reg.index Reg.branch_counter)

(* --- Instr ------------------------------------------------------------ *)

let branchy =
  let open Instr in
  [
    B (Eq, Reg.R0, Imm 0, Abs 0); Jmp (Abs 0); Jal (Abs 0); Jr Reg.R3; Ret;
    Fb (Lt, Reg.F0, Reg.F1, Abs 0);
  ]

let non_branchy =
  let open Instr in
  [
    Nop; Halt; Mov (Reg.R1, Imm 3); Alu (Add, Reg.R1, Reg.R2, Imm 1);
    Ld (Reg.R1, Reg.R2, 0); St (Reg.R1, Reg.R2, 0); Syscall 3; Rep_movs;
    Cntinc; Ldex (Reg.R1, Reg.R2); Stex (Reg.R1, Reg.R2, Reg.R3);
  ]

let test_is_branch () =
  List.iter
    (fun i -> Alcotest.(check bool) (Instr.to_string i) true (Instr.is_branch i))
    branchy;
  List.iter
    (fun i -> Alcotest.(check bool) (Instr.to_string i) false (Instr.is_branch i))
    non_branchy

let test_rep_movs_not_a_branch () =
  (* The load-bearing property for the x86 rep-string problem. *)
  Alcotest.(check bool) "rep not branch" false (Instr.is_branch Instr.Rep_movs);
  Alcotest.(check bool) "rep is memory" true
    (Instr.is_memory_access Instr.Rep_movs)

let test_target_roundtrip () =
  List.iter
    (fun i ->
      match Instr.target_of i with
      | Some _ ->
          let i' = Instr.with_target i (Instr.Abs 42) in
          Alcotest.(check bool) "target set" true
            (Instr.target_of i' = Some (Instr.Abs 42))
      | None -> ())
    branchy

let test_with_target_rejects () =
  (* Every targetless instruction must refuse retargeting — including
     Jr and Ret, which branch but carry no static target. *)
  List.iter
    (fun i ->
      Alcotest.(check bool) (Instr.to_string i) true
        (try ignore (Instr.with_target i (Instr.Abs 0)); false
         with Invalid_argument _ -> true))
    (Instr.Jr Reg.R3 :: Instr.Ret :: non_branchy)

let test_eval_cond () =
  let open Instr in
  Alcotest.(check bool) "eq" true (eval_cond Eq 3 3);
  Alcotest.(check bool) "ne" true (eval_cond Ne 3 4);
  Alcotest.(check bool) "lt" true (eval_cond Lt (-1) 0);
  Alcotest.(check bool) "le" true (eval_cond Le 4 4);
  Alcotest.(check bool) "gt" false (eval_cond Gt 4 4);
  Alcotest.(check bool) "ge" true (eval_cond Ge 5 4)

(* --- Asm / Program ---------------------------------------------------- *)

let assemble_simple () =
  let a = Asm.create "t" in
  Asm.data a "tab" [| 7; 8; 9 |];
  Asm.space a "buf" 5;
  Asm.label a "main";
  Asm.la a Reg.R1 "tab";
  Asm.for_up a Reg.R2 ~start:0 ~stop:(Instr.Imm 3) (fun () ->
      Asm.ld a Reg.R3 Reg.R1 0;
      Asm.addi a Reg.R1 Reg.R1 1);
  Asm.ret a;
  Asm.assemble ~entry:"main" a

let test_assemble_resolves_everything () =
  let p = assemble_simple () in
  Alcotest.(check (list (pair int pass))) "no unresolved targets" []
    (Check.unresolved_targets p);
  Alcotest.(check int) "entry at main" (Program.label_addr p "main") p.Program.entry

let test_data_layout () =
  let p = assemble_simple () in
  Alcotest.(check int) "tab at base" Program.data_base (Program.data_addr p "tab");
  Alcotest.(check int) "buf after tab" (Program.data_base + 3)
    (Program.data_addr p "buf");
  Alcotest.(check int) "total words" 8 p.Program.data_words;
  let img = Program.data_image p in
  Alcotest.(check int) "init copied" 8 img.(1);
  Alcotest.(check int) "bss zero" 0 img.(5)

let test_duplicate_label_rejected () =
  let a = Asm.create "t" in
  Asm.label a "x";
  Alcotest.(check bool) "raises" true
    (try Asm.label a "x"; false with Invalid_argument _ -> true)

let test_undefined_label_rejected () =
  let a = Asm.create "t" in
  Asm.jmp a "nowhere";
  Alcotest.(check bool) "raises" true
    (try ignore (Asm.assemble a); false with Invalid_argument _ -> true)

let test_duplicate_data_rejected () =
  let a = Asm.create "t" in
  Asm.data a "d" [| 1 |];
  Alcotest.(check bool) "raises" true
    (try Asm.data a "d" [| 2 |]; false with Invalid_argument _ -> true)

let test_undefined_entry_rejected () =
  let a = Asm.create "t" in
  Asm.nop a;
  Alcotest.(check bool) "raises" true
    (try ignore (Asm.assemble ~entry:"main" a); false
     with Invalid_argument _ -> true)

let test_float_word_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check (float 1e-6)) "roundtrip" f
        (Program.word_to_float (Program.float_to_word f)))
    [ 0.0; 1.0; -1.0; 0.5; 3.25; -127.75 ]

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_disassemble_contains_labels () =
  let p = assemble_simple () in
  let d = Program.disassemble p in
  Alcotest.(check bool) "has main" true (contains d "main:")

(* --- Branch_count pass -------------------------------------------------- *)

let count_cntinc p =
  Array.fold_left
    (fun n i -> match i with Instr.Cntinc -> n + 1 | _ -> n)
    0 p.Program.code

let test_branch_count_inserts_before_every_branch () =
  let a = Asm.create "t" in
  Asm.label a "main";
  Asm.for_up a Reg.R2 ~start:0 ~stop:(Instr.Imm 3) (fun () -> Asm.nop a);
  Asm.jal a "f";
  Asm.ret a;
  Asm.label a "f";
  Asm.ret a;
  let p = Asm.assemble ~entry:"main" ~branch_count:true a in
  let code = p.Program.code in
  Array.iteri
    (fun i instr ->
      if Instr.is_branch instr then
        Alcotest.(check bool)
          (Printf.sprintf "cntinc before branch at %d" i)
          true
          (i > 0 && code.(i - 1) = Instr.Cntinc))
    code;
  Alcotest.(check int) "one cntinc per branch"
    (Branch_count.counted_branches code)
    (count_cntinc p)

let test_branch_count_idempotent () =
  let items =
    [
      Branch_count.I Instr.Nop;
      Branch_count.L "top";
      Branch_count.I (Instr.Jmp (Instr.Lbl "top"));
    ]
  in
  let once = Branch_count.insert items in
  let twice = Branch_count.insert once in
  Alcotest.(check int) "same length" (List.length once) (List.length twice)

let test_branch_count_label_stays_before_cntinc () =
  (* A jump to a label that precedes a branch must still execute the
     inserted increment: the label binds before the Cntinc. *)
  let a = Asm.create "t" in
  Asm.label a "main";
  Asm.movi a Reg.R4 0;
  Asm.label a "top";
  Asm.addi a Reg.R4 Reg.R4 1;
  Asm.b a Instr.Lt Reg.R4 (Instr.Imm 5) "top";
  Asm.ret a;
  let p = Asm.assemble ~entry:"main" ~branch_count:true a in
  let top = Program.label_addr p "top" in
  (* top points at the addi; the loop back-edge lands before it. *)
  Alcotest.(check bool) "label valid" true (top < Array.length p.Program.code)

let test_reserved_register_enforced () =
  let a = Asm.create "t" in
  Asm.label a "main";
  Asm.movi a Reg.R9 1;
  Asm.ret a;
  Alcotest.(check bool) "raises" true
    (try ignore (Asm.assemble ~entry:"main" ~branch_count:true a); false
     with Invalid_argument _ -> true)

let test_reserved_register_ok_without_pass () =
  let a = Asm.create "t" in
  Asm.label a "main";
  Asm.movi a Reg.R9 1;
  Asm.ret a;
  let p = Asm.assemble ~entry:"main" a in
  Alcotest.(check int) "one violation reported" 1
    (List.length (Check.reserved_register_violations p))

let test_exclusives_scan () =
  let a = Asm.create "t" in
  Asm.label a "main";
  Asm.emit a (Instr.Ldex (Reg.R1, Reg.R2));
  Asm.emit a (Instr.Stex (Reg.R3, Reg.R1, Reg.R2));
  Asm.ret a;
  let p = Asm.assemble ~entry:"main" a in
  Alcotest.(check int) "two exclusives" 2 (List.length (Check.exclusives p))

let test_rep_scan () =
  let a = Asm.create "t" in
  Asm.label a "main";
  Asm.emit a Instr.Rep_movs;
  Asm.ret a;
  let p = Asm.assemble ~entry:"main" a in
  Alcotest.(check int) "one rep" 1 (List.length (Check.rep_strings p))

let raw_program code =
  (* The assembler cannot emit these shapes; build the record directly. *)
  {
    Program.name = "t";
    code;
    data = [];
    data_words = 0;
    entry = 0;
    code_labels = [ ("main", 0) ];
    branch_counted = false;
  }

let test_unresolved_negative_target () =
  let p = raw_program [| Instr.Jmp (Instr.Abs (-1)); Instr.Halt |] in
  Alcotest.(check int) "negative flagged" 1
    (List.length (Check.unresolved_targets p))

let test_unresolved_target_at_code_length () =
  (* Abs = code length is the first invalid address: one past the last
     instruction. Abs = length - 1 is the last valid one. *)
  let open Instr in
  let bad = raw_program [| Jmp (Abs 2); Halt |] in
  Alcotest.(check int) "length flagged" 1
    (List.length (Check.unresolved_targets bad));
  let ok = raw_program [| Jmp (Abs 1); Halt |] in
  Alcotest.(check int) "length - 1 accepted" 0
    (List.length (Check.unresolved_targets ok))

let test_unresolved_symbolic_target () =
  let p = raw_program [| Instr.Jal (Instr.Lbl "ghost"); Instr.Halt |] in
  match Check.unresolved_targets p with
  | [ (0, Instr.Jal (Instr.Lbl "ghost")) ] -> ()
  | _ -> Alcotest.fail "expected the symbolic Jal at address 0"

(* QCheck: the branch-counting pass preserves instruction order of the
   original program and inserts exactly one Cntinc per branch. *)
let qcheck_branch_count_structure =
  QCheck.Test.make ~name:"branch-count pass inserts one Cntinc per branch"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (int_bound 4))
    (fun shape ->
      let a = Asm.create "q" in
      Asm.label a "main";
      List.iteri
        (fun i k ->
          match k with
          | 0 -> Asm.nop a
          | 1 -> Asm.addi a Reg.R4 Reg.R4 1
          | 2 -> Asm.b a Instr.Eq Reg.R4 (Instr.Imm i) "main"
          | 3 -> Asm.jmp a "main"
          | _ -> Asm.ld a Reg.R5 Reg.R13 0)
        shape;
      Asm.ret a;
      let plain = Asm.assemble ~entry:"main" a in
      let a2 = Asm.create "q" in
      Asm.label a2 "main";
      List.iteri
        (fun i k ->
          match k with
          | 0 -> Asm.nop a2
          | 1 -> Asm.addi a2 Reg.R4 Reg.R4 1
          | 2 -> Asm.b a2 Instr.Eq Reg.R4 (Instr.Imm i) "main"
          | 3 -> Asm.jmp a2 "main"
          | _ -> Asm.ld a2 Reg.R5 Reg.R13 0)
        shape;
      Asm.ret a2;
      let counted = Asm.assemble ~entry:"main" ~branch_count:true a2 in
      let branches = Branch_count.counted_branches plain.Program.code in
      Array.length counted.Program.code
      = Array.length plain.Program.code + branches
      && count_cntinc counted = branches)

let suite =
  [
    Alcotest.test_case "reg index roundtrip" `Quick test_reg_roundtrip;
    Alcotest.test_case "reg of_index rejects" `Quick test_reg_of_index_rejects;
    Alcotest.test_case "freg roundtrip" `Quick test_freg_roundtrip;
    Alcotest.test_case "reserved register is r9" `Quick test_reserved_register_is_r9;
    Alcotest.test_case "is_branch classification" `Quick test_is_branch;
    Alcotest.test_case "rep-movs is not a branch" `Quick test_rep_movs_not_a_branch;
    Alcotest.test_case "target roundtrip" `Quick test_target_roundtrip;
    Alcotest.test_case "with_target rejects" `Quick test_with_target_rejects;
    Alcotest.test_case "eval_cond" `Quick test_eval_cond;
    Alcotest.test_case "assemble resolves" `Quick test_assemble_resolves_everything;
    Alcotest.test_case "data layout" `Quick test_data_layout;
    Alcotest.test_case "duplicate label rejected" `Quick test_duplicate_label_rejected;
    Alcotest.test_case "undefined label rejected" `Quick test_undefined_label_rejected;
    Alcotest.test_case "duplicate data rejected" `Quick test_duplicate_data_rejected;
    Alcotest.test_case "undefined entry rejected" `Quick test_undefined_entry_rejected;
    Alcotest.test_case "float word roundtrip" `Quick test_float_word_roundtrip;
    Alcotest.test_case "disassembly has labels" `Quick test_disassemble_contains_labels;
    Alcotest.test_case "cntinc before every branch" `Quick
      test_branch_count_inserts_before_every_branch;
    Alcotest.test_case "branch-count idempotent" `Quick test_branch_count_idempotent;
    Alcotest.test_case "label before cntinc" `Quick
      test_branch_count_label_stays_before_cntinc;
    Alcotest.test_case "reserved register enforced" `Quick
      test_reserved_register_enforced;
    Alcotest.test_case "reserved register scan" `Quick
      test_reserved_register_ok_without_pass;
    Alcotest.test_case "exclusives scan" `Quick test_exclusives_scan;
    Alcotest.test_case "rep scan" `Quick test_rep_scan;
    Alcotest.test_case "unresolved negative target" `Quick
      test_unresolved_negative_target;
    Alcotest.test_case "unresolved target at code length" `Quick
      test_unresolved_target_at_code_length;
    Alcotest.test_case "unresolved symbolic target" `Quick
      test_unresolved_symbolic_target;
    QCheck_alcotest.to_alcotest qcheck_branch_count_structure;
  ]
