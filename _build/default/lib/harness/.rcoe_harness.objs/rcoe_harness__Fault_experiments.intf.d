lib/harness/fault_experiments.mli: Rcoe_core Rcoe_faults
