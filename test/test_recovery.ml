(* Tests for the verified-checkpoint / rollback-recovery subsystem:
   ring semantics, kernel snapshot round-trip, config validation, the
   fail-stop -> fail-recover acceptance scenarios (transient fault
   Recovered, persistent fault exhausts the budget and halts), cycle
   identity of traced runs, the pending-reintegration regression, and
   the Perfetto export of checkpoint/rollback events. *)

open Rcoe_machine
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
module Trace = Rcoe_obs.Trace
module Metrics = Rcoe_obs.Metrics
module Json = Rcoe_obs.Json
module Export = Rcoe_obs.Export
module Outcome = Rcoe_faults.Outcome

let x86 = Arch.X86

(* --- checkpoint ring ---------------------------------------------------- *)

let mk_snap cycle =
  {
    Checkpoint.s_kind = Checkpoint.Full;
    s_cycle = cycle;
    s_round_seq = cycle / 100;
    s_ticks = 0;
    s_prim = 0;
    s_shared = Checkpoint.R_full [||];
    s_dma = Checkpoint.R_full [||];
    s_replicas = [];
    s_words = 0;
    s_skipped_words = 0;
  }

let newest_cycle ck =
  match Checkpoint.newest ck with
  | Some s -> s.Checkpoint.s_cycle
  | None -> -1

let test_ring_semantics () =
  let ck = Checkpoint.create ~depth:2 in
  Alcotest.(check int) "depth" 2 (Checkpoint.depth ck);
  Alcotest.(check int) "empty" 0 (Checkpoint.count ck);
  Alcotest.(check bool) "no newest" true (Checkpoint.newest ck = None);
  Checkpoint.push ck (mk_snap 100);
  Checkpoint.push ck (mk_snap 200);
  Checkpoint.push ck (mk_snap 300);
  Alcotest.(check int) "bounded" 2 (Checkpoint.count ck);
  Alcotest.(check int) "lifetime taken" 3 (Checkpoint.taken ck);
  Alcotest.(check int) "newest wins" 300 (newest_cycle ck);
  Checkpoint.drop_newest ck;
  Alcotest.(check int) "escalates to older" 200 (newest_cycle ck);
  Checkpoint.drop_newest ck;
  Alcotest.(check int) "drained" 0 (Checkpoint.count ck);
  Alcotest.(check bool) "empty again" true (Checkpoint.newest ck = None);
  (* Dropping when empty is a no-op, and the ring keeps working. *)
  Checkpoint.drop_newest ck;
  Checkpoint.push ck (mk_snap 400);
  Alcotest.(check int) "reusable" 400 (newest_cycle ck);
  Alcotest.(check int) "taken keeps counting" 4 (Checkpoint.taken ck);
  Alcotest.check_raises "depth >= 1"
    (Invalid_argument "Checkpoint.create: depth must be >= 1") (fun () ->
      ignore (Checkpoint.create ~depth:0))

(* --- config validation -------------------------------------------------- *)

let test_config_validation () =
  let base every =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ())
      with
      Config.checkpoint_every = every;
    }
  in
  (match Config.validate (base 2) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid checkpoint config rejected: %s" e);
  let expect_err label cfg =
    match Config.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s must be rejected" label
  in
  expect_err "negative interval" (base (-1));
  expect_err "checkpointing on Base"
    { (base 2) with Config.mode = Config.Base; nreplicas = 1 };
  expect_err "zero depth" { (base 2) with Config.checkpoint_depth = 0 };
  expect_err "zero budget" { (base 2) with Config.max_rollbacks = 0 }

(* --- kernel snapshot round-trip ----------------------------------------- *)

let test_kernel_snapshot_roundtrip () =
  let config = Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~seed:3 () in
  let program =
    Md5sum.program ~message_words:64 ~iters:6 ~seed:2 ~branch_count:false ()
  in
  let sys = System.create ~config ~program in
  (* Stop mid-run, after some but not all digests are out. *)
  System.run sys ~max_cycles:5_000_000 ~stop:(fun s ->
      String.length (System.output s 0) >= 2);
  Alcotest.(check bool) "mid-run" true (not (System.finished sys));
  let k = System.kernel sys 0 in
  let snap = Rcoe_kernel.Kernel.snapshot k in
  let out = System.output sys 0 in
  (* Run on until the replica visibly makes progress... *)
  System.run sys ~max_cycles:5_000_000 ~stop:(fun s ->
      String.length (System.output s 0) > String.length out);
  Alcotest.(check bool) "output grew" true
    (String.length (System.output sys 0) > String.length out);
  (* ...then rewind: the output buffer must truncate back exactly. *)
  Rcoe_kernel.Kernel.restore k snap;
  Alcotest.(check string) "output truncated on restore" out
    (System.output sys 0)

(* --- fail-stop vs fail-recover acceptance ------------------------------- *)

let test_transient_fault_recovered () =
  (* The tentpole scenario: DMR (masking impossible), one transient
     signature corruption, checkpointing on -> the run must finish with
     correct output and classify as Recovered. *)
  let outcome, rollbacks, ckpts, latencies =
    Fault_experiments.recovery_trial ~checkpointing:true ~fault:`Transient
      ~seed:2 ()
  in
  Alcotest.(check string) "outcome" "Recovered (rolled back)"
    (Outcome.to_string outcome);
  Alcotest.(check bool) "controlled" true (Outcome.controlled outcome);
  Alcotest.(check bool) "rolled back at least once" true (rollbacks >= 1);
  Alcotest.(check bool) "took checkpoints" true (ckpts >= 1);
  Alcotest.(check int) "one latency sample per rollback" rollbacks
    (List.length latencies);
  List.iter
    (fun l -> Alcotest.(check bool) "positive latency" true (l > 0.0))
    latencies

let test_same_fault_halts_without_checkpointing () =
  let outcome, rollbacks, ckpts, _ =
    Fault_experiments.recovery_trial ~checkpointing:false ~fault:`Transient
      ~seed:2 ()
  in
  Alcotest.(check bool) "fail-stop" true (outcome = Outcome.Signature_mismatch);
  Alcotest.(check int) "no rollbacks" 0 rollbacks;
  Alcotest.(check int) "no checkpoints" 0 ckpts

let test_persistent_fault_exhausts_budget () =
  (* A stuck-at fault re-asserts after every recovery: the system must
     escalate through the ring (retry newest, drop, retry older) and
     finally fail-stop — never loop forever, never emit bad output. *)
  let outcome, rollbacks, _, _ =
    Fault_experiments.recovery_trial ~checkpointing:true ~fault:`Persistent
      ~seed:1 ()
  in
  Alcotest.(check bool) "still fail-stops" true
    (outcome = Outcome.Signature_mismatch);
  Alcotest.(check bool)
    (Printf.sprintf "escalated across snapshots (%d rollbacks)" rollbacks)
    true (rollbacks >= 2)

(* --- cycle identity under tracing --------------------------------------- *)

let recovery_run ~trace =
  let config =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~seed:11 ())
      with
      Config.barrier_timeout = 600_000;
      checkpoint_every = 2;
      checkpoint_depth = 3;
      max_rollbacks = 8;
      trace;
    }
  in
  let program =
    Md5sum.program ~message_words:96 ~iters:8 ~seed:6 ~branch_count:false ()
  in
  let sys = System.create ~config ~program in
  System.run sys ~max_cycles:60_000;
  let addr = System.sig_base sys 1 + 1 and bit = 7 in
  Mem.flip_bit (System.machine sys).Machine.mem ~addr ~bit;
  Trace.injection (System.trace sys) ~addr ~bit;
  System.run sys ~max_cycles:30_000_000;
  sys

let test_traced_run_cycle_identical () =
  let a = recovery_run ~trace:None in
  let b = recovery_run ~trace:(Some { Trace.capacity = 1 lsl 18 }) in
  Alcotest.(check bool) "untraced finished" true (System.finished a);
  Alcotest.(check bool) "traced finished" true (System.finished b);
  Alcotest.(check bool) "recovered (untraced)" true
    (System.halted a = None && System.rollbacks a <> []);
  Alcotest.(check int) "same rollbacks"
    (List.length (System.rollbacks a))
    (List.length (System.rollbacks b));
  Alcotest.(check int) "same checkpoints" (System.checkpoints_taken a)
    (System.checkpoints_taken b);
  Alcotest.(check int) "same final cycle" (System.now a) (System.now b);
  Alcotest.(check string) "same output" (System.output a 0) (System.output b 0);
  Alcotest.(check string) "correct output" "........" (System.output a 0)

(* --- Perfetto export of recovery events --------------------------------- *)

let test_export_checkpoint_rollback_events () =
  let sys = recovery_run ~trace:(Some { Trace.capacity = 1 lsl 18 }) in
  let tr = System.trace sys in
  Alcotest.(check int) "ring did not drop events" 0 (Trace.dropped tr);
  let json = Export.to_chrome_json tr in
  match Json.parse json with
  | Error e -> Alcotest.failf "export does not parse: %s" e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          let named n e = Json.member "name" e = Some (Json.String n) in
          let count n = List.length (List.filter (named n) evs) in
          Alcotest.(check int) "one span per checkpoint"
            (System.checkpoints_taken sys)
            (count "checkpoint");
          Alcotest.(check int) "one span per rollback"
            (List.length (System.rollbacks sys))
            (count "rollback");
          Alcotest.(check bool) "rollbacks present" true (count "rollback" >= 1);
          let recovery_thread_named =
            List.exists
              (fun e ->
                named "thread_name" e
                && Json.member "ph" e = Some (Json.String "M")
                &&
                match Json.member "args" e with
                | Some a ->
                    Json.member "name" a = Some (Json.String "recovery")
                | None -> false)
              evs
          in
          Alcotest.(check bool) "recovery thread metadata" true
            recovery_thread_named
      | _ -> Alcotest.fail "no traceEvents list")

(* --- pending re-integration survives a rollback (regression) ------------ *)

let test_pending_reintegration_survives_rollback () =
  (* Regression for maybe_reintegrate dropping a pending request at the
     first round end where the replica is not Rs_removed. Scenario: a
     TMR downgrade removes replica 2; a re-admission request is filed;
     before it applies, a second fault forces a rollback to a snapshot
     that predates the downgrade, reviving replica 2. The request must
     stay pending (not silently vanish) and then apply by itself when
     replica 2 is next removed. *)
  let config =
    {
      Config.default with
      Config.mode = Config.LC;
      nreplicas = 3;
      masking = true;
      tick_interval = 5_000;
      barrier_timeout = 60_000;
      checkpoint_every = 10;
      checkpoint_depth = 2;
      max_rollbacks = 4;
    }
  in
  let a = Rcoe_isa.Asm.create "spin" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.for_up a Rcoe_isa.Reg.R4 ~start:0
    ~stop:(Rcoe_isa.Instr.Imm 2_000_000) (fun () -> Rcoe_isa.Asm.nop a);
  Rcoe_isa.Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  let program = Rcoe_isa.Asm.assemble ~entry:"main" a in
  let sys = System.create ~config ~program in
  (* Warm until a checkpoint with all three replicas live exists. *)
  System.run sys ~max_cycles:1_000_000 ~stop:(fun s ->
      System.checkpoints_taken s >= 1);
  Alcotest.(check bool) "warm checkpoint" true
    (System.checkpoints_taken sys >= 1);
  (* Fault replica 2 -> masked downgrade to DMR. *)
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 2 + 1) ~bit:5;
  System.run sys ~max_cycles:200_000 ~stop:(fun s -> System.downgrades s <> []);
  Alcotest.(check (list int)) "DMR" [ 0; 1 ] (System.live sys);
  (match System.request_reintegration sys ~rid:2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "request rejected: %s" e);
  (* Second fault while only two replicas are live: masking is
     impossible, so recovery rolls back — to a snapshot that still
     contains replica 2, reviving it with the request still pending. *)
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 1 + 1) ~bit:6;
  System.run sys ~max_cycles:200_000 ~stop:(fun s -> System.rollbacks s <> []);
  Alcotest.(check int) "rolled back once" 1 (List.length (System.rollbacks sys));
  Alcotest.(check (list int)) "rollback revived replica 2" [ 0; 1; 2 ]
    (System.live sys);
  Alcotest.(check bool) "no halt" true (System.halted sys = None);
  (* Several clean rounds pass: the buggy code dropped the pending
     request here. *)
  System.run sys ~max_cycles:50_000;
  Alcotest.(check bool) "not yet applied" true (System.reintegrations sys = []);
  Alcotest.(check bool) "still running" true (System.halted sys = None);
  (* Replica 2 is removed again: the surviving request must apply on
     its own, with no second request_reintegration call. *)
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 2 + 1) ~bit:9;
  System.run sys ~max_cycles:200_000
    ~stop:(fun s -> System.reintegrations s <> []);
  (match System.reintegrations sys with
  | [ (_, 2) ] -> ()
  | _ -> Alcotest.fail "pending request was lost across the rollback");
  Alcotest.(check (list int)) "TMR restored" [ 0; 1; 2 ] (System.live sys);
  Alcotest.(check bool) "no halt at end" true (System.halted sys = None)

let suite =
  [
    Alcotest.test_case "checkpoint ring semantics" `Quick test_ring_semantics;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "kernel snapshot round-trip" `Quick
      test_kernel_snapshot_roundtrip;
    Alcotest.test_case "transient fault recovered" `Slow
      test_transient_fault_recovered;
    Alcotest.test_case "same fault halts without checkpointing" `Quick
      test_same_fault_halts_without_checkpointing;
    Alcotest.test_case "persistent fault exhausts budget" `Slow
      test_persistent_fault_exhausts_budget;
    Alcotest.test_case "traced run cycle-identical" `Slow
      test_traced_run_cycle_identical;
    Alcotest.test_case "export checkpoint/rollback events" `Slow
      test_export_checkpoint_rollback_events;
    Alcotest.test_case "pending reintegration survives rollback" `Slow
      test_pending_reintegration_survives_rollback;
  ]
