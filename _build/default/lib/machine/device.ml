type t = {
  dev_name : string;
  read_reg : int -> int;
  write_reg : int -> int -> unit;
  dev_tick : now:int -> unit;
  irq_pending : unit -> bool;
  irq_ack : unit -> unit;
}

let null dev_name =
  {
    dev_name;
    read_reg = (fun _ -> 0);
    write_reg = (fun _ _ -> ());
    dev_tick = (fun ~now:_ -> ());
    irq_pending = (fun () -> false);
    irq_ack = (fun () -> ());
  }

let console () =
  let buf = Buffer.create 256 in
  let dev =
    {
      dev_name = "console";
      read_reg = (fun _ -> 0);
      write_reg =
        (fun off v ->
          if off = 0 then Buffer.add_char buf (Char.chr (v land 0x7F)));
      dev_tick = (fun ~now:_ -> ());
      irq_pending = (fun () -> false);
      irq_ack = (fun () -> ());
    }
  in
  (dev, buf)
