(** Simulated network card with descriptor rings and DMA.

    The device DMAs received packets directly into a physical-memory
    region that is *outside* the sphere of replication (only the primary
    replica's driver sees the real device; the DMA region is not
    replicated). This preserves the paper's residual vulnerability: bit
    flips in DMA buffers are invisible to the replication machinery and
    surface as silent data corruption (Table VII "YCSB corruptions").

    The ingress-verification extension narrows (but does not close) the
    hole: [inject] computes a per-frame Fletcher checksum at enqueue
    time — before the payload ever reaches the DMA region — and exposes
    it through the RX_CSUM descriptor register, so a consumer that
    recomputes the checksum over the buffer it actually read can detect
    corruption between DMA write and consume. RX_NACK drops the head
    frame without consuming it; its slot re-arms only once the driver
    has observed the drop (next RX_COUNT read), so a queued delivery
    can never overwrite a dropped frame the driver still believes is
    the ring head.

    Register map (word offsets within the device page):
    - 0 [RX_COUNT] (r): packets waiting in the RX ring
    - 1 [RX_ADDR] (r): DMA-region word offset of the head packet
    - 2 [RX_LEN] (r): length of the head packet in words
    - 3 [RX_CONSUME] (w): pop the head packet
    - 4 [TX_ADDR] (w): DMA-region word offset of the packet to send
    - 5 [TX_LEN] (w): its length
    - 6 [TX_DOORBELL] (w): transmit
    - 7 [IRQ_STATUS] (r): 1 if the interrupt line is raised
    - 8 [RX_CSUM] (r): enqueue-time Fletcher checksum of the head packet
    - 9 [RX_NACK] (w): drop the head packet; quarantine its slot *)

type t

val reg_rx_count : int
val reg_rx_addr : int
val reg_rx_len : int
val reg_rx_consume : int
val reg_tx_addr : int
val reg_tx_len : int
val reg_tx_doorbell : int
val reg_irq_status : int
val reg_rx_csum : int
val reg_rx_nack : int

val slot_words : int
(** Fixed RX slot size (64 words); injected packets must fit. *)

val create : mem:Mem.t -> dma_base:int -> dma_words:int -> t
(** The DMA region must hold at least two RX slots plus TX space; the RX
    ring uses the first half, TX may use the second. Raises
    [Invalid_argument] if too small. *)

val device : t -> Device.t

val inject : t -> now:int -> int array -> unit
(** Host side: enqueue a packet for delivery (at the next device tick at
    or after [now]). Raises [Invalid_argument] if longer than
    [slot_words]. *)

val pending_host_packets : t -> int

val take_tx : t -> (int * int array) list
(** Drain transmitted packets as [(completion_cycle, payload)] in
    transmission order. *)

val next_event : t -> after:int -> int option
(** The earliest cycle [>= after] at which the device could spontaneously
    change machine state or demand attention: [after] itself if the
    interrupt line is already raised, else the delivery cycle of the
    queued head packet (clamped to [after + 1]); [None] when quiescent
    (wedged, nothing queued, or the RX ring full — deliveries then wait
    on a driver consume, which only user code triggers). The parallel
    engine uses this to clip execution windows so that device activity
    lands on the same cycle as under sequential stepping. *)

val set_wedged : t -> bool -> unit
(** A wedged NIC stops delivering queued packets and raising interrupts
    (the overclocking campaigns use this for catastrophic I/O-path
    failures; the host keeps queueing into the void). *)

val rx_dropped : t -> int
(** Packets dropped because the RX ring was full (diagnostic). *)

val rx_nacked : t -> int
(** Frames dropped by the driver via RX_NACK (ingress-checksum
    mismatches); each awaits client retransmission. *)

val rx_csum_reads : t -> int
(** RX_CSUM register reads — one per ingress verification, whichever
    driver flavour performs it (guest MMIO in LC, kernel-mediated
    [FT_Mem_Rep] in CC). *)

val head_rx : t -> (int * int) option
(** [(slot_offset, len)] of the head RX frame, if any — the frame the
    driver will consume next. Used by the fault injector to target an
    in-flight DMA buffer ("input buffers outside the SoR"). *)

val rx_ring_hwm : t -> int
(** High-water mark of RX ring occupancy (slots in use after a
    delivery). *)

val tx_pending_hwm : t -> int
(** High-water mark of transmitted-but-undrained packets sitting in the
    TX completion list between [take_tx] calls. *)

val tx_sent : t -> int
(** Total TX doorbell transmissions. *)

val set_observers :
  t ->
  ?on_rx:(now:int -> int array -> unit) ->
  ?on_consume:(now:int -> int array -> unit) ->
  ?on_tx:(now:int -> int array -> unit) ->
  unit ->
  unit
(** Install host-side packet observers, called with the device-clock
    cycle and payload when a packet is DMA'd into the RX ring
    ([on_rx]), popped by the driver via RX_CONSUME ([on_consume]), and
    transmitted via TX_DOORBELL ([on_tx]). One call replaces all three:
    an omitted argument {e clears} that observer, so
    [set_observers t ()] resets the device to untapped and a reused
    device never retains callbacks into a dead trace sink. They are
    pure taps for request tracing: the device takes the same steps on
    the same cycles whether or not they are installed, so Seq/Par
    determinism is unaffected. *)

val rx_region_bounds : t -> int * int
(** [(base, words)] of the RX slot area within physical memory — the
    part of the DMA region the device writes; used by the fault injector
    to target "input buffers outside the SoR". *)

val set_host_tap : t -> ?on_inject:(now:int -> int array -> unit) -> unit -> unit
(** Install (or, omitted, clear) the host-boundary tap: [on_inject]
    fires on every {!inject} with inject's own arguments. [inject] is
    the single host action whose effect the guest can observe, so
    logging it is sufficient to replay a run's entire external input —
    this is what feeds the replay engine's [Inputlog]. A pure observer,
    separate
    from {!set_observers} so request tracing and input logging can
    coexist. *)

type snapshot
(** Complete device state at a point in time (rings, queues, slot
    accounting, IRQ line, TX latch, counters). Payload arrays are
    shared with the live device — safe, as payloads are immutable after
    [inject]. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** The replay engine snapshots the primary's device at each chunk cut
    and restores it into a shadow machine's device, so a replayed chunk
    sees bit-identical device behaviour — delivery cycles included —
    without the device itself being inside the sphere of replication. *)
