open Rcoe_isa
open Reg

let default_loops = 2_000

let result_label = "dhry_result"

(* Working set: two "records" (8 words each), a 40-word array, and two
   30-word strings, as in Dhrystone's global data. *)
let program ?(loops = default_loops) ~branch_count () =
  let a = Asm.create "dhrystone" in
  Asm.data a "rec1" (Array.make 8 0);
  Asm.data a "rec2" (Array.make 8 0);
  Asm.data a "arr1" (Array.init 40 (fun i -> i));
  Asm.data a "str1" (Array.init 30 (fun i -> (i * 7) land 0xFF));
  Asm.data a "str2" (Array.init 30 (fun i -> (i * 7) land 0xFF));
  Asm.space a result_label 2;

  (* proc1: copy rec1 -> rec2 and tweak fields (Dhrystone Proc_1). *)
  Wl.func a "proc1" (fun () ->
      Asm.la a R4 "rec1";
      Asm.la a R5 "rec2";
      for i = 0 to 7 do
        Asm.ld a R6 R4 i;
        Asm.st a R5 R6 i
      done;
      Asm.ld a R6 R5 2;
      Asm.addi a R6 R6 5;
      Asm.st a R5 R6 2);

  (* proc2: integer identity chains (Proc_2/Func_1 flavour). *)
  Wl.func a "proc2" (fun () ->
      Asm.addi a R6 R0 10;
      Asm.muli a R6 R6 3;
      Asm.subi a R6 R6 7;
      Asm.divi a R6 R6 2;
      Asm.andi a R6 R6 0xFFFF;
      Asm.mov a R0 R6);

  Asm.label a "main";
  Asm.movi a R10 0;
  (* accumulator *)
  Asm.movi a R11 0;
  (* loop counter *)
  let top = "dhry_top" and exit = "dhry_exit" in
  Asm.label a top;
  Asm.b a Instr.Ge R11 (Instr.Imm loops) exit;

  (* Record manipulation via proc1. *)
  Wl.call a "proc1";

  (* Array writes/reads: arr1[i mod 40] and a dependent second index. *)
  Asm.remi a R4 R11 40;
  Asm.la a R5 "arr1";
  Asm.add a R5 R5 R4;
  Asm.ld a R6 R5 0;
  Asm.add a R6 R6 R11;
  Asm.st a R5 R6 0;
  Asm.remi a R7 R6 37;
  Asm.la a R5 "arr1";
  Asm.remi a R7 R7 40;
  Asm.add a R5 R5 R7;
  Asm.ld a R8 R5 0;
  Asm.add a R10 R10 R8;

  (* String comparison, unrolled over 30 words (no inner loop: this is
     what makes the Dhrystone body long and straight-line). *)
  Asm.la a R4 "str1";
  Asm.la a R5 "str2";
  Asm.movi a R7 0;
  for i = 0 to 29 do
    Asm.ld a R6 R4 i;
    Asm.ld a R8 R5 i;
    Asm.sub a R6 R6 R8;
    Asm.add a R7 R7 R6
  done;
  Asm.add a R10 R10 R7;

  (* Conditional blocks exercising branches within the long body. *)
  Asm.andi a R4 R11 1;
  Asm.if_ a Instr.Eq R4 (Instr.Imm 0)
    ~else_:(fun () ->
      Asm.mov a R0 R11;
      Wl.call a "proc2";
      Asm.add a R10 R10 R0)
    (fun () ->
      Asm.muli a R6 R11 13;
      Asm.remi a R6 R6 101;
      Asm.add a R10 R10 R6);

  (* More straight-line integer mixing (shift/logic chains). *)
  Asm.shli a R6 R11 3;
  Asm.xor a R6 R6 R10;
  Asm.shri a R7 R10 2;
  Asm.or_ a R6 R6 R7;
  Asm.andi a R6 R6 0xFFFFF;
  Asm.add a R10 R10 R6;

  Asm.addi a R11 R11 1;
  Asm.jmp a top;
  Asm.label a exit;

  (* Publish the result and finish. *)
  Asm.la a R4 result_label;
  Asm.st a R4 R10 0;
  Asm.st a R4 R11 1;
  Wl.add_trace a ~label:result_label ~words:2;
  Wl.exit_thread a;
  Asm.assemble ~entry:"main" ~branch_count a
