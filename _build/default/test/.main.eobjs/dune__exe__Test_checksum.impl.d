test/test_checksum.ml: Alcotest Array Char Crc32 Digest Fletcher Gen List Md5 QCheck QCheck_alcotest Rcoe_checksum String
