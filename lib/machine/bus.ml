type t = {
  bus_rate : float;
  max_credit : float;
  mutable credit : float;
  mutable offered : float;
  mutable consumed : int;
}

let create ~rate =
  { bus_rate = rate; max_credit = 4.0; credit = 4.0; offered = 0.0; consumed = 0 }

let tick t =
  t.offered <- t.offered +. t.bus_rate;
  t.credit <- Float.min t.max_credit (t.credit +. t.bus_rate)

let try_acquire t n =
  let need = float_of_int n in
  if t.credit >= need then begin
    t.credit <- t.credit -. need;
    t.consumed <- t.consumed + n;
    true
  end
  else false

let advance t ~cycles =
  (* Exactly [cycles] applications of [tick]: the parallel engine uses
     this to bring a lane that stopped refilling mid-window (its replica
     parked) up to the window boundary, and the result must be
     bit-identical to the per-cycle refills of a sequential run —
     floating-point addition is not associative, so no closed form. *)
  for _ = 1 to cycles do
    tick t
  done

let rate t = t.bus_rate

type state = { st_credit : float; st_offered : float; st_consumed : int }

let state t =
  { st_credit = t.credit; st_offered = t.offered; st_consumed = t.consumed }

let set_state t s =
  t.credit <- s.st_credit;
  t.offered <- s.st_offered;
  t.consumed <- s.st_consumed

let utilisation t =
  if t.offered <= 0.0 then 0.0 else float_of_int t.consumed /. t.offered
