lib/isa/reg.mli:
