type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let copy t = { state = t.state }

let assign ~dst ~src = dst.state <- src.state

let next t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (x /. 9007199254740992.0)
