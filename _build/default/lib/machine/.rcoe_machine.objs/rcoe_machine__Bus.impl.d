lib/machine/bus.ml: Float
