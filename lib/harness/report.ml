let rule = String.make 64 '='

let header title expectation =
  Printf.printf "\n%s\n" rule;
  Printf.printf "%s\n" title;
  Printf.printf "paper expectation: %s\n" expectation;
  Printf.printf "%s\n%!" rule
