lib/kernel/kernel.mli: Buffer Layout Rcoe_isa Rcoe_machine
