lib/util/stats.mli:
