(** Verified checkpoints for rollback recovery.

    A checkpoint is a consistent cut of the whole replicated state,
    taken right after a successful signature vote — the only moments
    the replicas are provably equivalent. Each snapshot holds every
    live replica's full memory partition and kernel/core bookkeeping
    (via {!Rcoe_kernel.Kernel.snapshot}), the shared framework region,
    the DMA window, and the engine's logical clocks, so the engine can
    later rewind all of it at once and re-execute.

    Snapshots live in a bounded ring, newest first. Keeping more than
    one matters: a fault injected *after* a vote but *before* the next
    capture is frozen into the newest snapshot, and recovery must be
    able to escalate to an older, still-clean one (see
    [System.try_rollback]).

    The engine above owns policy (when to capture, retry budgets,
    costs); this module owns the data. Device-internal state (e.g. the
    network device's queues) is outside the sphere of replication and
    is deliberately not captured — recovery campaigns use compute
    workloads.

    Capture and restore read and write every replica's partition
    directly, so they must only run while replica execution is
    quiescent. Both engines guarantee this: the sequential engine is
    single-domain, and the parallel engine ({!Config.engine}) parks all
    worker domains at a barrier before any round logic — including
    checkpoint capture and rollback restore — executes on the
    orchestrating domain. *)

type replica_image = {
  i_rid : int;
  i_partition : int array;  (** Full partition copy. *)
  i_kernel : Rcoe_kernel.Kernel.snapshot;
  i_finished : bool;
}

type snap = {
  s_cycle : int;  (** Capture cycle (rollback target, for reporting). *)
  s_round_seq : int;
  s_ticks : int;
  s_prim : int;
  s_shared : int array;
  s_dma : int array;
  s_replicas : replica_image list;  (** Live replicas at capture. *)
  s_words : int;  (** Total words copied, for cost accounting. *)
}

type t

val create : depth:int -> t
(** Raises [Invalid_argument] if [depth < 1]. *)

val depth : t -> int
val count : t -> int
(** Snapshots currently held (<= depth). *)

val taken : t -> int
(** Snapshots stored over the ring's lifetime. *)

val push : t -> snap -> unit
(** Store as newest; the oldest snapshot is evicted when full. *)

val newest : t -> snap option

val drop_newest : t -> unit
(** Recovery escalation: discard a snapshot that keeps failing. *)

val words : snap -> int

val capture :
  Rcoe_machine.Mem.t ->
  Rcoe_kernel.Layout.t ->
  cycle:int ->
  round_seq:int ->
  ticks:int ->
  prim:int ->
  replicas:(int * Rcoe_kernel.Kernel.t * bool) list ->
  snap
(** Snapshot the given [(rid, kernel, finished)] replicas plus the
    shared and DMA regions. Call only at a verified quiescent point. *)

val restore_memory : Rcoe_machine.Mem.t -> Rcoe_kernel.Layout.t -> snap -> unit
(** Blit every captured partition, the shared region and the DMA window
    back. The caller pairs this with {!Rcoe_kernel.Kernel.restore} on
    each image and with resetting its own engine state. *)
