(* Differential testing of the whole stack: randomly generated (but
   race-free, terminating-by-construction) programs must compute exactly
   the same result block and console output whether they run
   unreplicated, under LC-RCoE, or under CC-RCoE on either architecture
   profile. This is the sphere-of-replication transparency claim of the
   paper, checked mechanically. *)

open Rcoe_isa
open Rcoe_core
open Rcoe_harness
open Rcoe_util

let nregs_used = 6 (* r1..r6 data registers; r7 loop var; r8 address temp *)

let random_program rng =
  let a = Asm.create "fuzz" in
  Asm.space a "arr" 64;
  Asm.space a "result" 8;
  Asm.label a "main";
  let reg i = Reg.of_index (1 + (i mod nregs_used)) in
  (* Seed registers. *)
  for i = 0 to nregs_used - 1 do
    Asm.movi a (reg i) (Rng.int rng 1000)
  done;
  let emit_op depth_allowed =
    match Rng.int rng 12 with
    | 0 -> Asm.add a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) (reg (Rng.int rng 6))
    | 1 -> Asm.sub a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) (reg (Rng.int rng 6))
    | 2 -> Asm.muli a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) (1 + Rng.int rng 7)
    | 3 -> Asm.xor a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) (reg (Rng.int rng 6))
    | 4 ->
        Asm.andi a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) 0xFFFF
    | 5 ->
        (* store reg into arr[(r mod 64)] *)
        let src = reg (Rng.int rng 6) in
        Asm.andi a Reg.R8 src 63;
        Asm.la a Reg.R12 "arr";
        Asm.add a Reg.R8 Reg.R8 Reg.R12;
        Asm.st a Reg.R8 (reg (Rng.int rng 6)) 0
    | 6 ->
        let dst = reg (Rng.int rng 6) in
        Asm.andi a Reg.R8 (reg (Rng.int rng 6)) 63;
        Asm.la a Reg.R12 "arr";
        Asm.add a Reg.R8 Reg.R8 Reg.R12;
        Asm.ld a dst Reg.R8 0
    | 7 when depth_allowed ->
        (* data-dependent branch *)
        let r = reg (Rng.int rng 6) in
        Asm.if_ a Instr.Lt r (Instr.Imm (Rng.int rng 2000))
          ~else_:(fun () ->
            Asm.addi a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) 3)
          (fun () -> Asm.xori a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) 0x55)
    | 8 ->
        (* print a deterministic character *)
        Asm.movi a Reg.R0 (65 + Rng.int rng 26);
        Asm.syscall a Rcoe_kernel.Syscall.sys_putchar
    | 9 ->
        (* kernel atomic on a fixed cell *)
        Asm.la a Reg.R0 "arr";
        Asm.movi a Reg.R1 (Rng.int rng 9);
        Asm.movi a Reg.R2 0;
        Asm.movi a Reg.R3 0;
        Asm.syscall a Rcoe_kernel.Syscall.sys_atomic
    | 10 ->
        Asm.remi a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) (2 + Rng.int rng 97)
    | _ ->
        Asm.shli a (reg (Rng.int rng 6)) (reg (Rng.int rng 6)) (Rng.int rng 4)
  in
  (* Top-level: a few straight ops, then 2-3 bounded loops with bodies. *)
  for _ = 1 to 4 + Rng.int rng 6 do
    emit_op true
  done;
  for _ = 1 to 2 + Rng.int rng 2 do
    let iters = 40 + Rng.int rng 400 in
    let body_len = 2 + Rng.int rng 6 in
    Asm.for_up a Reg.R7 ~start:0 ~stop:(Instr.Imm iters) (fun () ->
        for _ = 1 to body_len do
          emit_op false
        done)
  done;
  (* Publish: registers + a slice of the array into the result block. *)
  Asm.la a Reg.R8 "result";
  for i = 0 to 5 do
    Asm.st a Reg.R8 (reg i) i
  done;
  Asm.la a Reg.R12 "arr";
  Asm.ld a Reg.R11 Reg.R12 7;
  Asm.st a Reg.R8 Reg.R11 6;
  Asm.ld a Reg.R11 Reg.R12 33;
  Asm.st a Reg.R8 Reg.R11 7;
  (* And into the signature, so replicated runs also vote on it. *)
  Asm.la a Reg.R0 "result";
  Asm.movi a Reg.R1 8;
  Asm.syscall a Rcoe_kernel.Syscall.sys_ft_add_trace;
  Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  a

let observe ~mode ~n ~arch items =
  let branch_count =
    (Rcoe_machine.Arch.profile_of arch).Rcoe_machine.Arch.count_mode
    = Rcoe_machine.Arch.Compiler_assisted
  in
  let program = Asm.assemble ~entry:"main" ~branch_count items in
  let config =
    Runner.config_for ~mode ~nreplicas:n ~arch ~tick_interval:7_000 ()
  in
  let r = Runner.run_program ~config ~program ~max_cycles:50_000_000 () in
  (match r.Runner.halted with
  | Some h ->
      Alcotest.failf "%s/%d on %s halted: %s"
        (Config.mode_to_string mode) n
        (Rcoe_machine.Arch.to_string arch)
        (System.halt_reason_to_string h)
  | None -> ());
  Alcotest.(check bool) "finished" true r.Runner.finished;
  let result rid =
    let va = Program.data_addr program "result" in
    List.init 8 (fun i ->
        Rcoe_kernel.Kernel.read_user (System.kernel r.Runner.sys rid) ~va:(va + i))
  in
  (* All replicas must agree internally as well. *)
  for rid = 1 to n - 1 do
    Alcotest.(check (list int)) "replicas agree" (result 0) (result rid)
  done;
  (result 0, System.output r.Runner.sys 0)

let differential_one seed =
  (* Rebuild the assembly unit per configuration from the same seed: the
     generator is deterministic. *)
  let build () = random_program (Rng.create (seed * 7919)) in
  let base = observe ~mode:Config.Base ~n:1 ~arch:Rcoe_machine.Arch.X86 (build ()) in
  let lcd = observe ~mode:Config.LC ~n:2 ~arch:Rcoe_machine.Arch.X86 (build ()) in
  let cct = observe ~mode:Config.CC ~n:3 ~arch:Rcoe_machine.Arch.X86 (build ()) in
  let cc_arm = observe ~mode:Config.CC ~n:2 ~arch:Rcoe_machine.Arch.Arm (build ()) in
  let check name (r, out) =
    Alcotest.(check (list int)) (name ^ " result") (fst base) r;
    Alcotest.(check string) (name ^ " output") (snd base) out
  in
  check "LC-D" lcd;
  check "CC-T x86" cct;
  check "CC-D arm" cc_arm

let test_differential_sweep () =
  for seed = 1 to 12 do
    differential_one seed
  done

let suite =
  [
    Alcotest.test_case "12 random programs agree across Base/LC/CC/x86/Arm"
      `Slow test_differential_sweep;
  ]
