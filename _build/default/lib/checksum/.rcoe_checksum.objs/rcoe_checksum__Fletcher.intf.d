lib/checksum/fletcher.mli:
