lib/harness/runner.mli: Rcoe_core Rcoe_isa Rcoe_machine
