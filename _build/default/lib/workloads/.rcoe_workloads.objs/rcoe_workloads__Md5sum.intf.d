lib/workloads/md5sum.mli: Rcoe_isa
