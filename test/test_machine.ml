open Rcoe_machine
open Rcoe_isa

(* --- Mem --------------------------------------------------------------- *)

let test_mem_rw () =
  let m = Mem.create 64 in
  Mem.write m 5 42;
  Alcotest.(check int) "read back" 42 (Mem.read m 5);
  Alcotest.(check int) "zero init" 0 (Mem.read m 6)

let test_mem_bounds () =
  let m = Mem.create 8 in
  Alcotest.check_raises "oob read" (Mem.Abort 8) (fun () -> ignore (Mem.read m 8));
  Alcotest.check_raises "neg write" (Mem.Abort (-1)) (fun () -> Mem.write m (-1) 0)

let test_mem_flip () =
  let m = Mem.create 8 in
  Mem.write m 3 0b1010;
  Mem.flip_bit m ~addr:3 ~bit:0;
  Alcotest.(check int) "flip sets" 0b1011 (Mem.read m 3);
  Mem.flip_bit m ~addr:3 ~bit:0;
  Alcotest.(check int) "flip clears" 0b1010 (Mem.read m 3)

let test_mem_blit () =
  let m = Mem.create 32 in
  Mem.write_block m 0 [| 1; 2; 3; 4 |];
  Mem.blit m ~src:0 ~dst:10 ~len:4;
  Alcotest.(check (array int)) "copied" [| 1; 2; 3; 4 |] (Mem.read_block m 10 4)

(* --- Bus --------------------------------------------------------------- *)

let test_bus_tokens () =
  let b = Bus.create ~rate:1.0 in
  (* Initial burst allowance of 4. *)
  Alcotest.(check bool) "burst" true (Bus.try_acquire b 4);
  Alcotest.(check bool) "exhausted" false (Bus.try_acquire b 1);
  Bus.tick b;
  Alcotest.(check bool) "refilled" true (Bus.try_acquire b 1)

let test_bus_rate_caps_throughput () =
  let b = Bus.create ~rate:0.5 in
  ignore (Bus.try_acquire b 4);
  let got = ref 0 in
  for _ = 1 to 100 do
    Bus.tick b;
    if Bus.try_acquire b 1 then incr got
  done;
  Alcotest.(check bool) "about half" true (!got >= 45 && !got <= 55)

(* --- Page tables -------------------------------------------------------- *)

let test_pte_roundtrip () =
  let ptes =
    [
      Page_table.invalid_pte;
      { Page_table.valid = true; writable = true; dma = false; device = false; ppn = 7 };
      { Page_table.valid = true; writable = false; dma = true; device = false; ppn = 123 };
      { Page_table.valid = true; writable = true; dma = false; device = true; ppn = 2 };
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (Page_table.decode (Page_table.encode p) = p))
    ptes

let mk_table () =
  let m = Mem.create 4096 in
  let t = { Page_table.base = 0; npages = 8 } in
  Page_table.clear m t;
  (m, t)

let test_translate_unmapped () =
  let m, t = mk_table () in
  Alcotest.(check bool) "no mapping" true
    (Page_table.translate m t ~vaddr:0 ~write:false = Page_table.No_mapping)

let test_translate_basic () =
  let m, t = mk_table () in
  Page_table.set m t ~vpn:1
    { Page_table.valid = true; writable = false; dma = false; device = false; ppn = 3 };
  let va = Page_table.page_size + 17 in
  Alcotest.(check bool) "reads" true
    (Page_table.translate m t ~vaddr:va ~write:false
    = Page_table.Phys ((3 * Page_table.page_size) + 17));
  Alcotest.(check bool) "write protected" true
    (Page_table.translate m t ~vaddr:va ~write:true = Page_table.Not_writable)

let test_translate_device () =
  let m, t = mk_table () in
  Page_table.set m t ~vpn:2
    { Page_table.valid = true; writable = true; dma = false; device = true; ppn = 5 };
  Alcotest.(check bool) "device" true
    (Page_table.translate m t ~vaddr:((2 * Page_table.page_size) + 9) ~write:true
    = Page_table.Device (5, 9))

let test_translate_out_of_range_vpn () =
  let m, t = mk_table () in
  Alcotest.(check bool) "beyond table" true
    (Page_table.translate m t ~vaddr:(100 * Page_table.page_size) ~write:false
    = Page_table.No_mapping)

let test_corrupt_pte_reaches_bad_frame () =
  (* The Table VII mechanism: a flipped PTE bit really changes where the
     access lands. *)
  let m, t = mk_table () in
  Page_table.set m t ~vpn:0
    { Page_table.valid = true; writable = true; dma = false; device = false; ppn = 1 };
  Mem.flip_bit m ~addr:t.Page_table.base ~bit:9 (* ppn bit 1 *);
  match Page_table.translate m t ~vaddr:5 ~write:false with
  | Page_table.Phys p ->
      Alcotest.(check int) "frame changed" ((3 * Page_table.page_size) + 5) p
  | _ -> Alcotest.fail "expected Phys"

(* --- Core execution ----------------------------------------------------- *)

let mk_env ?(profile = Arch.x86) code_list =
  let mem = Mem.create 4096 in
  let env =
    {
      Core.code = Array.of_list code_list;
      mem;
      translate =
        (fun ~vaddr ~write ->
          ignore write;
          if vaddr >= 0 && vaddr < 4096 then Page_table.Phys vaddr
          else Page_table.No_mapping);
      dev_read = (fun _ _ -> 0);
      dev_write = (fun _ _ _ -> ());
      bus = Bus.create ~rate:100.0;
      profile = { profile with Arch.jitter_p = 0.0 };
      trace = Rcoe_obs.Trace.disabled ();
    }
  in
  (Core.create ~id:0 ~jitter_seed:1, env)

(* Unit tests drive the core directly, so they must also advance the bus
   (normally Machine.tick's job) or memory operations starve of credits. *)
let step core env =
  Bus.tick env.Core.bus;
  Core.step core env

let run_until_event core env ~fuel =
  let rec go fuel =
    if fuel = 0 then None
    else
      match step core env with
      | Core.Event e -> Some e
      | Core.Ran | Core.Stalled -> go (fuel - 1)
  in
  go fuel

let test_core_arith () =
  let open Instr in
  let core, env =
    mk_env
      [
        Mov (Reg.R1, Imm 6);
        Alu (Mul, Reg.R2, Reg.R1, Imm 7);
        Alu (Sub, Reg.R2, Reg.R2, Imm 2);
        Syscall 0;
      ]
  in
  (match run_until_event core env ~fuel:10 with
  | Some (Core.Ev_syscall 0) -> ()
  | _ -> Alcotest.fail "expected syscall");
  Alcotest.(check int) "6*7-2" 40 core.Core.regs.(2)

let test_core_memory () =
  let open Instr in
  let core, env =
    mk_env
      [
        Mov (Reg.R1, Imm 100);
        Mov (Reg.R2, Imm 55);
        St (Reg.R1, Reg.R2, 3);
        Ld (Reg.R3, Reg.R1, 3);
        Syscall 0;
      ]
  in
  ignore (run_until_event core env ~fuel:20);
  Alcotest.(check int) "store/load" 55 core.Core.regs.(3);
  Alcotest.(check int) "in memory" 55 (Mem.read env.Core.mem 103)

let test_core_push_pop () =
  let open Instr in
  let core, env =
    mk_env
      [
        Mov (Reg.R13, Imm 200);
        Mov (Reg.R1, Imm 9);
        Push Reg.R1;
        Mov (Reg.R1, Imm 0);
        Pop Reg.R2;
        Syscall 0;
      ]
  in
  ignore (run_until_event core env ~fuel:20);
  Alcotest.(check int) "pop" 9 core.Core.regs.(2);
  Alcotest.(check int) "sp restored" 200 core.Core.regs.(13)

let test_core_branch_counting_hw () =
  let open Instr in
  (* Loop 5 times: 5 taken back-branches + 1 final not-taken + 1 jmp = 7
     branch executions in hardware counting mode. *)
  let core, env =
    mk_env
      [
        Mov (Reg.R1, Imm 0);
        (* 1: *) Alu (Add, Reg.R1, Reg.R1, Imm 1);
        B (Lt, Reg.R1, Imm 5, Abs 1);
        Jmp (Abs 4);
        Syscall 0;
      ]
  in
  ignore (run_until_event core env ~fuel:50);
  Alcotest.(check int) "hw branch count" 6 core.Core.hw_branches;
  Alcotest.(check int) "loop ran" 5 core.Core.regs.(1)

let test_core_cntinc_is_architectural () =
  let open Instr in
  let core, env =
    mk_env ~profile:Arch.arm [ Cntinc; Cntinc; Syscall 0 ]
  in
  ignore (run_until_event core env ~fuel:10);
  Alcotest.(check int) "r9 = 2" 2 core.Core.regs.(9);
  Alcotest.(check int) "compiler-mode count" 2 (Core.branch_count core Arch.arm)

let test_core_last_was_cntinc () =
  let open Instr in
  let core, env = mk_env ~profile:Arch.arm [ Cntinc; Nop; Syscall 0 ] in
  (match step core env with
  | Core.Ran -> ()
  | _ -> Alcotest.fail "step");
  Alcotest.(check bool) "flag set after cntinc" true core.Core.last_was_cntinc;
  ignore (step core env);
  Alcotest.(check bool) "flag cleared by next instr" false core.Core.last_was_cntinc

let test_core_div_by_zero () =
  let open Instr in
  let core, env =
    mk_env [ Mov (Reg.R1, Imm 0); Alu (Div, Reg.R2, Reg.R1, Reg Reg.R1) ]
  in
  match run_until_event core env ~fuel:10 with
  | Some (Core.Ev_fault Core.Division_by_zero) -> ()
  | _ -> Alcotest.fail "expected division fault"

let test_core_unmapped_fault () =
  let open Instr in
  let core, env = mk_env [ Mov (Reg.R1, Imm 100_000); Ld (Reg.R2, Reg.R1, 0) ] in
  match run_until_event core env ~fuel:10 with
  | Some (Core.Ev_fault (Core.Unmapped { vaddr = 100_000; write = false })) -> ()
  | _ -> Alcotest.fail "expected unmapped fault"

let test_core_bad_ip () =
  let open Instr in
  let core, env = mk_env [ Jmp (Abs 0) ] in
  core.Core.ip <- 77;
  match run_until_event core env ~fuel:5 with
  | Some (Core.Ev_fault (Core.Bad_ip 77)) -> ()
  | _ -> Alcotest.fail "expected bad ip"

let test_core_rep_movs_interruptible () =
  let open Instr in
  let core, env =
    mk_env
      [
        Mov (Reg.R0, Imm 300);
        Mov (Reg.R1, Imm 100);
        Mov (Reg.R2, Imm 8);
        Rep_movs;
        Syscall 0;
      ]
  in
  for i = 0 to 7 do
    Mem.write env.Core.mem (100 + i) (i * 11)
  done;
  (* Step the three movs. *)
  for _ = 1 to 3 do
    ignore (step core env)
  done;
  (* One word per step; registers stay consistent mid-copy. *)
  ignore (step core env);
  Alcotest.(check int) "one word copied" 7 core.Core.regs.(2);
  Alcotest.(check int) "src advanced" 101 core.Core.regs.(1);
  Alcotest.(check bool) "still at rep" true (Core.rep_in_progress core env);
  ignore (run_until_event core env ~fuel:20);
  for i = 0 to 7 do
    Alcotest.(check int) "copied" (i * 11) (Mem.read env.Core.mem (300 + i))
  done;
  Alcotest.(check int) "rep does not count branches" 0 core.Core.hw_branches

let test_core_breakpoint_and_resume_flag () =
  let open Instr in
  let core, env =
    mk_env [ Mov (Reg.R1, Imm 1); Mov (Reg.R2, Imm 2); Syscall 0 ]
  in
  core.Core.bp <- Some 1;
  (match run_until_event core env ~fuel:5 with
  | Some Core.Ev_breakpoint -> ()
  | _ -> Alcotest.fail "expected breakpoint");
  Alcotest.(check int) "stopped before instr" 1 core.Core.ip;
  Alcotest.(check int) "r2 untouched" 0 core.Core.regs.(2);
  (* Resume-flag semantics: suppress once, execute, re-arm. *)
  core.Core.bp_suppress <- true;
  (match run_until_event core env ~fuel:5 with
  | Some (Core.Ev_syscall 0) -> ()
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check int) "r2 set" 2 core.Core.regs.(2)

let test_core_breakpoint_refires_in_loop () =
  let open Instr in
  let core, env =
    mk_env
      [
        Mov (Reg.R1, Imm 0);
        (* 1: *) Alu (Add, Reg.R1, Reg.R1, Imm 1);
        B (Lt, Reg.R1, Imm 3, Abs 1);
        Syscall 0;
      ]
  in
  core.Core.bp <- Some 1;
  let fires = ref 0 in
  let rec go fuel =
    if fuel = 0 then ()
    else
      match step core env with
      | Core.Event Core.Ev_breakpoint ->
          incr fires;
          core.Core.bp_suppress <- true;
          go (fuel - 1)
      | Core.Event (Core.Ev_syscall _) -> ()
      | _ -> go (fuel - 1)
  in
  go 50;
  Alcotest.(check int) "fires once per pass" 3 !fires

let test_core_exclusive_monitor () =
  let open Instr in
  let core, env =
    mk_env
      [
        Mov (Reg.R1, Imm 100);
        Ldex (Reg.R2, Reg.R1);
        Stex (Reg.R3, Reg.R2, Reg.R1);
        Ldex (Reg.R2, Reg.R1);
        Nop;
        Stex (Reg.R4, Reg.R2, Reg.R1);
        Syscall 0;
      ]
  in
  (* Clear the monitor between the second ldex/stex pair, as a kernel
     entry would. *)
  for _ = 1 to 3 do
    ignore (step core env)
  done;
  Alcotest.(check int) "first stex succeeded" 0 core.Core.regs.(3);
  ignore (step core env);
  Core.clear_exclusive core;
  ignore (run_until_event core env ~fuel:10);
  Alcotest.(check int) "second stex failed" 1 core.Core.regs.(4)

let test_core_atomic_add () =
  let open Instr in
  let core, env =
    mk_env
      [ Mov (Reg.R1, Imm 64); Atomic_add (Reg.R2, Reg.R1, Imm 5); Syscall 0 ]
  in
  Mem.write env.Core.mem 64 10;
  ignore (run_until_event core env ~fuel:10);
  Alcotest.(check int) "returns old" 10 core.Core.regs.(2);
  Alcotest.(check int) "adds" 15 (Mem.read env.Core.mem 64)

let test_core_float_ops () =
  let open Instr in
  let core, env =
    mk_env
      [
        Fldi (Reg.F0, 9.0);
        Funop (Fsqrt, Reg.F1, Reg.F0);
        Falu (Fmul, Reg.F2, Reg.F1, Reg.F1);
        Syscall 0;
      ]
  in
  ignore (run_until_event core env ~fuel:10);
  Alcotest.(check (float 1e-9)) "sqrt" 3.0 core.Core.fregs.(1);
  Alcotest.(check (float 1e-9)) "square" 9.0 core.Core.fregs.(2)

(* --- Machine / devices / IPIs ------------------------------------------- *)

let test_machine_ipi_latency () =
  let m = Machine.create ~profile:Arch.x86 ~mem_words:1024 ~ncores:2 ~seed:1 () in
  Machine.send_ipi m ~target:1;
  Alcotest.(check bool) "not yet" false (Machine.ipi_visible m ~core_id:1);
  for _ = 1 to Arch.x86.Arch.ipi_latency + 1 do
    Machine.tick m
  done;
  Alcotest.(check bool) "visible" true (Machine.ipi_visible m ~core_id:1);
  Machine.clear_ipi m ~core_id:1;
  Alcotest.(check bool) "cleared" false (Machine.ipi_visible m ~core_id:1)

let test_machine_irq_routing () =
  let m = Machine.create ~profile:Arch.x86 ~mem_words:8192 ~ncores:2 ~seed:1 () in
  let nd = Netdev.create ~mem:m.Machine.mem ~dma_base:0 ~dma_words:4096 in
  let dpn = Machine.add_device m (Netdev.device nd) in
  Netdev.inject nd ~now:0 [| 1; 2; 3 |];
  Machine.tick m;
  Alcotest.(check (option int)) "routed to core 0" (Some dpn)
    (Machine.pending_irq m ~core_id:0);
  Alcotest.(check (option int)) "not core 1" None (Machine.pending_irq m ~core_id:1);
  Machine.route_irqs_to m 1;
  Alcotest.(check (option int)) "re-routed" (Some dpn)
    (Machine.pending_irq m ~core_id:1)

(* --- Netdev -------------------------------------------------------------- *)

let mk_net () =
  let m = Machine.create ~profile:Arch.x86 ~mem_words:16384 ~ncores:1 ~seed:1 () in
  let nd = Netdev.create ~mem:m.Machine.mem ~dma_base:8192 ~dma_words:4096 in
  (m, nd)

let test_netdev_rx_flow () =
  let m, nd = mk_net () in
  Netdev.inject nd ~now:0 [| 10; 20; 30 |];
  Machine.tick m |> ignore;
  (Netdev.device nd).Device.dev_tick ~now:1;
  let dev = Netdev.device nd in
  Alcotest.(check int) "one pending" 1 (dev.Device.read_reg Netdev.reg_rx_count);
  let off = dev.Device.read_reg Netdev.reg_rx_addr in
  let len = dev.Device.read_reg Netdev.reg_rx_len in
  Alcotest.(check int) "len" 3 len;
  Alcotest.(check int) "payload in DMA" 20 (Mem.read m.Machine.mem (8192 + off + 1));
  Alcotest.(check bool) "irq up" true (dev.Device.irq_pending ());
  dev.Device.irq_ack ();
  Alcotest.(check bool) "irq acked" false (dev.Device.irq_pending ());
  dev.Device.write_reg Netdev.reg_rx_consume 1;
  Alcotest.(check int) "consumed" 0 (dev.Device.read_reg Netdev.reg_rx_count)

let test_netdev_tx_flow () =
  let m, nd = mk_net () in
  let dev = Netdev.device nd in
  Mem.write_block m.Machine.mem (8192 + 2048) [| 5; 6; 7; 8 |];
  dev.Device.write_reg Netdev.reg_tx_addr 2048;
  dev.Device.write_reg Netdev.reg_tx_len 4;
  dev.Device.write_reg Netdev.reg_tx_doorbell 1;
  match Netdev.take_tx nd with
  | [ (_, payload) ] ->
      Alcotest.(check (array int)) "payload" [| 5; 6; 7; 8 |] payload
  | _ -> Alcotest.fail "expected one packet"

let test_netdev_wedge () =
  let m, nd = mk_net () in
  Netdev.set_wedged nd true;
  Netdev.inject nd ~now:0 [| 1 |];
  for _ = 1 to 5 do Machine.tick m done;
  (Netdev.device nd).Device.dev_tick ~now:5;
  Alcotest.(check int) "nothing delivered" 0
    ((Netdev.device nd).Device.read_reg Netdev.reg_rx_count);
  Alcotest.(check int) "still queued" 1 (Netdev.pending_host_packets nd)

let test_netdev_ring_overflow_drops () =
  let m, nd = mk_net () in
  (* Ring has dma_words/2/slot_words = 32 slots; inject 40 and never
     consume. *)
  ignore m;
  for i = 1 to 40 do
    Netdev.inject nd ~now:0 [| i |]
  done;
  for t = 1 to 50 do (Netdev.device nd).Device.dev_tick ~now:t done;
  Alcotest.(check int) "ring full" 32
    ((Netdev.device nd).Device.read_reg Netdev.reg_rx_count);
  Alcotest.(check bool) "queued or dropped" true
    (Netdev.pending_host_packets nd = 8)

let test_netdev_oversize_rejected () =
  let _, nd = mk_net () in
  Alcotest.(check bool) "raises" true
    (try Netdev.inject nd ~now:0 (Array.make 100 0); false
     with Invalid_argument _ -> true)

(* QCheck: ALU reference semantics. *)
let qcheck_alu_add_sub =
  QCheck.Test.make ~name:"core add/sub/mul vs OCaml semantics" ~count:300
    QCheck.(pair (int_range (-100000) 100000) (int_range (-1000) 1000))
    (fun (x, y) ->
      let open Instr in
      let core, env =
        mk_env
          [
            Mov (Reg.R1, Imm x);
            Alu (Add, Reg.R2, Reg.R1, Imm y);
            Alu (Sub, Reg.R3, Reg.R1, Imm y);
            Alu (Mul, Reg.R4, Reg.R1, Imm y);
            Syscall 0;
          ]
      in
      ignore (run_until_event core env ~fuel:10);
      core.Core.regs.(2) = x + y
      && core.Core.regs.(3) = x - y
      && core.Core.regs.(4) = x * y)

let suite =
  [
    Alcotest.test_case "mem read/write" `Quick test_mem_rw;
    Alcotest.test_case "mem bounds abort" `Quick test_mem_bounds;
    Alcotest.test_case "mem bit flip" `Quick test_mem_flip;
    Alcotest.test_case "mem blit" `Quick test_mem_blit;
    Alcotest.test_case "bus tokens" `Quick test_bus_tokens;
    Alcotest.test_case "bus rate caps throughput" `Quick test_bus_rate_caps_throughput;
    Alcotest.test_case "pte roundtrip" `Quick test_pte_roundtrip;
    Alcotest.test_case "translate unmapped" `Quick test_translate_unmapped;
    Alcotest.test_case "translate basic + write protect" `Quick test_translate_basic;
    Alcotest.test_case "translate device" `Quick test_translate_device;
    Alcotest.test_case "translate out-of-range vpn" `Quick
      test_translate_out_of_range_vpn;
    Alcotest.test_case "corrupt PTE redirects access" `Quick
      test_corrupt_pte_reaches_bad_frame;
    Alcotest.test_case "core arithmetic" `Quick test_core_arith;
    Alcotest.test_case "core memory" `Quick test_core_memory;
    Alcotest.test_case "core push/pop" `Quick test_core_push_pop;
    Alcotest.test_case "hw branch counting" `Quick test_core_branch_counting_hw;
    Alcotest.test_case "cntinc is architectural (r9)" `Quick
      test_core_cntinc_is_architectural;
    Alcotest.test_case "counter-race flag" `Quick test_core_last_was_cntinc;
    Alcotest.test_case "division by zero faults" `Quick test_core_div_by_zero;
    Alcotest.test_case "unmapped access faults" `Quick test_core_unmapped_fault;
    Alcotest.test_case "bad ip faults" `Quick test_core_bad_ip;
    Alcotest.test_case "rep-movs word-by-word, interruptible" `Quick
      test_core_rep_movs_interruptible;
    Alcotest.test_case "breakpoint + resume flag" `Quick
      test_core_breakpoint_and_resume_flag;
    Alcotest.test_case "breakpoint refires in loop" `Quick
      test_core_breakpoint_refires_in_loop;
    Alcotest.test_case "exclusive monitor cleared by kernel" `Quick
      test_core_exclusive_monitor;
    Alcotest.test_case "atomic add" `Quick test_core_atomic_add;
    Alcotest.test_case "float ops" `Quick test_core_float_ops;
    Alcotest.test_case "ipi latency" `Quick test_machine_ipi_latency;
    Alcotest.test_case "irq routing" `Quick test_machine_irq_routing;
    Alcotest.test_case "netdev rx flow" `Quick test_netdev_rx_flow;
    Alcotest.test_case "netdev tx flow" `Quick test_netdev_tx_flow;
    Alcotest.test_case "netdev wedge" `Quick test_netdev_wedge;
    Alcotest.test_case "netdev ring overflow" `Quick test_netdev_ring_overflow_drops;
    Alcotest.test_case "netdev oversize rejected" `Quick test_netdev_oversize_rejected;
    QCheck_alcotest.to_alcotest qcheck_alu_add_sub;
  ]
