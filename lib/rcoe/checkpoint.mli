(** Verified checkpoints for rollback recovery.

    A checkpoint is a consistent cut of the whole replicated state,
    taken right after a successful signature vote — the only moments
    the replicas are provably equivalent. Each snapshot holds every
    live replica's memory partition and kernel/core bookkeeping
    (via {!Rcoe_kernel.Kernel.snapshot}), the shared framework region,
    the DMA window, and the engine's logical clocks, so the engine can
    later rewind all of it at once and re-execute.

    {b Snapshot kinds.} A [Full] snapshot copies every captured region
    outright. A [Delta] snapshot copies only the pages {!Rcoe_machine.Mem}'s
    write tracking reports dirty since the previous capture — O(dirty
    words) instead of O(partition) — and records the rest as skipped.
    Restoring a delta walks the ring's newest-first chain down to the
    nearest full image and replays the deltas on top, so the
    reconstructed state is bit-for-bit the image a [Full] capture at the
    same cut would have produced. Capture clears the dirty flags (by
    default), establishing the baseline for the next delta; the caller
    must therefore capture [Full] into an empty ring, and clear the
    flags again after a rollback restore (memory then equals the newest
    snapshot).

    Snapshots live in a bounded ring, newest first. Keeping more than
    one matters: a fault injected *after* a vote but *before* the next
    capture is frozen into the newest snapshot, and recovery must be
    able to escalate to an older, still-clean one (see
    [System.try_rollback]). The oldest ring entry is always
    self-contained (all-full regions): eviction folds the outgoing base
    into its successor in O(delta) time, reusing the base's arrays.

    The engine above owns policy (when to capture, retry budgets,
    costs); this module owns the data. Device-internal state (e.g. the
    network device's queues) is outside the sphere of replication and
    is deliberately not captured — recovery campaigns use compute
    workloads.

    Capture and restore read and write every replica's partition (and
    the dirty bitmap) directly, so they must only run while replica
    execution is quiescent. Both engines guarantee this: the sequential
    engine is single-domain, and the parallel engine ({!Config.engine})
    parks all worker domains at a barrier before any round logic —
    including checkpoint capture and rollback restore — executes on the
    orchestrating domain. *)

type region =
  | R_full of int array  (** Complete image of the region. *)
  | R_delta of { r_len : int; r_pages : (int * int array) list }
      (** Dirty pages only: [(region-relative word offset, words)],
          ascending, disjoint, each at most {!Rcoe_machine.Mem.page_size}
          words. [r_len] is the full region length. *)

type kind = Full | Delta

type replica_image = {
  i_rid : int;
  i_partition : region;
  i_kernel : Rcoe_kernel.Kernel.snapshot;
  i_finished : bool;
}

type snap = {
  s_kind : kind;
  s_cycle : int;  (** Capture cycle (rollback target, for reporting). *)
  s_round_seq : int;
  s_ticks : int;
  s_prim : int;
  s_shared : region;
  s_dma : region;
  s_replicas : replica_image list;  (** Live replicas at capture. *)
  s_words : int;  (** Words actually copied at capture (cost basis). *)
  s_skipped_words : int;  (** Clean words a [Full] capture would also have copied. *)
}

type t

val create : depth:int -> t
(** Raises [Invalid_argument] if [depth < 1]. *)

val depth : t -> int
val count : t -> int
(** Snapshots currently held (<= depth). *)

val taken : t -> int
(** Snapshots stored over the ring's lifetime. *)

val push : t -> snap -> unit
(** Store as newest. When the ring is full the oldest snapshot is
    evicted and folded into its successor, which becomes the new
    self-contained base (its arrays absorb the evicted base's, so the
    fold is O(delta)). Eviction is deferred while either of the two
    oldest snapshots is pinned (see {!pin}): the ring then grows past
    [depth] and shrinks back when the pins release. *)

val pin : t -> snap -> unit
(** Hold [snap] against eviction. Folding mutates the evicted base's
    arrays in place and replaces its successor record, both of which
    silently invalidate a handle a long-running consumer (a replay
    checker verifying a chunk, a diagnostic resolving an old image)
    still holds — so such a consumer must pin the snapshot for as long
    as it keeps the handle. Pins are refcounted per snapshot (physical
    identity). *)

val unpin : t -> snap -> unit
(** Release one {!pin}. When the last pin on a tail snapshot drops, any
    deferred evictions run immediately. Raises [Invalid_argument] if
    [snap] is not pinned. *)

val pinned : t -> snap -> bool

val newest : t -> snap option

val drop_newest : t -> unit
(** Recovery escalation: discard a snapshot that keeps failing. *)

val words : snap -> int
(** Words copied at capture — the O(dirty) figure for a [Delta]. *)

val skipped_words : snap -> int
val kind : snap -> kind

val total_words : snap -> int
(** Full size of the captured cut ([words + skipped] at capture time);
    what a restore writes back. *)

val to_list : t -> snap list
(** The ring, newest first (for tests and diagnostics). *)

val capture :
  ?clear_dirty:bool ->
  Rcoe_machine.Mem.t ->
  Rcoe_kernel.Layout.t ->
  kind:kind ->
  cycle:int ->
  round_seq:int ->
  ticks:int ->
  prim:int ->
  replicas:(int * Rcoe_kernel.Kernel.t * bool) list ->
  snap
(** Snapshot the given [(rid, kernel, finished)] replicas plus the
    shared and DMA regions. Call only at a verified quiescent point.
    [Delta] copies only pages dirty in [mem]'s write tracking; it is
    only meaningful when every capture since the ring's base also ran
    against the same tracking, so capture [Full] into an empty ring.
    Clears the dirty flags afterwards unless [clear_dirty:false]
    (which lets a differential harness capture the same cut twice). *)

val restore_memory : Rcoe_machine.Mem.t -> Rcoe_kernel.Layout.t -> t -> snap -> unit
(** Blit every captured partition, the shared region and the DMA window
    back, reconstructing delta regions from [t]'s chain below [snap].
    The caller pairs this with {!Rcoe_kernel.Kernel.restore} on each
    image, resetting its own engine state, and — under incremental
    checkpointing — {!Rcoe_machine.Mem.clear_dirty} (memory now equals
    the restored snapshot). A [snap] not present in [t] is restored
    standalone and must be self-contained. *)

val resolve_partition : t -> snap -> rid:int -> int array
(** The fully-resolved partition image of replica [rid] in [snap]
    (fresh array; the ring is not modified). Raises [Invalid_argument]
    if the chain cannot resolve it. *)
