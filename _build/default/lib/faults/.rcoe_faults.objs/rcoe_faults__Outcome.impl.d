lib/faults/outcome.ml: Config Hashtbl List Option Rcoe_core System
