exception Abort of int

type t = { words : int array }

let create size = { words = Array.make size 0 }

let size t = Array.length t.words

let read t addr =
  if addr < 0 || addr >= Array.length t.words then raise (Abort addr);
  Array.unsafe_get t.words addr

let write t addr v =
  if addr < 0 || addr >= Array.length t.words then raise (Abort addr);
  Array.unsafe_set t.words addr v

let blit t ~src ~dst ~len =
  let n = Array.length t.words in
  if len < 0 then invalid_arg "Mem.blit: negative length";
  if src < 0 || src + len > n then raise (Abort src);
  if dst < 0 || dst + len > n then raise (Abort dst);
  Array.blit t.words src t.words dst len

let read_block t addr len =
  if addr < 0 || len < 0 || addr + len > Array.length t.words then
    raise (Abort addr);
  Array.sub t.words addr len

let write_block t addr block =
  let len = Array.length block in
  if addr < 0 || addr + len > Array.length t.words then raise (Abort addr);
  Array.blit block 0 t.words addr len

let flip_bit t ~addr ~bit =
  if bit < 0 || bit > 61 then invalid_arg "Mem.flip_bit: bit out of range";
  write t addr (read t addr lxor (1 lsl bit))

let fill t ~addr ~len v =
  if addr < 0 || len < 0 || addr + len > Array.length t.words then
    raise (Abort addr);
  Array.fill t.words addr len v
