(** Physical memory.

    One flat, word-addressed array shared by all replicas, like the real
    machine: the kernel partitions it between replicas and a small shared
    region, and fault injection flips bits anywhere in it. Out-of-range
    accesses raise {!Abort}, which the core/kernel turn into a (kernel)
    data abort — this is how a corrupted page-table entry whose frame
    number decodes to garbage manifests, as in the paper's Table VII
    "kernel exceptions" row. *)

exception Abort of int
(** Physical address out of range. *)

type t

val create : int -> t
(** [create size] is zeroed memory of [size] words. *)

val size : t -> int

val read : t -> int -> int
(** Raises {!Abort}. *)

val write : t -> int -> int -> unit
(** Raises {!Abort}. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Word copy within physical memory; raises {!Abort} on any
    out-of-range word. *)

val read_block : t -> int -> int -> int array
val write_block : t -> int -> int array -> unit

val flip_bit : t -> addr:int -> bit:int -> unit
(** Fault injection: XOR bit [bit] (0–61) of the word at [addr].
    Raises {!Abort} if out of range, [Invalid_argument] on a bad bit. *)

val fill : t -> addr:int -> len:int -> int -> unit
