(** The multicore machine: physical memory, shared bus, cores, devices,
    and interrupt routing.

    External (device) interrupts are routed to a single core — the
    primary replica's core under RCoE; re-routing on primary removal is
    part of error masking (paper Section IV-A). Inter-processor
    interrupts are modelled as per-core pending flags with a delivery
    latency. *)

type t = {
  profile : Arch.profile;
  mem : Mem.t;
  buses : Bus.t array;
      (** One fair-share bus lane per core: lane [i] refills at
          [bus_rate / ncores] and is touched only by core [i], so a
          replica's memory timing is independent of the order replicas
          are stepped in — a prerequisite for stepping them on separate
          domains. A single-core machine keeps the full rate. *)
  cores : Core.t array;
  mutable devices : Device.t array;  (** Index = device page id. *)
  mutable now : int;  (** Global cycle counter. *)
  mutable irq_route : int;  (** Core id receiving device interrupts. *)
  ipi_pending : int array;  (** Per-core cycle at which a pending IPI
                                becomes visible; [max_int] = none. *)
  trace : Rcoe_obs.Trace.t;  (** Event sink; disabled unless given. *)
}

val create :
  ?trace:Rcoe_obs.Trace.t ->
  profile:Arch.profile ->
  mem_words:int ->
  ncores:int ->
  seed:int ->
  unit ->
  t
(** Cores get distinct deterministic jitter streams derived from
    [seed]. The trace's clock is pointed at this machine's cycle
    counter. *)

val add_device : t -> Device.t -> int
(** Register a device; returns its device page id. *)

val tick : t -> unit
(** Advance global time one cycle: bus refill, device ticks. Core
    stepping is driven by the replica scheduler, not here. *)

val tick_devices : t -> unit
(** Run the device ticks for the current [now] without advancing time —
    the parallel engine's catch-up after jumping [now] to a window
    boundary: devices drain everything due by [now] in one call, exactly
    as per-cycle ticking would have by then. *)

val bus_lane : t -> core_id:int -> Bus.t
(** The per-core bus lane (see {!type-t}). *)

val bus_utilisation : t -> float
(** Mean utilisation across lanes (diagnostic). *)

val dev_read : t -> int -> int -> int
(** [dev_read m dpn off]; unknown device pages read 0. *)

val dev_write : t -> int -> int -> int -> unit

val pending_irq : t -> core_id:int -> int option
(** The lowest device page id with its interrupt line raised, if device
    interrupts are routed to [core_id]. *)

val ack_irq : t -> int -> unit
(** Acknowledge (lower) a device's interrupt line. *)

val send_ipi : t -> target:int -> unit
(** Raise an IPI to core [target]; it becomes visible after the
    profile's IPI latency. *)

val ipi_visible : t -> core_id:int -> bool
val clear_ipi : t -> core_id:int -> unit

val route_irqs_to : t -> int -> unit
