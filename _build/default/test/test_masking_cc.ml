(* Error masking under CC-RCoE (x86 only — the spare page-table bit), the
   Arm compiler-assisted counting path at system level, and assorted
   small-surface coverage. *)

open Rcoe_machine
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness

let x86 = Arch.X86
let arm = Arch.Arm

let test_cc_masking_primary_when_quiescent () =
  (* CC-T with masking: a primary fault detected at a tick vote (no I/O
     in flight — the KV server is idle) downgrades, re-elects, and
     patches the DMA pages; CC primary removal costs more than LC's. *)
  let config =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas:3 ~arch:x86 ~with_net:true ())
      with
      Config.masking = true;
    }
  in
  let program = Kvstore.program ~max_records:128 ~branch_count:false () in
  let sys = System.create ~config ~program in
  System.run sys ~max_cycles:200_000;
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 0 + 1) ~bit:3;
  System.run sys ~max_cycles:2_000_000
    ~stop:(fun s -> System.downgrades s <> []);
  (match System.downgrades sys with
  | [ (_, 0, cost) ] ->
      Alcotest.(check bool) "CC primary removal expensive" true (cost > 3_000_000)
  | _ -> Alcotest.fail "expected primary downgrade");
  Alcotest.(check int) "new primary" 1 (System.primary sys);
  Alcotest.(check bool) "still up" true (System.halted sys = None)

let test_cc_primary_fault_under_traffic () =
  (* A primary fault under live CC traffic either masks (detection landed
     on a tick or post-vote-committed write) at the cost of a ~2.6 ms
     service gap — Table X's CC primary recovery — or, if detection lands
     on a device-read rendezvous whose input the faulty primary already
     distributed, halts with the paper's Section IV-A restriction. Either
     way nothing corrupt may escape, and a masked system must resume
     serving once the recovery stall has drained. *)
  let config =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas:3 ~arch:x86 ~with_net:true ())
      with
      Config.masking = true;
    }
  in
  let injected = ref false in
  let inject sys =
    if (not !injected) && System.tick_count sys > 15 then begin
      injected := true;
      Mem.flip_bit
        (System.machine sys).Machine.mem
        ~addr:(System.sig_base sys 0 + 1)
        ~bit:3
    end
  in
  let res =
    Kv_run.run ~config ~workload:Ycsb.A ~records:60 ~operations:400 ~inject
      ~stall_limit:25_000_000 ()
  in
  let sys = res.Kv_run.sys in
  let c = res.Kv_run.counters in
  Alcotest.(check int) "no corruption escaped" 0 c.Ycsb.corrupted;
  match System.halted sys with
  | Some System.H_masking_blocked -> () (* the Section IV-A restriction *)
  | None ->
      (match System.downgrades sys with
      | [ (_, 0, _) ] -> ()
      | _ -> Alcotest.fail "expected primary downgrade");
      Alcotest.(check bool) "service resumed after recovery" false
        res.Kv_run.stalled;
      Alcotest.(check int) "all ops served" c.Ycsb.issued c.Ycsb.completed
  | Some h ->
      Alcotest.failf "unexpected halt: %s" (System.halt_reason_to_string h)

let test_cc_masking_rejected_on_arm () =
  (* Section IV-A: no spare PTE bit on 32-bit Arm. *)
  let config =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas:3 ~arch:arm ())
      with
      Config.masking = true;
    }
  in
  match Config.validate config with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected rejection"

let test_cc_arm_datarace_deterministic () =
  (* The compiler-assisted counter (including its non-atomic-update race)
     must still give instruction-identical preemption: racy counters
     agree across replicas on Arm too. *)
  for seed = 1 to 3 do
    let config =
      Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:arm ~seed
        ~tick_interval:1_500 ()
    in
    let program =
      Datarace.program ~threads:8 ~iters:100 ~locked:false ~branch_count:true ()
    in
    let r = Runner.run_program ~config ~program () in
    (match r.Runner.halted with
    | Some h -> Alcotest.failf "halted: %s" (System.halt_reason_to_string h)
    | None -> ());
    let counter rid =
      Rcoe_kernel.Kernel.read_user (System.kernel r.Runner.sys rid)
        ~va:(Rcoe_isa.Program.data_addr program Datarace.counter_label)
    in
    Alcotest.(check int) "replicas agree" (counter 0) (counter 1)
  done

let test_reintegration_after_cc_downgrade () =
  let config =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas:3 ~arch:x86
         ~tick_interval:5_000 ())
      with
      Config.masking = true;
    }
  in
  let a = Rcoe_isa.Asm.create "spin" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.for_up a Rcoe_isa.Reg.R4 ~start:0
    ~stop:(Rcoe_isa.Instr.Imm 2_000_000) (fun () -> Rcoe_isa.Asm.nop a);
  Rcoe_isa.Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  let program = Rcoe_isa.Asm.assemble ~entry:"main" a in
  let sys = System.create ~config ~program in
  System.run sys ~max_cycles:30_000;
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 2 + 2) ~bit:8;
  System.run sys ~max_cycles:500_000 ~stop:(fun s -> System.downgrades s <> []);
  Alcotest.(check (list int)) "DMR" [ 0; 1 ] (System.live sys);
  (match System.request_reintegration sys ~rid:2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected: %s" e);
  System.run sys ~max_cycles:800_000
    ~stop:(fun s -> System.reintegrations s <> []);
  Alcotest.(check (list int)) "TMR again under CC" [ 0; 1; 2 ] (System.live sys);
  System.run sys ~max_cycles:400_000;
  Alcotest.(check bool) "no divergence after CC re-admission" true
    (System.halted sys = None)

(* --- small-surface coverage ---------------------------------------------- *)

let test_arch_cycles_to_us () =
  Alcotest.(check (float 1e-9)) "x86" 1.0
    (Arch.cycles_to_us Arch.x86 3400);
  Alcotest.(check (float 1e-9)) "arm" 2.0 (Arch.cycles_to_us Arch.arm 2000)

let test_syscall_names_and_arities () =
  let open Rcoe_kernel.Syscall in
  Alcotest.(check string) "name" "ft_mem_rep" (name sys_ft_mem_rep);
  Alcotest.(check string) "unknown" "unknown(99)" (name 99);
  Alcotest.(check int) "exit arity" 0 (arg_count sys_exit);
  Alcotest.(check int) "atomic arity" 4 (arg_count sys_atomic);
  Alcotest.(check int) "rep arity" 3 (arg_count sys_ft_mem_rep);
  Alcotest.(check int) "input_wait arity" 0 (arg_count sys_input_wait)

let test_replica_state_name_diagnostic () =
  let a = Rcoe_isa.Asm.create "spin" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  let program = Rcoe_isa.Asm.assemble ~entry:"main" a in
  let sys =
    System.create
      ~config:(Runner.config_for ~mode:Config.LC ~nreplicas:2 ~arch:x86 ())
      ~program
  in
  let s = System.replica_state_name sys 0 in
  Alcotest.(check bool) "mentions state and phase" true
    (String.length s > 5)

let test_wl_resolve_entry_detects_layout_drift () =
  (* A build function that changes layout based on the probed address
     must be rejected. *)
  let build addr =
    let a = Rcoe_isa.Asm.create "bad" in
    Rcoe_isa.Asm.label a "main";
    Rcoe_isa.Asm.nop a;
    if addr = 1 then Rcoe_isa.Asm.nop a;
    Rcoe_isa.Asm.label a "worker";
    Rcoe_isa.Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
    Rcoe_isa.Asm.assemble ~entry:"main" a
  in
  Alcotest.(check bool) "raises" true
    (try ignore (Wl.resolve_entry build ~label:"worker"); false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "CC masking: primary failover when quiescent" `Slow
      test_cc_masking_primary_when_quiescent;
    Alcotest.test_case "CC primary fault under traffic" `Slow
      test_cc_primary_fault_under_traffic;
    Alcotest.test_case "CC masking rejected on Arm" `Quick
      test_cc_masking_rejected_on_arm;
    Alcotest.test_case "CC-Arm datarace deterministic" `Slow
      test_cc_arm_datarace_deterministic;
    Alcotest.test_case "reintegration after CC downgrade" `Slow
      test_reintegration_after_cc_downgrade;
    Alcotest.test_case "cycles_to_us" `Quick test_arch_cycles_to_us;
    Alcotest.test_case "syscall names/arities" `Quick
      test_syscall_names_and_arities;
    Alcotest.test_case "replica state diagnostic" `Quick
      test_replica_state_name_diagnostic;
    Alcotest.test_case "resolve_entry detects layout drift" `Quick
      test_wl_resolve_entry_detects_layout_drift;
  ]
