open Rcoe_util

type workload = A | B | C | D | E | F

let workload_of_string = function
  | "A" | "a" -> A
  | "B" | "b" -> B
  | "C" | "c" -> C
  | "D" | "d" -> D
  | "E" | "e" -> E
  | "F" | "f" -> F
  | s -> invalid_arg ("Ycsb.workload_of_string: " ^ s)

let workload_to_string = function
  | A -> "A" | B -> "B" | C -> "C" | D -> "D" | E -> "E" | F -> "F"

type config = { records : int; operations : int; seed : int }

type counters = {
  mutable issued : int;
  mutable completed : int;
  mutable corrupted : int;
  mutable client_errors : int;
  mutable not_found : int;
}

type pending = { p_op : int; p_key : int }

type t = {
  cfg : config;
  wl : workload;
  rng : Rng.t;
  mutable seq : int;
  mutable loaded : int; (* records inserted so far (load phase) *)
  mutable inserted_max : int; (* highest key inserted (for D/E inserts) *)
  mutable ops_issued : int;
  mutable rmw_pending_put : int option; (* F: key to update after a read *)
  in_flight : (int, pending) Hashtbl.t;
  ctr : counters;
  versions : int array; (* last written version per key (grown for inserts) *)
}

let value_words = Kvstore.vlen

let create cfg wl =
  if cfg.records <= 0 then invalid_arg "Ycsb.create: records must be positive";
  {
    cfg;
    wl;
    rng = Rng.create cfg.seed;
    seq = 0;
    loaded = 0;
    inserted_max = cfg.records - 1;
    ops_issued = 0;
    rmw_pending_put = None;
    in_flight = Hashtbl.create 64;
    ctr =
      { issued = 0; completed = 0; corrupted = 0; client_errors = 0; not_found = 0 };
    versions = Array.make (cfg.records * 4) 0;
  }

let load_phase_done t = t.loaded >= t.cfg.records

let finished t =
  load_phase_done t
  && t.ops_issued >= t.cfg.operations
  && Hashtbl.length t.in_flight = 0
  && t.rmw_pending_put = None

let outstanding t = Hashtbl.length t.in_flight

let pending t ~seq =
  match Hashtbl.find_opt t.in_flight seq with
  | Some p -> Some (p.p_op, p.p_key)
  | None -> None

let counters t = t.ctr

(* The value payload: deterministic contents with an embedded CRC of the
   first [vlen-1] words (the client-side integrity check). *)
let value_for t ~key ~version =
  ignore t;
  let v =
    Array.init value_words (fun i ->
        if i = 0 then key
        else if i = 1 then version
        else (key * 31) + (version * 7) + i)
  in
  v.(value_words - 1) <- Rcoe_checksum.Crc32.words (Array.sub v 0 (value_words - 1));
  v

let check_value t value =
  if Array.length value < value_words then begin
    t.ctr.client_errors <- t.ctr.client_errors + 1;
    false
  end
  else
    let crc =
      Rcoe_checksum.Crc32.words (Array.sub value 0 (value_words - 1))
    in
    if crc = value.(value_words - 1) then true
    else begin
      t.ctr.corrupted <- t.ctr.corrupted + 1;
      false
    end

(* Hotspot key selection: 80% of accesses to the first 20% of keys. *)
let pick_key t =
  let n = t.cfg.records in
  let hot = max 1 (n / 5) in
  if Rng.int t.rng 100 < 80 then Rng.int t.rng hot
  else hot + Rng.int t.rng (max 1 (n - hot))

let pick_recent_key t =
  (* D: skewed to the most recently inserted keys. *)
  let span = max 1 (t.inserted_max / 4) in
  let off = Rng.int t.rng span in
  max 0 (t.inserted_max - off)

let mk_put t ~key =
  let version = t.seq in
  if key < Array.length t.versions then t.versions.(key) <- version;
  let v = value_for t ~key ~version in
  let req = Array.make Kvstore.req_words_put 0 in
  req.(0) <- Kvstore.req_magic;
  req.(1) <- t.seq;
  req.(2) <- Kvstore.op_put;
  req.(3) <- key;
  Array.blit v 0 req 4 value_words;
  req

let mk_get t ~key =
  [| Kvstore.req_magic; t.seq; Kvstore.op_get; key |]

let mk_scan t ~key ~len =
  [| Kvstore.req_magic; t.seq; Kvstore.op_scan; key; len |]

let register t req =
  Hashtbl.replace t.in_flight req.(1) { p_op = req.(2); p_key = req.(3) };
  t.seq <- t.seq + 1;
  t.ctr.issued <- t.ctr.issued + 1;
  Some req

let next_insert_key t =
  t.inserted_max <- t.inserted_max + 1;
  t.inserted_max

let next_request t =
  if not (load_phase_done t) then begin
    let key = t.loaded in
    t.loaded <- t.loaded + 1;
    register t (mk_put t ~key)
  end
  else
    match t.rmw_pending_put with
    | Some key ->
        t.rmw_pending_put <- None;
        t.ops_issued <- t.ops_issued + 1;
        register t (mk_put t ~key)
    | None ->
        if t.ops_issued >= t.cfg.operations then None
        else begin
          t.ops_issued <- t.ops_issued + 1;
          let r = Rng.int t.rng 100 in
          match t.wl with
          | A ->
              if r < 50 then register t (mk_get t ~key:(pick_key t))
              else register t (mk_put t ~key:(pick_key t))
          | B ->
              if r < 95 then register t (mk_get t ~key:(pick_key t))
              else register t (mk_put t ~key:(pick_key t))
          | C -> register t (mk_get t ~key:(pick_key t))
          | D ->
              if r < 95 then register t (mk_get t ~key:(pick_recent_key t))
              else register t (mk_put t ~key:(next_insert_key t))
          | E ->
              if r < 95 then
                register t
                  (mk_scan t ~key:(pick_key t) ~len:(1 + Rng.int t.rng 8))
              else register t (mk_put t ~key:(next_insert_key t))
          | F ->
              (* read-modify-write: issue the read; the write follows on
                 the response. *)
              let key = pick_key t in
              t.rmw_pending_put <- Some key;
              t.ops_issued <- t.ops_issued - 1;
              (* the pair counts once *)
              t.ops_issued <- t.ops_issued + 1;
              register t (mk_get t ~key)
        end

let on_response t resp =
  if Array.length resp < 4 || resp.(0) <> Kvstore.resp_magic then
    t.ctr.client_errors <- t.ctr.client_errors + 1
  else
    let seq = resp.(1) in
    match Hashtbl.find_opt t.in_flight seq with
    | None -> t.ctr.client_errors <- t.ctr.client_errors + 1
    | Some p ->
        Hashtbl.remove t.in_flight seq;
        t.ctr.completed <- t.ctr.completed + 1;
        let status = resp.(2) in
        if status = 1 then t.ctr.not_found <- t.ctr.not_found + 1
        else if status <> 0 then t.ctr.client_errors <- t.ctr.client_errors + 1
        else if p.p_op = Kvstore.op_get then begin
          if Array.length resp >= 4 + value_words then
            ignore (check_value t (Array.sub resp 4 value_words))
          else t.ctr.client_errors <- t.ctr.client_errors + 1
        end
