(* Memory footprints from abstract-interpretation facts.

   Every reachable data access of the program is summarised as an
   address range derived from the {!Absint} pre-state of its base
   register — [ld]/[st]/float variants, [push]/[pop], the exclusive and
   atomic operations, and [rep_movs] (whose source/destination ranges
   span the whole copy, using the pre-state count). Ranges are then
   classified against caller-supplied memory regions; the classifier is
   deliberately region-agnostic so that the ISA layer stays independent
   of the kernel's {!Layout} — the RCoE layer supplies the region table
   and the policy (which classes are device-owned). *)

type kind = Read | Write

type access = {
  a_addr : int;  (** Instruction address (provenance). *)
  a_kind : kind;
  a_what : string;  (** Human label: "store", "rep-movs source", ... *)
  a_range : Absint.ival;  (** Abstract address range of the access. *)
}

type region = {
  rg_name : string;
  rg_lo : int;  (** First word address (inclusive). *)
  rg_hi : int;  (** Last word address (inclusive). *)
}

let kind_to_string = function Read -> "read" | Write -> "write"

let range_to_string (iv : Absint.ival) =
  if Absint.is_const iv then Printf.sprintf "0x%x" iv.Absint.lo
  else
    let b v =
      if v <= Absint.neg_inf then "-inf"
      else if v >= Absint.pos_inf then "+inf"
      else Printf.sprintf "0x%x" v
    in
    Printf.sprintf "[%s,%s]" (b iv.Absint.lo) (b iv.Absint.hi)

let access_to_string a =
  Printf.sprintf "%s at %d may %s %s" a.a_what a.a_addr
    (kind_to_string a.a_kind) (range_to_string a.a_range)

let overlaps (iv : Absint.ival) rg =
  iv.Absint.lo <= rg.rg_hi && iv.Absint.hi >= rg.rg_lo

let classify ~regions a = List.filter (overlaps a.a_range) regions

(* --- extraction ------------------------------------------------------- *)

let of_result (r : Absint.result) =
  let code = r.Absint.cfg.Cfg.program.Program.code in
  let out = ref [] in
  let reg v rg = v.(Reg.index rg) in
  let emit addr kind what range = out := { a_addr = addr; a_kind = kind; a_what = what; a_range = range } :: !out in
  Array.iteri
    (fun addr ins ->
      if Cfg.reachable r.Absint.cfg addr then
        match r.Absint.before.(addr) with
        | Absint.Bot -> ()
        | Absint.Env v -> (
            let base rg off = Absint.add_iv (reg v rg) (Absint.const off) in
            match (ins : Instr.t) with
            | Instr.Ld (_, rs, off) -> emit addr Read "load" (base rs off)
            | Instr.St (rb, _, off) -> emit addr Write "store" (base rb off)
            | Instr.Fld (_, rs, off) -> emit addr Read "fp load" (base rs off)
            | Instr.Fst (_, rs, off) -> emit addr Write "fp store" (base rs off)
            | Instr.Push _ ->
                emit addr Write "push" (Absint.sub_iv (reg v Reg.sp) (Absint.const 1))
            | Instr.Pop _ -> emit addr Read "pop" (reg v Reg.sp)
            | Instr.Ldex (_, rs) -> emit addr Read "exclusive load" (base rs 0)
            | Instr.Stex (_, _, ra) ->
                emit addr Write "exclusive store" (base ra 0)
            | Instr.Atomic_add (_, ra, _) ->
                let rg = base ra 0 in
                emit addr Read "atomic add" rg;
                emit addr Write "atomic add" rg
            | Instr.Cas (_, ra, _, _) ->
                let rg = base ra 0 in
                emit addr Read "cas" rg;
                emit addr Write "cas" rg
            | Instr.Rep_movs ->
                let cnt = reg v Reg.R2 in
                (* count <= 0 copies nothing; otherwise the range spans
                   [base, base + count - 1] using the pre-state count *)
                if cnt.Absint.hi >= 1 then begin
                  let span b =
                    let last =
                      Absint.add_iv b (Absint.sub_iv cnt (Absint.const 1))
                    in
                    Absint.mk b.Absint.lo last.Absint.hi
                  in
                  emit addr Write "rep-movs destination" (span (reg v Reg.R0));
                  emit addr Read "rep-movs source" (span (reg v Reg.R1))
                end
            | _ -> ()))
    code;
  List.sort
    (fun a b ->
      match compare a.a_addr b.a_addr with 0 -> compare a.a_kind b.a_kind | c -> c)
    !out

type violation = { v_access : access; v_region : region }

let violation_to_string v =
  Printf.sprintf "%s at %d may %s %s %s" v.v_access.a_what v.v_access.a_addr
    (kind_to_string v.v_access.a_kind) v.v_region.rg_name
    (Printf.sprintf "[0x%x,0x%x]" v.v_region.rg_lo v.v_region.rg_hi)

let violations ~forbidden accesses =
  List.concat_map
    (fun a ->
      List.map (fun rg -> { v_access = a; v_region = rg }) (classify ~regions:forbidden a))
    accesses
