test/test_rcoe.ml: Alcotest Arch Array Clock Config Core Layout List Machine Mem QCheck QCheck_alcotest Rcoe_checksum Rcoe_core Rcoe_isa Rcoe_kernel Rcoe_machine Signature Syscall System Vote
