test/test_kernel.ml: Alcotest Arch Array Asm Context Core Kernel Layout List Machine Mem Page_table Program Rcoe_isa Rcoe_kernel Rcoe_machine Syscall
