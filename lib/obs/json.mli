(** Minimal JSON values: enough to build and re-parse Chrome
    trace-event files without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with escaped strings. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for the subset {!to_string} emits (plus
    whitespace). Numbers with a fraction or exponent parse as [Float];
    others as [Int]. The error string carries a byte offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)
