(** Load-serving harness: drives the replicated KV server like a
    production service and measures it per request.

    Wraps the closed-loop window driver of {!Kv_run} with request-level
    observability ({!Rcoe_obs.Reqtrace} wired into the NIC's packet
    observers), an outcome log for cross-engine determinism checks, an
    open-loop fixed-rate arrival mode paced by the device clock, and a
    fault-campaign mode that injects a signature flip mid-run and
    measures per-request detection latency and recovery stalls through
    the checkpoint/rollback machinery.

    The YCSB load phase (one PUT per record) always runs closed-loop;
    the configured pacing applies to the operation mix that follows. *)

open Rcoe_core
open Rcoe_workloads

type pacing =
  | Closed of { window : int }
      (** Keep up to [window] requests outstanding. *)
  | Open of { interval : int; max_queue : int }
      (** Fixed-rate arrivals every [interval] device-clock cycles;
          injection pauses while [max_queue] requests are outstanding
          (bounding memory, at the price of coordinated omission). *)

type fault_target =
  | Sig_word
      (** A published signature word (replica 1's under replication;
          the lone primary's when [nreplicas = 1], the replay-detection
          campaign) — inside the sphere of replication; lockstep voting
          or replay verification detects it and rollback repairs it. *)
  | Dma_frame
      (** A value word of a PUT request sitting in the RX ring — the
          paper's Table VII residual. No checkpoint covers the ring, so
          rollback cannot repair it; only ingress-checksum verification
          (drop + client retransmission) can. Without it the corruption
          is silent until a later GET trips the client's embedded CRC. *)

type fault_spec = {
  fault_after : int;
      (** Flip after this many completed run-phase operations. *)
  fault_bit : int;  (** Bit index (0..29) flipped in the word. *)
  fault_target : fault_target;
}
(** A transient flip applied at a chunk boundary once [fault_after]
    run-phase responses have drained (for [Dma_frame], at the first such
    boundary where the ring head is an unconsumed PUT). Trigger and
    effect are functions of simulated state only, so a fault run is
    still bit-for-bit identical across engines. *)

type outcome = { o_seq : int; o_op : int; o_status : int }

type result = {
  issued : int;
  completed : int;
  run_ops : int;  (** Run-phase (post-load) completions. *)
  elapsed_cycles : int;  (** Run-phase cycles. *)
  kops_per_sec : float;  (** Simulated-time run-phase throughput. *)
  outcome_log : outcome list;  (** Completion order, load phase included. *)
  outcome_digest : int;  (** CRC-32 over the flattened outcome log. *)
  end_sigs : (int * int * int) array;  (** Per-replica end-state signature. *)
  rt : Rcoe_obs.Reqtrace.t;
  counters : Ycsb.counters;
  stalled : bool;
  rollbacks : int;
  retransmits : int;
      (** Requests re-sent after outliving [retry_after] — a rollback
          can lose requests consumed from the RX ring after the restored
          checkpoint (the DMA hole); the client recovers them like a
          production client would, by retransmitting. Server ops are
          idempotent, so spurious retries are harmless. *)
  dup_responses : int;
      (** Responses dropped because their sequence id had already
          completed — a rollback replays TX doorbells issued after the
          restored checkpoint. *)
  ingress_checked : int;
      (** Frames verified against RX_CSUM (device-level: covers both the
          LC guest-MMIO and CC kernel-mediated check). *)
  ingress_dropped : int;
      (** Frames NACKed on checksum mismatch, awaiting retransmission. *)
  redelivered : int;
      (** Completions whose sequence id had been retransmitted at least
          once — the drop-and-redeliver lane finishing the job. *)
  outcome_sorted_digest : int;
      (** CRC-32 over the outcome log sorted by sequence id: an ingress
          drop delays one request's completion (reordering the log) but
          must not change the outcome set, so a recovered run's sorted
          digest equals the fault-free one even when [outcome_digest]
          differs. *)
  fault_fired : bool;
      (** Whether the configured fault actually landed ([Dma_frame]
          requires an unconsumed PUT at the ring head). *)
  sys : System.t;
}

val program_for :
  config:Config.t ->
  workload:Ycsb.workload ->
  records:int ->
  requests:int ->
  Rcoe_isa.Program.t
(** The KV server program {!run} executes, sized for the workload: the
    node arena holds [records] plus one insert per request only under
    D and E (the inserting mixes), which is what lets a 100k+ request
    A/B/C/F run fit the fixed per-replica memory partition. Exposed so
    callers can run the same program through {!Rcoe_core.Eligibility}
    before choosing the parallel engine. *)

val run :
  config:Config.t ->
  workload:Ycsb.workload ->
  records:int ->
  requests:int ->
  ?pacing:pacing ->
  ?gen_seed:int ->
  ?chunk:int ->
  ?stall_limit:int ->
  ?max_cycles:int ->
  ?retry_after:int ->
  ?fault:fault_spec ->
  ?keep:int ->
  unit ->
  result
(** Serve [records] load-phase PUTs plus [requests] operations of
    [workload] through the NIC. [config.with_net] is forced on and a
    trace ring is forced (capacity 65536) when the config has none —
    attribution needs the span events. [keep] bounds retained
    per-request records (see {!Rcoe_obs.Reqtrace.create}). [retry_after]
    (default 250k cycles) is the initial client retransmission timeout,
    doubled per retry. Other defaults: closed-loop window 8, [gen_seed]
    11, [chunk] 400, [stall_limit] 3M, [max_cycles] 600M. *)

val report_json : result -> engine:string -> Rcoe_obs.Json.t
(** The serve report: config echo, throughput, end-to-end and per-phase
    HDR latency summaries, stall attribution, net/trace counters, and —
    when faults were injected — detection-latency and recovery-stall
    histograms. *)
