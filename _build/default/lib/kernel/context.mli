(** Thread contexts saved in simulated memory.

    On every preemption the kernel saves the full user context — integer
    registers, FP registers, instruction pointer, branch counter, and the
    counter-race flag — into the thread's context area inside the
    replica's kernel memory. Keeping contexts in simulated memory is what
    makes the register fault-injection experiment (paper Table VIII)
    honest: the injector flips a bit in the *saved* context while the
    thread is preempted, exactly as the paper's injector does, and the
    corruption takes effect on restore.

    Layout (within {!Layout.ctx_words} words):
    - 0–15: integer registers
    - 16: instruction pointer
    - 17: PMU branch counter (thread-virtualised, as the paper
      context-switches the reserved register / counter)
    - 18: counter-race flag (last retired instruction was [Cntinc])
    - 20–35: FP registers, two words each (high/low 32 bits of the
      IEEE-754 double) *)

val save : Rcoe_machine.Mem.t -> addr:int -> Rcoe_machine.Core.t -> unit
(** Store the core's user context at [addr]. *)

val restore : Rcoe_machine.Mem.t -> addr:int -> Rcoe_machine.Core.t -> unit
(** Load the context at [addr] into the core. *)

val ip_offset : int
val reg_offset : int -> int
val branches_offset : int

val init :
  Rcoe_machine.Mem.t -> addr:int -> entry:int -> sp:int -> arg:int -> unit
(** Initialise a fresh context: zero registers, [r0 = arg], the given
    stack pointer and entry point. *)
