lib/machine/mem.mli:
