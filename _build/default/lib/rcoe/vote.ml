open Rcoe_machine
open Rcoe_kernel

type result =
  | Faulty of int
  | No_consensus

let publish_signature mem (sh : Layout.shared) ~rid (count, c0, c1) =
  let base = sh.Layout.cksum_base + (3 * rid) in
  Mem.write mem base count;
  Mem.write mem (base + 1) c0;
  Mem.write mem (base + 2) c1

let read_signature mem (sh : Layout.shared) ~rid =
  let base = sh.Layout.cksum_base + (3 * rid) in
  (Mem.read mem base, Mem.read mem (base + 1), Mem.read mem (base + 2))

let signatures_agree mem sh ~live =
  match live with
  | [] | [ _ ] -> true
  | first :: rest ->
      let s0 = read_signature mem sh ~rid:first in
      List.for_all (fun r -> Signature.equal3 s0 (read_signature mem sh ~rid:r)) rest

let run mem (sh : Layout.shared) ~live =
  let nlive = List.length live in
  if nlive < 3 then invalid_arg "Vote.run: need at least 3 live replicas";
  (* Stage 1 (paper lines 8-12): each replica counts the signatures that
     agree with its own and publishes the count. *)
  List.iter
    (fun my ->
      let mine = read_signature mem sh ~rid:my in
      let agreeing =
        List.fold_left
          (fun n j ->
            if Signature.equal3 (read_signature mem sh ~rid:j) mine then n + 1
            else n)
          0 live
      in
      Mem.write mem (sh.Layout.votes_base + my) agreeing)
    live;
  (* Stage 2 (lines 13-23): each replica nominates a faulty replica. *)
  List.iter
    (fun my ->
      let least_vote = ref (nlive + 1) and fault = ref (nlive + 1) in
      List.iter
        (fun j ->
          let v = Mem.read mem (sh.Layout.votes_base + j) in
          if v < !least_vote then begin
            least_vote := v;
            fault := j
          end)
        live;
      let my_votes = Mem.read mem (sh.Layout.votes_base + my) in
      let nomination = if my_votes <> nlive - 1 then my else !fault in
      Mem.write mem (sh.Layout.fault_base + my) nomination)
    live;
  (* Stage 3 (lines 24-28): cross-check nominations. *)
  match live with
  | [] -> No_consensus
  | first :: _ ->
      let nominated = Mem.read mem (sh.Layout.fault_base + first) in
      let consensus =
        List.for_all
          (fun my -> Mem.read mem (sh.Layout.fault_base + my) = nominated)
          live
      in
      if consensus && List.mem nominated live then Faulty nominated
      else No_consensus
