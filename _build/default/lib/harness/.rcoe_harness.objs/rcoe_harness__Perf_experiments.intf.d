lib/harness/perf_experiments.mli:
