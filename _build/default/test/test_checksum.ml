open Rcoe_checksum

(* --- Fletcher ------------------------------------------------------ *)

let test_fletcher_order_sensitive () =
  let a = Fletcher.create () and b = Fletcher.create () in
  Fletcher.add_word a 1;
  Fletcher.add_word a 2;
  Fletcher.add_word b 2;
  Fletcher.add_word b 1;
  Alcotest.(check bool) "order matters" false (Fletcher.equal a b)

let test_fletcher_deterministic () =
  let a = Fletcher.create () and b = Fletcher.create () in
  List.iter
    (fun w -> Fletcher.add_word a w; Fletcher.add_word b w)
    [ 5; 0; 123456789; max_int ];
  Alcotest.(check bool) "same inputs same sums" true (Fletcher.equal a b)

let test_fletcher_reset () =
  let a = Fletcher.create () in
  Fletcher.add_word a 99;
  Fletcher.reset a;
  Alcotest.(check (pair int int)) "reset zeroes" (0, 0) (Fletcher.value a)

let test_fletcher_copy_isolated () =
  let a = Fletcher.create () in
  Fletcher.add_word a 7;
  let b = Fletcher.copy a in
  Fletcher.add_word a 8;
  Alcotest.(check bool) "copy froze state" false (Fletcher.equal a b)

let test_fletcher_digest_packing () =
  let a = Fletcher.create () in
  Fletcher.add_word a 3;
  Fletcher.add_word a 4;
  let c0, c1 = Fletcher.value a in
  Alcotest.(check int) "digest packs c1:c0" ((c1 lsl 32) lor c0)
    (Fletcher.digest a)

let test_fletcher32_reference () =
  (* Classical Fletcher-32 checks: "abcde" -> 0xF04FC729 ("abcde" test
     vector from the Fletcher checksum literature). *)
  Alcotest.(check int) "abcde" 0xF04FC729 (Fletcher.fletcher32 "abcde");
  Alcotest.(check int) "abcdef" 0x56502D2A (Fletcher.fletcher32 "abcdef")

let qcheck_fletcher_single_bit =
  QCheck.Test.make ~name:"fletcher distinguishes single-bit flips" ~count:300
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (int_bound 0xFFFF)) (int_bound 31))
    (fun (ws, bit) ->
      QCheck.assume (ws <> []);
      let a = Fletcher.create () and b = Fletcher.create () in
      List.iter (Fletcher.add_word a) ws;
      (match ws with
      | w :: rest ->
          Fletcher.add_word b (w lxor (1 lsl bit));
          List.iter (Fletcher.add_word b) rest
      | [] -> ());
      not (Fletcher.equal a b))

let qcheck_fletcher_string_word_consistent =
  QCheck.Test.make ~name:"add_string equals add_word on packed words" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s ->
      let a = Fletcher.create () and b = Fletcher.create () in
      Fletcher.add_string a s;
      let n = String.length s in
      let nwords = (n + 3) / 4 in
      for i = 0 to nwords - 1 do
        let byte j =
          let idx = (i * 4) + j in
          if idx < n then Char.code s.[idx] else 0
        in
        Fletcher.add_word b
          (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))
      done;
      Fletcher.equal a b)

(* --- CRC-32 --------------------------------------------------------- *)

let test_crc32_vectors () =
  (* Standard check value: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "a" 0xE8B7BE43 (Crc32.string "a")

let test_crc32_words_matches_string () =
  (* Words contribute little-endian bytes. *)
  let ws = [| 0x64636261; 0x68676665 |] in
  Alcotest.(check int) "abcdefgh" (Crc32.string "abcdefgh") (Crc32.words ws)

let qcheck_crc32_detects_flip =
  QCheck.Test.make ~name:"crc32 detects any single word flip" ~count:300
    QCheck.(triple (list_of_size Gen.(int_range 1 16) (int_bound 0xFFFFFF)) small_nat (int_bound 31))
    (fun (ws, pos, bit) ->
      QCheck.assume (ws <> []);
      let arr = Array.of_list ws in
      let arr' = Array.copy arr in
      let pos = pos mod Array.length arr in
      arr'.(pos) <- arr'.(pos) lxor (1 lsl bit);
      Crc32.words arr <> Crc32.words arr')

(* --- MD5 ------------------------------------------------------------ *)

let test_md5_rfc1321_vectors () =
  let check input expect =
    Alcotest.(check string) ("md5 " ^ input) expect (Md5.hex input)
  in
  check "" "d41d8cd98f00b204e9800998ecf8427e";
  check "a" "0cc175b9c0f1b6a831c399e269772661";
  check "abc" "900150983cd24fb0d6963f7d28e17f72";
  check "message digest" "f96b697d7cb7938d525a2f31aaf161d0";
  check "abcdefghijklmnopqrstuvwxyz" "c3fcd3d76192e4007dfb496cca67e13b";
  check
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    "d174ab98d277d9f5a5611c2c9f419d9f";
  check
    "12345678901234567890123456789012345678901234567890123456789012345678901234567890"
    "57edf4a22be3c955ac49da2e2107b67a"

let test_md5_matches_stdlib_digest () =
  (* Cross-check against OCaml's built-in MD5 on assorted inputs. *)
  List.iter
    (fun s ->
      Alcotest.(check string) "matches Digest"
        (Digest.to_hex (Digest.string s))
        (Md5.hex s))
    [ "hello world"; String.make 1000 'x'; "\x00\x01\x02\xff" ]

let test_md5_words () =
  let ws = [| 0x64636261 |] in
  Alcotest.(check string) "words little-endian" (Md5.string "abcd") (Md5.words ws)

let test_md5_schedule_tables () =
  Alcotest.(check int) "64 constants" 64 (Array.length Md5.k);
  Alcotest.(check int) "64 shifts" 64 (Array.length Md5.s);
  Alcotest.(check int) "k[0]" 0xd76aa478 Md5.k.(0);
  Alcotest.(check int) "k[63]" 0xeb86d391 Md5.k.(63)

let qcheck_md5_matches_stdlib =
  QCheck.Test.make ~name:"md5 equals stdlib Digest on random strings" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 300))
    (fun s -> Md5.hex s = Digest.to_hex (Digest.string s))

let qcheck_md5_sensitive =
  QCheck.Test.make ~name:"md5 differs on appended byte" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 100))
    (fun s -> Md5.hex s <> Md5.hex (s ^ "\x01"))

let suite =
  [
    Alcotest.test_case "fletcher order sensitive" `Quick
      test_fletcher_order_sensitive;
    Alcotest.test_case "fletcher deterministic" `Quick test_fletcher_deterministic;
    Alcotest.test_case "fletcher reset" `Quick test_fletcher_reset;
    Alcotest.test_case "fletcher copy isolated" `Quick test_fletcher_copy_isolated;
    Alcotest.test_case "fletcher digest packing" `Quick
      test_fletcher_digest_packing;
    Alcotest.test_case "fletcher32 reference vectors" `Quick
      test_fletcher32_reference;
    QCheck_alcotest.to_alcotest qcheck_fletcher_single_bit;
    QCheck_alcotest.to_alcotest qcheck_fletcher_string_word_consistent;
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32 words = string" `Quick test_crc32_words_matches_string;
    QCheck_alcotest.to_alcotest qcheck_crc32_detects_flip;
    Alcotest.test_case "md5 RFC 1321 vectors" `Quick test_md5_rfc1321_vectors;
    Alcotest.test_case "md5 matches stdlib" `Quick test_md5_matches_stdlib_digest;
    Alcotest.test_case "md5 words" `Quick test_md5_words;
    Alcotest.test_case "md5 schedule tables" `Quick test_md5_schedule_tables;
    QCheck_alcotest.to_alcotest qcheck_md5_matches_stdlib;
    QCheck_alcotest.to_alcotest qcheck_md5_sensitive;
  ]
