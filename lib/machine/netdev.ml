let reg_rx_count = 0
let reg_rx_addr = 1
let reg_rx_len = 2
let reg_rx_consume = 3
let reg_tx_addr = 4
let reg_tx_len = 5
let reg_tx_doorbell = 6
let reg_irq_status = 7
let reg_rx_csum = 8
let reg_rx_nack = 9

let slot_words = 64

(* [csum] is computed at enqueue time in [inject], before the payload
   ever touches the DMA region — wire-side ground truth that survives
   any fault injected into the buffer afterwards. *)
type rx_desc = { slot_offset : int; len : int; csum : int }

type t = {
  mem : Mem.t;
  dma_base : int;
  dma_words : int;
  nslots : int;
  host_q : (int * int array * int) Queue.t; (* deliver_at, payload, csum *)
  rx_ring : rx_desc Queue.t;
  (* Slot accounting. [free_slots] holds slots available for delivery;
     a consumed frame's slot returns immediately, a NACKed frame's slot
     is quarantined until the driver next reads RX_COUNT — otherwise a
     queued delivery could overwrite the dropped frame's slot before the
     driver has observed the drop (seen post-drop ring state). *)
  free_slots : int Queue.t;
  mutable quarantined : int list; (* NACKed slots, newest first *)
  mutable irq_line : bool;
  mutable tx_addr : int;
  mutable tx_len : int;
  mutable tx_done : (int * int array) list; (* reversed *)
  mutable dropped : int;
  mutable nacked : int;
  mutable csum_reads : int;
  mutable now_cache : int;
  mutable wedged : bool;
  (* Host-side observability. The observer callbacks are invoked with
     the device-clock cycle and the packet payload at the three ring
     transitions (RX delivery, driver consume, TX doorbell); they are
     pure observers — the simulation takes the same steps, on the same
     cycles, whether or not they are installed. *)
  mutable rx_hwm : int;
  mutable tx_hwm : int;
  mutable tx_sent : int;
  mutable on_rx : (now:int -> int array -> unit) option;
  mutable on_consume : (now:int -> int array -> unit) option;
  mutable on_tx : (now:int -> int array -> unit) option;
  (* Host-boundary tap: fires on [inject] — the one host action that
     mutates device state the guest can observe. The replay engine's
     input log hangs off this. Pure observer, like the three above. *)
  mutable on_inject : (now:int -> int array -> unit) option;
}

let create ~mem ~dma_base ~dma_words =
  let nslots = dma_words / 2 / slot_words in
  if nslots < 2 then invalid_arg "Netdev.create: DMA region too small";
  let free_slots = Queue.create () in
  for s = 0 to nslots - 1 do
    Queue.add s free_slots
  done;
  {
    mem;
    dma_base;
    dma_words;
    nslots;
    host_q = Queue.create ();
    rx_ring = Queue.create ();
    free_slots;
    quarantined = [];
    irq_line = false;
    tx_addr = 0;
    tx_len = 0;
    tx_done = [];
    dropped = 0;
    nacked = 0;
    csum_reads = 0;
    now_cache = 0;
    wedged = false;
    rx_hwm = 0;
    tx_hwm = 0;
    tx_sent = 0;
    on_rx = None;
    on_consume = None;
    on_tx = None;
    on_inject = None;
  }

(* One call replaces all three taps: an omitted argument clears that
   observer, so a device reused across runs never keeps a stale
   callback into a dead trace sink. *)
let set_observers t ?on_rx ?on_consume ?on_tx () =
  t.on_rx <- on_rx;
  t.on_consume <- on_consume;
  t.on_tx <- on_tx

let set_host_tap t ?on_inject () = t.on_inject <- on_inject

let inject t ~now payload =
  if Array.length payload > slot_words then
    invalid_arg "Netdev.inject: packet too long";
  Queue.add (now, payload, Rcoe_checksum.Fletcher.frame payload) t.host_q;
  match t.on_inject with Some f -> f ~now payload | None -> ()

let pending_host_packets t = Queue.length t.host_q

let take_tx t =
  let out = List.rev t.tx_done in
  t.tx_done <- [];
  out

let rx_dropped t = t.dropped
let rx_nacked t = t.nacked
let rx_csum_reads t = t.csum_reads
let rx_ring_hwm t = t.rx_hwm
let tx_pending_hwm t = t.tx_hwm
let tx_sent t = t.tx_sent

let rx_region_bounds t = (t.dma_base, t.nslots * slot_words)

let head_rx t =
  match Queue.peek_opt t.rx_ring with
  | Some d -> Some (d.slot_offset, d.len)
  | None -> None

let deliver t payload csum =
  match Queue.take_opt t.free_slots with
  | None -> t.dropped <- t.dropped + 1
  | Some slot ->
      let offset = slot * slot_words in
      Mem.write_block t.mem (t.dma_base + offset) payload;
      Queue.add
        { slot_offset = offset; len = Array.length payload; csum }
        t.rx_ring;
      let occ = Queue.length t.rx_ring in
      if occ > t.rx_hwm then t.rx_hwm <- occ;
      (match t.on_rx with Some f -> f ~now:t.now_cache payload | None -> ());
      t.irq_line <- true

let set_wedged t w = t.wedged <- w

let dev_tick t ~now =
  t.now_cache <- now;
  if t.wedged then ()
  else
  let rec drain () =
    match Queue.peek_opt t.host_q with
    | Some (at, payload, csum)
      when at <= now && not (Queue.is_empty t.free_slots) ->
        ignore (Queue.pop t.host_q);
        deliver t payload csum;
        drain ()
    | Some _ | None -> ()
  in
  drain ()

(* The earliest cycle strictly after [after] at which this device could
   change observable machine state on its own: the head of the host
   queue becoming deliverable (bounded below by the next tick), or
   [after] itself when the interrupt line is already up. [None] when the
   device is quiescent — wedged, queue empty, or no free RX slot (ring
   full, or every vacancy quarantined behind a NACK): deliveries then
   wait on a driver consume or ring-state read, which only user code
   triggers, so no spontaneous activity can happen. *)
let next_event t ~after =
  if t.wedged then None
  else if t.irq_line then Some after
  else if Queue.is_empty t.free_slots then None
  else
    match Queue.peek_opt t.host_q with
    | None -> None
    | Some (at, _, _) -> Some (max (after + 1) at)

(* A NACKed slot re-arms only once the driver reads RX_COUNT: the read
   is the first point at which the driver has observed the post-drop
   ring state, so no queued delivery can overwrite the dropped frame
   before then. Release order is oldest-first to keep delivery slot
   order a pure function of ring history. *)
let release_quarantine t =
  List.iter (fun s -> Queue.add s t.free_slots) (List.rev t.quarantined);
  t.quarantined <- []

let read_reg t off =
  if off = reg_rx_count then begin
    release_quarantine t;
    Queue.length t.rx_ring
  end
  else if off = reg_rx_addr then
    match Queue.peek_opt t.rx_ring with
    | Some d -> d.slot_offset
    | None -> -1
  else if off = reg_rx_len then
    match Queue.peek_opt t.rx_ring with Some d -> d.len | None -> 0
  else if off = reg_rx_csum then begin
    (* Each RX_CSUM read is one ingress verification, whichever driver
       flavour performs it (guest MMIO in LC, kernel-mediated in CC). *)
    t.csum_reads <- t.csum_reads + 1;
    match Queue.peek_opt t.rx_ring with Some d -> d.csum | None -> 0
  end
  else if off = reg_irq_status then if t.irq_line then 1 else 0
  else 0

let write_reg t off v =
  if off = reg_rx_consume then begin
    (match Queue.take_opt t.rx_ring with
    | Some d ->
        Queue.add (d.slot_offset / slot_words) t.free_slots;
        (match t.on_consume with
        | Some f ->
            let payload = Mem.read_block t.mem (t.dma_base + d.slot_offset) d.len in
            f ~now:t.now_cache payload
        | None -> ())
    | None -> ())
  end
  else if off = reg_rx_nack then begin
    match Queue.take_opt t.rx_ring with
    | Some d ->
        t.quarantined <- (d.slot_offset / slot_words) :: t.quarantined;
        t.nacked <- t.nacked + 1
    | None -> ()
  end
  else if off = reg_tx_addr then t.tx_addr <- v
  else if off = reg_tx_len then t.tx_len <- v
  else if off = reg_tx_doorbell then begin
    let len = max 0 (min t.tx_len (t.dma_words - t.tx_addr)) in
    let payload = Mem.read_block t.mem (t.dma_base + t.tx_addr) len in
    t.tx_done <- (t.now_cache, payload) :: t.tx_done;
    t.tx_sent <- t.tx_sent + 1;
    let occ = List.length t.tx_done in
    if occ > t.tx_hwm then t.tx_hwm <- occ;
    match t.on_tx with Some f -> f ~now:t.now_cache payload | None -> ()
  end

(* Full device-state snapshot for the replay engine's shadow machines.
   Payload arrays are shared, not copied: a payload is never mutated
   after [inject] (delivery copies it into DMA memory), so sharing is
   safe and keeps a snapshot O(queued descriptors). *)
type snapshot = {
  sn_host_q : (int * int array * int) list;
  sn_rx_ring : rx_desc list;
  sn_free_slots : int list;
  sn_quarantined : int list;
  sn_irq_line : bool;
  sn_tx_addr : int;
  sn_tx_len : int;
  sn_tx_done : (int * int array) list;
  sn_dropped : int;
  sn_nacked : int;
  sn_csum_reads : int;
  sn_now_cache : int;
  sn_wedged : bool;
  sn_rx_hwm : int;
  sn_tx_hwm : int;
  sn_tx_sent : int;
}

let snapshot t =
  {
    sn_host_q = List.of_seq (Queue.to_seq t.host_q);
    sn_rx_ring = List.of_seq (Queue.to_seq t.rx_ring);
    sn_free_slots = List.of_seq (Queue.to_seq t.free_slots);
    sn_quarantined = t.quarantined;
    sn_irq_line = t.irq_line;
    sn_tx_addr = t.tx_addr;
    sn_tx_len = t.tx_len;
    sn_tx_done = t.tx_done;
    sn_dropped = t.dropped;
    sn_nacked = t.nacked;
    sn_csum_reads = t.csum_reads;
    sn_now_cache = t.now_cache;
    sn_wedged = t.wedged;
    sn_rx_hwm = t.rx_hwm;
    sn_tx_hwm = t.tx_hwm;
    sn_tx_sent = t.tx_sent;
  }

let restore t s =
  Queue.clear t.host_q;
  List.iter (fun e -> Queue.add e t.host_q) s.sn_host_q;
  Queue.clear t.rx_ring;
  List.iter (fun d -> Queue.add d t.rx_ring) s.sn_rx_ring;
  Queue.clear t.free_slots;
  List.iter (fun sl -> Queue.add sl t.free_slots) s.sn_free_slots;
  t.quarantined <- s.sn_quarantined;
  t.irq_line <- s.sn_irq_line;
  t.tx_addr <- s.sn_tx_addr;
  t.tx_len <- s.sn_tx_len;
  t.tx_done <- s.sn_tx_done;
  t.dropped <- s.sn_dropped;
  t.nacked <- s.sn_nacked;
  t.csum_reads <- s.sn_csum_reads;
  t.now_cache <- s.sn_now_cache;
  t.wedged <- s.sn_wedged;
  t.rx_hwm <- s.sn_rx_hwm;
  t.tx_hwm <- s.sn_tx_hwm;
  t.tx_sent <- s.sn_tx_sent

let device t =
  {
    Device.dev_name = "netdev";
    read_reg = read_reg t;
    write_reg = write_reg t;
    dev_tick = (fun ~now -> dev_tick t ~now);
    irq_pending = (fun () -> t.irq_line);
    irq_ack = (fun () -> t.irq_line <- false);
  }
