lib/rcoe/vote.ml: Layout List Mem Rcoe_kernel Rcoe_machine Signature
