(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    The paper's fault-injection client "embeds CRC32 checksums into the
    values sent to the store" so that it can detect silent data corruption
    end-to-end (Section V-C1). Our YCSB-style load generator does the
    same with this implementation. *)

val string : string -> int
(** CRC-32 of a byte string, in \[0, 2^32). *)

val words : int array -> int
(** CRC-32 over an array of machine words, each contributing its low 32
    bits in little-endian byte order. This is the form used for values
    stored in simulated memory. *)

val update : int -> char -> int
(** [update crc c] extends a running CRC (start from [0]) by one byte. *)
