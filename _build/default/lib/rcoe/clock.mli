(** Logical clocks (paper Section III-B).

    LC-RCoE time is the deterministic-event count alone. CC-RCoE time is
    the triple [(event count, user branches, user ip)], which identifies
    a unique point in the user instruction stream because at least one
    branch executes between two visits to the same instruction.

    Under compiler-assisted counting the counter is incremented by a
    separate instruction *before* its branch, so a replica preempted
    between the two has a counter that already reflects an untaken
    branch (the paper's Listing 3 race). [branches_adj] therefore stores
    the number of *completed* branches: the raw counter minus one when
    the last retired instruction was the increment. *)

type kind =
  | At_user of { branches_adj : int; ip : int }
  | In_kernel  (** Parked in the kernel (all threads blocked). *)

type t = { count : int; pos : kind }

val capture :
  Rcoe_machine.Arch.profile -> count:int -> Rcoe_machine.Core.t -> t
(** Snapshot a running replica's position (adjusting for the
    counter/branch race). *)

val in_kernel : count:int -> t

val compare : t -> t -> int
(** Total order: event count, then kernel-parked after any user position
    at the same count, then completed branches, then ip (valid within a
    straight-line segment). Used to elect the leading replica. *)

val equal_position : t -> t -> bool
(** Same count and same precise user position (or both in-kernel). *)

val to_string : t -> string

val encode : t -> int array
(** Four words [count; branches_adj; ip; kind] for publication in the
    shared region (so fault injection can corrupt a published time). *)

val decode : int array -> t
