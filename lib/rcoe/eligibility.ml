(* Precise parallel-eligibility for networked workloads.

   The parallel engine re-orders replica cycles freely inside an
   execution window and replays device activity in bulk at the window
   boundary. That is only sound when user code never touches
   device-mutated state directly: every interaction with the NIC must
   go through the syscalls (and the CC driver protocol) that the
   scheduler already serialises at rendezvous points. This module turns
   that contract into a checkable per-workload verdict: run the
   {!Rcoe_isa.Absint} abstract interpreter over the program, extract
   its {!Rcoe_isa.Footprint}, and reject iff some reachable access may
   overlap a device-owned region — the MMIO window, the DMA receive
   ring, or the shared input-replication buffer. The DMA *transmit*
   staging half is user-writable by design (the primary stages payloads
   there and the doorbell snapshots them), so it stays allowed.

   Base mode is categorically ineligible with a network: its single
   replica executes FT device operations inline, at cycle granularity,
   rather than at window-aligned rendezvous points. *)

open Rcoe_isa
module Layout = Rcoe_kernel.Layout
module Syscall = Rcoe_kernel.Syscall

type diag = {
  d_addr : int option;  (** Instruction address, when the diagnostic has one. *)
  d_message : string;
}

type verdict = Eligible | Ineligible of diag list

type t = {
  verdict : verdict;
  regions : Footprint.region list;  (** The device-owned regions checked. *)
  n_accesses : int;  (** Reachable data accesses examined. *)
  rounds : int;  (** Interprocedural summary rounds. *)
  host_us : float;  (** Analyzer wall-clock, microseconds. *)
}

let eligible t = match t.verdict with Eligible -> true | Ineligible _ -> false

let diags t = match t.verdict with Eligible -> [] | Ineligible ds -> ds

let describe t =
  match t.verdict with
  | Eligible -> "eligible"
  | Ineligible ds ->
      String.concat "; " (List.map (fun d -> d.d_message) ds)

(* Device-owned regions in the replica virtual address space. All of
   them sit above the data and stack segments, so proving upper bounds
   on addresses is what keeps ordinary workloads eligible. *)
let forbidden_regions lay =
  let rx_words =
    lay.Layout.dma_words / 2 / Rcoe_machine.Netdev.slot_words
    * Rcoe_machine.Netdev.slot_words
  in
  [
    {
      Footprint.rg_name = "MMIO window";
      rg_lo = Layout.va_mmio;
      rg_hi = Layout.va_mmio + Layout.page_size - 1;
    };
    {
      Footprint.rg_name = "DMA RX ring";
      rg_lo = Layout.va_dma;
      rg_hi = Layout.va_dma + rx_words - 1;
    };
    {
      Footprint.rg_name = "shared input window";
      rg_lo = Layout.va_shared_in;
      rg_hi = Layout.va_shared_in + lay.Layout.shared.Layout.inbuf_words - 1;
    };
  ]

(* What the scheduler's [cb_info] callback answers: modelling these as
   constants/small ranges is what lets the analyzer prune the LC
   direct-driver path out of a CC configuration (and vice versa). *)
let syscall_model (config : Config.t) : Absint.syscall_model =
 fun ~sysno ~r0 ->
  if sysno = Syscall.sys_get_info then
    match Absint.to_const r0 with
    | Some 0 | Some 2 -> Absint.mk 0 (config.Config.nreplicas - 1)
    | Some 1 -> Absint.const config.Config.nreplicas
    | Some 3 ->
        Absint.const (if config.Config.mode = Config.CC then 1 else 0)
    | Some 6 ->
        (* Ingress-check flag: modelling it precisely both prunes the
           guest checksum loop out of unchecked configurations and keeps
           the model honest when the loop is live — a blanket 0 here
           would unsoundly prove the checked driver never runs it. *)
        Absint.const (if config.Config.ingress_check then 1 else 0)
    | Some key when key > 5 -> Absint.const 0
    | _ -> Absint.top
  else Absint.top

let check ~config ~program =
  let t0 = Sys.time () in
  let lay =
    Layout.compute ~nreplicas:config.Config.nreplicas
      ~user_words:config.Config.user_words
  in
  let regions = forbidden_regions lay in
  let finish verdict ~n_accesses ~rounds =
    {
      verdict;
      regions;
      n_accesses;
      rounds;
      host_us = (Sys.time () -. t0) *. 1e6;
    }
  in
  if config.Config.mode = Config.Base then
    finish
      (Ineligible
         [
           {
             d_addr = None;
             d_message =
               "Base mode executes FT device operations inline at cycle \
                granularity, not at window-aligned rendezvous points";
           };
         ])
      ~n_accesses:0 ~rounds:0
  else
    let cfg =
      Cfg.build
        ~exit_syscalls:[ Syscall.sys_exit ]
        ~spawn_syscall:Syscall.sys_spawn program
    in
    (* Thread stacks live in [va_stack_area, stack_top max_threads); the
       exact slot depends on the tid, so seed sp with the whole area. *)
    let init = Array.make Reg.count Absint.top in
    init.(Reg.index Reg.sp) <-
      Absint.mk Layout.va_stack_area (Layout.stack_top ~tid:(Layout.max_threads - 1));
    let r = Absint.analyze ~syscall:(syscall_model config) ~init cfg in
    match r.Absint.diverged with
    | Some a ->
        finish
          (Ineligible
             [
               {
                 d_addr = (if a >= 0 then Some a else None);
                 d_message =
                   Printf.sprintf
                     "abstract interpretation did not stabilise%s — register \
                      bounds unknown"
                     (if a >= 0 then Printf.sprintf " (block at %d)" a else "");
               };
             ])
          ~n_accesses:0 ~rounds:r.Absint.rounds
    | None ->
        let accesses = Footprint.of_result r in
        let viols = Footprint.violations ~forbidden:regions accesses in
        let verdict =
          if viols = [] then Eligible
          else
            Ineligible
              (List.map
                 (fun v ->
                   {
                     d_addr = Some v.Footprint.v_access.Footprint.a_addr;
                     d_message = Footprint.violation_to_string v;
                   })
                 viols)
        in
        finish verdict ~n_accesses:(List.length accesses) ~rounds:r.Absint.rounds
