(* The server-side DMA-hole closure: RX_CSUM ground truth at the
   device, NACK/quarantine slot re-arm semantics (the wedged-ring
   regression), and the end-to-end fault campaign through
   [Fault_experiments.ingress_trial] — the same DMA-buffer flip is
   silent client-visible corruption with the checksum path off and a
   detected, redelivered, digest-preserving drop with it on. *)

open Rcoe_machine
open Rcoe_harness
module Fletcher = Rcoe_checksum.Fletcher
module Config = Rcoe_core.Config
module Outcome = Rcoe_faults.Outcome
module Ycsb = Rcoe_workloads.Ycsb

(* A small ring (2 slots) makes the quarantine interlock observable:
   one NACK leaves zero free slots, so any premature re-arm would
   immediately overwrite the frame the driver still believes is head. *)
let mk_net ?(dma_words = 4 * Netdev.slot_words) () =
  let m =
    Machine.create ~profile:Arch.x86 ~mem_words:16384 ~ncores:1 ~seed:1 ()
  in
  let nd = Netdev.create ~mem:m.Machine.mem ~dma_base:8192 ~dma_words in
  (m, nd)

let tick nd ~now = (Netdev.device nd).Device.dev_tick ~now
let rreg nd r = (Netdev.device nd).Device.read_reg r
let wreg nd r v = (Netdev.device nd).Device.write_reg r v

let test_rx_csum_ground_truth () =
  let _, nd = mk_net () in
  let p1 = [| 0x5251; 7; 1; 42; 99 |] in
  let p2 = [| 0x5251; 8; 0; 43 |] in
  Netdev.inject nd ~now:0 p1;
  Netdev.inject nd ~now:0 p2;
  tick nd ~now:1;
  Alcotest.(check int) "two pending" 2 (rreg nd Netdev.reg_rx_count);
  Alcotest.(check int) "head csum is the enqueue-time Fletcher digest"
    (Fletcher.frame p1)
    (rreg nd Netdev.reg_rx_csum);
  Alcotest.(check int) "one verification counted" 1 (Netdev.rx_csum_reads nd);
  wreg nd Netdev.reg_rx_consume 1;
  Alcotest.(check int) "csum register tracks the new head"
    (Fletcher.frame p2)
    (rreg nd Netdev.reg_rx_csum);
  match Netdev.head_rx nd with
  | None -> Alcotest.fail "head vanished"
  | Some (_, len) -> Alcotest.(check int) "head len" (Array.length p2) len

let test_nack_quarantine_blocks_rearm () =
  let m, nd = mk_net ~dma_words:(4 * Netdev.slot_words) () in
  (* Ring = 2 slots. Fill both, keep a third frame queued host-side. *)
  let p1 = [| 1; 11; 111 |] and p2 = [| 2; 22; 222 |] in
  let p3 = [| 3; 33; 333 |] in
  Netdev.inject nd ~now:0 p1;
  Netdev.inject nd ~now:0 p2;
  Netdev.inject nd ~now:0 p3;
  for t = 1 to 4 do
    tick nd ~now:t
  done;
  Alcotest.(check int) "ring full" 2 (rreg nd Netdev.reg_rx_count);
  Alcotest.(check int) "third frame waits host-side" 1
    (Netdev.pending_host_packets nd);
  let base, _ = Netdev.rx_region_bounds nd in
  let head_off, head_len =
    match Netdev.head_rx nd with
    | Some (o, l) -> (o, l)
    | None -> Alcotest.fail "no head"
  in
  (* Drop the head. Its slot is quarantined: the queued frame must NOT
     be delivered into it before the driver observes the drop, or a
     driver mid-drop would read the ring head over freshly DMA'd bytes
     (the wedged-ring regression this test pins). *)
  wreg nd Netdev.reg_rx_nack 1;
  Alcotest.(check int) "nack counted" 1 (Netdev.rx_nacked nd);
  (* NB: observed via [head_rx], not RX_COUNT — the RX_COUNT read is
     itself the driver's observation point that releases the
     quarantine. *)
  Alcotest.(check bool) "head popped" true
    (Netdev.head_rx nd <> Some (head_off, head_len));
  for t = 5 to 9 do
    tick nd ~now:t
  done;
  Alcotest.(check int) "queued frame still held back" 1
    (Netdev.pending_host_packets nd);
  Alcotest.(check (array int))
    "quarantined slot bytes intact until the driver observes the drop"
    p1
    (Mem.read_block m.Machine.mem (base + head_off) head_len);
  (* The driver's next RX_COUNT read (its drain-loop re-poll) is the
     observation point: the slot re-arms and delivery resumes. *)
  ignore (rreg nd Netdev.reg_rx_count);
  for t = 10 to 12 do
    tick nd ~now:t
  done;
  Alcotest.(check int) "delivery resumed after re-arm" 2
    (rreg nd Netdev.reg_rx_count);
  Alcotest.(check int) "host queue drained" 0 (Netdev.pending_host_packets nd)

let test_next_event_quiescent_when_quarantined () =
  let _, nd = mk_net ~dma_words:(4 * Netdev.slot_words) () in
  Netdev.inject nd ~now:0 [| 1 |];
  Netdev.inject nd ~now:0 [| 2 |];
  Netdev.inject nd ~now:0 [| 3 |];
  for t = 1 to 4 do
    tick nd ~now:t
  done;
  (Netdev.device nd).Device.irq_ack ();
  wreg nd Netdev.reg_rx_nack 1;
  wreg nd Netdev.reg_rx_nack 1;
  (* Both slots quarantined, a frame still queued: the device cannot
     act until the driver re-polls, so it must report quiescence (the
     parallel engine would otherwise spin on a phantom wakeup). *)
  Alcotest.(check (option int)) "quiescent while fully quarantined" None
    (Netdev.next_event nd ~after:10);
  ignore (rreg nd Netdev.reg_rx_count);
  Alcotest.(check bool) "wakeup returns once the slots re-arm" true
    (Netdev.next_event nd ~after:10 <> None)

let test_repeated_nack_oldest_first () =
  let m, nd = mk_net ~dma_words:(4 * Netdev.slot_words) () in
  let p1 = [| 9; 91 |] and p2 = [| 8; 82 |] in
  Netdev.inject nd ~now:0 p1;
  Netdev.inject nd ~now:0 p2;
  for t = 1 to 3 do
    tick nd ~now:t
  done;
  wreg nd Netdev.reg_rx_nack 1;
  wreg nd Netdev.reg_rx_nack 1;
  Alcotest.(check int) "both dropped" 2 (Netdev.rx_nacked nd);
  Alcotest.(check int) "ring empty" 0 (rreg nd Netdev.reg_rx_count);
  (* Re-arm and redeliver: the retransmitted frames must land oldest
     slot first, reproducing the FIFO order a healthy ring uses. *)
  ignore (rreg nd Netdev.reg_rx_count);
  Netdev.inject nd ~now:4 p1;
  Netdev.inject nd ~now:4 p2;
  for t = 5 to 8 do
    tick nd ~now:t
  done;
  Alcotest.(check int) "both redelivered" 2 (rreg nd Netdev.reg_rx_count);
  let base, _ = Netdev.rx_region_bounds nd in
  match Netdev.head_rx nd with
  | None -> Alcotest.fail "no head after redelivery"
  | Some (off, len) ->
      Alcotest.(check (array int)) "head is the older frame" p1
        (Mem.read_block m.Machine.mem (base + off) len)

(* --- end-to-end campaign ------------------------------------------------ *)

let test_campaign_off_silent_corruption () =
  let outcome, res =
    Fault_experiments.ingress_trial ~mode:Config.CC ~n:2 ~ingress_check:false
      ~fault:true ~seed:3 ()
  in
  Alcotest.(check bool) "fault landed" true res.Loadgen.fault_fired;
  Alcotest.(check int) "nothing checked" 0 res.Loadgen.ingress_checked;
  Alcotest.(check int) "nothing dropped" 0 res.Loadgen.ingress_dropped;
  Alcotest.(check bool) "corruption reached the client" true
    (res.Loadgen.counters.Ycsb.corrupted > 0);
  Alcotest.(check string) "classified as the paper's YCSB corruption"
    (Outcome.to_string Outcome.Ycsb_corruption)
    (Outcome.to_string outcome);
  Alcotest.(check bool) "and it is uncontrolled" false
    (Outcome.controlled outcome)

let test_campaign_on_detects_and_recovers () =
  let ref_outcome, refr =
    Fault_experiments.ingress_trial ~mode:Config.CC ~n:2 ~ingress_check:true
      ~fault:false ~seed:1 ()
  in
  Alcotest.(check string) "reference run clean"
    (Outcome.to_string Outcome.No_error)
    (Outcome.to_string ref_outcome);
  let outcome, res =
    Fault_experiments.ingress_trial ~mode:Config.CC ~n:2 ~ingress_check:true
      ~fault:true ~seed:3 ()
  in
  Alcotest.(check bool) "fault landed" true res.Loadgen.fault_fired;
  Alcotest.(check bool) "frame dropped at ingress" true
    (res.Loadgen.ingress_dropped >= 1);
  Alcotest.(check bool) "client redelivered it" true
    (res.Loadgen.redelivered >= 1);
  Alcotest.(check int) "no corruption escaped" 0
    res.Loadgen.counters.Ycsb.corrupted;
  Alcotest.(check bool) "service completed" false res.Loadgen.stalled;
  Alcotest.(check string) "classified as a controlled ingress drop"
    (Outcome.to_string Outcome.Ingress_dropped)
    (Outcome.to_string outcome);
  Alcotest.(check bool) "controlled" true (Outcome.controlled outcome);
  (* Drop-and-redeliver reorders completions but not results: the
     seq-sorted outcome digest matches the fault-free reference. *)
  Alcotest.(check int) "all requests answered" refr.Loadgen.completed
    res.Loadgen.completed;
  Alcotest.(check int) "outcome digest equals the fault-free run"
    refr.Loadgen.outcome_sorted_digest res.Loadgen.outcome_sorted_digest

let test_campaign_lc_guest_checksum () =
  (* The LC flavour verifies in the guest (MMIO RX_CSUM + checksum
     loop) rather than in the kernel; the observable contract is the
     same. *)
  let outcome, res =
    Fault_experiments.ingress_trial ~mode:Config.LC ~n:2 ~ingress_check:true
      ~fault:true ~seed:3 ()
  in
  Alcotest.(check bool) "fault landed" true res.Loadgen.fault_fired;
  Alcotest.(check bool) "guest checksum loop ran" true
    (res.Loadgen.ingress_checked >= 1);
  Alcotest.(check bool) "frame dropped" true (res.Loadgen.ingress_dropped >= 1);
  Alcotest.(check int) "no corruption escaped" 0
    res.Loadgen.counters.Ycsb.corrupted;
  Alcotest.(check string) "controlled ingress drop"
    (Outcome.to_string Outcome.Ingress_dropped)
    (Outcome.to_string outcome)

let suite =
  [
    Alcotest.test_case "RX_CSUM is the enqueue-time ground truth" `Quick
      test_rx_csum_ground_truth;
    Alcotest.test_case "NACK quarantine blocks slot re-arm" `Quick
      test_nack_quarantine_blocks_rearm;
    Alcotest.test_case "next_event quiescent while quarantined" `Quick
      test_next_event_quiescent_when_quarantined;
    Alcotest.test_case "repeated NACK re-arms oldest first" `Quick
      test_repeated_nack_oldest_first;
    Alcotest.test_case "campaign: checking off, silent corruption" `Slow
      test_campaign_off_silent_corruption;
    Alcotest.test_case "campaign: checking on, drop + redeliver" `Slow
      test_campaign_on_detects_and_recovers;
    Alcotest.test_case "campaign: LC guest-side checksum" `Slow
      test_campaign_lc_guest_checksum;
  ]
