(** Drive the KV server under a YCSB workload (the paper's Redis
    benchmark rig).

    Plays the load-generator: keeps a window of outstanding requests
    injected into the simulated NIC, drains and validates responses, and
    measures run-phase throughput in operations per simulated second.
    An optional [inject] callback runs between simulation chunks — the
    fault-injection campaigns plug in there. *)

type result = {
  elapsed_cycles : int;  (** Run phase only (load phase excluded). *)
  ops_completed : int;  (** Run-phase completions. *)
  kops_per_sec : float;  (** At the profile's clock frequency. *)
  counters : Rcoe_workloads.Ycsb.counters;
  stalled : bool;  (** The client stopped seeing responses. *)
  sys : Rcoe_core.System.t;
}

val program_for :
  config:Rcoe_core.Config.t ->
  records:int ->
  operations:int ->
  Rcoe_isa.Program.t
(** The exact guest program [run] assembles for this configuration and
    workload size — exposed so front ends can pre-flight it (e.g. the
    footprint analyzer's parallel-eligibility verdict) without
    duplicating the sizing arithmetic. *)

val run :
  config:Rcoe_core.Config.t ->
  workload:Rcoe_workloads.Ycsb.workload ->
  records:int ->
  operations:int ->
  ?window:int ->
  ?gen_seed:int ->
  ?chunk:int ->
  ?stall_limit:int ->
  ?max_cycles:int ->
  ?inject:(Rcoe_core.System.t -> unit) ->
  ?stop_on_error:bool ->
  unit ->
  result
(** [config] must have [with_net = true] (it is forced on). [window]
    (default 8) is the outstanding-request budget. [stall_limit]
    (default 3M cycles) bounds how long the client waits without any
    completion before declaring the system unresponsive.
    [stop_on_error] ends the run as soon as the client observes
    corruption or an error (fault campaigns use this). *)
