type item = I of Instr.t | L of string

let insert items =
  (* Walk the stream keeping track of whether the previous emitted
     instruction is already a [Cntinc] (idempotence). Labels pass through
     before the inserted increment. *)
  let rec go acc prev_was_cnt = function
    | [] -> List.rev acc
    | L l :: rest -> go (L l :: acc) false rest
    | I i :: rest when Instr.is_branch i ->
        let acc = if prev_was_cnt then acc else I Instr.Cntinc :: acc in
        go (I i :: acc) false rest
    | I Instr.Cntinc :: rest -> go (I Instr.Cntinc :: acc) true rest
    | I i :: rest -> go (I i :: acc) false rest
  in
  go [] false items

let counted_branches code =
  Array.fold_left (fun n i -> if Instr.is_branch i then n + 1 else n) 0 code
