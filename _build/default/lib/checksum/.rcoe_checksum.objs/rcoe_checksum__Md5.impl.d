lib/checksum/md5.ml: Array Buffer Bytes Char Float Printf String
