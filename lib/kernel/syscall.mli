(** System call numbers and argument conventions.

    Arguments are passed in [r0]–[r3]; the result, if any, is returned in
    [r0]. The FT_* calls are the paper's driver-support and
    fault-tolerance interface (Listings 4 and the [FT_Add_Trace] call of
    Section III-C); they are handled by the replication engine because
    they are synchronisation points. *)

val sys_exit : int
(** Terminate the calling thread. *)

val sys_yield : int

val sys_spawn : int
(** r0 = entry address, r1 = argument; returns the new tid. *)

val sys_putchar : int
(** r0 = character code. *)

val sys_atomic : int
(** Kernel-mediated atomic update — the syscall the paper requires in
    place of ldrex/strex under CC-RCoE. r0 = address, r1 = value,
    r2 = op (0 add, 1 exchange, 2 compare-and-swap with r3 = expected);
    returns the old value. *)

val sys_get_info : int
(** r0 = key: 0 replica id, 1 replica count, 2 primary id, 3 driver mode
    (0 direct/LC, 1 kernel-mediated/CC), 4 current tid, 5 synchronized
    tick count. *)

val sys_join : int
(** r0 = tid; blocks until that thread exits. *)

val sys_ticks : int
(** Returns the synchronized tick count. *)

val sys_wait_irq : int
(** r0 = device page id; blocks until an interrupt is delivered. *)

val sys_code_patch : int
(** Self-modifying code, kernel-mediated (guest code lives outside the
    simulated data memory, so stores cannot reach it). r0 = code
    address, r1 = patch kind (0 [Nop], 1 [Mov rd, #imm], 2
    [Add rd, rd, #imm], 3 [Jmp #abs]), r2 = destination register index,
    r3 = immediate. The kernel writes its private code array and
    invalidates the block-compiler cache for the patched page; an
    out-of-range address or unknown kind kills the thread. Local (every
    replica patches its own copy deterministically), but the patch words
    are folded into the state signature so replicas diverging on what
    they patched is detectable. *)

val sys_ft_add_trace : int
(** r0 = va, r1 = nwords: add user data to the state signature (drivers
    use it to contribute output data — Section III-C). *)

val sys_ft_mem_access : int
(** r0 = access type (0 read / 1 write), r1 = MMIO va, r2 = src/dst va,
    r3 = nwords. Kernel-mediated, synchronized device access (paper
    Listing 4). *)

val sys_ft_mem_rep : int
(** r0 = destination va, r1 = nwords, r2 = word offset within the DMA
    region. Replicates a DMA buffer into every replica (paper Listing 4;
    the explicit offset is a simulator addition). *)

val sys_input_wait : int
(** Cross-replica rendezvous used by LC drivers after user-mode input
    replication: non-primaries wait until the primary has arrived. *)

val name : int -> string

val arg_count : int -> int
(** Number of declared arguments (the kernel folds only these into the
    signature at sync level A/S; trailing registers hold caller-local
    garbage that may legitimately differ between replicas). *)

val is_ft : int -> bool
(** True for the syscalls handled by the replication engine. *)
