(* The domain-parallel execution engine.

   Between two sync points every live replica only touches private state:
   its own memory partition, its own core and kernel, its own per-core
   bus lane, and its own child trace buffer. The engine exploits that by
   running *execution windows*: spans of simulated cycles in which each
   running replica is stepped on its own [Domain.t] while the
   orchestrating domain waits at a {!Rcoe_util.Barrier}. Everything that
   couples replicas — round initiation, IPIs, barriers, catch-up,
   voting, FT-operation commits, checkpoint capture/restore, fault
   handling policy — runs on the orchestrating domain between windows,
   where all worker domains are quiescent by construction.

   The contract is bit-for-bit determinism with [Engine_seq]: same cycle
   counts, signatures, votes, outcomes, metrics, and cycle-stamped trace
   events. Three mechanisms make that hold:

   - Windows only cover cycle ranges the sequential engine would have
     executed without cross-replica interaction. A window never extends
     past the next preemption tick, a barrier-timeout deadline, a
     [~stop] polling cycle, or the [max_cycles] budget, and is not
     attempted at all during async rounds or while an IPI is pending.
   - Workers never speculate: a worker parks at its first cycle with a
     shared-state effect (sync-point rendezvous, Base-mode system halt)
     and records the cycle, so nothing must ever be rewound.
   - Deferred effects (rendezvous entries, halts, notable events, trace
     events) are replayed by the orchestrator in (cycle, replica-id)
     order — exactly the order the sequential engine's rid-ordered
     stepping loop produces.

   The window then "actually" ends at [w_actual], the cycle at which the
   sequential engine would next have run round-lifecycle code: the
   completion cycle when every live replica reached the rendezvous, the
   last finish cycle when the workload completed, the halt cycle on a
   Base-mode abort, or the window cap. The unmodified classic
   [Sched.advance_phase] runs once at that cycle and arbitrates
   completion against timeouts just as it does every cycle under the
   sequential engine. *)

open Rcoe_machine
open Rcoe_kernel
open Sched
module Barrier = Rcoe_util.Barrier
module Trace = Rcoe_obs.Trace
module Metrics = Rcoe_obs.Metrics

type job = { j_start : int; j_cap : int }

(* One mailbox per worker domain. Written by the orchestrator strictly
   before the window-start barrier crossing and read by the worker
   strictly after it (and vice versa for results at the window-end
   crossing), so the barrier's mutex provides the happens-before edge —
   no atomics needed. *)
type slot = {
  mutable job : job option;
  mutable quit : bool;
  mutable werror : exn option;
}

(* ---------------------------------------------------------------------- *)
(* Worker side                                                             *)
(* ---------------------------------------------------------------------- *)

(* Step one replica through cycles [s+1 .. cap], or fewer if it parks.
   Mirrors the [Rs_run] arm of [Sched.step_replica] minus the cases that
   cannot occur inside a window (IPIs are checked before the window
   opens; gather-joins only exist during async rounds). The worker ticks
   its own bus lane each cycle it simulates — the orchestrator tops the
   lane up to the window end afterwards. *)
let run_window_job t r w ~s ~cap =
  let lane = Machine.bus_lane t.mach ~core_id:r.rid in
  let core = Kernel.core r.kern in
  let c = ref (s + 1) in
  while !c <= cap && w.wpark = None do
    w.wv_now <- !c;
    Bus.tick lane;
    w.w_ticked <- w.w_ticked + 1;
    if core.Core.halted || r.state = Rs_halted then
      w.wpark <- Some (!c, Pk_dead)
    else if r.finished then w.wpark <- Some (!c, Pk_inert)
    else if Kernel.current_tid r.kern < 0 then w.wpark <- Some (!c, Pk_idle)
    else begin
      run_user t r;
      (* A finish or fail-stop *during* this cycle ends the worker's
         window at this cycle — the sequential loop would have noticed
         it in the same iteration. *)
      if w.wpark = None then
        if core.Core.halted || r.state = Rs_halted then
          w.wpark <- Some (!c, Pk_dead)
        else if r.finished then w.wpark <- Some (!c, Pk_inert)
    end;
    incr c
  done

let rec worker_loop t barrier slot r =
  Barrier.await barrier;
  (* window start *)
  if not slot.quit then begin
    (match slot.job with
    | Some { j_start; j_cap } -> (
        match r.wctx with
        | Some w -> (
            try run_window_job t r w ~s:j_start ~cap:j_cap
            with e -> slot.werror <- Some e)
        | None -> slot.werror <- Some (Failure "worker job without wctx"))
    | None -> ());
    Barrier.await barrier;
    (* window end *)
    worker_loop t barrier slot r
  end

(* ---------------------------------------------------------------------- *)
(* Orchestrator side                                                       *)
(* ---------------------------------------------------------------------- *)

(* Furthest cycle the next window may reach. Chosen so that no
   round-lifecycle decision the sequential engine would take falls
   strictly inside the window:
   - [Ph_idle]: up to the next preemption tick. For replicated modes
     also at most [barrier_timeout] cycles out, so a rendezvous that
     *starts* inside the window (earliest at [s+1]) cannot have its
     timeout deadline fire before the window ends.
   - [Ph_rdv]: exactly up to the timeout deadline — the first cycle at
     which [advance_phase] declares the timeout.
   In [Ph_idle] with a NIC attached, also no further than the device's
   next spontaneous event: [advance_phase] polls the interrupt line only
   in that phase, so the window must end exactly at the cycle where a
   delivery (or an already-raised line) would make the sequential
   engine's poll fire. During [Ph_rdv] the poll is dormant and deliveries
   are replayed by the window-end device catch-up, so no clip is needed.
   Always clipped to the run budget and, when a [~stop] predicate is
   installed, to the next multiple-of-128 polling cycle. *)
let window_cap t ~s ~start ~max_cycles ~has_stop =
  let cap =
    match t.phase with
    | Ph_async _ -> s
    | Ph_idle ->
        let cap =
          if t.cfg.Config.mode = Config.Base then t.next_tick
          else min t.next_tick (s + 1 + t.cfg.Config.barrier_timeout)
        in
        (match t.net with
        | Some nd -> (
            match Netdev.next_event nd ~after:s with
            | Some e -> min cap e
            | None -> cap)
        | None -> cap)
    | Ph_rdv { rdv_started } ->
        rdv_started + t.cfg.Config.barrier_timeout + 1
  in
  let cap = min cap (start + max_cycles) in
  if has_stop then min cap (((s lsr 7) + 1) lsl 7) else cap

(* Run one execution window over cycles [s+1 .. cap] and retire it. *)
let window t slots barrier ~s ~cap =
  (* Publish jobs: one per running replica. Parked, halted and removed
     replicas have no private work — their bus lanes and barrier-stall
     decay are settled arithmetically below. *)
  Array.iteri
    (fun i r ->
      if r.state = Rs_run then begin
        let w =
          { wv_now = s; wv_vm_exits = 0; wv_events = []; wpark = None;
            w_ticked = 0 }
        in
        r.wctx <- Some w;
        Trace.begin_buffering r.rtrace ~clock:(fun () -> w.wv_now);
        slots.(i).job <- Some { j_start = s; j_cap = cap }
      end
      else slots.(i).job <- None)
    t.replicas;
  Barrier.await barrier;
  (* workers run *)
  Barrier.await barrier;
  (* workers parked or capped *)
  Array.iter
    (fun sl -> match sl.werror with Some e -> raise e | None -> ())
    slots;
  (* Where the sequential engine would next have made a decision. *)
  let park r = match r.wctx with Some w -> w.wpark | None -> None in
  let lv = live_replicas t in
  let all_rdv =
    lv <> []
    && List.for_all
         (fun r ->
           match park r with
           | Some (_, Pk_rendezvous) -> true
           | Some _ -> false
           | None -> r.state = Rs_rendezvous && arrived_bar t r.rid)
         lv
  in
  let all_inert =
    lv <> []
    && List.for_all
         (fun r ->
           match park r with Some (_, Pk_inert) -> true | _ -> false)
         lv
  in
  let halt_ts =
    Array.fold_left
      (fun acc r ->
        match park r with
        | Some (ts, Pk_halt _) -> (
            match acc with None -> Some ts | Some a -> Some (min a ts))
        | _ -> acc)
      None t.replicas
  in
  let max_park kind =
    Array.fold_left
      (fun acc r ->
        match park r with
        | Some (ts, k) when k = kind -> max acc ts
        | _ -> acc)
      (s + 1) t.replicas
  in
  let w_actual =
    if all_rdv then max_park Pk_rendezvous
    else if all_inert then max_park Pk_inert
    else match halt_ts with Some ts -> ts | None -> cap
  in
  (* Replay deferred shared-state effects in (cycle, rid) order — the
     sequential stepping order. The machine clock tracks each effect's
     cycle so logs, trace stamps and rendezvous bookkeeping match the
     sequential engine exactly; children are still buffering, so trace
     events emitted here land *after* the replica's in-window events. *)
  let effects = ref [] in
  Array.iter
    (fun r ->
      match r.wctx with
      | None -> ()
      | Some w ->
          let evs =
            List.rev_map (fun (ts, k) -> (ts, r.rid, `Event k)) w.wv_events
          in
          let parks =
            match w.wpark with
            | Some (ts, Pk_rendezvous) -> [ (ts, r.rid, `Rdv) ]
            | Some (ts, Pk_halt reason) -> [ (ts, r.rid, `Halt reason) ]
            | _ -> []
          in
          effects := !effects @ evs @ parks)
    t.replicas;
  let effects =
    List.stable_sort
      (fun (ts_a, rid_a, _) (ts_b, rid_b, _) ->
        compare (ts_a, rid_a) (ts_b, rid_b))
      !effects
  in
  List.iter
    (fun (ts, rid, eff) ->
      let r = t.replicas.(rid) in
      t.mach.Machine.now <- ts;
      (match r.wctx with Some w -> w.wv_now <- ts | None -> ());
      match eff with
      | `Event k -> log_event t k
      | `Rdv -> enter_rendezvous t r
      | `Halt reason -> halt_system t reason)
    effects;
  (* Barrier-spin stall decay: the sequential engine decrements a parked
     replica's residual stall by one per cycle; apply the window's worth
     in closed form. *)
  Array.iter
    (fun r ->
      if r.state = Rs_rendezvous then begin
        let since =
          match r.wctx with
          | Some { wpark = Some (ts, Pk_rendezvous); _ } -> ts
          | _ -> s
        in
        let core = Kernel.core r.kern in
        if core.Core.stall > 0 then
          core.Core.stall <- max 0 (core.Core.stall - (w_actual - since))
      end)
    t.replicas;
  (* Top every bus lane up to the window end: the sequential engine's
     Machine.tick runs all lanes every cycle, including those of parked,
     halted and removed cores. *)
  let span = w_actual - s in
  Array.iter
    (fun r ->
      let ticked = match r.wctx with Some w -> w.w_ticked | None -> 0 in
      Bus.advance
        (Machine.bus_lane t.mach ~core_id:r.rid)
        ~cycles:(max 0 (span - ticked)))
    t.replicas;
  t.mach.Machine.now <- w_actual;
  (* Device catch-up: one bulk tick at the window-end cycle drains
     everything the per-cycle ticks of the sequential engine would have
     delivered by now (delivery order, slot assignment and timestamps
     depend only on the host queue and [now], so the result is
     identical), before [advance_phase] polls the interrupt line or a
     completed rendezvous consumes device state. *)
  Machine.tick_devices t.mach;
  (* Commit per-replica trace buffers into the shared ring in
     deterministic order, then settle deferred metrics. *)
  let bufs =
    Array.map
      (fun r ->
        match r.wctx with
        | Some _ -> Trace.end_buffering r.rtrace
        | None -> [])
      t.replicas
  in
  Trace.merge_buffered t.trace bufs;
  Array.iter
    (fun r ->
      match r.wctx with
      | Some w ->
          if w.wv_vm_exits > 0 then
            Metrics.incr ~by:w.wv_vm_exits t.ms.m_vm_exits;
          r.wctx <- None
      | None -> ())
    t.replicas;
  (* The classic per-cycle decision point, run at the window-end cycle. *)
  advance_phase t

let run ?stop t ~max_cycles =
  let n = Array.length t.replicas in
  let barrier = Barrier.create (n + 1) in
  let slots =
    Array.init n (fun _ -> { job = None; quit = false; werror = None })
  in
  let doms =
    Array.init n (fun rid ->
        Domain.spawn (fun () ->
            worker_loop t barrier slots.(rid) t.replicas.(rid)))
  in
  let shutdown () =
    Array.iter
      (fun sl ->
        sl.quit <- true;
        sl.job <- None)
      slots;
    Barrier.await barrier;
    Array.iter Domain.join doms
  in
  let start = now t in
  let continue_ = ref true in
  (try
     while
       !continue_ && t.halt = None
       && (not (finished t))
       && now t - start < max_cycles
     do
       let s = now t in
       (* A window is possible only between sync points with no IPI in
          flight; async rounds and IPI delivery interleave replicas at
          cycle granularity and take the classic path. *)
       let windowable =
         match t.phase with
         | Ph_async _ -> false
         | Ph_idle | Ph_rdv _ ->
             not
               (Array.exists
                  (fun r ->
                    r.state = Rs_run
                    && t.mach.Machine.ipi_pending.(r.rid) <> max_int)
                  t.replicas)
       in
       let cap =
         if windowable then
           window_cap t ~s ~start ~max_cycles ~has_stop:(stop <> None)
         else s
       in
       if cap <= s then classic_cycle t else window t slots barrier ~s ~cap;
       (match stop with
       | Some f when now t land 127 = 0 -> if f t then continue_ := false
       | _ -> ())
     done;
     shutdown ()
   with e ->
     (try shutdown () with _ -> ());
     raise e)
