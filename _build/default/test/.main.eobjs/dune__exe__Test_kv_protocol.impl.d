test/test_kv_protocol.ml: Alcotest Array Config Kv_run Kvstore List Netdev Option Printf Rcoe_core Rcoe_harness Rcoe_machine Rcoe_util Rcoe_workloads Runner System Ycsb
