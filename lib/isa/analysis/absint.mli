(** Interprocedural interval/stride abstract interpretation.

    Computes, for every instruction, a sound over-approximation of each
    integer register's value as an interval with an optional congruence
    (stride) anchored at the lower bound. Built on the {!Dataflow}
    worklist solver over the {!Cfg}:

    - {b Widening}: loop heads (targets of address-retreating edges)
      are widened against a threshold ladder made of the program's
      immediate constants, so bounded loops keep their bounds while
      unbounded chains terminate at infinity.
    - {b Branch refinement}: [Fall]/[Jump] edges meet the flowing
      environment with the branch condition (or its negation),
      including register-register comparisons; an empty meet yields the
      unreachable environment [Bot], pruning dead paths such as the
      not-taken arm of a configuration test against a constant.
    - {b Interprocedural}: [Call] edges carry the caller's registers
      into the callee (entry facts join over call sites); [Retsite]
      edges substitute the callee's exit summary with the caller's
      stack pointer (callees are balanced); summaries are iterated to
      an outer fixpoint.

    Saturating arithmetic keeps every finite bound a true bound on the
    concrete word value — the property {!Footprint} relies on to bound
    memory accesses. *)

(** {2 Intervals} *)

val neg_inf : int
val pos_inf : int
(** Symbolic infinities: bounds saturate here well before the native
    word range, so interval arithmetic never wraps. *)

type ival = { lo : int; hi : int; stride : int }
(** [{lo; hi; stride}] denotes [{ lo + k*stride | k >= 0 }] within
    [\[lo, hi\]] when [lo] is finite and [stride >= 1]; [stride = 0]
    marks a singleton; infinite [lo] carries no congruence. *)

val top : ival
val const : int -> ival
val mk : ?stride:int -> int -> int -> ival
(** [mk lo hi] with bound normalisation and stride reduction. *)

val is_top : ival -> bool
val is_const : ival -> bool
val to_const : ival -> int option
val join_iv : ival -> ival -> ival
val meet_iv : ival -> ival -> ival option
(** [None] when the intersection is empty. *)

val add_iv : ival -> ival -> ival
val sub_iv : ival -> ival -> ival
val mul_iv : ival -> ival -> ival
val alu_iv : Instr.alu -> ival -> ival -> ival
(** Abstract counterpart of the machine ALU (matching its shift masking
    and truncating division). *)

val widen_iv : int array -> ival -> ival -> ival
(** [widen_iv thresholds old joined]: extrapolate bounds that grew past
    [old] to the nearest threshold (sorted ascending), or infinity. *)

val refine_ne : ival -> int -> ival option
(** Refine by the branch fact [<> c]: [None] for the singleton [c]; a
    bound equal to [c] advances (lo) or retreats (hi) by the stride so
    the congruence keeps its residue class; an interior [c] leaves the
    interval unchanged. Exposed for tests. *)

val iv_to_string : ival -> string

(** {2 Register environments} *)

type env = Bot | Env of ival array  (** [Bot] = unreachable. *)

val env_equal : env -> env -> bool
val env_join : env -> env -> env

(** {2 Whole-program analysis} *)

type syscall_model = sysno:int -> r0:ival -> ival
(** Abstract return value (the kernel only writes [r0]) given the
    syscall number and the abstract pre-state of [r0]. *)

val default_syscall : syscall_model
(** Returns {!top} for everything. *)

type result = {
  cfg : Cfg.t;
  before : env array;  (** Per-instruction pre-state. *)
  after : env array;  (** Per-instruction post-state. *)
  rounds : int;  (** Outer summary-fixpoint iterations. *)
  diverged : int option;
      (** [Some addr] if the solver tripped its iteration guard (or
          [-1] if function summaries failed to stabilise): the facts
          are then top-degraded and must be treated as "don't know". *)
}

val analyze :
  ?syscall:syscall_model -> ?init:ival array -> Cfg.t -> result
(** [init] seeds the registers at every thread root (default: all
    {!top}); pass a bounded stack pointer to get bounded stack
    footprints. *)

val thresholds_of : Program.t -> int array
(** The widening ladder {!analyze} uses, exposed for tests. *)

val reg_of : env array -> int -> Reg.t -> ival option
(** [reg_of facts addr r]: the interval of [r] in [facts.(addr)], or
    [None] when the point is unreachable ([Bot]). *)
