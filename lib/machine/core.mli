(** A simulated CPU core.

    One core executes one user instruction stream. The kernel is not
    simulated at instruction granularity (the paper's logical clocks
    deliberately exclude kernel instructions); instead, kernel work is
    charged to the core as stall cycles.

    The core implements the machinery RCoE depends on:

    - a PMU-style precise user-branch counter ({!branch_count}) used in
      hardware-assisted counting mode; in compiler-assisted mode the
      counter is architectural state (the reserved register), updated by
      [Cntinc] instructions,
    - a single global instruction breakpoint with x86 resume-flag
      semantics (the kernel sets {!field-bp_suppress} to step over the
      breakpointed instruction; on the Arm profile the kernel charges the
      extra single-step exception cost itself),
    - interruptible rep-string execution: [Rep_movs] copies one word per
      cycle and can be preempted mid-copy with architecturally-consistent
      register state,
    - an exclusive monitor for [Ldex]/[Stex], cleared by the kernel on
      every kernel entry, so exclusive retry counts can genuinely differ
      between replicas,
    - deterministic per-core timing jitter (a seeded cache-miss model),
      which makes replicas drift so the synchronisation protocol has real
      work to do. *)

type fault =
  | Unmapped of { vaddr : int; write : bool }
  | Write_protect of int
  | Division_by_zero
  | Bad_ip of int
  | Phys_abort of int
      (** Physical access out of range — reached through a corrupted
          page-table entry; the kernel reports it as a kernel data
          abort. *)

type event =
  | Ev_halt
  | Ev_syscall of int
  | Ev_fault of fault
  | Ev_breakpoint  (** The instruction at [ip] has not executed yet. *)

type t = {
  id : int;
  mutable ip : int;
  regs : int array;  (** 16 integer registers. *)
  fregs : float array;  (** 8 FP registers. *)
  mutable stall : int;  (** Remaining stall cycles. *)
  mutable cycles : int;  (** Active (non-blocked) cycles consumed. *)
  mutable instret : int;  (** Instructions retired. *)
  mutable hw_branches : int;  (** PMU user-branch counter. *)
  mutable last_was_cntinc : bool;
      (** True iff the most recently retired instruction was [Cntinc] —
          exposed because the paper's leader election must detect a
          replica preempted between the counter increment and its
          branch. *)
  mutable excl_armed : bool;
  mutable excl_addr : int;
  mutable bp : int option;  (** Global instruction breakpoint. *)
  mutable bp_suppress : bool;  (** Resume-flag: skip [bp] while ip = bp. *)
  mutable halted : bool;
  mutable bus_wait : int;
      (** Consecutive cycles stalled on bus contention; flushed to the
          trace as one span when a token is finally granted. *)
  jitter : Rcoe_util.Rng.t;
}

type env = {
  code : Rcoe_isa.Instr.t array;
  mem : Mem.t;
  translate : vaddr:int -> write:bool -> Page_table.resolution;
  dev_read : int -> int -> int;  (** device page id, word offset *)
  dev_write : int -> int -> int -> unit;
  bus : Bus.t;
  profile : Arch.profile;
  trace : Rcoe_obs.Trace.t;
      (** Sink for breakpoint fires and bus-stall spans; pass
          [Rcoe_obs.Trace.disabled ()] when not tracing. *)
}

type step_result =
  | Ran
  | Stalled  (** Stall cycle or bus contention; retry next cycle. *)
  | Event of event

val create : id:int -> jitter_seed:int -> t

val step : t -> env -> step_result
(** Advance the core by one global cycle. Consumed cycles are counted in
    [cycles]; events leave the triggering state (ip, registers) for the
    kernel to inspect. [Ev_syscall] retires the syscall instruction (ip
    already advanced); faults do not advance ip. *)

val branch_count : t -> Arch.profile -> int
(** The user branch counter under the profile's counting mode: the PMU
    register (hardware) or the reserved register (compiler-assisted). *)

val set_branch_count : t -> Arch.profile -> int -> unit
(** Restore the counter on context switch (it is thread-local state). *)

val clear_exclusive : t -> unit
(** Kernel entry clears the exclusive monitor (as real kernels do). *)

val add_stall : t -> int -> unit
(** Charge kernel-time cycles to the core. *)

val rep_in_progress : t -> env -> bool
(** True if [ip] points at a partially-executed [Rep_movs] — the case
    where a breakpoint cannot name a unique logical time. *)

(** {2 Execution-backend support}

    The pieces of the interpreter that alternative execution backends
    ({!Blockc}) reuse so that their per-instruction semantics are the
    interpreter's own, not a re-implementation. {!step} remains the
    oracle: any backend must be observably identical to it, cycle for
    cycle. *)

exception Take_fault of fault
(** Raised by instruction execution when the access faults; {!step}
    turns it into [Event (Ev_fault f)] and clears the bus-wait run. *)

exception Bus_busy
(** Raised when a bus token cannot be acquired this cycle — before any
    stall or memory effect; {!step} turns it into a [Stalled] cycle and
    extends the bus-wait run. *)

val exec : t -> env -> Rcoe_isa.Instr.t -> event option
(** Execute exactly one instruction (or one word of a rep-string) with
    full architectural effect. Raises {!Take_fault} / {!Bus_busy}.
    Backends call this directly for stateful instructions they do not
    specialise. *)

val load : t -> env -> int -> int
(** One data-memory read at a virtual address: translation, bus
    acquisition, memory-stall charge, then the access. Raises
    {!Take_fault} / {!Bus_busy}. *)

val store : t -> env -> int -> int -> unit
(** One data-memory write at a virtual address; same contract as
    {!load} (including dirty-bit marking via [Mem.write]). *)

val flush_bus_wait : t -> env -> unit
(** Emit any accumulated bus-contention run as a single trace span and
    reset it; called on every successfully executed instruction. *)
