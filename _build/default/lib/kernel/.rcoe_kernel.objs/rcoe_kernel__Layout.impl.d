lib/kernel/layout.ml: Array Printf Rcoe_isa Rcoe_machine
