lib/machine/core.mli: Arch Bus Mem Page_table Rcoe_isa Rcoe_util
