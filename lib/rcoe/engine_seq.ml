(* The sequential execution engine: the reference semantics. Every
   simulated cycle ticks the machine, steps each replica in rid order on
   the calling domain, and advances the round state machine. The
   parallel engine ([Engine_par]) is required to be bit-for-bit
   equivalent to this loop. *)

open Sched

let run ?stop t ~max_cycles =
  let start = now t in
  let continue_ = ref true in
  while
    !continue_ && t.halt = None
    && (not (finished t))
    && now t - start < max_cycles
  do
    (* Block-compiled backend: burn quiescent stretches in one burst
       (see [Sched.burst_cycles] for the bit-identity argument). The
       budget never crosses [max_cycles], and with a [stop] callback it
       also never crosses a 128-cycle poll boundary, so the polls below
       fire at exactly the cycles per-cycle stepping would poll at. *)
    let budget = max_cycles - (now t - start) in
    let budget =
      match stop with
      | Some _ -> min budget (128 - (now t land 127))
      | None -> budget
    in
    (match burst_cycles t ~budget with
    | Some _ -> ()
    | None -> classic_cycle t);
    (match stop with
    | Some f when now t land 127 = 0 -> if f t then continue_ := false
    | _ -> ())
  done
