lib/harness/runner.ml: Config Rcoe_core System
