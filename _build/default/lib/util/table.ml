type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells > List.length t.headers then
    invalid_arg "Table.add_row: more cells than headers";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad_left width s = String.make (max 0 (width - String.length s)) ' ' ^ s
let pad_right width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let observe cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  observe t.headers;
  List.iter (function Cells c -> observe c | Separator -> ()) rows;
  let render_cells cells =
    let padded =
      List.mapi
        (fun i c ->
          if i = 0 then pad_right widths.(i) c else pad_left widths.(i) c)
        (cells @ List.init (ncols - List.length cells) (fun _ -> ""))
    in
    String.concat "  " padded
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body =
    List.map (function Cells c -> render_cells c | Separator -> sep) rows
  in
  String.concat "\n" ((render_cells t.headers :: sep :: body) @ [ "" ])

let print t = print_string (render t)
