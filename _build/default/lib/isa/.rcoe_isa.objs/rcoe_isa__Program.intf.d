lib/isa/program.mli: Instr
