lib/machine/mem.ml: Array
