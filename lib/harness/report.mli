(** Shared experiment-output formatting (previously copy-pasted into
    each experiment module). *)

val header : string -> string -> unit
(** [header title expectation] prints the experiment banner: a rule,
    the title, the paper's expected outcome, and a closing rule. *)
