(* Chrome trace-event JSON. Timestamps are simulated cycles emitted in
   the "ts" microsecond field unscaled — Perfetto only needs a
   monotone integer axis, and 1 cycle = 1 us keeps the numbers
   readable. *)

let pid_replicas = 0
let pid_machine = 1

let complete ~name ~pid ~tid ~ts ~dur ?(args = []) () =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "X");
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("ts", Json.Int ts);
       ("dur", Json.Int dur);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let instant ~name ~pid ~tid ~ts ?(args = []) () =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "i");
       ("s", Json.String "t");
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("ts", Json.Int ts);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let metadata ~name ~pid ~tid ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let trace_events tr =
  let events = Trace.events tr in
  let last_ts = List.fold_left (fun acc e -> max acc e.Trace.ts) 0 events in
  let out = ref [] in
  let emit j = out := j :: !out in
  (* Open phase begins, keyed per (rid, phase); Phase_end pops its
     match. Stacks tolerate the ring having dropped a Begin or End. *)
  let open_phases : (int * Trace.sync_phase, int list) Hashtbl.t =
    Hashtbl.create 32
  in
  let rids = Hashtbl.create 8 in
  let note_rid rid = if rid >= 0 then Hashtbl.replace rids rid () in
  List.iter
    (fun { Trace.ts; rid; body } ->
      note_rid rid;
      match body with
      | Trace.Phase_begin ph ->
          let key = (rid, ph) in
          let stack =
            match Hashtbl.find_opt open_phases key with
            | Some s -> s
            | None -> []
          in
          Hashtbl.replace open_phases key (ts :: stack)
      | Trace.Phase_end ph -> (
          let key = (rid, ph) in
          match Hashtbl.find_opt open_phases key with
          | Some (t0 :: rest) ->
              Hashtbl.replace open_phases key rest;
              emit
                (complete ~name:(Trace.sync_phase_name ph) ~pid:pid_replicas
                   ~tid:rid ~ts:t0 ~dur:(max 0 (ts - t0)) ())
          | _ -> () (* begin fell off the ring *))
      | Trace.Round_begin seq ->
          emit
            (instant ~name:"round-begin" ~pid:pid_machine ~tid:0 ~ts
               ~args:[ ("seq", Json.Int seq) ]
               ())
      | Trace.Round_end seq ->
          emit
            (instant ~name:"round-end" ~pid:pid_machine ~tid:0 ~ts
               ~args:[ ("seq", Json.Int seq) ]
               ())
      | Trace.Syscall { num; name; cost } ->
          emit
            (complete
               ~name:(Printf.sprintf "sys:%s" name)
               ~pid:pid_replicas ~tid:rid ~ts ~dur:cost
               ~args:[ ("num", Json.Int num) ]
               ())
      | Trace.Preempt { tid } ->
          emit
            (instant ~name:"preempt" ~pid:pid_replicas ~tid:rid ~ts
               ~args:[ ("tid", Json.Int tid) ]
               ())
      | Trace.Fault { kind } ->
          emit
            (instant ~name:("fault:" ^ kind) ~pid:pid_replicas ~tid:rid ~ts ())
      | Trace.Bp_fire ->
          emit (instant ~name:"bp-fire" ~pid:pid_replicas ~tid:rid ~ts ())
      | Trace.Single_step ->
          emit (instant ~name:"single-step" ~pid:pid_replicas ~tid:rid ~ts ())
      | Trace.Rep_step ->
          emit (instant ~name:"rep-step" ~pid:pid_replicas ~tid:rid ~ts ())
      | Trace.Vm_exit ->
          emit (instant ~name:"vm-exit" ~pid:pid_replicas ~tid:rid ~ts ())
      | Trace.Ipi { target } ->
          emit
            (instant ~name:"ipi" ~pid:pid_machine ~tid:0 ~ts
               ~args:[ ("target", Json.Int target) ]
               ())
      | Trace.Dev_irq { dpn } ->
          emit
            (instant ~name:"dev-irq" ~pid:pid_machine ~tid:0 ~ts
               ~args:[ ("dpn", Json.Int dpn) ]
               ())
      | Trace.Bus_stall { cycles } ->
          emit
            (complete ~name:"bus-stall" ~pid:pid_replicas ~tid:rid
               ~ts:(max 0 (ts - cycles))
               ~dur:cycles ())
      | Trace.Vote { count; c0; c1; agree } ->
          emit
            (instant ~name:"vote" ~pid:pid_replicas ~tid:rid ~ts
               ~args:
                 [
                   ("count", Json.Int count);
                   ("c0", Json.Int c0);
                   ("c1", Json.Int c1);
                   ("agree", Json.Bool agree);
                 ]
               ())
      | Trace.Injection { addr; bit } ->
          emit
            (instant ~name:"injection" ~pid:pid_machine ~tid:0 ~ts
               ~args:[ ("addr", Json.Int addr); ("bit", Json.Int bit) ]
               ())
      | Trace.Downgrade { rid; cost } ->
          note_rid rid;
          emit
            (complete ~name:"downgrade" ~pid:pid_machine ~tid:0 ~ts ~dur:cost
               ~args:[ ("removed", Json.Int rid) ]
               ())
      | Trace.Reintegrate { rid; cost } ->
          note_rid rid;
          emit
            (complete ~name:"reintegrate" ~pid:pid_machine ~tid:0 ~ts ~dur:cost
               ~args:[ ("rid", Json.Int rid) ]
               ())
      | Trace.Checkpoint { words; skipped; cost } ->
          emit
            (complete ~name:"checkpoint" ~pid:pid_machine ~tid:1 ~ts ~dur:cost
               ~args:[ ("words", Json.Int words); ("skipped", Json.Int skipped) ]
               ())
      | Trace.Rollback { to_cycle; cost } ->
          emit
            (complete ~name:"rollback" ~pid:pid_machine ~tid:1 ~ts ~dur:cost
               ~args:[ ("to_cycle", Json.Int to_cycle) ]
               ())
      | Trace.Ingress_drop { id; expect; got } ->
          emit
            (instant ~name:"ingress-drop" ~pid:pid_machine ~tid:1 ~ts
               ~args:
                 [
                   ("id", Json.Int id);
                   ("expect", Json.Int expect);
                   ("got", Json.Int got);
                 ]
               ())
      | Trace.Replay_cut { seq } ->
          emit
            (instant ~name:"replay-cut" ~pid:pid_machine ~tid:2 ~ts
               ~args:[ ("seq", Json.Int seq) ]
               ())
      | Trace.Replay_verdict { seq; chunk_end; lag; ok } ->
          (* Span the detection window: chunk execution end to verdict. *)
          emit
            (complete
               ~name:(if ok then "replay-verify" else "replay-mismatch")
               ~pid:pid_machine ~tid:2 ~ts:chunk_end ~dur:lag
               ~args:[ ("seq", Json.Int seq); ("ok", Json.Bool ok) ]
               ()))
    events;
  (* Close phases left open at trace end. *)
  Hashtbl.iter
    (fun (rid, ph) stack ->
      List.iter
        (fun t0 ->
          emit
            (complete ~name:(Trace.sync_phase_name ph) ~pid:pid_replicas
               ~tid:rid ~ts:t0 ~dur:(max 0 (last_ts - t0)) ()))
        stack)
    open_phases;
  let meta =
    metadata ~name:"process_name" ~pid:pid_replicas ~tid:0 ~value:"replicas"
    :: metadata ~name:"process_name" ~pid:pid_machine ~tid:0 ~value:"machine"
    :: metadata ~name:"thread_name" ~pid:pid_machine ~tid:0 ~value:"engine"
    :: metadata ~name:"thread_name" ~pid:pid_machine ~tid:1 ~value:"recovery"
    :: metadata ~name:"thread_name" ~pid:pid_machine ~tid:2 ~value:"replay"
    :: (Hashtbl.fold (fun rid () acc -> rid :: acc) rids []
       |> List.sort compare
       |> List.map (fun rid ->
              metadata ~name:"thread_name" ~pid:pid_replicas ~tid:rid
                ~value:(Printf.sprintf "replica %d" rid)))
  in
  meta @ List.rev !out

let to_chrome_json ?(extra = []) tr =
  (* A wrapped ring silently lost its oldest events; surface the loss
     inside the timeline itself (not just otherData, which the Perfetto
     UI hides) as an instant at the earliest surviving timestamp. *)
  let truncation =
    let d = Trace.dropped tr in
    if d = 0 then []
    else
      let first_ts =
        match Trace.events tr with e :: _ -> e.Trace.ts | [] -> 0
      in
      [
        instant
          ~name:(Printf.sprintf "trace-truncated: %d events lost" d)
          ~pid:pid_machine ~tid:0 ~ts:first_ts
          ~args:[ ("dropped_events", Json.Int d) ]
          ();
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (truncation @ trace_events tr @ extra));
         ("displayTimeUnit", Json.String "ms");
         ( "otherData",
           Json.Obj
             [
               ("tool", Json.String "rcoe");
               ("total_events", Json.Int (Trace.total tr));
               ("dropped_events", Json.Int (Trace.dropped tr));
             ] );
       ])

let write_chrome ?extra ~path tr =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ?extra tr))

let all_phases =
  [
    Trace.Ipi_wait;
    Trace.Gather_wait;
    Trace.Chase;
    Trace.Catchup;
    Trace.Pmu_catchup;
    Trace.Vote_wait;
    Trace.Rendezvous;
  ]

let summary_table tr =
  let events = Trace.events tr in
  (* (rid, phase) -> (count, total cycles); pair begins/ends as in the
     JSON export. *)
  let phase_tot : (int * Trace.sync_phase, int * int) Hashtbl.t =
    Hashtbl.create 32
  in
  let open_phases : (int * Trace.sync_phase, int list) Hashtbl.t =
    Hashtbl.create 32
  in
  let point : (int * string, int) Hashtbl.t = Hashtbl.create 32 in
  let bump_point rid name =
    let k = (rid, name) in
    Hashtbl.replace point k (1 + Option.value ~default:0 (Hashtbl.find_opt point k))
  in
  let rids = Hashtbl.create 8 in
  List.iter
    (fun { Trace.ts; rid; body } ->
      if rid >= 0 then Hashtbl.replace rids rid ();
      match body with
      | Trace.Phase_begin ph ->
          let key = (rid, ph) in
          let stack = Option.value ~default:[] (Hashtbl.find_opt open_phases key) in
          Hashtbl.replace open_phases key (ts :: stack)
      | Trace.Phase_end ph -> (
          let key = (rid, ph) in
          match Hashtbl.find_opt open_phases key with
          | Some (t0 :: rest) ->
              Hashtbl.replace open_phases key rest;
              let n, tot =
                Option.value ~default:(0, 0) (Hashtbl.find_opt phase_tot key)
              in
              Hashtbl.replace phase_tot key (n + 1, tot + max 0 (ts - t0))
          | _ -> ())
      | Trace.Syscall _ -> bump_point rid "syscalls"
      | Trace.Bp_fire -> bump_point rid "bp-fires"
      | Trace.Single_step -> bump_point rid "single-steps"
      | Trace.Rep_step -> bump_point rid "rep-steps"
      | Trace.Vm_exit -> bump_point rid "vm-exits"
      | Trace.Vote _ -> bump_point rid "votes"
      | Trace.Bus_stall { cycles } ->
          let k = (rid, "bus-stall-cycles") in
          Hashtbl.replace point k
            (cycles + Option.value ~default:0 (Hashtbl.find_opt point k))
      | _ -> ())
    events;
  let open Rcoe_util in
  let tbl =
    Table.create
      ~headers:
        ([ "replica" ]
        @ List.concat_map
            (fun ph ->
              let n = Trace.sync_phase_name ph in
              [ n; n ^ "-cyc" ])
            all_phases
        @ [ "syscalls"; "bp-fires"; "vm-exits"; "votes"; "bus-stall-cyc" ])
  in
  Hashtbl.fold (fun rid () acc -> rid :: acc) rids []
  |> List.sort compare
  |> List.iter (fun rid ->
         let cells =
           [ string_of_int rid ]
           @ List.concat_map
               (fun ph ->
                 let n, tot =
                   Option.value ~default:(0, 0)
                     (Hashtbl.find_opt phase_tot (rid, ph))
                 in
                 [ string_of_int n; string_of_int tot ])
               all_phases
           @ List.map
               (fun name ->
                 string_of_int
                   (Option.value ~default:0 (Hashtbl.find_opt point (rid, name))))
               [ "syscalls"; "bp-fires"; "vm-exits"; "votes"; "bus-stall-cycles" ]
         in
         Table.add_row tbl cells);
  tbl
