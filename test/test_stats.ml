open Rcoe_util

let feq = Alcotest.float 1e-9

let test_mean () = Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_stddev () =
  (* Sample stddev of 2,4,4,4,5,5,7,9 is sqrt(32/7). *)
  Alcotest.check feq "stddev"
    (sqrt (32.0 /. 7.0))
    (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stddev_singleton () =
  Alcotest.check feq "singleton" 0.0 (Stats.stddev [ 5.0 ])

let test_summarize () =
  let s = Stats.summarize [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.check feq "min" 1.0 s.Stats.min;
  Alcotest.check feq "max" 3.0 s.Stats.max

let test_summarize_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty list")
    (fun () -> ignore (Stats.summarize []))

let test_geomean () =
  Alcotest.check feq "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "median" 50.0 (Stats.percentile 50.0 xs);
  Alcotest.check feq "p99" 99.0 (Stats.percentile 99.0 xs);
  Alcotest.check feq "max" 100.0 (Stats.percentile 100.0 xs)

let test_histogram () =
  Alcotest.(check (list (pair (float 1e-9) int)))
    "bucketing"
    [ (1.0, 2); (5.0, 2); (10.0, 1) ]
    (Stats.histogram ~buckets:[ 1.0; 5.0; 10.0 ]
       [ 0.5; 1.0; 2.0; 5.0; 7.5; 12.0 ])
(* 12.0 exceeds the largest bound and is dropped. *)

let test_histogram_unsorted_buckets () =
  (* Buckets are sorted and deduplicated before counting. *)
  Alcotest.(check (list (pair (float 1e-9) int)))
    "sort_uniq" [ (2.0, 1); (4.0, 1) ]
    (Stats.histogram ~buckets:[ 4.0; 2.0; 4.0 ] [ 1.0; 3.0 ])

let test_histogram_empty_buckets () =
  Alcotest.check_raises "no buckets"
    (Invalid_argument "Stats.histogram: no buckets") (fun () ->
      ignore (Stats.histogram ~buckets:[] [ 1.0 ]))

let test_format_paper () =
  let s = Stats.summarize [ 85.0; 87.0 ] in
  (* mean 86, stddev sqrt(2) ~ 1.41 -> "86 (1)" *)
  Alcotest.(check string) "paper style" "86 (1)" (Stats.format_paper ~decimals:0 s)

let test_format_paper_decimals () =
  let s = Stats.summarize [ 1.23; 1.27 ] in
  (* mean 1.25, stddev ~0.028 -> at 2 decimals: "1.25 (3)" *)
  Alcotest.(check string) "decimals" "1.25 (3)" (Stats.format_paper ~decimals:2 s)

let qcheck_mean_within_bounds =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Stats.summarize xs in
      s.Stats.mean >= s.Stats.min -. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let qcheck_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= arithmetic mean (AM-GM)" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0.001 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      Stats.geomean xs <= Stats.mean xs +. 1e-6)

let nonempty_floats =
  QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-500.0) 500.0))

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(triple nonempty_floats (float_range 0.0 100.0) (float_range 0.0 100.0))
    (fun (xs, p1, p2) ->
      QCheck.assume (xs <> []);
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9)

let qcheck_percentile_bounded =
  QCheck.Test.make ~name:"percentile lies within [min,max]" ~count:300
    QCheck.(pair nonempty_floats (float_range 0.0 100.0))
    (fun (xs, p) ->
      QCheck.assume (xs <> []);
      let v = Stats.percentile p xs in
      let s = Stats.summarize xs in
      v >= s.Stats.min -. 1e-9 && v <= s.Stats.max +. 1e-9)

let qcheck_histogram_conserves =
  QCheck.Test.make
    ~name:"histogram counts = samples under the largest bound" ~count:300
    QCheck.(pair nonempty_floats (list_of_size Gen.(int_range 1 8) (float_range (-500.0) 500.0)))
    (fun (xs, buckets) ->
      QCheck.assume (buckets <> []);
      let h = Stats.histogram ~buckets xs in
      let top = List.fold_left max neg_infinity buckets in
      let expected = List.length (List.filter (fun x -> x <= top) xs) in
      List.fold_left (fun acc (_, c) -> acc + c) 0 h = expected)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "stddev singleton" `Quick test_stddev_singleton;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize empty raises" `Quick test_summarize_empty;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "geomean rejects non-positive" `Quick
      test_geomean_rejects_nonpositive;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram unsorted buckets" `Quick
      test_histogram_unsorted_buckets;
    Alcotest.test_case "histogram empty buckets raises" `Quick
      test_histogram_empty_buckets;
    Alcotest.test_case "format_paper" `Quick test_format_paper;
    Alcotest.test_case "format_paper decimals" `Quick test_format_paper_decimals;
    QCheck_alcotest.to_alcotest qcheck_mean_within_bounds;
    QCheck_alcotest.to_alcotest qcheck_geomean_le_mean;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounded;
    QCheck_alcotest.to_alcotest qcheck_histogram_conserves;
  ]
