lib/machine/page_table.mli: Mem
