lib/workloads/membw.ml: Asm Instr Rcoe_isa Reg Wl
