(* Block-compiled execution backend.

   The interpreter ([Core.step]) re-decodes every instruction on every
   cycle: a 30-way match on the instruction, a 16-way match per register
   operand ([Reg.index]), an operand-kind match, a target-kind match.
   This module pays those costs once per code page instead: the first
   time execution enters a page, every instruction on it is compiled
   into a pre-decoded closure with register indices, immediates, branch
   targets and the ALU/condition function resolved at decode time, and
   the page's basic blocks are discovered and summarised (length and
   pre-summed minimum cycle charge per block). After that, a step is one
   indirect call through a flat closure array indexed by ip.

   The contract with the oracle is cycle identity, not mere semantic
   equivalence: [step] mirrors the [Core.step] shell line for line
   (halted / stall / breakpoint / bad-ip ordering, the bp_suppress
   re-arm, bus-wait accounting and its trace flush, and the jitter RNG
   draw on exactly the cycles the interpreter draws it), and every
   compiled closure either reproduces the corresponding [Core.exec] arm
   exactly or — for the rare stateful instructions (rep-strings,
   exclusives, kernel atomics) — simply calls [Core.exec] itself.
   Replicated execution, signatures, votes, breakpoints, checkpoints and
   traces therefore cannot tell the backends apart; test/
   test_exec_blocks.ml and the `bench exec` baseline rows enforce this
   bit for bit.

   Invalidation: the only mutable input of the compiler is the kernel's
   private code array. Translations, operand values and memory contents
   are read live at execution time, so data writes, dirty pages and
   page-table remaps need no hook; the cache is invalidated exactly when
   the code array changes — a code patch ([Kernel.patch_code]), a
   checkpoint restore that rewinds past one, or a re-integration adopt.
   Invalidation is page-granular ([invalidate_addr]) or whole-cache
   ([invalidate_all]). *)

open Rcoe_util

type backend = Interp | Blocks

let backend_to_string = function Interp -> "interp" | Blocks -> "blocks"

(* Code pages use the same 256-entry granularity as [Mem]'s dirty
   tracking: one shared notion of "page" keeps the invalidation story
   uniform across data and code even though code lives outside [Mem]. *)
let page_shift = Mem.page_shift
let page_size = Mem.page_size

type dop = unit -> Core.event option

type block = { b_first : int; b_len : int; b_min_cycles : int }

type stats = {
  mutable pages_decoded : int;
  mutable blocks_compiled : int;
  mutable ops_compiled : int;
  mutable invalidations : int;
}

type t = {
  bcore : Core.t;
  benv : Core.env;
  ops : dop array;
  page_ok : bool array;
  page_blocks : block list array;
  jitter_on : bool;
  jitter_p : float;
  jitter_cycles : int;
  hw_count : bool;
  st : stats;
}

let stats t = t.st
let blocks t = List.concat (Array.to_list t.page_blocks)

(* --- per-instruction compilation -------------------------------------- *)

let alu_fn (op : Rcoe_isa.Instr.alu) : int -> int -> int =
  let open Rcoe_isa.Instr in
  match op with
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Div ->
      fun a b ->
        if b = 0 then raise (Core.Take_fault Core.Division_by_zero) else a / b
  | Rem ->
      fun a b ->
        if b = 0 then raise (Core.Take_fault Core.Division_by_zero) else a mod b
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | Shl ->
      fun a b ->
        let s = b land 1023 in
        if s >= 63 then 0 else a lsl s
  | Shr ->
      fun a b ->
        let s = b land 1023 in
        if s >= 63 then 0 else a lsr s
  | Asr ->
      fun a b ->
        let s = b land 1023 in
        a asr min s 62

let cond_fn (c : Rcoe_isa.Instr.cond) : int -> int -> bool =
  let open Rcoe_isa.Instr in
  match c with
  | Eq -> ( = )
  | Ne -> ( <> )
  | Lt -> ( < )
  | Le -> ( <= )
  | Gt -> ( > )
  | Ge -> ( >= )

let fcond_fn (c : Rcoe_isa.Instr.cond) : float -> float -> bool =
  let open Rcoe_isa.Instr in
  match c with
  | Eq -> ( = )
  | Ne -> ( <> )
  | Lt -> ( < )
  | Le -> ( <= )
  | Gt -> ( > )
  | Ge -> ( >= )

let falu_fn (op : Rcoe_isa.Instr.falu) : float -> float -> float =
  let open Rcoe_isa.Instr in
  match op with Fadd -> ( +. ) | Fsub -> ( -. ) | Fmul -> ( *. ) | Fdiv -> ( /. )

let funop_fn (op : Rcoe_isa.Instr.funop) : float -> float =
  let open Rcoe_isa.Instr in
  match op with
  | Fmov -> fun a -> a
  | Fneg -> ( ~-. )
  | Fabs -> Float.abs
  | Fsqrt -> sqrt

(* Compile the instruction at [ip] into a closure that reproduces the
   matching [Core.exec] arm exactly. The closure is only ever invoked
   with [bcore.ip = ip], so per-instruction constants (the return
   address of a [Jal], the retire target ip+1) fold at decode time. *)
let compile1 bc ip (instr : Rcoe_isa.Instr.t) : dop =
  let c = bc.bcore and env = bc.benv in
  let regs = c.Core.regs and fregs = c.Core.fregs in
  let ridx = Rcoe_isa.Reg.index and fidx = Rcoe_isa.Reg.findex in
  let sp = ridx Rcoe_isa.Reg.sp
  and lr = ridx Rcoe_isa.Reg.lr
  and cnt = ridx Rcoe_isa.Reg.branch_counter in
  let next = ip + 1 in
  let retire () =
    c.Core.ip <- next;
    c.Core.instret <- c.Core.instret + 1;
    c.Core.last_was_cntinc <- false
  in
  let jump target =
    c.Core.ip <- target;
    c.Core.instret <- c.Core.instret + 1;
    c.Core.last_was_cntinc <- false
  in
  let hw = bc.hw_count in
  let branch () = if hw then c.Core.hw_branches <- c.Core.hw_branches + 1 in
  (* Stateful or label-carrying instructions defer to the oracle's own
     arm: identical by construction, and never on the hot path. *)
  let oracle () = Core.exec c env instr in
  let open Rcoe_isa.Instr in
  match instr with
  | Nop ->
      fun () ->
        retire ();
        None
  | Halt ->
      let ev = Some Core.Ev_halt in
      fun () -> ev
  | Mov (rd, Imm i) ->
      let d = ridx rd in
      fun () ->
        regs.(d) <- i;
        retire ();
        None
  | Mov (rd, Reg rs) ->
      let d = ridx rd and s = ridx rs in
      fun () ->
        regs.(d) <- regs.(s);
        retire ();
        None
  | La _ -> oracle
  | Alu (Add, rd, rs, Imm i) ->
      let d = ridx rd and s = ridx rs in
      fun () ->
        regs.(d) <- regs.(s) + i;
        retire ();
        None
  | Alu (Add, rd, rs, Reg ro) ->
      let d = ridx rd and s = ridx rs and o = ridx ro in
      fun () ->
        regs.(d) <- regs.(s) + regs.(o);
        retire ();
        None
  | Alu (op, rd, rs, Imm i) ->
      let f = alu_fn op and d = ridx rd and s = ridx rs in
      fun () ->
        regs.(d) <- f regs.(s) i;
        retire ();
        None
  | Alu (op, rd, rs, Reg ro) ->
      let f = alu_fn op and d = ridx rd and s = ridx rs and o = ridx ro in
      fun () ->
        regs.(d) <- f regs.(s) regs.(o);
        retire ();
        None
  | Not (rd, rs) ->
      let d = ridx rd and s = ridx rs in
      fun () ->
        regs.(d) <- lnot regs.(s);
        retire ();
        None
  | Ld (rd, rs, off) ->
      let d = ridx rd and s = ridx rs in
      fun () ->
        regs.(d) <- Core.load c env (regs.(s) + off);
        retire ();
        None
  | St (rbase, rs, off) ->
      let b = ridx rbase and s = ridx rs in
      fun () ->
        Core.store c env (regs.(b) + off) regs.(s);
        retire ();
        None
  | Push r ->
      let s = ridx r in
      fun () ->
        let nsp = regs.(sp) - 1 in
        Core.store c env nsp regs.(s);
        regs.(sp) <- nsp;
        retire ();
        None
  | Pop r ->
      let d = ridx r in
      fun () ->
        let v = Core.load c env regs.(sp) in
        regs.(d) <- v;
        regs.(sp) <- regs.(sp) + 1;
        retire ();
        None
  | B (cnd, r, o, Abs a) -> (
      let test = cond_fn cnd and s = ridx r in
      match o with
      | Imm i ->
          fun () ->
            branch ();
            if test regs.(s) i then jump a else retire ();
            None
      | Reg ro ->
          let oi = ridx ro in
          fun () ->
            branch ();
            if test regs.(s) regs.(oi) then jump a else retire ();
            None)
  | B (_, _, _, Lbl _) -> oracle
  | Jmp (Abs a) ->
      fun () ->
        branch ();
        jump a;
        None
  | Jmp (Lbl _) -> oracle
  | Jal (Abs a) ->
      fun () ->
        branch ();
        regs.(lr) <- next;
        jump a;
        None
  | Jal (Lbl _) -> oracle
  | Jr r ->
      let s = ridx r in
      fun () ->
        branch ();
        jump regs.(s);
        None
  | Ret ->
      fun () ->
        branch ();
        jump regs.(lr);
        None
  | Syscall n ->
      let ev = Some (Core.Ev_syscall n) in
      fun () ->
        retire ();
        ev
  | Rep_movs | Ldex _ | Stex _ | Atomic_add _ | Cas _ -> oracle
  | Cntinc ->
      fun () ->
        regs.(cnt) <- regs.(cnt) + 1;
        c.Core.ip <- next;
        c.Core.instret <- c.Core.instret + 1;
        c.Core.last_was_cntinc <- true;
        None
  | Falu (op, fd, fa, fb) ->
      let f = falu_fn op and d = fidx fd and a = fidx fa and b = fidx fb in
      fun () ->
        fregs.(d) <- f fregs.(a) fregs.(b);
        retire ();
        None
  | Funop (op, fd, fs) ->
      let f = funop_fn op and d = fidx fd and s = fidx fs in
      fun () ->
        fregs.(d) <- f fregs.(s);
        retire ();
        None
  | Fldi (fd, x) ->
      let d = fidx fd in
      fun () ->
        fregs.(d) <- x;
        retire ();
        None
  | Fld (fd, rs, off) ->
      let d = fidx fd and s = ridx rs in
      fun () ->
        let w = Core.load c env (regs.(s) + off) in
        fregs.(d) <- Rcoe_isa.Program.word_to_float w;
        retire ();
        None
  | Fst (fs, rbase, off) ->
      let s = fidx fs and b = ridx rbase in
      fun () ->
        Core.store c env
          (regs.(b) + off)
          (Rcoe_isa.Program.float_to_word fregs.(s));
        retire ();
        None
  | Fb (cnd, fa, fb, Abs a) ->
      let test = fcond_fn cnd and x = fidx fa and y = fidx fb in
      fun () ->
        branch ();
        if test fregs.(x) fregs.(y) then jump a else retire ();
        None
  | Fb (_, _, _, Lbl _) -> oracle
  | Itof (fd, rs) ->
      let d = fidx fd and s = ridx rs in
      fun () ->
        fregs.(d) <- float_of_int regs.(s);
        retire ();
        None
  | Ftoi (rd, fs) ->
      let d = ridx rd and s = fidx fs in
      fun () ->
        regs.(d) <- int_of_float fregs.(s);
        retire ();
        None

(* --- block discovery and page decode ----------------------------------- *)

let is_block_end (instr : Rcoe_isa.Instr.t) =
  let open Rcoe_isa.Instr in
  match instr with
  | B _ | Jmp _ | Jal _ | Jr _ | Ret | Fb _ | Syscall _ | Halt -> true
  | _ -> false

let min_cycles_of mem_extra (instr : Rcoe_isa.Instr.t) =
  let open Rcoe_isa.Instr in
  match instr with
  | Ld _ | St _ | Push _ | Pop _ | Fld _ | Fst _ | Ldex _ | Atomic_add _
  | Cas _ ->
      1 + mem_extra
  | _ -> 1

(* Decode every instruction on page [p] and summarise its basic blocks:
   a block runs from a leader to the next control transfer (or page
   edge), with its minimum cycle charge — one cycle per instruction
   plus the profile's guaranteed memory-stall cycles — pre-summed. *)
let decode_page bc p =
  let code = bc.benv.Core.code in
  let lo = p lsl page_shift in
  let hi = min (Array.length code) (lo + page_size) in
  let mem_extra = bc.benv.Core.profile.Arch.mem_extra_cycles in
  let blocks = ref [] in
  let b_first = ref lo and b_len = ref 0 and b_cycles = ref 0 in
  let close_block () =
    if !b_len > 0 then
      blocks :=
        { b_first = !b_first; b_len = !b_len; b_min_cycles = !b_cycles }
        :: !blocks
  in
  for ip = lo to hi - 1 do
    let instr = code.(ip) in
    bc.ops.(ip) <- compile1 bc ip instr;
    if !b_len = 0 then b_first := ip;
    incr b_len;
    b_cycles := !b_cycles + min_cycles_of mem_extra instr;
    if is_block_end instr then begin
      close_block ();
      b_len := 0;
      b_cycles := 0
    end
  done;
  close_block ();
  let bl = List.rev !blocks in
  bc.page_blocks.(p) <- bl;
  bc.page_ok.(p) <- true;
  bc.st.pages_decoded <- bc.st.pages_decoded + 1;
  bc.st.blocks_compiled <- bc.st.blocks_compiled + List.length bl;
  bc.st.ops_compiled <- bc.st.ops_compiled + (hi - lo)

(* --- construction and invalidation ------------------------------------- *)

let unreachable_dop : dop =
 fun () -> invalid_arg "Blockc: executed an undecoded slot"

let create core env =
  let len = Array.length env.Core.code in
  let npages = (len + page_size - 1) / page_size in
  {
    bcore = core;
    benv = env;
    ops = Array.make len unreachable_dop;
    page_ok = Array.make npages false;
    page_blocks = Array.make npages [];
    jitter_on = env.Core.profile.Arch.jitter_p > 0.0;
    jitter_p = env.Core.profile.Arch.jitter_p;
    jitter_cycles = env.Core.profile.Arch.jitter_cycles;
    hw_count = env.Core.profile.Arch.count_mode = Arch.Hardware;
    st =
      {
        pages_decoded = 0;
        blocks_compiled = 0;
        ops_compiled = 0;
        invalidations = 0;
      };
  }

let invalidate_addr t addr =
  if addr >= 0 && addr < Array.length t.ops then begin
    let p = addr lsr page_shift in
    if t.page_ok.(p) then begin
      t.page_ok.(p) <- false;
      t.page_blocks.(p) <- [];
      t.st.invalidations <- t.st.invalidations + 1
    end
  end

let invalidate_all t =
  Array.iteri
    (fun p ok ->
      if ok then begin
        t.page_ok.(p) <- false;
        t.page_blocks.(p) <- [];
        t.st.invalidations <- t.st.invalidations + 1
      end)
    t.page_ok

(* --- stepping ----------------------------------------------------------- *)

(* Batched stepping for the sequential engine's quiescent-burst fast
   path ([Sched.burst_cycles]). Runs up to [fuel] cycles in one tight
   loop, absorbing [Ran]/[Stalled] results internally and returning at
   the first event (or when the fuel runs out). Each iteration first
   refills every lane in [buses] — exactly the bus work [Machine.tick]
   performs on a device-free machine — so bus-credit state interleaves
   with memory accesses precisely as it would under per-cycle stepping;
   the caller adds the consumed cycle count to [Machine.now] afterwards.

   Preconditions (the caller's burst-eligibility check): the core is not
   halted, no breakpoint is armed ([bp = None], [bp_suppress] clear),
   tracing is disabled (trace stamps read [Machine.now], which this loop
   defers), and nothing outside the core — devices, IPIs, preemption
   ticks — can intervene within [fuel] cycles. Under those conditions
   the loop body below is [Core.step]'s shell with the loop-invariant
   branches hoisted out, and a burst of [n] cycles is bit-identical to
   [n] successive [Machine.tick] + [step] pairs. The [bus_wait > 0]
   guard before [Core.flush_bus_wait] only skips calls that would be
   no-ops ([flush_bus_wait] itself starts with the same test). *)
let run t ~buses ~fuel =
  let c = t.bcore and env = t.benv in
  let code_len = Array.length t.ops in
  let nbus = Array.length buses in
  let consumed = ref 0 in
  let ev = ref None in
  let running = ref true in
  while !running && !consumed < fuel do
    for i = 0 to nbus - 1 do
      Bus.tick (Array.unsafe_get buses i)
    done;
    incr consumed;
    if c.Core.stall > 0 then c.Core.stall <- c.Core.stall - 1
    else begin
      let ip = c.Core.ip in
      if ip < 0 || ip >= code_len then begin
        ev := Some (Core.Ev_fault (Core.Bad_ip ip));
        running := false
      end
      else begin
        let page = ip lsr page_shift in
        if not (Array.unsafe_get t.page_ok page) then decode_page t page;
        match (Array.unsafe_get t.ops ip) () with
        | exception Core.Take_fault f ->
            c.Core.bus_wait <- 0;
            ev := Some (Core.Ev_fault f);
            running := false
        | exception Core.Bus_busy -> c.Core.bus_wait <- c.Core.bus_wait + 1
        | Some e ->
            if c.Core.bus_wait > 0 then Core.flush_bus_wait c env;
            ev := Some e;
            running := false
        | None ->
            if c.Core.bus_wait > 0 then Core.flush_bus_wait c env;
            if t.jitter_on && Rng.float c.Core.jitter 1.0 < t.jitter_p then
              c.Core.stall <- c.Core.stall + t.jitter_cycles
      end
    end
  done;
  c.Core.cycles <- c.Core.cycles + !consumed;
  (!consumed, !ev)

(* Mirror of [Core.step], with the decode replaced by the closure
   dispatch. Any observable difference from the oracle here is a bug;
   compare side by side when touching either. *)
let step t =
  let c = t.bcore and env = t.benv in
  if c.Core.halted then Core.Event Core.Ev_halt
  else begin
    c.Core.cycles <- c.Core.cycles + 1;
    if c.Core.stall > 0 then begin
      c.Core.stall <- c.Core.stall - 1;
      Core.Stalled
    end
    else begin
      (match c.Core.bp with
      | Some bp when c.Core.bp_suppress && c.Core.ip <> bp ->
          c.Core.bp_suppress <- false
      | _ -> ());
      match c.Core.bp with
      | Some bp when bp = c.Core.ip && not c.Core.bp_suppress ->
          Rcoe_obs.Trace.bp_fire env.Core.trace ~rid:c.Core.id;
          Core.Event Core.Ev_breakpoint
      | _ ->
          let ip = c.Core.ip in
          if ip < 0 || ip >= Array.length t.ops then
            Core.Event (Core.Ev_fault (Core.Bad_ip ip))
          else begin
            let page = ip lsr page_shift in
            if not t.page_ok.(page) then decode_page t page;
            match t.ops.(ip) () with
            | exception Core.Take_fault f ->
                c.Core.bus_wait <- 0;
                Core.Event (Core.Ev_fault f)
            | exception Core.Bus_busy ->
                c.Core.bus_wait <- c.Core.bus_wait + 1;
                Core.Stalled
            | Some ev ->
                Core.flush_bus_wait c env;
                Core.Event ev
            | None ->
                Core.flush_bus_wait c env;
                if t.jitter_on && Rng.float c.Core.jitter 1.0 < t.jitter_p then
                  c.Core.stall <- c.Core.stall + t.jitter_cycles;
                Core.Ran
          end
    end
  end
