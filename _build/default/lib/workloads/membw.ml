open Rcoe_isa
open Reg

let default_buffer_words = 16 * 1024
let default_reps = 4

let words_copied ~buffer_words ~reps = buffer_words * reps

let program ?(buffer_words = default_buffer_words) ?(reps = default_reps)
    ~branch_count () =
  let a = Asm.create "membw" in
  Asm.space a "src" buffer_words;
  Asm.space a "dst" buffer_words;
  Asm.space a "stamp" 1;
  Asm.label a "main";
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm reps) (fun () ->
      Asm.la a R0 "dst";
      Asm.la a R1 "src";
      Asm.movi a R2 buffer_words;
      Asm.emit a Instr.Rep_movs);
  Asm.la a R5 "stamp";
  Asm.movi a R6 1;
  Asm.st a R5 R6 0;
  Wl.add_trace a ~label:"stamp" ~words:1;
  Wl.exit_thread a;
  Asm.assemble ~entry:"main" ~branch_count a
