lib/workloads/whetstone.ml: Asm Instr Rcoe_isa Reg Wl
