lib/rcoe/config.ml: Printf Rcoe_machine
