type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  mutable samples : float list;  (* newest first *)
  mutable n : int;
  hbuckets : float list option;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Hdr of Hdr.t

type t = { mutable instruments : (string * instrument) list (* newest first *) }

let create () = { instruments = [] }

let register t name ins =
  if List.mem_assoc name t.instruments then
    invalid_arg (Printf.sprintf "Metrics: duplicate instrument %S" name);
  t.instruments <- (name, ins) :: t.instruments

let counter t name =
  let c = { c = 0 } in
  register t name (Counter c);
  c

let gauge t name =
  let g = { g = 0.0 } in
  register t name (Gauge g);
  g

let histogram ?buckets t name =
  let h = { samples = []; n = 0; hbuckets = buckets } in
  register t name (Histogram h);
  h

let hdr t name =
  let h = Hdr.create () in
  register t name (Hdr h);
  h

let incr ?(by = 1) c = c.c <- c.c + by
let set g v = g.g <- v

let observe h v =
  h.samples <- v :: h.samples;
  h.n <- h.n + 1

let count c = c.c
let value g = g.g
let samples h = List.rev h.samples
let buckets h = h.hbuckets
let names t = List.rev_map fst t.instruments

let find t name =
  match List.assoc_opt name t.instruments with
  | Some ins -> Some ins
  | None -> None

let find_counter t name =
  match find t name with Some (Counter c) -> Some c | _ -> None

let find_histogram t name =
  match find t name with Some (Histogram h) -> Some h | _ -> None

let find_gauge t name =
  match find t name with Some (Gauge g) -> Some g | _ -> None

let find_hdr t name = match find t name with Some (Hdr h) -> Some h | _ -> None

let gauge_or t name = match find_gauge t name with Some g -> g | None -> gauge t name

let to_table t =
  let open Rcoe_util in
  let tbl =
    Table.create
      ~headers:[ "metric"; "kind"; "count"; "mean"; "p50"; "p95"; "max" ]
  in
  List.iter
    (fun (name, ins) ->
      match ins with
      | Counter c -> Table.add_row tbl [ name; "counter"; string_of_int c.c ]
      | Gauge g ->
          Table.add_row tbl [ name; "gauge"; Printf.sprintf "%.2f" g.g ]
      | Histogram h ->
          if h.n = 0 then Table.add_row tbl [ name; "histogram"; "0" ]
          else
            let xs = h.samples in
            let s = Stats.summarize xs in
            Table.add_row tbl
              [
                name;
                "histogram";
                string_of_int s.Stats.n;
                Printf.sprintf "%.1f" s.Stats.mean;
                Printf.sprintf "%.1f" (Stats.percentile 50.0 xs);
                Printf.sprintf "%.1f" (Stats.percentile 95.0 xs);
                Printf.sprintf "%.1f" s.Stats.max;
              ]
      | Hdr h ->
          if Hdr.count h = 0 then Table.add_row tbl [ name; "hdr"; "0" ]
          else
            Table.add_row tbl
              [
                name;
                "hdr";
                string_of_int (Hdr.count h);
                Printf.sprintf "%.1f" (Hdr.mean h);
                string_of_int (Hdr.percentile h 50.0);
                string_of_int (Hdr.percentile h 95.0);
                string_of_int (Hdr.max_value h);
              ])
    (List.rev t.instruments);
  tbl
