open Rcoe_core
open Rcoe_workloads
open Rcoe_util

let x86 = Rcoe_machine.Arch.X86
let arm = Rcoe_machine.Arch.Arm

let header = Report.header
let mean_cycles ~runs ~config ~program_for =
  let cycles = ref [] in
  for i = 1 to runs do
    let cfg = { config with Config.seed = config.Config.seed + (97 * i) } in
    let r = Runner.run_program ~config:cfg ~program:(program_for ()) () in
    (match r.Runner.halted with
    | Some h ->
        failwith
          (Printf.sprintf "experiment run halted unexpectedly: %s"
             (System.halt_reason_to_string h))
    | None -> ());
    cycles := float_of_int r.Runner.cycles :: !cycles
  done;
  Stats.summarize !cycles

(* ---------------------------------------------------------------- E1 -- *)

let e1_datarace ?(runs = 20) () =
  header "E1 (Section V-A1): tolerating data races"
    "LC replicas' racy counters diverge with high probability; CC never \
     diverges in any run";
  let tbl =
    Table.create ~headers:[ "mode"; "runs"; "diverged"; "agreed" ]
  in
  let run_mode mode =
    let diverged = ref 0 in
    for seed = 1 to runs do
      let cfg =
        Runner.config_for ~mode ~nreplicas:2 ~arch:x86 ~seed
          ~tick_interval:1_500 ()
      in
      let program =
        Datarace.program ~threads:8 ~iters:150 ~locked:false
          ~branch_count:false ()
      in
      let r = Runner.run_program ~config:cfg ~program () in
      let div =
        match r.Runner.halted with
        | Some _ -> true
        | None ->
            let counter rid =
              Rcoe_kernel.Kernel.read_user
                (System.kernel r.Runner.sys rid)
                ~va:(Rcoe_isa.Program.data_addr program Datarace.counter_label)
            in
            counter 0 <> counter 1
      in
      if div then incr diverged
    done;
    !diverged
  in
  let lc = run_mode Config.LC in
  let cc = run_mode Config.CC in
  Table.add_row tbl
    [ "LC-D"; string_of_int runs; string_of_int lc; string_of_int (runs - lc) ];
  Table.add_row tbl
    [ "CC-D"; string_of_int runs; string_of_int cc; string_of_int (runs - cc) ];
  Table.print tbl;
  Printf.printf "(CC diverged %d times; the paper observed 0 in 1000 runs)\n%!" cc

(* ------------------------------------------------------------ Table II -- *)

let bench_programs ~arch =
  let branch_count = Wl.branch_count_for arch in
  [
    ("Dhrystone", fun () -> Dhrystone.program ~loops:2_000 ~branch_count ());
    ("Whetstone", fun () -> Whetstone.program ~loops:100 ~branch_count ());
  ]

let table2 ?(runs = 3) () =
  header "Table II: native Dhrystone and Whetstone execution times"
    "LC negligible overhead; CC ~3-5% on Dhrystone (one long loop) but \
     ~20-40% on Whetstone (tight loops); Arm CC worst (compiler-assisted \
     counting, double debug exceptions)";
  List.iter
    (fun arch ->
      let tbl =
        Table.create
          ~headers:[ "config"; "Dhrystone kcyc"; "fact"; "Whetstone kcyc"; "fact" ]
      in
      let base = Hashtbl.create 4 in
      List.iter
        (fun (cfg_name, config) ->
          let cells =
            List.concat_map
              (fun (bench, program_for) ->
                let s = mean_cycles ~runs ~config ~program_for in
                if cfg_name = "Base" then Hashtbl.replace base bench s.Stats.mean;
                let b = Hashtbl.find base bench in
                [
                  Stats.format_paper ~decimals:0
                    {
                      s with
                      Stats.mean = s.Stats.mean /. 1000.0;
                      stddev = s.Stats.stddev /. 1000.0;
                    };
                  Printf.sprintf "%.3f" (s.Stats.mean /. b);
                ])
              (bench_programs ~arch)
          in
          Table.add_row tbl (cfg_name :: cells))
        (Runner.standard_configs ~arch);
      Printf.printf "\n-- %s --\n" (Rcoe_machine.Arch.to_string arch);
      Table.print tbl)
    [ x86; arm ]

(* ----------------------------------------------------------- Table III -- *)

let table3 ?(runs = 3) () =
  header "Table III: virtualised Dhrystone/Whetstone under CC-RCoE (x86)"
    "VM exits forced by CC breakpoints dominate: Dhrystone ~1.5x, \
     Whetstone ~2-3x over the virtualised baseline";
  let tbl =
    Table.create
      ~headers:[ "config"; "Dhrystone kcyc"; "fact"; "Whetstone kcyc"; "fact" ]
  in
  let base = Hashtbl.create 4 in
  let configs =
    [
      ("Base (VM)", Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 ~vm:true ());
      ("CC-D (VM)", Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~vm:true ());
    ]
  in
  List.iter
    (fun (cfg_name, config) ->
      let cells =
        List.concat_map
          (fun (bench, program_for) ->
            let s = mean_cycles ~runs ~config ~program_for in
            if String.length cfg_name >= 4 && String.sub cfg_name 0 4 = "Base" then
              Hashtbl.replace base bench s.Stats.mean;
            let b = Hashtbl.find base bench in
            [
              Printf.sprintf "%.0f" (s.Stats.mean /. 1000.0);
              Printf.sprintf "%.2f" (s.Stats.mean /. b);
            ])
          (bench_programs ~arch:x86)
      in
      Table.add_row tbl (cfg_name :: cells))
    configs;
  Table.print tbl

(* ------------------------------------------------------------ Table IV -- *)

let paper_table4 =
  [
    ("barnes", 1.52); ("cholesky", 12.08); ("fft", 2.22); ("fmm", 2.11);
    ("lu-c", 6.83); ("lu-nc", 6.12); ("ocean-c", 2.71); ("ocean-nc", 2.65);
    ("radiosity", 1.12); ("radix", 1.34); ("raytrace", 1.09);
    ("volrend", 1.54); ("water-ns", 1.41); ("water-s", 1.25);
  ]

(* Kernel sizes chosen so every base run spans many preemption ticks
   (the paper's runs last seconds; ours must last >= several hundred
   thousand cycles for the sync costs to be in steady state). *)
let table4_scales =
  [
    ("barnes", 7); ("cholesky", 8); ("fft", 3); ("fmm", 14); ("lu-c", 5);
    ("lu-nc", 5); ("ocean-c", 4); ("ocean-nc", 4); ("radiosity", 3);
    ("radix", 10); ("raytrace", 6); ("volrend", 8); ("water-ns", 9);
    ("water-s", 9);
  ]

let table4 ?(runs = 2) () =
  header "Table IV: SPLASH-2 kernels in a VM under CC-D (x86)"
    "overheads spread 1.1x-12x by loop tightness (CHOLESKY/LU worst, \
     RAYTRACE/RADIOSITY best); geometric mean ~2.3";
  let tbl =
    Table.create ~headers:[ "kernel"; "base kcyc"; "CC-D kcyc"; "fact"; "paper" ]
  in
  let base_cfg = Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 ~vm:true () in
  let cc_cfg = Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~vm:true () in
  let facts = ref [] in
  List.iter
    (fun name ->
      let scale = List.assoc name table4_scales in
      let program_for () = Splash.program name ~scale ~branch_count:false () in
      let b = mean_cycles ~runs ~config:base_cfg ~program_for in
      let c = mean_cycles ~runs ~config:cc_cfg ~program_for in
      let fact = c.Stats.mean /. b.Stats.mean in
      facts := fact :: !facts;
      let paper = List.assoc name paper_table4 in
      Table.add_row tbl
        [
          name;
          Printf.sprintf "%.0f" (b.Stats.mean /. 1000.0);
          Printf.sprintf "%.0f" (c.Stats.mean /. 1000.0);
          Printf.sprintf "%.2f" fact;
          Printf.sprintf "%.2f" paper;
        ])
    Splash.names;
  Table.add_separator tbl;
  Table.add_row tbl
    [
      "geometric mean"; ""; "";
      Printf.sprintf "%.2f" (Stats.geomean !facts);
      "2.30";
    ];
  Table.print tbl;
  (* The paper runs NPROC=2 (two threads); the kernels that partition by
     index have a two-worker variant here. *)
  Printf.printf "\nNPROC=2 subset (spawn/join two workers inside the VM):\n";
  let tbl2 = Table.create ~headers:[ "kernel"; "np1 fact"; "np2 fact" ] in
  List.iter
    (fun name ->
      let scale = List.assoc name table4_scales in
      let fact nproc =
        let program_for () =
          Splash.program name ~scale ~nproc ~branch_count:false ()
        in
        let b = mean_cycles ~runs ~config:base_cfg ~program_for in
        let c = mean_cycles ~runs ~config:cc_cfg ~program_for in
        c.Stats.mean /. b.Stats.mean
      in
      Table.add_row tbl2
        [ name; Printf.sprintf "%.2f" (fact 1); Printf.sprintf "%.2f" (fact 2) ])
    Splash.mt_kernels;
  Table.print tbl2;
  Printf.printf
    "(paper: NPROC=2 geomean 2.30 vs NPROC=1 mean 2.02)\n%!"

(* ------------------------------------------------------------- Table V -- *)

let table5 ?(runs = 3) () =
  header "Table V: memory bandwidth under replication"
    "x86: one core saturates the bus, so DMR ~50% and TMR ~33% of \
     baseline copy throughput; Arm has headroom, so the loss is milder";
  List.iter
    (fun arch ->
      let branch_count = Wl.branch_count_for arch in
      let buffer_words = 16 * 1024 and reps = 3 in
      let program_for () =
        Membw.program ~buffer_words ~reps ~branch_count ()
      in
      let tbl = Table.create ~headers:[ "config"; "kcycles"; "rel. throughput" ] in
      let base = ref 0.0 in
      List.iter
        (fun (cfg_name, config) ->
          let s = mean_cycles ~runs ~config ~program_for in
          if cfg_name = "Base" then base := s.Stats.mean;
          Table.add_row tbl
            [
              cfg_name;
              Printf.sprintf "%.0f" (s.Stats.mean /. 1000.0);
              Printf.sprintf "%.2f" (!base /. s.Stats.mean);
            ])
        (Runner.standard_configs ~arch);
      Printf.printf "\n-- %s --\n" (Rcoe_machine.Arch.to_string arch);
      Table.print tbl)
    [ x86; arm ]

(* --------------------------------------------------------------- Fig 3 -- *)

let fig3 ?(workloads = [ "A"; "B"; "C"; "E" ]) ?(records = 150)
    ?(ops_factor = 8) () =
  header "Fig 3: KV-server (Redis) YCSB throughput, sync levels N/A/S"
    "LC-D loses 20-38%, TMR ~15% more; N vs A negligible, S costs more; \
     CC markedly worse (device access via kernel)";
  let levels =
    [ ("N", Config.Sync_none); ("A", Config.Sync_args); ("S", Config.Sync_vote) ]
  in
  List.iter
    (fun arch ->
      Printf.printf "\n-- %s (records=%d, ops=%dx) --\n"
        (Rcoe_machine.Arch.to_string arch) records ops_factor;
      let tbl =
        Table.create
          ~headers:("workload" :: "config" :: List.map fst levels)
      in
      let operations wl =
        if wl = "E" then records else records * ops_factor
      in
      List.iter
        (fun wl ->
          let workload = Ycsb.workload_of_string wl in
          List.iter
            (fun (cfg_name, mk) ->
              let cells =
                List.map
                  (fun (_, level) ->
                    let config = mk level in
                    let res =
                      Kv_run.run ~config ~workload ~records
                        ~operations:(operations wl) ()
                    in
                    match System.halted res.Kv_run.sys with
                    | Some _ -> "halt"
                    | None -> Printf.sprintf "%.1f" res.Kv_run.kops_per_sec)
                  levels
              in
              Table.add_row tbl (wl :: cfg_name :: cells))
            [
              ("Base",
               fun level ->
                 Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch
                   ~sync_level:level ~with_net:true ());
              ("LC-D",
               fun level ->
                 Runner.config_for ~mode:Config.LC ~nreplicas:2 ~arch
                   ~sync_level:level ~with_net:true ());
              ("LC-T",
               fun level ->
                 Runner.config_for ~mode:Config.LC ~nreplicas:3 ~arch
                   ~sync_level:level ~with_net:true ());
              ("CC-D",
               fun level ->
                 Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch
                   ~sync_level:level ~with_net:true ());
              ("CC-T",
               fun level ->
                 Runner.config_for ~mode:Config.CC ~nreplicas:3 ~arch
                   ~sync_level:level ~with_net:true ());
            ];
          Table.add_separator tbl)
        workloads;
      Table.print tbl)
    [ x86; arm ]

(* ------------------------------------------------------------- Table X -- *)

let table10 ?(runs = 3) () =
  header "Table X: time (microseconds) for error recovery (TMR -> DMR)"
    "removing the primary is ~2 orders of magnitude dearer than another \
     replica; CC primary > LC primary; CC masking unsupported on Arm";
  let tbl =
    Table.create ~headers:[ "arch"; "mode"; "faulty"; "us (mean)"; "paper us" ]
  in
  let paper = function
    | "x86", Config.LC, `Primary -> "532"
    | "x86", Config.LC, `Other -> "8"
    | "x86", Config.CC, `Primary -> "2869"
    | "x86", Config.CC, `Other -> "3"
    | "Arm", Config.LC, `Primary -> "2621"
    | "Arm", Config.LC, `Other -> "21"
    | _ -> "N/A"
  in
  let measure arch mode target =
    let samples = ref [] in
    for i = 1 to runs do
      let config =
        {
          (Runner.config_for ~mode ~nreplicas:3 ~arch ~seed:(i * 13)
             ~with_net:true ())
          with
          Config.masking = true;
        }
      in
      let branch_count = Wl.branch_count_for arch in
      let program = Kvstore.program ~max_records:256 ~branch_count () in
      let sys = System.create ~config ~program in
      (* Warm up past a few ticks, then corrupt the target replica's
         signature accumulator so the next vote convicts it. *)
      System.run sys ~max_cycles:200_000;
      let rid = match target with `Primary -> 0 | `Other -> 2 in
      Rcoe_machine.Mem.flip_bit
        (System.machine sys).Rcoe_machine.Machine.mem
        ~addr:(System.sig_base sys rid + 1)
        ~bit:4;
      System.run sys ~max_cycles:2_000_000
        ~stop:(fun s -> System.downgrades s <> []);
      match System.downgrades sys with
      | (_, faulty, cost) :: _ when faulty = rid ->
          let profile = Rcoe_machine.Arch.profile_of arch in
          samples := Rcoe_machine.Arch.cycles_to_us profile cost :: !samples
      | _ -> ()
    done;
    !samples
  in
  List.iter
    (fun (arch, arch_name) ->
      List.iter
        (fun mode ->
          if not (mode = Config.CC && arch = arm) then
            List.iter
              (fun (target, tname) ->
                let samples = measure arch mode target in
                let cell =
                  match samples with
                  | [] -> "no downgrade!"
                  | s -> Printf.sprintf "%.0f" (Stats.mean s)
                in
                Table.add_row tbl
                  [
                    arch_name;
                    Config.mode_to_string mode;
                    tname;
                    cell;
                    paper (arch_name, mode, target);
                  ])
              [ (`Primary, "primary"); (`Other, "other") ]
          else
            Table.add_row tbl
              [ arch_name; Config.mode_to_string mode; "-"; "N/A"; "N/A" ])
        [ Config.LC; Config.CC ])
    [ (x86, "x86"); (arm, "Arm") ];
  Table.print tbl

(* --------------------------------------------------------------- Fig 4 -- *)

let spin_for_reint () =
  let a = Rcoe_isa.Asm.create "spin" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.for_up a Rcoe_isa.Reg.R4 ~start:0
    ~stop:(Rcoe_isa.Instr.Imm 2_000_000) (fun () -> Rcoe_isa.Asm.nop a);
  Rcoe_isa.Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  Rcoe_isa.Asm.assemble ~entry:"main" a

let fig4 () =
  header "Fig 4: KV throughput with error masking (TMR downgrades to DMR)"
    "a fault in one replica mid-run is masked; service continues at the \
     DMR level instead of halting";
  let config =
    {
      (Runner.config_for ~mode:Config.LC ~nreplicas:3 ~arch:x86 ~with_net:true ())
      with
      Config.masking = true;
    }
  in
  let records = 120 and operations = 2_400 in
  let injected = ref false in
  let windows = ref [] in
  let last_mark = ref (0, 0) in
  let inject sys =
    let c_done = (System.stats sys).System.rounds in
    ignore c_done;
    if (not !injected) && System.tick_count sys > 40 then begin
      injected := true;
      (* Corrupt a non-primary replica's signature accumulator. *)
      Rcoe_machine.Mem.flip_bit
        (System.machine sys).Rcoe_machine.Machine.mem
        ~addr:(System.sig_base sys 2 + 1)
        ~bit:7
    end
  in
  (* Sample throughput in windows by wrapping the ycsb counters through
     periodic probes: Kv_run does not expose mid-run samples, so we use
     its inject hook to record (cycle, completed-so-far through tx count)
     indirectly via netdev drains — instead we simply record downgrade
     events and overall before/after throughput. *)
  let res =
    Kv_run.run ~config ~workload:Ycsb.A ~records ~operations ~inject
      ~window:4 ()
  in
  ignore !windows;
  ignore !last_mark;
  let sys = res.Kv_run.sys in
  Printf.printf "completed %d ops at %.1f kops/s overall\n"
    res.Kv_run.ops_completed res.Kv_run.kops_per_sec;
  (match System.downgrades sys with
  | [] -> Printf.printf "NO downgrade happened (unexpected)\n"
  | (cycle, faulty, cost) :: _ ->
      Printf.printf
        "downgrade at cycle %d: replica %d removed (%.0f us); system \
         continued serving and finished %s\n"
        cycle faulty
        (Rcoe_machine.Arch.cycles_to_us (Rcoe_machine.Arch.profile_of x86) cost)
        (match System.halted sys with
        | None -> "cleanly"
        | Some h -> "with halt: " ^ System.halt_reason_to_string h));
  Printf.printf "live replicas at end: %s\n"
    (String.concat "," (List.map string_of_int (System.live sys)));
  (* Section IV-C extension: re-admit the repaired replica — DMR back to
     TMR without a reboot. *)
  let sys2 =
    let program = spin_for_reint () in
    let config =
      {
        (Runner.config_for ~mode:Config.LC ~nreplicas:3 ~arch:x86 ())
        with
        Config.masking = true;
        tick_interval = 5_000;
      }
    in
    System.create ~config ~program
  in
  System.run sys2 ~max_cycles:20_000;
  Rcoe_machine.Mem.flip_bit
    (System.machine sys2).Rcoe_machine.Machine.mem
    ~addr:(System.sig_base sys2 2 + 1) ~bit:6;
  System.run sys2 ~max_cycles:500_000 ~stop:(fun s -> System.downgrades s <> []);
  ignore (System.request_reintegration sys2 ~rid:2);
  System.run sys2 ~max_cycles:500_000
    ~stop:(fun s -> System.reintegrations s <> []);
  Printf.printf
    "re-integration (Section IV-C extension): replica 2 re-admitted at \
     cycle %d; live replicas now %s — TMR restored without a reboot\n%!"
    (match System.reintegrations sys2 with (c, _) :: _ -> c | [] -> -1)
    (String.concat "," (List.map string_of_int (System.live sys2)))

let ablation_fast_catchup ?(runs = 3) () =
  header "Ablation: PMU-assisted fast catch-up (paper Section VI proposal)"
    "replacing per-pass debug exceptions with one PMU overflow interrupt \
     for large branch deficits cuts CC-RCoE's tight-loop overhead";
  let tbl =
    Table.create
      ~headers:[ "config"; "catch-up"; "kcycles"; "fact"; "bp fires" ]
  in
  let whet () = Whetstone.program ~loops:100 ~branch_count:false () in
  let base_cfg = Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 () in
  let base = mean_cycles ~runs ~config:base_cfg ~program_for:whet in
  List.iter
    (fun (label, fast) ->
      let fires = ref 0 in
      let cycles = ref [] in
      for i = 1 to runs do
        let config =
          {
            (Runner.config_for ~mode:Config.CC ~nreplicas:3 ~arch:x86
               ~seed:(1 + (97 * i)) ())
            with
            Config.fast_catchup = fast;
          }
        in
        let r = Runner.run_program ~config ~program:(whet ()) () in
        fires := !fires + r.Runner.stats.System.bp_fires;
        cycles := float_of_int r.Runner.cycles :: !cycles
      done;
      let s = Stats.summarize !cycles in
      Table.add_row tbl
        [
          "CC-T whetstone"; label;
          Printf.sprintf "%.0f" (s.Stats.mean /. 1000.0);
          Printf.sprintf "%.3f" (s.Stats.mean /. base.Stats.mean);
          string_of_int (!fires / runs);
        ])
    [ ("breakpoints only", false); ("PMU-assisted", true) ];
  Table.print tbl

let all ~quick =
  let runs = if quick then 2 else 5 in
  e1_datarace ~runs:(if quick then 10 else 30) ();
  table2 ~runs ();
  table3 ~runs ();
  table4 ~runs:(if quick then 1 else 3) ();
  table5 ~runs ();
  fig3
    ~workloads:(if quick then [ "A"; "E" ] else [ "A"; "B"; "C"; "D"; "E" ])
    ();
  table10 ~runs ();
  fig4 ();
  ablation_fast_catchup ~runs ()
