(** The three-word state signature (paper Section III-C).

    Each replica reduces its critical state history — kernel data
    structure updates, system-call parameters (at sync level A/S), and
    driver-contributed data ([FT_Add_Trace]) — to a signature of three
    words: the deterministic-event count plus a running, order-sensitive
    Fletcher checksum pair.

    The accumulator lives *in simulated memory*, at the replica's
    [sig_base] (event count, c0, c1), so that the fault-injection
    campaigns can corrupt it; a corrupted accumulator produces a
    signature mismatch at the next vote — a controlled detection, as the
    paper observes for faults in the framework region. *)

val words : int
(** Footprint: 3 words. *)

val reset : Rcoe_machine.Mem.t -> base:int -> unit

val bump_event : Rcoe_machine.Mem.t -> base:int -> unit
(** Increment the deterministic-event count. *)

val event_count : Rcoe_machine.Mem.t -> base:int -> int

val add_word : Rcoe_machine.Mem.t -> base:int -> int -> unit
(** Fold one word into the running Fletcher pair (same recurrence as
    {!Rcoe_checksum.Fletcher}: c0 += w, c1 += c0, both mod 2^32-1). *)

val add_words : Rcoe_machine.Mem.t -> base:int -> int array -> unit

val read : Rcoe_machine.Mem.t -> base:int -> int * int * int
(** [(event_count, c0, c1)]. *)

val equal3 : int * int * int -> int * int * int -> bool
