lib/machine/page_table.ml: Mem Printf
