open Rcoe_core
open Rcoe_workloads
module Netdev = Rcoe_machine.Netdev
module Reqtrace = Rcoe_obs.Reqtrace
module Trace = Rcoe_obs.Trace
module Hdr = Rcoe_obs.Hdr
module Json = Rcoe_obs.Json

type pacing =
  | Closed of { window : int }
  | Open of { interval : int; max_queue : int }

type fault_target = Sig_word | Dma_frame

type fault_spec = {
  fault_after : int;
  fault_bit : int;
  fault_target : fault_target;
}

type outcome = { o_seq : int; o_op : int; o_status : int }

(* Client-side reliability over the DMA hole. A rollback rewinds the
   replicas but not the host-side NIC rings (they sit outside the
   sphere of replication, the paper's Table VII residual): a request
   consumed after the restored checkpoint is simply gone, and a
   response transmitted after it is doorbelled twice on replay. A
   production client sees exactly this from a recovering server, and
   answers it the same way we do: retransmit requests that outlive
   [retry_after] cycles (server ops are idempotent — a PUT rewrites the
   same versioned value), and drop responses whose sequence id already
   completed. Both decisions are functions of simulated state at chunk
   boundaries, so fault runs stay bit-for-bit identical across
   engines. *)

type result = {
  issued : int;
  completed : int;
  run_ops : int;
  elapsed_cycles : int;
  kops_per_sec : float;
  outcome_log : outcome list;
  outcome_digest : int;
  end_sigs : (int * int * int) array;
  rt : Reqtrace.t;
  counters : Ycsb.counters;
  stalled : bool;
  rollbacks : int;
  retransmits : int;
  dup_responses : int;
  ingress_checked : int;
  ingress_dropped : int;
  redelivered : int;
  outcome_sorted_digest : int;
  fault_fired : bool;
  sys : System.t;
}

(* The server's node arena must hold every key that can exist: the
   load-phase records plus an insert per operation — but only D and E
   ever insert. Sizing the arena by workload is what lets a 100k+
   request A/B/C/F run fit the fixed per-replica memory partition. *)
let program_for ~config ~workload ~records ~requests =
  let inserts =
    match workload with Ycsb.D | Ycsb.E -> requests | _ -> 0
  in
  let branch_count = Wl.branch_count_for config.Config.arch in
  Kvstore.program
    ~max_records:(records + inserts + 64)
    ~net_dpn:0 ~branch_count ()

let digest_outcomes (log : outcome list) =
  let n = List.length log in
  let words = Array.make (3 * n) 0 in
  List.iteri
    (fun i o ->
      words.(3 * i) <- o.o_seq;
      words.((3 * i) + 1) <- o.o_op;
      words.((3 * i) + 2) <- o.o_status)
    log;
  Rcoe_checksum.Crc32.words words

let run ~config ~workload ~records ~requests ?(pacing = Closed { window = 8 })
    ?(gen_seed = 11) ?(chunk = 400) ?(stall_limit = 3_000_000)
    ?(max_cycles = 600_000_000) ?(retry_after = 250_000) ?fault ?keep () =
  let config =
    {
      config with
      Config.with_net = true;
      trace =
        (match config.Config.trace with
        | Some _ as tc -> tc
        | None -> Some { Trace.capacity = 65536 });
    }
  in
  let program = program_for ~config ~workload ~records ~requests in
  let sys = System.create ~config ~program in
  let net =
    match System.netdev sys with
    | Some n -> n
    | None -> invalid_arg "Loadgen.run: no network device"
  in
  let mem = (System.machine sys).Rcoe_machine.Machine.mem in
  let rt = Reqtrace.create ?keep () in
  (* Tap the NIC rings: request packets stamp rx/consume, response
     packets stamp tx. Observers never perturb the simulation. *)
  let req_id p =
    if Array.length p >= 3 && p.(0) = Kvstore.req_magic then Some p.(1) else None
  in
  let resp_id p =
    if Array.length p >= 3 && p.(0) = Kvstore.resp_magic then Some p.(1)
    else None
  in
  Netdev.set_observers net
    ~on_rx:(fun ~now p ->
      match req_id p with Some id -> Reqtrace.rx rt ~id ~now | None -> ())
    ~on_consume:(fun ~now p ->
      match req_id p with Some id -> Reqtrace.consume rt ~id ~now | None -> ())
    ~on_tx:(fun ~now p ->
      match resp_id p with Some id -> Reqtrace.tx rt ~id ~now | None -> ())
    ();
  let gen = Ycsb.create { Ycsb.records; operations = requests; seed = gen_seed } workload in
  let start = System.now sys in
  let run_start = ref None in
  let run_completed = ref 0 in
  let last_progress = ref start in
  let stalled = ref false in
  let fault_fired = ref false in
  let outcomes = ref [] in
  (* Retransmission state: in-flight packets by seq, completed-seq set
     for duplicate filtering. Both are bounded by the pacing window. *)
  let pending_reqs : (int, int array * int ref * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Completed-seq bitset (ids are dense; F issues two per op). *)
  let max_seqs = records + (2 * requests) + 64 in
  let done_bits = Bytes.make ((max_seqs / 8) + 1) '\000' in
  let seq_done seq =
    seq >= 0 && seq < max_seqs
    && Char.code (Bytes.get done_bits (seq lsr 3)) land (1 lsl (seq land 7)) <> 0
  in
  let mark_done seq =
    if seq >= 0 && seq < max_seqs then
      Bytes.set done_bits (seq lsr 3)
        (Char.chr
           (Char.code (Bytes.get done_bits (seq lsr 3)) lor (1 lsl (seq land 7))))
  in
  let retransmits = ref 0 in
  let dup_responses = ref 0 in
  (* Sequence ids that were ever retransmitted: a receipt for one of
     them is a re-delivery — the drop-and-redeliver lane completing. *)
  let retried : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let redelivered = ref 0 in
  (* Open-loop arrival clock: armed when the run phase starts. *)
  let next_arrival = ref max_int in
  let inject_req req ~at =
    Netdev.inject net ~now:at req;
    Hashtbl.replace pending_reqs req.(1) (req, ref at, ref retry_after);
    Reqtrace.inject rt ~id:req.(1) ~now:at
  in
  (* Exponential backoff: under overload a request can sit queued far
     longer than [retry_after] without being lost; doubling the timeout
     per retry keeps a slow server from drowning in duplicates. *)
  let retransmit_overdue () =
    let now = System.now sys in
    Hashtbl.iter
      (fun seq (req, last_sent, timeout) ->
        if now - !last_sent > !timeout then begin
          Netdev.inject net ~now req;
          last_sent := now;
          timeout := 2 * !timeout;
          incr retransmits;
          Hashtbl.replace retried seq ()
        end)
      pending_reqs
  in
  let top_up () =
    let now = System.now sys in
    let load_running = not (Ycsb.load_phase_done gen) in
    if load_running then begin
      (* Load phase: always closed-loop, window 8. *)
      let continue = ref true in
      while !continue && Ycsb.outstanding gen < 8 && not (Ycsb.load_phase_done gen) do
        match Ycsb.next_request gen with
        | Some req -> inject_req req ~at:now
        | None -> continue := false
      done
    end
    else if !run_start <> None then
      match pacing with
      | Closed { window } ->
          let continue = ref true in
          while !continue && Ycsb.outstanding gen < window do
            match Ycsb.next_request gen with
            | Some req -> inject_req req ~at:now
            | None -> continue := false
          done
      | Open { interval; max_queue } ->
          (* Schedule fixed-rate arrivals up to one chunk ahead; the
             device clock delivers each at its exact arrival cycle.
             The arrival clock never resyncs to [now]: when the
             generator falls behind (max_queue bound, stalled chunk)
             the backlog drains as an immediate burst at the configured
             rate's schedule, so the queueing delay appears in the
             latency histograms instead of being coordinated away. *)
          let continue = ref true in
          while
            !continue && !next_arrival <= now + chunk
            && Ycsb.outstanding gen < max_queue
          do
            match Ycsb.next_request gen with
            | Some req ->
                inject_req req ~at:(max now !next_arrival);
                next_arrival := !next_arrival + interval
            | None -> continue := false
          done
  in
  let stop = ref false in
  while
    (not !stop)
    && (not (Ycsb.finished gen))
    && System.halted sys = None
    && (not !stalled)
    && (not (System.finished sys))
    && System.now sys - start < max_cycles
  do
    top_up ();
    let before = (Ycsb.counters gen).Ycsb.completed in
    System.run sys ~max_cycles:chunk;
    Reqtrace.absorb rt (System.trace sys);
    let now = System.now sys in
    List.iter
      (fun (_, payload) ->
        match resp_id payload with
        | Some seq when seq_done seq ->
            (* Replayed doorbell after a rollback: already answered. *)
            incr dup_responses
        | Some seq ->
            let status = payload.(2) in
            let op =
              match Ycsb.pending gen ~seq with Some (op, _) -> op | None -> -1
            in
            outcomes := { o_seq = seq; o_op = op; o_status = status } :: !outcomes;
            mark_done seq;
            if Hashtbl.mem retried seq then incr redelivered;
            Hashtbl.remove pending_reqs seq;
            Reqtrace.receipt rt ~id:seq ~now ~status;
            if !run_start <> None then incr run_completed;
            Ycsb.on_response gen payload
        | None -> Ycsb.on_response gen payload)
      (Netdev.take_tx net);
    retransmit_overdue ();
    let c = Ycsb.counters gen in
    if c.Ycsb.completed > before then last_progress := now;
    if !run_start = None && Ycsb.load_phase_done gen && Ycsb.outstanding gen = 0
    then begin
      run_start := Some now;
      next_arrival := now;
      last_progress := now
    end;
    (* Fault campaign: one transient flip at a chunk boundary once
       [fault_after] run-phase completions have drained. Trigger and
       target are simulated-state functions, so the flip lands on the
       same cycle under either engine.

       [Sig_word] flips replica 1's published signature word — inside
       the sphere of replication, where voting detects it and rollback
       repairs it. [Dma_frame] flips a bit in a PUT request sitting in
       the RX ring — after the NIC checksummed it at enqueue, before
       the guest consumed it. That is the paper's Table VII residual:
       no checkpoint covers the ring, so rollback cannot repair it;
       only the ingress-checksum path (drop + client retransmission)
       can. *)
    (match fault with
    | Some { fault_after; fault_bit; fault_target }
      when (not !fault_fired) && !run_start <> None
           && !run_completed >= fault_after -> (
        match fault_target with
        | Sig_word ->
            (* Replica 1 under replication; the lone primary (rid 0)
               when unreplicated — the replay-detection campaign. *)
            let rid = if config.Config.nreplicas > 1 then 1 else 0 in
            let addr = System.sig_base sys rid + 1 in
            let bit = fault_bit mod 30 in
            Rcoe_machine.Mem.flip_bit mem ~addr ~bit;
            Trace.injection (System.trace sys) ~addr ~bit;
            fault_fired := true
        | Dma_frame -> (
            (* Fires at the first chunk boundary where the ring's head
               frame is an unconsumed PUT: flipping a value word breaks
               the client's embedded CRC, so without ingress checking
               the corruption is silent until a later GET trips the
               client-side check. *)
            match Netdev.head_rx net with
            | Some (off, len) when len >= 5 ->
                let base, _ = Netdev.rx_region_bounds net in
                if Rcoe_machine.Mem.read mem (base + off + 2) = Kvstore.op_put
                then begin
                  let addr = base + off + 4 in
                  let bit = fault_bit mod 30 in
                  Rcoe_machine.Mem.flip_bit mem ~addr ~bit;
                  Trace.injection (System.trace sys) ~addr ~bit;
                  fault_fired := true
                end
            | _ -> ()))
    | _ -> ());
    if now - !last_progress > stall_limit then stalled := true
  done;
  (* Under replay detection the guest service never "finishes" — the
     loop above ends on the client side — so harvest the in-flight
     verification pipeline here; otherwise the final report would leave
     the last [replay_queue_depth - 1] chunks unverified. *)
  System.replay_drain sys;
  Reqtrace.absorb rt (System.trace sys);
  let c = Ycsb.counters gen in
  if System.finished sys && not (Ycsb.finished gen) then stalled := true;
  let run_start_cycle = Option.value ~default:(System.now sys) !run_start in
  let elapsed = max 1 (System.now sys - run_start_cycle) in
  let profile = Rcoe_machine.Arch.profile_of config.Config.arch in
  let secs =
    float_of_int elapsed
    /. (float_of_int profile.Rcoe_machine.Arch.freq_mhz *. 1e6)
  in
  let nrep = config.Config.nreplicas in
  let end_sigs =
    Array.init nrep (fun rid ->
        Signature.read mem ~base:(System.sig_base sys rid))
  in
  let outcome_log = List.rev !outcomes in
  (* Completion-order digest vs. seq-sorted digest: an ingress drop
     reorders completions (the retransmitted request finishes late) but
     must not change the outcome *set* — the sorted digest is the
     order-independent identity a recovered run is checked against. *)
  let sorted =
    List.sort
      (fun a b ->
        compare (a.o_seq, a.o_op, a.o_status) (b.o_seq, b.o_op, b.o_status))
      outcome_log
  in
  {
    issued = c.Ycsb.issued;
    completed = c.Ycsb.completed;
    run_ops = !run_completed;
    elapsed_cycles = elapsed;
    kops_per_sec =
      (if secs > 0.0 then float_of_int !run_completed /. secs /. 1e3 else 0.0);
    outcome_log;
    outcome_digest = digest_outcomes outcome_log;
    end_sigs;
    rt;
    counters = c;
    stalled = !stalled;
    rollbacks = List.length (System.rollbacks sys);
    retransmits = !retransmits;
    dup_responses = !dup_responses;
    ingress_checked = Netdev.rx_csum_reads net;
    ingress_dropped = Netdev.rx_nacked net;
    redelivered = !redelivered;
    outcome_sorted_digest = digest_outcomes sorted;
    fault_fired = !fault_fired;
    sys;
  }

let report_json r ~engine =
  let cfg = System.config r.sys in
  let tr = System.trace r.sys in
  let net_json =
    match System.netdev r.sys with
    | Some nd ->
        Json.Obj
          [
            ("rx_dropped", Json.Int (Netdev.rx_dropped nd));
            ("rx_nacked", Json.Int (Netdev.rx_nacked nd));
            ("rx_ring_hwm", Json.Int (Netdev.rx_ring_hwm nd));
            ("tx_pending_hwm", Json.Int (Netdev.tx_pending_hwm nd));
            ("tx_sent", Json.Int (Netdev.tx_sent nd));
          ]
    | None -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.String "rcoe-serve-report/v2");
      ("ingress_check", Json.Bool cfg.Config.ingress_check);
      ("engine", Json.String engine);
      ("mode", Json.String (Config.mode_to_string cfg.Config.mode));
      ("issued", Json.Int r.issued);
      ("completed", Json.Int r.completed);
      ("run_ops", Json.Int r.run_ops);
      ("elapsed_cycles", Json.Int r.elapsed_cycles);
      ("throughput_kops", Json.Float r.kops_per_sec);
      ("stalled", Json.Bool r.stalled);
      ("rollbacks", Json.Int r.rollbacks);
      ("retransmits", Json.Int r.retransmits);
      ("dup_responses", Json.Int r.dup_responses);
      ("ingress_checked", Json.Int r.ingress_checked);
      ("ingress_dropped", Json.Int r.ingress_dropped);
      ("redelivered", Json.Int r.redelivered);
      ("outcome_digest", Json.Int r.outcome_digest);
      ("outcome_sorted_digest", Json.Int r.outcome_sorted_digest);
      ( "end_sigs",
        Json.List
          (Array.to_list r.end_sigs
          |> List.map (fun (a, b, c) ->
                 Json.List [ Json.Int a; Json.Int b; Json.Int c ])) );
      ("requests", Reqtrace.to_json r.rt);
      ("net", net_json);
      ( "trace",
        Json.Obj
          [
            ("total_events", Json.Int (Trace.total tr));
            ("dropped_events", Json.Int (Trace.dropped tr));
          ] );
      ( "counters",
        Json.Obj
          [
            ("corrupted", Json.Int r.counters.Ycsb.corrupted);
            ("client_errors", Json.Int r.counters.Ycsb.client_errors);
            ("not_found", Json.Int r.counters.Ycsb.not_found);
          ] );
    ]
