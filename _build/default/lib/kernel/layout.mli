(** Physical- and virtual-memory layout.

    Physical memory is partitioned like the paper's system: one equal
    partition per replica (kernel data first, then user frames), followed
    by the small cross-replica shared region that implements the
    replication framework (barriers, published logical times, checksums,
    vote arrays, the input-replication buffer), followed by the DMA
    region, which is outside the sphere of replication.

    All kernel data that the fault-injection experiments target — page
    tables, saved thread contexts, signature accumulators, the shared
    words — lives at addresses computed here, inside simulated memory.

    Virtual layout per replica address space (word addresses):
    - [0x10000] program data ({!Rcoe_isa.Program.data_base})
    - [0x40000] thread stacks (2 pages per thread, growing down from the
      top of each slot)
    - [0x60000] device MMIO window (primary: real devices; others: a
      scratch alias so identical driver code is harmless)
    - [0x70000] DMA window (primary only: the real DMA region)
    - [0x74000] shared input-replication buffer (all replicas; writable
      by the primary only)
    - [0x78000] scratch page *)

val page_size : int

(* Virtual addresses. *)

val va_data : int
val va_stack_area : int
val stack_words_per_thread : int
val va_mmio : int
val va_dma : int
val va_shared_in : int
val va_scratch : int
val va_pages : int
(** Virtual pages covered by each address space's page table. *)

val stack_top : tid:int -> int
(** Initial stack pointer for thread [tid] (exclusive upper bound of its
    stack slot). *)

(* Per-replica partition. *)

type partition = {
  p_base : int;  (** First physical word of the partition. *)
  p_words : int;
  pt_base : int;  (** Page table (one word per virtual page). *)
  ctx_base : int;  (** Thread context save areas. *)
  sig_base : int;  (** Signature accumulator: event count, c0, c1. *)
  kmisc_base : int;  (** Misc kernel words (scheduler bookkeeping). *)
  user_base : int;  (** First user frame (page-aligned). *)
  user_words : int;
}

val max_threads : int
val ctx_words : int

(* Shared region. *)

type shared = {
  s_base : int;
  s_words : int;
  bar_base : int;  (** Barrier arrival words, one per replica. *)
  time_base : int;  (** Published logical times, 4 words per replica:
                        event count, branches, ip, flags. *)
  cksum_base : int;  (** Published signatures, 3 words per replica. *)
  votes_base : int;  (** [ft_votes], one word per replica. *)
  fault_base : int;  (** [ft_fault_replica], one word per replica. *)
  sync_base : int;  (** Sync-control words (request flag, target, leader). *)
  scratch_base : int;  (** Kernel-to-kernel value passing (device reads). *)
  inbuf_base : int;  (** Input-replication buffer. *)
  inbuf_words : int;
}

type t = {
  nreplicas : int;
  partitions : partition array;
  shared : shared;
  dma_base : int;
  dma_words : int;
  total_words : int;
}

val compute : nreplicas:int -> user_words:int -> t
(** Lay out memory for [nreplicas] partitions with [user_words] of user
    frames each (rounded up to pages). *)

val partition_of_addr : t -> int -> [ `Replica of int | `Shared | `Dma | `Outside ]
(** Classify a physical address — used by fault-injection reporting. *)

val region_of_addr : t -> int -> string
(** Human-readable region name for diagnostics. *)
