open Rcoe_machine
open Rcoe_kernel
open Rcoe_isa

(* --- Layout ------------------------------------------------------------- *)

let test_layout_partitions_disjoint () =
  let lay = Layout.compute ~nreplicas:3 ~user_words:8192 in
  for i = 0 to 2 do
    let p = lay.Layout.partitions.(i) in
    Alcotest.(check bool) "kernel before user" true (p.Layout.pt_base < p.Layout.user_base);
    if i < 2 then begin
      let q = lay.Layout.partitions.(i + 1) in
      Alcotest.(check bool) "disjoint" true
        (p.Layout.p_base + p.Layout.p_words <= q.Layout.p_base)
    end
  done;
  let last = lay.Layout.partitions.(2) in
  Alcotest.(check bool) "shared after partitions" true
    (lay.Layout.shared.Layout.s_base >= last.Layout.p_base + last.Layout.p_words);
  Alcotest.(check bool) "dma after shared" true
    (lay.Layout.dma_base
    >= lay.Layout.shared.Layout.s_base + lay.Layout.shared.Layout.s_words);
  Alcotest.(check bool) "total covers dma" true
    (lay.Layout.total_words >= lay.Layout.dma_base + lay.Layout.dma_words)

let test_layout_classification () =
  let lay = Layout.compute ~nreplicas:2 ~user_words:4096 in
  let p0 = lay.Layout.partitions.(0) in
  Alcotest.(check bool) "replica0" true
    (Layout.partition_of_addr lay p0.Layout.pt_base = `Replica 0);
  Alcotest.(check bool) "shared" true
    (Layout.partition_of_addr lay lay.Layout.shared.Layout.bar_base = `Shared);
  Alcotest.(check bool) "dma" true
    (Layout.partition_of_addr lay lay.Layout.dma_base = `Dma);
  Alcotest.(check bool) "outside" true
    (Layout.partition_of_addr lay (lay.Layout.total_words + 5) = `Outside);
  Alcotest.(check string) "region name" "replica0/page-table"
    (Layout.region_of_addr lay p0.Layout.pt_base)

let test_layout_stack_slots_disjoint () =
  let a = Layout.stack_top ~tid:0 and b = Layout.stack_top ~tid:1 in
  Alcotest.(check int) "slot size" Layout.stack_words_per_thread (b - a)

(* --- Context ------------------------------------------------------------- *)

let test_context_save_restore () =
  let mem = Mem.create 1024 in
  let core = Core.create ~id:0 ~jitter_seed:1 in
  for i = 0 to 15 do
    core.Core.regs.(i) <- (i * 1000) + 7
  done;
  core.Core.fregs.(3) <- 2.718281828459045;
  core.Core.ip <- 1234;
  core.Core.hw_branches <- 999;
  core.Core.last_was_cntinc <- true;
  Context.save mem ~addr:100 core;
  let core2 = Core.create ~id:1 ~jitter_seed:2 in
  Context.restore mem ~addr:100 core2;
  Alcotest.(check (array int)) "regs" core.Core.regs core2.Core.regs;
  Alcotest.(check int) "ip" 1234 core2.Core.ip;
  Alcotest.(check int) "branches" 999 core2.Core.hw_branches;
  Alcotest.(check bool) "race flag" true core2.Core.last_was_cntinc;
  (* Doubles survive exactly: two words per register. *)
  Alcotest.(check (float 0.0)) "freg exact" 2.718281828459045 core2.Core.fregs.(3)

let test_context_flip_changes_restore () =
  let mem = Mem.create 1024 in
  let core = Core.create ~id:0 ~jitter_seed:1 in
  core.Core.regs.(4) <- 0;
  Context.save mem ~addr:0 core;
  Mem.flip_bit mem ~addr:(Context.reg_offset 4) ~bit:5;
  Context.restore mem ~addr:0 core;
  Alcotest.(check int) "flip visible" 32 core.Core.regs.(4)

(* --- Kernel: threads, scheduling, syscalls ------------------------------- *)

let null_callbacks =
  { Kernel.cb_info = (fun _ _ -> 0); cb_kernel_update = (fun _ _ -> ()) }

let mk_kernel ?(callbacks = null_callbacks) program =
  let lay = Layout.compute ~nreplicas:1 ~user_words:16384 in
  let machine =
    Machine.create ~profile:Arch.x86 ~mem_words:lay.Layout.total_words
      ~ncores:1 ~seed:1 ()
  in
  let k =
    Kernel.create ~machine ~rid:0 ~core_id:0 ~layout:lay ~program ~callbacks ()
  in
  Kernel.setup_address_space k;
  (machine, k)

let trivial_program =
  let a = Asm.create "trivial" in
  Asm.data a "d" [| 11; 22; 33 |];
  Asm.label a "main";
  Asm.nop a;
  Asm.syscall a Syscall.sys_exit;
  Asm.assemble ~entry:"main" a

let test_kernel_data_mapped () =
  let _, k = mk_kernel trivial_program in
  Alcotest.(check int) "data visible through PT" 22
    (Kernel.read_user k ~va:(Program.data_addr trivial_program "d" + 1))

let test_kernel_spawn_and_dispatch () =
  let _, k = mk_kernel trivial_program in
  let tid = Kernel.spawn k ~entry:trivial_program.Program.entry ~arg:42 in
  Kernel.start k;
  Alcotest.(check int) "running" tid (Kernel.current_tid k);
  Alcotest.(check int) "arg in r0" 42 (Kernel.core k).Core.regs.(0);
  Alcotest.(check int) "sp at slot top" (Layout.stack_top ~tid)
    (Kernel.core k).Core.regs.(13);
  Alcotest.(check int) "ip at entry" trivial_program.Program.entry
    (Kernel.core k).Core.ip

let test_kernel_round_robin () =
  let _, k = mk_kernel trivial_program in
  let t0 = Kernel.spawn k ~entry:0 ~arg:0 in
  let t1 = Kernel.spawn k ~entry:0 ~arg:1 in
  Kernel.start k;
  Alcotest.(check int) "t0 first" t0 (Kernel.current_tid k);
  Kernel.preempt k;
  Alcotest.(check int) "t1 next" t1 (Kernel.current_tid k);
  Kernel.preempt k;
  Alcotest.(check int) "back to t0" t0 (Kernel.current_tid k)

let test_kernel_preempt_preserves_context () =
  let _, k = mk_kernel trivial_program in
  ignore (Kernel.spawn k ~entry:0 ~arg:0);
  ignore (Kernel.spawn k ~entry:0 ~arg:1);
  Kernel.start k;
  (Kernel.core k).Core.regs.(5) <- 777;
  Kernel.preempt k;
  (* other thread: r5 is its own (0) *)
  Alcotest.(check int) "fresh context" 0 (Kernel.core k).Core.regs.(5);
  Kernel.preempt k;
  Alcotest.(check int) "context restored" 777 (Kernel.core k).Core.regs.(5)

let test_kernel_block_unblock () =
  let _, k = mk_kernel trivial_program in
  let t0 = Kernel.spawn k ~entry:0 ~arg:0 in
  Kernel.start k;
  Kernel.block_current k (Kernel.T_blocked_irq 0);
  Alcotest.(check int) "idle" (-1) (Kernel.current_tid k);
  Alcotest.(check bool) "not runnable" false (Kernel.runnable k);
  Kernel.unblock k t0;
  Alcotest.(check int) "dispatched" t0 (Kernel.current_tid k)

let test_kernel_irq_latch () =
  let _, k = mk_kernel trivial_program in
  let t0 = Kernel.spawn k ~entry:0 ~arg:0 in
  Kernel.start k;
  (* Delivery while not waiting latches. *)
  Alcotest.(check int) "no waiter" 0 (Kernel.wake_irq_waiters k ~dpn:3);
  (* wait_irq consumes the latch without blocking. *)
  (Kernel.core k).Core.regs.(0) <- 3;
  (match Kernel.handle_syscall k Syscall.sys_wait_irq with
  | Kernel.Sr_local -> ()
  | _ -> Alcotest.fail "expected local");
  Alcotest.(check int) "still running" t0 (Kernel.current_tid k);
  (* Next wait blocks; delivery wakes. *)
  (Kernel.core k).Core.regs.(0) <- 3;
  ignore (Kernel.handle_syscall k Syscall.sys_wait_irq);
  Alcotest.(check int) "blocked" (-1) (Kernel.current_tid k);
  Alcotest.(check int) "woken" 1 (Kernel.wake_irq_waiters k ~dpn:3);
  Alcotest.(check int) "running again" t0 (Kernel.current_tid k)

let test_kernel_join () =
  let _, k = mk_kernel trivial_program in
  let t0 = Kernel.spawn k ~entry:0 ~arg:0 in
  let t1 = Kernel.spawn k ~entry:0 ~arg:0 in
  Kernel.start k;
  (* t0 joins t1. *)
  (Kernel.core k).Core.regs.(0) <- t1;
  ignore (Kernel.handle_syscall k Syscall.sys_join);
  Alcotest.(check int) "t1 scheduled" t1 (Kernel.current_tid k);
  ignore (Kernel.handle_syscall k Syscall.sys_exit);
  Alcotest.(check int) "t0 resumed after exit" t0 (Kernel.current_tid k)

let test_kernel_exit_all () =
  let _, k = mk_kernel trivial_program in
  ignore (Kernel.spawn k ~entry:0 ~arg:0);
  Kernel.start k;
  ignore (Kernel.handle_syscall k Syscall.sys_exit);
  Alcotest.(check bool) "all exited" true (Kernel.all_exited k);
  Alcotest.(check int) "live count" 0 (Kernel.live_thread_count k)

let test_kernel_atomic_syscall () =
  let _, k = mk_kernel trivial_program in
  ignore (Kernel.spawn k ~entry:0 ~arg:0);
  Kernel.start k;
  let addr = Program.data_addr trivial_program "d" in
  let regs = (Kernel.core k).Core.regs in
  regs.(0) <- addr;
  regs.(1) <- 5;
  regs.(2) <- 0;
  (* add *)
  ignore (Kernel.handle_syscall k Syscall.sys_atomic);
  Alcotest.(check int) "returns old" 11 regs.(0);
  Alcotest.(check int) "added" 16 (Kernel.read_user k ~va:addr);
  (* compare-and-swap failure leaves the value. *)
  regs.(0) <- addr;
  regs.(1) <- 99;
  regs.(2) <- 2;
  regs.(3) <- 12345;
  ignore (Kernel.handle_syscall k Syscall.sys_atomic);
  Alcotest.(check int) "cas miss" 16 (Kernel.read_user k ~va:addr)

let test_kernel_ft_syscalls_deferred () =
  let _, k = mk_kernel trivial_program in
  ignore (Kernel.spawn k ~entry:0 ~arg:0);
  Kernel.start k;
  let regs = (Kernel.core k).Core.regs in
  regs.(0) <- 123;
  regs.(1) <- 4;
  regs.(2) <- 999;
  regs.(3) <- 999;
  match Kernel.handle_syscall k Syscall.sys_ft_add_trace with
  | Kernel.Sr_ft { num; args } ->
      Alcotest.(check int) "num" Syscall.sys_ft_add_trace num;
      Alcotest.(check (array int)) "declared args only, rest zeroed"
        [| 123; 4; 0; 0 |] args
  | Kernel.Sr_local -> Alcotest.fail "expected Sr_ft"

let test_kernel_fault_kills_thread () =
  let _, k = mk_kernel trivial_program in
  ignore (Kernel.spawn k ~entry:0 ~arg:0);
  Kernel.start k;
  (match Kernel.handle_fault k (Core.Unmapped { vaddr = 1; write = false }) with
  | Kernel.Fd_user_fault -> ()
  | _ -> Alcotest.fail "expected user fault");
  Alcotest.(check bool) "thread dead" true (Kernel.all_exited k);
  match Kernel.last_fault k with
  | Some (0, Core.Unmapped _) -> ()
  | _ -> Alcotest.fail "fault recorded"

let test_kernel_abort_disposition () =
  let _, k = mk_kernel trivial_program in
  ignore (Kernel.spawn k ~entry:0 ~arg:0);
  Kernel.start k;
  match Kernel.handle_fault k (Core.Phys_abort 999999) with
  | Kernel.Fd_kernel_abort 999999 -> ()
  | _ -> Alcotest.fail "expected kernel abort"

let test_kernel_user_mem_error () =
  let _, k = mk_kernel trivial_program in
  Alcotest.(check bool) "raises" true
    (try ignore (Kernel.read_user k ~va:1); false
     with Kernel.User_mem_error 1 -> true)

let test_kernel_signature_hooks_fire () =
  let updates = ref [] in
  let callbacks =
    {
      Kernel.cb_info = (fun _ _ -> 0);
      cb_kernel_update = (fun _ words -> updates := words :: !updates);
    }
  in
  let _, k = mk_kernel ~callbacks trivial_program in
  ignore (Kernel.spawn k ~entry:0 ~arg:0);
  Kernel.start k;
  Alcotest.(check bool) "pte + spawn + switch updates observed" true
    (List.length !updates >= 3)

let test_kernel_quiet_map_page_silent () =
  let updates = ref 0 in
  let callbacks =
    {
      Kernel.cb_info = (fun _ _ -> 0);
      cb_kernel_update = (fun _ _ -> incr updates);
    }
  in
  let _, k = mk_kernel ~callbacks trivial_program in
  let before = !updates in
  Kernel.map_page ~quiet:true k ~vpn:100
    { Page_table.valid = true; writable = true; dma = false; device = false; ppn = 1 };
  Alcotest.(check int) "no update" before !updates

let test_kernel_dma_pages_scan () =
  let _, k = mk_kernel trivial_program in
  Kernel.map_page ~quiet:true k ~vpn:50
    { Page_table.valid = true; writable = true; dma = true; device = false; ppn = 9 };
  Kernel.map_page ~quiet:true k ~vpn:60
    { Page_table.valid = true; writable = true; dma = true; device = false; ppn = 10 };
  Alcotest.(check (list int)) "dma-marked pages found" [ 50; 60 ]
    (Kernel.dma_pages_mapped k)

let test_kernel_allocators_meet_in_middle () =
  let _, k = mk_kernel trivial_program in
  let low = Kernel.alloc_frame k in
  let high = Kernel.alloc_frame_high k in
  Alcotest.(check bool) "low below high" true (low < high)

let suite =
  [
    Alcotest.test_case "layout partitions disjoint" `Quick
      test_layout_partitions_disjoint;
    Alcotest.test_case "layout classification" `Quick test_layout_classification;
    Alcotest.test_case "stack slots disjoint" `Quick test_layout_stack_slots_disjoint;
    Alcotest.test_case "context save/restore" `Quick test_context_save_restore;
    Alcotest.test_case "context flip visible on restore" `Quick
      test_context_flip_changes_restore;
    Alcotest.test_case "data segment mapped" `Quick test_kernel_data_mapped;
    Alcotest.test_case "spawn and dispatch" `Quick test_kernel_spawn_and_dispatch;
    Alcotest.test_case "round robin" `Quick test_kernel_round_robin;
    Alcotest.test_case "preempt preserves context" `Quick
      test_kernel_preempt_preserves_context;
    Alcotest.test_case "block/unblock" `Quick test_kernel_block_unblock;
    Alcotest.test_case "irq latch" `Quick test_kernel_irq_latch;
    Alcotest.test_case "join" `Quick test_kernel_join;
    Alcotest.test_case "exit all" `Quick test_kernel_exit_all;
    Alcotest.test_case "atomic syscall" `Quick test_kernel_atomic_syscall;
    Alcotest.test_case "ft syscalls deferred with declared args" `Quick
      test_kernel_ft_syscalls_deferred;
    Alcotest.test_case "fault kills thread" `Quick test_kernel_fault_kills_thread;
    Alcotest.test_case "kernel abort disposition" `Quick test_kernel_abort_disposition;
    Alcotest.test_case "user mem error" `Quick test_kernel_user_mem_error;
    Alcotest.test_case "signature hooks fire" `Quick test_kernel_signature_hooks_fire;
    Alcotest.test_case "quiet map_page silent" `Quick test_kernel_quiet_map_page_silent;
    Alcotest.test_case "dma page scan" `Quick test_kernel_dma_pages_scan;
    Alcotest.test_case "allocators disjoint" `Quick
      test_kernel_allocators_meet_in_middle;
  ]
