lib/workloads/splash.mli: Rcoe_isa
