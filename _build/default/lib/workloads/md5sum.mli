(** md5sum on the simulated ISA (paper Section V-C2, Table VIII).

    Computes real RFC 1321 MD5 over a pseudorandom message, in a loop,
    comparing each digest against the known-good value embedded in the
    data segment; an iteration prints ['.'] on a match and ['X'] on a
    mismatch (silent data corruption). The register fault-injection
    experiment flips bits in the primary's saved user context while this
    runs: on the base system corruptions escape as ['X'] outputs or
    crashes; under CC-RCoE DMR every corruption is caught by signature
    voting or a timeout before any output escapes.

    The message is host-generated from [seed] and already MD5-padded, so
    the digest equals {!Rcoe_checksum.Md5.words} of the unpadded
    message. *)

val default_message_words : int
val default_iters : int

val program :
  ?message_words:int -> ?iters:int -> ?seed:int -> branch_count:bool ->
  unit -> Rcoe_isa.Program.t
(** [message_words] must be positive; it is the unpadded length. *)

val digest_label : string
(** Data block receiving the computed digest each iteration (4 words). *)

val expected_digest : message_words:int -> seed:int -> int array
(** The correct digest as four 32-bit words (a, b, c, d). *)
