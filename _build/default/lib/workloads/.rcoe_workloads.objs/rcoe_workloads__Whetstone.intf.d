lib/workloads/whetstone.mli: Rcoe_isa
