test/test_properties.ml: Alcotest Array Clock Gen Layout List Mem QCheck QCheck_alcotest Rcoe_core Rcoe_harness Rcoe_kernel Rcoe_machine Signature Vote
