(** Per-request lifecycle tracing for the serving harness.

    Each request (keyed by the wire-format sequence id) is stamped at
    the five points of its life: harness inject -> NIC DMA into the RX
    ring -> guest driver consume -> TX doorbell (response) -> harness
    receipt. From the stamps come the per-phase breakdowns (queue /
    ring / service / drain), and from the engine's {!Trace} span events
    comes an attribution of each request's latency to
    {compute, sync-wait, vote, checkpoint, rollback-stall,
    ingress-stall, replay-lag}: stall spans of the followed (lowest
    live) replica are clipped against the windows of the requests open
    while they ran, and compute is the remainder, so the attribution
    classes always sum exactly to the end-to-end total. Under replay
    detection, a mismatch verdict's detection-lag window (chunk end to
    verdict) is charged as [replay_lag] to the requests open during it
    — the time they were served under an undetected fault.

    The store is bounded: aggregates go to {!Hdr} histograms, and only
    the most recent [keep] completed records are retained for Perfetto
    export. Trace events are absorbed incrementally
    ({!Trace.events_since}), so feeding a reqtrace from the serve loop
    is O(new events) per poll. *)

type t

type phase = Queue | Ring | Service | Drain

val create : ?keep:int -> unit -> t
(** [keep] (default 4096) bounds the completed-request records retained
    for {!chrome_events}; aggregates cover every request regardless. *)

(** {2 Lifecycle stamps} *)

val inject : t -> id:int -> now:int -> unit
val rx : t -> id:int -> now:int -> unit
val consume : t -> id:int -> now:int -> unit
val tx : t -> id:int -> now:int -> unit

val receipt : t -> id:int -> now:int -> status:int -> unit
(** Completes the request: folds its stamps into the phase histograms,
    clamps and closes its stall attribution, and retires the record. *)

val absorb : t -> Trace.t -> unit
(** Process engine trace events emitted since the previous [absorb]:
    sync/vote phase spans of the followed replica, checkpoint and
    rollback stall spans, and injection marks, attributed to the
    requests currently open. Call between execution chunks. *)

(** {2 Reading} *)

val open_requests : t -> int
val open_hwm : t -> int
val completed : t -> int

val e2e : t -> Hdr.t
(** Inject-to-receipt latency over all completed requests. *)

val phase_hdr : t -> phase -> Hdr.t

val attribution : t -> (string * int) list
(** Aggregate cycles per class over completed requests —
    [compute; sync_wait; vote; checkpoint; rollback_stall;
    ingress_stall; replay_lag] — summing exactly to [total_cycles]
    (also included, last). *)

val detect_hdr : t -> Hdr.t
(** Per-request detection latency: for every request open when a
    rollback or downgrade detected a divergence, the cycles from the
    last injection mark to that detection. *)

val stall_hdr : t -> Hdr.t
(** Per-request recovery stall: total rollback-restore cycles attributed
    to each affected request. *)

val ingress_hdr : t -> Hdr.t
(** Per-request ingress-drop stall: for each request whose frame was
    dropped at ingress verification, the cycles from the drop until the
    retransmitted frame was consumed — the drop-and-redeliver recovery
    lane's analogue of {!stall_hdr}. *)

val to_json : t -> Json.t

val chrome_events : t -> Json.t list
(** Perfetto track events (pid 2, "requests"): one complete event per
    retained request, laned by id, with phase/attribution args; plus
    process/thread metadata. *)
