(* FT_* syscall semantics through the full engine: kernel-mediated device
   access, DMA replication, output voting — across Base, LC and CC. *)

open Rcoe_machine
open Rcoe_kernel
open Rcoe_core
open Rcoe_isa

(* A driver-like program exercising the FT interface directly:
   1. waits for a NIC interrupt,
   2. reads RX_COUNT / RX_ADDR / RX_LEN via FT_Mem_Access,
   3. pulls the packet in via FT_Mem_Rep,
   4. doubles every payload word,
   5. stages the response in the DMA TX area, votes on it with
      FT_Add_Trace, and rings the doorbell via a 3-register FT write. *)
let driver_program () =
  let a = Asm.create "ftdrv" in
  let open Reg in
  Asm.space a "regs" 4;
  Asm.space a "buf" 64;
  Asm.space a "ctl" 3;
  Asm.data a "one" [| 1 |];
  let mmio r = Layout.va_mmio + r in
  let txo = 8 * Layout.page_size in
  Asm.label a "main";
  Asm.movi a R0 0;
  Asm.syscall a Syscall.sys_wait_irq;
  (* rx_count -> regs[0] *)
  Asm.movi a R0 0;
  Asm.movi a R1 (mmio Netdev.reg_rx_count);
  Asm.la a R2 "regs";
  Asm.movi a R3 1;
  Asm.syscall a Syscall.sys_ft_mem_access;
  (* rx_addr, rx_len -> regs[1], regs[2] *)
  Asm.movi a R0 0;
  Asm.movi a R1 (mmio Netdev.reg_rx_addr);
  Asm.la a R2 "regs";
  Asm.addi a R2 R2 1;
  Asm.movi a R3 2;
  Asm.syscall a Syscall.sys_ft_mem_access;
  (* packet -> buf *)
  Asm.la a R15 "regs";
  Asm.ld a R5 R15 2;
  Asm.ld a R6 R15 1;
  Asm.la a R0 "buf";
  Asm.mov a R1 R5;
  Asm.mov a R2 R6;
  Asm.syscall a Syscall.sys_ft_mem_rep;
  (* consume descriptor *)
  Asm.movi a R0 1;
  Asm.movi a R1 (mmio Netdev.reg_rx_consume);
  Asm.la a R2 "one";
  Asm.movi a R3 1;
  Asm.syscall a Syscall.sys_ft_mem_access;
  (* double every word in place *)
  Asm.la a R4 "buf";
  Asm.movi a R6 0;
  Asm.while_ a Instr.Lt R6 (Instr.Reg R5) (fun () ->
      Asm.ld a R7 R4 0;
      Asm.add a R7 R7 R7;
      Asm.st a R4 R7 0;
      Asm.addi a R4 R4 1;
      Asm.addi a R6 R6 1);
  (* stage in the TX DMA area *)
  Asm.movi a R0 (Layout.va_dma + txo);
  Asm.la a R1 "buf";
  Asm.mov a R2 R5;
  Asm.emit a Instr.Rep_movs;
  (* output voting, then doorbell (addr, len, go) *)
  Asm.la a R0 "buf";
  Asm.mov a R1 R5;
  Asm.syscall a Syscall.sys_ft_add_trace;
  Asm.la a R15 "ctl";
  Asm.movi a R12 txo;
  Asm.st a R15 R12 0;
  Asm.st a R15 R5 1;
  Asm.movi a R12 1;
  Asm.st a R15 R12 2;
  Asm.movi a R0 1;
  Asm.movi a R1 (mmio Netdev.reg_tx_addr);
  Asm.la a R2 "ctl";
  Asm.movi a R3 3;
  Asm.syscall a Syscall.sys_ft_mem_access;
  Asm.syscall a Syscall.sys_exit;
  Asm.assemble ~entry:"main" a

let run_driver ~mode ~n =
  let config =
    {
      Config.default with
      Config.mode;
      nreplicas = n;
      with_net = true;
      tick_interval = 20_000;
      barrier_timeout = 400_000;
    }
  in
  let sys = System.create ~config ~program:(driver_program ()) in
  let net = Option.get (System.netdev sys) in
  Netdev.inject net ~now:0 [| 5; 10; 20 |];
  System.run sys ~max_cycles:5_000_000;
  (sys, net)

let check_response name (sys, net) =
  (match System.halted sys with
  | Some h -> Alcotest.failf "%s halted: %s" name (System.halt_reason_to_string h)
  | None -> ());
  Alcotest.(check bool) (name ^ " finished") true (System.finished sys);
  match Netdev.take_tx net with
  | [ (_, payload) ] ->
      Alcotest.(check (array int)) (name ^ " doubled payload")
        [| 10; 20; 40 |] payload
  | other -> Alcotest.failf "%s: expected 1 packet, got %d" name (List.length other)

let test_ft_roundtrip_base () = check_response "base" (run_driver ~mode:Config.Base ~n:1)
let test_ft_roundtrip_lc () = check_response "lc-d" (run_driver ~mode:Config.LC ~n:2)
let test_ft_roundtrip_cc () = check_response "cc-d" (run_driver ~mode:Config.CC ~n:2)
let test_ft_roundtrip_cc_tmr () = check_response "cc-t" (run_driver ~mode:Config.CC ~n:3)

let test_ft_replicates_input_to_all () =
  let sys, _ = run_driver ~mode:Config.CC ~n:3 in
  let p = driver_program () in
  let buf = Program.data_addr p "buf" in
  for rid = 0 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "replica %d saw doubled input" rid)
      [ 10; 20; 40 ]
      (List.init 3 (fun i ->
           Kernel.read_user (System.kernel sys rid) ~va:(buf + i)))
  done

let test_output_voting_catches_divergent_response () =
  (* Corrupt one replica's response buffer before the trace vote: the
     doorbell must never ring and the system must halt on a mismatch. *)
  let config =
    {
      Config.default with
      Config.mode = Config.LC;
      nreplicas = 2;
      with_net = true;
      tick_interval = 20_000;
      barrier_timeout = 300_000;
    }
  in
  let program = driver_program () in
  let sys = System.create ~config ~program in
  let net = Option.get (System.netdev sys) in
  Netdev.inject net ~now:0 [| 7; 8; 9 |];
  (* Find replica 1's "buf" physical address and corrupt it as soon as the
     data lands, racing ahead of the trace vote. *)
  let buf_va = Program.data_addr program "buf" in
  let corrupted = ref false in
  let stop s =
    if not !corrupted then begin
      match Kernel.read_user (System.kernel s 1) ~va:buf_va with
      | 7 | 14 ->
          (* Input (or doubled input) has arrived at replica 1: flip it. *)
          Kernel.write_user (System.kernel s 1) ~va:buf_va 9999;
          corrupted := true;
          false
      | _ -> false
      | exception Kernel.User_mem_error _ -> false
    end
    else false
  in
  System.run sys ~stop ~max_cycles:5_000_000;
  System.run sys ~max_cycles:5_000_000;
  Alcotest.(check bool) "corruption staged" true !corrupted;
  Alcotest.(check bool) "mismatch detected" true
    (match System.halted sys with
    | Some System.H_mismatch -> true
    | _ -> false);
  Alcotest.(check (list (pair int pass))) "no packet escaped" []
    (Netdev.take_tx net)

let test_sync_vote_level_rendezvous_count () =
  (* At level S every syscall votes; at level A only FT calls do. *)
  let count_rdv level =
    let config =
      {
        Config.default with
        Config.mode = Config.LC;
        nreplicas = 2;
        sync_level = level;
        tick_interval = 50_000;
      }
    in
    let a = Asm.create "sys" in
    Asm.label a "main";
    Asm.for_up a Reg.R4 ~start:0 ~stop:(Instr.Imm 10) (fun () ->
        Asm.movi a Reg.R0 65;
        Asm.syscall a Syscall.sys_putchar);
    Asm.syscall a Syscall.sys_exit;
    let program = Asm.assemble ~entry:"main" a in
    let sys = System.create ~config ~program in
    System.run sys ~max_cycles:5_000_000;
    Alcotest.(check bool) "finished" true (System.finished sys);
    (System.stats sys).System.rendezvous
  in
  let at_a = count_rdv Config.Sync_args in
  let at_s = count_rdv Config.Sync_vote in
  Alcotest.(check int) "no rendezvous at A" 0 at_a;
  Alcotest.(check bool)
    (Printf.sprintf "one per syscall at S (%d)" at_s)
    true (at_s >= 10)

let test_base_ft_ops_direct () =
  (* In Base mode the FT calls act directly on the device — same driver
     program, no replication machinery. *)
  let sys, _ = run_driver ~mode:Config.Base ~n:1 in
  Alcotest.(check int) "no rounds" 0 (System.stats sys).System.rounds

let suite =
  [
    Alcotest.test_case "FT roundtrip (base)" `Quick test_ft_roundtrip_base;
    Alcotest.test_case "FT roundtrip (LC-D)" `Quick test_ft_roundtrip_lc;
    Alcotest.test_case "FT roundtrip (CC-D)" `Quick test_ft_roundtrip_cc;
    Alcotest.test_case "FT roundtrip (CC-T)" `Quick test_ft_roundtrip_cc_tmr;
    Alcotest.test_case "FT replicates input to every replica" `Quick
      test_ft_replicates_input_to_all;
    Alcotest.test_case "output voting blocks divergent response" `Quick
      test_output_voting_catches_divergent_response;
    Alcotest.test_case "sync level S votes per syscall" `Quick
      test_sync_vote_level_rendezvous_count;
    Alcotest.test_case "base FT ops act directly" `Quick test_base_ft_ops_direct;
  ]
