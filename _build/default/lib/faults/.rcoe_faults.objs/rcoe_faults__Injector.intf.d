lib/faults/injector.mli: Rcoe_kernel Rcoe_machine
