let reg_rx_count = 0
let reg_rx_addr = 1
let reg_rx_len = 2
let reg_rx_consume = 3
let reg_tx_addr = 4
let reg_tx_len = 5
let reg_tx_doorbell = 6
let reg_irq_status = 7

let slot_words = 64

type rx_desc = { slot_offset : int; len : int }

type t = {
  mem : Mem.t;
  dma_base : int;
  dma_words : int;
  nslots : int;
  host_q : (int * int array) Queue.t; (* deliver_at, payload *)
  rx_ring : rx_desc Queue.t;
  mutable next_slot : int;
  mutable irq_line : bool;
  mutable tx_addr : int;
  mutable tx_len : int;
  mutable tx_done : (int * int array) list; (* reversed *)
  mutable dropped : int;
  mutable now_cache : int;
  mutable wedged : bool;
  (* Host-side observability. The observer callbacks are invoked with
     the device-clock cycle and the packet payload at the three ring
     transitions (RX delivery, driver consume, TX doorbell); they are
     pure observers — the simulation takes the same steps, on the same
     cycles, whether or not they are installed. *)
  mutable rx_hwm : int;
  mutable tx_hwm : int;
  mutable tx_sent : int;
  mutable on_rx : (now:int -> int array -> unit) option;
  mutable on_consume : (now:int -> int array -> unit) option;
  mutable on_tx : (now:int -> int array -> unit) option;
}

let create ~mem ~dma_base ~dma_words =
  let nslots = dma_words / 2 / slot_words in
  if nslots < 2 then invalid_arg "Netdev.create: DMA region too small";
  {
    mem;
    dma_base;
    dma_words;
    nslots;
    host_q = Queue.create ();
    rx_ring = Queue.create ();
    next_slot = 0;
    irq_line = false;
    tx_addr = 0;
    tx_len = 0;
    tx_done = [];
    dropped = 0;
    now_cache = 0;
    wedged = false;
    rx_hwm = 0;
    tx_hwm = 0;
    tx_sent = 0;
    on_rx = None;
    on_consume = None;
    on_tx = None;
  }

(* One call replaces all three taps: an omitted argument clears that
   observer, so a device reused across runs never keeps a stale
   callback into a dead trace sink. *)
let set_observers t ?on_rx ?on_consume ?on_tx () =
  t.on_rx <- on_rx;
  t.on_consume <- on_consume;
  t.on_tx <- on_tx

let inject t ~now payload =
  if Array.length payload > slot_words then
    invalid_arg "Netdev.inject: packet too long";
  Queue.add (now, payload) t.host_q

let pending_host_packets t = Queue.length t.host_q

let take_tx t =
  let out = List.rev t.tx_done in
  t.tx_done <- [];
  out

let rx_dropped t = t.dropped
let rx_ring_hwm t = t.rx_hwm
let tx_pending_hwm t = t.tx_hwm
let tx_sent t = t.tx_sent

let rx_region_bounds t = (t.dma_base, t.nslots * slot_words)

let deliver t payload =
  if Queue.length t.rx_ring >= t.nslots then t.dropped <- t.dropped + 1
  else begin
    let slot = t.next_slot in
    t.next_slot <- (t.next_slot + 1) mod t.nslots;
    let offset = slot * slot_words in
    Mem.write_block t.mem (t.dma_base + offset) payload;
    Queue.add { slot_offset = offset; len = Array.length payload } t.rx_ring;
    let occ = Queue.length t.rx_ring in
    if occ > t.rx_hwm then t.rx_hwm <- occ;
    (match t.on_rx with Some f -> f ~now:t.now_cache payload | None -> ());
    t.irq_line <- true
  end

let set_wedged t w = t.wedged <- w

let dev_tick t ~now =
  t.now_cache <- now;
  if t.wedged then ()
  else
  let rec drain () =
    match Queue.peek_opt t.host_q with
    | Some (at, payload)
      when at <= now && Queue.length t.rx_ring < t.nslots ->
        ignore (Queue.pop t.host_q);
        deliver t payload;
        drain ()
    | Some _ | None -> ()
  in
  drain ()

(* The earliest cycle strictly after [after] at which this device could
   change observable machine state on its own: the head of the host
   queue becoming deliverable (bounded below by the next tick), or
   [after] itself when the interrupt line is already up. [None] when the
   device is quiescent — wedged, queue empty, or the RX ring full (a
   full ring defers all deliveries to a driver consume, which user code
   triggers, so no spontaneous activity can happen). *)
let next_event t ~after =
  if t.wedged then None
  else if t.irq_line then Some after
  else if Queue.length t.rx_ring >= t.nslots then None
  else
    match Queue.peek_opt t.host_q with
    | None -> None
    | Some (at, _) -> Some (max (after + 1) at)

let read_reg t off =
  if off = reg_rx_count then Queue.length t.rx_ring
  else if off = reg_rx_addr then
    match Queue.peek_opt t.rx_ring with
    | Some d -> d.slot_offset
    | None -> -1
  else if off = reg_rx_len then
    match Queue.peek_opt t.rx_ring with Some d -> d.len | None -> 0
  else if off = reg_irq_status then if t.irq_line then 1 else 0
  else 0

let write_reg t off v =
  if off = reg_rx_consume then begin
    (match Queue.take_opt t.rx_ring with
    | Some d ->
        (match t.on_consume with
        | Some f ->
            let payload = Mem.read_block t.mem (t.dma_base + d.slot_offset) d.len in
            f ~now:t.now_cache payload
        | None -> ())
    | None -> ())
  end
  else if off = reg_tx_addr then t.tx_addr <- v
  else if off = reg_tx_len then t.tx_len <- v
  else if off = reg_tx_doorbell then begin
    let len = max 0 (min t.tx_len (t.dma_words - t.tx_addr)) in
    let payload = Mem.read_block t.mem (t.dma_base + t.tx_addr) len in
    t.tx_done <- (t.now_cache, payload) :: t.tx_done;
    t.tx_sent <- t.tx_sent + 1;
    let occ = List.length t.tx_done in
    if occ > t.tx_hwm then t.tx_hwm <- occ;
    match t.on_tx with Some f -> f ~now:t.now_cache payload | None -> ()
  end

let device t =
  {
    Device.dev_name = "netdev";
    read_reg = read_reg t;
    write_reg = write_reg t;
    dev_tick = (fun ~now -> dev_tick t ~now);
    irq_pending = (fun () -> t.irq_line);
    irq_ack = (fun () -> t.irq_line <- false);
  }
