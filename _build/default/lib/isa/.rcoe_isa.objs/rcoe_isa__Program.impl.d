lib/isa/program.ml: Array Buffer Instr Int32 List Printf String
