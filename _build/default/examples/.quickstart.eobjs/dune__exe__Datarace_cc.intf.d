examples/datarace_cc.mli:
