lib/checksum/fletcher.ml: Array Char String
