let page_size = Rcoe_machine.Page_table.page_size

let va_data = Rcoe_isa.Program.data_base
let va_stack_area = 0x40000
let stack_words_per_thread = 2 * page_size
let va_mmio = 0x60000
let va_dma = 0x70000
let va_shared_in = 0x74000
let va_scratch = 0x78000
let va_pages = 0x80000 / page_size (* 2048 pages *)

let max_threads = 40
let ctx_words = 40

let stack_top ~tid = va_stack_area + ((tid + 1) * stack_words_per_thread)

type partition = {
  p_base : int;
  p_words : int;
  pt_base : int;
  ctx_base : int;
  sig_base : int;
  kmisc_base : int;
  user_base : int;
  user_words : int;
}

type shared = {
  s_base : int;
  s_words : int;
  bar_base : int;
  time_base : int;
  cksum_base : int;
  votes_base : int;
  fault_base : int;
  sync_base : int;
  scratch_base : int;
  inbuf_base : int;
  inbuf_words : int;
}

type t = {
  nreplicas : int;
  partitions : partition array;
  shared : shared;
  dma_base : int;
  dma_words : int;
  total_words : int;
}

let round_up_page n = (n + page_size - 1) / page_size * page_size

let make_partition ~base ~user_words =
  let pt_base = base in
  let ctx_base = pt_base + va_pages in
  let sig_base = ctx_base + (max_threads * ctx_words) in
  let kmisc_base = sig_base + 4 in
  let kernel_end = kmisc_base + 60 in
  let user_base = round_up_page kernel_end in
  let user_words = round_up_page user_words in
  {
    p_base = base;
    p_words = user_base - base + user_words;
    pt_base;
    ctx_base;
    sig_base;
    kmisc_base;
    user_base;
    user_words;
  }

let sync_words = 16

let compute ~nreplicas ~user_words =
  if nreplicas < 1 then invalid_arg "Layout.compute: need at least 1 replica";
  let partitions = Array.make nreplicas (make_partition ~base:0 ~user_words) in
  let base = ref 0 in
  for r = 0 to nreplicas - 1 do
    let p = make_partition ~base:!base ~user_words in
    partitions.(r) <- p;
    base := round_up_page (p.p_base + p.p_words)
  done;
  let s_base = !base in
  let bar_base = s_base in
  let time_base = bar_base + nreplicas in
  let cksum_base = time_base + (4 * nreplicas) in
  let votes_base = cksum_base + (3 * nreplicas) in
  let fault_base = votes_base + nreplicas in
  let sync_base = fault_base + nreplicas in
  let scratch_base = sync_base + sync_words in
  let inbuf_base = round_up_page (scratch_base + 64) in
  let inbuf_words = 16 * page_size in
  let shared =
    {
      s_base;
      s_words = inbuf_base + inbuf_words - s_base;
      bar_base;
      time_base;
      cksum_base;
      votes_base;
      fault_base;
      sync_base;
      scratch_base;
      inbuf_base;
      inbuf_words;
    }
  in
  let dma_base = round_up_page (s_base + shared.s_words) in
  let dma_words = 16 * page_size in
  {
    nreplicas;
    partitions;
    shared;
    dma_base;
    dma_words;
    total_words = dma_base + dma_words;
  }

let partition_of_addr t addr =
  if addr < 0 then `Outside
  else
    let in_partition r =
      let p = t.partitions.(r) in
      addr >= p.p_base && addr < p.p_base + p.p_words
    in
    let rec find r =
      if r >= t.nreplicas then
        if addr >= t.shared.s_base && addr < t.shared.s_base + t.shared.s_words
        then `Shared
        else if addr >= t.dma_base && addr < t.dma_base + t.dma_words then `Dma
        else `Outside
      else if in_partition r then `Replica r
      else find (r + 1)
    in
    find 0

let region_of_addr t addr =
  match partition_of_addr t addr with
  | `Outside -> "outside"
  | `Dma -> "dma"
  | `Shared -> "shared"
  | `Replica r ->
      let p = t.partitions.(r) in
      let sub =
        if addr < p.ctx_base then "page-table"
        else if addr < p.sig_base then "contexts"
        else if addr < p.kmisc_base then "signature"
        else if addr < p.user_base then "kernel-misc"
        else "user"
      in
      Printf.sprintf "replica%d/%s" r sub
