open Rcoe_isa
open Reg
module L = Rcoe_kernel.Layout
module Nd = Rcoe_machine.Netdev

let vlen = 8
let nbuckets = 256
let node_words = 2 + vlen

let req_magic = 0x5251
let resp_magic = 0x5250

let op_get = 0
let op_put = 1
let op_scan = 2

let req_words_get = 4
let req_words_put = 4 + vlen
let req_words_scan = 5

(* Offset of the TX staging area within the DMA region: the RX slots use
   the first half (see Netdev). *)
let tx_off dma_words = dma_words / 2

let program ?(max_records = 8192) ?(net_dpn = 0) ~branch_count () =
  let a = Asm.create "kvstore" in
  Asm.space a "htab" nbuckets;
  Asm.space a "nodes" (max_records * node_words);
  Asm.space a "nfree" 1;
  Asm.space a "rxbuf" Nd.slot_words;
  Asm.space a "txbuf" Nd.slot_words;
  Asm.space a "ftregs" 4;
  Asm.data a "one" [| 1 |];
  Asm.space a "txctl" 3;

  let mmio r = L.va_mmio + r in
  let txo = tx_off (16 * L.page_size) in

  let sys = Asm.syscall a in
  let get_info key =
    Asm.movi a R0 key;
    sys Rcoe_kernel.Syscall.sys_get_info
  in
  (* Defensive handle validation: a node handle read from the table is
     1-based with 0 = nil; anything outside [0, max_records] means the
     chain word was corrupted, and treating it as nil keeps every walk
     inside the node array. This also gives the footprint analyzer a
     hard bound on chain-derived addresses, which is what proves the
     serving loop parallel-eligible. *)
  let clamp_handle r =
    Asm.if_ a Instr.Lt r (Instr.Imm 0) (fun () -> Asm.movi a r 0);
    Asm.if_ a Instr.Gt r (Instr.Imm max_records) (fun () -> Asm.movi a r 0)
  in

  (* lookup: in R4 = key; out R6 = bucket, R7 = node address (0 if absent).
     Clobbers R12, R15. *)
  Wl.func a "kv_lookup" (fun () ->
      Asm.remi a R6 R4 nbuckets;
      Asm.la a R7 "htab";
      Asm.add a R7 R7 R6;
      Asm.ld a R7 R7 0;
      clamp_handle R7;
      Asm.label a "kvl_loop";
      Asm.b a Instr.Eq R7 (Instr.Imm 0) "kvl_done";
      Asm.la a R15 "nodes";
      Asm.subi a R12 R7 1;
      Asm.muli a R12 R12 node_words;
      Asm.add a R15 R15 R12;
      Asm.ld a R12 R15 0;
      Asm.b a Instr.Eq R12 (Instr.Reg R4) "kvl_hit";
      Asm.ld a R7 R15 1;
      clamp_handle R7;
      Asm.jmp a "kvl_loop";
      Asm.label a "kvl_hit";
      Asm.mov a R7 R15;
      Asm.label a "kvl_done";
      Asm.nop a);

  (* process: rxbuf -> txbuf; out R5 = response length in words. *)
  Wl.func a "kv_process" (fun () ->
      Asm.la a R1 "rxbuf";
      Asm.la a R2 "txbuf";
      Asm.ld a R3 R1 2;
      (* op *)
      Asm.ld a R4 R1 3;
      (* key *)
      Asm.movi a R15 resp_magic;
      Asm.st a R2 R15 0;
      Asm.ld a R15 R1 1;
      Asm.st a R2 R15 1;
      (* seq *)
      Asm.st a R2 R3 3;
      (* op echo *)
      Asm.movi a R5 4;
      Asm.b a Instr.Eq R3 (Instr.Imm op_get) "kvp_get";
      Asm.b a Instr.Eq R3 (Instr.Imm op_put) "kvp_put";
      Asm.b a Instr.Eq R3 (Instr.Imm op_scan) "kvp_scan";
      (* unknown op *)
      Asm.movi a R15 3;
      Asm.st a R2 R15 2;
      Asm.jmp a "kvp_done";

      (* ---- GET ---- *)
      Asm.label a "kvp_get";
      Wl.call a "kv_lookup";
      Asm.b a Instr.Eq R7 (Instr.Imm 0) "kvp_get_miss";
      Asm.movi a R15 0;
      Asm.st a R2 R15 2;
      for i = 0 to vlen - 1 do
        Asm.ld a R15 R7 (2 + i);
        Asm.st a R2 R15 (4 + i)
      done;
      Asm.movi a R5 (4 + vlen);
      Asm.jmp a "kvp_done";
      Asm.label a "kvp_get_miss";
      Asm.movi a R15 1;
      Asm.st a R2 R15 2;
      Asm.jmp a "kvp_done";

      (* ---- PUT ---- *)
      Asm.label a "kvp_put";
      Wl.call a "kv_lookup";
      Asm.b a Instr.Ne R7 (Instr.Imm 0) "kvp_put_write";
      (* allocate a node *)
      Asm.la a R8 "nfree";
      Asm.ld a R12 R8 0;
      (* a corrupted (negative) allocation count reads as "table full" *)
      Asm.if_ a Instr.Lt R12 (Instr.Imm 0) (fun () ->
          Asm.movi a R12 max_records);
      Asm.b a Instr.Lt R12 (Instr.Imm max_records) "kvp_put_alloc";
      Asm.movi a R15 2;
      (* table full *)
      Asm.st a R2 R15 2;
      Asm.jmp a "kvp_done";
      Asm.label a "kvp_put_alloc";
      Asm.addi a R15 R12 1;
      Asm.st a R8 R15 0;
      (* nfree++ *)
      Asm.la a R7 "nodes";
      Asm.muli a R15 R12 node_words;
      Asm.add a R7 R7 R15;
      Asm.st a R7 R4 0;
      (* node.key = key *)
      Asm.la a R15 "htab";
      Asm.add a R15 R15 R6;
      Asm.ld a R8 R15 0;
      Asm.st a R7 R8 1;
      (* node.next = old head *)
      Asm.addi a R8 R12 1;
      Asm.st a R15 R8 0;
      (* head = idx+1 *)
      Asm.label a "kvp_put_write";
      for i = 0 to vlen - 1 do
        Asm.ld a R15 R1 (4 + i);
        Asm.st a R7 R15 (2 + i)
      done;
      Asm.movi a R15 0;
      Asm.st a R2 R15 2;
      Asm.jmp a "kvp_done";

      (* ---- SCAN ---- *)
      Asm.label a "kvp_scan";
      Asm.ld a R8 R1 4;
      (* requested count *)
      Asm.if_ a Instr.Gt R8 (Instr.Imm 8) (fun () -> Asm.movi a R8 8);
      Asm.remi a R12 R4 nbuckets;
      (* bucket cursor *)
      Asm.movi a R5 0;
      (* collected *)
      Asm.movi a R3 0;
      (* buckets scanned *)
      Asm.label a "kvp_scan_bucket";
      Asm.b a Instr.Ge R5 (Instr.Reg R8) "kvp_scan_done";
      Asm.b a Instr.Ge R3 (Instr.Imm nbuckets) "kvp_scan_done";
      Asm.la a R7 "htab";
      Asm.add a R7 R7 R12;
      Asm.ld a R7 R7 0;
      clamp_handle R7;
      Asm.label a "kvp_scan_chain";
      Asm.b a Instr.Eq R7 (Instr.Imm 0) "kvp_scan_next";
      Asm.b a Instr.Ge R5 (Instr.Reg R8) "kvp_scan_done";
      Asm.la a R15 "nodes";
      Asm.subi a R7 R7 1;
      Asm.muli a R7 R7 node_words;
      Asm.add a R15 R15 R7;
      Asm.ld a R7 R15 2;
      (* value[0] *)
      Asm.add a R0 R2 R5;
      Asm.st a R0 R7 4;
      Asm.addi a R5 R5 1;
      Asm.ld a R7 R15 1;
      (* next *)
      clamp_handle R7;
      Asm.jmp a "kvp_scan_chain";
      Asm.label a "kvp_scan_next";
      Asm.addi a R12 R12 1;
      Asm.remi a R12 R12 nbuckets;
      Asm.addi a R3 R3 1;
      Asm.jmp a "kvp_scan_bucket";
      Asm.label a "kvp_scan_done";
      Asm.movi a R15 0;
      Asm.st a R2 R15 2;
      Asm.addi a R5 R5 4;
      Asm.jmp a "kvp_done";

      Asm.label a "kvp_done";
      Asm.nop a);

  (* ------------------------------------------------------------------ *)
  Asm.label a "main";
  get_info 3;
  Asm.mov a R10 R0;
  (* drv_mode: 0 direct, 1 kernel-mediated *)
  get_info 0;
  Asm.mov a R11 R0;
  get_info 2;
  Asm.sub a R11 R11 R0;
  (* R11 = 0 iff this replica is the primary. Recomputed each packet in
     case the primary changed after a downgrade. *)
  Asm.label a "server_loop";
  Asm.movi a R0 net_dpn;
  sys Rcoe_kernel.Syscall.sys_wait_irq;

  Asm.label a "drain_loop";
  (* Refresh the primary check (error masking can re-elect). *)
  get_info 0;
  Asm.mov a R11 R0;
  get_info 2;
  Asm.sub a R11 R11 R0;
  (* Ingress-check flag: when set, the consume sequence verifies each
     frame against the NIC's enqueue-time checksum (RX_CSUM) before
     consuming it, and NACKs mismatches for client retransmission.
     Re-read per packet — R8 is the only register kv_process leaves
     free, and only within one drain iteration. *)
  get_info 6;
  Asm.mov a R8 R0;

  Asm.b a Instr.Eq R10 (Instr.Imm 1) "rx_cc";

  (* ---- LC / base receive path: direct MMIO on the primary, user-mode
     input replication through the shared buffer. ---- *)
  Asm.b a Instr.Ne R11 (Instr.Imm 0) "rx_lc_wait";
  Asm.movi a R4 (mmio Nd.reg_rx_count);
  Asm.ld a R4 R4 0;
  Asm.movi a R15 L.va_shared_in;
  Asm.st a R15 R4 0;
  Asm.b a Instr.Eq R4 (Instr.Imm 0) "rx_lc_wait";
  Asm.movi a R6 (mmio Nd.reg_rx_addr);
  Asm.ld a R6 R6 0;
  Asm.movi a R7 (mmio Nd.reg_rx_len);
  Asm.ld a R7 R7 0;
  (* Clamp the device-reported length like [clamp_handle] clamps node
     handles: a corrupted descriptor cannot push the copy or the
     checksum loop past the slot, and the bound is what keeps the loop
     inside the analyzer's interval domain. *)
  Asm.if_ a Instr.Lt R7 (Instr.Imm 0) (fun () -> Asm.movi a R7 0);
  Asm.if_ a Instr.Gt R7 (Instr.Imm Nd.slot_words) (fun () ->
      Asm.movi a R7 Nd.slot_words);
  Asm.st a R15 R6 1;
  Asm.st a R15 R7 2;
  (* copy the packet out of the DMA ring into the shared buffer *)
  Asm.movi a R0 (L.va_shared_in + 16);
  Asm.movi a R1 L.va_dma;
  Asm.add a R1 R1 R6;
  Asm.mov a R2 R7;
  Asm.emit a Instr.Rep_movs;
  Asm.b a Instr.Eq R8 (Instr.Imm 0) "rx_lc_ok";
  (* Ingress verification (direct-driver flavour): recompute the frame
     checksum over the copy just made — the same mod-65535 Fletcher
     recurrence the NIC ran at enqueue — and compare against RX_CSUM.
     All accumulators are re-bounded by [remi] every step, so the
     analyzer's intervals stay finite. *)
  Asm.movi a R2 (L.va_shared_in + 16);
  Asm.add a R6 R2 R7;
  Asm.movi a R0 0;
  Asm.movi a R1 0;
  Asm.label a "lc_ck_loop";
  Asm.b a Instr.Ge R2 (Instr.Reg R6) "lc_ck_done";
  Asm.ld a R4 R2 0;
  Asm.remi a R4 R4 65535;
  Asm.add a R0 R0 R4;
  Asm.remi a R0 R0 65535;
  Asm.add a R1 R1 R0;
  Asm.remi a R1 R1 65535;
  Asm.addi a R2 R2 1;
  Asm.jmp a "lc_ck_loop";
  Asm.label a "lc_ck_done";
  Asm.muli a R1 R1 65536;
  Asm.add a R1 R1 R0;
  Asm.movi a R4 (mmio Nd.reg_rx_csum);
  Asm.ld a R4 R4 0;
  Asm.b a Instr.Eq R1 (Instr.Reg R4) "rx_lc_ok";
  (* Mismatch: NACK the frame (drop + quarantined re-arm) and publish
     the retry marker -1 instead of a packet — every replica then loops
     back through the drain path, where the next RX_COUNT read observes
     the drop and re-arms the slot. The client's retransmission
     re-delivers the request; rollback could not, since no checkpoint
     covers the DMA ring. *)
  Asm.movi a R4 (mmio Nd.reg_rx_nack);
  Asm.movi a R12 1;
  Asm.st a R4 R12 0;
  Asm.movi a R15 L.va_shared_in;
  Asm.movi a R12 (-1);
  Asm.st a R15 R12 0;
  Asm.jmp a "rx_lc_wait";
  Asm.label a "rx_lc_ok";
  Asm.movi a R15 (mmio Nd.reg_rx_consume);
  Asm.movi a R12 1;
  Asm.st a R15 R12 0;
  Asm.label a "rx_lc_wait";
  sys Rcoe_kernel.Syscall.sys_input_wait;
  Asm.movi a R15 L.va_shared_in;
  Asm.ld a R4 R15 0;
  Asm.b a Instr.Eq R4 (Instr.Imm 0) "server_loop";
  Asm.b a Instr.Lt R4 (Instr.Imm 0) "drain_loop";
  Asm.ld a R5 R15 2;
  (* packet length *)
  Asm.la a R0 "rxbuf";
  Asm.movi a R1 (L.va_shared_in + 16);
  Asm.mov a R2 R5;
  Asm.emit a Instr.Rep_movs;
  Asm.jmp a "rx_done";

  (* ---- CC receive path: every device access through the kernel. ---- *)
  Asm.label a "rx_cc";
  Asm.movi a R0 0;
  Asm.movi a R1 (mmio Nd.reg_rx_count);
  Asm.la a R2 "ftregs";
  Asm.movi a R3 1;
  sys Rcoe_kernel.Syscall.sys_ft_mem_access;
  Asm.la a R15 "ftregs";
  Asm.ld a R4 R15 0;
  Asm.b a Instr.Eq R4 (Instr.Imm 0) "server_loop";
  Asm.movi a R0 0;
  Asm.movi a R1 (mmio Nd.reg_rx_addr);
  Asm.la a R2 "ftregs";
  Asm.addi a R2 R2 1;
  Asm.movi a R3 2;
  sys Rcoe_kernel.Syscall.sys_ft_mem_access;
  Asm.la a R15 "ftregs";
  Asm.ld a R6 R15 1;
  (* rx offset *)
  Asm.ld a R5 R15 2;
  (* rx length *)
  Asm.la a R0 "rxbuf";
  Asm.mov a R1 R5;
  Asm.mov a R2 R6;
  sys Rcoe_kernel.Syscall.sys_ft_mem_rep;
  (* Verified consume: a non-zero result means the kernel's ingress
     check failed and the frame was NACKed — skip the consume (the
     descriptor is already gone) and re-poll the ring; the next
     RX_COUNT read observes the drop and re-arms the slot. *)
  Asm.b a Instr.Ne R0 (Instr.Imm 0) "drain_loop";
  Asm.movi a R0 1;
  Asm.movi a R1 (mmio Nd.reg_rx_consume);
  Asm.la a R2 "one";
  Asm.movi a R3 1;
  sys Rcoe_kernel.Syscall.sys_ft_mem_access;

  Asm.label a "rx_done";
  Wl.call a "kv_process";

  (* Stage the response in the DMA TX area (real for the primary, shadow
     frames elsewhere — identical instruction streams either way). *)
  Asm.movi a R0 (L.va_dma + txo);
  Asm.la a R1 "txbuf";
  Asm.mov a R2 R5;
  Asm.emit a Instr.Rep_movs;

  (* Output voting: the response enters the signature before the
     doorbell (Section III-C / V-C1). *)
  Asm.la a R0 "txbuf";
  Asm.mov a R1 R5;
  sys Rcoe_kernel.Syscall.sys_ft_add_trace;

  Asm.b a Instr.Eq R10 (Instr.Imm 1) "tx_cc";
  (* LC/base transmit: direct register writes (aliased away from the
     device on non-primary replicas). *)
  Asm.movi a R15 (mmio Nd.reg_tx_addr);
  Asm.movi a R12 txo;
  Asm.st a R15 R12 0;
  Asm.movi a R15 (mmio Nd.reg_tx_len);
  Asm.st a R15 R5 0;
  Asm.movi a R15 (mmio Nd.reg_tx_doorbell);
  Asm.movi a R12 1;
  Asm.st a R15 R12 0;
  Asm.jmp a "drain_loop";

  Asm.label a "tx_cc";
  Asm.la a R15 "txctl";
  Asm.movi a R12 txo;
  Asm.st a R15 R12 0;
  Asm.st a R15 R5 1;
  Asm.movi a R12 1;
  Asm.st a R15 R12 2;
  Asm.movi a R0 1;
  Asm.movi a R1 (mmio Nd.reg_tx_addr);
  Asm.la a R2 "txctl";
  Asm.movi a R3 3;
  sys Rcoe_kernel.Syscall.sys_ft_mem_access;
  Asm.jmp a "drain_loop";

  Asm.assemble ~entry:"main" ~branch_count a
