lib/workloads/md5sum.ml: Array Asm Char Instr Rcoe_checksum Rcoe_isa Rcoe_util Reg Rng String Wl
