lib/machine/bus.mli:
