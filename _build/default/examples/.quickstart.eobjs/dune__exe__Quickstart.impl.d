examples/quickstart.ml: Asm Char Config Instr List Printf Program Rcoe_core Rcoe_harness Rcoe_isa Rcoe_kernel Rcoe_machine Reg Runner System
