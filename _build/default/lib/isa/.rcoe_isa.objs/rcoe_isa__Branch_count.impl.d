lib/isa/branch_count.ml: Array Instr List
