lib/workloads/dhrystone.mli: Rcoe_isa
