#!/bin/sh
# Re-run every `$ dune exec ...` command in TUTORIAL.md against the
# built executables, exactly as written, so the tutorial cannot drift
# from the code. Wired as `dune build @tutorial-check`.
#
# Usage: tutorial_check.sh TUTORIAL.md rcoe_run.exe bench_main.exe \
#                          quickstart.exe BENCH_baseline.json
set -eu

tutorial=$1
rcoe_run=$2
bench=$3
quickstart=$4
baseline=$5

# `bench baseline-check` reads BENCH_baseline.json from the current
# directory, as the tutorial says to run it from the repository root.
cp "$baseline" BENCH_baseline.json

status=0
grep '^\$ dune exec' "$tutorial" | sed 's/^\$ //' | while IFS= read -r cmd; do
  echo "tutorial-check: $cmd"
  mapped=$(printf '%s' "$cmd" | sed \
    -e "s|dune exec bin/rcoe_run.exe --|$rcoe_run|" \
    -e "s|dune exec bench/main.exe --|$bench|" \
    -e "s|dune exec examples/quickstart.exe|$quickstart|")
  case "$mapped" in
  *"dune exec"*)
    echo "tutorial-check: unmapped executable in: $cmd" >&2
    exit 1
    ;;
  esac
  sh -c "$mapped" >/dev/null
done || status=$?

if [ "$status" -ne 0 ]; then
  echo "tutorial-check: FAILED" >&2
  exit "$status"
fi
echo "tutorial-check: ok"
