(* Error masking (paper Section IV): a TMR system detects a fault in one
   replica by a signature-vote mismatch, runs the distributed voting
   algorithm (paper Listing 5) to agree on the faulty replica, and
   downgrades to DMR — removing the faulty replica and, when it was the
   primary, re-electing a primary, re-routing interrupts, and patching
   the DMA page mappings — all without interrupting service.

     dune exec examples/fault_masking_demo.exe *)

open Rcoe_core
open Rcoe_workloads
open Rcoe_harness

let demo ~corrupt_primary =
  let target = if corrupt_primary then 0 else 2 in
  Printf.printf "=== corrupting replica %d (%s) mid-run ===\n" target
    (if corrupt_primary then "the PRIMARY" else "a follower");
  let config =
    {
      (Runner.config_for ~mode:Config.LC ~nreplicas:3
         ~arch:Rcoe_machine.Arch.X86 ~with_net:true ())
      with
      Config.masking = true;
    }
  in
  let injected = ref false in
  let inject sys =
    if (not !injected) && System.tick_count sys > 25 then begin
      injected := true;
      Printf.printf "  [cycle %d] flipping a bit in replica %d's signature \
                     accumulator\n"
        (System.now sys) target;
      Rcoe_machine.Mem.flip_bit
        (System.machine sys).Rcoe_machine.Machine.mem
        ~addr:(System.sig_base sys target + 1)
        ~bit:9
    end
  in
  let res =
    Kv_run.run ~config ~workload:Ycsb.A ~records:120 ~operations:1_200 ~inject
      ()
  in
  let sys = res.Kv_run.sys in
  (match System.downgrades sys with
  | [] -> Printf.printf "  no downgrade happened (unexpected!)\n"
  | (cycle, faulty, cost) :: _ ->
      Printf.printf
        "  [cycle %d] vote convicted replica %d; downgraded TMR -> DMR in \
         %.0f us%s\n"
        cycle faulty
        (Rcoe_machine.Arch.cycles_to_us
           (Rcoe_machine.Arch.profile_of Rcoe_machine.Arch.X86)
           cost)
        (if faulty = 0 then
           Printf.sprintf " (new primary: replica %d, interrupts re-routed, \
                           DMA pages patched)"
             (System.primary sys)
         else ""));
  let c = res.Kv_run.counters in
  Printf.printf "  service: %d/%d ops completed, %d corrupt, %d errors%s\n"
    c.Ycsb.completed c.Ycsb.issued c.Ycsb.corrupted c.Ycsb.client_errors
    (match System.halted sys with
    | None -> " — no interruption"
    | Some h -> "  HALTED: " ^ System.halt_reason_to_string h);
  Printf.printf "  live replicas at the end: %s\n\n"
    (String.concat ", " (List.map string_of_int (System.live sys)))

let () =
  Printf.printf
    "TMR key-value service with error masking enabled.\n\
     A bit flip lands in one replica's state-signature accumulator; the\n\
     next vote detects the mismatch and masks the fault.\n\n";
  demo ~corrupt_primary:false;
  demo ~corrupt_primary:true
