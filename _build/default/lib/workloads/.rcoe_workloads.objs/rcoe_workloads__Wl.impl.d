lib/workloads/wl.ml: Asm Char Program Rcoe_isa Rcoe_kernel Rcoe_machine Reg
