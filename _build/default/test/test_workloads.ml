open Rcoe_core
open Rcoe_workloads
open Rcoe_harness

let x86 = Rcoe_machine.Arch.X86
let arm = Rcoe_machine.Arch.Arm

let base_cfg ?(arch = x86) () =
  Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch ()

let expect_finished name (r : Runner.result) =
  (match r.Runner.halted with
  | Some h -> Alcotest.failf "%s halted: %s" name (System.halt_reason_to_string h)
  | None -> ());
  Alcotest.(check bool) (name ^ " finished") true r.Runner.finished

let test_dhrystone_base () =
  let program = Dhrystone.program ~loops:300 ~branch_count:false () in
  expect_finished "dhrystone"
    (Runner.run_program ~config:(base_cfg ()) ~program ())

let test_whetstone_base () =
  let program = Whetstone.program ~loops:10 ~branch_count:false () in
  expect_finished "whetstone"
    (Runner.run_program ~config:(base_cfg ()) ~program ())

let test_membw_base () =
  let program = Membw.program ~buffer_words:4096 ~reps:2 ~branch_count:false () in
  expect_finished "membw" (Runner.run_program ~config:(base_cfg ()) ~program ())

let test_membw_copies_data () =
  (* The copy must actually move the bytes: check dst = src afterwards. *)
  let program = Membw.program ~buffer_words:512 ~reps:1 ~branch_count:false () in
  let r = Runner.run_program ~config:(base_cfg ()) ~program () in
  expect_finished "membw" r;
  let k = System.kernel r.Runner.sys 0 in
  let src = Rcoe_isa.Program.data_addr program "src" in
  let dst = Rcoe_isa.Program.data_addr program "dst" in
  for i = 0 to 511 do
    Alcotest.(check int) "copied word"
      (Rcoe_kernel.Kernel.read_user k ~va:(src + i))
      (Rcoe_kernel.Kernel.read_user k ~va:(dst + i))
  done

let test_md5_isa_correct () =
  (* The simulated md5sum must compute real MD5: every iteration prints
     '.', never 'X'. This pins the ISA implementation to RFC 1321. *)
  let program =
    Md5sum.program ~message_words:64 ~iters:2 ~seed:3 ~branch_count:false ()
  in
  let r = Runner.run_program ~config:(base_cfg ()) ~program () in
  expect_finished "md5sum" r;
  Alcotest.(check string) "digests correct" ".." (System.output r.Runner.sys 0)

let test_md5_isa_correct_arm_counted () =
  let program =
    Md5sum.program ~message_words:32 ~iters:1 ~seed:5 ~branch_count:true ()
  in
  let r =
    Runner.run_program ~config:(base_cfg ~arch:arm ()) ~program ()
  in
  expect_finished "md5sum-arm" r;
  Alcotest.(check string) "digests correct" "." (System.output r.Runner.sys 0)

let read_counter (sys : System.t) program rid =
  let va = Rcoe_isa.Program.data_addr program Datarace.counter_label in
  Rcoe_kernel.Kernel.read_user (System.kernel sys rid) ~va

let run_datarace ~mode ~locked ~seed =
  let cfg =
    Runner.config_for ~mode ~nreplicas:2 ~arch:x86 ~seed ~tick_interval:1_500 ()
  in
  let program = Datarace.program ~threads:8 ~iters:150 ~locked ~branch_count:false () in
  let r = Runner.run_program ~config:cfg ~program () in
  (r, program)

let test_datarace_lc_diverges () =
  (* Under LC, preemptions land at different instructions per replica, so
     the racy counter diverges "with high probability" (paper V-A1). *)
  let diverged = ref 0 in
  for seed = 1 to 5 do
    let r, program = run_datarace ~mode:Config.LC ~locked:false ~seed in
    if r.Runner.halted = None && r.Runner.finished then begin
      let c0 = read_counter r.Runner.sys program 0 in
      let c1 = read_counter r.Runner.sys program 1 in
      if c0 <> c1 then incr diverged
    end
    else incr diverged (* divergence detected earlier is divergence too *)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "LC diverged in %d/5 runs" !diverged)
    true (!diverged >= 3)

let test_datarace_cc_never_diverges () =
  (* Under CC, replicas preempt at identical instructions: identical
     (even if "wrong") counters, 5/5 runs. *)
  for seed = 1 to 5 do
    let r, program = run_datarace ~mode:Config.CC ~locked:false ~seed in
    expect_finished "datarace-cc" r;
    let c0 = read_counter r.Runner.sys program 0 in
    let c1 = read_counter r.Runner.sys program 1 in
    Alcotest.(check int) "replicas agree" c0 c1
  done

let test_datarace_locked_deterministic () =
  (* With kernel-mediated atomics the count is exact under any mode. *)
  let r, program = run_datarace ~mode:Config.LC ~locked:true ~seed:2 in
  expect_finished "datarace-locked" r;
  let c0 = read_counter r.Runner.sys program 0 in
  Alcotest.(check int) "exact count" (8 * 150) c0;
  Alcotest.(check int) "replicas agree" c0 (read_counter r.Runner.sys program 1)

let test_splash_kernels_run () =
  List.iter
    (fun name ->
      let program = Splash.program name ~scale:0 ~branch_count:false () in
      let r = Runner.run_program ~config:(base_cfg ()) ~program () in
      expect_finished ("splash:" ^ name) r)
    Splash.names

let splash_result program sys =
  let va = Rcoe_isa.Program.data_addr program Splash.result_label in
  List.init 2 (fun i -> Rcoe_kernel.Kernel.read_user (System.kernel sys 0) ~va:(va + i))

let test_splash_nproc2_matches_nproc1 () =
  List.iter
    (fun name ->
      let run nproc =
        let program = Splash.program name ~scale:1 ~nproc ~branch_count:false () in
        let r = Runner.run_program ~config:(base_cfg ()) ~program () in
        expect_finished (Printf.sprintf "%s np%d" name nproc) r;
        splash_result program r.Runner.sys
      in
      Alcotest.(check (list int)) (name ^ " np2 = np1") (run 1) (run 2))
    Splash.mt_kernels

let test_splash_nproc2_under_cc_vm () =
  (* Multithreaded guests are exactly what LC cannot support and CC can
     (paper Section I) — the two-worker kernels must run replicated in a
     VM under CC. *)
  List.iter
    (fun name ->
      let program = Splash.program name ~scale:0 ~nproc:2 ~branch_count:false () in
      let cfg =
        Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~vm:true ()
      in
      let r = Runner.run_program ~config:cfg ~program () in
      expect_finished (name ^ " np2 cc-vm") r)
    Splash.mt_kernels

let test_splash_nproc2_rejected_for_serial_kernels () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Splash.program "cholesky" ~nproc:2 ~branch_count:false ());
       false
     with Invalid_argument _ -> true)

let kv_cfg ~mode ~n = Runner.config_for ~mode ~nreplicas:n ~arch:x86 ~with_net:true ()

let test_kv_base_ycsb_a () =
  let res =
    Kv_run.run ~config:(kv_cfg ~mode:Config.Base ~n:1) ~workload:Ycsb.A
      ~records:60 ~operations:120 ()
  in
  (match System.halted res.Kv_run.sys with
  | Some h -> Alcotest.failf "kv halted: %s" (System.halt_reason_to_string h)
  | None -> ());
  let c = res.Kv_run.counters in
  Alcotest.(check bool) "no stall" false res.Kv_run.stalled;
  Alcotest.(check int) "all ops answered" c.Ycsb.issued c.Ycsb.completed;
  Alcotest.(check int) "no corruption" 0 c.Ycsb.corrupted;
  Alcotest.(check int) "no client errors" 0 c.Ycsb.client_errors;
  Alcotest.(check int) "no not-found" 0 c.Ycsb.not_found;
  Alcotest.(check bool) "throughput positive" true (res.Kv_run.kops_per_sec > 0.0)

let test_kv_lc_dmr () =
  let res =
    Kv_run.run ~config:(kv_cfg ~mode:Config.LC ~n:2) ~workload:Ycsb.A
      ~records:40 ~operations:80 ()
  in
  (match System.halted res.Kv_run.sys with
  | Some h -> Alcotest.failf "kv halted: %s" (System.halt_reason_to_string h)
  | None -> ());
  let c = res.Kv_run.counters in
  Alcotest.(check int) "all ops answered" c.Ycsb.issued c.Ycsb.completed;
  Alcotest.(check int) "no corruption" 0 c.Ycsb.corrupted;
  Alcotest.(check int) "no not-found" 0 c.Ycsb.not_found

let test_kv_cc_dmr () =
  let res =
    Kv_run.run ~config:(kv_cfg ~mode:Config.CC ~n:2) ~workload:Ycsb.A
      ~records:30 ~operations:60 ()
  in
  (match System.halted res.Kv_run.sys with
  | Some h -> Alcotest.failf "kv halted: %s" (System.halt_reason_to_string h)
  | None -> ());
  let c = res.Kv_run.counters in
  Alcotest.(check int) "all ops answered" c.Ycsb.issued c.Ycsb.completed;
  Alcotest.(check int) "no corruption" 0 c.Ycsb.corrupted

let test_kv_workload_scan () =
  let res =
    Kv_run.run ~config:(kv_cfg ~mode:Config.Base ~n:1) ~workload:Ycsb.E
      ~records:50 ~operations:60 ()
  in
  let c = res.Kv_run.counters in
  Alcotest.(check int) "all ops answered" c.Ycsb.issued c.Ycsb.completed;
  Alcotest.(check int) "no errors" 0 c.Ycsb.client_errors

let suite =
  [
    Alcotest.test_case "dhrystone base" `Quick test_dhrystone_base;
    Alcotest.test_case "whetstone base" `Quick test_whetstone_base;
    Alcotest.test_case "membw base" `Quick test_membw_base;
    Alcotest.test_case "membw copies data" `Quick test_membw_copies_data;
    Alcotest.test_case "md5 on ISA matches RFC1321" `Quick test_md5_isa_correct;
    Alcotest.test_case "md5 on ISA (arm, branch-counted)" `Quick
      test_md5_isa_correct_arm_counted;
    Alcotest.test_case "datarace: LC diverges" `Slow test_datarace_lc_diverges;
    Alcotest.test_case "datarace: CC never diverges" `Slow
      test_datarace_cc_never_diverges;
    Alcotest.test_case "datarace: locked is exact" `Quick
      test_datarace_locked_deterministic;
    Alcotest.test_case "all 14 splash kernels run" `Slow test_splash_kernels_run;
    Alcotest.test_case "splash NPROC=2 matches NPROC=1" `Slow
      test_splash_nproc2_matches_nproc1;
    Alcotest.test_case "splash NPROC=2 under CC in a VM" `Slow
      test_splash_nproc2_under_cc_vm;
    Alcotest.test_case "NPROC=2 rejected for serial kernels" `Quick
      test_splash_nproc2_rejected_for_serial_kernels;
    Alcotest.test_case "kv base YCSB-A" `Quick test_kv_base_ycsb_a;
    Alcotest.test_case "kv LC-D YCSB-A" `Slow test_kv_lc_dmr;
    Alcotest.test_case "kv CC-D YCSB-A" `Slow test_kv_cc_dmr;
    Alcotest.test_case "kv YCSB-E scans" `Quick test_kv_workload_scan;
  ]
