(* The replay-based detection engine (RepTFD-style; see
   [Config.detection]).

   The primary runs *unreplicated*, at near-Base speed, under the
   sequential engine's stepping rules (quiescent bursts included). Every
   [replay_chunk_ticks] preemption ticks it cuts a chunk: a delta
   checkpoint into the ring, a frozen [cut_state], and the input log
   drained since the previous cut. Closed chunks enter a bounded
   in-flight queue; checker domains concurrently restore each chunk's
   start into a private shadow system, re-execute it — re-injecting the
   logged host inputs at the recorded cycles — and compare the
   end-of-chunk Fletcher signature over the replicated memory.

   Detection is therefore asynchronous: a fault inside chunk [j] is
   discovered when [j]'s verdict is processed, at most
   [replay_queue_depth] chunks after it executed — the paper's
   sync-overhead/detection-latency trade-off, bought with one extra
   core per checker instead of per-sync-point rendezvous. A full
   in-flight queue stalls the primary (host-side [Domain.join]; the
   simulated clock is untouched, so backpressure never perturbs the
   machine's determinism).

   On a mismatch the chunk's pinned start snapshot is made the newest
   ring entry and recovery goes through the existing budgeted
   [try_rollback] escalation path; on top of the memory/kernel rewind
   the engine also restores the outside-SoR state replay froze at the
   cut (device queues, bus credit, jitter RNG), so re-execution re-lives
   the same timeline minus the (un-reinjected) fault. The pipeline then
   resets: in-flight chunks are discarded, the ring is re-seeded with a
   fresh full capture, and the input log restarts — inputs absorbed
   after the rollback point are lost, exactly like frames a rebooting
   NIC drops, and the serving harness's client retransmission recovers
   them. *)

open Rcoe_machine
open Rcoe_kernel
open Sched
module Rng = Rcoe_util.Rng

let shadow_config cfg =
  {
    cfg with
    Config.detection = Config.Lockstep;
    trace = None;
    engine = Config.Sequential;
  }

(* Shadow systems are created lazily (program lint and layout make
   creation too costly per chunk) and pooled: at most
   [replay_checkers] ever exist, each used by one checker domain at a
   time. *)
let get_shadow t rp =
  match rp.rp_shadows with
  | s :: rest ->
      rp.rp_shadows <- rest;
      Some s
  | [] ->
      if rp.rp_shadows_made < t.cfg.Config.replay_checkers then begin
        rp.rp_shadows_made <- rp.rp_shadows_made + 1;
        Some
          (create ~config:(shadow_config t.cfg)
             ~program:(Kernel.program t.replicas.(0).kern))
      end
      else None

(* Re-execute [ch] on [sys] and report whether the end-of-chunk
   signature matches. Runs on a checker domain: it touches only the
   immutable chunk and the private shadow system. Shadow stepping goes
   through [Engine_seq.run], which never overshoots its cycle budget,
   so the shadow lands exactly on each input's cycle and on the chunk
   end — unless the guest finishes or halts early, which (on a clean
   replay) the primary did at the same cycle. *)
let verify_chunk sys (ch : chunk) =
  replay_restore_cut sys ch.ch_start;
  let target = ch.ch_end.cs_cycle in
  let step_to cycle =
    if cycle > now sys && sys.halt = None && not (finished sys) then
      Engine_seq.run sys ~max_cycles:(cycle - now sys)
  in
  let rec drive events =
    match Inputlog.next_at events with
    | Some at when at <= target ->
        step_to at;
        let rest =
          match sys.net with
          | Some nd -> Inputlog.replay_onto nd events ~upto:(now sys)
          | None -> []
        in
        drive rest
    | _ -> step_to target
  in
  drive ch.ch_log;
  replay_region_sig sys = ch.ch_end.cs_sig

(* Hand every queued-but-unassigned chunk to a checker, oldest first,
   while shadows are available. *)
let rec assign_checkers t rp =
  match
    List.find_opt
      (fun i -> match i.if_domain with None -> true | Some _ -> false)
      rp.rp_inflight
  with
  | None -> ()
  | Some inf -> (
      match get_shadow t rp with
      | None -> ()
      | Some sh ->
          let ch = inf.if_chunk in
          inf.if_shadow <- Some sh;
          inf.if_domain <- Some (Domain.spawn (fun () -> verify_chunk sh ch));
          assign_checkers t rp)

let release_shadow rp inf =
  match inf.if_shadow with
  | Some s ->
      rp.rp_shadows <- s :: rp.rp_shadows;
      inf.if_shadow <- None
  | None -> ()

(* Capture the current quiescent point as the next chunk boundary:
   charge the capture stall, push + pin the delta snapshot, freeze the
   cut, close the accumulating chunk into the in-flight queue, and
   enforce the queue bound (blocking on the oldest verdict —
   backpressure). *)
let rec do_cut t rp =
  let ring = rp.rp_ring in
  let r = t.replicas.(0) in
  (* The capture stall must be charged before the cut is frozen: the
     restored start state of the *next* chunk has to contain it, or a
     replay of that chunk would run ahead of the primary's timeline. *)
  let kind =
    if Checkpoint.count ring = 0 then Checkpoint.Full else Checkpoint.Delta
  in
  let snap =
    Checkpoint.capture (mem t) t.lay ~kind ~cycle:(now t)
      ~round_seq:t.round_seq ~ticks:t.ticks ~prim:t.prim
      ~replicas:[ (0, r.kern, r.finished) ]
  in
  Checkpoint.push ring snap;
  Checkpoint.pin ring snap;
  let words = Checkpoint.words snap in
  let skipped = Checkpoint.skipped_words snap in
  let cost = ckpt_copy_cost words in
  charge r cost;
  Metrics.incr t.ms.m_ckpt_taken;
  Metrics.incr ~by:words t.ms.m_ckpt_words_copied;
  Metrics.incr ~by:skipped t.ms.m_ckpt_words_skipped;
  Metrics.observe t.ms.m_ckpt_cost (float_of_int cost);
  Trace.checkpoint t.trace ~words ~skipped ~cost;
  let cut = replay_cut_state t in
  let closed =
    {
      ch_seq = rp.rp_seq;
      ch_start = rp.rp_cut;
      ch_snap = rp.rp_snap;
      ch_log = Inputlog.cut rp.rp_log;
      ch_end = cut;
    }
  in
  rp.rp_cut <- cut;
  rp.rp_snap <- snap;
  rp.rp_seq <- rp.rp_seq + 1;
  (* Schedule relative to the actual cut tick: a cut the quiescence
     guard delayed must not make the next one degenerate. *)
  rp.rp_next_cut <- t.ticks + t.cfg.Config.replay_chunk_ticks;
  rp.rp_inflight <-
    rp.rp_inflight @ [ { if_chunk = closed; if_domain = None; if_shadow = None } ];
  Metrics.incr t.ms.m_replay_chunks;
  Trace.replay_cut t.trace ~seq:closed.ch_seq;
  assign_checkers t rp;
  let infl = List.length rp.rp_inflight in
  if infl > rp.rp_hwm then rp.rp_hwm <- infl;
  (* Checker utilisation, in deterministic simulated terms: a slot with
     no chunk assigned over the coming chunk span is idle capacity. *)
  let busy =
    List.length
      (List.filter
         (fun i -> match i.if_domain with Some _ -> true | None -> false)
         rp.rp_inflight)
  in
  let idle = t.cfg.Config.replay_checkers - min t.cfg.Config.replay_checkers busy in
  rp.rp_idle_cycles <- rp.rp_idle_cycles + (idle * rp.rp_span);
  (* Backpressure: chunk [j]'s verdict is processed no later than the
     cut that closes chunk [j + depth - 1], so a fault is detected at
     most [depth * chunk_span] cycles after it occurred. *)
  while
    List.length rp.rp_inflight > max 0 (t.cfg.Config.replay_queue_depth - 1)
  do
    harvest_oldest t rp
  done

(* Process the oldest in-flight chunk's verdict, blocking until its
   checker finishes. Verdicts are processed strictly in chunk order,
   which is also what keeps the pin/unpin discipline safe: a snapshot
   is unpinned only once every consumer of its chunk is done. *)
and harvest_oldest t rp =
  match rp.rp_inflight with
  | [] -> ()
  | inf :: rest ->
      assign_checkers t rp;
      let ok =
        match inf.if_domain with
        | Some d -> Domain.join d
        | None ->
            (* Unreachable: the oldest chunk has first claim on a
               shadow, and at least one always exists. *)
            invalid_arg "Engine_replay: unassigned chunk at harvest"
      in
      release_shadow rp inf;
      rp.rp_inflight <- rest;
      let ch = inf.if_chunk in
      let lag = now t - ch.ch_end.cs_cycle in
      Metrics.observe t.ms.m_replay_lag (float_of_int lag);
      Trace.replay_verdict t.trace ~seq:ch.ch_seq ~chunk_end:ch.ch_end.cs_cycle
        ~lag ~ok;
      if ok then begin
        Metrics.incr t.ms.m_replay_verified;
        Checkpoint.unpin rp.rp_ring ch.ch_snap;
        (* A verified chunk is forward progress: reset the rollback
           escalation, as a verified lockstep checkpoint would. *)
        t.retries_at_newest <- 0;
        t.escalations <- 0;
        assign_checkers t rp
      end
      else begin
        Metrics.incr t.ms.m_replay_mismatch;
        on_mismatch t rp inf rest
      end

(* A replayed chunk diverged: everything from its start cycle on is
   suspect. Discard the invalid future (in-flight chunks and the
   accumulating one), rewind to the chunk's start through the budgeted
   rollback path, and reset the pipeline. *)
and on_mismatch t rp inf rest =
  log_event t E_mismatch;
  List.iter
    (fun i ->
      (match i.if_domain with Some d -> ignore (Domain.join d) | None -> ());
      release_shadow rp i;
      Checkpoint.unpin rp.rp_ring i.if_chunk.ch_snap)
    rest;
  rp.rp_inflight <- [];
  Checkpoint.unpin rp.rp_ring rp.rp_snap;
  Inputlog.clear rp.rp_log;
  (* Make the mismatched chunk's start the newest ring entry — the
     entries above it all belonged to the discarded future and are
     unpinned now. *)
  let target = inf.if_chunk.ch_snap in
  while
    match Checkpoint.newest rp.rp_ring with
    | Some s -> not (s == target)
    | None -> false
  do
    Checkpoint.drop_newest rp.rp_ring
  done;
  if try_rollback t then begin
    (* [perform_rollback] rewound the replicated cut; additionally
       rewind the outside-SoR state replay froze, so re-execution
       re-lives the chunk's exact timeline (device deliveries and
       timing jitter included) minus the fault. Host inputs recorded
       after the chunk started are gone with the cleared log; the
       serving client's retransmission path redelivers them. *)
    let cs = inf.if_chunk.ch_start in
    let core = Kernel.core t.replicas.(0).kern in
    core.Core.cycles <- cs.cs_cycles;
    core.Core.instret <- cs.cs_instret;
    Rng.assign ~dst:core.Core.jitter ~src:cs.cs_jitter;
    Bus.set_state t.mach.Machine.buses.(0) cs.cs_bus;
    (match (t.net, cs.cs_net) with
    | Some nd, Some sn -> Netdev.restore nd sn
    | _ -> ());
    t.halt <- None;
    (* Pipeline reset: empty the ring and re-seed it with a fresh full
       capture of the rolled-back state, which also re-baselines the
       dirty-page tracking for the next delta. *)
    Checkpoint.unpin rp.rp_ring target;
    while Checkpoint.count rp.rp_ring > 0 do
      Checkpoint.drop_newest rp.rp_ring
    done;
    let r = t.replicas.(0) in
    let snap =
      Checkpoint.capture (mem t) t.lay ~kind:Checkpoint.Full ~cycle:(now t)
        ~round_seq:t.round_seq ~ticks:t.ticks ~prim:t.prim
        ~replicas:[ (0, r.kern, r.finished) ]
    in
    Checkpoint.push rp.rp_ring snap;
    Checkpoint.pin rp.rp_ring snap;
    rp.rp_cut <- replay_cut_state t;
    rp.rp_snap <- snap;
    rp.rp_seq <- rp.rp_seq + 1;
    rp.rp_next_cut <- t.ticks + t.cfg.Config.replay_chunk_ticks
  end
  else if t.halt = None then
    (* Budget exhausted or the ring gave out: persistent fault,
       fail-stop — the lockstep path's verdict for the same state. *)
    halt_system t H_mismatch

(* A cut needs a quiescent primary: the frozen [cut_state] records
   none of the engine's round bookkeeping (an open FT-op rendezvous,
   an in-flight async round), so the shadow restore re-enters at
   [Ph_idle]/[Rs_run] and anything else would diverge. In Base mode
   the primary is idle on almost every cycle; when the tick lands
   mid-rendezvous the cut just waits for the next eligible cycle. *)
let quiescent t =
  (match t.phase with Ph_idle -> true | _ -> false)
  &&
  match t.replicas.(0).state with Rs_run -> true | _ -> false

(* Drain the verification pipeline without waiting for a terminal
   state: close the accumulating chunk (when the primary is at a
   quiescent point — it essentially always is between [run] calls in
   Base mode) and process every outstanding verdict. The serving
   harness calls this through [System.replay_drain] when the client is
   done, so the final report covers every executed chunk; a mismatch
   found here still rolls back (or halts) through the usual path, and
   the caller reads the result off the system state. *)
let drain t =
  match t.rp with
  | None -> ()
  | Some rp ->
      if
        quiescent t
        && (rp.rp_cut.cs_cycle < now t || Inputlog.pending rp.rp_log > 0)
      then do_cut t rp;
      while rp.rp_inflight <> [] do
        harvest_oldest t rp
      done

(* The replay run loop: the sequential engine's loop with chunk cuts at
   tick boundaries, plus a drain of the verification pipeline when the
   run reaches a terminal state. A drain can itself detect a mismatch
   and roll the system back to a live state, in which case execution
   resumes within the same call (budget permitting). *)
let run ?stop t ~max_cycles =
  let rp =
    match t.rp with
    | Some rp -> rp
    | None -> invalid_arg "Engine_replay.run: detection is not Replay"
  in
  let start = now t in
  let continue_ = ref true in
  let again = ref true in
  while !again do
    again := false;
    while
      !continue_ && t.halt = None
      && (not (finished t))
      && now t - start < max_cycles
    do
      if t.ticks >= rp.rp_next_cut && quiescent t then do_cut t rp;
      if t.halt = None && not (finished t) then begin
        let budget = max_cycles - (now t - start) in
        let budget =
          match stop with
          | Some _ -> min budget (128 - (now t land 127))
          | None -> budget
        in
        (match burst_cycles t ~budget with
        | Some _ -> ()
        | None -> classic_cycle t);
        match stop with
        | Some f when now t land 127 = 0 -> if f t then continue_ := false
        | _ -> ()
      end
    done;
    (* Terminal drain: when the guest finished or the system halted,
       close the final (partial) chunk and process every outstanding
       verdict, so no fault escapes in the pipeline's tail. Skipped on
       budget/stop exhaustion — the pipeline keeps flowing across [run]
       calls. *)
    if
      !continue_
      && (finished t || t.halt <> None)
      && (rp.rp_inflight <> []
         || rp.rp_cut.cs_cycle < now t
         || Inputlog.pending rp.rp_log > 0)
    then begin
      do_cut t rp;
      while rp.rp_inflight <> [] do
        harvest_oldest t rp
      done;
      (* A drain-time mismatch rolled the system back to a live state:
         keep executing if this call still has budget. *)
      if
        t.halt = None
        && (not (finished t))
        && now t - start < max_cycles
      then again := true
    end
  done
