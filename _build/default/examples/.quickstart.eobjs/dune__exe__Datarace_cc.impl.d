examples/datarace_cc.ml: Config Datarace List Printf Rcoe_core Rcoe_harness Rcoe_isa Rcoe_kernel Rcoe_machine Rcoe_workloads Runner System
