lib/faults/outcome.mli: Rcoe_core
