type severity = Info | Warning | Error

type verdict = LC_safe | CC_required | Rejected

type finding = {
  f_addr : int option;
  f_rule : string;
  f_severity : severity;
  f_message : string;
}

type report = { verdict : verdict; findings : finding list; cfg : Cfg.t }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let verdict_to_string = function
  | LC_safe -> "LC_safe"
  | CC_required -> "CC_required"
  | Rejected -> "Rejected"

(* --- syntactic scans (subsuming the historical Check module) ---------- *)

let scan p pred =
  let acc = ref [] in
  Array.iteri
    (fun addr i -> if pred i then acc := (addr, i) :: !acc)
    p.Program.code;
  List.rev !acc

let exclusives p =
  scan p (function Instr.Ldex _ | Instr.Stex _ -> true | _ -> false)

let rep_strings p = scan p (function Instr.Rep_movs -> true | _ -> false)

let unresolved_targets p =
  let n = Array.length p.Program.code in
  scan p (fun i ->
      match Instr.target_of i with
      | None -> false
      | Some (Instr.Lbl _) -> true
      | Some (Instr.Abs a) -> a < 0 || a >= n)

(* --- reserved-register check (semantic: reachable paths only) --------- *)

let reserved_register_violations_in cfg =
  let p = cfg.Cfg.program in
  let acc = ref [] in
  Array.iteri
    (fun addr ins ->
      if Cfg.reachable cfg addr then
        match ins with
        | Instr.Cntinc -> ()
        | _ ->
            if
              List.exists
                (Reg.equal Reg.branch_counter)
                (Instr.defs ins @ Instr.uses ins)
            then acc := (addr, ins) :: !acc)
    p.Program.code;
  List.rev !acc

let reserved_register_violations p =
  reserved_register_violations_in (Cfg.build p)

(* --- branch-count verifier -------------------------------------------- *)

(* Every reachable branch must execute its increment: the preceding
   instruction is [Cntinc], no jump lands on the branch itself (which
   would skip the increment — the pass binds labels before the inserted
   [Cntinc], so compiled jumps always target the increment), and no
   thread starts at the branch. *)
let verify_branch_count_in cfg =
  let p = cfg.Cfg.program in
  let code = p.Program.code in
  let n = Array.length code in
  let jumped_to = Array.make (max n 1) false in
  Array.iteri
    (fun j succs ->
      if Cfg.reachable cfg j then
        List.iter
          (fun (k, t) ->
            match k with
            | Cfg.Jump | Cfg.Call | Cfg.Indirect -> jumped_to.(t) <- true
            | Cfg.Fall | Cfg.Retsite -> ())
          succs)
    cfg.Cfg.insn_succs;
  let acc = ref [] in
  Array.iteri
    (fun i ins ->
      if Instr.is_branch ins && Cfg.reachable cfg i then begin
        let counted = i > 0 && code.(i - 1) = Instr.Cntinc in
        let entered_directly = List.mem_assoc i cfg.Cfg.roots in
        if (not counted) || jumped_to.(i) || entered_directly then
          acc := (i, ins) :: !acc
      end)
    code;
  List.rev !acc

let verify_branch_count p = verify_branch_count_in (Cfg.build p)

(* --- stack-balance analysis ------------------------------------------- *)

module Depth = struct
  type t = Bot | D of int | Top

  let equal (a : t) b = a = b

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | D a', D b' -> if a' = b' then D a' else Top
    | _ -> Top
end

module Depth_flow = Dataflow.Make (Depth)

let stack_findings cfg =
  let p = cfg.Cfg.program in
  let code = p.Program.code in
  let n = Array.length code in
  if n = 0 then []
  else begin
    (* Function entries: thread roots plus every reachable call target.
       The analysis is intraprocedural — [Call] edges carry bottom, and
       [Retsite] edges carry the caller's depth across the (assumed
       balanced) callee. *)
    let entries = ref (List.map fst cfg.Cfg.roots) in
    Array.iteri
      (fun i ins ->
        if Cfg.reachable cfg i then
          match ins with
          | Instr.Jal (Instr.Abs a) when a >= 0 && a < n ->
              entries := a :: !entries
          | _ -> ())
      code;
    let entries = List.sort_uniq compare !entries in
    let transfer _ ins d =
      match (ins, d) with
      | Instr.Push _, Depth.D k -> Depth.D (k + 1)
      | Instr.Pop _, Depth.D k -> Depth.D (max 0 (k - 1))
      | _ -> d
    in
    let edge k x =
      match k with
      | Cfg.Call -> Depth.Bot
      | Cfg.Fall | Cfg.Jump | Cfg.Retsite | Cfg.Indirect -> x
    in
    let r =
      Depth_flow.solve ~cfg ~direction:Dataflow.Forward ~init:(Depth.D 0)
        ~bottom:Depth.Bot ~transfer ~edge ~entries ()
    in
    let acc = ref [] in
    let error addr msg =
      acc :=
        { f_addr = Some addr; f_rule = "stack"; f_severity = Error;
          f_message = msg }
        :: !acc
    in
    Array.iteri
      (fun i ins ->
        if Cfg.reachable cfg i then
          match (ins, r.Depth_flow.before.(i)) with
          | Instr.Pop _, Depth.D 0 ->
              error i "stack underflow: pop with an empty frame"
          | (Instr.Pop _ | Instr.Ret), Depth.Top ->
              error i "push/pop depth disagrees between paths into this point"
          | Instr.Ret, Depth.D k when k <> 0 ->
              error i
                (Printf.sprintf "return at non-zero stack depth %d" k)
          | _ -> ())
      code;
    List.rev !acc
  end

(* --- shared-memory race analysis -------------------------------------- *)

(* Per-register constant/region propagation: enough to resolve the
   [la]/[mov #imm] addressing idiom back to the data block it names. *)
module Value = struct
  type v = Vbot | Vconst of int | Vregion of string | Vsp | Vany

  type t = v array (* one slot per integer register *)

  let equal (a : t) b = a = b

  let vjoin a b =
    match (a, b) with
    | Vbot, x | x, Vbot -> x
    | Vconst x, Vconst y when x = y -> Vconst x
    | Vregion x, Vregion y when String.equal x y -> Vregion x
    | Vsp, Vsp -> Vsp
    | _ -> Vany

  let join a b = Array.init Reg.count (fun i -> vjoin a.(i) b.(i))
end

module Value_flow = Dataflow.Make (Value)

let alu_fold op x y =
  let open Instr in
  match op with
  | Add -> Some (x + y)
  | Sub -> Some (x - y)
  | Mul -> Some (x * y)
  | Div -> if y = 0 then None else Some (x / y)
  | Rem -> if y = 0 then None else Some (x mod y)
  | And -> Some (x land y)
  | Or -> Some (x lor y)
  | Xor -> Some (x lxor y)
  | Shl -> Some (x lsl min (abs y) 62)
  | Shr -> Some (x lsr min (abs y) 62)
  | Asr -> Some (x asr min (abs y) 62)

let value_transfer _ ins (env : Value.t) : Value.t =
  let open Value in
  let set r v =
    let e = Array.copy env in
    e.(Reg.index r) <- v;
    e
  in
  let get r = env.(Reg.index r) in
  let operand = function
    | Instr.Reg r -> get r
    | Instr.Imm n -> Vconst n
  in
  match ins with
  | Instr.Mov (rd, o) -> set rd (operand o)
  | Instr.La (rd, l) -> set rd (Vregion l)
  | Instr.Alu (op, rd, rs, o) ->
      let v =
        match (get rs, operand o) with
        | Vconst x, Vconst y -> (
            match alu_fold op x y with Some z -> Vconst z | None -> Vany)
        | Vregion l, Vconst _ when op = Instr.Add || op = Instr.Sub ->
            Vregion l
        | Vconst _, Vregion l when op = Instr.Add -> Vregion l
        | Vsp, Vconst _ when op = Instr.Add || op = Instr.Sub -> Vsp
        | _ -> Vany
      in
      set rd v
  | Instr.Push _ -> env
  | Instr.Pop rd -> if Reg.equal rd Reg.sp then env else set rd Vany
  | _ ->
      List.fold_left
        (fun e r ->
          if Reg.equal r Reg.sp then e
          else begin
            let e = Array.copy e in
            e.(Reg.index r) <- Vany;
            e
          end)
        env (Instr.defs ins)

let value_edge k (env : Value.t) : Value.t =
  match k with
  | Cfg.Retsite ->
      (* A call may clobber anything but the (balanced) stack pointer. *)
      Array.mapi
        (fun i v ->
          match v with
          | Value.Vbot -> Value.Vbot
          | _ -> if i = Reg.index Reg.sp then v else Value.Vany)
        env
  | Cfg.Fall | Cfg.Jump | Cfg.Call | Cfg.Indirect -> env

(* Exclusive-monitor lockset: must-held between [Ldex] and [Stex]. *)
module Held = struct
  type t = HBot | HHeld | HNot

  let equal (a : t) b = a = b

  let join a b =
    match (a, b) with
    | HBot, x | x, HBot -> x
    | HHeld, HHeld -> HHeld
    | _ -> HNot
end

module Held_flow = Dataflow.Make (Held)

let held_transfer _ ins d =
  match ins with
  | Instr.Ldex _ -> Held.HHeld
  | Instr.Stex _ -> Held.HNot
  | Instr.Syscall _ -> Held.HNot (* kernel entry clears the monitor *)
  | _ -> d

let held_edge k d =
  match k with
  | Cfg.Retsite -> ( match d with Held.HBot -> Held.HBot | _ -> Held.HNot)
  | Cfg.Fall | Cfg.Jump | Cfg.Call | Cfg.Indirect -> d

type region = Rblock of string | Rstack | Routside | Runknown

let region_of_const p addr =
  match
    List.find_opt
      (fun b ->
        addr >= b.Program.block_addr
        && addr < b.Program.block_addr + Array.length b.Program.block_init)
      p.Program.data
  with
  | Some b -> Rblock b.Program.block_label
  | None -> Routside

let region_of_value p v off =
  match v with
  | Value.Vconst n -> region_of_const p (n + off)
  | Value.Vregion l -> Rblock l
  | Value.Vsp -> Rstack
  | Value.Vany | Value.Vbot -> Runknown

(* Plain (non-atomic) data accesses of one instruction, as
   [(region, is_write)]. Atomic instructions protect themselves; stack
   traffic is thread-private by construction. *)
let plain_accesses p (env : Value.t) ins =
  let v r = env.(Reg.index r) in
  match ins with
  | Instr.Ld (_, rs, off) -> [ (region_of_value p (v rs) off, false) ]
  | Instr.St (rbase, _, off) -> [ (region_of_value p (v rbase) off, true) ]
  | Instr.Fld (_, rs, off) -> [ (region_of_value p (v rs) off, false) ]
  | Instr.Fst (_, rbase, off) -> [ (region_of_value p (v rbase) off, true) ]
  | Instr.Rep_movs ->
      [
        (region_of_value p (v Reg.R1) 0, false);
        (region_of_value p (v Reg.R0) 0, true);
      ]
  | _ -> []

let race_findings cfg =
  let p = cfg.Cfg.program in
  let code = p.Program.code in
  let roots = cfg.Cfg.roots in
  let total_instances = List.fold_left (fun s (_, m) -> s + m) 0 roots in
  if total_instances <= 1 then []
  else begin
    let values =
      Value_flow.solve ~cfg ~direction:Dataflow.Forward
        ~init:
          (Array.init Reg.count (fun i ->
               if i = Reg.index Reg.sp then Value.Vsp else Value.Vany))
        ~bottom:(Array.make Reg.count Value.Vbot)
        ~transfer:value_transfer ~edge:value_edge ()
    in
    let held =
      Held_flow.solve ~cfg ~direction:Dataflow.Forward ~init:Held.HNot
        ~bottom:Held.HBot ~transfer:held_transfer ~edge:held_edge ()
    in
    (* Unprotected plain accesses, by address. *)
    let accesses = ref [] in
    Array.iteri
      (fun i ins ->
        if Cfg.reachable cfg i && held.Held_flow.before.(i) <> Held.HHeld
        then
          List.iter
            (fun (region, write) ->
              match region with
              | Rstack | Routside -> ()
              | Rblock _ | Runknown ->
                  accesses := (i, region, write) :: !accesses)
            (plain_accesses p values.Value_flow.before.(i) ins))
      code;
    let accesses = List.rev !accesses in
    (* Attribute each access to the thread roots it is reachable from. *)
    let root_reach =
      List.map (fun (a, m) -> (a, m, Cfg.reachable_from cfg a)) roots
    in
    let regions =
      List.sort_uniq compare
        (List.filter_map
           (fun (_, r, _) ->
             match r with Rblock l -> Some (Some l) | _ -> None)
           accesses)
    in
    let regions =
      if List.exists (fun (_, r, _) -> r = Runknown) accesses then
        regions @ [ None ]
      else regions
    in
    let findings = ref [] in
    List.iter
      (fun region ->
        let matches r =
          match (region, r) with
          | Some l, Rblock l' -> String.equal l l'
          | Some _, Runknown -> true (* unknown aliases every block *)
          | None, Runknown -> true
          | _ -> false
        in
        let offending = ref [] in
        let writers = ref 0 and touchers = ref 0 in
        List.iter
          (fun (root, mult, reach) ->
            let writes = ref false and touches = ref false in
            List.iter
              (fun (i, r, w) ->
                if matches r && reach.(i) then begin
                  touches := true;
                  if w then writes := true;
                  if not (List.mem i !offending) then
                    offending := i :: !offending
                end)
              accesses;
            ignore root;
            if !writes then writers := !writers + mult;
            if !touches then touchers := !touchers + mult)
          root_reach;
        if !writers >= 1 && !touchers >= 2 then begin
          let name =
            match region with Some l -> l | None -> "(unknown address)"
          in
          let addrs = List.sort compare !offending in
          let addr_str =
            String.concat ", " (List.map string_of_int addrs)
          in
          findings :=
            {
              f_addr = (match addrs with a :: _ -> Some a | [] -> None);
              f_rule = "data-race";
              f_severity = Warning;
              f_message =
                Printf.sprintf
                  "possible data race on %s: unprotected access at [%s] \
                   with %d concurrent thread instance(s); LC replicas may \
                   diverge"
                  name addr_str !touchers;
            }
            :: !findings
        end)
      regions;
    List.rev !findings
  end

(* --- the full pass ---------------------------------------------------- *)

let analyze ?exit_syscalls ?spawn_syscall (p : Program.t) =
  let cfg = Cfg.build ?exit_syscalls ?spawn_syscall p in
  let code = p.Program.code in
  let n = Array.length code in
  let findings = ref [] in
  let add ?addr rule sev msg =
    findings :=
      { f_addr = addr; f_rule = rule; f_severity = sev; f_message = msg }
      :: !findings
  in
  if n = 0 then add "entry" Error "empty program: no code"
  else if p.Program.entry < 0 || p.Program.entry >= n then
    add "entry" Error
      (Printf.sprintf "entry %d outside code [0, %d)" p.Program.entry n);
  (* Unfollowable control flow: fatal when reachable, noise when dead. *)
  List.iter
    (fun (addr, issue) ->
      let msg = Cfg.issue_to_string issue in
      if Cfg.reachable cfg addr then add ~addr "cfg" Error msg
      else add ~addr "cfg" Info ("in dead code: " ^ msg))
    cfg.Cfg.issues;
  List.iter
    (fun (first, last) ->
      add ~addr:first "dead-code" Info
        (Printf.sprintf "unreachable code at [%d..%d] (%d instructions)"
           first last
           (last - first + 1)))
    (Cfg.dead_code cfg);
  List.iter
    (fun addr ->
      add ~addr "spawn" Warning
        "spawn with unresolvable entry register: assuming any label; \
         analysis is conservative")
    cfg.Cfg.unknown_spawns;
  findings := List.rev_append (List.rev (stack_findings cfg)) !findings;
  if p.Program.branch_counted then begin
    List.iter
      (fun (addr, ins) ->
        add ~addr "reserved-reg" Error
          (Printf.sprintf
             "reachable instruction touches the reserved branch counter: %s"
             (Instr.to_string ins)))
      (reserved_register_violations_in cfg);
    List.iter
      (fun (addr, ins) ->
        add ~addr "branch-count" Error
          (Printf.sprintf "branch without an immediate preceding cntinc: %s"
             (Instr.to_string ins)))
      (verify_branch_count_in cfg)
  end;
  (match exclusives p with
  | [] -> ()
  | ((addr, _) :: _ as xs) ->
      add ~addr "exclusives" Info
        (Printf.sprintf
           "%d exclusive-monitor instruction(s) at [%s]: CC-RCoE requires \
            Sys_atomic instead"
           (List.length xs)
           (String.concat ", "
              (List.map (fun (a, _) -> string_of_int a) xs))));
  (match rep_strings p with
  | [] -> ()
  | ((addr, _) :: _ as xs) ->
      add ~addr "rep-string" Info
        (Printf.sprintf
           "%d rep-string instruction(s) at [%s]: CC catch-up must step \
            past them (paper III-D)"
           (List.length xs)
           (String.concat ", "
              (List.map (fun (a, _) -> string_of_int a) xs))));
  findings := List.rev_append (List.rev (race_findings cfg)) !findings;
  let findings = List.rev !findings in
  (* Several passes can rediscover the same issue (e.g. one racy address
     reached from two thread roots); report each diagnostic once. *)
  let findings =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun f ->
        if Hashtbl.mem seen f then false
        else begin
          Hashtbl.add seen f ();
          true
        end)
      findings
  in
  let rank f =
    match f.f_severity with Error -> 0 | Warning -> 1 | Info -> 2
  in
  (* Deterministic order: severity, then instruction address (findings
     without one lead their severity class), discovery order breaking
     the remaining ties — so reports diff cleanly across runs and code
     shifts move a finding, not the whole list. *)
  let key f =
    (rank f, match f.f_addr with None -> (0, 0) | Some a -> (1, a))
  in
  let findings =
    List.stable_sort (fun a b -> compare (key a) (key b)) findings
  in
  let verdict =
    if List.exists (fun f -> f.f_severity = Error) findings then Rejected
    else if
      List.exists
        (fun f -> f.f_severity = Warning && String.equal f.f_rule "data-race")
        findings
    then CC_required
    else LC_safe
  in
  { verdict; findings; cfg }
