lib/machine/machine.mli: Arch Bus Core Device Mem
