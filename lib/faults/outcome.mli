(** Classification of fault-injection trial outcomes into the paper's
    taxonomy (Tables VII, VIII and IX).

    "Controlled" errors are those the replication machinery reports
    before corrupt state escapes (signature mismatches, barrier
    timeouts, masked downgrades, and — with exception-handler barriers —
    kernel aborts). "Uncontrolled" errors reach the outside world:
    client-visible corruption or errors, crashes of the unreplicated
    base system, and kernel exceptions on configurations without
    exception barriers. *)

type t =
  | No_error
  | Ycsb_corruption  (** Client CRC mismatch on returned data. *)
  | Ycsb_error  (** Client-visible failure (no response / bad reply). *)
  | User_mem_fault
  | User_other_fault
  | Kernel_exception
  | Barrier_timeout
  | Signature_mismatch
  | Masked  (** TMR downgrade; service continued. *)
  | Recovered
      (** Checkpoint rollback re-execution; the run finished with
          correct output after at least one detection was recovered
          instead of halting. *)
  | Ingress_dropped
      (** Ingress-checksum verification dropped at least one corrupted
          DMA frame and the client's retransmission re-delivered it; the
          run finished clean. The drop-and-redeliver analogue of
          [Recovered] for corruption outside the sphere of
          replication — rollback cannot rewind a DMA buffer that no
          checkpoint covers. *)
  | System_reboot  (** Overclocking: catastrophic multi-component burst. *)

val to_string : t -> string

val controlled : t -> bool
(** [No_error], [Masked], [Recovered] and [Ingress_dropped] count as
    controlled. *)

val classify :
  sys:Rcoe_core.System.t ->
  client_corrupt:bool ->
  client_error:bool ->
  t
(** Precedence mirrors the paper's accounting: detection by the
    replication machinery (mismatch / timeout / masking) wins over
    client-observed effects; on the base system the client and fault
    observations are all there is. *)

type tally

val tally_create : unit -> tally
val tally_add : tally -> t -> unit
val tally_get : tally -> t -> int
val tally_total : tally -> int
val tally_controlled : tally -> int
val tally_uncontrolled : tally -> int
val tally_rows : tally -> (string * int) list
(** All outcome counts in display order. *)
