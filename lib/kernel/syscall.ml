let sys_exit = 0
let sys_yield = 1
let sys_spawn = 2
let sys_putchar = 3
let sys_atomic = 4
let sys_get_info = 5
let sys_join = 6
let sys_ticks = 7
let sys_wait_irq = 8
let sys_code_patch = 9
let sys_ft_add_trace = 16
let sys_ft_mem_access = 17
let sys_ft_mem_rep = 18
let sys_input_wait = 19

let name n =
  if n = sys_exit then "exit"
  else if n = sys_yield then "yield"
  else if n = sys_spawn then "spawn"
  else if n = sys_putchar then "putchar"
  else if n = sys_atomic then "atomic"
  else if n = sys_get_info then "get_info"
  else if n = sys_join then "join"
  else if n = sys_ticks then "ticks"
  else if n = sys_wait_irq then "wait_irq"
  else if n = sys_code_patch then "code_patch"
  else if n = sys_ft_add_trace then "ft_add_trace"
  else if n = sys_ft_mem_access then "ft_mem_access"
  else if n = sys_ft_mem_rep then "ft_mem_rep"
  else if n = sys_input_wait then "input_wait"
  else Printf.sprintf "unknown(%d)" n

let is_ft n =
  n = sys_ft_add_trace || n = sys_ft_mem_access || n = sys_ft_mem_rep
  || n = sys_input_wait

let arg_count n =
  if n = sys_exit || n = sys_yield || n = sys_ticks || n = sys_input_wait then 0
  else if n = sys_putchar || n = sys_get_info || n = sys_join
          || n = sys_wait_irq then 1
  else if n = sys_spawn || n = sys_ft_add_trace then 2
  else if n = sys_ft_mem_rep then 3
  else if n = sys_atomic || n = sys_ft_mem_access || n = sys_code_patch then 4
  else 4
