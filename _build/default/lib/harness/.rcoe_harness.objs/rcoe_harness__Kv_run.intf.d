lib/harness/kv_run.mli: Rcoe_core Rcoe_workloads
