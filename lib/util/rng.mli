(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the simulator flows through explicitly-seeded [Rng.t]
    values so that every experiment is reproducible bit-for-bit from its
    seed, as the paper does when it "ensures the same sequence of
    pseudo-random numbers for all configurations". *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each subsystem (core jitter, fault injector, workload)
    its own stream so adding draws to one does not perturb the others. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val assign : dst:t -> src:t -> unit
(** [assign ~dst ~src] overwrites [dst]'s state with [src]'s, giving
    [dst] the same future stream in place — what a replay checker uses
    to rewind a core's embedded jitter stream to a chunk boundary. *)

val next : t -> int
(** [next t] is a uniform 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bits64 : t -> int64
(** Raw 64-bit output of the underlying SplitMix64 step. *)
