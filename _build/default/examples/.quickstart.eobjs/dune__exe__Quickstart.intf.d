examples/quickstart.mli:
