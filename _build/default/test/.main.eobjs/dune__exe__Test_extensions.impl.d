test/test_extensions.ml: Alcotest Array Config Core List Machine Md5sum Mem Printf Rcoe_core Rcoe_isa Rcoe_kernel Rcoe_machine Rcoe_workloads System Whetstone
