(* Seq/Par determinism of the serving harness at scale: a 10k-request
   YCSB run through the NIC must produce bit-for-bit identical request
   outcome logs, end-state signatures, and cycle counts on both
   engines — including a run that injects a fault and recovers through
   rollback, where the harness additionally exercises client-side
   retransmission over the DMA hole. Kept in its own binary because
   each pair costs tens of seconds; the fast serve checks live in the
   main suite ([test_serve.ml]). *)

open Rcoe_core
open Rcoe_harness
open Rcoe_workloads
module Arch = Rcoe_machine.Arch

(* Chunk 16000 amortises the parallel engine's per-[System.run] domain
   spawn/join over 40x more cycles than the CLI default; determinism
   only needs the two engines to share the same chunk. *)
let chunk = 16_000
let records = 128
let requests = 10_000

let base_config ~checkpoint_every () =
  {
    (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:Arch.X86
       ~with_net:true ~seed:5 ())
    with
    Config.checkpoint_every;
    max_rollbacks = 3;
  }

let parallel_config cfg =
  let cfg =
    { cfg with Config.engine = Config.Parallel; exception_barriers = true }
  in
  let program =
    Loadgen.program_for ~config:cfg ~workload:Ycsb.A ~records ~requests
  in
  let elig = Eligibility.check ~config:cfg ~program in
  Alcotest.(check bool) "kv server parallel-eligible" true
    (Eligibility.eligible elig);
  (match Config.parallel_ineligibility ~net_ok:true cfg with
  | None -> ()
  | Some reason -> Alcotest.failf "parallel rejected: %s" reason);
  cfg

let serve ?fault config =
  Loadgen.run ~config ~workload:Ycsb.A ~records ~requests ~chunk ?fault ()

let check_pair ~label (seq : Loadgen.result) (par : Loadgen.result) =
  Alcotest.(check bool) (label ^ ": seq finished") false seq.Loadgen.stalled;
  Alcotest.(check bool) (label ^ ": par finished") false par.Loadgen.stalled;
  Alcotest.(check int)
    (label ^ ": all answered")
    seq.Loadgen.issued seq.Loadgen.completed;
  Alcotest.(check int)
    (label ^ ": outcome digest")
    seq.Loadgen.outcome_digest par.Loadgen.outcome_digest;
  Alcotest.(check bool)
    (label ^ ": outcome logs identical")
    true
    (seq.Loadgen.outcome_log = par.Loadgen.outcome_log);
  Alcotest.(check bool)
    (label ^ ": end-state signatures identical")
    true
    (seq.Loadgen.end_sigs = par.Loadgen.end_sigs);
  Alcotest.(check int)
    (label ^ ": cycle counts identical")
    (System.now seq.Loadgen.sys)
    (System.now par.Loadgen.sys);
  Alcotest.(check int)
    (label ^ ": rollback counts identical")
    seq.Loadgen.rollbacks par.Loadgen.rollbacks

let test_identity_10k () =
  let base = base_config ~checkpoint_every:0 () in
  let seq = serve base in
  let par = serve (parallel_config base) in
  Alcotest.(check int) "10k run-phase ops" requests seq.Loadgen.run_ops;
  check_pair ~label:"healthy" seq par

let test_identity_10k_fault_rollback () =
  let fault =
    { Loadgen.fault_after = 2_000; fault_bit = 7;
      fault_target = Loadgen.Sig_word }
  in
  let base = base_config ~checkpoint_every:8 () in
  let seq = serve ~fault base in
  let par = serve ~fault (parallel_config base) in
  Alcotest.(check bool) "fault rolled back" true (seq.Loadgen.rollbacks >= 1);
  Alcotest.(check int) "retransmissions identical" seq.Loadgen.retransmits
    par.Loadgen.retransmits;
  Alcotest.(check int) "dup responses identical" seq.Loadgen.dup_responses
    par.Loadgen.dup_responses;
  check_pair ~label:"fault" seq par

(* The ingress drop-and-redeliver lane is pure simulated state (the
   NACK and re-consume happen at FT_Mem_Rep rendezvous, the
   retransmission at a chunk boundary), so a run that drops a corrupted
   DMA frame must still be bit-for-bit identical across engines. *)
let test_identity_ingress_drop () =
  let fault =
    { Loadgen.fault_after = 2_000; fault_bit = 4;
      fault_target = Loadgen.Dma_frame }
  in
  let base =
    { (base_config ~checkpoint_every:0 ()) with Config.ingress_check = true }
  in
  let seq = serve ~fault base in
  let par = serve ~fault (parallel_config base) in
  Alcotest.(check bool) "frame dropped at ingress" true
    (seq.Loadgen.ingress_dropped >= 1);
  Alcotest.(check int) "no client corruption" 0
    seq.Loadgen.counters.Ycsb.corrupted;
  Alcotest.(check int) "ingress drops identical" seq.Loadgen.ingress_dropped
    par.Loadgen.ingress_dropped;
  Alcotest.(check int) "redeliveries identical" seq.Loadgen.redelivered
    par.Loadgen.redelivered;
  check_pair ~label:"ingress" seq par

let () =
  Alcotest.run "serve-determinism"
    [
      ( "serve-det",
        [
          Alcotest.test_case "seq = par, 10k requests" `Slow test_identity_10k;
          Alcotest.test_case "seq = par, 10k requests + fault/rollback" `Slow
            test_identity_10k_fault_rollback;
          Alcotest.test_case "seq = par, 10k requests + ingress drop" `Slow
            test_identity_ingress_drop;
        ] );
    ]
