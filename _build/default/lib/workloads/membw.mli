(** Memory-bandwidth stress benchmark (paper Table V).

    [memcpy()] between two page-aligned buffers, repeated [reps] times
    per run, implemented with the rep-string instruction so each word
    moved costs two bus transfers. Replicas executing this concurrently
    contend on the shared memory bus: on the x86 profile one core already
    saturates the bus, so DMR sees ~50% and TMR ~33% of baseline copy
    throughput; the Arm profile's single core cannot saturate it, so the
    loss is milder. The program publishes a completion stamp and exits;
    throughput = words copied / elapsed cycles. *)

val default_buffer_words : int
val default_reps : int

val program :
  ?buffer_words:int -> ?reps:int -> branch_count:bool -> unit ->
  Rcoe_isa.Program.t

val words_copied : buffer_words:int -> reps:int -> int
