(** The distributed faulty-replica voting algorithm (paper Listing 5).

    Invoked when the published signatures differ. Every live replica
    redundantly executes the algorithm against the signature words in
    the shared region: it counts how many signatures agree with its own
    ([ft_votes]), then nominates a faulty replica ([ft_fault_replica]) —
    itself if its own vote count shows it is the odd one out, otherwise
    the replica with the fewest agreements — and finally all replicas
    cross-check their nominations. Stages are separated by barriers; a
    disagreement between nominations (multiple faulty replicas, corrupted
    checksums, or a fault during voting itself) yields
    [No_consensus], upon which the system halts.

    All reads and writes go through the shared-region words so that
    faults injected *during* the voting window corrupt the vote itself,
    as the paper notes is possible. Works for any number of live
    replicas >= 3. *)

type result =
  | Faulty of int  (** Consensus on the diverging replica's id. *)
  | No_consensus

val run :
  Rcoe_machine.Mem.t -> Rcoe_kernel.Layout.shared -> live:int list -> result
(** [run mem shared ~live] executes the algorithm for every replica in
    [live] (redundantly, as the paper does), using the signatures
    previously published at [cksum_base] (3 words per replica) and
    scratch arrays at [votes_base] / [fault_base].
    Raises [Invalid_argument] if [live] has fewer than 3 replicas. *)

val publish_signature :
  Rcoe_machine.Mem.t -> Rcoe_kernel.Layout.shared -> rid:int ->
  int * int * int -> unit
(** Copy a replica's signature into the shared checksum array. *)

val read_signature :
  Rcoe_machine.Mem.t -> Rcoe_kernel.Layout.shared -> rid:int ->
  int * int * int

val signatures_agree :
  Rcoe_machine.Mem.t -> Rcoe_kernel.Layout.shared -> live:int list -> bool
