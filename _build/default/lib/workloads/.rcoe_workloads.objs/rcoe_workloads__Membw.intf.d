lib/workloads/membw.mli: Rcoe_isa
