open Rcoe_isa
open Rcoe_workloads

(* --- Helpers ---------------------------------------------------------- *)

let verdict = Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Lint.verdict_to_string v))
    ( = )

let analyze = Lint.analyze  (* defaults match the kernel ABI: 0 = exit, 2 = spawn *)

(* A bare program record, bypassing the assembler so we can construct
   shapes the assembler would refuse to emit. *)
let raw ?(entry = 0) ?(branch_counted = false) code =
  {
    Program.name = "t";
    code;
    data = [];
    data_words = 0;
    entry;
    code_labels = [ ("main", 0) ];
    branch_counted;
  }

let shipped ~branch_count =
  [
    ("dhrystone", Dhrystone.program ~branch_count ());
    ("whetstone", Whetstone.program ~branch_count ());
    ("membw", Membw.program ~branch_count ());
    ("md5sum", Md5sum.program ~branch_count ());
    ("datarace", Datarace.program ~branch_count ());
    ("datarace-locked", Datarace.program ~locked:true ~branch_count ());
    ("kvstore", Kvstore.program ~branch_count ());
  ]
  @ List.map
      (fun k -> ("splash:" ^ k, Splash.program k ~branch_count ()))
      Splash.names

(* --- Golden verdicts for the shipped workloads ------------------------ *)

let test_datarace_requires_cc () =
  let r = analyze (Datarace.program ~branch_count:false ()) in
  Alcotest.check verdict "datarace" Lint.CC_required r.Lint.verdict;
  (* The warning must name the contended region and the offending
     instruction addresses — that is what an operator acts on. *)
  let warn =
    List.find
      (fun f -> f.Lint.f_rule = "data-race")
      r.Lint.findings
  in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names region" true
    (contains warn.Lint.f_message Datarace.counter_label)

let test_datarace_locked_is_lc_safe () =
  List.iter
    (fun branch_count ->
      let r = analyze (Datarace.program ~locked:true ~branch_count ()) in
      Alcotest.check verdict "datarace-locked" Lint.LC_safe r.Lint.verdict)
    [ false; true ]

let test_all_workloads_never_rejected () =
  List.iter
    (fun branch_count ->
      List.iter
        (fun (name, p) ->
          let r = analyze p in
          Alcotest.(check bool)
            (Printf.sprintf "%s (counted=%b) not rejected" name branch_count)
            true
            (r.Lint.verdict <> Lint.Rejected))
        (shipped ~branch_count))
    [ false; true ]

let test_only_datarace_requires_cc () =
  List.iter
    (fun (name, p) ->
      let expected =
        if name = "datarace" then Lint.CC_required else Lint.LC_safe
      in
      Alcotest.check verdict name expected
        (analyze p).Lint.verdict)
    (shipped ~branch_count:false)

(* --- Branch-count verifier -------------------------------------------- *)

let test_counted_workloads_pass_verifier () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check int) (name ^ " verifier clean") 0
        (List.length (Lint.verify_branch_count p)))
    (shipped ~branch_count:true)

let remove_reachable_cntinc p =
  (* The verifier only audits live paths, so pick an increment that
     guards a reachable branch (dhrystone's first Cntinc is in a dead
     preamble before the entry point). *)
  let cfg = Cfg.build p in
  let code = Array.copy p.Program.code in
  let n = Array.length code in
  let rec find i =
    if i >= n then Alcotest.fail "no reachable Cntinc"
    else if code.(i) = Instr.Cntinc && Cfg.reachable cfg (i + 1) then i
    else find (i + 1)
  in
  code.(find 0) <- Instr.Nop;
  { p with Program.code }

let test_removed_cntinc_caught () =
  let p = remove_reachable_cntinc (Dhrystone.program ~branch_count:true ()) in
  Alcotest.(check bool) "verifier flags it" true
    (Lint.verify_branch_count p <> []);
  Alcotest.check verdict "analyze rejects" Lint.Rejected
    (analyze p).Lint.verdict

let test_jump_over_cntinc_caught () =
  (* A branch whose increment can be skipped by a direct jump to the
     branch itself — the other invariant of the compiler pass. *)
  let open Instr in
  let p =
    raw ~branch_counted:true
      [|
        Jmp (Abs 3);            (* 0: skips the Cntinc at 2 *)
        Nop;                    (* 1 *)
        Cntinc;                 (* 2 *)
        B (Eq, Reg.R0, Imm 0, Abs 5);  (* 3 *)
        Nop;                    (* 4 *)
        Halt;                   (* 5 *)
      |]
  in
  (* The entry jump needs its own increment too; give it one so only
     the skipped-increment defect remains. *)
  let p = { p with Program.code = Array.append [| Cntinc |]
                       (Array.map
                          (fun i ->
                            match Instr.target_of i with
                            | Some (Abs t) -> Instr.with_target i (Abs (t + 1))
                            | _ -> i)
                          p.Program.code) }
  in
  Alcotest.(check bool) "verifier flags skipped increment" true
    (Lint.verify_branch_count p <> [])

(* --- Rejected reasons, one broken program each ------------------------ *)

let rejects name p =
  Alcotest.check verdict name Lint.Rejected (analyze p).Lint.verdict

let test_reject_negative_target () =
  rejects "negative" (raw [| Instr.Jmp (Instr.Abs (-1)) |])

let test_reject_target_past_end () =
  (* Abs = code length: one past the last instruction — the Harvard
     analogue of jumping into the data segment. *)
  rejects "past end" (raw [| Instr.Jmp (Instr.Abs 1) |])

let test_reject_symbolic_target () =
  rejects "symbolic" (raw [| Instr.Jmp (Instr.Lbl "nowhere") |])

let test_reject_fall_off_end () =
  rejects "off end" (raw [| Instr.Nop |])

let test_reject_entry_out_of_range () =
  rejects "entry" (raw ~entry:7 [| Instr.Halt |])

let test_reject_pop_underflow () =
  rejects "underflow" (raw [| Instr.Pop Reg.R1; Instr.Halt |])

let test_reject_unbalanced_return () =
  rejects "unbalanced" (raw [| Instr.Push Reg.R1; Instr.Ret |])

let test_reject_path_dependent_depth () =
  (* Two paths reach the join at different stack depths. *)
  let open Instr in
  rejects "join depth"
    (raw
       [|
         B (Eq, Reg.R0, Imm 0, Abs 2);  (* 0 *)
         Push Reg.R1;                   (* 1 *)
         Pop Reg.R2;                    (* 2: depth 0 or 1 *)
         Halt;                          (* 3 *)
       |])

let test_dead_code_demoted_to_info () =
  (* The same breakage behind a Halt must not reject the program —
     whetstone ships a dead trailing jump and has to stay LC_safe. *)
  let open Instr in
  let r = analyze (raw [| Halt; Jmp (Abs 99) |]) in
  Alcotest.check verdict "dead breakage tolerated" Lint.LC_safe r.Lint.verdict;
  Alcotest.(check bool) "still surfaced as info" true
    (List.exists (fun f -> f.Lint.f_severity = Lint.Info) r.Lint.findings)

(* --- CFG and dataflow building blocks --------------------------------- *)

let test_cfg_dead_code_runs () =
  let open Instr in
  let cfg = Cfg.build (raw [| Jmp (Abs 3); Nop; Nop; Halt |]) in
  Alcotest.(check (list (pair int int))) "dead run" [ (1, 2) ]
    (Cfg.dead_code cfg)

let test_cfg_datarace_roots () =
  (* datarace spawns two workers: the worker entry carries multiplicity
     two alongside the main thread. *)
  let p = Datarace.program ~branch_count:false () in
  let cfg =
    Cfg.build ~exit_syscalls:[ Rcoe_kernel.Syscall.sys_exit ]
      ~spawn_syscall:Rcoe_kernel.Syscall.sys_spawn p
  in
  let mult_ge2 = List.filter (fun (_, m) -> m >= 2) cfg.Cfg.roots in
  Alcotest.(check int) "one multi-instance root" 1 (List.length mult_ge2);
  Alcotest.(check bool) "main is a root" true
    (List.mem_assoc p.Program.entry cfg.Cfg.roots)

let test_liveness () =
  let open Instr in
  let p =
    raw
      [|
        Mov (Reg.R1, Imm 7);                 (* 0 *)
        Alu (Add, Reg.R2, Reg.R1, Imm 1);    (* 1: reads r1 *)
        Halt;                                (* 2 *)
      |]
  in
  let live = Dataflow.live_in (Cfg.build p) in
  Alcotest.(check bool) "r1 live into 1" true
    (List.exists (Reg.equal Reg.R1) live.(1));
  Alcotest.(check bool) "r1 dead into 0" false
    (List.exists (Reg.equal Reg.R1) live.(0));
  Alcotest.(check bool) "r2 dead into 1" false
    (List.exists (Reg.equal Reg.R2) live.(1))

let suite =
  [
    Alcotest.test_case "datarace requires CC" `Quick test_datarace_requires_cc;
    Alcotest.test_case "locked datarace is LC-safe" `Quick
      test_datarace_locked_is_lc_safe;
    Alcotest.test_case "no shipped workload rejected" `Slow
      test_all_workloads_never_rejected;
    Alcotest.test_case "only datarace needs CC" `Quick
      test_only_datarace_requires_cc;
    Alcotest.test_case "counted workloads pass verifier" `Quick
      test_counted_workloads_pass_verifier;
    Alcotest.test_case "removed cntinc caught" `Quick test_removed_cntinc_caught;
    Alcotest.test_case "jump over cntinc caught" `Quick
      test_jump_over_cntinc_caught;
    Alcotest.test_case "reject negative target" `Quick test_reject_negative_target;
    Alcotest.test_case "reject target past end" `Quick test_reject_target_past_end;
    Alcotest.test_case "reject symbolic target" `Quick test_reject_symbolic_target;
    Alcotest.test_case "reject fall off end" `Quick test_reject_fall_off_end;
    Alcotest.test_case "reject bad entry" `Quick test_reject_entry_out_of_range;
    Alcotest.test_case "reject pop underflow" `Quick test_reject_pop_underflow;
    Alcotest.test_case "reject unbalanced return" `Quick
      test_reject_unbalanced_return;
    Alcotest.test_case "reject join depth mismatch" `Quick
      test_reject_path_dependent_depth;
    Alcotest.test_case "dead breakage demoted" `Quick
      test_dead_code_demoted_to_info;
    Alcotest.test_case "cfg dead-code runs" `Quick test_cfg_dead_code_runs;
    Alcotest.test_case "cfg datarace roots" `Quick test_cfg_datarace_roots;
    Alcotest.test_case "liveness" `Quick test_liveness;
  ]
