(** Dhrystone-like integer benchmark.

    Mirrors what matters about Dhrystone 2.1 for the paper's evaluation
    (Table II): CPU-bound integer code with a small working set that fits
    in cache, no system calls in the hot path, and — crucially — a main
    body that is *one long loop* (a few hundred instructions per
    iteration). A synchronisation point is therefore rarely inside a
    tight loop, which is why CC-RCoE's overhead on Dhrystone is only a
    few percent while Whetstone's tight loops suffer ~20%.

    Each iteration performs record assignments, array indexing, string
    comparison over a small buffer, and two function calls, then the
    program reports completion through [FT_Add_Trace] of its result block
    and exits. *)

val default_loops : int

val program : ?loops:int -> branch_count:bool -> unit -> Rcoe_isa.Program.t

val result_label : string
(** Data block holding the final accumulator (for output checks). *)
