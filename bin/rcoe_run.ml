(* rcoe_run: command-line front end.

   - `rcoe_run list` — available workloads
   - `rcoe_run run -w dhrystone -m lc -n 3 -a arm` — run one workload
     under a replication configuration and report timing and stats
   - `rcoe_run kv -m cc -n 2 --workload A` — run the KV/YCSB benchmark
   - `rcoe_run disasm -w whetstone` — show the assembled program
   - `rcoe_run lint [-w datarace]` — static replication-safety analysis:
     LC_safe / CC_required / Rejected per workload *)

open Cmdliner
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness

let workload_names =
  [ "dhrystone"; "whetstone"; "membw"; "datarace"; "datarace-locked"; "md5sum" ]
  @ List.map (fun k -> "splash:" ^ k) Splash.names

let program_of_name name ~branch_count =
  match name with
  | "dhrystone" -> Dhrystone.program ~branch_count ()
  | "whetstone" -> Whetstone.program ~branch_count ()
  | "membw" -> Membw.program ~branch_count ()
  | "datarace" -> Datarace.program ~branch_count ()
  | "datarace-locked" -> Datarace.program ~locked:true ~branch_count ()
  | "md5sum" -> Md5sum.program ~branch_count ()
  | other ->
      let prefix = "splash:" in
      let plen = String.length prefix in
      if String.length other > plen && String.sub other 0 plen = prefix then
        Splash.program (String.sub other plen (String.length other - plen))
          ~branch_count ()
      else
        invalid_arg
          (Printf.sprintf "unknown workload %s (try `rcoe_run list`)" other)

(* The lint subcommand also covers the KV server program (the `kv`
   subcommand's guest, driven by the host-side YCSB generator). *)
let lintable_names = workload_names @ [ "kvstore" ]

let lintable_program name ~branch_count =
  if String.equal name "kvstore" then Kvstore.program ~branch_count ()
  else program_of_name name ~branch_count

let analyze_program p =
  Rcoe_isa.Lint.analyze
    ~exit_syscalls:[ Rcoe_kernel.Syscall.sys_exit ]
    ~spawn_syscall:Rcoe_kernel.Syscall.sys_spawn p

(* --- common options --------------------------------------------------- *)

let mode_arg =
  let mode_conv = Arg.enum [ ("base", Config.Base); ("lc", Config.LC); ("cc", Config.CC) ] in
  Arg.(value & opt mode_conv Config.Base & info [ "m"; "mode" ] ~doc:"base | lc | cc")

let replicas_arg =
  Arg.(value & opt int 1 & info [ "n"; "replicas" ] ~doc:"replica count (1/2/3)")

let arch_arg =
  let arch_conv =
    Arg.enum [ ("x86", Rcoe_machine.Arch.X86); ("arm", Rcoe_machine.Arch.Arm) ]
  in
  Arg.(value & opt arch_conv Rcoe_machine.Arch.X86 & info [ "a"; "arch" ] ~doc:"x86 | arm")

let vm_arg = Arg.(value & flag & info [ "vm" ] ~doc:"run as a virtual-machine guest")

let level_arg =
  let level_conv =
    Arg.enum
      [ ("N", Config.Sync_none); ("A", Config.Sync_args); ("S", Config.Sync_vote) ]
  in
  Arg.(value & opt level_conv Config.Sync_args & info [ "level" ] ~doc:"sync level N | A | S")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"simulation seed")

let fast_catchup_arg =
  Arg.(value & flag
       & info [ "fast-catchup" ]
           ~doc:"PMU-assisted CC catch-up (the paper's Section VI proposal)")

let checkpoint_every_arg =
  Arg.(value & opt int 0
       & info [ "checkpoint-every" ]
           ~doc:"capture a verified checkpoint every N successful sync \
                 rounds and roll back to it instead of halting on a \
                 detected divergence (0 disables recovery)")

let max_rollbacks_arg =
  Arg.(value & opt int 3
       & info [ "max-rollbacks" ]
           ~doc:"rollback budget before a persistent fault fail-stops")

let checkpoint_mode_arg =
  let ckpt_mode_conv =
    Arg.enum
      [ ("full", Config.Full); ("incremental", Config.Incremental) ]
  in
  Arg.(value & opt ckpt_mode_conv Config.Incremental
       & info [ "checkpoint-mode" ]
           ~doc:"full | incremental: copy whole partitions at every \
                 capture, or only the pages dirtied since the previous \
                 one (restores are bit-for-bit identical)")

let parallel_arg =
  Arg.(value & flag
       & info [ "parallel" ]
           ~doc:"execute replicas on separate host domains between sync \
                 points (bit-for-bit identical to the sequential engine; \
                 implies exception barriers under replication)")

let exec_backend_arg =
  let backend_conv =
    Arg.enum [ ("interp", Config.Interp); ("blocks", Config.Blocks) ]
  in
  Arg.(value & opt backend_conv Config.Interp
       & info [ "exec-backend" ]
           ~doc:"interp | blocks: decode every instruction every cycle \
                 (the oracle), or pre-decode each code page once into \
                 closures (bit-for-bit and cycle-for-cycle identical, \
                 just faster)")

let detection_arg =
  let det_conv =
    Arg.enum [ ("lockstep", Config.Lockstep); ("replay", Config.Replay) ]
  in
  Arg.(value & opt det_conv Config.Lockstep
       & info [ "detection" ]
           ~doc:"lockstep: replicas execute in near-lockstep and vote \
                 signatures at sync points (the default); replay: an \
                 unreplicated primary runs ahead at near-Base speed while \
                 checker domains re-execute input-logged chunks from \
                 pinned checkpoints and compare end-of-chunk signatures \
                 asynchronously (forces mode base, -n 1, the sequential \
                 engine; recovery rolls back to the mismatching chunk's \
                 start)")

let replay_chunk_ticks_arg =
  Arg.(value & opt int 1
       & info [ "replay-chunk-ticks" ]
           ~doc:"replay chunk length in scheduler ticks — the \
                 overhead-vs-lag dial: longer chunks amortise the \
                 per-cut capture stall, shorter ones tighten the \
                 detection-lag bound (chunk span x queue depth)")

let replay_queue_depth_arg =
  Arg.(value & opt int 4
       & info [ "replay-queue-depth" ]
           ~doc:"bound on in-flight unverified chunks; a full queue \
                 stalls the primary (backpressure, never drop)")

let replay_checkers_arg =
  Arg.(value & opt int 2
       & info [ "replay-checkers" ]
           ~doc:"checker domains replaying chunks concurrently")

(* Rewrite a configuration for replay detection: the primary is an
   unreplicated Base-mode system on the sequential engine (validation
   enforces all three), and the round-cadence checkpoint ring is owned
   by the chunk cuts. *)
let apply_detection ~detection ~replay_chunk_ticks ~replay_queue_depth
    ~replay_checkers config =
  if detection <> Config.Replay then config
  else begin
    if config.Config.mode <> Config.Base || config.Config.nreplicas > 1 then
      Printf.eprintf
        "detection:  replay runs an unreplicated primary; forcing mode \
         base, -n 1\n";
    {
      config with
      Config.detection = Config.Replay;
      mode = Config.Base;
      nreplicas = 1;
      engine = Config.Sequential;
      checkpoint_every = 0;
      replay_chunk_ticks;
      replay_queue_depth;
      replay_checkers;
      max_rollbacks = max 1 config.Config.max_rollbacks;
    }
  end

let reject_parallel_under_replay ~detection ~parallel =
  if detection = Config.Replay && parallel then begin
    Printf.eprintf
      "parallel:   rejected: replay detection owns the checker domains \
       (the primary itself is sequential)\n";
    exit 1
  end

let print_replay_summary sys =
  let c name =
    match Rcoe_obs.Metrics.find_counter (System.metrics sys) name with
    | Some c -> Rcoe_obs.Metrics.count c
    | None -> 0
  in
  Printf.printf
    "replay:     %d chunks, %d verified, %d mismatches, %d rollbacks\n"
    (c "replay.chunks")
    (c "replay.chunks_verified")
    (c "replay.mismatches")
    (List.length (System.rollbacks sys))

(* Switch a configuration to the parallel engine, or explain — in the
   style of a lint finding — why this configuration cannot hold the
   engine's determinism contract, and exit non-zero. Networked
   configurations are eligible only with a footprint proof over the
   actual guest [program]: pass the one the run will assemble and the
   analyzer's verdict (with instruction-address provenance on
   rejection) decides. *)
let apply_engine ?program ~parallel config =
  if not parallel then config
  else
    let config =
      {
        config with
        Config.engine = Config.Parallel;
        exception_barriers =
          config.Config.exception_barriers
          || config.Config.mode <> Config.Base;
      }
    in
    let elig =
      match program with
      | Some p when config.Config.with_net ->
          Some (Eligibility.check ~config ~program:p)
      | _ -> None
    in
    let net_ok =
      match elig with Some e -> Eligibility.eligible e | None -> false
    in
    match Config.parallel_ineligibility ~net_ok config with
    | None -> config
    | Some reason ->
        Printf.eprintf "parallel:   rejected: %s\n" reason;
        (match elig with
        | Some e when not (Eligibility.eligible e) ->
            List.iter
              (fun d ->
                Printf.eprintf "parallel:     %s\n" d.Eligibility.d_message)
              (Eligibility.diags e)
        | _ -> ());
        exit 1

let mk_config ?(fast_catchup = false) ?(masking = false) ?(checkpoint_every = 0)
    ?(checkpoint_mode = Config.Incremental) ?(max_rollbacks = 3)
    ?(exec_backend = Config.Interp) mode n arch vm level seed ~with_net =
  {
    (Runner.config_for ~mode ~nreplicas:n ~arch ~vm ~sync_level:level ~seed
       ~with_net ())
    with
    Config.fast_catchup;
    masking;
    checkpoint_every;
    checkpoint_mode;
    max_rollbacks;
    exec_backend;
  }

(* --- commands ---------------------------------------------------------- *)

let list_cmd =
  let doc = "list available workloads" in
  let run () =
    List.iter print_endline workload_names;
    print_endline "kv (via the `kv` subcommand)"
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "run a workload under a replication configuration" in
  let wl_arg =
    Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")
  in
  let strict_lint_arg =
    Arg.(value & flag
         & info [ "strict-lint" ]
             ~doc:"refuse to start if the static analyzer rejects the \
                   program or finds races under LC")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"print the full metrics registry (counters and \
                   histograms) after the run")
  in
  let run wl mode n arch vm level seed fast_catchup checkpoint_every
      checkpoint_mode max_rollbacks parallel exec_backend detection
      replay_chunk_ticks replay_queue_depth replay_checkers strict_lint
      metrics =
    reject_parallel_under_replay ~detection ~parallel;
    let branch_count = Wl.branch_count_for arch in
    let program = program_of_name wl ~branch_count in
    let config =
      apply_detection ~detection ~replay_chunk_ticks ~replay_queue_depth
        ~replay_checkers
        (apply_engine ~program ~parallel
           {
             (mk_config ~fast_catchup ~checkpoint_every ~checkpoint_mode
                ~max_rollbacks ~exec_backend mode n arch vm level seed
                ~with_net:false)
             with
             Config.strict_lint;
           })
    in
    let r = Runner.run_program ~config ~program () in
    List.iter
      (fun w -> Printf.printf "lint:       warning: %s\n" w)
      (System.lint_warnings r.Runner.sys);
    (let report = System.lint_report r.Runner.sys in
     if
       report.Rcoe_isa.Lint.verdict = Rcoe_isa.Lint.CC_required
       && config.Config.mode = Config.LC
     then
       Printf.printf
         "lint:       program requires CC; this LC run may silently \
          diverge\n");
    let profile = Rcoe_machine.Arch.profile_of arch in
    Printf.printf "workload:   %s\n" wl;
    Printf.printf "config:     %s on %s%s, level %s\n"
      (Config.replicas_label config)
      (Rcoe_machine.Arch.to_string arch)
      (if vm then " (VM)" else "")
      (Config.sync_level_to_string level);
    Printf.printf "engine:     %s, %s backend\n"
      (Config.engine_to_string config.Config.engine)
      (Config.exec_backend_to_string config.Config.exec_backend);
    Printf.printf "finished:   %b\n" r.Runner.finished;
    (match r.Runner.halted with
    | Some h -> Printf.printf "halted:     %s\n" (System.halt_reason_to_string h)
    | None -> ());
    Printf.printf "cycles:     %d (%.1f us at %d MHz)\n" r.Runner.cycles
      (Rcoe_machine.Arch.cycles_to_us profile r.Runner.cycles)
      profile.Rcoe_machine.Arch.freq_mhz;
    let st = r.Runner.stats in
    Printf.printf
      "sync:       %d rounds, %d ticks, %d votes, %d bp fires, %d FT rounds\n"
      st.System.rounds st.System.ticks_delivered st.System.votes
      st.System.bp_fires st.System.ft_rounds;
    if config.Config.checkpoint_every > 0 then
      Printf.printf "recovery:   %d checkpoints (%s), %d rollbacks\n"
        (System.checkpoints_taken r.Runner.sys)
        (Config.checkpoint_mode_to_string config.Config.checkpoint_mode)
        (List.length (System.rollbacks r.Runner.sys));
    if config.Config.detection = Config.Replay then
      print_replay_summary r.Runner.sys;
    let out = System.output r.Runner.sys 0 in
    if out <> "" then Printf.printf "output:     %S\n" out;
    if metrics then
      Rcoe_util.Table.print
        (Rcoe_obs.Metrics.to_table (System.metrics r.Runner.sys))
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ wl_arg $ mode_arg $ replicas_arg $ arch_arg $ vm_arg
      $ level_arg $ seed_arg $ fast_catchup_arg $ checkpoint_every_arg
      $ checkpoint_mode_arg $ max_rollbacks_arg $ parallel_arg
      $ exec_backend_arg $ detection_arg $ replay_chunk_ticks_arg
      $ replay_queue_depth_arg $ replay_checkers_arg $ strict_lint_arg
      $ metrics_arg)

let kv_cmd =
  let doc = "run the KV server under a YCSB workload" in
  let ycsb_arg =
    Arg.(value & opt string "A" & info [ "workload" ] ~doc:"YCSB workload A-F")
  in
  let records_arg =
    Arg.(value & opt int 200 & info [ "records" ] ~doc:"record count")
  in
  let ops_arg =
    Arg.(value & opt int 1000 & info [ "operations" ] ~doc:"operation count")
  in
  let masking_arg =
    Arg.(value & flag
         & info [ "masking" ]
             ~doc:"enable TMR->DMR error masking (requires -n 3)")
  in
  let run mode n arch level seed wl records operations masking parallel
      exec_backend =
    let base =
      mk_config ~masking ~exec_backend mode n arch false level seed
        ~with_net:true
    in
    let config =
      apply_engine ~parallel
        ~program:(Kv_run.program_for ~config:base ~records ~operations)
        base
    in
    let res =
      Kv_run.run ~config ~workload:(Ycsb.workload_of_string wl) ~records
        ~operations ()
    in
    let c = res.Kv_run.counters in
    Printf.printf "config:      %s on %s, level %s, YCSB-%s\n"
      (Config.replicas_label config)
      (Rcoe_machine.Arch.to_string arch)
      (Config.sync_level_to_string level)
      wl;
    Printf.printf "engine:      %s\n"
      (Config.engine_to_string config.Config.engine);
    (match System.eligibility res.Kv_run.sys with
    | Some e ->
        Printf.printf "analyzer:    %s\n"
          (if Eligibility.eligible e then "parallel-eligible"
           else "parallel-ineligible")
    | None -> ());
    Printf.printf "throughput:  %.1f kops/s (run phase: %d ops, %d cycles)\n"
      res.Kv_run.kops_per_sec res.Kv_run.ops_completed res.Kv_run.elapsed_cycles;
    Printf.printf "client:      %d issued, %d completed, %d corrupted, %d errors\n"
      c.Ycsb.issued c.Ycsb.completed c.Ycsb.corrupted c.Ycsb.client_errors;
    match System.halted res.Kv_run.sys with
    | Some h -> Printf.printf "halted:      %s\n" (System.halt_reason_to_string h)
    | None -> ()
  in
  Cmd.v (Cmd.info "kv" ~doc)
    Term.(
      const run $ mode_arg $ replicas_arg $ arch_arg $ level_arg $ seed_arg
      $ ycsb_arg $ records_arg $ ops_arg $ masking_arg $ parallel_arg
      $ exec_backend_arg)

let trace_cmd =
  let doc =
    "run a workload with cycle-accurate tracing and export a Chrome \
     trace-event JSON (load it at ui.perfetto.dev)"
  in
  let wl_arg =
    Arg.(required & opt (some string) None
         & info [ "w"; "workload" ]
             ~doc:"workload name (also accepts `kvstore` for a short \
                   YCSB run)")
  in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~doc:"output JSON path")
  in
  let capacity_arg =
    Arg.(value & opt int 65536
         & info [ "capacity" ] ~doc:"trace ring capacity (events kept)")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"re-read the exported file and fail unless it parses \
                   and contains trace events")
  in
  let run wl mode n arch vm level seed fast_catchup checkpoint_every
      checkpoint_mode max_rollbacks parallel exec_backend out capacity check =
    (* Replicated modes need at least a DMR pair; bump silently so
       `trace -w whetstone --mode cc` works without an explicit -n. *)
    let n = if mode = Config.Base then max 1 n else max 2 n in
    let with_net = String.equal wl "kvstore" in
    let records = 48 and operations = 96 in
    let base =
      mk_config ~fast_catchup ~checkpoint_every ~checkpoint_mode ~max_rollbacks
        ~exec_backend mode n arch vm level seed ~with_net
    in
    let program =
      if with_net then Kv_run.program_for ~config:base ~records ~operations
      else program_of_name wl ~branch_count:(Wl.branch_count_for arch)
    in
    let config =
      apply_engine ~program ~parallel
        { base with Config.trace = Some { Rcoe_obs.Trace.capacity } }
    in
    let sys =
      if with_net then
        let res = Kv_run.run ~config ~workload:Ycsb.A ~records ~operations () in
        res.Kv_run.sys
      else
        let r = Runner.run_program ~config ~program () in
        r.Runner.sys
    in
    let tr = System.trace sys in
    Rcoe_obs.Export.write_chrome ~path:out tr;
    Printf.printf "workload:   %s\n" wl;
    Printf.printf "config:     %s on %s%s, level %s\n"
      (Config.replicas_label config)
      (Rcoe_machine.Arch.to_string arch)
      (if vm then " (VM)" else "")
      (Config.sync_level_to_string level);
    Printf.printf "trace:      %d events recorded, %d dropped (ring %d)\n"
      (Rcoe_obs.Trace.total tr)
      (Rcoe_obs.Trace.dropped tr)
      (Rcoe_obs.Trace.capacity tr);
    (match System.netdev sys with
    | Some nd ->
        Printf.printf
          "net:        rx_dropped=%d rx_ring_hwm=%d tx_pending_hwm=%d \
           tx_sent=%d\n"
          (Rcoe_machine.Netdev.rx_dropped nd)
          (Rcoe_machine.Netdev.rx_ring_hwm nd)
          (Rcoe_machine.Netdev.tx_pending_hwm nd)
          (Rcoe_machine.Netdev.tx_sent nd)
    | None -> ());
    Printf.printf "wrote:      %s\n" out;
    Rcoe_util.Table.print (Rcoe_obs.Export.summary_table tr);
    if check then begin
      let ic = open_in_bin out in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Rcoe_obs.Json.parse s with
      | Error e ->
          Printf.eprintf "check:      exported JSON is malformed: %s\n" e;
          exit 1
      | Ok j -> (
          match Rcoe_obs.Json.member "traceEvents" j with
          | Some (Rcoe_obs.Json.List (_ :: _ as evs)) ->
              Printf.printf "check:      ok (%d trace events)\n"
                (List.length evs)
          | _ ->
              Printf.eprintf "check:      traceEvents missing or empty\n";
              exit 1)
    end
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ wl_arg $ mode_arg $ replicas_arg $ arch_arg $ vm_arg
      $ level_arg $ seed_arg $ fast_catchup_arg $ checkpoint_every_arg
      $ checkpoint_mode_arg $ max_rollbacks_arg $ parallel_arg
      $ exec_backend_arg $ out_arg $ capacity_arg $ check_arg)

let serve_cmd =
  let doc =
    "serve a KV request stream through the NIC with request-level \
     observability: HDR latency histograms, per-request lifecycle \
     tracing, stall attribution, and an optional fault campaign"
  in
  let ycsb_arg =
    Arg.(value & opt string "A" & info [ "workload" ] ~doc:"YCSB workload A-F")
  in
  let records_arg =
    Arg.(value & opt int 256 & info [ "records" ] ~doc:"record count (load phase)")
  in
  let requests_arg =
    Arg.(value & opt int 10_000
         & info [ "requests" ] ~doc:"run-phase request count")
  in
  let window_arg =
    Arg.(value & opt int 8
         & info [ "window" ] ~doc:"closed-loop outstanding-request window")
  in
  let open_rate_arg =
    Arg.(value & opt int 0
         & info [ "open-interval" ]
             ~doc:"open-loop mode: one arrival every N device-clock \
                   cycles (0 = closed loop)")
  in
  let max_queue_arg =
    Arg.(value & opt int 256
         & info [ "max-queue" ]
             ~doc:"open-loop bound on outstanding requests")
  in
  let fault_arg =
    Arg.(value & flag
         & info [ "fault" ]
             ~doc:"fault campaign: flip a bit mid-run (see --fault-target) \
                   and measure detection latency and recovery stalls \
                   (signature faults enable checkpointing if off)")
  in
  let fault_after_arg =
    Arg.(value & opt int 100
         & info [ "fault-after" ]
             ~doc:"inject after this many completed run-phase requests")
  in
  let fault_bit_arg =
    Arg.(value & opt int 7 & info [ "fault-bit" ] ~doc:"bit index to flip")
  in
  let fault_target_arg =
    let target_conv =
      Arg.enum [ ("sig", Loadgen.Sig_word); ("dma", Loadgen.Dma_frame) ]
    in
    Arg.(value & opt target_conv Loadgen.Sig_word
         & info [ "fault-target" ]
             ~doc:"sig: replica 1's signature word (inside the SoR; \
                   detected by voting, repaired by rollback); dma: a \
                   value word of an in-flight RX PUT frame (outside the \
                   SoR; only the ingress-checksum path can catch it)")
  in
  let ingress_check_arg =
    Arg.(value & flag
         & info [ "ingress-check" ]
             ~doc:"verify each consumed frame against the NIC's \
                   enqueue-time checksum (RX_CSUM) and NACK mismatches \
                   for client retransmission — closes the DMA ingress \
                   hole server-side")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~doc:"write the JSON report here (- for stdout)")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ]
             ~doc:"export a Chrome/Perfetto trace with per-request \
                   tracks to this path")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"run the same serve on both engines and fail unless \
                   the request outcome logs, end-state signatures and \
                   cycle counts are bit-for-bit identical")
  in
  let chunk_arg =
    Arg.(value & opt int 400
         & info [ "chunk" ]
             ~doc:"harness poll granularity in cycles (drain/top-up \
                   period); larger chunks amortise per-call engine \
                   overhead on the parallel engine")
  in
  let run mode n arch level seed wl records requests window open_rate max_queue
      checkpoint_every checkpoint_mode max_rollbacks fault fault_after
      fault_bit fault_target ingress_check parallel exec_backend detection
      replay_chunk_ticks replay_queue_depth replay_checkers json_out
      trace_out check chunk =
    reject_parallel_under_replay ~detection ~parallel;
    if detection = Config.Replay && check then begin
      Printf.eprintf
        "check:      rejected: --check compares the two lockstep engines; \
         for the replay-detection determinism pair use `dune build \
         @replay-diff`\n";
      exit 1
    end;
    let n = if mode = Config.Base then max 1 n else max 2 n in
    let workload = Ycsb.workload_of_string wl in
    let pacing =
      if open_rate > 0 then
        Loadgen.Open { interval = open_rate; max_queue }
      else Loadgen.Closed { window }
    in
    let fault_spec =
      if fault then Some { Loadgen.fault_after; fault_bit; fault_target }
      else None
    in
    (* A signature-fault campaign without recovery would fail-stop at
       detection; default to the recovery-trial cadence. A DMA-frame
       fault needs no checkpoints — rollback cannot repair it anyway;
       the ingress path's drop-and-redeliver lane is the recovery.
       Replay detection cuts its own per-chunk checkpoints, so the
       round-cadence default must stay off there. *)
    let checkpoint_every =
      if
        fault && fault_target = Loadgen.Sig_word && checkpoint_every = 0
        && detection <> Config.Replay
      then 2
      else checkpoint_every
    in
    let base =
      apply_detection ~detection ~replay_chunk_ticks ~replay_queue_depth
        ~replay_checkers
        {
          (mk_config ~checkpoint_every ~checkpoint_mode ~max_rollbacks
             ~exec_backend mode n arch false level seed ~with_net:true)
          with
          Config.ingress_check;
        }
    in
    let serve config =
      Loadgen.run ~config ~workload ~records ~requests ~pacing ~chunk
        ?fault:fault_spec ()
    in
    let print_summary tag (r : Loadgen.result) =
      let e2e = Rcoe_obs.Reqtrace.e2e r.Loadgen.rt in
      Printf.printf
        "%s:%s %.1f kops/s, %d/%d requests, p50=%d p99=%d p99.9=%d max=%d \
         cycles\n"
        tag
        (String.make (max 1 (11 - String.length tag)) ' ')
        r.Loadgen.kops_per_sec r.Loadgen.completed r.Loadgen.issued
        (Rcoe_obs.Hdr.percentile e2e 50.0)
        (Rcoe_obs.Hdr.percentile e2e 99.0)
        (Rcoe_obs.Hdr.percentile e2e 99.9)
        (Rcoe_obs.Hdr.max_value e2e)
    in
    let print_detail (r : Loadgen.result) =
      let attribution = Rcoe_obs.Reqtrace.attribution r.Loadgen.rt in
      let total =
        max 1 (List.assoc "total_cycles" attribution)
      in
      Printf.printf "breakdown:  %s\n"
        (String.concat ", "
           (List.filter_map
              (fun (k, v) ->
                if k = "total_cycles" then None
                else
                  Some
                    (Printf.sprintf "%s %.1f%%" k
                       (100.0 *. float_of_int v /. float_of_int total)))
              attribution));
      (match System.netdev r.Loadgen.sys with
      | Some nd ->
          Printf.printf
            "net:        rx_dropped=%d rx_ring_hwm=%d tx_pending_hwm=%d \
             tx_sent=%d\n"
            (Rcoe_machine.Netdev.rx_dropped nd)
            (Rcoe_machine.Netdev.rx_ring_hwm nd)
            (Rcoe_machine.Netdev.tx_pending_hwm nd)
            (Rcoe_machine.Netdev.tx_sent nd)
      | None -> ());
      let tr = System.trace r.Loadgen.sys in
      Printf.printf "trace:      %d events, %d dropped; open-req hwm %d\n"
        (Rcoe_obs.Trace.total tr)
        (Rcoe_obs.Trace.dropped tr)
        (Rcoe_obs.Reqtrace.open_hwm r.Loadgen.rt);
      if ingress_check || r.Loadgen.ingress_dropped > 0 then begin
        Printf.printf
          "ingress:    checked=%d dropped=%d redelivered=%d retransmits=%d\n"
          r.Loadgen.ingress_checked r.Loadgen.ingress_dropped
          r.Loadgen.redelivered r.Loadgen.retransmits;
        if r.Loadgen.ingress_dropped > 0 then
          Printf.printf "ingress-stall: %s\n"
            (Rcoe_obs.Hdr.summary (Rcoe_obs.Reqtrace.ingress_hdr r.Loadgen.rt))
      end;
      if fault then begin
        let d = Rcoe_obs.Reqtrace.detect_hdr r.Loadgen.rt in
        let s = Rcoe_obs.Reqtrace.stall_hdr r.Loadgen.rt in
        Printf.printf "detect:     %s\n" (Rcoe_obs.Hdr.summary d);
        Printf.printf "stall:      %s\n" (Rcoe_obs.Hdr.summary s);
        Printf.printf "recovery:   %d rollbacks\n" r.Loadgen.rollbacks
      end;
      if base.Config.detection = Config.Replay then
        print_replay_summary r.Loadgen.sys;
      if r.Loadgen.stalled then Printf.printf "stalled:    true\n";
      match System.halted r.Loadgen.sys with
      | Some h ->
          Printf.printf "halted:     %s\n" (System.halt_reason_to_string h)
      | None -> ()
    in
    let emit_artifacts (r : Loadgen.result) ~engine =
      (match json_out with
      | Some "-" ->
          print_endline
            (Rcoe_obs.Json.to_string (Loadgen.report_json r ~engine))
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc
                (Rcoe_obs.Json.to_string (Loadgen.report_json r ~engine)));
          Printf.printf "wrote:      %s\n" path
      | None -> ());
      match trace_out with
      | Some path ->
          Rcoe_obs.Export.write_chrome
            ~extra:(Rcoe_obs.Reqtrace.chrome_events r.Loadgen.rt)
            ~path
            (System.trace r.Loadgen.sys);
          Printf.printf "wrote:      %s\n" path
      | None -> ()
    in
    Printf.printf "config:     %s on %s, level %s, YCSB-%s, %s\n"
      (Config.replicas_label base)
      (Rcoe_machine.Arch.to_string arch)
      (Config.sync_level_to_string level)
      wl
      (match pacing with
      | Loadgen.Closed { window } -> Printf.sprintf "closed window %d" window
      | Loadgen.Open { interval; _ } ->
          Printf.sprintf "open 1/%d cycles" interval);
    if check then begin
      let program =
        Loadgen.program_for ~config:base ~workload ~records ~requests
      in
      let par_cfg = apply_engine ~program ~parallel:true base in
      let seq_res = serve base in
      let par_res = serve par_cfg in
      print_summary "sequential" seq_res;
      print_summary "parallel" par_res;
      print_detail seq_res;
      let fail = ref [] in
      if seq_res.Loadgen.outcome_log <> par_res.Loadgen.outcome_log then
        fail :=
          Printf.sprintf "outcome logs differ (digest %08x vs %08x)"
            seq_res.Loadgen.outcome_digest par_res.Loadgen.outcome_digest
          :: !fail;
      if seq_res.Loadgen.end_sigs <> par_res.Loadgen.end_sigs then
        fail := "end-state signatures differ" :: !fail;
      if
        System.now seq_res.Loadgen.sys <> System.now par_res.Loadgen.sys
      then fail := "cycle counts differ" :: !fail;
      emit_artifacts seq_res ~engine:"sequential";
      match !fail with
      | [] ->
          Printf.printf "check:      ok (%d outcomes identical across engines)\n"
            (List.length seq_res.Loadgen.outcome_log)
      | msgs ->
          List.iter (fun m -> Printf.eprintf "check:      DIVERGED: %s\n" m) msgs;
          exit 1
    end
    else begin
      let config =
        apply_engine
          ~program:(Loadgen.program_for ~config:base ~workload ~records ~requests)
          ~parallel base
      in
      let res = serve config in
      print_summary (Config.engine_to_string config.Config.engine) res;
      print_detail res;
      emit_artifacts res ~engine:(Config.engine_to_string config.Config.engine)
    end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ mode_arg $ replicas_arg $ arch_arg $ level_arg $ seed_arg
      $ ycsb_arg $ records_arg $ requests_arg $ window_arg $ open_rate_arg
      $ max_queue_arg $ checkpoint_every_arg $ checkpoint_mode_arg
      $ max_rollbacks_arg $ fault_arg $ fault_after_arg $ fault_bit_arg
      $ fault_target_arg $ ingress_check_arg $ parallel_arg $ exec_backend_arg
      $ detection_arg $ replay_chunk_ticks_arg $ replay_queue_depth_arg
      $ replay_checkers_arg $ json_arg $ trace_out_arg $ check_arg $ chunk_arg)

let recover_cmd =
  let doc =
    "run the checkpoint/rollback recovery campaign (DMR halt vs DMR \
     rollback on md5sum)"
  in
  let trials_arg =
    Arg.(value & opt int 8 & info [ "trials" ] ~doc:"trials per table row")
  in
  let ci_arg =
    Arg.(value & flag
         & info [ "ci" ]
             ~doc:"exit non-zero if any trial produced an uncontrolled \
                   outcome (the @faultquick gate)")
  in
  let run trials ci =
    let uncontrolled = Fault_experiments.recovery_table ~trials () in
    (* The DMA-corruption leg: the rollback campaign above covers faults
       inside the SoR; this pair demonstrates the residual outside it is
       silent without the ingress-checksum path and contained with it. *)
    let ingress_fails = Fault_experiments.ingress_quick () in
    if ci then
      if uncontrolled = 0 && ingress_fails = 0 then
        print_endline "faultquick: ok (0 uncontrolled, ingress pair held)"
      else begin
        Printf.eprintf
          "faultquick: %d uncontrolled outcome(s), %d ingress expectation(s) \
           violated\n"
          uncontrolled ingress_fails;
        exit 1
      end
  in
  Cmd.v (Cmd.info "recover" ~doc) Term.(const run $ trials_arg $ ci_arg)

let disasm_cmd =
  let doc = "disassemble a workload program" in
  let wl_arg =
    Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")
  in
  let counted_arg =
    Arg.(value & flag & info [ "branch-count" ] ~doc:"apply the branch-counting pass")
  in
  let run wl counted =
    let program = program_of_name wl ~branch_count:counted in
    Printf.printf "%s: %d instructions, %d data words%s\n\n"
      program.Rcoe_isa.Program.name
      (Rcoe_isa.Program.instruction_count program)
      program.Rcoe_isa.Program.data_words
      (if counted then " (branch-counted)" else "");
    print_string (Rcoe_isa.Program.disassemble program)
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ wl_arg $ counted_arg)

(* Parallel-eligibility verdicts for the lint front end: every workload
   is judged as the guest of a networked configuration under each
   coupling mode — exactly what decides whether `--parallel` would
   admit it (see [Eligibility]). The CC/LC verdicts can differ because
   the analyzer models the `get_info` driver-mode constant and prunes
   the path the mode never takes. *)
let elig_modes = [ ("cc", Config.CC); ("lc", Config.LC); ("base", Config.Base) ]

let elig_config ?(ingress_check = false) mode =
  {
    Config.default with
    Config.mode;
    nreplicas = (if mode = Config.Base then 1 else 2);
    with_net = true;
    exception_barriers = true;
    ingress_check;
  }

let eligibility_of ?ingress_check program mode =
  Eligibility.check ~config:(elig_config ?ingress_check mode) ~program

let lint_cmd =
  let doc =
    "statically analyze workloads for replication safety (LC_safe / \
     CC_required / Rejected) and parallel-engine eligibility"
  in
  let wl_arg =
    Arg.(value & opt (some string) None
         & info [ "w"; "workload" ] ~doc:"workload name (default: all)")
  in
  let counted_arg =
    Arg.(value & flag
         & info [ "branch-count" ]
             ~doc:"apply the branch-counting pass before analyzing")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"emit the report as machine-readable JSON on stdout")
  in
  let sweep_arg =
    Arg.(value & flag
         & info [ "sweep" ]
             ~doc:"one deterministic line per bundled workload: lint \
                   verdicts plus per-mode parallel-eligibility — the \
                   format the @lint-sweep expectations file pins")
  in
  let verdict_str r =
    Rcoe_isa.Lint.verdict_to_string r.Rcoe_isa.Lint.verdict
  in
  let count sev r =
    List.length
      (List.filter
         (fun f -> f.Rcoe_isa.Lint.f_severity = sev)
         r.Rcoe_isa.Lint.findings)
  in
  let json_of_finding f =
    Rcoe_obs.Json.Obj
      [
        ( "addr",
          match f.Rcoe_isa.Lint.f_addr with
          | Some a -> Rcoe_obs.Json.Int a
          | None -> Rcoe_obs.Json.Null );
        ("rule", Rcoe_obs.Json.String f.Rcoe_isa.Lint.f_rule);
        ( "severity",
          Rcoe_obs.Json.String
            (Rcoe_isa.Lint.severity_to_string f.Rcoe_isa.Lint.f_severity) );
        ("message", Rcoe_obs.Json.String f.Rcoe_isa.Lint.f_message);
      ]
  in
  (* Timing ([host_us]) is deliberately excluded: the JSON report, like
     the sweep lines, is bit-reproducible for a given build. *)
  let json_of_elig e =
    Rcoe_obs.Json.Obj
      [
        ("eligible", Rcoe_obs.Json.Bool (Eligibility.eligible e));
        ("accesses", Rcoe_obs.Json.Int e.Eligibility.n_accesses);
        ("rounds", Rcoe_obs.Json.Int e.Eligibility.rounds);
        ( "diagnostics",
          Rcoe_obs.Json.List
            (List.map
               (fun d ->
                 Rcoe_obs.Json.Obj
                   [
                     ( "addr",
                       match d.Eligibility.d_addr with
                       | Some a -> Rcoe_obs.Json.Int a
                       | None -> Rcoe_obs.Json.Null );
                     ("message", Rcoe_obs.Json.String d.Eligibility.d_message);
                   ])
               (Eligibility.diags e)) );
      ]
  in
  let json_of_workload name counted =
    let program = lintable_program name ~branch_count:counted in
    let r = analyze_program program in
    ( r,
      Rcoe_obs.Json.Obj
        [
          ("workload", Rcoe_obs.Json.String name);
          ("branch_counted", Rcoe_obs.Json.Bool counted);
          ("verdict", Rcoe_obs.Json.String (verdict_str r));
          ( "findings",
            Rcoe_obs.Json.List
              (List.map json_of_finding r.Rcoe_isa.Lint.findings) );
          ( "parallel_eligibility",
            Rcoe_obs.Json.Obj
              (List.map
                 (fun (label, mode) ->
                   (label, json_of_elig (eligibility_of program mode)))
                 elig_modes) );
        ] )
  in
  let elig_label e =
    if Eligibility.eligible e then "eligible"
    else
      Printf.sprintf "ineligible:%d" (List.length (Eligibility.diags e))
  in
  let lint_one name counted =
    let program = lintable_program name ~branch_count:counted in
    let r = analyze_program program in
    Printf.printf "%s%s: %s\n" name
      (if counted then " (branch-counted)" else "")
      (verdict_str r);
    let roots = r.Rcoe_isa.Lint.cfg.Rcoe_isa.Cfg.roots in
    Printf.printf "thread roots: %s\n\n"
      (String.concat ", "
         (List.map
            (fun (a, m) ->
              Printf.sprintf "%d (x%s)" a
                (if m >= 2 then "2+" else string_of_int m))
            roots));
    (match r.Rcoe_isa.Lint.findings with
    | [] -> print_endline "no findings"
    | fs ->
        let t =
          Rcoe_util.Table.create
            ~headers:[ "addr"; "severity"; "rule"; "finding" ]
        in
        List.iter
          (fun f ->
            Rcoe_util.Table.add_row t
              [
                (match f.Rcoe_isa.Lint.f_addr with
                | Some a -> string_of_int a
                | None -> "-");
                Rcoe_isa.Lint.severity_to_string f.Rcoe_isa.Lint.f_severity;
                f.Rcoe_isa.Lint.f_rule;
                f.Rcoe_isa.Lint.f_message;
              ])
          fs;
        Rcoe_util.Table.print t);
    print_newline ();
    print_endline "parallel eligibility (as a networked guest):";
    List.iter
      (fun (label, mode) ->
        let e = eligibility_of program mode in
        (match e.Eligibility.verdict with
        | Eligibility.Eligible ->
            Printf.printf
              "  %-5s eligible (%d accesses proven device-clean, %d summary \
               rounds)\n"
              (label ^ ":") e.Eligibility.n_accesses e.Eligibility.rounds
        | Eligibility.Ineligible ds ->
            Printf.printf "  %-5s ineligible (%d diagnostic%s)\n" (label ^ ":")
              (List.length ds)
              (if List.length ds = 1 then "" else "s");
            List.iter
              (fun d -> Printf.printf "        %s\n" d.Eligibility.d_message)
              ds))
      elig_modes;
    r.Rcoe_isa.Lint.verdict <> Rcoe_isa.Lint.Rejected
  in
  let lint_all () =
    let t =
      Rcoe_util.Table.create
        ~headers:
          [ "workload"; "verdict"; "counted verdict"; "warnings"; "infos";
            "par-eligible" ]
    in
    let ok = ref true in
    List.iter
      (fun name ->
        let program = lintable_program name ~branch_count:false in
        let plain = analyze_program program in
        let counted = analyze_program (lintable_program name ~branch_count:true) in
        if
          plain.Rcoe_isa.Lint.verdict = Rcoe_isa.Lint.Rejected
          || counted.Rcoe_isa.Lint.verdict = Rcoe_isa.Lint.Rejected
        then ok := false;
        let par =
          List.filter_map
            (fun (label, mode) ->
              if Eligibility.eligible (eligibility_of program mode) then
                Some label
              else None)
            elig_modes
        in
        Rcoe_util.Table.add_row t
          [
            name;
            verdict_str plain;
            verdict_str counted;
            string_of_int (count Rcoe_isa.Lint.Warning plain);
            string_of_int (count Rcoe_isa.Lint.Info plain);
            (if par = [] then "-" else String.concat "," par);
          ])
      lintable_names;
    Rcoe_util.Table.print t;
    !ok
  in
  (* One line per workload, no timing, fixed field order: the format the
     checked-in @lint-sweep expectations file pins, so any verdict drift
     — lint or eligibility — shows up as a diff. *)
  let lint_sweep () =
    let ok = ref true in
    List.iter
      (fun name ->
        let program = lintable_program name ~branch_count:false in
        let plain = analyze_program program in
        let counted = analyze_program (lintable_program name ~branch_count:true) in
        if
          plain.Rcoe_isa.Lint.verdict = Rcoe_isa.Lint.Rejected
          || counted.Rcoe_isa.Lint.verdict = Rcoe_isa.Lint.Rejected
        then ok := false;
        Printf.printf "%s verdict=%s counted=%s warnings=%d infos=%d %s\n" name
          (verdict_str plain) (verdict_str counted)
          (count Rcoe_isa.Lint.Warning plain)
          (count Rcoe_isa.Lint.Info plain)
          (String.concat " "
             (List.map
                (fun (label, mode) ->
                  Printf.sprintf "par.%s=%s" label
                    (elig_label (eligibility_of program mode)))
                elig_modes));
        (* The KV guest is the one workload whose footprint is
           configuration-dependent: the analyzer models the get_info
           ingress flag, so the checksum loop (and its MMIO reads) only
           exists in checked configurations. Pin that verdict too. *)
        if String.equal name "kvstore" then
          Printf.printf
            "%s+ingress verdict=%s counted=%s warnings=%d infos=%d %s\n" name
            (verdict_str plain) (verdict_str counted)
            (count Rcoe_isa.Lint.Warning plain)
            (count Rcoe_isa.Lint.Info plain)
            (String.concat " "
               (List.map
                  (fun (label, mode) ->
                    Printf.sprintf "par.%s=%s" label
                      (elig_label
                         (eligibility_of ~ingress_check:true program mode)))
                  elig_modes)))
      lintable_names;
    !ok
  in
  let lint_json wl counted =
    match wl with
    | Some name ->
        let r, j = json_of_workload name counted in
        print_endline (Rcoe_obs.Json.to_string j);
        r.Rcoe_isa.Lint.verdict <> Rcoe_isa.Lint.Rejected
    | None ->
        let ok = ref true in
        let js =
          List.map
            (fun name ->
              let r, j = json_of_workload name false in
              let counted =
                analyze_program (lintable_program name ~branch_count:true)
              in
              if
                r.Rcoe_isa.Lint.verdict = Rcoe_isa.Lint.Rejected
                || counted.Rcoe_isa.Lint.verdict = Rcoe_isa.Lint.Rejected
              then ok := false;
              match j with
              | Rcoe_obs.Json.Obj fields ->
                  Rcoe_obs.Json.Obj
                    (fields
                    @ [
                        ( "counted_verdict",
                          Rcoe_obs.Json.String (verdict_str counted) );
                      ])
              | other -> other)
            lintable_names
        in
        print_endline
          (Rcoe_obs.Json.to_string
             (Rcoe_obs.Json.Obj [ ("workloads", Rcoe_obs.Json.List js) ]));
        !ok
  in
  let run wl counted json sweep =
    let ok =
      if sweep then lint_sweep ()
      else if json then lint_json wl counted
      else
        match wl with Some name -> lint_one name counted | None -> lint_all ()
    in
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ wl_arg $ counted_arg $ json_arg $ sweep_arg)

let () =
  let doc = "redundant co-execution on a simulated COTS multicore" in
  let info = Cmd.info "rcoe_run" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; kv_cmd; serve_cmd; trace_cmd; recover_cmd; disasm_cmd;
            lint_cmd ]))
