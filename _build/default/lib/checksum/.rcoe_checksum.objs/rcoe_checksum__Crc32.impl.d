lib/checksum/crc32.ml: Array Char Lazy String
