(* Harness-level behaviour: the experiment runner, the KV driver, and the
   table renderer. Also workload determinism guarantees the experiments
   rely on. *)

open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
open Rcoe_util

let x86 = Rcoe_machine.Arch.X86

(* --- Table ------------------------------------------------------------- *)

let test_table_alignment () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "23" ];
  Table.add_separator t;
  Table.add_row t [ "b" ];
  let r = Table.render t in
  let lines = String.split_on_char '\n' r in
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header padded" true
        (String.length header >= String.length "long-name  value")
  | [] -> Alcotest.fail "empty render");
  Alcotest.(check bool) "rows equal width" true
    (List.for_all
       (fun l -> l = "" || String.length l = String.length (List.hd lines))
       lines)

let test_table_rejects_wide_row () =
  let t = Table.create ~headers:[ "one" ] in
  Alcotest.(check bool) "raises" true
    (try Table.add_row t [ "a"; "b" ]; false with Invalid_argument _ -> true)

(* --- Runner ------------------------------------------------------------- *)

let test_runner_standard_configs () =
  let cfgs = Runner.standard_configs ~arch:x86 in
  Alcotest.(check (list string)) "five paper columns"
    [ "Base"; "LC-D"; "LC-T"; "CC-D"; "CC-T" ]
    (List.map fst cfgs);
  List.iter
    (fun (_, c) ->
      match Config.validate c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid standard config: %s" e)
    cfgs

let test_runner_overhead () =
  Alcotest.(check (float 1e-9)) "factor" 1.5
    (Runner.overhead ~base_cycles:100 ~cycles:150);
  Alcotest.(check bool) "nan on zero base" true
    (Float.is_nan (Runner.overhead ~base_cycles:0 ~cycles:5))

let test_runner_max_cycles_bounds () =
  (* An endless program stops at the budget, unfinished. *)
  let a = Rcoe_isa.Asm.create "forever" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.jmp a "main";
  let program = Rcoe_isa.Asm.assemble ~entry:"main" a in
  let r =
    Runner.run_program
      ~config:(Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 ())
      ~program ~max_cycles:30_000 ()
  in
  Alcotest.(check bool) "not finished" false r.Runner.finished;
  Alcotest.(check bool) "stopped near budget" true
    (r.Runner.cycles >= 30_000 && r.Runner.cycles < 40_000)

(* --- Kv_run -------------------------------------------------------------- *)

let kv_cfg mode n =
  Runner.config_for ~mode ~nreplicas:n ~arch:x86 ~with_net:true ()

let test_kv_run_phase_excludes_load () =
  let res =
    Kv_run.run ~config:(kv_cfg Config.Base 1) ~workload:Ycsb.C ~records:50
      ~operations:100 ()
  in
  Alcotest.(check int) "run ops counted" 100 res.Kv_run.ops_completed;
  Alcotest.(check int) "total = load + run" 150 res.Kv_run.counters.Ycsb.completed

let test_kv_deterministic () =
  let go () =
    let res =
      Kv_run.run ~config:(kv_cfg Config.LC 2) ~workload:Ycsb.A ~records:30
        ~operations:60 ()
    in
    (res.Kv_run.elapsed_cycles, res.Kv_run.ops_completed)
  in
  Alcotest.(check (pair int int)) "bit-identical" (go ()) (go ())

let test_kv_wedged_nic_stalls () =
  let wedged = ref false in
  let res =
    Kv_run.run ~config:(kv_cfg Config.Base 1) ~workload:Ycsb.A ~records:20
      ~operations:200 ~stall_limit:100_000
      ~inject:(fun sys ->
        if (not !wedged) && System.now sys > 50_000 then begin
          wedged := true;
          match System.netdev sys with
          | Some nd -> Rcoe_machine.Netdev.set_wedged nd true
          | None -> ()
        end)
      ()
  in
  Alcotest.(check bool) "stall detected" true res.Kv_run.stalled

let test_kv_stop_on_error () =
  (* Corrupt the DMA RX area continuously: the client sees corruption and
     the run stops early. *)
  let res =
    Kv_run.run ~config:(kv_cfg Config.Base 1) ~workload:Ycsb.A ~records:40
      ~operations:4_000 ~stop_on_error:true
      ~inject:(fun sys ->
        let lay = System.layout sys in
        let mem = (System.machine sys).Rcoe_machine.Machine.mem in
        for i = 0 to 40 do
          Rcoe_machine.Mem.flip_bit mem
            ~addr:(lay.Rcoe_kernel.Layout.dma_base + (i * 17 mod 2048))
            ~bit:(i mod 32)
        done)
      ()
  in
  let c = res.Kv_run.counters in
  Alcotest.(check bool) "error observed" true
    (c.Ycsb.corrupted > 0 || c.Ycsb.client_errors > 0);
  Alcotest.(check bool) "stopped early" true (c.Ycsb.completed < 4_040)

(* --- workload determinism (the experiments assume this) ------------------ *)

let test_workloads_deterministic_across_replicas () =
  (* Every splash kernel must leave an identical result block in every
     replica under LC (race-free by construction). *)
  List.iter
    (fun name ->
      let program = Splash.program name ~scale:0 ~branch_count:false () in
      let config =
        Runner.config_for ~mode:Config.LC ~nreplicas:2 ~arch:x86
          ~tick_interval:10_000 ()
      in
      let r = Runner.run_program ~config ~program () in
      (match r.Runner.halted with
      | Some h ->
          Alcotest.failf "%s halted: %s" name (System.halt_reason_to_string h)
      | None -> ());
      let result rid =
        let va = Rcoe_isa.Program.data_addr program Splash.result_label in
        List.init 4 (fun i ->
            Rcoe_kernel.Kernel.read_user (System.kernel r.Runner.sys rid)
              ~va:(va + i))
      in
      Alcotest.(check (list int)) (name ^ " replicas agree") (result 0) (result 1))
    Splash.names

let test_dhrystone_result_stable_across_modes () =
  (* The computation's answer must not depend on the replication mode. *)
  let result mode n =
    let program = Dhrystone.program ~loops:200 ~branch_count:false () in
    let config = Runner.config_for ~mode ~nreplicas:n ~arch:x86 () in
    let r = Runner.run_program ~config ~program () in
    Rcoe_kernel.Kernel.read_user (System.kernel r.Runner.sys 0)
      ~va:(Rcoe_isa.Program.data_addr program Dhrystone.result_label)
  in
  let base = result Config.Base 1 in
  Alcotest.(check int) "LC same" base (result Config.LC 2);
  Alcotest.(check int) "CC same" base (result Config.CC 3)

let test_fault_outcome_smoke () =
  (* The campaign helper returns classifiable outcomes for base mode. *)
  let outcome, flips =
    Fault_experiments.one_trial_for_debug ~mode:Config.Base ~n:1 ~seed:31
  in
  Alcotest.(check bool) "flips injected" true (flips > 0);
  Alcotest.(check bool) "classifiable" true
    (String.length (Rcoe_faults.Outcome.to_string outcome) > 0)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table rejects wide row" `Quick test_table_rejects_wide_row;
    Alcotest.test_case "standard configs valid" `Quick test_runner_standard_configs;
    Alcotest.test_case "overhead helper" `Quick test_runner_overhead;
    Alcotest.test_case "max_cycles bounds" `Quick test_runner_max_cycles_bounds;
    Alcotest.test_case "kv run phase excludes load" `Quick
      test_kv_run_phase_excludes_load;
    Alcotest.test_case "kv deterministic" `Quick test_kv_deterministic;
    Alcotest.test_case "kv wedged nic stalls" `Quick test_kv_wedged_nic_stalls;
    Alcotest.test_case "kv stop-on-error" `Quick test_kv_stop_on_error;
    Alcotest.test_case "splash deterministic across replicas" `Slow
      test_workloads_deterministic_across_replicas;
    Alcotest.test_case "dhrystone result mode-independent" `Quick
      test_dhrystone_result_stable_across_modes;
    Alcotest.test_case "fault trial smoke" `Quick test_fault_outcome_smoke;
  ]
