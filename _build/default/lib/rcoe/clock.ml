type kind =
  | At_user of { branches_adj : int; ip : int }
  | In_kernel

type t = { count : int; pos : kind }

let capture profile ~count (core : Rcoe_machine.Core.t) =
  let raw = Rcoe_machine.Core.branch_count core profile in
  let adj = if core.Rcoe_machine.Core.last_was_cntinc then raw - 1 else raw in
  { count; pos = At_user { branches_adj = adj; ip = core.Rcoe_machine.Core.ip } }

let in_kernel ~count = { count; pos = In_kernel }

let compare a b =
  match Stdlib.compare a.count b.count with
  | 0 -> (
      match (a.pos, b.pos) with
      | In_kernel, In_kernel -> 0
      | In_kernel, At_user _ -> 1
      | At_user _, In_kernel -> -1
      | At_user x, At_user y -> (
          match Stdlib.compare x.branches_adj y.branches_adj with
          | 0 -> Stdlib.compare x.ip y.ip
          | c -> c))
  | c -> c

let equal_position a b = compare a b = 0

let to_string t =
  match t.pos with
  | In_kernel -> Printf.sprintf "(%d, kernel)" t.count
  | At_user { branches_adj; ip } ->
      Printf.sprintf "(%d, %d, %d)" t.count branches_adj ip

let encode t =
  match t.pos with
  | In_kernel -> [| t.count; 0; 0; 1 |]
  | At_user { branches_adj; ip } -> [| t.count; branches_adj; ip; 0 |]

let decode w =
  if Array.length w <> 4 then invalid_arg "Clock.decode: need 4 words";
  if w.(3) = 1 then { count = w.(0); pos = In_kernel }
  else { count = w.(0); pos = At_user { branches_adj = w.(1); ip = w.(2) } }
