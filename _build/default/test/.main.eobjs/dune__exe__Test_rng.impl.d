test/test_rng.ml: Alcotest List QCheck QCheck_alcotest Rcoe_util Rng
