lib/rcoe/system.ml: Arch Array Buffer Clock Config Core Kernel Layout List Machine Mem Netdev Option Page_table Printf Rcoe_isa Rcoe_kernel Rcoe_machine Signature Syscall Vote
