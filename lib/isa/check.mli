(** Static program checks.

    The paper notes that compiler-assisted CC-RCoE requires recompiling
    everything with a reserved register and scanning assembly code for
    violations, and that Arm exclusives ([ldrex]/[strex]) must be turned
    into system calls because their retry counts can diverge between
    replicas. These checks are the simulated counterparts of those
    build-time tools.

    The implementations now live in the static analyzer ({!Lint},
    {!Cfg}); this module re-exports them so historical callers keep
    compiling. *)

val regs_used : Instr.t -> Reg.t list
(** Every integer register an instruction reads or writes (not including
    the implicit [sp]/[lr] uses of [Push]/[Pop]/[Jal]/[Ret], which are
    listed explicitly). Alias of {!Instr.regs_used}. *)

val reserved_register_violations : Program.t -> (int * Instr.t) list
(** Instructions (with their addresses) that touch the reserved
    branch-counter register {!Reg.branch_counter} other than [Cntinc]
    itself. Must be empty for a program to run under compiler-assisted
    CC-RCoE. Semantic since the analyzer rewrite: only instructions on a
    reachable path count (see {!Lint.reserved_register_violations}). *)

val exclusives : Program.t -> (int * Instr.t) list
(** All [Ldex]/[Stex] instructions. Must be empty for a program to run
    under CC-RCoE (atomics must go through the kernel's atomic-update
    system call); LC-RCoE and base configurations may use them. *)

val rep_strings : Program.t -> (int * Instr.t) list
(** All [Rep_movs] instructions (informational; used by the VM cost model
    and by tests). *)

val unresolved_targets : Program.t -> (int * Instr.t) list
(** Branches whose target is still symbolic or out of range; always empty
    for the output of {!Asm.assemble}. *)
