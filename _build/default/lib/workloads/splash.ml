open Rcoe_isa
open Reg

let result_label = "splash_result"

let names =
  [
    "barnes"; "cholesky"; "fft"; "fmm"; "lu-c"; "lu-nc"; "ocean-c";
    "ocean-nc"; "radiosity"; "radix"; "raytrace"; "volrend"; "water-ns";
    "water-s";
  ]

let falu op fd fa fb a = Asm.emit a (Instr.Falu (op, fd, fa, fb))
let fld fd rs off a = Asm.emit a (Instr.Fld (fd, rs, off))
let fst_ fs rd off a = Asm.emit a (Instr.Fst (fs, rd, off))
let fldi fd x a = Asm.emit a (Instr.Fldi (fd, x))
let itof fd rs a = Asm.emit a (Instr.Itof (fd, rs))
let fsqrt fd fs a = Asm.emit a (Instr.Funop (Instr.Fsqrt, fd, fs))

(* Common prologue/epilogue: each kernel body runs between them. *)
let wrap name ~branch_count build =
  let a = Asm.create name in
  Asm.space a result_label 4;
  Asm.label a "main";
  build a;
  Wl.add_trace a ~label:result_label ~words:4;
  Wl.exit_thread a;
  Asm.assemble ~entry:"main" ~branch_count a

let store_result a =
  Asm.la a R1 result_label;
  Asm.st a R1 R10 0;
  Asm.emit a (Instr.Fst (F0, R1, 1))

(* Parallelizable kernels iterate their outer index in r4 over the range
   [r10, r11); the single-threaded wrapper sets the full range, the
   NPROC=2 wrapper gives each worker half (as SPLASH-2 partitions by
   index). Bodies must preserve r10/r11. *)
let ranged_loop a body =
  Asm.mov a R4 R10;
  Asm.while_ a Instr.Lt R4 (Instr.Reg R11) (fun () ->
      body ();
      Asm.addi a R4 R4 1)

(* NPROC=2 wrapper: main spawns two workers over the halves of [0, total)
   and joins them; the tail (reduction + result publication) runs in main
   once both halves are done. *)
let wrap_mt name ~branch_count ~total body tail =
  let build worker_addr =
    let a = Asm.create (name ^ "-np2") in
    Asm.space a result_label 4;
    Asm.label a "worker";
    (* r0 = worker index; compute this worker's range. *)
    Asm.muli a R10 R0 (total / 2);
    Asm.movi a R11 (total / 2);
    Asm.if_ a Instr.Eq R0 (Instr.Imm 1) (fun () -> Asm.movi a R11 total);
    body a;
    Wl.exit_thread a;
    Asm.label a "main";
    Wl.spawn_label ~entry:worker_addr a ~arg:0;
    Asm.mov a R4 R0;
    Wl.spawn_label ~entry:worker_addr a ~arg:1;
    Asm.mov a R5 R0;
    Asm.mov a R0 R4;
    Asm.syscall a Rcoe_kernel.Syscall.sys_join;
    Asm.mov a R0 R5;
    Asm.syscall a Rcoe_kernel.Syscall.sys_join;
    tail a;
    Wl.add_trace a ~label:result_label ~words:4;
    Wl.exit_thread a;
    Asm.assemble ~entry:"main" ~branch_count a
  in
  Wl.resolve_entry build ~label:"worker"

let wrap_ranged name ~branch_count ~total body tail =
  let a = Asm.create name in
  Asm.space a result_label 4;
  Asm.label a "main";
  Asm.movi a R10 0;
  Asm.movi a R11 total;
  body a;
  tail a;
  Wl.add_trace a ~label:result_label ~words:4;
  Wl.exit_thread a;
  Asm.assemble ~entry:"main" ~branch_count a

(* BARNES: O(n^2) gravitational force accumulation over [n] bodies.
   Moderate inner body (~25 FP ops). *)
let barnes_n ~scale = 16 + (4 * scale)

let barnes_body ~scale a =
  let n = barnes_n ~scale in
  Asm.data_floats a "pos"
    (Array.init (3 * n) (fun i -> float_of_int ((i * 37 mod 97) + 1) /. 13.0));
  Asm.space a "acc" (3 * n);
  fldi F7 0.05 a;
  (* softening; each worker owns acc[i] for its own i: race-free *)
  ranged_loop a (fun () ->
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm n) (fun () ->
          Asm.if_ a Instr.Eq R4 (Instr.Reg R5) (fun () -> Asm.nop a)
            ~else_:(fun () ->
              Asm.la a R6 "pos";
              Asm.muli a R7 R4 3;
              Asm.add a R6 R6 R7;
              Asm.la a R7 "pos";
              Asm.muli a R8 R5 3;
              Asm.add a R7 R7 R8;
              (* dx,dy,dz *)
              fld F0 R6 0 a; fld F1 R7 0 a; falu Instr.Fsub F0 F1 F0 a;
              fld F1 R6 1 a; fld F2 R7 1 a; falu Instr.Fsub F1 F2 F1 a;
              fld F2 R6 2 a; fld F3 R7 2 a; falu Instr.Fsub F2 F3 F2 a;
              (* r2 = dx^2+dy^2+dz^2 + eps *)
              falu Instr.Fmul F3 F0 F0 a;
              falu Instr.Fmul F4 F1 F1 a;
              falu Instr.Fadd F3 F3 F4 a;
              falu Instr.Fmul F4 F2 F2 a;
              falu Instr.Fadd F3 F3 F4 a;
              falu Instr.Fadd F3 F3 F7 a;
              fsqrt F4 F3 a;
              falu Instr.Fmul F4 F4 F3 a;
              (* inv = 1/r^3 *)
              fldi F5 1.0 a;
              falu Instr.Fdiv F4 F5 F4 a;
              (* acc[i] += d * inv *)
              Asm.la a R8 "acc";
              Asm.muli a R12 R4 3;
              Asm.add a R8 R8 R12;
              fld F5 R8 0 a; falu Instr.Fmul F6 F0 F4 a;
              falu Instr.Fadd F5 F5 F6 a; fst_ F5 R8 0 a;
              fld F5 R8 1 a; falu Instr.Fmul F6 F1 F4 a;
              falu Instr.Fadd F5 F5 F6 a; fst_ F5 R8 1 a;
              fld F5 R8 2 a; falu Instr.Fmul F6 F2 F4 a;
              falu Instr.Fadd F5 F5 F6 a; fst_ F5 R8 2 a)))

let barnes_tail ~scale a =
  Asm.la a R1 "acc";
  fld F0 R1 0 a;
  Asm.movi a R10 (barnes_n ~scale);
  store_result a

(* CHOLESKY: in-place factorization of an SPD matrix; the column-update
   inner loop is extremely tight (the paper's 12x case). *)
let cholesky ~scale a =
  let n = 20 + (4 * scale) in
  Asm.data_floats a "mat"
    (Array.init (n * n) (fun idx ->
         let i = idx / n and j = idx mod n in
         if i = j then float_of_int (n + 1) else 1.0 /. float_of_int (1 + abs (i - j))));
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n) (fun () ->
      (* d = sqrt(mat[k][k]) ; row scale ; trailing update *)
      Asm.la a R5 "mat";
      Asm.muli a R6 R4 n;
      Asm.add a R5 R5 R6;
      Asm.add a R5 R5 R4;
      (* &mat[k][k] *)
      fld F0 R5 0 a;
      fsqrt F0 F0 a;
      fst_ F0 R5 0 a;
      (* scale column k below the diagonal: tight loop, 5 instrs *)
      Asm.addi a R6 R4 1;
      Asm.while_ a Instr.Lt R6 (Instr.Imm n) (fun () ->
          Asm.la a R7 "mat";
          Asm.muli a R8 R6 n;
          Asm.add a R7 R7 R8;
          Asm.add a R7 R7 R4;
          fld F1 R7 0 a;
          falu Instr.Fdiv F1 F1 F0 a;
          fst_ F1 R7 0 a;
          Asm.addi a R6 R6 1);
      (* trailing submatrix update: pointer-walking, very tight inner
         loop — the shape that makes CHOLESKY the paper's worst case. *)
      Asm.addi a R6 R4 1;
      Asm.while_ a Instr.Lt R6 (Instr.Imm n) (fun () ->
          Asm.la a R7 "mat";
          Asm.muli a R8 R6 n;
          Asm.add a R7 R7 R8;
          (* row j base *)
          Asm.add a R11 R7 R4;
          fld F2 R11 0 a;
          (* L[j][k] *)
          (* r12 walks &mat[i'][k] by n; r15 walks &mat[j][i'] by 1 *)
          Asm.la a R12 "mat";
          Asm.muli a R15 R4 n;
          Asm.add a R12 R12 R15;
          Asm.add a R12 R12 R4;
          Asm.addi a R12 R12 n;
          Asm.add a R15 R7 R4;
          Asm.addi a R15 R15 1;
          Asm.addi a R5 R4 1;
          Asm.while_ a Instr.Le R5 (Instr.Reg R6) (fun () ->
              fld F3 R12 0 a;
              fld F4 R15 0 a;
              falu Instr.Fmul F5 F2 F3 a;
              falu Instr.Fsub F4 F4 F5 a;
              fst_ F4 R15 0 a;
              Asm.addi a R12 R12 n;
              Asm.addi a R15 R15 1;
              Asm.addi a R5 R5 1);
          Asm.addi a R6 R6 1));
  Asm.la a R1 "mat";
  fld F0 R1 0 a;
  Asm.movi a R10 n;
  store_result a

(* FFT: iterative radix-2 butterfly over 2^m complex points (tightish). *)
let fft ~scale a =
  let m = 7 + min scale 3 in
  let n = 1 lsl m in
  Asm.data_floats a "re"
    (Array.init n (fun i -> float_of_int (i mod 17) /. 7.0));
  Asm.data_floats a "im" (Array.make n 0.0);
  (* Stages: butterflies with unit twiddles (decimation skeleton). *)
  Asm.movi a R4 1;
  (* half = 1,2,4,... *)
  Asm.while_ a Instr.Lt R4 (Instr.Imm n) (fun () ->
      Asm.movi a R5 0;
      (* group base *)
      Asm.while_ a Instr.Lt R5 (Instr.Imm n) (fun () ->
          Asm.movi a R6 0;
          Asm.while_ a Instr.Lt R6 (Instr.Reg R4) (fun () ->
              Asm.add a R7 R5 R6;
              (* i *)
              Asm.add a R8 R7 R4;
              (* j = i + half *)
              Asm.la a R11 "re";
              Asm.add a R12 R11 R7;
              Asm.add a R11 R11 R8;
              fld F0 R12 0 a;
              fld F1 R11 0 a;
              falu Instr.Fadd F2 F0 F1 a;
              falu Instr.Fsub F3 F0 F1 a;
              fst_ F2 R12 0 a;
              fst_ F3 R11 0 a;
              Asm.la a R11 "im";
              Asm.add a R12 R11 R7;
              Asm.add a R11 R11 R8;
              fld F0 R12 0 a;
              fld F1 R11 0 a;
              falu Instr.Fadd F2 F0 F1 a;
              falu Instr.Fsub F3 F0 F1 a;
              fst_ F2 R12 0 a;
              fst_ F3 R11 0 a;
              Asm.addi a R6 R6 1);
          Asm.shli a R7 R4 1;
          Asm.add a R5 R5 R7);
      Asm.shli a R4 R4 1);
  Asm.la a R1 "re";
  fld F0 R1 0 a;
  Asm.movi a R10 n;
  store_result a

(* FMM: two-phase far/near field approximation (moderate loops). *)
let fmm ~scale a =
  let n = 24 + (8 * scale) and cells = 8 in
  Asm.data_floats a "q" (Array.init n (fun i -> float_of_int ((i mod 5) + 1)));
  Asm.space a "moment" cells;
  Asm.space a "phi" n;
  (* Upward pass: accumulate cell moments. *)
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n) (fun () ->
      Asm.remi a R5 R4 cells;
      Asm.la a R6 "moment";
      Asm.add a R6 R6 R5;
      Asm.la a R7 "q";
      Asm.add a R7 R7 R4;
      fld F0 R6 0 a;
      fld F1 R7 0 a;
      falu Instr.Fadd F0 F0 F1 a;
      fst_ F0 R6 0 a);
  (* Downward: each particle gets far-field from all cells + near-field
     from its own cell neighbours; repeated over several time steps. *)
  Asm.for_up a R11 ~start:0 ~stop:(Instr.Imm (4 + (2 * scale))) (fun () ->
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n) (fun () ->
      fldi F2 0.0 a;
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm cells) (fun () ->
          Asm.la a R6 "moment";
          Asm.add a R6 R6 R5;
          fld F0 R6 0 a;
          Asm.sub a R7 R4 R5;
          Asm.mul a R7 R7 R7;
          Asm.addi a R7 R7 3;
          itof F1 R7 a;
          falu Instr.Fdiv F0 F0 F1 a;
          falu Instr.Fadd F2 F2 F0 a);
      Asm.la a R6 "phi";
      Asm.add a R6 R6 R4;
      fst_ F2 R6 0 a));
  Asm.la a R1 "phi";
  fld F0 R1 0 a;
  Asm.movi a R10 n;
  store_result a

(* LU: dense factorization; contiguous variant walks rows, the
   non-contiguous one walks columns (strided loads). Both very tight. *)
let lu ~contiguous ~scale a =
  let n = 22 + (4 * scale) in
  Asm.data_floats a "mat"
    (Array.init (n * n) (fun idx ->
         let i = idx / n and j = idx mod n in
         if i = j then float_of_int (2 * n) else 1.0 /. float_of_int (1 + ((i + j) mod 7))));
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm (n - 1)) (fun () ->
      Asm.addi a R5 R4 1;
      Asm.while_ a Instr.Lt R5 (Instr.Imm n) (fun () ->
          (* l = mat[i][k] / mat[k][k] *)
          Asm.la a R6 "mat";
          Asm.muli a R7 R5 n;
          Asm.add a R6 R6 R7;
          Asm.add a R6 R6 R4;
          fld F0 R6 0 a;
          Asm.la a R7 "mat";
          Asm.muli a R8 R4 n;
          Asm.add a R7 R7 R8;
          Asm.add a R7 R7 R4;
          fld F1 R7 0 a;
          falu Instr.Fdiv F0 F0 F1 a;
          fst_ F0 R6 0 a;
          (* row update: mat[i][j] -= l * mat[k][j], j = k+1..n-1, with
             pointer walking; the -nc variant strides by n instead of 1,
             touching a new cache line every step. *)
          let stride = if contiguous then 1 else n in
          (* contiguous: r11 walks &mat[i][k+1..], r12 walks &mat[k][k+1..]
             by 1. non-contiguous: the transposed walk — r11 walks
             &mat[k+1..][i], r12 walks &mat[k+1..][k] by n. *)
          (if contiguous then begin
             Asm.la a R11 "mat";
             Asm.muli a R15 R5 n;
             Asm.add a R11 R11 R15;
             Asm.add a R11 R11 R4;
             Asm.addi a R11 R11 1;
             Asm.la a R12 "mat";
             Asm.muli a R15 R4 n;
             Asm.add a R12 R12 R15;
             Asm.add a R12 R12 R4;
             Asm.addi a R12 R12 1
           end
           else begin
             Asm.la a R11 "mat";
             Asm.addi a R15 R4 1;
             Asm.muli a R15 R15 n;
             Asm.add a R11 R11 R15;
             Asm.add a R12 R11 R4;
             Asm.add a R11 R11 R5
           end);
          Asm.addi a R8 R4 1;
          Asm.while_ a Instr.Lt R8 (Instr.Imm n) (fun () ->
              fld F2 R11 0 a;
              fld F3 R12 0 a;
              falu Instr.Fmul F4 F0 F3 a;
              falu Instr.Fsub F2 F2 F4 a;
              fst_ F2 R11 0 a;
              Asm.addi a R11 R11 stride;
              Asm.addi a R12 R12 stride;
              Asm.addi a R8 R8 1);
          Asm.addi a R5 R5 1));
  Asm.la a R1 "mat";
  fld F0 R1 0 a;
  Asm.movi a R10 n;
  store_result a

(* OCEAN: red-black 5-point stencil relaxation on an s x s grid.
   Moderate inner loop (~15 instrs). *)
let ocean ~contiguous ~scale a =
  let s = 32 + (8 * scale) and iters = 6 in
  Asm.data_floats a "grid"
    (Array.init (s * s) (fun i -> float_of_int (i mod 13) /. 3.0));
  fldi F7 0.25 a;
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm iters) (fun () ->
      Asm.movi a R5 1;
      Asm.while_ a Instr.Lt R5 (Instr.Imm (s - 1)) (fun () ->
          Asm.movi a R6 1;
          Asm.while_ a Instr.Lt R6 (Instr.Imm (s - 1)) (fun () ->
              Asm.la a R7 "grid";
              (if contiguous then begin
                 Asm.muli a R8 R5 s;
                 Asm.add a R7 R7 R8;
                 Asm.add a R7 R7 R6
               end
               else begin
                 Asm.muli a R8 R6 s;
                 Asm.add a R7 R7 R8;
                 Asm.add a R7 R7 R5
               end);
              fld F0 R7 1 a;
              fld F1 R7 (-1) a;
              falu Instr.Fadd F0 F0 F1 a;
              fld F1 R7 s a;
              falu Instr.Fadd F0 F0 F1 a;
              fld F1 R7 (-s) a;
              falu Instr.Fadd F0 F0 F1 a;
              falu Instr.Fmul F0 F0 F7 a;
              fst_ F0 R7 0 a;
              Asm.addi a R6 R6 1);
          Asm.addi a R5 R5 1));
  Asm.la a R1 "grid";
  fld F0 R1 (s + 1) a;
  Asm.movi a R10 s;
  store_result a

(* RADIOSITY: pairwise energy exchange between patches, long loop body
   (the paper's low-overhead case, 1.12x). *)
let radiosity ~scale a =
  let n = 20 + (4 * scale) and iters = 4 in
  Asm.data_floats a "rad" (Array.init n (fun i -> float_of_int (i + 1)));
  Asm.data_floats a "form"
    (Array.init (n * n) (fun idx -> 1.0 /. float_of_int (2 + (idx mod 11))));
  Asm.space a "rad2" n;
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm iters) (fun () ->
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm n) (fun () ->
          fldi F0 0.0 a;
          (* Gather unrolled 4x: a long straight-line body between
             branches (n is always a multiple of 4), the shape that makes
             RADIOSITY the paper's second-cheapest kernel. *)
          let gather_one () =
            Asm.la a R7 "form";
            Asm.muli a R8 R5 n;
            Asm.add a R7 R7 R8;
            Asm.add a R7 R7 R6;
            fld F1 R7 0 a;
            Asm.la a R7 "rad";
            Asm.add a R7 R7 R6;
            fld F2 R7 0 a;
            falu Instr.Fmul F3 F1 F2 a;
            fldi F4 0.9 a;
            falu Instr.Fmul F3 F3 F4 a;
            falu Instr.Fadd F0 F0 F3 a;
            falu Instr.Fmul F5 F3 F3 a;
            falu Instr.Fadd F5 F5 F4 a;
            fsqrt F5 F5 a;
            fldi F6 0.01 a;
            falu Instr.Fmul F5 F5 F6 a;
            falu Instr.Fadd F0 F0 F5 a;
            falu Instr.Fsub F0 F0 F6 a;
            falu Instr.Fmul F2 F2 F4 a;
            falu Instr.Fadd F0 F0 F6 a;
            falu Instr.Fsub F0 F0 F6 a;
            falu Instr.Fadd F0 F0 F6 a;
            falu Instr.Fsub F0 F0 F6 a;
            Asm.addi a R6 R6 1
          in
          Asm.movi a R6 0;
          Asm.while_ a Instr.Lt R6 (Instr.Imm n) (fun () ->
              for _ = 1 to 4 do gather_one () done);
          Asm.la a R7 "rad2";
          Asm.add a R7 R7 R5;
          fst_ F0 R7 0 a);
      (* copy back *)
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm n) (fun () ->
          Asm.la a R7 "rad2";
          Asm.add a R7 R7 R5;
          fld F0 R7 0 a;
          Asm.la a R7 "rad";
          Asm.add a R7 R7 R5;
          fst_ F0 R7 0 a));
  Asm.la a R1 "rad";
  fld F0 R1 0 a;
  Asm.movi a R10 n;
  store_result a

(* RADIX: LSD radix sort over integer keys, 4-bit digits. *)
let radix ~scale a =
  let n = 192 + (64 * scale) in
  let open Rcoe_util in
  let rng = Rng.create 99 in
  Asm.data a "keys" (Array.init n (fun _ -> Rng.int rng 65536));
  Asm.space a "out" n;
  Asm.space a "count" 16;
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm 4) (fun () ->
      (* shift = 4*pass, in r11 *)
      Asm.shli a R11 R4 2;
      (* clear counts *)
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm 16) (fun () ->
          Asm.la a R6 "count";
          Asm.add a R6 R6 R5;
          Asm.movi a R7 0;
          Asm.st a R6 R7 0);
      (* histogram: tight loop *)
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm n) (fun () ->
          Asm.la a R6 "keys";
          Asm.add a R6 R6 R5;
          Asm.ld a R7 R6 0;
          Asm.shr a R7 R7 R11;
          Asm.andi a R7 R7 15;
          Asm.la a R6 "count";
          Asm.add a R6 R6 R7;
          Asm.ld a R8 R6 0;
          Asm.addi a R8 R8 1;
          Asm.st a R6 R8 0);
      (* prefix sums *)
      Asm.movi a R7 0;
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm 16) (fun () ->
          Asm.la a R6 "count";
          Asm.add a R6 R6 R5;
          Asm.ld a R8 R6 0;
          Asm.st a R6 R7 0;
          Asm.add a R7 R7 R8);
      (* scatter *)
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm n) (fun () ->
          Asm.la a R6 "keys";
          Asm.add a R6 R6 R5;
          Asm.ld a R12 R6 0;
          Asm.shr a R7 R12 R11;
          Asm.andi a R7 R7 15;
          Asm.la a R6 "count";
          Asm.add a R6 R6 R7;
          Asm.ld a R8 R6 0;
          Asm.addi a R15 R8 1;
          Asm.st a R6 R15 0;
          Asm.la a R6 "out";
          Asm.add a R6 R6 R8;
          Asm.st a R6 R12 0);
      (* copy back *)
      Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm n) (fun () ->
          Asm.la a R6 "out";
          Asm.add a R6 R6 R5;
          Asm.ld a R7 R6 0;
          Asm.la a R6 "keys";
          Asm.add a R6 R6 R5;
          Asm.st a R6 R7 0));
  Asm.la a R1 "keys";
  Asm.ld a R10 R1 0;
  fldi F0 0.0 a;
  store_result a

(* RAYTRACE: ray/sphere intersection tests; long FP body with branches
   (the paper's 1.09x case). *)
let raytrace_rays ~scale = 300 + (100 * scale)

let raytrace_body ~scale a =
  let spheres = 6 in
  ignore (raytrace_rays ~scale);
  Asm.data_floats a "sph"
    (Array.init (4 * spheres) (fun i ->
         float_of_int ((i * 29 mod 23) + 1) /. 5.0));
  Asm.space a "hits" 2;
  (* hit counters are per worker (hits[0] / hits[1]): race-free *)
  ranged_loop a (fun () ->
      (* ray direction from the index *)
      Asm.remi a R5 R4 17;
      itof F0 R5 a;
      fldi F1 17.0 a;
      falu Instr.Fdiv F0 F0 F1 a;
      Asm.remi a R5 R4 13;
      itof F1 R5 a;
      fldi F2 13.0 a;
      falu Instr.Fdiv F1 F1 F2 a;
      fldi F2 1.0 a;
      (* The per-ray body tests every sphere inline (unrolled): one long
         straight-line stretch per ray is exactly why RAYTRACE is the
         paper's cheapest kernel under CC-RCoE. *)
      for sph = 0 to spheres - 1 do
        let hit = Printf.sprintf "rt_hit_%d" sph
        and miss = Printf.sprintf "rt_miss_%d" sph in
        Asm.la a R7 "sph";
        Asm.addi a R7 R7 (4 * sph);
        fld F3 R7 0 a;
        fld F4 R7 1 a;
        fld F5 R7 2 a;
        falu Instr.Fmul F3 F3 F0 a;
        falu Instr.Fmul F4 F4 F1 a;
        falu Instr.Fadd F3 F3 F4 a;
        falu Instr.Fmul F5 F5 F2 a;
        falu Instr.Fadd F3 F3 F5 a;
        fld F4 R7 3 a;
        falu Instr.Fmul F4 F4 F4 a;
        falu Instr.Fmul F5 F3 F3 a;
        falu Instr.Fsub F5 F5 F4 a;
        fldi F6 0.0 a;
        Asm.emit a (Instr.Fb (Instr.Lt, F5, F6, Instr.Lbl hit));
        Asm.jmp a miss;
        Asm.label a hit;
        Asm.emit a (Instr.Funop (Instr.Fneg, F5, F5));
        Asm.la a R8 "hits";
        Asm.if_ a Instr.Ne R10 (Instr.Imm 0) (fun () -> Asm.addi a R8 R8 1);
        Asm.ld a R12 R8 0;
        Asm.addi a R12 R12 1;
        Asm.st a R8 R12 0;
        fsqrt F5 F5 a;
        falu Instr.Fadd F2 F2 F5 a;
        fldi F6 4.0 a;
        Asm.emit a (Instr.Fb (Instr.Lt, F2, F6, Instr.Lbl miss));
        fldi F2 1.0 a;
        Asm.label a miss;
        Asm.nop a
      done)

let raytrace_tail a =
  Asm.la a R1 "hits";
  Asm.ld a R10 R1 0;
  Asm.ld a R12 R1 1;
  Asm.add a R10 R10 R12;
  fldi F0 0.0 a;
  store_result a

(* VOLREND: integer ray accumulation through a voxel volume. *)
let volrend_dim = 16

let volrend_rays ~scale = 200 + (60 * scale)

let volrend_body ~scale a =
  let dim = volrend_dim in
  ignore (volrend_rays ~scale);
  let open Rcoe_util in
  let rng = Rng.create 5 in
  Asm.data a "vox" (Array.init (dim * dim) (fun _ -> Rng.int rng 255));
  Asm.space a "img" 8;
  (* img[0..3] belongs to worker 0, img[4..7] to worker 1: race-free *)
  ranged_loop a (fun () ->
      Asm.movi a R3 0;
      (* accumulated opacity *)
      Asm.remi a R5 R4 dim;
      (* row *)
      Asm.for_up a R6 ~start:0 ~stop:(Instr.Imm dim) (fun () ->
          Asm.la a R7 "vox";
          Asm.muli a R8 R5 dim;
          Asm.add a R7 R7 R8;
          Asm.add a R7 R7 R6;
          Asm.ld a R8 R7 0;
          (* composite: acc += (255-acc)*v/256, fixed point *)
          Asm.movi a R12 255;
          Asm.sub a R12 R12 R3;
          Asm.mul a R12 R12 R8;
          Asm.shri a R12 R12 8;
          Asm.add a R3 R3 R12;
          Asm.if_ a Instr.Gt R3 (Instr.Imm 250)
            (fun () -> Asm.movi a R6 dim)
            ~else_:(fun () -> Asm.nop a));
      Asm.la a R7 "img";
      Asm.if_ a Instr.Ne R10 (Instr.Imm 0) (fun () -> Asm.addi a R7 R7 4);
      Asm.remi a R8 R4 4;
      Asm.add a R7 R7 R8;
      Asm.ld a R12 R7 0;
      Asm.add a R12 R12 R3;
      Asm.st a R7 R12 0)

let volrend_tail a =
  Asm.la a R1 "img";
  Asm.ld a R10 R1 0;
  Asm.ld a R12 R1 4;
  Asm.add a R10 R10 R12;
  fldi F0 0.0 a;
  store_result a

(* WATER: pairwise intermolecular forces; the -S variant adds a cutoff
   test that skips distant pairs. *)
let water_n ~scale = 14 + (2 * scale)

let water_body ~cutoff ~scale a =
  let n = water_n ~scale and steps = 3 in
  Asm.data_floats a "wpos"
    (Array.init n (fun i -> float_of_int ((i * 13 mod 29) + 1) /. 4.0));
  Asm.space a "wfrc" n;
  (* wfrc[i] is written only by i's owner: race-free *)
  Asm.for_up a R15 ~start:0 ~stop:(Instr.Imm steps) (fun () ->
      ranged_loop a (fun () ->
          Asm.for_up a R5 ~start:0 ~stop:(Instr.Imm n) (fun () ->
              Asm.if_ a Instr.Eq R4 (Instr.Reg R5) (fun () -> Asm.nop a)
                ~else_:(fun () ->
                  Asm.la a R6 "wpos";
                  Asm.add a R7 R6 R4;
                  Asm.add a R6 R6 R5;
                  fld F0 R7 0 a;
                  fld F1 R6 0 a;
                  falu Instr.Fsub F0 F0 F1 a;
                  falu Instr.Fmul F1 F0 F0 a;
                  fldi F2 0.1 a;
                  falu Instr.Fadd F1 F1 F2 a;
                  (if cutoff then begin
                     (* skip distant pairs *)
                     fldi F3 6.0 a;
                     Asm.emit a
                       (Instr.Fb (Instr.Gt, F1, F3, Instr.Lbl "w_skip"))
                   end);
                  (* Lennard-Jones-ish: f = 1/r^4 - 1/r^2 *)
                  falu Instr.Fmul F3 F1 F1 a;
                  fldi F4 1.0 a;
                  falu Instr.Fdiv F5 F4 F3 a;
                  falu Instr.Fdiv F6 F4 F1 a;
                  falu Instr.Fsub F5 F5 F6 a;
                  falu Instr.Fmul F5 F5 F0 a;
                  Asm.la a R8 "wfrc";
                  Asm.add a R8 R8 R4;
                  fld F6 R8 0 a;
                  falu Instr.Fadd F6 F6 F5 a;
                  fst_ F6 R8 0 a;
                  Asm.label a "w_skip";
                  Asm.nop a))))

let water_tail ~scale a =
  Asm.la a R1 "wfrc";
  fld F0 R1 0 a;
  Asm.movi a R10 (water_n ~scale);
  store_result a

let mt_kernels = [ "barnes"; "raytrace"; "volrend"; "water-ns"; "water-s" ]

let program name ?(scale = 1) ?(nproc = 1) ~branch_count () =
  if nproc <> 1 && nproc <> 2 then
    invalid_arg "Splash.program: nproc must be 1 or 2";
  let ranged =
    match name with
    | "barnes" ->
        Some (barnes_n ~scale, barnes_body ~scale, barnes_tail ~scale)
    | "raytrace" ->
        Some (raytrace_rays ~scale, raytrace_body ~scale, raytrace_tail)
    | "volrend" ->
        Some (volrend_rays ~scale, volrend_body ~scale, volrend_tail)
    | "water-ns" ->
        Some (water_n ~scale, water_body ~cutoff:false ~scale, water_tail ~scale)
    | "water-s" ->
        Some (water_n ~scale, water_body ~cutoff:true ~scale, water_tail ~scale)
    | _ -> None
  in
  match (ranged, nproc) with
  | Some (total, body, tail), 2 -> wrap_mt name ~branch_count ~total body tail
  | Some (total, body, tail), _ ->
      wrap_ranged name ~branch_count ~total body tail
  | None, 2 -> invalid_arg ("Splash.program: " ^ name ^ " has no NPROC=2 variant")
  | None, _ ->
      let build =
        match name with
        | "cholesky" -> cholesky ~scale
        | "fft" -> fft ~scale
        | "fmm" -> fmm ~scale
        | "lu-c" -> lu ~contiguous:true ~scale
        | "lu-nc" -> lu ~contiguous:false ~scale
        | "ocean-c" -> ocean ~contiguous:true ~scale
        | "ocean-nc" -> ocean ~contiguous:false ~scale
        | "radiosity" -> radiosity ~scale
        | "radix" -> radix ~scale
        | other -> invalid_arg ("Splash.program: unknown kernel " ^ other)
      in
      wrap name ~branch_count build
