(* The paper's data-race demonstration (Section V-A1): 32 threads bump a
   shared counter without a lock. Under loosely-coupled replication each
   replica loses a *different* set of updates, so replicas diverge; under
   closely-coupled replication the interleaving is instruction-identical
   and the replicas always agree (even though the count is still "wrong"
   compared to proper locking).

     dune exec examples/datarace_cc.exe *)

open Rcoe_core
open Rcoe_workloads
open Rcoe_harness

let counter sys program rid =
  Rcoe_kernel.Kernel.read_user (System.kernel sys rid)
    ~va:(Rcoe_isa.Program.data_addr program Datarace.counter_label)

let run ~mode ~locked ~seed =
  let config =
    Runner.config_for ~mode ~nreplicas:2 ~arch:Rcoe_machine.Arch.X86 ~seed
      ~tick_interval:1_500 ()
  in
  let program =
    Datarace.program ~threads:16 ~iters:120 ~locked ~branch_count:false ()
  in
  let r = Runner.run_program ~config ~program () in
  match r.Runner.halted with
  | Some _ -> `Diverged_detected
  | None ->
      let c0 = counter r.Runner.sys program 0
      and c1 = counter r.Runner.sys program 1 in
      if c0 = c1 then `Agreed c0 else `Diverged (c0, c1)

let show name result =
  match result with
  | `Agreed c -> Printf.printf "  %-6s replicas agree:   counter = %d\n" name c
  | `Diverged (a, b) ->
      Printf.printf "  %-6s replicas DIVERGE: counter = %d vs %d\n" name a b
  | `Diverged_detected ->
      Printf.printf "  %-6s divergence detected by signature vote\n" name

let () =
  let exact = 16 * 120 in
  Printf.printf
    "32-thread unlocked counter (exact result with locking: %d)\n\n" exact;
  Printf.printf "racy, 5 seeds each:\n";
  List.iter
    (fun seed ->
      Printf.printf " seed %d:\n" seed;
      show "LC-D" (run ~mode:Config.LC ~locked:false ~seed);
      show "CC-D" (run ~mode:Config.CC ~locked:false ~seed))
    [ 1; 2; 3; 4; 5 ];
  Printf.printf
    "\nwith the kernel atomic-update syscall instead (the paper's fix):\n";
  show "LC-D" (run ~mode:Config.LC ~locked:true ~seed:1);
  Printf.printf
    "\nCC-RCoE preempts every replica at the same instruction, so racy\n\
     outcomes are identical across replicas; LC-RCoE preempts at the same\n\
     logical time but different instructions, so they drift apart.\n"
