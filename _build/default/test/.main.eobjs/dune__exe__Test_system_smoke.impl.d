test/test_system_smoke.ml: Alcotest Asm Char Config Instr Program Rcoe_core Rcoe_isa Rcoe_kernel Rcoe_machine Reg System
