(** Page tables stored in simulated physical memory.

    Each address space owns a flat array of page-table entries (one word
    per virtual page) living at [table.base] in physical memory. Keeping
    the entries *in* simulated memory is load-bearing: the fault-injection
    experiments flip bits in kernel memory, and a corrupted PTE must
    really cause a wrong translation, a protection fault, or a physical
    abort — as it does on the paper's hardware.

    PTE word layout:
    - bit 0: valid
    - bit 1: writable
    - bit 2: DMA buffer mark (the "unused page-table bit" x86 error
      masking uses to find DMA mappings when the primary is removed;
      the 32-bit Arm profile has no such spare bit, so masking is
      unsupported there — Section IV-A)
    - bit 3: device page (accesses are MMIO, not RAM)
    - bits 8+: physical page number (or device page id) *)

type pte = {
  valid : bool;
  writable : bool;
  dma : bool;
  device : bool;
  ppn : int;
}

val invalid_pte : pte

val encode : pte -> int
val decode : int -> pte

val page_shift : int
(** 8: pages are 256 words. *)

val page_size : int

type table = {
  base : int;  (** Physical address of the PTE array. *)
  npages : int;  (** Number of virtual pages covered. *)
}

val table_words : table -> int
(** Physical footprint of the table ([npages]). *)

val set : Mem.t -> table -> vpn:int -> pte -> unit
(** Raises [Invalid_argument] if [vpn] is out of the covered range. *)

val get : Mem.t -> table -> vpn:int -> pte

val clear : Mem.t -> table -> unit

type resolution =
  | Phys of int  (** RAM physical word address. *)
  | Device of int * int  (** Device page id, word offset within page. *)
  | No_mapping
  | Not_writable

val translate : Mem.t -> table -> vaddr:int -> write:bool -> resolution
(** Walk the table (reads simulated memory; can raise {!Mem.Abort} if
    the table base itself is corrupt). A garbage frame number is returned
    as-is in [Phys]; the subsequent physical access will abort, which the
    kernel reports as a kernel data abort. *)

val vpn_of : int -> int
val offset_of : int -> int
