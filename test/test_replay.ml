(* Replay-based detection (Config.detection = Replay): the unreplicated
   primary runs ahead cutting (delta-checkpoint, input-log) chunks that
   checker domains re-execute and compare by memory digest. These tests
   cover the checkpoint-ring pin discipline the pipeline depends on,
   healthy-run verification, the transient-fault -> Recovered acceptance
   scenario with its detection-lag bound, run-to-run and Interp/Blocks
   determinism, and the replay metrics/trace surface. *)

open Rcoe_machine
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
module Trace = Rcoe_obs.Trace
module Metrics = Rcoe_obs.Metrics

let x86 = Arch.X86

(* --- checkpoint-ring pin discipline (regression) ------------------------- *)

let mk_snap cycle =
  {
    Checkpoint.s_kind = Checkpoint.Full;
    s_cycle = cycle;
    s_round_seq = 0;
    s_ticks = 0;
    s_prim = 0;
    s_shared = Checkpoint.R_full [||];
    s_dma = Checkpoint.R_full [||];
    s_replicas = [];
    s_words = 0;
    s_skipped_words = 0;
  }

let test_pin_refcount () =
  (* A pinned tail defers eviction; pins are refcounted per snapshot, so
     a double pin must survive a single unpin (the regression: a second
     pin used to be forgotten, letting a fold invalidate a checker's
     chunk mid-verification). *)
  let ck = Checkpoint.create ~depth:2 in
  let s1 = mk_snap 100 in
  Checkpoint.push ck s1;
  Checkpoint.pin ck s1;
  Checkpoint.pin ck s1;
  Checkpoint.push ck (mk_snap 200);
  Checkpoint.push ck (mk_snap 300);
  (* Eviction of the pinned oldest is deferred: the ring grows. *)
  Alcotest.(check int) "ring grew past depth" 3 (Checkpoint.count ck);
  Checkpoint.unpin ck s1;
  Alcotest.(check bool) "still pinned after one unpin" true
    (Checkpoint.pinned ck s1);
  Alcotest.(check int) "still deferred" 3 (Checkpoint.count ck);
  Checkpoint.unpin ck s1;
  Alcotest.(check bool) "released" false (Checkpoint.pinned ck s1);
  Alcotest.(check int) "deferred evictions ran" 2 (Checkpoint.count ck);
  Alcotest.check_raises "unpin of unpinned raises"
    (Invalid_argument "Checkpoint.unpin: snapshot is not pinned") (fun () ->
      Checkpoint.unpin ck s1)

(* --- configuration ------------------------------------------------------- *)

let replay_config ?(chunk_ticks = 2) ?(queue_depth = 2) ?(checkers = 2)
    ?(backend = Config.Interp) ?(depth = 4) ?(seed = 7) ?trace () =
  {
    (Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 ~seed
       ~tick_interval:10_000 ())
    with
    Config.detection = Config.Replay;
    replay_chunk_ticks = chunk_ticks;
    replay_queue_depth = queue_depth;
    replay_checkers = checkers;
    checkpoint_depth = depth;
    max_rollbacks = 6;
    exec_backend = backend;
    trace;
  }

let test_config_validation () =
  (match Config.validate (replay_config ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid replay config rejected: %s" e);
  let expect_err label cfg =
    match Config.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s must be rejected" label
  in
  expect_err "replay under replication"
    { (replay_config ()) with Config.mode = Config.CC; nreplicas = 2 };
  expect_err "replay on the parallel engine"
    { (replay_config ()) with Config.engine = Config.Parallel };
  expect_err "replay with lockstep checkpointing"
    { (replay_config ()) with Config.checkpoint_every = 4 };
  expect_err "zero chunk ticks"
    { (replay_config ()) with Config.replay_chunk_ticks = 0 };
  expect_err "zero queue depth"
    { (replay_config ()) with Config.replay_queue_depth = 0 };
  expect_err "zero checkers"
    { (replay_config ()) with Config.replay_checkers = 0 }

let md5 () =
  Md5sum.program ~message_words:96 ~iters:8 ~seed:6 ~branch_count:false ()

let counter sys name =
  match Metrics.find_counter (System.metrics sys) name with
  | Some c -> Metrics.count c
  | None -> Alcotest.failf "metric %s not registered" name

(* --- healthy run: every chunk verifies, output is Base's ----------------- *)

let test_healthy_run_verifies () =
  let sys = System.create ~config:(replay_config ()) ~program:(md5 ()) in
  System.run sys ~max_cycles:200_000_000;
  Alcotest.(check bool) "finished" true (System.finished sys);
  Alcotest.(check bool) "not halted" true (System.halted sys = None);
  Alcotest.(check string) "correct output" "........" (System.output sys 0);
  let chunks = counter sys "replay.chunks" in
  Alcotest.(check bool) "pipelined (several chunks)" true (chunks >= 3);
  Alcotest.(check int) "every chunk verified" chunks
    (counter sys "replay.chunks_verified");
  Alcotest.(check int) "no mismatches" 0 (counter sys "replay.mismatches");
  Alcotest.(check int) "no rollbacks" 0 (List.length (System.rollbacks sys));
  (* The reference semantics: a plain Base run of the same program. *)
  let base =
    Runner.run_program
      ~config:(Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 ())
      ~program:(md5 ()) ()
  in
  Alcotest.(check string) "output = Base output" (System.output base.sys 0)
    (System.output sys 0)

(* --- determinism: run-to-run and across execution backends --------------- *)

let replay_run ?(backend = Config.Interp) ?fault () =
  let sys =
    System.create ~config:(replay_config ~backend ()) ~program:(md5 ())
  in
  (match fault with
  | Some (at, bit) ->
      System.run sys ~max_cycles:at;
      let addr = System.sig_base sys 0 + 1 in
      Mem.flip_bit (System.machine sys).Machine.mem ~addr ~bit;
      Trace.injection (System.trace sys) ~addr ~bit
  | None -> ());
  System.run sys ~max_cycles:200_000_000;
  sys

let fingerprint sys =
  ( System.now sys,
    System.output sys 0,
    System.finished sys,
    System.halted sys = None,
    counter sys "replay.chunks",
    counter sys "replay.chunks_verified",
    counter sys "replay.mismatches",
    List.length (System.rollbacks sys) )

let test_deterministic_across_runs_and_backends () =
  let a = fingerprint (replay_run ~backend:Config.Interp ()) in
  let b = fingerprint (replay_run ~backend:Config.Interp ()) in
  let c = fingerprint (replay_run ~backend:Config.Blocks ()) in
  Alcotest.(check bool) "run-to-run identical" true (a = b);
  Alcotest.(check bool) "interp = blocks" true (a = c)

(* --- transient fault: detected by replay, recovered by rollback ---------- *)

let test_transient_fault_recovered () =
  let fault = (60_000, 7) in
  let sys = replay_run ~fault () in
  Alcotest.(check bool) "finished" true (System.finished sys);
  Alcotest.(check bool) "recovered, not halted" true (System.halted sys = None);
  Alcotest.(check bool) "mismatch detected" true
    (counter sys "replay.mismatches" >= 1);
  Alcotest.(check bool) "rolled back" true
    (List.length (System.rollbacks sys) >= 1);
  Alcotest.(check bool) "mismatch event logged" true
    (List.exists
       (fun (_, k) -> k = System.E_mismatch)
       (System.events sys));
  (* Recovered output is bit-for-bit the fault-free run's. *)
  let clean = replay_run () in
  Alcotest.(check string) "digest equals fault-free reference"
    (System.output clean 0) (System.output sys 0);
  (* Fault runs are deterministic too. *)
  Alcotest.(check bool) "fault run deterministic" true
    (fingerprint sys = fingerprint (replay_run ~fault ()))

(* --- detection-lag bound ------------------------------------------------- *)

let test_detection_lag_bound () =
  (* Chunk [j]'s verdict is processed no later than the cut closing
     chunk [j + depth - 1]: with the traced run's [Replay_cut] /
     [Replay_verdict] events the pipelining bound is exact. The cycle
     form (lag <= depth * chunk span) needs slack for capture stalls,
     which stretch a chunk's wall-cycles past its nominal span. *)
  let chunk_ticks = 2 and queue_depth = 2 in
  let config =
    replay_config ~chunk_ticks ~queue_depth
      ~trace:{ Trace.capacity = 1 lsl 16 }
      ()
  in
  let sys = System.create ~config ~program:(md5 ()) in
  System.run sys ~max_cycles:200_000_000;
  Alcotest.(check bool) "finished" true (System.finished sys);
  let events = Trace.events (System.trace sys) in
  let cut_ts = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.Trace.body with
      | Trace.Replay_cut { seq } -> Hashtbl.replace cut_ts seq e.Trace.ts
      | _ -> ())
    events;
  let verdicts =
    List.filter_map
      (fun e ->
        match e.Trace.body with
        | Trace.Replay_verdict { seq; chunk_end; lag; ok } ->
            Some (e.Trace.ts, seq, chunk_end, lag, ok)
        | _ -> None)
      events
  in
  Alcotest.(check bool) "verdicts present" true (verdicts <> []);
  List.iter
    (fun (ts, seq, chunk_end, lag, ok) ->
      Alcotest.(check bool) "healthy chunk verified" true ok;
      Alcotest.(check int) "lag = verdict ts - chunk end" (ts - chunk_end) lag;
      Alcotest.(check bool) "lag non-negative" true (lag >= 0);
      (* Exact pipelining bound: the verdict precedes (or coincides
         with) the cut that closes chunk [seq + depth - 1], i.e. the
         cut event of seq [seq + depth - 1], when the run got there. *)
      match Hashtbl.find_opt cut_ts (seq + queue_depth - 1) with
      | Some bound_ts ->
          Alcotest.(check bool)
            (Printf.sprintf "verdict %d within pipeline bound" seq)
            true (ts <= bound_ts)
      | None -> ())
    verdicts

(* --- netted burst eligibility: cycle identity vs the classic path -------- *)

let test_netted_burst_cycle_identity () =
  (* The replay primary is the one configuration that is both netted and
     burst-eligible (Base mode, no tracing): [Sched.burst_cycles] clips
     fuel short of [Netdev.next_event] and refreshes the device clock
     after accounting. Identity check: a Blocks run with tracing off
     (bursts engaged) must land on exactly the cycles of the classic
     per-cycle paths — the same run under Interp, and under Blocks with
     a trace ring (which disables bursts but, per the Trace contract,
     never perturbs simulated time). *)
  let kv ~backend ~traced =
    let config =
      {
        (replay_config ~backend
           ?trace:(if traced then Some { Trace.capacity = 1 lsl 16 } else None)
           ())
        with
        Config.with_net = true;
      }
    in
    let r =
      Kv_run.run ~config ~workload:Ycsb.A ~records:32 ~operations:300 ()
    in
    Alcotest.(check bool) "served to completion" false r.Kv_run.stalled;
    Alcotest.(check int) "no mismatches" 0
      (counter r.Kv_run.sys "replay.mismatches");
    ( System.now r.Kv_run.sys,
      r.Kv_run.elapsed_cycles,
      r.Kv_run.ops_completed,
      r.Kv_run.counters,
      counter r.Kv_run.sys "replay.chunks" )
  in
  let burst = kv ~backend:Config.Blocks ~traced:false in
  let interp = kv ~backend:Config.Interp ~traced:false in
  let classic = kv ~backend:Config.Blocks ~traced:true in
  Alcotest.(check bool) "blocks burst = interp classic" true (burst = interp);
  Alcotest.(check bool) "blocks burst = blocks traced" true (burst = classic)

(* --- replay metrics and gauges ------------------------------------------- *)

let test_replay_gauges () =
  let sys = System.create ~config:(replay_config ()) ~program:(md5 ()) in
  System.run sys ~max_cycles:200_000_000;
  let m = System.metrics sys in
  (match Metrics.find_gauge m "net.replay_queue_hwm" with
  | Some g ->
      Alcotest.(check bool) "queue hwm positive" true (Metrics.value g >= 1.0)
  | None -> Alcotest.fail "net.replay_queue_hwm not registered");
  (match Metrics.find_gauge m "replay.checker_idle_cycles" with
  | Some g ->
      Alcotest.(check bool) "idle cycles non-negative" true
        (Metrics.value g >= 0.0)
  | None -> Alcotest.fail "replay.checker_idle_cycles not registered");
  match Metrics.find_histogram m "replay.lag_cycles" with
  | Some h ->
      Alcotest.(check bool) "one lag sample per chunk" true
        (List.length (Metrics.samples h) = counter sys "replay.chunks")
  | None -> Alcotest.fail "replay.lag_cycles not registered"

let suite =
  [
    Alcotest.test_case "checkpoint pin refcount" `Quick test_pin_refcount;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "healthy run verifies every chunk" `Quick
      test_healthy_run_verifies;
    Alcotest.test_case "deterministic across runs and backends" `Quick
      test_deterministic_across_runs_and_backends;
    Alcotest.test_case "transient fault recovered" `Quick
      test_transient_fault_recovered;
    Alcotest.test_case "detection-lag bound" `Quick test_detection_lag_bound;
    Alcotest.test_case "netted burst cycle identity" `Quick
      test_netted_burst_cycle_identity;
    Alcotest.test_case "replay metrics and gauges" `Quick test_replay_gauges;
  ]
