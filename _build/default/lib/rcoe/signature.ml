open Rcoe_machine

let words = 3

let modulus = 0xFFFFFFFF

let reset mem ~base =
  Mem.write mem base 0;
  Mem.write mem (base + 1) 0;
  Mem.write mem (base + 2) 0

let bump_event mem ~base = Mem.write mem base (Mem.read mem base + 1)

let event_count mem ~base = Mem.read mem base

let add_word mem ~base w =
  let c0 = (Mem.read mem (base + 1) + (w land modulus)) mod modulus in
  Mem.write mem (base + 1) c0;
  let c1 = (Mem.read mem (base + 2) + c0) mod modulus in
  Mem.write mem (base + 2) c1

let add_words mem ~base ws = Array.iter (add_word mem ~base) ws

let read mem ~base =
  (Mem.read mem base, Mem.read mem (base + 1), Mem.read mem (base + 2))

let equal3 (a, b, c) (x, y, z) = a = x && b = y && c = z
