open Rcoe_machine
open Rcoe_kernel

type replica_image = {
  i_rid : int;
  i_partition : int array;
  i_kernel : Kernel.snapshot;
  i_finished : bool;
}

type snap = {
  s_cycle : int;
  s_round_seq : int;
  s_ticks : int;
  s_prim : int;
  s_shared : int array;
  s_dma : int array;
  s_replicas : replica_image list;
  s_words : int;
}

type t = {
  depth : int;
  mutable snaps : snap list; (* newest first, length <= depth *)
  mutable taken : int;
}

let create ~depth =
  if depth < 1 then invalid_arg "Checkpoint.create: depth must be >= 1";
  { depth; snaps = []; taken = 0 }

let depth t = t.depth
let count t = List.length t.snaps
let taken t = t.taken

let push t snap =
  let keep = List.filteri (fun i _ -> i < t.depth - 1) t.snaps in
  t.snaps <- snap :: keep;
  t.taken <- t.taken + 1

let newest t = match t.snaps with [] -> None | s :: _ -> Some s

let drop_newest t =
  match t.snaps with [] -> () | _ :: rest -> t.snaps <- rest

let words s = s.s_words

let capture mem (lay : Layout.t) ~cycle ~round_seq ~ticks ~prim ~replicas =
  let sh = lay.Layout.shared in
  let images =
    List.map
      (fun (rid, kern, finished) ->
        let p = lay.Layout.partitions.(rid) in
        {
          i_rid = rid;
          i_partition = Mem.read_block mem p.Layout.p_base p.Layout.p_words;
          i_kernel = Kernel.snapshot kern;
          i_finished = finished;
        })
      replicas
  in
  let words =
    List.fold_left (fun n img -> n + Array.length img.i_partition) 0 images
    + sh.Layout.s_words + lay.Layout.dma_words
  in
  {
    s_cycle = cycle;
    s_round_seq = round_seq;
    s_ticks = ticks;
    s_prim = prim;
    s_shared = Mem.read_block mem sh.Layout.s_base sh.Layout.s_words;
    s_dma = Mem.read_block mem lay.Layout.dma_base lay.Layout.dma_words;
    s_replicas = images;
    s_words = words;
  }

let restore_memory mem (lay : Layout.t) snap =
  List.iter
    (fun img ->
      let p = lay.Layout.partitions.(img.i_rid) in
      Mem.write_block mem p.Layout.p_base img.i_partition)
    snap.s_replicas;
  Mem.write_block mem lay.Layout.shared.Layout.s_base snap.s_shared;
  Mem.write_block mem lay.Layout.dma_base snap.s_dma
