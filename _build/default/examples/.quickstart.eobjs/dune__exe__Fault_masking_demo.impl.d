examples/fault_masking_demo.ml: Config Kv_run List Printf Rcoe_core Rcoe_harness Rcoe_machine Rcoe_workloads Runner String System Ycsb
