open Rcoe_machine

type thread_state =
  | T_ready
  | T_running
  | T_blocked_irq of int
  | T_blocked_join of int
  | T_blocked_input
  | T_exited

type thread = {
  tid : int;
  mutable tstate : thread_state;
  ctx_addr : int;
  entry : int;
}

type callbacks = {
  cb_info : int -> int -> int;
  cb_kernel_update : int -> int array -> unit;
}

type syscall_result =
  | Sr_local
  | Sr_ft of { num : int; args : int array }

type fault_disposition =
  | Fd_user_fault
  | Fd_user_exception
  | Fd_kernel_abort of int

type t = {
  krid : int;
  machine : Machine.t;
  kcore : Core.t;
  klayout : Layout.t;
  kpart : Layout.partition;
  kprogram : Rcoe_isa.Program.t;
  kcode : Rcoe_isa.Instr.t array;
      (* This kernel's private copy of the program code. Replicas must
         not share a mutable code image: a self-modifying patch in one
         replica reaching the others through aliasing would be exactly
         the silent common-mode corruption RCoE exists to detect. *)
  korig : Rcoe_isa.Instr.t array; (* pristine image, for rollback *)
  mutable kpatched : bool; (* kcode differs (or ever differed) from korig *)
  kbc : Blockc.t option; (* Some iff backend = Blocks *)
  pt : Page_table.table;
  kenv : Core.env;
  cb : callbacks;
  threads : thread option array;
  mutable nthreads : int;
  mutable current : int;
  run_q : int Queue.t;
  irq_latch : (int, int) Hashtbl.t; (* dpn -> pending deliveries *)
  kout : Buffer.t;
  mutable next_free_word : int; (* low frame allocator bump pointer *)
  mutable high_free_word : int; (* high (role-frame) allocator *)
  mutable last_fault : (int * Core.fault) option;
}

(* Tags for kernel state updates folded into the signature. *)
let upd_pte = 1
let upd_spawn = 2
let upd_switch = 3
let upd_exit = 4
let upd_code = 5

let rid t = t.krid
let core t = t.kcore
let env t = t.kenv
let block_cache t = t.kbc

(* One architectural cycle through whichever backend this kernel was
   created with. The interpreter is the oracle; the block compiler is
   observably identical to it (enforced by test/test_exec_blocks.ml). *)
let step t =
  match t.kbc with
  | None -> Core.step t.kcore t.kenv
  | Some bc -> Blockc.step bc

(* Overwrite one instruction in this kernel's private code image and
   drop any compiled block for its page. The only legal way code
   changes at runtime — user stores cannot reach the Harvard-separate
   code array. *)
let patch_code t ~addr instr =
  if addr < 0 || addr >= Array.length t.kcode then
    invalid_arg (Printf.sprintf "Kernel.patch_code: bad address %d" addr);
  t.kcode.(addr) <- instr;
  t.kpatched <- true;
  match t.kbc with
  | Some bc -> Blockc.invalidate_addr bc addr
  | None -> ()
let layout t = t.klayout
let partition t = t.kpart
let program t = t.kprogram
let output t = t.kout

let create ?trace ?(backend = Blockc.Interp) ~machine ~rid:krid ~core_id
    ~layout:klayout ~program:kprogram ~callbacks () =
  let kpart = klayout.Layout.partitions.(krid) in
  let pt = { Page_table.base = kpart.Layout.pt_base; npages = Layout.va_pages } in
  let mem = machine.Machine.mem in
  Page_table.clear mem pt;
  let kcore = machine.Machine.cores.(core_id) in
  (* All replica-scope emissions (syscalls, preemptions, faults, the
     core's bus stalls) go through this sink. The replication engine
     passes a per-replica child of the machine trace so the replica can
     be stepped on its own domain; standalone kernels share the machine
     trace as before. *)
  let ktrace =
    match trace with Some tr -> tr | None -> machine.Machine.trace
  in
  let korig = kprogram.Rcoe_isa.Program.code in
  let kcode = Array.copy korig in
  let kenv =
    {
      Core.code = kcode;
      mem;
      translate = (fun ~vaddr ~write -> Page_table.translate mem pt ~vaddr ~write);
      dev_read = Machine.dev_read machine;
      dev_write = Machine.dev_write machine;
      bus = Machine.bus_lane machine ~core_id;
      profile = machine.Machine.profile;
      trace = ktrace;
    }
  in
  {
    krid;
    machine;
    kcore;
    klayout;
    kpart;
    kprogram;
    kcode;
    korig;
    kpatched = false;
    kbc =
      (match backend with
      | Blockc.Interp -> None
      | Blockc.Blocks -> Some (Blockc.create kcore kenv));
    pt;
    kenv;
    cb = callbacks;
    threads = Array.make Layout.max_threads None;
    nthreads = 0;
    current = -1;
    run_q = Queue.create ();
    irq_latch = Hashtbl.create 4;
    kout = Buffer.create 128;
    next_free_word = kpart.Layout.user_base;
    high_free_word = kpart.Layout.p_base + kpart.Layout.p_words;
    last_fault = None;
  }

(* --- address space ---------------------------------------------------- *)

let mem t = t.machine.Machine.mem

let map_page ?(quiet = false) t ~vpn pte =
  Page_table.set (mem t) t.pt ~vpn pte;
  if not quiet then begin
    (* Checksum the update with a partition-relative frame number so that
       replicated mappings contribute identically in every replica. *)
    let base_ppn = t.kpart.Layout.p_base / Layout.page_size in
    let limit_ppn = (t.kpart.Layout.p_base + t.kpart.Layout.p_words) / Layout.page_size in
    let rel_ppn =
      if (not pte.Page_table.device) && pte.Page_table.ppn >= base_ppn
         && pte.Page_table.ppn < limit_ppn
      then pte.Page_table.ppn - base_ppn
      else pte.Page_table.ppn
    in
    let flags =
      (if pte.Page_table.valid then 1 else 0)
      lor (if pte.Page_table.writable then 2 else 0)
      lor (if pte.Page_table.dma then 4 else 0)
      lor if pte.Page_table.device then 8 else 0
    in
    t.cb.cb_kernel_update t.krid [| upd_pte; vpn; flags; rel_ppn |]
  end

let map_range t ~va ~words ~ppn0 ~writable ~dma ~device =
  if va land (Layout.page_size - 1) <> 0 then
    invalid_arg "Kernel.map_range: unaligned va";
  let npages = (words + Layout.page_size - 1) / Layout.page_size in
  let vpn0 = va / Layout.page_size in
  for i = 0 to npages - 1 do
    map_page t ~vpn:(vpn0 + i)
      { Page_table.valid = true; writable; dma; device; ppn = ppn0 + i }
  done

let alloc_frame t =
  if t.next_free_word + Layout.page_size > t.high_free_word then
    failwith "Kernel.alloc_frame: partition exhausted";
  let ppn = t.next_free_word / Layout.page_size in
  t.next_free_word <- t.next_free_word + Layout.page_size;
  ppn

let used_user_words t = t.next_free_word - t.kpart.Layout.user_base

let alloc_frame_high t =
  if t.high_free_word - Layout.page_size < t.next_free_word then
    failwith "Kernel.alloc_frame_high: partition exhausted";
  t.high_free_word <- t.high_free_word - Layout.page_size;
  t.high_free_word / Layout.page_size

let setup_address_space t =
  (* Program data + BSS. *)
  let dwords = t.kprogram.Rcoe_isa.Program.data_words in
  if dwords > 0 then begin
    let npages = (dwords + Layout.page_size - 1) / Layout.page_size in
    let ppn0 = alloc_frame t in
    for _ = 2 to npages do
      ignore (alloc_frame t)
    done;
    map_range t ~va:Layout.va_data ~words:dwords ~ppn0 ~writable:true ~dma:false
      ~device:false;
    let image = Rcoe_isa.Program.data_image t.kprogram in
    Mem.write_block (mem t) (ppn0 * Layout.page_size) image
  end;
  (* Scratch page. *)
  let sppn = alloc_frame t in
  map_range t ~va:Layout.va_scratch ~words:Layout.page_size ~ppn0:sppn
    ~writable:true ~dma:false ~device:false

let dma_pages_mapped t =
  let acc = ref [] in
  for vpn = Layout.va_pages - 1 downto 0 do
    let pte = Page_table.get (mem t) t.pt ~vpn in
    if pte.Page_table.valid && pte.Page_table.dma then acc := vpn :: !acc
  done;
  !acc

(* --- threads ----------------------------------------------------------- *)

let thread t tid =
  match t.threads.(tid) with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "Kernel.thread: no thread %d" tid)

let current_tid t = t.current

let ctx_addr_of t tid = t.kpart.Layout.ctx_base + (tid * Layout.ctx_words)

let spawn t ~entry ~arg =
  if t.nthreads >= Layout.max_threads then failwith "Kernel.spawn: too many threads";
  let tid = t.nthreads in
  t.nthreads <- t.nthreads + 1;
  (* Map the thread's stack (2 pages, on demand, per tid slot). *)
  let stack_top = Layout.stack_top ~tid in
  let stack_va = stack_top - Layout.stack_words_per_thread in
  let ppn0 = alloc_frame t in
  ignore (alloc_frame t);
  map_range t ~va:stack_va ~words:Layout.stack_words_per_thread ~ppn0
    ~writable:true ~dma:false ~device:false;
  let ctx_addr = ctx_addr_of t tid in
  Context.init (mem t) ~addr:ctx_addr ~entry ~sp:stack_top ~arg;
  t.threads.(tid) <- Some { tid; tstate = T_ready; ctx_addr; entry };
  Queue.add tid t.run_q;
  t.cb.cb_kernel_update t.krid [| upd_spawn; tid; entry |];
  tid

let save_current t =
  if t.current >= 0 then
    Context.save (mem t) ~addr:(ctx_addr_of t t.current) t.kcore

let dispatch t =
  match Queue.take_opt t.run_q with
  | None -> t.current <- -1
  | Some tid ->
      let th = thread t tid in
      th.tstate <- T_running;
      t.current <- tid;
      Context.restore (mem t) ~addr:th.ctx_addr t.kcore;
      Core.clear_exclusive t.kcore;
      t.cb.cb_kernel_update t.krid [| upd_switch; tid |]

let start t = dispatch t

let preempt ?after_save t =
  if t.current >= 0 then begin
    let tid = t.current in
    Rcoe_obs.Trace.preempt t.kenv.Core.trace ~rid:t.krid ~tid;
    save_current t;
    (match after_save with
    | Some f -> f ~tid ~ctx_addr:(ctx_addr_of t tid)
    | None -> ());
    let th = thread t tid in
    th.tstate <- T_ready;
    Queue.add tid t.run_q;
    t.current <- -1
  end;
  Core.clear_exclusive t.kcore;
  if not (Queue.is_empty t.run_q) then dispatch t

let block_current t state =
  if t.current < 0 then invalid_arg "Kernel.block_current: idle";
  save_current t;
  (thread t t.current).tstate <- state;
  t.current <- -1;
  dispatch t

let unblock t tid =
  let th = thread t tid in
  (match th.tstate with
  | T_exited | T_ready | T_running -> ()
  | T_blocked_irq _ | T_blocked_join _ | T_blocked_input ->
      th.tstate <- T_ready;
      Queue.add tid t.run_q);
  if t.current < 0 then dispatch t

let iter_threads t f =
  Array.iter (function Some th -> f th | None -> ()) t.threads

let post_irq_waiters t ~dpn =
  let woken = ref 0 in
  iter_threads t (fun th ->
      match th.tstate with
      | T_blocked_irq d when d = dpn ->
          incr woken;
          unblock t th.tid
      | _ -> ());
  !woken

let wake_irq_waiters t ~dpn =
  let woken = post_irq_waiters t ~dpn in
  if woken = 0 then begin
    (* Latch: the driver was not waiting yet; deliver on its next wait. *)
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.irq_latch dpn) in
    Hashtbl.replace t.irq_latch dpn (cur + 1)
  end;
  woken

let wake_input_waiters t =
  let woken = ref 0 in
  iter_threads t (fun th ->
      match th.tstate with
      | T_blocked_input ->
          incr woken;
          unblock t th.tid
      | _ -> ());
  !woken

let runnable t = t.current >= 0 || not (Queue.is_empty t.run_q)

let all_exited t =
  t.nthreads > 0
  && t.current < 0
  &&
  let live = ref false in
  iter_threads t (fun th -> if th.tstate <> T_exited then live := true);
  not !live

let live_thread_count t =
  let n = ref 0 in
  iter_threads t (fun th -> if th.tstate <> T_exited then incr n);
  !n

(* --- user memory ------------------------------------------------------- *)

exception User_mem_error of int

let translate_user t ~va ~write =
  match Page_table.translate (mem t) t.pt ~vaddr:va ~write with
  | Page_table.Phys p -> p
  | Page_table.Device _ | Page_table.No_mapping | Page_table.Not_writable ->
      raise (User_mem_error va)

let read_user t ~va = Mem.read (mem t) (translate_user t ~va ~write:false)

let write_user t ~va v = Mem.write (mem t) (translate_user t ~va ~write:true) v

let read_user_block t ~va ~len =
  Array.init len (fun i -> read_user t ~va:(va + i))

let write_user_block t ~va block =
  Array.iteri (fun i v -> write_user t ~va:(va + i) v) block

let translate_mmio t ~va =
  match Page_table.translate (mem t) t.pt ~vaddr:va ~write:false with
  | Page_table.Device (d, off) -> Some (d, off)
  | Page_table.Phys _ | Page_table.No_mapping | Page_table.Not_writable -> None

(* --- thread termination ------------------------------------------------ *)

let exit_thread t tid =
  let th = thread t tid in
  th.tstate <- T_exited;
  t.cb.cb_kernel_update t.krid [| upd_exit; tid |];
  (* Wake joiners. *)
  iter_threads t (fun w ->
      match w.tstate with
      | T_blocked_join j when j = tid -> unblock t w.tid
      | _ -> ());
  if t.current = tid then begin
    t.current <- -1;
    dispatch t
  end

let exit_current t = if t.current >= 0 then exit_thread t t.current

let last_fault t = t.last_fault

let kill_current t fault =
  if t.current >= 0 then begin
    t.last_fault <- Some (t.current, fault);
    exit_thread t t.current
  end

(* --- syscalls ----------------------------------------------------------- *)

let regs t = t.kcore.Core.regs
let arg t i = (regs t).(i)
let set_result t v = (regs t).(0) <- v

let handle_syscall t num =
  let cost = t.kenv.Core.profile.Arch.syscall_cost in
  Core.add_stall t.kcore cost;
  Core.clear_exclusive t.kcore;
  (let tr = t.kenv.Core.trace in
   if Rcoe_obs.Trace.enabled tr then
     Rcoe_obs.Trace.syscall tr ~rid:t.krid ~num ~name:(Syscall.name num) ~cost);
  if Syscall.is_ft num then begin
    (* Capture only the declared arguments: trailing registers hold
       caller-local values that legitimately differ between replicas
       (e.g. the primary-only device pointers of an LC driver). *)
    let nargs = Syscall.arg_count num in
    Sr_ft
      { num; args = Array.init 4 (fun i -> if i < nargs then arg t i else 0) }
  end
  else begin
    if num = Syscall.sys_exit then exit_thread t t.current
    else if num = Syscall.sys_yield then preempt t
    else if num = Syscall.sys_spawn then begin
      let tid = spawn t ~entry:(arg t 0) ~arg:(arg t 1) in
      set_result t tid
    end
    else if num = Syscall.sys_putchar then
      Buffer.add_char t.kout (Char.chr (arg t 0 land 0x7F))
    else if num = Syscall.sys_atomic then begin
      match
        let addr = arg t 0 and v = arg t 1 and op = arg t 2 and expect = arg t 3 in
        let old = read_user t ~va:addr in
        (match op with
        | 0 -> write_user t ~va:addr (old + v)
        | 1 -> write_user t ~va:addr v
        | 2 -> if old = expect then write_user t ~va:addr v
        | _ -> ());
        old
      with
      | old -> set_result t old
      | exception User_mem_error _ ->
          kill_current t (Core.Unmapped { vaddr = arg t 0; write = true })
    end
    else if num = Syscall.sys_get_info then
      set_result t (t.cb.cb_info t.krid (arg t 0))
    else if num = Syscall.sys_join then begin
      let target = arg t 0 in
      if target < 0 || target >= t.nthreads then set_result t (-1)
      else if (thread t target).tstate = T_exited then set_result t 0
      else begin
        set_result t 0;
        block_current t (T_blocked_join target)
      end
    end
    else if num = Syscall.sys_code_patch then begin
      let addr = arg t 0
      and kind = arg t 1
      and rd = arg t 2
      and imm = arg t 3 in
      let instr =
        if addr < 0 || addr >= Array.length t.kcode then None
        else
          match kind with
          | 0 -> Some Rcoe_isa.Instr.Nop
          | 1 when rd >= 0 && rd < Rcoe_isa.Reg.count ->
              Some
                (Rcoe_isa.Instr.Mov
                   (Rcoe_isa.Reg.of_index rd, Rcoe_isa.Instr.Imm imm))
          | 2 when rd >= 0 && rd < Rcoe_isa.Reg.count ->
              let r = Rcoe_isa.Reg.of_index rd in
              Some (Rcoe_isa.Instr.Alu (Rcoe_isa.Instr.Add, r, r, Rcoe_isa.Instr.Imm imm))
          | 3 when imm >= 0 && imm < Array.length t.kcode ->
              Some (Rcoe_isa.Instr.Jmp (Rcoe_isa.Instr.Abs imm))
          | _ -> None
      in
      match instr with
      | Some i ->
          patch_code t ~addr i;
          (* Fold the patch into the signature: replicas that patch
             different words (or one patches and one does not) must
             diverge detectably. *)
          t.cb.cb_kernel_update t.krid [| upd_code; addr; kind; rd; imm |];
          set_result t 0
      | None -> kill_current t (Core.Bad_ip t.kcore.Core.ip)
    end
    else if num = Syscall.sys_ticks then set_result t (t.cb.cb_info t.krid 5)
    else if num = Syscall.sys_wait_irq then begin
      let dpn = arg t 0 in
      let latched = Option.value ~default:0 (Hashtbl.find_opt t.irq_latch dpn) in
      if latched > 0 then begin
        Hashtbl.replace t.irq_latch dpn (latched - 1);
        set_result t 0
      end
      else begin
        set_result t 0;
        block_current t (T_blocked_irq dpn)
      end
    end
    else
      (* Unknown syscall: kill the thread (illegal request). *)
      kill_current t (Core.Bad_ip t.kcore.Core.ip);
    Sr_local
  end

(* --- faults -------------------------------------------------------------- *)

let fault_kind = function
  | Core.Unmapped _ -> "unmapped"
  | Core.Write_protect _ -> "write-protect"
  | Core.Division_by_zero -> "div-zero"
  | Core.Bad_ip _ -> "bad-ip"
  | Core.Phys_abort _ -> "phys-abort"

let handle_fault t fault =
  Core.add_stall t.kcore t.kenv.Core.profile.Arch.fault_cost;
  Rcoe_obs.Trace.fault t.kenv.Core.trace ~rid:t.krid
    ~kind:(fault_kind fault);
  let disposition =
    match fault with
    | Core.Unmapped _ | Core.Write_protect _ -> Fd_user_fault
    | Core.Division_by_zero | Core.Bad_ip _ -> Fd_user_exception
    | Core.Phys_abort a -> Fd_kernel_abort a
  in
  (match disposition with
  | Fd_user_fault | Fd_user_exception -> kill_current t fault
  | Fd_kernel_abort _ ->
      (* The engine decides: on x86 this is an (uncontrolled) kernel
         exception; with exception-handler barriers it halts the replica
         in a detectable way. Kill the thread locally either way. *)
      kill_current t fault);
  disposition

(* --- checkpointing -------------------------------------------------------- *)

(* A kernel snapshot captures everything [adopt_runtime_from] copies,
   plus what rollback additionally needs: the console-output length (so
   replayed output is not emitted twice), the last recorded fault, and
   the core's full architectural state including the exclusive monitor.
   Memory (contexts, page table, user frames) is *not* captured here —
   the engine snapshots the whole partition separately. *)

type core_snapshot = {
  cs_ip : int;
  cs_regs : int array;
  cs_fregs : float array;
  cs_stall : int;
  cs_hw_branches : int;
  cs_last_was_cntinc : bool;
  cs_excl_armed : bool;
  cs_excl_addr : int;
  cs_bus_wait : int;
  cs_halted : bool;
}

type snapshot = {
  sn_nthreads : int;
  sn_threads : thread option array;
  sn_current : int;
  sn_run_q : int list;
  sn_irq_latch : (int * int) list;
  sn_out_len : int;
  sn_next_free_word : int;
  sn_high_free_word : int;
  sn_last_fault : (int * Core.fault) option;
  sn_code : Rcoe_isa.Instr.t array option;
      (* Copy of the (patched) code image — [None] when the code is
         still pristine, which is the overwhelmingly common case and
         keeps snapshots O(dirty) rather than O(code). *)
  sn_core : core_snapshot;
}

let copy_thread th = { th with tstate = th.tstate }

let snapshot t =
  let c = t.kcore in
  {
    sn_nthreads = t.nthreads;
    sn_threads = Array.map (Option.map copy_thread) t.threads;
    sn_current = t.current;
    sn_run_q = List.rev (Queue.fold (fun acc tid -> tid :: acc) [] t.run_q);
    sn_irq_latch = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.irq_latch [];
    sn_out_len = Buffer.length t.kout;
    sn_next_free_word = t.next_free_word;
    sn_high_free_word = t.high_free_word;
    sn_last_fault = t.last_fault;
    sn_code = (if t.kpatched then Some (Array.copy t.kcode) else None);
    sn_core =
      {
        cs_ip = c.Core.ip;
        cs_regs = Array.copy c.Core.regs;
        cs_fregs = Array.copy c.Core.fregs;
        cs_stall = c.Core.stall;
        cs_hw_branches = c.Core.hw_branches;
        cs_last_was_cntinc = c.Core.last_was_cntinc;
        cs_excl_armed = c.Core.excl_armed;
        cs_excl_addr = c.Core.excl_addr;
        cs_bus_wait = c.Core.bus_wait;
        cs_halted = c.Core.halted;
      };
  }

let restore t s =
  t.nthreads <- s.sn_nthreads;
  Array.iteri
    (fun tid slot -> t.threads.(tid) <- Option.map copy_thread slot)
    s.sn_threads;
  t.current <- s.sn_current;
  Queue.clear t.run_q;
  List.iter (fun tid -> Queue.add tid t.run_q) s.sn_run_q;
  Hashtbl.reset t.irq_latch;
  List.iter (fun (k, v) -> Hashtbl.replace t.irq_latch k v) s.sn_irq_latch;
  (* Console output only ever grows; cut the replayed suffix. *)
  if Buffer.length t.kout > s.sn_out_len then Buffer.truncate t.kout s.sn_out_len;
  t.next_free_word <- s.sn_next_free_word;
  t.high_free_word <- s.sn_high_free_word;
  t.last_fault <- s.sn_last_fault;
  (* Rewind the code image across any patches between the snapshot and
     now; the block cache may hold blocks compiled from the newer code,
     so it is dropped wholesale whenever the image changes. *)
  (match s.sn_code with
  | Some code ->
      Array.blit code 0 t.kcode 0 (Array.length code);
      t.kpatched <- true;
      Option.iter Blockc.invalidate_all t.kbc
  | None ->
      if t.kpatched then begin
        Array.blit t.korig 0 t.kcode 0 (Array.length t.korig);
        t.kpatched <- false;
        Option.iter Blockc.invalidate_all t.kbc
      end);
  let c = t.kcore and cs = s.sn_core in
  Array.blit cs.cs_regs 0 c.Core.regs 0 (Array.length cs.cs_regs);
  Array.blit cs.cs_fregs 0 c.Core.fregs 0 (Array.length cs.cs_fregs);
  c.Core.ip <- cs.cs_ip;
  c.Core.stall <- cs.cs_stall;
  c.Core.hw_branches <- cs.cs_hw_branches;
  c.Core.last_was_cntinc <- cs.cs_last_was_cntinc;
  c.Core.excl_armed <- cs.cs_excl_armed;
  c.Core.excl_addr <- cs.cs_excl_addr;
  c.Core.bus_wait <- cs.cs_bus_wait;
  c.Core.halted <- cs.cs_halted;
  c.Core.bp <- None;
  c.Core.bp_suppress <- false

(* --- re-integration ------------------------------------------------------ *)

let adopt_runtime_from t ~src =
  let delta = t.kpart.Layout.p_base - src.kpart.Layout.p_base in
  t.nthreads <- src.nthreads;
  Array.iteri
    (fun tid slot ->
      t.threads.(tid) <-
        Option.map
          (fun th ->
            { th with ctx_addr = ctx_addr_of t tid })
          slot)
    src.threads;
  t.current <- src.current;
  Queue.clear t.run_q;
  Queue.iter (fun tid -> Queue.add tid t.run_q) src.run_q;
  Hashtbl.reset t.irq_latch;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.irq_latch k v) src.irq_latch;
  t.next_free_word <- src.next_free_word + delta;
  t.high_free_word <- src.high_free_word + delta;
  t.last_fault <- None;
  (* Adopt the source's code image if either side has ever diverged from
     the pristine program; the reintegrated replica must execute exactly
     the code the survivors execute. *)
  if src.kpatched || t.kpatched then begin
    Array.blit src.kcode 0 t.kcode 0 (Array.length src.kcode);
    t.kpatched <- src.kpatched;
    Option.iter Blockc.invalidate_all t.kbc
  end;
  (* Adopt the source core's architectural state. *)
  let sc = src.kcore and dc = t.kcore in
  Array.blit sc.Core.regs 0 dc.Core.regs 0 (Array.length sc.Core.regs);
  Array.blit sc.Core.fregs 0 dc.Core.fregs 0 (Array.length sc.Core.fregs);
  dc.Core.ip <- sc.Core.ip;
  dc.Core.hw_branches <- sc.Core.hw_branches;
  dc.Core.last_was_cntinc <- sc.Core.last_was_cntinc;
  dc.Core.stall <- sc.Core.stall;
  dc.Core.bp <- None;
  dc.Core.bp_suppress <- false;
  dc.Core.halted <- false;
  Core.clear_exclusive dc
