test/test_ft_ops.ml: Alcotest Asm Config Instr Kernel Layout List Netdev Option Printf Program Rcoe_core Rcoe_isa Rcoe_kernel Rcoe_machine Reg Syscall System
