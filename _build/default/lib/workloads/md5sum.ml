open Rcoe_isa
open Reg
open Rcoe_util

let default_message_words = 128
let default_iters = 8

let digest_label = "md5_digest"

let mask32 = 0xFFFFFFFF

let message ~message_words ~seed =
  let rng = Rng.create (seed lxor 0x5D5) in
  Array.init message_words (fun _ -> Rng.next rng land mask32)

(* MD5 padding for a message of whole 32-bit words: 0x80 byte, zeros, and
   the 64-bit bit length, rounded to 16-word blocks. *)
let padded msg =
  let n = Array.length msg in
  let bitlen = n * 32 in
  let total = (n + 3) / 16 * 16 + (if (n + 3) mod 16 = 0 then 0 else 16) in
  let total = if total < n + 3 then total + 16 else total in
  let out = Array.make total 0 in
  Array.blit msg 0 out 0 n;
  out.(n) <- 0x80;
  out.(total - 2) <- bitlen land mask32;
  out.(total - 1) <- (bitlen lsr 32) land mask32;
  out

let expected_digest ~message_words ~seed =
  let msg = message ~message_words ~seed in
  let d = Rcoe_checksum.Md5.words msg in
  Array.init 4 (fun i ->
      let byte j = Char.code d.[(i * 4) + j] in
      byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))

let program ?(message_words = default_message_words) ?(iters = default_iters)
    ?(seed = 7) ~branch_count () =
  if message_words <= 0 then invalid_arg "Md5sum.program: empty message";
  let msg = message ~message_words ~seed in
  let blocks = padded msg in
  let nblocks = Array.length blocks / 16 in
  let a = Asm.create "md5sum" in
  Asm.data a "msg" blocks;
  Asm.data a "k_table" Rcoe_checksum.Md5.k;
  Asm.data a "s_table" Rcoe_checksum.Md5.s;
  Asm.data a "expected" (expected_digest ~message_words ~seed);
  Asm.space a digest_label 4;
  Asm.space a "state" 4;
  Asm.space a "iter_cell" 1;

  (* Register plan inside the round loops:
     r4-r7 = a,b,c,d; r8 = round index i; r10 = k_table; r11 = s_table;
     r12 = current block base; r1-r3, r15 = scratch. r13 sp, r14 lr. *)
  let load_abcd () =
    Asm.la a R1 "state";
    Asm.ld a R4 R1 0;
    Asm.ld a R5 R1 1;
    Asm.ld a R6 R1 2;
    Asm.ld a R7 R1 3
  in

  (* Shared round tail with f (r2) and g (r3) already computed:
     f += a + k[i] + m[g]; then tmp_d = d; d = c; c = b;
     b = b + rotl32(f, s[i]); a = tmp_d. *)
  let round_tail () =
    Asm.add a R2 R2 R4;
    Asm.add a R15 R10 R8;
    Asm.ld a R15 R15 0;
    Asm.add a R2 R2 R15;
    Asm.add a R3 R3 R12;
    Asm.ld a R15 R3 0;
    Asm.add a R2 R2 R15;
    Asm.andi a R2 R2 mask32;
    Asm.add a R15 R11 R8;
    Asm.ld a R15 R15 0;
    Asm.shl a R3 R2 R15;
    Asm.andi a R3 R3 mask32;
    Asm.movi a R1 32;
    Asm.sub a R1 R1 R15;
    Asm.shr a R2 R2 R1;
    Asm.or_ a R2 R2 R3;
    (* r2 = rotl32(f, s) *)
    Asm.mov a R1 R7;
    (* r1 = old d *)
    Asm.mov a R7 R6;
    (* d = c *)
    Asm.mov a R6 R5;
    (* c = b *)
    Asm.add a R5 R5 R2;
    Asm.andi a R5 R5 mask32;
    (* b = old b + rot: note c already holds old b, and R5 still held old
       b before the add, so this is correct. *)
    Asm.mov a R4 R1
    (* a = old d *)
  in

  Asm.label a "main";
  Asm.la a R10 "k_table";
  Asm.la a R11 "s_table";
  (* The iteration counter lives in memory: every register except the
     reserved branch counter is needed inside the rounds. *)
  Asm.la a R1 "iter_cell";
  Asm.movi a R2 0;
  Asm.st a R1 R2 0;
  Asm.label a "iter_top";
  Asm.la a R1 "iter_cell";
  Asm.ld a R2 R1 0;
  Asm.b a Instr.Ge R2 (Instr.Imm iters) "iter_exit";
  (fun () ->
      (* Initialise the chaining state. *)
      Asm.la a R1 "state";
      Asm.movi a R2 0x67452301;
      Asm.st a R1 R2 0;
      Asm.movi a R2 0xEFCDAB89;
      Asm.st a R1 R2 1;
      Asm.movi a R2 0x98BADCFE;
      Asm.st a R1 R2 2;
      Asm.movi a R2 0x10325476;
      Asm.st a R1 R2 3;
      (* Block loop: r12 walks the message. *)
      Asm.la a R12 "msg";
      Asm.for_up a R0 ~start:0 ~stop:(Instr.Imm nblocks) (fun () ->
          Asm.push a R0;
          load_abcd ();
          (* Round 1: f = (b & c) | (~b & d); g = i. *)
          Asm.for_up a R8 ~start:0 ~stop:(Instr.Imm 16) (fun () ->
              Asm.and_ a R2 R5 R6;
              Asm.not_ a R3 R5;
              Asm.and_ a R3 R3 R7;
              Asm.or_ a R2 R2 R3;
              Asm.andi a R2 R2 mask32;
              Asm.mov a R3 R8;
              round_tail ());
          (* Round 2: f = (d & b) | (~d & c); g = (5i+1) mod 16. *)
          Asm.for_up a R8 ~start:16 ~stop:(Instr.Imm 32) (fun () ->
              Asm.and_ a R2 R7 R5;
              Asm.not_ a R3 R7;
              Asm.and_ a R3 R3 R6;
              Asm.or_ a R2 R2 R3;
              Asm.andi a R2 R2 mask32;
              Asm.muli a R3 R8 5;
              Asm.addi a R3 R3 1;
              Asm.remi a R3 R3 16;
              round_tail ());
          (* Round 3: f = b ^ c ^ d; g = (3i+5) mod 16. *)
          Asm.for_up a R8 ~start:32 ~stop:(Instr.Imm 48) (fun () ->
              Asm.xor a R2 R5 R6;
              Asm.xor a R2 R2 R7;
              Asm.andi a R2 R2 mask32;
              Asm.muli a R3 R8 3;
              Asm.addi a R3 R3 5;
              Asm.remi a R3 R3 16;
              round_tail ());
          (* Round 4: f = c ^ (b | ~d); g = 7i mod 16. *)
          Asm.for_up a R8 ~start:48 ~stop:(Instr.Imm 64) (fun () ->
              Asm.not_ a R3 R7;
              Asm.andi a R3 R3 mask32;
              Asm.or_ a R3 R5 R3;
              Asm.xor a R2 R6 R3;
              Asm.andi a R2 R2 mask32;
              Asm.muli a R3 R8 7;
              Asm.remi a R3 R3 16;
              round_tail ());
          (* state += (a,b,c,d), mod 2^32. *)
          Asm.la a R1 "state";
          Asm.ld a R2 R1 0;
          Asm.add a R2 R2 R4;
          Asm.andi a R2 R2 mask32;
          Asm.st a R1 R2 0;
          Asm.ld a R2 R1 1;
          Asm.add a R2 R2 R5;
          Asm.andi a R2 R2 mask32;
          Asm.st a R1 R2 1;
          Asm.ld a R2 R1 2;
          Asm.add a R2 R2 R6;
          Asm.andi a R2 R2 mask32;
          Asm.st a R1 R2 2;
          Asm.ld a R2 R1 3;
          Asm.add a R2 R2 R7;
          Asm.andi a R2 R2 mask32;
          Asm.st a R1 R2 3;
          Asm.pop a R0;
          Asm.addi a R12 R12 16);
      (* Copy the digest out and compare with the expected value. *)
      Asm.la a R1 "state";
      Asm.la a R2 digest_label;
      Asm.la a R3 "expected";
      Asm.movi a R8 0;
      (* mismatch flag *)
      for i = 0 to 3 do
        Asm.ld a R4 R1 i;
        Asm.st a R2 R4 i;
        Asm.ld a R5 R3 i;
        Asm.sub a R4 R4 R5;
        Asm.or_ a R8 R8 R4
      done;
      (* The digest is critical output: publish it to the signature
         (and vote) BEFORE it can escape through the console. *)
      Wl.add_trace a ~label:digest_label ~words:4;
      Asm.if_ a Instr.Eq R8 (Instr.Imm 0)
        ~else_:(fun () -> Wl.putchar a 'X')
        (fun () -> Wl.putchar a '.')) ();
  Asm.la a R1 "iter_cell";
  Asm.ld a R2 R1 0;
  Asm.addi a R2 R2 1;
  Asm.st a R1 R2 0;
  Asm.jmp a "iter_top";
  Asm.label a "iter_exit";
  Wl.exit_thread a;
  Asm.assemble ~entry:"main" ~branch_count a
