lib/isa/instr.ml: Printf Reg
