(* Tests for the implemented paper extensions: straggler (timeout)
   masking, replica re-integration, and PMU-based fast catch-up. *)

open Rcoe_machine
open Rcoe_core
open Rcoe_workloads

let spin_program ~loops =
  let a = Rcoe_isa.Asm.create "spin" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.for_up a Rcoe_isa.Reg.R4 ~start:0 ~stop:(Rcoe_isa.Instr.Imm loops)
    (fun () -> Rcoe_isa.Asm.nop a);
  Rcoe_isa.Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  Rcoe_isa.Asm.assemble ~entry:"main" a

let tmr_cfg ?(timeout_masking = false) () =
  {
    Config.default with
    Config.mode = Config.LC;
    nreplicas = 3;
    masking = true;
    timeout_masking;
    tick_interval = 5_000;
    barrier_timeout = 60_000;
  }

(* --- straggler masking -------------------------------------------------- *)

let test_timeout_masking_follower () =
  let sys =
    System.create
      ~config:(tmr_cfg ~timeout_masking:true ())
      ~program:(spin_program ~loops:900_000)
  in
  System.run sys ~max_cycles:20_000;
  (System.machine sys).Machine.cores.(2).Core.halted <- true;
  System.run sys ~max_cycles:1_000_000;
  (match System.downgrades sys with
  | [ (_, 2, _) ] -> ()
  | _ -> Alcotest.fail "expected straggler 2 removed");
  Alcotest.(check bool) "system continues" true (System.halted sys = None);
  Alcotest.(check (list int)) "live" [ 0; 1 ] (System.live sys)

let test_timeout_masking_primary () =
  let sys =
    System.create
      ~config:(tmr_cfg ~timeout_masking:true ())
      ~program:(spin_program ~loops:900_000)
  in
  System.run sys ~max_cycles:20_000;
  (System.machine sys).Machine.cores.(0).Core.halted <- true;
  System.run sys ~max_cycles:1_500_000;
  (match System.downgrades sys with
  | [ (_, 0, _) ] -> ()
  | _ -> Alcotest.fail "expected straggler 0 removed");
  Alcotest.(check int) "new primary" 1 (System.primary sys);
  Alcotest.(check bool) "system continues" true (System.halted sys = None)

let test_timeout_without_flag_halts () =
  let sys =
    System.create ~config:(tmr_cfg ()) ~program:(spin_program ~loops:900_000)
  in
  System.run sys ~max_cycles:20_000;
  (System.machine sys).Machine.cores.(2).Core.halted <- true;
  System.run sys ~max_cycles:1_000_000;
  Alcotest.(check bool) "halts" true (System.halted sys = Some System.H_timeout)

let test_two_stragglers_halt () =
  let sys =
    System.create
      ~config:(tmr_cfg ~timeout_masking:true ())
      ~program:(spin_program ~loops:900_000)
  in
  System.run sys ~max_cycles:20_000;
  (System.machine sys).Machine.cores.(1).Core.halted <- true;
  (System.machine sys).Machine.cores.(2).Core.halted <- true;
  System.run sys ~max_cycles:1_000_000;
  Alcotest.(check bool) "no single-straggler consensus: halt" true
    (System.halted sys = Some System.H_timeout)

let test_timeout_masking_requires_masking () =
  match
    Config.validate
      { (tmr_cfg ~timeout_masking:true ()) with Config.masking = false }
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation error"

(* --- detection latency on the timeout path ------------------------------- *)

let test_timeout_masking_records_detection_latency () =
  (* The downgrade taken by timeout masking must record detection
     latency just like a signature-mismatch downgrade: mark the fault
     (the core wedge) with the injection clock, then check the
     histogram gained exactly one sample spanning wedge -> downgrade. *)
  let sys =
    System.create
      ~config:(tmr_cfg ~timeout_masking:true ())
      ~program:(spin_program ~loops:900_000)
  in
  System.run sys ~max_cycles:20_000;
  let injected_at = System.now sys in
  Rcoe_obs.Trace.injection (System.trace sys) ~addr:0 ~bit:0;
  (System.machine sys).Machine.cores.(2).Core.halted <- true;
  System.run sys ~max_cycles:1_000_000 ~stop:(fun s -> System.downgrades s <> []);
  (match System.downgrades sys with
  | [ (at, 2, _) ] -> (
      match
        Rcoe_obs.Metrics.find_histogram (System.metrics sys)
          "detect.latency_cycles"
      with
      | None -> Alcotest.fail "detect.latency_cycles not registered"
      | Some h -> (
          match Rcoe_obs.Metrics.samples h with
          | [ l ] ->
              Alcotest.(check (float 1e-9))
                "latency = downgrade - wedge"
                (float_of_int (at - injected_at))
                l
          | ls -> Alcotest.failf "expected one sample, got %d" (List.length ls)))
  | _ -> Alcotest.fail "expected straggler 2 removed");
  let kinds = List.map snd (System.events sys) in
  Alcotest.(check bool) "E_timeout logged" true
    (List.mem System.E_timeout kinds);
  Alcotest.(check bool) "E_downgrade logged" true
    (List.mem (System.E_downgrade 2) kinds);
  Alcotest.(check bool) "system continues" true (System.halted sys = None)

let test_timeout_halt_records_detection_latency () =
  (* Without the masking extension the same wedge is a fail-stop; the
     latency clock must still be consumed on the halt path. *)
  let sys =
    System.create ~config:(tmr_cfg ()) ~program:(spin_program ~loops:900_000)
  in
  System.run sys ~max_cycles:20_000;
  let injected_at = System.now sys in
  Rcoe_obs.Trace.injection (System.trace sys) ~addr:0 ~bit:0;
  (System.machine sys).Machine.cores.(2).Core.halted <- true;
  System.run sys ~max_cycles:1_000_000;
  Alcotest.(check bool) "halts" true
    (System.halted sys = Some System.H_timeout);
  match
    Rcoe_obs.Metrics.find_histogram (System.metrics sys)
      "detect.latency_cycles"
  with
  | None -> Alcotest.fail "detect.latency_cycles not registered"
  | Some h -> (
      match Rcoe_obs.Metrics.samples h with
      | [ l ] ->
          Alcotest.(check (float 1e-9))
            "latency = halt - wedge"
            (float_of_int (System.now sys - injected_at))
            l
      | ls -> Alcotest.failf "expected one sample, got %d" (List.length ls))

(* --- re-integration ------------------------------------------------------ *)

let test_reintegration_restores_tmr () =
  let sys =
    System.create ~config:(tmr_cfg ()) ~program:(spin_program ~loops:2_000_000)
  in
  System.run sys ~max_cycles:20_000;
  (* Fault replica 2 -> downgrade to DMR. *)
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 2 + 1) ~bit:5;
  System.run sys ~max_cycles:500_000
    ~stop:(fun s -> System.downgrades s <> []);
  Alcotest.(check (list int)) "DMR" [ 0; 1 ] (System.live sys);
  (* Re-admit it. *)
  (match System.request_reintegration sys ~rid:2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "request rejected: %s" e);
  System.run sys ~max_cycles:500_000
    ~stop:(fun s -> System.reintegrations s <> []);
  Alcotest.(check (list int)) "TMR again" [ 0; 1; 2 ] (System.live sys);
  (match System.reintegrations sys with
  | [ (_, 2) ] -> ()
  | _ -> Alcotest.fail "expected reintegration of 2");
  (* The re-admitted replica must be a genuine participant: run on with
     no divergence... *)
  System.run sys ~max_cycles:300_000;
  Alcotest.(check bool) "no halt after re-admission" true
    (System.halted sys = None);
  (* ...and masking works again: fault replica 1 now. *)
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 1 + 1) ~bit:6;
  System.run sys ~max_cycles:500_000
    ~stop:(fun s -> List.length (System.downgrades s) >= 2);
  Alcotest.(check (list int)) "masked again using replica 2" [ 0; 2 ]
    (System.live sys);
  Alcotest.(check bool) "still running" true (System.halted sys = None)

let test_reintegration_request_validation () =
  let sys =
    System.create ~config:(tmr_cfg ()) ~program:(spin_program ~loops:100_000)
  in
  (match System.request_reintegration sys ~rid:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "live replica must be rejected");
  match System.request_reintegration sys ~rid:7 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad rid must be rejected"

let test_reintegrated_program_completes () =
  (* The re-admitted replica executes to completion alongside the others
     (its adopted state is execution-equivalent). *)
  let sys =
    System.create ~config:(tmr_cfg ()) ~program:(spin_program ~loops:700_000)
  in
  System.run sys ~max_cycles:20_000;
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 2 + 2) ~bit:3;
  System.run sys ~max_cycles:500_000
    ~stop:(fun s -> System.downgrades s <> []);
  (match System.request_reintegration sys ~rid:2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "request rejected: %s" e);
  System.run sys ~max_cycles:4_000_000;
  Alcotest.(check bool) "finished" true (System.finished sys);
  Alcotest.(check bool) "replica 2 finished too" true (System.replica_done sys 2)

(* --- fast catch-up --------------------------------------------------------- *)

let test_fast_catchup_reduces_bp_fires () =
  let run ~fast_catchup =
    let cfg =
      {
        Config.default with
        Config.mode = Config.CC;
        nreplicas = 2;
        fast_catchup;
        tick_interval = 20_000;
        barrier_timeout = 2_000_000;
      }
    in
    let program = Whetstone.program ~loops:60 ~branch_count:false () in
    let sys = System.create ~config:cfg ~program in
    System.run sys ~max_cycles:50_000_000;
    Alcotest.(check bool) "finished" true (System.finished sys);
    ((System.stats sys).System.bp_fires, System.now sys)
  in
  let slow_fires, slow_cycles = run ~fast_catchup:false in
  let fast_fires, fast_cycles = run ~fast_catchup:true in
  Alcotest.(check bool)
    (Printf.sprintf "fewer debug exceptions (%d -> %d)" slow_fires fast_fires)
    true
    (fast_fires <= slow_fires);
  Alcotest.(check bool)
    (Printf.sprintf "not slower (%d -> %d cycles)" slow_cycles fast_cycles)
    true
    (fast_cycles <= slow_cycles + (slow_cycles / 10))

let test_fast_catchup_still_correct () =
  (* Same final state with and without the optimisation. *)
  let out ~fast_catchup =
    let cfg =
      {
        Config.default with
        Config.mode = Config.CC;
        nreplicas = 2;
        fast_catchup;
        tick_interval = 10_000;
      }
    in
    let program =
      Md5sum.program ~message_words:48 ~iters:2 ~seed:4 ~branch_count:false ()
    in
    let sys = System.create ~config:cfg ~program in
    System.run sys ~max_cycles:50_000_000;
    (System.halted sys, System.output sys 0, System.output sys 1)
  in
  let h1, a1, b1 = out ~fast_catchup:false in
  let h2, a2, b2 = out ~fast_catchup:true in
  Alcotest.(check bool) "no halts" true (h1 = None && h2 = None);
  Alcotest.(check string) "correct digests (off)" ".." a1;
  Alcotest.(check string) "correct digests (on)" ".." a2;
  Alcotest.(check string) "replicas agree (off)" a1 b1;
  Alcotest.(check string) "replicas agree (on)" a2 b2

let suite =
  [
    Alcotest.test_case "timeout masking: follower" `Quick
      test_timeout_masking_follower;
    Alcotest.test_case "timeout masking: primary" `Quick
      test_timeout_masking_primary;
    Alcotest.test_case "timeout without flag halts" `Quick
      test_timeout_without_flag_halts;
    Alcotest.test_case "two stragglers halt" `Quick test_two_stragglers_halt;
    Alcotest.test_case "timeout masking requires masking" `Quick
      test_timeout_masking_requires_masking;
    Alcotest.test_case "timeout masking records detection latency" `Quick
      test_timeout_masking_records_detection_latency;
    Alcotest.test_case "timeout halt records detection latency" `Quick
      test_timeout_halt_records_detection_latency;
    Alcotest.test_case "reintegration restores TMR" `Slow
      test_reintegration_restores_tmr;
    Alcotest.test_case "reintegration request validation" `Quick
      test_reintegration_request_validation;
    Alcotest.test_case "reintegrated replica completes" `Slow
      test_reintegrated_program_completes;
    Alcotest.test_case "fast catch-up reduces debug exceptions" `Slow
      test_fast_catchup_reduces_bp_fires;
    Alcotest.test_case "fast catch-up preserves results" `Slow
      test_fast_catchup_still_correct;
  ]
