open Rcoe_isa

let sys a n = Asm.syscall a n

let exit_thread a = Asm.syscall a Rcoe_kernel.Syscall.sys_exit

let putchar a c =
  Asm.movi a Reg.R0 (Char.code c);
  Asm.syscall a Rcoe_kernel.Syscall.sys_putchar

let call a name =
  Asm.push a Reg.R14;
  Asm.jal a name;
  Asm.pop a Reg.R14

let func a name body =
  let skip = Asm.new_label a (name ^ "_skip") in
  Asm.jmp a skip;
  Asm.label a name;
  body ();
  Asm.ret a;
  Asm.label a skip

let add_trace a ~label ~words =
  Asm.la a Reg.R0 label;
  Asm.movi a Reg.R1 words;
  Asm.syscall a Rcoe_kernel.Syscall.sys_ft_add_trace

let branch_count_for arch =
  (Rcoe_machine.Arch.profile_of arch).Rcoe_machine.Arch.count_mode
  = Rcoe_machine.Arch.Compiler_assisted

let spawn_label ~entry a ~arg =
  Asm.movi a Reg.R0 entry;
  Asm.movi a Reg.R1 arg;
  Asm.syscall a Rcoe_kernel.Syscall.sys_spawn

let resolve_entry build ~label =
  let probe = build 0 in
  let addr = Program.label_addr probe label in
  let final = build addr in
  (* The second build must have the label at the same address, otherwise
     the layout depended on the entry value. *)
  if Program.label_addr final label <> addr then
    invalid_arg "Wl.resolve_entry: build is not layout-deterministic";
  final
