(** Reproduction of the paper's fault-injection experiments (Section V-C).

    Counts are scaled: the paper injects 60k–91k faults per
    configuration; these campaigns default to a few hundred trials so the
    whole bench finishes in minutes. EXPERIMENTS.md records the scaling
    and the shape comparison. *)

val one_trial_for_debug :
  mode:Rcoe_core.Config.mode -> n:int -> seed:int ->
  Rcoe_faults.Outcome.t * int
(** Single x86-campaign trial (exposed for tests and debugging). *)

val table7 : ?trials:int -> variant:[ `X86 | `Arm ] -> unit -> unit
(** Memory fault injection on the running KV server.
    [`X86]: inject into every replica's kernel memory, the shared
    framework region, the primary's user memory, and the DMA buffers; no
    exception-handler barriers (kernel aborts escape as kernel
    exceptions). [`Arm]: inject into all replicas' memory; kernel aborts
    are caught by barriers. Includes the LC-*-N rows (no driver output
    tracing) that show the failure rate exploding when output voting is
    disabled. *)

val table8 : ?trials:int -> unit -> unit
(** Register fault injection on md5sum in a VM: the base system shows
    only crashes and silent corruptions; CC-D controls 100% of errors
    (mostly signature mismatches, a few timeouts). *)

val table9 : ?trials:int -> unit -> unit
(** Overclocking (correlated multi-fault bursts) on the Arm KV setup:
    user-mode errors dominate the base system; LC detects all but a few
    percent, mostly by barrier timeouts; reboots and wedged interrupt
    paths remain externally visible failures. *)

val recovery_trial :
  ?exec_backend:Rcoe_core.Config.exec_backend ->
  checkpointing:bool ->
  fault:[ `Transient | `Persistent ] ->
  seed:int ->
  unit ->
  Rcoe_faults.Outcome.t * int * int * float list
(** Single recovery-campaign trial (exposed for tests): md5sum on CC-D
    with one injected signature corruption. Returns (outcome, rollbacks,
    checkpoints taken, recovery-latency samples). [exec_backend]
    (default [Interp]) selects the execution backend — the
    interp/blocks differential suite runs the same trial on both and
    requires identical results. *)

val recovery_table : ?trials:int -> unit -> int
(** The fail-stop vs fail-recover comparison: identical DMR
    configurations and faults, with and without a checkpoint ring
    ({!Rcoe_core.Config.checkpoint_every}). Transient signature
    corruptions halt the plain system as [Signature_mismatch]; with
    rollback they finish with correct output as [Recovered]; a
    persistent fault exhausts the budget and still halts. Returns the
    number of uncontrolled trials (0 expected) — the [@faultquick] CI
    gate. *)

val ingress_trial :
  ?exec_backend:Rcoe_core.Config.exec_backend ->
  mode:Rcoe_core.Config.mode ->
  n:int ->
  ingress_check:bool ->
  fault:bool ->
  seed:int ->
  unit ->
  Rcoe_faults.Outcome.t * Loadgen.result
(** One serving trial with (optionally) a bit flipped inside an
    in-flight RX DMA frame — the paper's Table VII residual, outside
    the sphere of replication. Exposed for tests. [exec_backend]
    (default [Interp]) selects the execution backend, for the
    interp/blocks differential suite. *)

val ingress_table : ?trials:int -> unit -> int
(** The DMA-hole coverage flip: identical fault schedules with the
    ingress-checksum path off (silent YCSB corruption — detection by
    replication is structurally impossible) and on (frame dropped
    against RX_CSUM, client retransmission re-delivers; seq-sorted
    outcome digest matches a fault-free reference). Returns the number
    of uncontrolled trials in the checking-on rows' world — nonzero
    only if the path failed to contain a corruption. *)

val ingress_quick : ?seed:int -> unit -> int
(** The @faultquick gate's DMA-corruption leg: one deterministic off/on
    trial pair on CC-D; returns the number of violated expectations
    (0 = the hole demonstrably exists without the path and is closed
    with it). *)

val detection_latency : ?runs:int -> unit -> unit
(** The paper's performance-safety trade-off made explicit (Sections
    III-C and V-B): error-detection latency as a function of the kernel
    timer-tick interval and of the sync level (A: vote at sync points
    only; S: vote on every system call). A fault is injected into a
    replica's signature accumulator at a known cycle; latency is the
    cycles until the vote detects it. *)

val all : quick:bool -> unit
