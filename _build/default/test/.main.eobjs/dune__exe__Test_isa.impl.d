test/test_isa.ml: Alcotest Array Asm Branch_count Check Gen Instr List Printf Program QCheck QCheck_alcotest Rcoe_isa Reg String
