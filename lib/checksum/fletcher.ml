(* The running signature uses 32-bit blocks with mod-(2^32-1) reduction, a
   Fletcher-64-style construction: c0 accumulates values, c1 accumulates
   running c0, making the pair order-sensitive. *)

type t = { mutable c0 : int; mutable c1 : int }

let modulus = 0xFFFFFFFF (* 2^32 - 1 *)

let create () = { c0 = 0; c1 = 0 }

let reset t =
  t.c0 <- 0;
  t.c1 <- 0

let add_word t w =
  let w32 = w land 0xFFFFFFFF in
  t.c0 <- (t.c0 + w32) mod modulus;
  t.c1 <- (t.c1 + t.c0) mod modulus

(* Block size for deferred reduction in [add_words]. Both sums are
   linear mod (2^32-1), so reducing once per block instead of per word
   is exact; the bound keeps the unreduced accumulators inside a 63-bit
   int: after k deferred steps c0 < (k+1)*2^32 and c1 < (k^2+k+1)*2^32,
   so k = 4096 stays under 2^57. *)
let reduce_block = 4096

let add_words t ws =
  let n = Array.length ws in
  let c0 = ref t.c0 and c1 = ref t.c1 in
  let i = ref 0 in
  while !i < n do
    let stop = min n (!i + reduce_block) in
    let a0 = ref !c0 and a1 = ref !c1 in
    for j = !i to stop - 1 do
      a0 := !a0 + (Array.unsafe_get ws j land 0xFFFFFFFF);
      a1 := !a1 + !a0
    done;
    c0 := !a0 mod modulus;
    c1 := !a1 mod modulus;
    i := stop
  done;
  t.c0 <- !c0;
  t.c1 <- !c1

let add_string t s =
  let n = String.length s in
  let word_at i =
    let byte j = if i + j < n then Char.code s.[i + j] else 0 in
    byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)
  in
  let rec go i = if i < n then (add_word t (word_at i); go (i + 4)) in
  go 0

let value t = (t.c0, t.c1)

let digest t = (t.c1 lsl 32) lor t.c0

let equal a b = a.c0 = b.c0 && a.c1 = b.c1

let copy t = { c0 = t.c0; c1 = t.c1 }

(* Per-frame ingress checksum over machine words. Deliberately restricted
   to add/rem on small constants so the kvstore driver can compute the
   same digest in guest code (whose [Rem] is OCaml's [mod]) and the
   abstract interpreter can bound the accumulators: both sums live in
   [0, 65534] after each step, and the packed digest fits 32 bits. *)
let frame ws =
  let n = Array.length ws in
  let rec go i c0 c1 =
    if i >= n then (c1 * 65536) + c0
    else
      let c0 = (c0 + (ws.(i) mod 65535)) mod 65535 in
      let c1 = (c1 + c0) mod 65535 in
      go (i + 1) c0 c1
  in
  go 0 0 0

let fletcher32 s =
  let n = String.length s in
  let block_at i =
    let lo = Char.code s.[i] in
    let hi = if i + 1 < n then Char.code s.[i + 1] else 0 in
    lo lor (hi lsl 8)
  in
  let rec go i c0 c1 =
    if i >= n then (c1 lsl 16) lor c0
    else
      let c0 = (c0 + block_at i) mod 65535 in
      let c1 = (c1 + c0) mod 65535 in
      go (i + 2) c0 c1
  in
  go 0 0 0
