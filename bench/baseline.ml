(* Benchmark baseline: a small, regression-checked performance snapshot.

   `dune exec bench/main.exe -- baseline [PATH]` measures, for each
   baseline workload:

   - simulated cycles and wall time of the Base (unreplicated) run;
   - per replication config (LC/CC x DMR/TMR): simulated cycles, the
     sync-phase overhead relative to Base (the paper's normalised
     slowdown), wall time under the Sequential and the Parallel engine,
     and the Sequential->Parallel wall-time speedup;
   - a determinism bit: the two engines must agree on final cycle and
     replica outputs, or the run is marked non-deterministic and the
     baseline write fails.

   The baseline also embeds the checkpoint-capture rows of
   [Ckpt_bench]: per workload, the words copied and capture wall time
   of full vs incremental capture, and the simulated ckpt.cost_cycles
   both modes charge end-to-end.

   The baseline further embeds serving rows ([Loadgen]): a closed-loop
   YCSB run through the NIC, a fault-campaign variant that recovers
   through rollback, and three ingress-checksum rows (fault-free
   checked run pricing the per-frame FT_Mem_Rep verification, plus the
   DMA-buffer flip campaign with checking off and on), each recording
   the simulated run-phase cycles, request outcome digests, completion
   / rollback / corruption / ingress-drop / redelivery counts (all
   exact), wall time under both engines, and the engines-agree
   determinism bit.

   The baseline finally embeds execution-backend rows: per exec
   workload, the wall time of the interpreter vs the block-compiled
   backend (`Config.exec_backend`), the recorded speedup, and an
   identity bit — simulated cycles and outputs must be bit-for-bit
   identical across the backends, and the baseline write refuses to
   commit a file whose best recorded speedup is below 2x.

   The baseline also embeds replay-detection rows: per compute
   workload, the unreplicated replay primary's simulated cycles and
   overhead over Base next to lockstep CC-DMR's sync overhead (the
   write refuses a file where replay is not strictly cheaper), chunk
   and verdict counts, the maximum detection lag against the
   chunk_span x queue_depth pipeline bound, Interp/Blocks identity,
   and a transient fault campaign that must recover through rollback
   to the fault-free output.

   The result is written as JSON (schema `rcoe-bench-baseline/v6`,
   documented in EXPERIMENTS.md) — commit it as BENCH_baseline.json.

   `dune exec bench/main.exe -- baseline-check [PATH]` re-measures and
   compares against the committed file, failing non-zero when

   - any simulated cycle count differs (the simulator is deterministic,
     so any drift is a real semantic change — regenerate the baseline
     deliberately if it is intentional);
   - either engine's wall time regresses by more than 10% on a workload
     aggregate (tolerance via RCOE_BENCH_TOLERANCE, a float, e.g. 0.25
     on noisy shared hardware);
   - a checkpoint row drifts: copied words or charged ckpt.cost_cycles
     differ at all, or the incremental capture wall time regresses by
     more than the same tolerance;
   - a serve row drifts: simulated cycles, outcome digest, completion
     or rollback counts differ at all, or either engine's wall time
     regresses beyond the tolerance;
   - the engines disagree (determinism failure — never tolerated).

   Wall times are host-dependent: regenerate the baseline when moving
   to different hardware. Speedup expectations are conditioned on the
   recorded `host.cores`: on a single-core host the parallel engine
   cannot beat the sequential one (domain scheduling overhead makes it
   slower) and only the determinism contract is meaningful. *)

open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
module Json = Rcoe_obs.Json

let default_path = "BENCH_baseline.json"
let reps = 3
let max_cycles = 400_000_000

type wl = { wname : string; program : unit -> Rcoe_isa.Program.t }

(* Sized so a replicated run is long enough to time meaningfully but
   the full baseline stays in tens of seconds. md5sum is the
   compute-bound workload the speedup acceptance criterion refers to. *)
let workloads =
  [
    {
      wname = "md5sum";
      program =
        (fun () ->
          Md5sum.program ~message_words:128 ~iters:24 ~seed:5
            ~branch_count:false ());
    };
    {
      wname = "dhrystone";
      program =
        (fun () -> Dhrystone.program ~loops:2500 ~branch_count:false ());
    };
    {
      wname = "whetstone";
      program = (fun () -> Whetstone.program ~loops:400 ~branch_count:false ());
    };
  ]

let configs =
  [
    (Config.LC, 2); (Config.LC, 3); (Config.CC, 2); (Config.CC, 3);
  ]

let config_label mode n =
  Printf.sprintf "%s-%s" (Config.mode_to_string mode)
    (match n with 2 -> "DMR" | 3 -> "TMR" | n -> string_of_int n ^ "R")

let mk_config ?(exec_backend = Config.Interp) ~mode ~nreplicas ~engine () =
  {
    (Runner.config_for ~mode ~nreplicas ~arch:Rcoe_machine.Arch.X86 ~seed:3 ())
    with
    Config.engine;
    exec_backend;
    exception_barriers = mode <> Config.Base;
  }

type measurement = { m_cycles : int; m_wall : float; m_out : string list }

(* Median-of-[reps] wall time over fresh systems; cycle count and
   outputs must agree across reps (they always do — the simulator is
   deterministic — but check rather than assume). *)
let measure ?exec_backend ~mode ~nreplicas ~engine wl =
  let config = mk_config ?exec_backend ~mode ~nreplicas ~engine () in
  let one () =
    let sys = System.create ~config ~program:(wl.program ()) in
    let t0 = Unix.gettimeofday () in
    System.run sys ~max_cycles;
    let wall = Unix.gettimeofday () -. t0 in
    if not (System.finished sys) then
      failwith
        (Printf.sprintf "baseline: %s %s did not finish" wl.wname
           (config_label mode nreplicas));
    let outs = List.init nreplicas (fun rid -> System.output sys rid) in
    { m_cycles = System.now sys; m_wall = wall; m_out = outs }
  in
  let runs = List.init reps (fun _ -> one ()) in
  let first = List.hd runs in
  List.iter
    (fun m ->
      if m.m_cycles <> first.m_cycles || m.m_out <> first.m_out then
        failwith
          (Printf.sprintf "baseline: %s %s is not run-to-run deterministic"
             wl.wname (config_label mode nreplicas)))
    runs;
  let walls = List.sort compare (List.map (fun m -> m.m_wall) runs) in
  { first with m_wall = List.nth walls (reps / 2) }

type cfg_row = {
  c_label : string;
  c_mode : Config.mode;
  c_n : int;
  c_cycles : int;
  c_overhead : float;  (* (cycles - base_cycles) / base_cycles *)
  c_wall_seq : float;
  c_wall_par : float;
  c_speedup : float;  (* wall_seq / wall_par *)
  c_deterministic : bool;
}

type wl_row = {
  r_name : string;
  r_base_cycles : int;
  r_base_wall : float;
  r_configs : cfg_row list;
}

let measure_workload wl =
  Printf.printf "  %-10s base%!" wl.wname;
  let base =
    measure ~mode:Config.Base ~nreplicas:1 ~engine:Config.Sequential wl
  in
  let rows =
    List.map
      (fun (mode, n) ->
        Printf.printf " %s%!" (config_label mode n);
        let seq = measure ~mode ~nreplicas:n ~engine:Config.Sequential wl in
        let par = measure ~mode ~nreplicas:n ~engine:Config.Parallel wl in
        {
          c_label = config_label mode n;
          c_mode = mode;
          c_n = n;
          c_cycles = seq.m_cycles;
          c_overhead =
            float_of_int (seq.m_cycles - base.m_cycles)
            /. float_of_int base.m_cycles;
          c_wall_seq = seq.m_wall;
          c_wall_par = par.m_wall;
          c_speedup = seq.m_wall /. par.m_wall;
          c_deterministic =
            seq.m_cycles = par.m_cycles && seq.m_out = par.m_out;
        })
      configs
  in
  print_newline ();
  { r_name = wl.wname; r_base_cycles = base.m_cycles; r_base_wall = base.m_wall;
    r_configs = rows }

(* --- serving rows ------------------------------------------------------- *)

type serve_row = {
  s_name : string;
  s_ingress : bool;  (* FT_Mem_Rep ingress checksum path on? *)
  s_requests : int;
  s_cycles : int;  (* simulated run-phase cycles — exact *)
  s_completed : int;
  s_digest : int;  (* CRC-32 of the request outcome log — exact *)
  s_sorted_digest : int;  (* order-insensitive digest — exact *)
  s_rollbacks : int;
  s_corrupted : int;  (* client-visible value corruption — exact *)
  s_checked : int;  (* frames checksum-verified at ingress — exact *)
  s_dropped : int;  (* corrupt frames dropped/NACKed — exact *)
  s_redelivered : int;  (* dropped frames redelivered by client — exact *)
  s_wall_seq : float;
  s_wall_par : float;
  s_deterministic : bool;
}

let serve_records = 64
let serve_requests = 1_000
let serve_chunk = 8_000

(* serve-closed / serve-fault are the PR 7 rows (ingress checking off;
   the fault row recovers through rollback plus client retransmission).
   The three ingress rows quantify the server-side DMA-hole closure:

   - serve-checked prices the per-frame FT_Mem_Rep checksum on a
     fault-free run (overhead = cycles vs serve-closed, exact);
   - serve-dma-silent flips a bit in a queued DMA frame with checking
     off — the corruption sails into the store and surfaces only as
     client-visible value corruption (exact count, > 0 by contract);
   - serve-dma-recover runs the same campaign with checking on — the
     frame is dropped at ingress, the client redelivers, no client
     corruption, and the order-insensitive outcome digest equals the
     fault-free serve-checked row's. *)
(* fault_after chosen so the corrupted PUT's key is GET again before
   its next overwrite under this workload/seed — the silent row's
   corruption must be client-visible, or the contract below trips. *)
let dma_fault =
  { Loadgen.fault_after = 100; fault_bit = 9;
    fault_target = Loadgen.Dma_frame }

let serve_cases =
  [
    ("serve-closed", false, None);
    ( "serve-fault", false,
      Some { Loadgen.fault_after = 200; fault_bit = 7;
             fault_target = Loadgen.Sig_word } );
    ("serve-checked", true, None);
    ("serve-dma-silent", false, Some dma_fault);
    ("serve-dma-recover", true, Some dma_fault);
  ]

let serve_config ~engine ~ingress ~fault =
  let rollback_fault =
    match fault with
    | Some { Loadgen.fault_target = Loadgen.Sig_word; _ } -> true
    | _ -> false
  in
  {
    (Runner.config_for ~mode:Config.CC ~nreplicas:2
       ~arch:Rcoe_machine.Arch.X86 ~with_net:true ~seed:5 ())
    with
    Config.engine;
    exception_barriers = true;
    ingress_check = ingress;
    checkpoint_every = (if rollback_fault then 2 else 0);
    max_rollbacks = 3;
  }

let measure_serve_engine ~engine ~ingress ~fault =
  let one () =
    let t0 = Unix.gettimeofday () in
    let r =
      Loadgen.run
        ~config:(serve_config ~engine ~ingress ~fault)
        ~workload:Ycsb.A ~records:serve_records ~requests:serve_requests
        ~chunk:serve_chunk ?fault ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    if r.Loadgen.stalled then failwith "baseline: serve run stalled";
    (r, wall)
  in
  let runs = List.init reps (fun _ -> one ()) in
  let first, _ = List.hd runs in
  List.iter
    (fun ((r : Loadgen.result), _) ->
      if
        r.Loadgen.outcome_digest <> first.Loadgen.outcome_digest
        || r.Loadgen.elapsed_cycles <> first.Loadgen.elapsed_cycles
      then failwith "baseline: serve run is not run-to-run deterministic")
    runs;
  let walls = List.sort compare (List.map snd runs) in
  (first, List.nth walls (reps / 2))

let measure_serve () =
  Printf.printf "  serving   %!";
  let rows =
    List.map
      (fun (name, ingress, fault) ->
        Printf.printf " %s%!" name;
        let seq, wall_seq =
          measure_serve_engine ~engine:Config.Sequential ~ingress ~fault
        in
        let par, wall_par =
          measure_serve_engine ~engine:Config.Parallel ~ingress ~fault
        in
        {
          s_name = name;
          s_ingress = ingress;
          s_requests = serve_requests;
          s_cycles = seq.Loadgen.elapsed_cycles;
          s_completed = seq.Loadgen.completed;
          s_digest = seq.Loadgen.outcome_digest;
          s_sorted_digest = seq.Loadgen.outcome_sorted_digest;
          s_rollbacks = seq.Loadgen.rollbacks;
          s_corrupted = seq.Loadgen.counters.Ycsb.corrupted;
          s_checked = seq.Loadgen.ingress_checked;
          s_dropped = seq.Loadgen.ingress_dropped;
          s_redelivered = seq.Loadgen.redelivered;
          s_wall_seq = wall_seq;
          s_wall_par = wall_par;
          s_deterministic =
            seq.Loadgen.outcome_digest = par.Loadgen.outcome_digest
            && seq.Loadgen.end_sigs = par.Loadgen.end_sigs
            && System.now seq.Loadgen.sys = System.now par.Loadgen.sys
            && seq.Loadgen.ingress_dropped = par.Loadgen.ingress_dropped;
        })
      serve_cases
  in
  print_newline ();
  let broken = List.filter (fun s -> not s.s_deterministic) rows in
  if broken <> [] then begin
    List.iter
      (fun s ->
        Printf.eprintf
          "baseline: DETERMINISM FAILURE: %s: parallel != sequential\n"
          s.s_name)
      broken;
    exit 1
  end;
  (* Cross-row campaign contract: the same DMA-buffer flip must be
     client-visible with checking off and absorbed with it on — with
     the post-recovery outcome log (order-insensitive) matching the
     fault-free checked run bit for bit. *)
  let find n = List.find (fun s -> s.s_name = n) rows in
  let checked = find "serve-checked" in
  let silent = find "serve-dma-silent" in
  let recover = find "serve-dma-recover" in
  let contract = ref [] in
  if silent.s_corrupted < 1 then
    contract :=
      "serve-dma-silent: DMA flip was not client-visible (corrupted = 0)"
      :: !contract;
  if silent.s_dropped <> 0 then
    contract :=
      "serve-dma-silent: frames dropped with checking off" :: !contract;
  if recover.s_dropped < 1 then
    contract :=
      "serve-dma-recover: ingress check never dropped the corrupt frame"
      :: !contract;
  if recover.s_corrupted <> 0 then
    contract :=
      "serve-dma-recover: corruption leaked past the ingress check"
      :: !contract;
  if recover.s_sorted_digest <> checked.s_sorted_digest then
    contract :=
      "serve-dma-recover: outcome digest differs from fault-free run"
      :: !contract;
  if !contract <> [] then begin
    List.iter
      (fun m -> Printf.eprintf "baseline: CAMPAIGN FAILURE: %s\n" m)
      (List.rev !contract);
    exit 1
  end;
  Printf.printf
    "  ingress checksum overhead: %+d cycles (%.2f cycles/request)\n"
    (checked.s_cycles - (find "serve-closed").s_cycles)
    (float_of_int (checked.s_cycles - (find "serve-closed").s_cycles)
    /. float_of_int serve_requests);
  rows

let print_serve_table rows =
  let t =
    Rcoe_util.Table.create
      ~headers:
        [ "serve"; "ingress"; "cycles"; "completed"; "rollbacks";
          "corrupted"; "dropped"; "redeliv"; "seq wall"; "par wall";
          "deterministic" ]
  in
  List.iter
    (fun s ->
      Rcoe_util.Table.add_row t
        [
          s.s_name;
          (if s.s_ingress then "on" else "off");
          string_of_int s.s_cycles; string_of_int s.s_completed;
          string_of_int s.s_rollbacks; string_of_int s.s_corrupted;
          string_of_int s.s_dropped; string_of_int s.s_redelivered;
          Printf.sprintf "%.3fs" s.s_wall_seq;
          Printf.sprintf "%.3fs" s.s_wall_par;
          (if s.s_deterministic then "yes" else "NO");
        ])
    rows;
  Rcoe_util.Table.print t

let serve_json rows =
  let closed_cycles =
    match List.find_opt (fun s -> s.s_name = "serve-closed") rows with
    | Some s -> Some s.s_cycles
    | None -> None
  in
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           ([
              ("name", Json.String s.s_name);
              ("ingress_check", Json.Bool s.s_ingress);
              ("requests", Json.Int s.s_requests);
              ("cycles", Json.Int s.s_cycles);
              ("completed", Json.Int s.s_completed);
              ("digest", Json.Int s.s_digest);
              ("sorted_digest", Json.Int s.s_sorted_digest);
              ("rollbacks", Json.Int s.s_rollbacks);
              ("corrupted", Json.Int s.s_corrupted);
              ("ingress_checked", Json.Int s.s_checked);
              ("ingress_dropped", Json.Int s.s_dropped);
              ("redelivered", Json.Int s.s_redelivered);
              ("wall_seq_s", Json.Float s.s_wall_seq);
              ("wall_par_s", Json.Float s.s_wall_par);
              ("deterministic", Json.Bool s.s_deterministic);
            ]
           @
           match (s.s_name, closed_cycles) with
           | "serve-checked", Some c ->
               [
                 ( "csum_overhead_cycles_per_req",
                   Json.Float
                     (float_of_int (s.s_cycles - c)
                     /. float_of_int s.s_requests) );
               ]
           | _ -> []))
       rows)

(* --- execution-backend rows --------------------------------------------- *)

(* Interp vs Blocks, per workload. The contract is asymmetric on
   purpose: simulated cycles and outputs must be IDENTICAL across the
   backends (bit for bit — the block compiler is only allowed to be
   faster, never different), while wall time is where the win shows up.

   Sizings are larger than the baseline workloads above and include a
   dispatch-bound kernel: per Amdahl, the backend can only compress the
   decode/dispatch share of a cycle (Machine.tick, devices and sync
   phases are backend-independent), so the speedup headline needs a
   workload whose cycles are dominated by instruction execution. *)

type exec_row = {
  x_name : string;
  x_cycles : int;  (* simulated cycles — exact, backend-identical *)
  x_wall_interp : float;
  x_wall_blocks : float;
  x_speedup : float;  (* wall_interp / wall_blocks *)
  x_identical : bool;  (* cycles and outputs agree across backends *)
}

(* A long straight-line ALU block in a tight loop: near-zero memory
   traffic, near-zero kernel crossings — the pure decode/dispatch
   stress test and the >=2x speedup candidate. *)
let alu_tight () =
  let open Rcoe_isa in
  let a = Asm.create "alu-tight" in
  Asm.label a "main";
  Asm.movi a Reg.R4 0;
  Asm.movi a Reg.R5 1;
  Asm.movi a Reg.R6 2;
  Asm.while_ a Instr.Lt Reg.R4 (Instr.Imm 40_000) (fun () ->
      for _ = 1 to 16 do
        Asm.add a Reg.R5 Reg.R5 Reg.R6;
        Asm.xori a Reg.R6 Reg.R5 0x5bd1;
        Asm.shri a Reg.R7 Reg.R5 3;
        Asm.sub a Reg.R5 Reg.R5 Reg.R7
      done;
      Asm.addi a Reg.R4 Reg.R4 1);
  Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  Asm.assemble ~entry:"main" a

let exec_workloads =
  [
    { wname = "alu-tight"; program = alu_tight };
    {
      wname = "md5sum-x";
      program =
        (fun () ->
          Md5sum.program ~message_words:128 ~iters:96 ~seed:5
            ~branch_count:false ());
    };
    {
      wname = "dhrystone-x";
      program =
        (fun () -> Dhrystone.program ~loops:10_000 ~branch_count:false ());
    };
    {
      wname = "whetstone-x";
      program = (fun () -> Whetstone.program ~loops:1_600 ~branch_count:false ());
    };
  ]

let measure_exec () =
  Printf.printf "  exec      %!";
  let rows =
    List.map
      (fun wl ->
        Printf.printf " %s%!" wl.wname;
        let interp =
          measure ~exec_backend:Config.Interp ~mode:Config.Base ~nreplicas:1
            ~engine:Config.Sequential wl
        in
        let blocks =
          measure ~exec_backend:Config.Blocks ~mode:Config.Base ~nreplicas:1
            ~engine:Config.Sequential wl
        in
        {
          x_name = wl.wname;
          x_cycles = interp.m_cycles;
          x_wall_interp = interp.m_wall;
          x_wall_blocks = blocks.m_wall;
          x_speedup = interp.m_wall /. blocks.m_wall;
          x_identical =
            interp.m_cycles = blocks.m_cycles && interp.m_out = blocks.m_out;
        })
      exec_workloads
  in
  print_newline ();
  let broken = List.filter (fun x -> not x.x_identical) rows in
  if broken <> [] then begin
    List.iter
      (fun x ->
        Printf.eprintf
          "baseline: BACKEND IDENTITY FAILURE: %s: blocks != interp\n" x.x_name)
      broken;
    exit 1
  end;
  rows

let print_exec_table rows =
  let t =
    Rcoe_util.Table.create
      ~headers:
        [ "exec"; "cycles"; "interp wall"; "blocks wall"; "speedup";
          "identical" ]
  in
  List.iter
    (fun x ->
      Rcoe_util.Table.add_row t
        [
          x.x_name; string_of_int x.x_cycles;
          Printf.sprintf "%.3fs" x.x_wall_interp;
          Printf.sprintf "%.3fs" x.x_wall_blocks;
          Printf.sprintf "%.2fx" x.x_speedup;
          (if x.x_identical then "yes" else "NO");
        ])
    rows;
  Rcoe_util.Table.print t

let exec_json rows =
  Json.List
    (List.map
       (fun x ->
         Json.Obj
           [
             ("name", Json.String x.x_name);
             ("cycles", Json.Int x.x_cycles);
             ("wall_interp_s", Json.Float x.x_wall_interp);
             ("wall_blocks_s", Json.Float x.x_wall_blocks);
             ("speedup", Json.Float x.x_speedup);
             ("identical", Json.Bool x.x_identical);
           ])
       rows)

let exec_table () =
  let rows = measure_exec () in
  print_exec_table rows

(* --- replay-detection rows ---------------------------------------------- *)

(* Asynchronous replay-based detection priced against both endpoints:
   the unreplicated Base run it shadows and the lockstep CC-DMR run it
   replaces. The headline claim is simulated: the replay primary's
   overhead over Base (per-chunk checkpoint capture stalls plus any
   queue backpressure) must be strictly below lockstep DMR's
   synchronisation overhead on the same workload — that asymmetry is
   the paper's reason to tolerate a detection lag at all, and the
   baseline write refuses to commit a file where it does not hold.
   Cycle counts, chunk/verdict counts and the maximum detection lag
   are exact; the backends must agree bit for bit; and the fault
   campaign must recover through rollback to the fault-free output
   with every verdict inside the chunk_span x queue_depth pipeline
   bound. *)

type replay_fault_row = {
  f_cycles : int;  (* simulated — exact (includes re-execution) *)
  f_chunks : int;
  f_mismatches : int;
  f_rollbacks : int;
  f_max_lag : int;  (* cycles from chunk end to verdict — exact *)
  f_output_matches : bool;  (* output = fault-free run's *)
}

type replay_row = {
  p_name : string;
  p_base_cycles : int;
  p_cycles : int;  (* replay primary, simulated — exact *)
  p_overhead : float;  (* (p_cycles - base) / base *)
  p_dmr_cycles : int;  (* lockstep CC-DMR, Sequential *)
  p_dmr_overhead : float;
  p_chunks : int;
  p_verified : int;
  p_max_lag : int;
  p_lag_bound : int;  (* chunk span x queue depth *)
  p_wall_interp : float;
  p_wall_blocks : float;
  p_identical : bool;  (* cycles and output agree across backends *)
  p_fault : replay_fault_row;
}

(* The compute-bound pair from [workloads]: both finish, so the run
   loop's terminal drain harvests every chunk and verified == chunks
   exactly. *)
let replay_workloads =
  List.filter (fun w -> w.wname <> "whetstone") workloads

(* 4-tick chunks: the per-cut capture stall is the primary's only
   overhead, so chunk length is the overhead-vs-lag dial — at the
   1-tick default the stall alone (~1.9k cycles per 50k-cycle tick,
   ~3.9%) already exceeds lockstep DMR's sync overhead on dhrystone
   (~1.9%), defeating the point of detaching detection. Four ticks
   amortise it to ~1% while the lag bound grows to
   4 ticks x 50k cycles x queue_depth. *)
let replay_chunk_ticks = 4

let replay_config ~backend () =
  {
    (Runner.config_for ~mode:Config.Base ~nreplicas:1
       ~arch:Rcoe_machine.Arch.X86 ~seed:3 ())
    with
    Config.detection = Config.Replay;
    replay_chunk_ticks;
    exec_backend = backend;
    max_rollbacks = 3;
  }

let replay_counter sys name =
  match Rcoe_obs.Metrics.find_counter (System.metrics sys) name with
  | Some c -> Rcoe_obs.Metrics.count c
  | None -> failwith ("baseline: metric " ^ name ^ " not registered")

let replay_max_lag sys =
  match
    Rcoe_obs.Metrics.find_histogram (System.metrics sys) "replay.lag_cycles"
  with
  | None -> failwith "baseline: replay.lag_cycles not registered"
  | Some h ->
      List.fold_left
        (fun m s -> max m (int_of_float s))
        0
        (Rcoe_obs.Metrics.samples h)

(* The transient campaign: run to [fault_at], flip one bit in the
   primary's signature accumulator word, keep running. Detection is
   asynchronous — the checker replaying that chunk disagrees on the
   end-of-chunk signature — and recovery rolls back to the chunk's
   start, before the flip. *)
let replay_fault_at = 120_000
let replay_fault_bit = 7

let measure_replay_engine ?fault ~backend wl =
  let config = replay_config ~backend () in
  let one () =
    let sys = System.create ~config ~program:(wl.program ()) in
    let t0 = Unix.gettimeofday () in
    (match fault with
    | Some (at, bit) ->
        System.run sys ~max_cycles:at;
        let addr = System.sig_base sys 0 + 1 in
        Rcoe_machine.Mem.flip_bit
          (System.machine sys).Rcoe_machine.Machine.mem ~addr ~bit;
        Rcoe_obs.Trace.injection (System.trace sys) ~addr ~bit
    | None -> ());
    System.run sys ~max_cycles;
    let wall = Unix.gettimeofday () -. t0 in
    if not (System.finished sys) then
      failwith
        (Printf.sprintf "baseline: replay %s did not finish (%s)" wl.wname
           (match System.halted sys with
           | Some h -> System.halt_reason_to_string h
           | None -> "ran out of cycles"));
    (sys, wall)
  in
  let runs = List.init reps (fun _ -> one ()) in
  let first, _ = List.hd runs in
  List.iter
    (fun (sys, _) ->
      if
        System.now sys <> System.now first
        || System.output sys 0 <> System.output first 0
        || replay_counter sys "replay.chunks"
           <> replay_counter first "replay.chunks"
      then
        failwith
          (Printf.sprintf
             "baseline: replay %s is not run-to-run deterministic" wl.wname))
    runs;
  let walls = List.sort compare (List.map snd runs) in
  (first, List.nth walls (reps / 2))

let measure_replay () =
  Printf.printf "  replay    %!";
  let rows =
    List.map
      (fun wl ->
        Printf.printf " %s%!" wl.wname;
        let base =
          measure ~mode:Config.Base ~nreplicas:1 ~engine:Config.Sequential wl
        in
        let dmr =
          measure ~mode:Config.CC ~nreplicas:2 ~engine:Config.Sequential wl
        in
        let interp, wall_interp =
          measure_replay_engine ~backend:Config.Interp wl
        in
        let blocks, wall_blocks =
          measure_replay_engine ~backend:Config.Blocks wl
        in
        let fault_sys, _ =
          measure_replay_engine
            ~fault:(replay_fault_at, replay_fault_bit)
            ~backend:Config.Interp wl
        in
        let cfg = replay_config ~backend:Config.Interp () in
        let span = cfg.Config.replay_chunk_ticks * cfg.Config.tick_interval in
        let over c =
          float_of_int (c - base.m_cycles) /. float_of_int base.m_cycles
        in
        {
          p_name = wl.wname;
          p_base_cycles = base.m_cycles;
          p_cycles = System.now interp;
          p_overhead = over (System.now interp);
          p_dmr_cycles = dmr.m_cycles;
          p_dmr_overhead = over dmr.m_cycles;
          p_chunks = replay_counter interp "replay.chunks";
          p_verified = replay_counter interp "replay.chunks_verified";
          p_max_lag = replay_max_lag interp;
          p_lag_bound = span * cfg.Config.replay_queue_depth;
          p_wall_interp = wall_interp;
          p_wall_blocks = wall_blocks;
          p_identical =
            System.now interp = System.now blocks
            && System.output interp 0 = System.output blocks 0;
          p_fault =
            {
              f_cycles = System.now fault_sys;
              f_chunks = replay_counter fault_sys "replay.chunks";
              f_mismatches = replay_counter fault_sys "replay.mismatches";
              f_rollbacks = List.length (System.rollbacks fault_sys);
              f_max_lag = replay_max_lag fault_sys;
              f_output_matches =
                System.output fault_sys 0 = System.output interp 0;
            };
        })
      replay_workloads
  in
  print_newline ();
  (* Detection/recovery contract — checked on every measurement, write
     and check alike. The overhead-vs-DMR gate lives in [write]. *)
  let broken = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> broken := s :: !broken) fmt in
  List.iter
    (fun p ->
      if not p.p_identical then
        fail "replay %s: blocks != interp" p.p_name;
      if p.p_verified <> p.p_chunks then
        fail "replay %s: %d/%d chunks unverified at exit" p.p_name
          (p.p_chunks - p.p_verified) p.p_chunks;
      if p.p_max_lag > p.p_lag_bound then
        fail "replay %s: detection lag %d exceeds pipeline bound %d" p.p_name
          p.p_max_lag p.p_lag_bound;
      let f = p.p_fault in
      if f.f_mismatches < 1 then
        fail "replay %s fault: no mismatch detected" p.p_name;
      if f.f_rollbacks < 1 then
        fail "replay %s fault: recovered without a rollback" p.p_name;
      if not f.f_output_matches then
        fail "replay %s fault: output differs from fault-free run" p.p_name;
      if f.f_max_lag > p.p_lag_bound then
        fail "replay %s fault: detection lag %d exceeds pipeline bound %d"
          p.p_name f.f_max_lag p.p_lag_bound)
    rows;
  if !broken <> [] then begin
    List.iter
      (fun m -> Printf.eprintf "baseline: REPLAY FAILURE: %s\n" m)
      (List.rev !broken);
    exit 1
  end;
  rows

let print_replay_table rows =
  let t =
    Rcoe_util.Table.create
      ~headers:
        [ "replay"; "base cyc"; "primary cyc"; "overhead"; "DMR overhead";
          "chunks"; "max lag"; "bound"; "interp wall"; "blocks wall";
          "fault" ]
  in
  List.iter
    (fun p ->
      Rcoe_util.Table.add_row t
        [
          p.p_name;
          string_of_int p.p_base_cycles;
          string_of_int p.p_cycles;
          Printf.sprintf "%+.2f%%" (100. *. p.p_overhead);
          Printf.sprintf "%+.2f%%" (100. *. p.p_dmr_overhead);
          string_of_int p.p_chunks;
          string_of_int p.p_max_lag;
          string_of_int p.p_lag_bound;
          Printf.sprintf "%.3fs" p.p_wall_interp;
          Printf.sprintf "%.3fs" p.p_wall_blocks;
          Printf.sprintf "%d mism/%d rb"
            p.p_fault.f_mismatches p.p_fault.f_rollbacks;
        ])
    rows;
  Rcoe_util.Table.print t

let replay_json rows =
  Json.List
    (List.map
       (fun p ->
         Json.Obj
           [
             ("name", Json.String p.p_name);
             ("base_cycles", Json.Int p.p_base_cycles);
             ("cycles", Json.Int p.p_cycles);
             ("primary_overhead", Json.Float p.p_overhead);
             ("lockstep_dmr_cycles", Json.Int p.p_dmr_cycles);
             ("lockstep_dmr_overhead", Json.Float p.p_dmr_overhead);
             ("chunks", Json.Int p.p_chunks);
             ("chunks_verified", Json.Int p.p_verified);
             ("max_lag_cycles", Json.Int p.p_max_lag);
             ("lag_bound_cycles", Json.Int p.p_lag_bound);
             ("wall_interp_s", Json.Float p.p_wall_interp);
             ("wall_blocks_s", Json.Float p.p_wall_blocks);
             ("identical", Json.Bool p.p_identical);
             ( "fault",
               Json.Obj
                 [
                   ("cycles", Json.Int p.p_fault.f_cycles);
                   ("chunks", Json.Int p.p_fault.f_chunks);
                   ("mismatches", Json.Int p.p_fault.f_mismatches);
                   ("rollbacks", Json.Int p.p_fault.f_rollbacks);
                   ("max_lag_cycles", Json.Int p.p_fault.f_max_lag);
                   ("output_matches", Json.Bool p.p_fault.f_output_matches);
                 ] );
           ])
       rows)

let replay_table () =
  let rows = measure_replay () in
  print_replay_table rows

let host_json () =
  Json.Obj
    [
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("ocaml", Json.String Sys.ocaml_version);
      ("word_size", Json.Int Sys.word_size);
      ("os_type", Json.String Sys.os_type);
    ]

let to_json rows ckpt_rows serve_rows exec_rows replay_rows =
  Json.Obj
    [
      ("schema", Json.String "rcoe-bench-baseline/v6");
      ("host", host_json ());
      ("reps", Json.Int reps);
      ("ckpt", Ckpt_bench.to_json ckpt_rows);
      ("serve", serve_json serve_rows);
      ("exec", exec_json exec_rows);
      ("replay", replay_json replay_rows);
      ( "workloads",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.String r.r_name);
                   ( "base",
                     Json.Obj
                       [
                         ("cycles", Json.Int r.r_base_cycles);
                         ("wall_s", Json.Float r.r_base_wall);
                       ] );
                   ( "configs",
                     Json.List
                       (List.map
                          (fun c ->
                            Json.Obj
                              [
                                ("label", Json.String c.c_label);
                                ( "mode",
                                  Json.String (Config.mode_to_string c.c_mode)
                                );
                                ("replicas", Json.Int c.c_n);
                                ("cycles", Json.Int c.c_cycles);
                                ("sync_overhead", Json.Float c.c_overhead);
                                ("wall_seq_s", Json.Float c.c_wall_seq);
                                ("wall_par_s", Json.Float c.c_wall_par);
                                ("speedup", Json.Float c.c_speedup);
                                ("deterministic", Json.Bool c.c_deterministic);
                              ])
                          r.r_configs) );
                 ])
             rows) );
    ]

let print_table rows =
  let t =
    Rcoe_util.Table.create
      ~headers:
        [ "workload"; "config"; "cycles"; "overhead"; "seq wall";
          "par wall"; "speedup"; "deterministic" ]
  in
  List.iter
    (fun r ->
      Rcoe_util.Table.add_row t
        [ r.r_name; "Base"; string_of_int r.r_base_cycles; "-";
          Printf.sprintf "%.3fs" r.r_base_wall; "-"; "-"; "-" ];
      List.iter
        (fun c ->
          Rcoe_util.Table.add_row t
            [
              r.r_name; c.c_label; string_of_int c.c_cycles;
              Printf.sprintf "%+.0f%%" (100. *. c.c_overhead);
              Printf.sprintf "%.3fs" c.c_wall_seq;
              Printf.sprintf "%.3fs" c.c_wall_par;
              Printf.sprintf "%.2fx" c.c_speedup;
              (if c.c_deterministic then "yes" else "NO");
            ])
        r.r_configs)
    rows;
  Rcoe_util.Table.print t

let measure_all () =
  Printf.printf "Measuring benchmark baseline (%d reps, host cores: %d)\n%!"
    reps
    (Domain.recommended_domain_count ());
  let rows = List.map measure_workload workloads in
  print_table rows;
  let broken =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun c ->
            if c.c_deterministic then None else Some (r.r_name, c.c_label))
          r.r_configs)
      rows
  in
  if broken <> [] then begin
    List.iter
      (fun (w, c) ->
        Printf.eprintf
          "baseline: DETERMINISM FAILURE: %s %s: parallel != sequential\n" w c)
      broken;
    exit 1
  end;
  rows

let write ?(path = default_path) () =
  let rows = measure_all () in
  let ckpt_rows = Ckpt_bench.measure_all () in
  Ckpt_bench.print_table ckpt_rows;
  let serve_rows = measure_serve () in
  print_serve_table serve_rows;
  let exec_rows = measure_exec () in
  print_exec_table exec_rows;
  let replay_rows = measure_replay () in
  print_replay_table replay_rows;
  (* The block compiler's reason to exist: refuse to commit a baseline
     where it does not clearly win anywhere. *)
  let best =
    List.fold_left (fun m x -> max m x.x_speedup) 0.0 exec_rows
  in
  if best < 2.0 then begin
    Printf.eprintf
      "baseline: SPEEDUP FAILURE: best blocks-backend speedup %.2fx < 2x\n"
      best;
    exit 1
  end;
  (* Replay detection's reason to exist: the unreplicated primary must
     run decisively closer to Base than lockstep DMR does — refuse a
     baseline where the simulated overhead ordering is violated. *)
  List.iter
    (fun p ->
      if p.p_overhead >= p.p_dmr_overhead then begin
        Printf.eprintf
          "baseline: REPLAY OVERHEAD FAILURE: %s: primary overhead %+.2f%% \
           not below lockstep DMR sync overhead %+.2f%%\n"
          p.p_name (100. *. p.p_overhead) (100. *. p.p_dmr_overhead);
        exit 1
      end)
    replay_rows;
  let oc = open_out path in
  output_string oc
    (Json.to_string (to_json rows ckpt_rows serve_rows exec_rows replay_rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let serve_table () =
  let rows = measure_serve () in
  print_serve_table rows

(* --- comparison mode ---------------------------------------------------- *)

let jfail fmt = Printf.ksprintf failwith fmt

let jmember name j =
  match Json.member name j with
  | Some v -> v
  | None -> jfail "baseline file: missing field %S" name

let jint = function Json.Int i -> i | _ -> jfail "baseline file: expected int"

let jfloat = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> jfail "baseline file: expected number"

let jstring = function
  | Json.String s -> s
  | _ -> jfail "baseline file: expected string"

let jlist = function
  | Json.List l -> l
  | _ -> jfail "baseline file: expected list"

let tolerance () =
  match Sys.getenv_opt "RCOE_BENCH_TOLERANCE" with
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> f
      | _ -> jfail "RCOE_BENCH_TOLERANCE must be a positive float, got %S" s)
  | None -> 0.10

let check ?(path = default_path) () =
  let committed =
    let ic =
      try open_in_bin path
      with Sys_error e ->
        Printf.eprintf
          "baseline-check: cannot open %s (%s)\n\
           run `dune exec bench/main.exe -- baseline` to create it\n"
          path e;
        exit 1
    in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match Json.parse s with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "baseline-check: %s is malformed: %s\n" path e;
        exit 1
  in
  (match jstring (jmember "schema" committed) with
  | "rcoe-bench-baseline/v6" -> ()
  | "rcoe-bench-baseline/v2" | "rcoe-bench-baseline/v3"
  | "rcoe-bench-baseline/v4" | "rcoe-bench-baseline/v5" ->
      Printf.eprintf
        "baseline-check: %s uses a pre-replay schema (no replay-detection \
         rows)\n\
         regenerate with `dune exec bench/main.exe -- baseline`\n"
        path;
      exit 1
  | other ->
      Printf.eprintf "baseline-check: unknown schema %S in %s\n" other path;
      exit 1);
  let tol = tolerance () in
  let fresh = measure_all () in
  let fresh_ckpt = Ckpt_bench.measure_all () in
  Ckpt_bench.print_table fresh_ckpt;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let committed_wls = jlist (jmember "workloads" committed) in
  let find_wl name =
    List.find_opt
      (fun j -> jstring (jmember "name" j) = name)
      committed_wls
  in
  List.iter
    (fun r ->
      match find_wl r.r_name with
      | None -> fail "%s: not present in committed baseline" r.r_name
      | Some j ->
          let base = jmember "base" j in
          if jint (jmember "cycles" base) <> r.r_base_cycles then
            fail "%s Base: cycles %d != committed %d" r.r_name r.r_base_cycles
              (jint (jmember "cycles" base));
          let committed_cfgs = jlist (jmember "configs" j) in
          List.iter
            (fun c ->
              match
                List.find_opt
                  (fun cj -> jstring (jmember "label" cj) = c.c_label)
                  committed_cfgs
              with
              | None ->
                  fail "%s %s: not present in committed baseline" r.r_name
                    c.c_label
              | Some cj ->
                  if jint (jmember "cycles" cj) <> c.c_cycles then
                    fail "%s %s: cycles %d != committed %d" r.r_name c.c_label
                      c.c_cycles
                      (jint (jmember "cycles" cj));
                  let wall_check what fresh_w committed_w =
                    if fresh_w > committed_w *. (1. +. tol) then
                      fail "%s %s: %s wall time %.3fs regressed >%.0f%% over \
                            committed %.3fs"
                        r.r_name c.c_label what fresh_w (100. *. tol)
                        committed_w
                  in
                  wall_check "sequential" c.c_wall_seq
                    (jfloat (jmember "wall_seq_s" cj));
                  wall_check "parallel" c.c_wall_par
                    (jfloat (jmember "wall_par_s" cj)))
            r.r_configs)
    fresh;
  (* Checkpoint-capture rows: simulated quantities exactly. The wall
     claim is judged as the full/incremental ratio against an absolute
     floor, not against the committed times: the incremental capture
     takes ~1-3ms, where host noise swamps any tolerance on absolute
     walls and still moves the ratio by 2x between runs. Words copied
     and cost_cycles are exact-checked above, so the real regression
     guard is simulated; the wall floor only defends the qualitative
     claim that incremental capture is decisively faster. *)
  let committed_ckpt = jlist (jmember "ckpt" committed) in
  List.iter
    (fun (r : Ckpt_bench.row) ->
      match
        List.find_opt
          (fun j -> jstring (jmember "name" j) = r.Ckpt_bench.k_name)
          committed_ckpt
      with
      | None ->
          fail "ckpt %s: not present in committed baseline"
            r.Ckpt_bench.k_name
      | Some j ->
          let full = jmember "full" j and incr = jmember "incremental" j in
          let exact what fresh_v committed_v =
            if fresh_v <> committed_v then
              fail "ckpt %s: %s %d != committed %d" r.Ckpt_bench.k_name what
                fresh_v committed_v
          in
          exact "captures" r.Ckpt_bench.k_captures (jint (jmember "captures" j));
          exact "full words" r.Ckpt_bench.k_full_words
            (jint (jmember "words" full));
          exact "incremental words" r.Ckpt_bench.k_incr_words
            (jint (jmember "words" incr));
          exact "full cost_cycles" r.Ckpt_bench.k_full_cost
            (jint (jmember "cost_cycles" full));
          exact "incremental cost_cycles" r.Ckpt_bench.k_incr_cost
            (jint (jmember "cost_cycles" incr));
          exact "full engine_checkpoints" r.Ckpt_bench.k_full_ckpts
            (jint (jmember "engine_checkpoints" full));
          exact "incremental engine_checkpoints" r.Ckpt_bench.k_incr_ckpts
            (jint (jmember "engine_checkpoints" incr));
          let fresh_ratio =
            r.Ckpt_bench.k_full_wall /. r.Ckpt_bench.k_incr_wall
          in
          if fresh_ratio < 2.0 /. (1. +. tol) then
            fail
              "ckpt %s: incremental capture no longer decisively faster \
               than full (%.1fx, floor %.1fx)"
              r.Ckpt_bench.k_name fresh_ratio (2.0 /. (1. +. tol)))
    fresh_ckpt;
  (* Serving rows: simulated quantities exactly, walls within the
     tolerance. *)
  let fresh_serve = measure_serve () in
  print_serve_table fresh_serve;
  let committed_serve = jlist (jmember "serve" committed) in
  List.iter
    (fun s ->
      match
        List.find_opt
          (fun j -> jstring (jmember "name" j) = s.s_name)
          committed_serve
      with
      | None -> fail "serve %s: not present in committed baseline" s.s_name
      | Some j ->
          let exact what fresh_v committed_v =
            if fresh_v <> committed_v then
              fail "serve %s: %s %d != committed %d" s.s_name what fresh_v
                committed_v
          in
          exact "requests" s.s_requests (jint (jmember "requests" j));
          exact "cycles" s.s_cycles (jint (jmember "cycles" j));
          exact "completed" s.s_completed (jint (jmember "completed" j));
          exact "digest" s.s_digest (jint (jmember "digest" j));
          exact "sorted_digest" s.s_sorted_digest
            (jint (jmember "sorted_digest" j));
          exact "rollbacks" s.s_rollbacks (jint (jmember "rollbacks" j));
          exact "corrupted" s.s_corrupted (jint (jmember "corrupted" j));
          exact "ingress_checked" s.s_checked
            (jint (jmember "ingress_checked" j));
          exact "ingress_dropped" s.s_dropped
            (jint (jmember "ingress_dropped" j));
          exact "redelivered" s.s_redelivered
            (jint (jmember "redelivered" j));
          let wall_check what fresh_w committed_w =
            if fresh_w > committed_w *. (1. +. tol) then
              fail
                "serve %s: %s wall time %.3fs regressed >%.0f%% over \
                 committed %.3fs"
                s.s_name what fresh_w (100. *. tol) committed_w
          in
          wall_check "sequential" s.s_wall_seq
            (jfloat (jmember "wall_seq_s" j));
          wall_check "parallel" s.s_wall_par (jfloat (jmember "wall_par_s" j)))
    fresh_serve;
  (* Execution-backend rows: cycles must match the committed baseline
     exactly (and [measure_exec] has already verified Blocks == Interp
     on this run — an identity failure exits before we get here). Wall
     regression is judged on the interp/blocks *ratio*, not on either
     absolute time: both backends run under the same host load, so the
     ratio cancels machine noise that routinely pushes the sub-second
     absolute times past any reasonable tolerance. *)
  let fresh_exec = measure_exec () in
  print_exec_table fresh_exec;
  let committed_exec = jlist (jmember "exec" committed) in
  List.iter
    (fun x ->
      match
        List.find_opt
          (fun j -> jstring (jmember "name" j) = x.x_name)
          committed_exec
      with
      | None -> fail "exec %s: not present in committed baseline" x.x_name
      | Some j ->
          if jint (jmember "cycles" j) <> x.x_cycles then
            fail "exec %s: cycles %d != committed %d" x.x_name x.x_cycles
              (jint (jmember "cycles" j));
          let committed_speedup = jfloat (jmember "speedup" j) in
          if x.x_speedup < committed_speedup /. (1. +. tol) then
            fail
              "exec %s: speedup %.2fx regressed >%.0f%% below committed %.2fx"
              x.x_name x.x_speedup (100. *. tol) committed_speedup)
    fresh_exec;
  (* Replay-detection rows: every simulated quantity exactly (cycles,
     chunk/verdict counts, detection lags, the fault campaign), walls
     within the tolerance. [measure_replay] has already enforced the
     detection/recovery contract — backend identity, verified ==
     chunks, lag bound, fault Recovered — on this fresh run. *)
  let fresh_replay = measure_replay () in
  print_replay_table fresh_replay;
  let committed_replay = jlist (jmember "replay" committed) in
  List.iter
    (fun p ->
      match
        List.find_opt
          (fun j -> jstring (jmember "name" j) = p.p_name)
          committed_replay
      with
      | None -> fail "replay %s: not present in committed baseline" p.p_name
      | Some j ->
          let exact what fresh_v committed_v =
            if fresh_v <> committed_v then
              fail "replay %s: %s %d != committed %d" p.p_name what fresh_v
                committed_v
          in
          exact "base cycles" p.p_base_cycles (jint (jmember "base_cycles" j));
          exact "cycles" p.p_cycles (jint (jmember "cycles" j));
          exact "lockstep DMR cycles" p.p_dmr_cycles
            (jint (jmember "lockstep_dmr_cycles" j));
          exact "chunks" p.p_chunks (jint (jmember "chunks" j));
          exact "chunks_verified" p.p_verified
            (jint (jmember "chunks_verified" j));
          exact "max_lag_cycles" p.p_max_lag
            (jint (jmember "max_lag_cycles" j));
          exact "lag_bound_cycles" p.p_lag_bound
            (jint (jmember "lag_bound_cycles" j));
          let fault = jmember "fault" j in
          exact "fault cycles" p.p_fault.f_cycles
            (jint (jmember "cycles" fault));
          exact "fault chunks" p.p_fault.f_chunks
            (jint (jmember "chunks" fault));
          exact "fault mismatches" p.p_fault.f_mismatches
            (jint (jmember "mismatches" fault));
          exact "fault rollbacks" p.p_fault.f_rollbacks
            (jint (jmember "rollbacks" fault));
          exact "fault max_lag_cycles" p.p_fault.f_max_lag
            (jint (jmember "max_lag_cycles" fault));
          let wall_check what fresh_w committed_w =
            if fresh_w > committed_w *. (1. +. tol) then
              fail
                "replay %s: %s wall time %.3fs regressed >%.0f%% over \
                 committed %.3fs"
                p.p_name what fresh_w (100. *. tol) committed_w
          in
          wall_check "interp" p.p_wall_interp
            (jfloat (jmember "wall_interp_s" j));
          wall_check "blocks" p.p_wall_blocks
            (jfloat (jmember "wall_blocks_s" j)))
    fresh_replay;
  match !failures with
  | [] ->
      Printf.printf "baseline-check: ok (tolerance %.0f%%, vs %s)\n"
        (100. *. tol) path
  | fs ->
      List.iter (fun f -> Printf.eprintf "baseline-check: %s\n" f)
        (List.rev fs);
      exit 1
