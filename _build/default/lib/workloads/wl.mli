(** Shared helpers for workload programs.

    Workloads are ISA programs built with the {!Rcoe_isa.Asm} eDSL. Every
    workload module exposes a [program] function taking [~branch_count]
    (true when targeting compiler-assisted CC-RCoE, i.e. the Arm profile)
    plus workload-specific sizing parameters. *)

open Rcoe_isa

val sys : Asm.t -> int -> unit
(** Emit a syscall. *)

val exit_thread : Asm.t -> unit
val putchar : Asm.t -> char -> unit
(** Print a literal character (clobbers r0). *)

val call : Asm.t -> string -> unit
(** Call a function label, saving/restoring the link register around the
    call so nested calls work (clobbers the stack). *)

val func : Asm.t -> string -> (unit -> unit) -> unit
(** [func a name body]: define [name:] body; ends with [ret]. The body
    must not fall through its end. *)

val add_trace : Asm.t -> label:string -> words:int -> unit
(** Emit an [FT_Add_Trace] of a data block (clobbers r0, r1). *)

val branch_count_for : Rcoe_machine.Arch.t -> bool
(** Whether programs for this architecture need the branch-counting
    pass. *)

val spawn_label : entry:int -> Asm.t -> arg:int -> unit
(** Spawn a thread at an absolute code address (clobbers r0, r1; result
    tid in r0). Use {!resolve_entry} to obtain the address. *)

val resolve_entry : (int -> Program.t) -> label:string -> Program.t
(** [resolve_entry build ~label]: build the program twice — once with a
    dummy entry address to learn [label]'s code address, then for real.
    The build function must be deterministic and must not change code
    layout based on the address value. *)
