lib/machine/device.mli: Buffer
