type config = { capacity : int }

type sync_phase =
  | Ipi_wait
  | Gather_wait
  | Chase
  | Catchup
  | Pmu_catchup
  | Vote_wait
  | Rendezvous

let sync_phase_name = function
  | Ipi_wait -> "ipi-wait"
  | Gather_wait -> "gather"
  | Chase -> "chase"
  | Catchup -> "catchup"
  | Pmu_catchup -> "pmu-catchup"
  | Vote_wait -> "vote-wait"
  | Rendezvous -> "rendezvous"

type body =
  | Phase_begin of sync_phase
  | Phase_end of sync_phase
  | Round_begin of int
  | Round_end of int
  | Syscall of { num : int; name : string; cost : int }
  | Preempt of { tid : int }
  | Fault of { kind : string }
  | Bp_fire
  | Single_step
  | Rep_step
  | Vm_exit
  | Ipi of { target : int }
  | Dev_irq of { dpn : int }
  | Bus_stall of { cycles : int }
  | Vote of { count : int; c0 : int; c1 : int; agree : bool }
  | Injection of { addr : int; bit : int }
  | Downgrade of { rid : int; cost : int }
  | Reintegrate of { rid : int; cost : int }
  | Checkpoint of { words : int; skipped : int; cost : int }
  | Rollback of { to_cycle : int; cost : int }
  | Ingress_drop of { id : int; expect : int; got : int }
  | Replay_cut of { seq : int }
  | Replay_verdict of { seq : int; chunk_end : int; lag : int; ok : bool }

type event = { ts : int; rid : int; body : body }

type t = {
  enabled : bool;
  ring : event option array;  (* length 1 when disabled or a child *)
  mutable next : int;  (* write index *)
  mutable total : int;
  mutable clock : unit -> int;
  mutable last_inject : int;  (* cycle of last injection, -1 = none *)
  (* Child traces (one per replica under the replication engine): when
     not buffering, a child forwards every push to the root ring using
     the root's clock — bit-identical to emitting on the root directly.
     While buffering (inside a parallel execution window), events are
     accumulated locally, stamped by the child's own clock (the worker's
     private cycle counter), and merged into the root ring at the next
     window boundary. *)
  parent : t option;
  mutable buffering : bool;
  mutable buf : event list;  (* newest first while buffering *)
}

let no_clock () = 0

let create { capacity } =
  if capacity <= 0 then
    invalid_arg "Trace.create: capacity must be positive";
  {
    enabled = true;
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    clock = no_clock;
    last_inject = -1;
    parent = None;
    buffering = false;
    buf = [];
  }

let disabled () =
  {
    enabled = false;
    ring = Array.make 1 None;
    next = 0;
    total = 0;
    clock = no_clock;
    last_inject = -1;
    parent = None;
    buffering = false;
    buf = [];
  }

let child parent =
  match parent.parent with
  | Some _ -> invalid_arg "Trace.child: parent is itself a child"
  | None ->
      {
        enabled = parent.enabled;
        ring = Array.make 1 None;
        next = 0;
        total = 0;
        clock = no_clock;
        last_inject = -1;
        parent = Some parent;
        buffering = false;
        buf = [];
      }

let enabled t = t.enabled
let capacity t = if t.enabled then Array.length t.ring else 0
let set_clock t f = t.clock <- f
let now t = t.clock ()

(* Insert into the root ring with an explicit timestamp. *)
let append t e =
  let cap = Array.length t.ring in
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod cap;
  t.total <- t.total + 1

let push t rid body =
  if t.buffering then t.buf <- { ts = t.clock (); rid; body } :: t.buf
  else
    match t.parent with
    | Some p -> append p { ts = p.clock (); rid; body }
    | None -> append t { ts = t.clock (); rid; body }

let begin_buffering t ~clock =
  (match t.parent with
  | None -> invalid_arg "Trace.begin_buffering: not a child trace"
  | Some _ -> ());
  t.clock <- clock;
  t.buffering <- true

let end_buffering t =
  let evs = List.rev t.buf in
  t.buf <- [];
  t.buffering <- false;
  t.clock <- no_clock;
  evs

let merge_buffered t lists =
  (* Deterministic k-way merge of per-replica window buffers into the
     root ring: each list is timestamp-ordered (worker clocks are
     monotonic); ties across lists resolve to the lower list index —
     the replica stepping order of the sequential engine — and order
     within a list is preserved. The result is the exact event order a
     sequential run would have produced. *)
  if t.enabled then begin
    let n = Array.length lists in
    let heads = Array.map (fun l -> l) lists in
    let rec next_idx best i =
      if i >= n then best
      else
        let best' =
          match (heads.(i), best) with
          | [], _ -> best
          | _ :: _, None -> Some i
          | e :: _, Some b -> (
              match heads.(b) with
              | eb :: _ when eb.ts <= e.ts -> best
              | _ -> Some i)
        in
        next_idx best' (i + 1)
    in
    let rec drain () =
      match next_idx None 0 with
      | None -> ()
      | Some i ->
          (match heads.(i) with
          | e :: rest ->
              heads.(i) <- rest;
              append t e
          | [] -> assert false);
          drain ()
    in
    drain ()
  end

(* Each emitter takes scalar arguments and tests [enabled] before
   building the event, so a disabled trace allocates nothing. *)

let phase_begin t ~rid ph = if t.enabled then push t rid (Phase_begin ph)
let phase_end t ~rid ph = if t.enabled then push t rid (Phase_end ph)
let round_begin t ~seq = if t.enabled then push t (-1) (Round_begin seq)
let round_end t ~seq = if t.enabled then push t (-1) (Round_end seq)

let syscall t ~rid ~num ~name ~cost =
  if t.enabled then push t rid (Syscall { num; name; cost })

let preempt t ~rid ~tid = if t.enabled then push t rid (Preempt { tid })
let fault t ~rid ~kind = if t.enabled then push t rid (Fault { kind })
let bp_fire t ~rid = if t.enabled then push t rid Bp_fire
let single_step t ~rid = if t.enabled then push t rid Single_step
let rep_step t ~rid = if t.enabled then push t rid Rep_step
let vm_exit t ~rid = if t.enabled then push t rid Vm_exit
let ipi t ~target = if t.enabled then push t (-1) (Ipi { target })
let dev_irq t ~dpn = if t.enabled then push t (-1) (Dev_irq { dpn })

let bus_stall t ~rid ~cycles =
  if t.enabled && cycles > 0 then push t rid (Bus_stall { cycles })

let vote t ~rid ~count ~c0 ~c1 ~agree =
  if t.enabled then push t rid (Vote { count; c0; c1; agree })

let downgrade t ~rid ~cost = if t.enabled then push t (-1) (Downgrade { rid; cost })

let reintegrate t ~rid ~cost =
  if t.enabled then push t (-1) (Reintegrate { rid; cost })

let checkpoint t ~words ~skipped ~cost =
  if t.enabled then push t (-1) (Checkpoint { words; skipped; cost })

let rollback t ~to_cycle ~cost =
  if t.enabled then push t (-1) (Rollback { to_cycle; cost })

let ingress_drop t ~id ~expect ~got =
  if t.enabled then push t (-1) (Ingress_drop { id; expect; got })

let replay_cut t ~seq = if t.enabled then push t (-1) (Replay_cut { seq })

let replay_verdict t ~seq ~chunk_end ~lag ~ok =
  if t.enabled then push t (-1) (Replay_verdict { seq; chunk_end; lag; ok })

let injection t ~addr ~bit =
  (* The mark must survive a disabled ring: detection latency is
     measured on untraced campaign runs too. *)
  t.last_inject <- t.clock ();
  if t.enabled then push t (-1) (Injection { addr; bit })

let events t =
  if not t.enabled then []
  else begin
    let cap = Array.length t.ring in
    let acc = ref [] in
    (* Walk backwards from the newest slot so the cons builds
       oldest-first order. *)
    for i = 1 to cap do
      let idx = (t.next - i + (2 * cap)) mod cap in
      match t.ring.(idx) with
      | Some e -> acc := e :: !acc
      | None -> ()
    done;
    !acc
  end

let events_since t since =
  if not t.enabled then []
  else begin
    let cap = Array.length t.ring in
    let n = t.total - since in
    let n = if n > t.total then t.total else n in
    let n = if n > cap then cap else n in
    let acc = ref [] in
    for i = 1 to n do
      let idx = (t.next - i + (2 * cap)) mod cap in
      match t.ring.(idx) with Some e -> acc := e :: !acc | None -> ()
    done;
    !acc
  end

let total t = t.total
let dropped t = max 0 (t.total - Array.length t.ring)
let last_injection t = if t.last_inject < 0 then None else Some t.last_inject
let clear_last_injection t = t.last_inject <- -1
