type pte = {
  valid : bool;
  writable : bool;
  dma : bool;
  device : bool;
  ppn : int;
}

let invalid_pte = { valid = false; writable = false; dma = false; device = false; ppn = 0 }

let encode p =
  (if p.valid then 1 else 0)
  lor (if p.writable then 2 else 0)
  lor (if p.dma then 4 else 0)
  lor (if p.device then 8 else 0)
  lor (p.ppn lsl 8)

let decode w =
  {
    valid = w land 1 <> 0;
    writable = w land 2 <> 0;
    dma = w land 4 <> 0;
    device = w land 8 <> 0;
    ppn = w lsr 8;
  }

let page_shift = Mem.page_shift
let page_size = 1 lsl page_shift

type table = { base : int; npages : int }

let table_words t = t.npages

let check_vpn t vpn =
  if vpn < 0 || vpn >= t.npages then
    invalid_arg (Printf.sprintf "Page_table: vpn %d out of range" vpn)

let set mem t ~vpn pte =
  check_vpn t vpn;
  Mem.write mem (t.base + vpn) (encode pte)

let get mem t ~vpn =
  check_vpn t vpn;
  decode (Mem.read mem (t.base + vpn))

let clear mem t = Mem.fill mem ~addr:t.base ~len:t.npages 0

(* Spare software bit (bit 4): dirty mirror. [encode]/[decode] ignore
   it, so rebuilding an entry from its record clears the mirror —
   exactly like an OS software bit the MMU never sets on its own. *)
let dirty_bit = 16

let set_dirty mem t ~vpn =
  check_vpn t vpn;
  let a = t.base + vpn in
  Mem.write mem a (Mem.read mem a lor dirty_bit)

let is_dirty mem t ~vpn =
  check_vpn t vpn;
  Mem.read mem (t.base + vpn) land dirty_bit <> 0

let clear_all_dirty mem t =
  for vpn = 0 to t.npages - 1 do
    let a = t.base + vpn in
    let w = Mem.read mem a in
    if w land dirty_bit <> 0 then Mem.write mem a (w land lnot dirty_bit)
  done

let mirror_dirty mem t =
  let marked = ref 0 in
  for vpn = 0 to t.npages - 1 do
    let a = t.base + vpn in
    let w = Mem.read mem a in
    if w land 1 <> 0 && w land 8 = 0 then begin
      let phys = (w lsr 8) lsl page_shift in
      if
        phys >= 0
        && phys < Mem.size mem
        && Mem.page_is_dirty mem ~addr:phys
        && w land dirty_bit = 0
      then begin
        Mem.write mem a (w lor dirty_bit);
        incr marked
      end
    end
  done;
  !marked

type resolution =
  | Phys of int
  | Device of int * int
  | No_mapping
  | Not_writable

let vpn_of vaddr = vaddr lsr page_shift
let offset_of vaddr = vaddr land (page_size - 1)

let translate mem t ~vaddr ~write =
  let vpn = vpn_of vaddr in
  if vaddr < 0 || vpn >= t.npages then No_mapping
  else
    let pte = decode (Mem.read mem (t.base + vpn)) in
    if not pte.valid then No_mapping
    else if write && not pte.writable then Not_writable
    else
      let off = offset_of vaddr in
      if pte.device then Device (pte.ppn, off)
      else Phys ((pte.ppn lsl page_shift) lor off)
