(** Precise parallel-eligibility verdicts for networked workloads.

    Replaces the blanket "[with_net] cannot run on the parallel engine"
    rejection with a per-workload proof obligation: abstract-interpret
    the program ({!Rcoe_isa.Absint}), extract its memory footprint
    ({!Rcoe_isa.Footprint}), and demand that no reachable access may
    overlap a device-owned region of the replica address space — the
    MMIO window, the DMA receive ring, or the shared input-replication
    buffer. Workloads that interact with the NIC only through the FT
    syscalls (which the parallel engine already serialises at window
    boundaries) pass; a raw device-ring load or store fails with
    instruction-address provenance. The DMA transmit staging half is
    user-writable by design and stays allowed.

    Base mode with a network is categorically ineligible: its single
    replica performs device operations inline rather than at
    rendezvous points. *)

type diag = {
  d_addr : int option;  (** Instruction address, when the diagnostic has one. *)
  d_message : string;
}

type verdict = Eligible | Ineligible of diag list

type t = {
  verdict : verdict;
  regions : Rcoe_isa.Footprint.region list;
      (** The device-owned regions checked. *)
  n_accesses : int;  (** Reachable data accesses examined. *)
  rounds : int;  (** Interprocedural summary rounds. *)
  host_us : float;  (** Analyzer wall-clock, microseconds. *)
}

val check : config:Config.t -> program:Rcoe_isa.Program.t -> t

val eligible : t -> bool
val diags : t -> diag list
val describe : t -> string
(** ["eligible"], or the diagnostics joined with ["; "]. *)

val forbidden_regions : Rcoe_kernel.Layout.t -> Rcoe_isa.Footprint.region list
(** The device-owned region table, exposed for tests and tooling. *)

val syscall_model : Config.t -> Rcoe_isa.Absint.syscall_model
(** Abstract model of the scheduler's [cb_info] answers ([get_info]):
    replica id and primary in [\[0, n)], replica count, and the driver
    mode constant that prunes the untaken driver path. *)
