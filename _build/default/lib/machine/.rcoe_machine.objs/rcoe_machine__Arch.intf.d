lib/machine/arch.mli:
