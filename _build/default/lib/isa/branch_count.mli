(** Compiler-assisted branch counting.

    Models the paper's GCC plugin for Armv7-A (Section III-D, after Slye &
    Elnozahy): a counter increment on a reserved register is inserted
    immediately before every branch, call, and return, so that the kernel
    can reconstruct a precise logical clock on processors whose PMU cannot
    count branches accurately.

    The pass runs on the assembler's pre-resolution item stream so that
    symbolic labels survive the insertion: a label that precedes a branch
    stays before the inserted [Cntinc], meaning every path to the branch
    (jump or fall-through) executes the increment exactly once.

    The increment is deliberately a separate instruction from the branch:
    preemption can land between the two, reproducing the counter/branch
    race the paper must handle during leader election (their Listing 3). *)

type item = I of Instr.t | L of string

val insert : item list -> item list
(** Insert a [Cntinc] before every counting branch. Idempotent on streams
    that already carry a [Cntinc] directly before each branch. *)

val counted_branches : Instr.t array -> int
(** Number of instructions in a code array that would be counted
    (static count, for tests and tooling). *)
