lib/checksum/md5.mli:
