(** Generic experiment runner: build a system for a configuration, run a
    program to completion, and report elapsed simulated time. *)

type result = {
  cycles : int;  (** Simulated cycles until the program finished. *)
  finished : bool;
  halted : Rcoe_core.System.halt_reason option;
  stats : Rcoe_core.System.stats;
  sys : Rcoe_core.System.t;
}

val run_program :
  config:Rcoe_core.Config.t ->
  program:Rcoe_isa.Program.t ->
  ?max_cycles:int ->
  unit ->
  result
(** Runs until completion, halt, or [max_cycles] (default 200M). *)

val config_for :
  mode:Rcoe_core.Config.mode ->
  nreplicas:int ->
  arch:Rcoe_machine.Arch.t ->
  ?sync_level:Rcoe_core.Config.sync_level ->
  ?vm:bool ->
  ?with_net:bool ->
  ?seed:int ->
  ?tick_interval:int ->
  ?user_words:int ->
  unit ->
  Rcoe_core.Config.t

val standard_configs :
  arch:Rcoe_machine.Arch.t -> (string * Rcoe_core.Config.t) list
(** Base, LC-D, LC-T, CC-D, CC-T — the paper's five columns. *)

val overhead : base_cycles:int -> cycles:int -> float
(** Slowdown factor relative to the baseline. *)
