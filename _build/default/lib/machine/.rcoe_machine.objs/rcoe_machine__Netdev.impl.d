lib/machine/netdev.ml: Array Device List Mem Queue
