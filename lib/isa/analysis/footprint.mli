(** Memory footprints: per-instruction read/write address ranges.

    Derived from {!Absint} facts: every reachable data access becomes
    an {!access} whose range over-approximates the word addresses it
    may touch. Accesses at unreachable instructions (or with a [Bot]
    pre-state — e.g. a configuration-pruned path) are omitted.

    Classification is against caller-supplied {!region}s: this module
    is layout-agnostic so the ISA layer stays independent of the
    kernel's address-space map; the RCoE layer builds the region table
    from [Kernel.Layout] and decides which classes are device-owned
    (see [Eligibility]). *)

type kind = Read | Write

type access = {
  a_addr : int;  (** Instruction address (provenance). *)
  a_kind : kind;
  a_what : string;  (** Human label: "store", "rep-movs source", ... *)
  a_range : Absint.ival;  (** Abstract address range of the access. *)
}

type region = {
  rg_name : string;
  rg_lo : int;  (** First word address (inclusive). *)
  rg_hi : int;  (** Last word address (inclusive). *)
}

type violation = { v_access : access; v_region : region }

val of_result : Absint.result -> access list
(** All reachable data accesses, sorted by instruction address. *)

val classify : regions:region list -> access -> region list
(** The regions an access may overlap. *)

val violations : forbidden:region list -> access list -> violation list
(** Accesses that may overlap a forbidden region, in access order. *)

val kind_to_string : kind -> string
val range_to_string : Absint.ival -> string

val access_to_string : access -> string
(** e.g. ["store at 500 may write \[0x70000,0x70040\]"]. *)

val violation_to_string : violation -> string
(** e.g. ["store at 500 may write dma-rx-ring \[0x70000,0x707ff\]"]. *)
