type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean = function
  | [] -> invalid_arg "Stats.mean: empty list"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (sq /. float_of_int (List.length xs - 1))

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty list"
  | x :: _ as xs ->
      {
        n = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = List.fold_left Float.min x xs;
        max = List.fold_left Float.max x xs;
      }

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty list"
  | xs ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
            else acc +. log x)
          0.0 xs
      in
      exp (log_sum /. float_of_int (List.length xs))

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
      if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: bad p";
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
        |> max 0 |> min (n - 1)
      in
      List.nth sorted rank

let histogram ~buckets xs =
  if buckets = [] then invalid_arg "Stats.histogram: no buckets";
  let bounds = List.sort_uniq compare buckets in
  let counts = Array.make (List.length bounds) 0 in
  let barr = Array.of_list bounds in
  List.iter
    (fun x ->
      (* First bucket whose bound is >= x; samples above the last bound
         are not counted (an implicit +inf bucket would hide them in
         rendering anyway — callers size their bounds). *)
      let n = Array.length barr in
      let rec place i =
        if i >= n then ()
        else if x <= barr.(i) then counts.(i) <- counts.(i) + 1
        else place (i + 1)
      in
      place 0)
    xs;
  List.mapi (fun i b -> (b, counts.(i))) bounds

let format_paper ~decimals s =
  let unit_scale = 10.0 ** float_of_int decimals in
  let sd_units = int_of_float (Float.round (s.stddev *. unit_scale)) in
  if decimals = 0 then
    Printf.sprintf "%.0f (%d)" s.mean sd_units
  else Printf.sprintf "%.*f (%d)" decimals s.mean sd_units
