open Rcoe_core

type t =
  | No_error
  | Ycsb_corruption
  | Ycsb_error
  | User_mem_fault
  | User_other_fault
  | Kernel_exception
  | Barrier_timeout
  | Signature_mismatch
  | Masked
  | Recovered
  | Ingress_dropped
  | System_reboot

let all =
  [
    No_error; Ycsb_corruption; Ycsb_error; User_mem_fault; User_other_fault;
    Kernel_exception; Barrier_timeout; Signature_mismatch; Masked;
    Recovered; Ingress_dropped; System_reboot;
  ]

let to_string = function
  | No_error -> "no error"
  | Ycsb_corruption -> "YCSB corruptions"
  | Ycsb_error -> "YCSB errors"
  | User_mem_fault -> "User mem faults"
  | User_other_fault -> "Other user faults"
  | Kernel_exception -> "Kernel exceptions"
  | Barrier_timeout -> "Barrier timeouts"
  | Signature_mismatch -> "Signature mismatches"
  | Masked -> "Masked (downgraded)"
  | Recovered -> "Recovered (rolled back)"
  | Ingress_dropped -> "Ingress dropped (redelivered)"
  | System_reboot -> "System reboots"

let controlled = function
  | No_error | Masked | Recovered | Ingress_dropped | Barrier_timeout
  | Signature_mismatch ->
      true
  | Ycsb_corruption | Ycsb_error | User_mem_fault | User_other_fault
  | Kernel_exception | System_reboot ->
      false

let classify ~sys ~client_corrupt ~client_error =
  let cfg = System.config sys in
  let base = cfg.Config.mode = Config.Base in
  let had ev =
    List.exists (fun (_, k) -> k = ev) (System.events sys)
  in
  let had_user_fault =
    List.exists
      (fun (_, k) -> match k with System.E_user_fault _ -> true | _ -> false)
      (System.events sys)
  in
  let had_downgrade = System.downgrades sys <> [] in
  (* The kernel-side counter covers the CC (FT_Mem_Rep) path; the
     device's NACK count also covers LC, where the guest drops frames
     over MMIO without the scheduler ever seeing it. *)
  let had_ingress_drop =
    (match
       Rcoe_obs.Metrics.find_counter (System.metrics sys) "net.ingress_dropped"
     with
    | Some c -> Rcoe_obs.Metrics.count c > 0
    | None -> false)
    ||
    match System.netdev sys with
    | Some nd -> Rcoe_machine.Netdev.rx_nacked nd > 0
    | None -> false
  in
  match System.halted sys with
  | Some (System.H_kernel_exception _) -> Kernel_exception
  | Some System.H_timeout -> Barrier_timeout
  | Some System.H_mismatch | Some System.H_no_consensus
  | Some System.H_masking_blocked ->
      Signature_mismatch
  | None ->
      if had_downgrade then Masked
      else if base then begin
        (* Unreplicated: client and fault observations are the outcome. *)
        if client_corrupt then Ycsb_corruption
        else if had_user_fault then
          if
            List.exists
              (fun (_, k) ->
                match k with System.E_kernel_abort _ -> true | _ -> false)
              (System.events sys)
          then Kernel_exception
          else User_mem_fault
        else if client_error then Ycsb_error
        else if System.rollbacks sys <> [] then
          (* Replay detection: a checker verdict rewound the
             unreplicated primary to a chunk start — the run ended
             clean *because* it was rewound. *)
          Recovered
        else if had_ingress_drop then Ingress_dropped
        else No_error
      end
      else if client_corrupt then Ycsb_corruption
      else if client_error then Ycsb_error
      else if System.rollbacks sys <> [] then
        (* Rollback recovery logs E_mismatch at detection, so this must
           take precedence over the mismatch check below: the run ended
           clean *because* it was rewound. *)
        Recovered
      else if had System.E_mismatch then Signature_mismatch
      else if had_ingress_drop then
        (* Ingress verification caught the corruption before it entered
           the sphere of replication; the client's retransmission
           re-delivered the request and the run ended clean. *)
        Ingress_dropped
      else No_error

type tally = (t, int) Hashtbl.t

let tally_create () : tally = Hashtbl.create 16

let tally_add tly o =
  Hashtbl.replace tly o (1 + Option.value ~default:0 (Hashtbl.find_opt tly o))

let tally_get tly o = Option.value ~default:0 (Hashtbl.find_opt tly o)

let tally_total tly = Hashtbl.fold (fun _ n acc -> n + acc) tly 0

let tally_controlled tly =
  Hashtbl.fold (fun o n acc -> if controlled o then n + acc else acc) tly 0

let tally_uncontrolled tly = tally_total tly - tally_controlled tly

let tally_rows tly = List.map (fun o -> (to_string o, tally_get tly o)) all
