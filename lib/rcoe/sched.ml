(* The replication scheduler: system state, round lifecycle, voting,
   masking, checkpointing, and per-cycle replica stepping. The run loops
   live in [Engine_seq] (classic sequential stepping) and [Engine_par]
   (domain-parallel execution windows); [System] is the public facade
   that dispatches on {!Config.engine}. This module has no interface —
   the engines need the internals — but nothing outside the library
   should depend on it. *)

open Rcoe_machine
open Rcoe_kernel
module Trace = Rcoe_obs.Trace
module Metrics = Rcoe_obs.Metrics

type halt_reason =
  | H_mismatch
  | H_no_consensus
  | H_timeout
  | H_kernel_exception of string
  | H_masking_blocked

let halt_reason_to_string = function
  | H_mismatch -> "signature mismatch (halt)"
  | H_no_consensus -> "vote: no consensus on faulty replica"
  | H_timeout -> "barrier timeout"
  | H_kernel_exception s -> "kernel exception: " ^ s
  | H_masking_blocked -> "faulty primary during I/O: cannot downgrade"

type event_kind =
  | E_user_fault of int
  | E_kernel_abort of int
  | E_mismatch
  | E_timeout
  | E_downgrade of int
  | E_reintegrate of int
  | E_rollback of int
  | E_ingress_drop of int

type stats = {
  mutable ticks_delivered : int;
  mutable rounds : int;
  mutable votes : int;
  mutable ipis : int;
  mutable bp_fires : int;
  mutable ft_rounds : int;
  mutable rendezvous : int;
}

(* Typed handles into the metrics registry; the [stats] record above is
   reconstructed from these on demand, so callers of [stats] are
   unaffected by the registry having become the source of truth. *)
type metric_set = {
  m_ticks : Metrics.counter;
  m_rounds : Metrics.counter;
  m_votes : Metrics.counter;
  m_ipis : Metrics.counter;
  m_bp_fires : Metrics.counter;
  m_ft_rounds : Metrics.counter;
  m_rendezvous : Metrics.counter;
  m_vm_exits : Metrics.counter;
  m_single_steps : Metrics.counter;
  m_rep_steps : Metrics.counter;
  m_downgrades : Metrics.counter;
  m_reintegrations : Metrics.counter;
  m_rollbacks : Metrics.counter;
  m_ckpt_taken : Metrics.counter;
  m_ckpt_words_copied : Metrics.counter;
  m_ckpt_words_skipped : Metrics.counter;
  m_ingress_checked : Metrics.counter;
  m_ingress_dropped : Metrics.counter;
  m_catchup_dist : Metrics.histogram;
  m_catchup_cycles : Metrics.histogram;
  m_barrier_wait : Metrics.histogram;
  m_detect_latency : Metrics.histogram;
  m_ckpt_cost : Metrics.histogram;
  m_recover_latency : Metrics.histogram;
  m_replay_chunks : Metrics.counter;
  m_replay_verified : Metrics.counter;
  m_replay_mismatch : Metrics.counter;
  m_replay_lag : Metrics.histogram;
}

let make_metric_set reg =
  {
    m_ticks = Metrics.counter reg "kernel.ticks_delivered";
    m_rounds = Metrics.counter reg "sync.rounds";
    m_votes = Metrics.counter reg "sync.votes";
    m_ipis = Metrics.counter reg "sync.ipis";
    m_bp_fires = Metrics.counter reg "catchup.bp_fires";
    m_ft_rounds = Metrics.counter reg "sync.ft_rounds";
    m_rendezvous = Metrics.counter reg "sync.rendezvous";
    m_vm_exits = Metrics.counter reg "vm.exits";
    m_single_steps = Metrics.counter reg "catchup.single_steps";
    m_rep_steps = Metrics.counter reg "catchup.rep_steps";
    m_downgrades = Metrics.counter reg "mask.downgrades";
    m_reintegrations = Metrics.counter reg "mask.reintegrations";
    m_rollbacks = Metrics.counter reg "mask.rollbacks";
    m_ckpt_taken = Metrics.counter reg "ckpt.taken";
    m_ckpt_words_copied = Metrics.counter reg "ckpt.words_copied";
    m_ckpt_words_skipped = Metrics.counter reg "ckpt.words_skipped";
    m_ingress_checked = Metrics.counter reg "net.ingress_checked";
    m_ingress_dropped = Metrics.counter reg "net.ingress_dropped";
    m_catchup_dist =
      Metrics.histogram reg "catchup.distance_branches"
        ~buckets:[ 1.; 8.; 32.; 128.; 512.; 2048.; 8192. ];
    m_catchup_cycles =
      Metrics.histogram reg "catchup.cycles"
        ~buckets:[ 100.; 1000.; 10_000.; 100_000. ];
    m_barrier_wait =
      Metrics.histogram reg "sync.barrier_wait_cycles"
        ~buckets:[ 100.; 1000.; 10_000.; 100_000. ];
    m_detect_latency =
      Metrics.histogram reg "detect.latency_cycles"
        ~buckets:[ 1000.; 10_000.; 100_000.; 1_000_000. ];
    m_ckpt_cost =
      Metrics.histogram reg "ckpt.cost_cycles"
        ~buckets:[ 10_000.; 30_000.; 100_000.; 300_000. ];
    m_recover_latency =
      Metrics.histogram reg "recover.latency_cycles"
        ~buckets:[ 10_000.; 100_000.; 1_000_000.; 10_000_000. ];
    m_replay_chunks = Metrics.counter reg "replay.chunks";
    m_replay_verified = Metrics.counter reg "replay.chunks_verified";
    m_replay_mismatch = Metrics.counter reg "replay.mismatches";
    m_replay_lag =
      Metrics.histogram reg "replay.lag_cycles"
        ~buckets:[ 10_000.; 50_000.; 200_000.; 1_000_000. ];
  }

(* Pending events delivered at the end of an asynchronous round. *)
type ev = Tick | Dev_irq of int

type catchup = {
  leader_clock : Clock.t;
  mutable bp_set : bool;
  mutable overshoot : bool;
  mutable pmu_active : bool;
      (* Fast catch-up: running freely towards a PMU overflow target. *)
  mutable pmu_done : bool;
}

type rstate =
  | Rs_run
  | Rs_gather_wait
  | Rs_chase of int (* LC: target event count *)
  | Rs_catchup of catchup
  | Rs_vote_wait
  | Rs_rendezvous
  | Rs_halted
  | Rs_removed

(* Why a worker stopped before its window cap (parallel engine). Only
   [Pk_rendezvous] and [Pk_halt] carry a deferred effect; the others
   just record that the replica can make no further progress on its own
   inside this window. *)
type park_kind =
  | Pk_rendezvous  (* reached a sync-point rendezvous *)
  | Pk_halt of halt_reason  (* Base-mode kernel abort: whole-system halt *)
  | Pk_inert  (* all threads exited *)
  | Pk_idle  (* every thread blocked; only a round event can wake it *)
  | Pk_dead  (* core halted (crash / exception-barrier fail-stop) *)

(* Per-window worker context (parallel engine). [None] outside a
   window — every dispatch site below treats [None] as the classic
   sequential path. The worker's private cycle counter [wv_now] doubles
   as the child trace's clock; shared-state effects (notable events,
   rendezvous entry, system halt) are deferred here and replayed by the
   orchestrator in deterministic (cycle, replica) order at the window
   barrier. *)
type wctx = {
  mutable wv_now : int;
  mutable wv_vm_exits : int;  (* deferred Metrics.incr on the shared set *)
  mutable wv_events : (int * event_kind) list;  (* newest first *)
  mutable wpark : (int * park_kind) option;
  mutable w_ticked : int;  (* bus-lane cycles ticked by this worker *)
}

type replica = {
  rid : int;
  kern : Kernel.t;
  rtrace : Trace.t;
      (* Per-replica child of the system trace. In forwarding mode
         (always, under the sequential engine) it is indistinguishable
         from the root; the parallel engine switches it to window
         buffering so replicas can trace concurrently. *)
  mutable state : rstate;
  mutable finished : bool;
  mutable pending_ft : (int * int array) option;
  mutable joined : bool;
  mutable defer_publish : bool;
  mutable wctx : wctx option;
  (* Trace/metrics bookkeeping; [tr_phase] is only ever set while the
     trace is enabled, so the helpers below are free when it is not. *)
  mutable tr_phase : Trace.sync_phase option;
  mutable arrived_at : int;  (* cycle of final-barrier arrival, -1 = n/a *)
  mutable move_started : int;  (* cycle catch-up began, -1 = n/a *)
}

type phase =
  | Ph_idle
  | Ph_async of async_round
  | Ph_rdv of { mutable rdv_started : int }

and async_round = {
  events : ev list;
  mutable stage : [ `Gather | `Move ];
  mutable round_started : int;
}

(* ---------------------------------------------------------------------- *)
(* Replay-based detection (RepTFD) pipeline state                          *)
(* ---------------------------------------------------------------------- *)

(* A chunk cut: everything a shadow machine needs to restart execution
   at this exact point, bit for bit. The ring snapshot covers the
   replicated memory cut; the fields here additionally freeze the
   outside-SoR state the ring deliberately does not capture — device
   queues, the floating-point bus credit, the jitter RNG — which replay
   needs but lockstep rollback does not (re-execution after a lockstep
   rollback is *new* time; a replayed chunk re-lives the *same* time).
   All arrays are private copies resolved on the primary's domain at cut
   time, so checker domains never touch the (mutable) checkpoint ring. *)
type cut_state = {
  cs_cycle : int;
  cs_ticks : int;
  cs_round_seq : int;
  cs_next_tick : int;
  cs_finished : bool;
  cs_kernel : Kernel.snapshot;  (* taken after the cut's stall charge *)
  cs_part : int array;  (* primary partition image *)
  cs_shared : int array;
  cs_dma : int array;
  cs_cycles : int;  (* core active-cycle / instret counters *)
  cs_instret : int;
  cs_jitter : Rcoe_util.Rng.t;  (* private copy of the core's jitter RNG *)
  cs_bus : Bus.state;
  cs_net : Netdev.snapshot option;
  cs_sig : int;  (* Fletcher digest over partition ++ shared *)
}

(* A closed chunk: start state, the host inputs absorbed while it ran,
   and the end state to compare a replay against. Immutable once built,
   so it can be handed to a checker domain without synchronisation. *)
type chunk = {
  ch_seq : int;
  ch_start : cut_state;
  ch_snap : Checkpoint.snap;  (* pinned ring entry at [ch_start] *)
  ch_log : Inputlog.event list;
  ch_end : cut_state;
}

type t = {
  cfg : Config.t;
  mach : Machine.t;
  lay : Layout.t;
  lint : Rcoe_isa.Lint.report;
  elig : Eligibility.t option;
      (* Footprint-analyzer eligibility report; computed for every
         networked configuration (on both engines, so the obs metric
         sets stay identical), [None] otherwise. *)
  replicas : replica array;
  net : Netdev.t option;
  net_dpn : int;
  mmio_plan : (int * Page_table.pte) list; (* primary-role MMIO PTEs *)
  dma_plan : (int * Page_table.pte) list; (* primary-role DMA-window PTEs *)
  mutable prim : int;
  mutable phase : phase;
  mutable next_tick : int;
  mutable ticks : int;
  mutable halt : halt_reason option;
  mutable downgrade_log : (int * int * int) list;
  mutable event_log : (int * event_kind) list;
  mutable round_seq : int;
  mutable after_save : (rid:int -> tid:int -> ctx_addr:int -> unit) option;
  mutable pending_reintegrate : int option;
  mutable reintegration_log : (int * int) list;
  mutable event_log_len : int;
  (* Rollback recovery. The ring exists only when checkpointing is
     configured; all bookkeeping below is dead weight otherwise. *)
  ckpts : Checkpoint.t option;
  mutable rounds_since_ckpt : int;
  mutable rollbacks_done : int;
  mutable retries_at_newest : int;
  mutable escalations : int;
  mutable rollback_log : (int * int) list; (* (detected_at, to_cycle) *)
  metrics : Metrics.t;
  ms : metric_set;
  trace : Trace.t;
  (* Replay-based detection pipeline; [Some] iff
     [cfg.detection = Replay]. Types are mutually recursive with [t]
     because checkers verify chunks against full shadow *systems*. *)
  mutable rp : replay option;
}

(* An in-flight chunk: queued for (or undergoing) verification.
   [if_domain]/[if_shadow] are only ever touched on the primary's
   domain; the checker domain sees just the immutable chunk and its
   private shadow system. *)
and inflight = {
  if_chunk : chunk;
  mutable if_domain : bool Domain.t option;
  mutable if_shadow : t option;
}

(* The primary-side pipeline: the accumulating chunk's start state, the
   bounded in-flight queue (oldest first), and a pool of reusable
   shadow systems ([Engine_replay] creates them lazily — creation runs
   program lint and layout, too costly per chunk). All fields are
   primary-domain-only; the only cross-domain traffic is the immutable
   chunk handed to [Domain.spawn] and the [bool] verdict joined back. *)
and replay = {
  rp_ring : Checkpoint.t;
  rp_log : Inputlog.t;
  rp_span : int;  (* nominal chunk length, cycles *)
  mutable rp_seq : int;  (* sequence number of the accumulating chunk *)
  mutable rp_cut : cut_state;  (* its start *)
  mutable rp_snap : Checkpoint.snap;  (* its pinned start snapshot *)
  mutable rp_next_cut : int;  (* tick count that triggers the next cut *)
  mutable rp_inflight : inflight list;  (* oldest first *)
  mutable rp_shadows : t list;  (* idle shadow systems *)
  mutable rp_shadows_made : int;
  mutable rp_hwm : int;  (* in-flight queue high-water mark *)
  mutable rp_idle_cycles : int;  (* checker idle, simulated cycles *)
}

(* The notable-events list is bounded: campaigns run for millions of
   cycles and the old unbounded list grew without limit. Truncation is
   amortised — the newest [event_log_cap] entries (the list prefix) are
   kept once the list doubles past the cap. *)
let event_log_cap = 2048

(* Engine-internal cycle costs not covered by the architecture profile. *)
let publish_cost = 60
let vote_cost = 140
let ft_word_cost = 2
let ft_op_cost = 180

let config t = t.cfg
let machine t = t.mach

let lint_report t = t.lint

let eligibility t = t.elig

let lint_warnings t =
  List.filter_map
    (fun f ->
      if f.Rcoe_isa.Lint.f_severity = Rcoe_isa.Lint.Warning then
        Some f.Rcoe_isa.Lint.f_message
      else None)
    t.lint.Rcoe_isa.Lint.findings
let layout t = t.lay
let netdev t = t.net
let kernel t rid = t.replicas.(rid).kern
let primary t = t.prim
let now t = t.mach.Machine.now

let stats t =
  {
    ticks_delivered = Metrics.count t.ms.m_ticks;
    rounds = Metrics.count t.ms.m_rounds;
    votes = Metrics.count t.ms.m_votes;
    ipis = Metrics.count t.ms.m_ipis;
    bp_fires = Metrics.count t.ms.m_bp_fires;
    ft_rounds = Metrics.count t.ms.m_ft_rounds;
    rendezvous = Metrics.count t.ms.m_rendezvous;
  }

(* Refresh-on-read gauges over device and trace-ring state. Gauges are
   outside the Seq/Par value-identity contract (names only), which is
   what lets net.tx_pending_hwm depend on how often the host harness
   drains TX completions. *)
let metrics t =
  Metrics.set
    (Metrics.gauge_or t.metrics "trace.dropped_events")
    (float_of_int (Trace.dropped t.trace));
  (match t.net with
  | Some nd ->
      Metrics.set
        (Metrics.gauge_or t.metrics "net.rx_dropped")
        (float_of_int (Netdev.rx_dropped nd));
      Metrics.set
        (Metrics.gauge_or t.metrics "net.rx_ring_hwm")
        (float_of_int (Netdev.rx_ring_hwm nd));
      Metrics.set
        (Metrics.gauge_or t.metrics "net.tx_pending_hwm")
        (float_of_int (Netdev.tx_pending_hwm nd));
      Metrics.set
        (Metrics.gauge_or t.metrics "net.tx_sent")
        (float_of_int (Netdev.tx_sent nd));
      Metrics.set
        (Metrics.gauge_or t.metrics "net.rx_nacked")
        (float_of_int (Netdev.rx_nacked nd))
  | None -> ());
  (match t.rp with
  | Some rp ->
      Metrics.set
        (Metrics.gauge_or t.metrics "net.replay_queue_hwm")
        (float_of_int rp.rp_hwm);
      Metrics.set
        (Metrics.gauge_or t.metrics "replay.checker_idle_cycles")
        (float_of_int rp.rp_idle_cycles)
  | None -> ());
  t.metrics
let trace t = t.trace
let halted t = t.halt
let downgrades t = t.downgrade_log

let rollbacks t = t.rollback_log

let checkpoints_taken t =
  match t.ckpts with Some ck -> Checkpoint.taken ck | None -> 0
let events t = t.event_log
let tick_count t = t.ticks
let output t rid = Buffer.contents (Kernel.output t.replicas.(rid).kern)
let replica_done t rid = t.replicas.(rid).finished
let set_after_save_hook t h = t.after_save <- h

let sig_base t rid = t.lay.Layout.partitions.(rid).Layout.sig_base

let live t =
  Array.to_list t.replicas
  |> List.filter_map (fun r ->
         match r.state with Rs_removed -> None | _ -> Some r.rid)

let live_replicas t =
  Array.to_list t.replicas
  |> List.filter (fun r -> r.state <> Rs_removed)

let finished t =
  t.halt = None && List.for_all (fun r -> r.finished) (live_replicas t)

let log_event t k =
  t.event_log <- (now t, k) :: t.event_log;
  t.event_log_len <- t.event_log_len + 1;
  if t.event_log_len > 2 * event_log_cap then begin
    t.event_log <- List.filteri (fun i _ -> i < event_log_cap) t.event_log;
    t.event_log_len <- event_log_cap
  end

(* Detection latency (paper Fig. 3): cycles from the most recent fault
   injection to the moment the system reacts (halt or downgrade). The
   injection mark survives a disabled trace ring, so campaigns measure
   latency without paying for tracing. *)
let observe_detection t =
  match Trace.last_injection t.trace with
  | Some injected_at ->
      Metrics.observe t.ms.m_detect_latency
        (float_of_int (now t - injected_at));
      Trace.clear_last_injection t.trace
  | None -> ()

let halt_system t reason =
  if t.halt = None then begin
    t.halt <- Some reason;
    match reason with
    | H_timeout ->
        observe_detection t;
        log_event t E_timeout
    | H_mismatch | H_no_consensus | H_masking_blocked ->
        observe_detection t;
        log_event t E_mismatch
    | H_kernel_exception _ -> ()
  end

let mem t = t.mach.Machine.mem
let profile t = t.mach.Machine.profile
let shared t = t.lay.Layout.shared

let event_count t r = Signature.event_count (mem t) ~base:(sig_base t r.rid)

let charge r n = Core.add_stall (Kernel.core r.kern) n

let vm_charge t r =
  if t.cfg.Config.vm then begin
    charge r (profile t).Arch.vm_exit_cost;
    (match r.wctx with
    | Some w -> w.wv_vm_exits <- w.wv_vm_exits + 1
    | None -> Metrics.incr t.ms.m_vm_exits);
    Trace.vm_exit r.rtrace ~rid:r.rid
  end

(* Replica-context notable events: inside a parallel window the shared
   log must not be touched (wrong clock, racy list) — defer to the
   worker context and let the window barrier replay them in
   deterministic order. *)
let rlog_event t r k =
  match r.wctx with
  | Some w -> w.wv_events <- (w.wv_now, k) :: w.wv_events
  | None -> log_event t k

(* Per-replica sync-phase spans. A new phase closes the previous one,
   so each replica carries at most one open span; [tr_phase] is only set
   while tracing, keeping both helpers free otherwise. *)
let tp_end _t r =
  match r.tr_phase with
  | Some ph ->
      Trace.phase_end r.rtrace ~rid:r.rid ph;
      r.tr_phase <- None
  | None -> ()

let tp_begin t r ph =
  if Trace.enabled t.trace then begin
    tp_end t r;
    Trace.phase_begin r.rtrace ~rid:r.rid ph;
    r.tr_phase <- Some ph
  end

(* ---------------------------------------------------------------------- *)
(* Replay detection: cut-state capture                                     *)
(* ---------------------------------------------------------------------- *)

(* Fletcher digest over the replicated memory a replayed chunk must
   reproduce: the primary partition plus the shared region. The DMA
   window is deliberately excluded — the device writes it outside the
   sphere of replication, so the paper's residual DMA vulnerability is
   preserved under replay detection exactly as under lockstep. *)
let replay_region_sig t =
  let f = Rcoe_checksum.Fletcher.create () in
  let p = t.lay.Layout.partitions.(0) in
  Rcoe_checksum.Fletcher.add_words f
    (Mem.read_block (mem t) p.Layout.p_base p.Layout.p_words);
  let sh = t.lay.Layout.shared in
  Rcoe_checksum.Fletcher.add_words f
    (Mem.read_block (mem t) sh.Layout.s_base sh.Layout.s_words);
  Rcoe_checksum.Fletcher.digest f

(* Freeze the complete execution point. Runs on the primary's domain at
   a quiescent inter-cycle boundary; the copies it takes are what lets
   checker domains work without ever touching live or ring state. Call
   only after any stall for the cut itself has been charged, so the
   frozen core state already contains it. *)
let replay_cut_state t =
  let r = t.replicas.(0) in
  let core = Kernel.core r.kern in
  let p = t.lay.Layout.partitions.(0) in
  let sh = t.lay.Layout.shared in
  {
    cs_cycle = now t;
    cs_ticks = t.ticks;
    cs_round_seq = t.round_seq;
    cs_next_tick = t.next_tick;
    cs_finished = r.finished;
    cs_kernel = Kernel.snapshot r.kern;
    cs_part = Mem.read_block (mem t) p.Layout.p_base p.Layout.p_words;
    cs_shared = Mem.read_block (mem t) sh.Layout.s_base sh.Layout.s_words;
    cs_dma =
      Mem.read_block (mem t) t.lay.Layout.dma_base t.lay.Layout.dma_words;
    cs_cycles = core.Core.cycles;
    cs_instret = core.Core.instret;
    cs_jitter = Rcoe_util.Rng.copy core.Core.jitter;
    cs_bus = Bus.state t.mach.Machine.buses.(0);
    cs_net = Option.map Netdev.snapshot t.net;
    cs_sig = replay_region_sig t;
  }

(* Restore a cut into [sys] — the shadow side of [replay_cut_state],
   also used to rewind the primary's outside-SoR state after a
   replay-detected rollback. Leaves [sys] exactly as the captured
   system stood at the cut, ready to re-execute the chunk. *)
let replay_restore_cut sys (cs : cut_state) =
  let r = sys.replicas.(0) in
  let p = sys.lay.Layout.partitions.(0) in
  let sh = sys.lay.Layout.shared in
  Mem.write_block (mem sys) p.Layout.p_base cs.cs_part;
  Mem.write_block (mem sys) sh.Layout.s_base cs.cs_shared;
  Mem.write_block (mem sys) sys.lay.Layout.dma_base cs.cs_dma;
  Kernel.restore r.kern cs.cs_kernel;
  r.finished <- cs.cs_finished;
  r.pending_ft <- None;
  r.joined <- false;
  r.defer_publish <- false;
  r.state <- Rs_run;
  let core = Kernel.core r.kern in
  core.Core.cycles <- cs.cs_cycles;
  core.Core.instret <- cs.cs_instret;
  Rcoe_util.Rng.assign ~dst:core.Core.jitter ~src:cs.cs_jitter;
  Bus.set_state sys.mach.Machine.buses.(0) cs.cs_bus;
  (match (sys.net, cs.cs_net) with
  | Some nd, Some sn -> Netdev.restore nd sn
  | _ -> ());
  Machine.clear_ipi sys.mach ~core_id:0;
  sys.mach.Machine.now <- cs.cs_cycle;
  sys.next_tick <- cs.cs_next_tick;
  sys.ticks <- cs.cs_ticks;
  sys.round_seq <- cs.cs_round_seq;
  sys.phase <- Ph_idle;
  sys.halt <- None

(* ---------------------------------------------------------------------- *)
(* Construction                                                            *)
(* ---------------------------------------------------------------------- *)

let check_program cfg (program : Rcoe_isa.Program.t) =
  let profile = Arch.profile_of cfg.Config.arch in
  if cfg.Config.mode = Config.CC then begin
    (match Rcoe_isa.Check.exclusives program with
    | [] -> ()
    | (addr, i) :: _ ->
        invalid_arg
          (Printf.sprintf
             "System.create: CC-RCoE forbids exclusives (use Sys_atomic): %s \
              at %d"
             (Rcoe_isa.Instr.to_string i) addr));
    if
      profile.Arch.count_mode = Arch.Compiler_assisted
      && not program.Rcoe_isa.Program.branch_counted
    then
      invalid_arg
        "System.create: compiler-assisted CC-RCoE requires a branch-counted \
         program (assemble with ~branch_count:true)"
  end

(* The static analyzer runs on every program; its report is kept on the
   system for callers. Under [strict_lint] a rejected program — or a
   racy one under loose coupling, the silent-divergence case the paper
   warns about — refuses to start. *)
let lint_program cfg (program : Rcoe_isa.Program.t) =
  let lint =
    Rcoe_isa.Lint.analyze
      ~exit_syscalls:[ Syscall.sys_exit ]
      ~spawn_syscall:Syscall.sys_spawn program
  in
  if cfg.Config.strict_lint then begin
    let first_error () =
      match
        List.find_opt
          (fun f -> f.Rcoe_isa.Lint.f_severity = Rcoe_isa.Lint.Error)
          lint.Rcoe_isa.Lint.findings
      with
      | Some f -> f.Rcoe_isa.Lint.f_message
      | None -> "rejected"
    in
    match lint.Rcoe_isa.Lint.verdict with
    | Rcoe_isa.Lint.Rejected ->
        invalid_arg
          (Printf.sprintf "System.create: %s rejected by the static \
                           analyzer: %s"
             program.Rcoe_isa.Program.name (first_error ()))
    | Rcoe_isa.Lint.CC_required when cfg.Config.mode = Config.LC ->
        invalid_arg
          (Printf.sprintf
             "System.create: %s has unprotected shared-memory races and \
              requires closely-coupled execution; LC replicas may \
              silently diverge"
             program.Rcoe_isa.Program.name)
    | Rcoe_isa.Lint.CC_required | Rcoe_isa.Lint.LC_safe -> ()
  end;
  lint

let create ~config:cfg ~program =
  (* Networked configurations get the footprint analyzer's per-workload
     verdict up front — on both engines, so the metrics registered below
     (and hence the bit-for-bit Seq/Par identity over metric names and
     counter values) do not depend on the engine. The verdict feeds
     [Config.validate ~net_ok]: a proof that all device-ring accesses
     stay inside the kernel-serialised syscall paths lifts the blanket
     with_net rejection for the parallel engine. *)
  let elig =
    if cfg.Config.with_net then Some (Eligibility.check ~config:cfg ~program)
    else None
  in
  let net_ok =
    match elig with Some e -> Eligibility.eligible e | None -> false
  in
  (match Config.validate ~net_ok cfg with
  | Ok () -> ()
  | Error msg ->
      let msg =
        (* When the one failing check is net eligibility, attach the
           analyzer's instruction-address provenance. *)
        match elig with
        | Some e
          when (not (Eligibility.eligible e))
               && Config.validate ~net_ok:true cfg = Ok () ->
            msg ^ "; analyzer verdict: " ^ Eligibility.describe e
        | _ -> msg
      in
      invalid_arg ("System.create: " ^ msg));
  check_program cfg program;
  let lint = lint_program cfg program in
  let profile = Arch.profile_of cfg.Config.arch in
  let lay =
    Layout.compute ~nreplicas:cfg.Config.nreplicas
      ~user_words:cfg.Config.user_words
  in
  let trace =
    match cfg.Config.trace with
    | Some tc -> Trace.create tc
    | None -> Trace.disabled ()
  in
  let mach =
    Machine.create ~trace ~profile ~mem_words:lay.Layout.total_words
      ~ncores:cfg.Config.nreplicas ~seed:cfg.Config.seed ()
  in
  let net, net_dpn =
    if cfg.Config.with_net then begin
      let nd =
        Netdev.create ~mem:mach.Machine.mem ~dma_base:lay.Layout.dma_base
          ~dma_words:lay.Layout.dma_words
      in
      let dpn = Machine.add_device mach (Netdev.device nd) in
      (Some nd, dpn)
    end
    else (None, -1)
  in
  let metrics = Metrics.create () in
  let ms = make_metric_set metrics in
  (* Analyzer observability. Counter values are part of the Seq/Par
     bit-for-bit contract, so only deterministic quantities (verdicts,
     access and diagnostic counts, summary rounds) become counters; the
     host-side wall clock is a gauge, whose name — not value — the
     identity test compares. *)
  (match elig with
  | None -> ()
  | Some e ->
      Metrics.set (Metrics.gauge metrics "absint_host_us") e.Eligibility.host_us;
      Metrics.incr
        ~by:(if Eligibility.eligible e then 1 else 0)
        (Metrics.counter metrics "absint_eligible");
      Metrics.incr
        ~by:(List.length (Eligibility.diags e))
        (Metrics.counter metrics "absint_diags");
      Metrics.incr ~by:e.Eligibility.n_accesses
        (Metrics.counter metrics "absint_accesses");
      Metrics.incr ~by:e.Eligibility.rounds
        (Metrics.counter metrics "absint_rounds"));
  let tref = ref None in
  let callbacks =
    {
      Kernel.cb_info =
        (fun rid key ->
          match !tref with
          | None -> 0
          | Some t -> (
              match key with
              | 0 -> rid
              | 1 -> t.cfg.Config.nreplicas
              | 2 -> t.prim
              | 3 -> if t.cfg.Config.mode = Config.CC then 1 else 0
              | 4 -> Kernel.current_tid t.replicas.(rid).kern
              | 5 -> t.ticks
              | 6 -> if t.cfg.Config.ingress_check then 1 else 0
              | _ -> 0));
      Kernel.cb_kernel_update =
        (fun rid words ->
          match !tref with
          | None -> ()
          | Some t ->
              if t.cfg.Config.mode <> Config.Base then
                Signature.add_words (mem t) ~base:(sig_base t rid) words);
    }
  in
  let replicas =
    Array.init cfg.Config.nreplicas (fun rid ->
        (* Each replica gets a child of the system trace; the kernel and
           core emit through it too, so everything a replica records can
           be buffered per-domain by the parallel engine. *)
        let rtrace = Trace.child trace in
        let backend =
          match cfg.Config.exec_backend with
          | Config.Interp -> Rcoe_machine.Blockc.Interp
          | Config.Blocks -> Rcoe_machine.Blockc.Blocks
        in
        let kern =
          Kernel.create ~trace:rtrace ~backend ~machine:mach ~rid
            ~core_id:rid ~layout:lay ~program ~callbacks ()
        in
        {
          rid;
          kern;
          rtrace;
          state = Rs_run;
          finished = false;
          pending_ft = None;
          joined = false;
          defer_publish = false;
          wctx = None;
          tr_phase = None;
          arrived_at = -1;
          move_started = -1;
        })
  in
  (* Device-window mapping plans (primary role). *)
  let page = Layout.page_size in
  let mmio_plan =
    if cfg.Config.with_net then
      [ ( Layout.va_mmio / page,
          {
            Page_table.valid = true;
            writable = true;
            dma = false;
            device = true;
            ppn = net_dpn;
          } ) ]
    else []
  in
  let dma_plan =
    if cfg.Config.with_net then
      List.init (lay.Layout.dma_words / page) (fun i ->
          ( (Layout.va_dma / page) + i,
            {
              Page_table.valid = true;
              writable = true;
              dma = true;
              device = false;
              ppn = (lay.Layout.dma_base / page) + i;
            } ))
    else []
  in
  let t =
    {
      cfg;
      mach;
      lay;
      lint;
      elig;
      replicas;
      net;
      net_dpn;
      mmio_plan;
      dma_plan;
      prim = 0;
      phase = Ph_idle;
      next_tick = cfg.Config.tick_interval;
      ticks = 0;
      halt = None;
      downgrade_log = [];
      event_log = [];
      round_seq = 0;
      after_save = None;
      pending_reintegrate = None;
      reintegration_log = [];
      event_log_len = 0;
      ckpts =
        (* Replay detection owns the ring too: chunk-start snapshots
           live in it so a mismatch rolls back through the same
           budgeted [try_rollback] escalation as a lockstep vote. *)
        (if cfg.Config.checkpoint_every > 0 || cfg.Config.detection = Config.Replay
         then Some (Checkpoint.create ~depth:cfg.Config.checkpoint_depth)
         else None);
      rounds_since_ckpt = 0;
      rollbacks_done = 0;
      retries_at_newest = 0;
      escalations = 0;
      rollback_log = [];
      metrics;
      ms;
      trace;
      rp = None;
    }
  in
  tref := Some t;
  (* Per-replica address spaces and role-dependent windows. *)
  Array.iter
    (fun r ->
      let k = r.kern in
      Kernel.setup_address_space k;
      if cfg.Config.with_net then begin
        let is_primary = r.rid = t.prim in
        (* MMIO window. *)
        if is_primary then
          List.iter
            (fun (vpn, pte) -> Kernel.map_page ~quiet:true k ~vpn pte)
            mmio_plan
        else begin
          let alias = Kernel.alloc_frame_high k in
          Kernel.map_page ~quiet:true k ~vpn:(Layout.va_mmio / page)
            {
              Page_table.valid = true;
              writable = true;
              dma = false;
              device = false;
              ppn = alias;
            }
        end;
        (* DMA window: the primary sees the real region; others see private
           shadow frames. All carry the DMA mark so a new primary can find
           and patch them (paper Section IV-A). *)
        if is_primary then
          List.iter
            (fun (vpn, pte) -> Kernel.map_page ~quiet:true k ~vpn pte)
            dma_plan
        else
          List.iter
            (fun (vpn, _) ->
              let shadow = Kernel.alloc_frame_high k in
              Kernel.map_page ~quiet:true k ~vpn
                {
                  Page_table.valid = true;
                  writable = true;
                  dma = true;
                  device = false;
                  ppn = shadow;
                })
            dma_plan;
        (* Shared input-replication buffer: same physical pages everywhere;
           writable by the primary only. *)
        let in_pages = lay.Layout.shared.Layout.inbuf_words / page in
        for i = 0 to in_pages - 1 do
          Kernel.map_page ~quiet:true k
            ~vpn:((Layout.va_shared_in / page) + i)
            {
              Page_table.valid = true;
              writable = is_primary;
              dma = false;
              device = false;
              ppn = (lay.Layout.shared.Layout.inbuf_base / page) + i;
            }
        done
      end;
      ignore (Kernel.spawn k ~entry:program.Rcoe_isa.Program.entry ~arg:0);
      Kernel.start k;
      (* Role mappings differ per replica; baseline the signature after
         setup so replicas start equal. *)
      Signature.reset (mem t) ~base:(sig_base t r.rid))
    replicas;
  Machine.route_irqs_to mach t.prim;
  (* Replay-based detection: log every host inject from the first
     cycle (the harness may feed the device before it first runs the
     system), and take the cycle-0 base checkpoint the first chunk is
     relative to. Shadow systems are created lazily by
     [Engine_replay]. *)
  if cfg.Config.detection = Config.Replay then begin
    let ring =
      match t.ckpts with Some ck -> ck | None -> assert false
    in
    let ilog = Inputlog.create () in
    (match net with
    | Some nd ->
        Netdev.set_host_tap nd
          ~on_inject:(fun ~now:deliver_at payload ->
            Inputlog.record ilog ~at:(now t) ~deliver_at payload)
          ()
    | None -> ());
    let r0 = t.replicas.(0) in
    let snap =
      Checkpoint.capture (mem t) lay ~kind:Checkpoint.Full ~cycle:(now t)
        ~round_seq:t.round_seq ~ticks:t.ticks ~prim:t.prim
        ~replicas:[ (0, r0.kern, r0.finished) ]
    in
    Checkpoint.push ring snap;
    Checkpoint.pin ring snap;
    t.rp <-
      Some
        {
          rp_ring = ring;
          rp_log = ilog;
          rp_span = cfg.Config.replay_chunk_ticks * cfg.Config.tick_interval;
          rp_seq = 0;
          rp_cut = replay_cut_state t;
          rp_snap = snap;
          rp_next_cut = cfg.Config.replay_chunk_ticks;
          rp_inflight = [];
          rp_shadows = [];
          rp_shadows_made = 0;
          rp_hwm = 0;
          rp_idle_cycles = 0;
        }
  end;
  t

(* ---------------------------------------------------------------------- *)
(* FT operations                                                           *)
(* ---------------------------------------------------------------------- *)

(* Transfer size of an FT operation, for cost accounting. *)
let ft_words num args =
  if num = Syscall.sys_ft_mem_access then max 0 args.(3)
  else if num = Syscall.sys_ft_add_trace || num = Syscall.sys_ft_mem_rep then
    max 0 args.(1)
  else 0

(* Stage an FT operation: fold its data into every replica's signature and
   return the commit action (externally-visible side effects), which runs
   only after a successful vote — so corrupted output is caught before it
   reaches the device. *)
let ft_stage t num args =
  let sh = shared t in
  let live = live_replicas t in
  let add_sig r ws =
    Array.iter (fun w -> Signature.add_word (mem t) ~base:(sig_base t r.rid) w) ws
  in
  let read_block r ~va ~len =
    try Some (Kernel.read_user_block r.kern ~va ~len)
    with Kernel.User_mem_error _ | Mem.Abort _ -> None
  in
  let set_result r v =
    (Kernel.core r.kern).Core.regs.(0) <- v
  in
  List.iter
    (fun r -> charge r (ft_op_cost + (ft_word_cost * ft_words num args)))
    live;
  if num = Syscall.sys_ft_add_trace then begin
    let va = args.(0) and len = max 0 (min args.(1) 4096) in
    List.iter
      (fun r ->
        match read_block r ~va ~len with
        | Some block -> if t.cfg.Config.trace_output then add_sig r block
        | None -> add_sig r [| -1 |])
      live;
    fun () -> List.iter (fun r -> set_result r 0) live
  end
  else if num = Syscall.sys_ft_mem_access then begin
    let access = args.(0) and mmio_va = args.(1) and va = args.(2) in
    let len = max 0 (min args.(3) Netdev.slot_words) in
    let prim_k = t.replicas.(t.prim).kern in
    match Kernel.translate_mmio prim_k ~va:mmio_va with
    | None -> fun () -> List.iter (fun r -> set_result r (-1)) live
    | Some (dpn, off) ->
        if access = 0 then begin
          (* Read: the primary reads the device once; the values pass
             through the shared scratch area to every replica and every
             signature. *)
          let values =
            Array.init len (fun i -> Machine.dev_read t.mach dpn (off + i))
          in
          Array.iteri
            (fun i v ->
              if i < 32 then Mem.write (mem t) (sh.Layout.scratch_base + i) v)
            values;
          List.iter (fun r -> add_sig r values) live;
          fun () ->
            List.iter
              (fun r ->
                (try Kernel.write_user_block r.kern ~va values
                 with Kernel.User_mem_error _ -> ());
                set_result r 0)
              live
        end
        else begin
          (* Write: fold every replica's outgoing data; the device write
             (from the then-primary's copy) happens only after the vote. *)
          let blocks =
            List.map (fun r -> (r.rid, read_block r ~va ~len)) live
          in
          List.iter
            (fun (_, b) ->
              match b with Some _ -> () | None -> ())
            blocks;
          List.iter2
            (fun r (_, b) ->
              match b with Some ws -> add_sig r ws | None -> add_sig r [| -1 |])
            live blocks;
          fun () ->
            (match List.assoc_opt t.prim blocks with
            | Some (Some ws) ->
                Array.iteri (fun i v -> Machine.dev_write t.mach dpn (off + i) v) ws
            | Some None | None -> ());
            List.iter (fun r -> set_result r 0) live
        end
  end
  else if num = Syscall.sys_ft_mem_rep then begin
    let va = args.(0)
    and len = max 0 (min args.(1) sh.Layout.inbuf_words)
    and dma_off = max 0 args.(2) in
    let src = t.lay.Layout.dma_base + min dma_off (t.lay.Layout.dma_words - len) in
    (* Ingress verification: each live replica recomputes the frame
       checksum over the DMA buffer it is about to consume and compares
       it against the NIC's enqueue-time ground truth (RX_CSUM). The
       replicas read the same physical buffer, so the simulation
       computes the digest once and charges each replica for the pass. *)
    let verdict =
      if t.cfg.Config.ingress_check && t.net <> None then begin
        Metrics.incr t.ms.m_ingress_checked;
        List.iter (fun r -> charge r (ft_word_cost * len)) live;
        let data = Mem.read_block (mem t) src len in
        let got = Rcoe_checksum.Fletcher.frame data in
        let expect = Machine.dev_read t.mach t.net_dpn Netdev.reg_rx_csum in
        if got = expect then `Verified got else `Corrupt (data, expect, got)
      end
      else `Unchecked
    in
    match verdict with
    | `Corrupt (data, expect, got) ->
        (* The corruption happened outside the sphere of replication, so
           every replica sees the same bad bytes: fold an identical drop
           marker (not the data) so the vote passes — rollback cannot
           repair a buffer no checkpoint covers. Recovery is to NACK the
           frame back to the device and let the client's retransmission
           bridge re-deliver it. *)
        let id = if Array.length data >= 2 then data.(1) else -1 in
        List.iter (fun r -> add_sig r [| -2; expect; got |]) live;
        Metrics.incr t.ms.m_ingress_dropped;
        Trace.ingress_drop t.trace ~id ~expect ~got;
        observe_detection t;
        log_event t (E_ingress_drop id);
        fun () ->
          Machine.dev_write t.mach t.net_dpn Netdev.reg_rx_nack 1;
          List.iter (fun r -> set_result r 1) live
    | `Verified _ | `Unchecked ->
        (* The primary's kernel copies the DMA buffer into the shared
           region; every replica's kernel then copies it inward and
           folds it — plus, on the checked path, the verified digest, so
           the vote cross-checks the replicas' views of the ingress
           data. *)
        Mem.blit (mem t) ~src ~dst:sh.Layout.inbuf_base ~len;
        let data = Mem.read_block (mem t) sh.Layout.inbuf_base len in
        List.iter (fun r -> add_sig r data) live;
        (match verdict with
        | `Verified digest -> List.iter (fun r -> add_sig r [| digest |]) live
        | _ -> ());
        fun () ->
          List.iter
            (fun r ->
              (try Kernel.write_user_block r.kern ~va data
               with Kernel.User_mem_error _ -> ());
              set_result r 0)
            live
  end
  else begin
    (* input_wait: pure rendezvous. *)
    fun () -> List.iter (fun r -> set_result r 0) live
  end

(* Base-mode (unreplicated) FT syscalls act directly. *)
let ft_base t r num args =
  let k = r.kern in
  let set v = (Kernel.core k).Core.regs.(0) <- v in
  charge r (ft_op_cost + (ft_word_cost * ft_words num args));
  if num = Syscall.sys_ft_add_trace || num = Syscall.sys_input_wait then set 0
  else if num = Syscall.sys_ft_mem_access then begin
    let access = args.(0) and mmio_va = args.(1) and va = args.(2) in
    let len = max 0 (min args.(3) Netdev.slot_words) in
    match Kernel.translate_mmio k ~va:mmio_va with
    | None -> set (-1)
    | Some (dpn, off) ->
        (try
           if access = 0 then
             for i = 0 to len - 1 do
               Kernel.write_user k ~va:(va + i) (Machine.dev_read t.mach dpn (off + i))
             done
           else
             for i = 0 to len - 1 do
               Machine.dev_write t.mach dpn (off + i) (Kernel.read_user k ~va:(va + i))
             done;
           set 0
         with Kernel.User_mem_error _ -> set (-1))
  end
  else if num = Syscall.sys_ft_mem_rep then begin
    let va = args.(0)
    and len = max 0 (min args.(1) t.lay.Layout.dma_words)
    and dma_off = max 0 args.(2) in
    let src = t.lay.Layout.dma_base + min dma_off (t.lay.Layout.dma_words - len) in
    let drop =
      t.cfg.Config.ingress_check && t.net <> None
      && begin
           Metrics.incr t.ms.m_ingress_checked;
           charge r (ft_word_cost * len);
           let data = Mem.read_block (mem t) src len in
           let got = Rcoe_checksum.Fletcher.frame data in
           let expect = Machine.dev_read t.mach t.net_dpn Netdev.reg_rx_csum in
           if got = expect then false
           else begin
             let id = if Array.length data >= 2 then data.(1) else -1 in
             Metrics.incr t.ms.m_ingress_dropped;
             Trace.ingress_drop t.trace ~id ~expect ~got;
             observe_detection t;
             log_event t (E_ingress_drop id);
             Machine.dev_write t.mach t.net_dpn Netdev.reg_rx_nack 1;
             true
           end
         end
    in
    if drop then set 1
    else
      try
        for i = 0 to len - 1 do
          Kernel.write_user k ~va:(va + i) (Mem.read (mem t) (src + i))
        done;
        set 0
      with Kernel.User_mem_error _ -> set (-1)
  end
  else set (-1)

(* ---------------------------------------------------------------------- *)
(* Downgrade (error masking, Section IV)                                   *)
(* ---------------------------------------------------------------------- *)

let promote_new_primary t new_prim =
  let p = profile t in
  let k = t.replicas.(new_prim).kern in
  (* Scan the page table for DMA-marked pages (the spare-bit trick) and
     re-point them at the real DMA region and device window. *)
  let marked = Kernel.dma_pages_mapped k in
  List.iter (fun (vpn, pte) -> Kernel.map_page ~quiet:true k ~vpn pte) t.dma_plan;
  List.iter (fun (vpn, pte) -> Kernel.map_page ~quiet:true k ~vpn pte) t.mmio_plan;
  (* The primary role includes write access to the shared input-
     replication buffer (it performs the user-mode input copies). *)
  if t.cfg.Config.with_net then begin
    let page = Layout.page_size in
    let in_pages = (shared t).Layout.inbuf_words / page in
    for i = 0 to in_pages - 1 do
      Kernel.map_page ~quiet:true k
        ~vpn:((Layout.va_shared_in / page) + i)
        {
          Page_table.valid = true;
          writable = true;
          dma = false;
          device = false;
          ppn = ((shared t).Layout.inbuf_base / page) + i;
        }
    done
  end;
  t.prim <- new_prim;
  Machine.route_irqs_to t.mach new_prim;
  let cc_factor = if t.cfg.Config.mode = Config.CC then 5 else 1 in
  let pte_scan =
    match p.Arch.arch with Arch.X86 -> 850 | Arch.Arm -> 1250
  in
  (Layout.va_pages * pte_scan * cc_factor)
  + (List.length marked * 2000 * cc_factor)
  + 30_000

let removal_cost t =
  match (profile t).Arch.arch with Arch.X86 -> 24_000 | Arch.Arm -> 21_000

let downgrade t faulty =
  let r = t.replicas.(faulty) in
  r.state <- Rs_removed;
  r.pending_ft <- None;
  (Kernel.core r.kern).Core.halted <- true;
  let cost =
    if faulty = t.prim then
      let new_prim =
        List.fold_left min max_int (live t)
      in
      promote_new_primary t new_prim
    else removal_cost t
  in
  List.iter (fun s -> charge s cost) (live_replicas t);
  tp_end t r;
  Metrics.incr t.ms.m_downgrades;
  Trace.downgrade t.trace ~rid:faulty ~cost;
  observe_detection t;
  t.downgrade_log <- (now t, faulty, cost) :: t.downgrade_log;
  log_event t (E_downgrade faulty)

(* Barrier timeout: halt, or — with the timeout-masking extension (the
   paper's "shut down the straggler's core") — downgrade a single
   straggling replica and let the round continue with the survivors.
   Returns true if the system may continue. *)
let handle_timeout t ~stragglers =
  if
    t.cfg.Config.timeout_masking
    && List.length (live t) >= 3
    && List.length stragglers = 1
  then begin
    log_event t E_timeout;
    downgrade t (List.hd stragglers).rid;
    true
  end
  else begin
    halt_system t H_timeout;
    false
  end

(* Publish every live replica's signature into the shared region. *)
let publish_signatures t =
  List.iter
    (fun r ->
      charge r publish_cost;
      Vote.publish_signature (mem t) (shared t) ~rid:r.rid
        (Signature.read (mem t) ~base:(sig_base t r.rid)))
    (live_replicas t)

(* ---------------------------------------------------------------------- *)
(* Verified checkpoints and rollback recovery                              *)
(* ---------------------------------------------------------------------- *)

(* Snapshot copy stall, charged to every live replica for both capture
   and restore. Cheaper per word than re-integration's partition blit
   (p_words / 8): checkpoints copy far more state far more often, so
   they model a wide DMA/bulk-copy engine, plus a fixed quiesce cost. *)
let ckpt_copy_cost words = (words / 32) + 2_000

let take_checkpoint t ck =
  let lv = live_replicas t in
  (* The ring's base must be self-contained, so the first capture is
     always a full copy; after that the configured mode decides. *)
  let kind =
    match t.cfg.Config.checkpoint_mode with
    | Config.Full -> Checkpoint.Full
    | Config.Incremental ->
        if Checkpoint.count ck = 0 then Checkpoint.Full else Checkpoint.Delta
  in
  let snap =
    Checkpoint.capture (mem t) t.lay ~kind ~cycle:(now t)
      ~round_seq:t.round_seq ~ticks:t.ticks ~prim:t.prim
      ~replicas:(List.map (fun r -> (r.rid, r.kern, r.finished)) lv)
  in
  Checkpoint.push ck snap;
  (* A fresh verified snapshot is forward progress: reset escalation. *)
  t.retries_at_newest <- 0;
  t.escalations <- 0;
  let words = Checkpoint.words snap in
  let skipped = Checkpoint.skipped_words snap in
  let cost = ckpt_copy_cost words in
  List.iter (fun r -> charge r cost) lv;
  Metrics.incr t.ms.m_ckpt_taken;
  Metrics.incr ~by:words t.ms.m_ckpt_words_copied;
  Metrics.incr ~by:skipped t.ms.m_ckpt_words_skipped;
  Metrics.observe t.ms.m_ckpt_cost (float_of_int cost);
  Trace.checkpoint t.trace ~words ~skipped ~cost

(* Runs at the end of every successfully voted round (the only verified
   quiescent points). *)
let maybe_checkpoint t =
  match t.ckpts with
  | None -> ()
  (* Under replay detection the ring is fed by the chunk cuts
     ([Engine_replay.do_cut]); round-interval captures would interleave
     unpinned snapshots with the pinned chunk starts. *)
  | Some _ when t.cfg.Config.detection = Config.Replay -> ()
  | Some ck ->
      if t.halt = None && not (finished t) then begin
        t.rounds_since_ckpt <- t.rounds_since_ckpt + 1;
        if t.rounds_since_ckpt >= t.cfg.Config.checkpoint_every then begin
          t.rounds_since_ckpt <- 0;
          take_checkpoint t ck
        end
      end

(* Rewind the whole system to [snap]: memory, kernels, engine clocks and
   roles. Wall-clock cycles never rewind — re-execution is *new* time,
   which is exactly the recovery latency the campaign measures. Returns
   the restore stall charged to the survivors. *)
let perform_rollback t ck (snap : Checkpoint.snap) =
  Array.iter (fun r -> tp_end t r) t.replicas;
  Checkpoint.restore_memory (mem t) t.lay ck snap;
  (* Memory now equals the restored snapshot: it is the baseline the
     next delta capture is relative to. *)
  if t.cfg.Config.checkpoint_mode = Config.Incremental then
    Mem.clear_dirty (mem t);
  List.iter
    (fun (img : Checkpoint.replica_image) ->
      let r = t.replicas.(img.Checkpoint.i_rid) in
      Kernel.restore r.kern img.Checkpoint.i_kernel;
      r.finished <- img.Checkpoint.i_finished;
      r.pending_ft <- None;
      r.joined <- false;
      r.defer_publish <- false;
      r.arrived_at <- -1;
      r.move_started <- -1;
      (* A replica downgraded *after* the capture comes back: its page
         table and signature live in the restored partition, and the
         restored [s_prim] undoes any promotion since. *)
      r.state <- Rs_run;
      Machine.clear_ipi t.mach ~core_id:r.rid)
    snap.Checkpoint.s_replicas;
  t.prim <- snap.Checkpoint.s_prim;
  Machine.route_irqs_to t.mach t.prim;
  t.round_seq <- snap.Checkpoint.s_round_seq;
  t.ticks <- snap.Checkpoint.s_ticks;
  t.phase <- Ph_idle;
  t.next_tick <- now t + t.cfg.Config.tick_interval;
  (* Restore writes the whole cut back regardless of how it was
     captured, so the stall scales with the resolved size. *)
  let cost = ckpt_copy_cost (Checkpoint.total_words snap) in
  List.iter (fun r -> charge r cost) (live_replicas t);
  cost

(* Recovery policy: bounded retries with exponential escalation. The
   newest snapshot gets 2^n retries (n = escalations so far) before it
   is discarded as suspect — a fault that struck after the vote but
   before the capture is frozen *inside* it — and recovery falls back
   to the next older one. An exhausted budget or an empty ring means
   the fault is persistent: fail-stop as before. Returns true when the
   system was rolled back and may re-execute. *)
let try_rollback t =
  match t.ckpts with
  | None -> false
  | Some ck ->
      if t.rollbacks_done >= t.cfg.Config.max_rollbacks then false
      else begin
        if t.retries_at_newest >= 1 lsl t.escalations then begin
          Checkpoint.drop_newest ck;
          t.escalations <- t.escalations + 1;
          t.retries_at_newest <- 0
        end;
        match Checkpoint.newest ck with
        | None -> false
        | Some snap ->
            t.rollbacks_done <- t.rollbacks_done + 1;
            t.retries_at_newest <- t.retries_at_newest + 1;
            observe_detection t;
            let detected_at = now t in
            let cost = perform_rollback t ck snap in
            Metrics.incr t.ms.m_rollbacks;
            (* Recovery latency: the re-execution distance plus the
               restore stall. *)
            Metrics.observe t.ms.m_recover_latency
              (float_of_int
                 (detected_at - snap.Checkpoint.s_cycle + cost));
            Trace.rollback t.trace ~to_cycle:snap.Checkpoint.s_cycle ~cost;
            t.rollback_log <-
              (detected_at, snap.Checkpoint.s_cycle) :: t.rollback_log;
            log_event t (E_rollback snap.Checkpoint.s_cycle);
            true
      end

(* Handle a detected signature mismatch. Returns true if the system may
   continue (successful downgrade), false if it halted — or if it rolled
   back, in which case the round being voted on no longer exists and the
   caller must not complete it. *)
let handle_mismatch t ~io_in_flight =
  log_event t E_mismatch;
  let lv = live t in
  if t.cfg.Config.masking && List.length lv >= 3 then
    match Vote.run (mem t) (shared t) ~live:lv with
    | Vote.No_consensus ->
        if try_rollback t then false
        else begin
          halt_system t H_no_consensus;
          false
        end
    | Vote.Faulty f ->
        if f = t.prim && io_in_flight then begin
          if try_rollback t then false
          else begin
            halt_system t H_masking_blocked;
            false
          end
        end
        else begin
          downgrade t f;
          if Vote.signatures_agree (mem t) (shared t) ~live:(live t) then true
          else if try_rollback t then false
          else begin
            halt_system t H_mismatch;
            false
          end
        end
  else if try_rollback t then false
  else begin
    halt_system t H_mismatch;
    false
  end

(* Vote on signatures; on success run [k]; on mismatch try masking and, if
   it succeeds, still run [k] for the survivors. *)
let vote_signatures t ~io_in_flight k =
  Metrics.incr t.ms.m_votes;
  List.iter (fun r -> charge r vote_cost) (live_replicas t);
  publish_signatures t;
  let ok = Vote.signatures_agree (mem t) (shared t) ~live:(live t) in
  if Trace.enabled t.trace then
    List.iter
      (fun r ->
        let count, c0, c1 = Signature.read (mem t) ~base:(sig_base t r.rid) in
        Trace.vote t.trace ~rid:r.rid ~count ~c0 ~c1 ~agree:ok)
      (live_replicas t);
  if ok then k () else if handle_mismatch t ~io_in_flight then k ()

(* ---------------------------------------------------------------------- *)
(* Re-integration (paper Section IV-C, implemented extension)              *)
(* ---------------------------------------------------------------------- *)

let request_reintegration t ~rid =
  if rid < 0 || rid >= Array.length t.replicas then Error "no such replica"
  else if t.replicas.(rid).state <> Rs_removed then
    Error "replica is not removed"
  else if t.halt <> None then Error "system halted"
  else begin
    t.pending_reintegrate <- Some rid;
    Ok ()
  end

let reintegrations t = t.reintegration_log

(* Runs at the end of an asynchronous round, when every live replica is
   parked at the same logical point: copy a healthy non-primary replica's
   entire partition into the returning replica's partition, rebase its
   page-table frame numbers, and adopt the source's kernel bookkeeping
   and core state. *)
let perform_reintegration t rid =
  let dst = t.replicas.(rid) in
  let src =
    match List.filter (fun r -> r.rid <> t.prim) (live_replicas t) with
    | s :: _ -> s
    | [] -> t.replicas.(t.prim)
  in
  let sp = t.lay.Layout.partitions.(src.rid)
  and dp = t.lay.Layout.partitions.(rid) in
  Mem.blit (mem t) ~src:sp.Layout.p_base ~dst:dp.Layout.p_base
    ~len:(min sp.Layout.p_words dp.Layout.p_words);
  let delta_pages = (dp.Layout.p_base - sp.Layout.p_base) / Layout.page_size in
  let table = { Page_table.base = dp.Layout.pt_base; npages = Layout.va_pages } in
  let src_lo = sp.Layout.p_base / Layout.page_size in
  let src_hi = (sp.Layout.p_base + sp.Layout.p_words) / Layout.page_size in
  for vpn = 0 to Layout.va_pages - 1 do
    let pte = Page_table.get (mem t) table ~vpn in
    if
      pte.Page_table.valid
      && (not pte.Page_table.device)
      && pte.Page_table.ppn >= src_lo
      && pte.Page_table.ppn < src_hi
    then
      Page_table.set (mem t) table ~vpn
        { pte with Page_table.ppn = pte.Page_table.ppn + delta_pages }
  done;
  Kernel.adopt_runtime_from dst.kern ~src:src.kern;
  dst.finished <- src.finished;
  dst.pending_ft <- None;
  dst.joined <- false;
  dst.defer_publish <- false;
  dst.state <- Rs_run;
  (* The copy stalls everyone (a DMA-rate partition copy). *)
  let cost = dp.Layout.p_words / 8 in
  List.iter (fun r -> charge r cost) (live_replicas t);
  Metrics.incr t.ms.m_reintegrations;
  Trace.reintegrate t.trace ~rid ~cost;
  t.reintegration_log <- (now t, rid) :: t.reintegration_log;
  log_event t (E_reintegrate rid)

let maybe_reintegrate t =
  match t.pending_reintegrate with
  | Some rid when t.halt = None && t.replicas.(rid).state = Rs_removed ->
      t.pending_reintegrate <- None;
      perform_reintegration t rid
  | Some _ when t.halt <> None -> t.pending_reintegrate <- None
  | Some _ ->
      (* Not applicable this round (e.g. the replica was revived by a
         rollback before the request could run): keep it pending until
         the replica is removed again or the system halts. *)
      ()
  | None -> ()

(* ---------------------------------------------------------------------- *)
(* Round lifecycle                                                         *)
(* ---------------------------------------------------------------------- *)

(* All replicas leave a barrier together: the round completes when the
   slowest replica's pending kernel work (e.g. the last arriver's final
   debug exception) is done, so every survivor resumes with the *same*
   residual stall. Without equalisation the last arriver would restart
   behind the pack and permanently seed the next round's drift; zeroing
   instead would erase legitimately charged kernel time. *)
let equalize_stalls t =
  let mx =
    List.fold_left
      (fun acc r -> max acc (Kernel.core r.kern).Core.stall)
      0 (live_replicas t)
  in
  List.iter
    (fun r ->
      match r.state with
      | Rs_removed | Rs_halted -> ()
      | _ -> (Kernel.core r.kern).Core.stall <- mx)
    (live_replicas t)

let resume_replica t r =
  r.joined <- false;
  r.defer_publish <- false;
  tp_end t r;
  if r.arrived_at >= 0 then begin
    Metrics.observe t.ms.m_barrier_wait (float_of_int (now t - r.arrived_at));
    r.arrived_at <- -1
  end;
  match r.state with
  | Rs_removed | Rs_halted -> ()
  | _ ->
      charge r 60;
      vm_charge t r;
      r.state <- Rs_run

let deliver_events t evs =
  List.iter
    (fun ev ->
      match ev with
      | Tick ->
          t.ticks <- t.ticks + 1;
          Metrics.incr t.ms.m_ticks;
          let hook = t.after_save in
          List.iter
            (fun r ->
              if not r.finished then
                Kernel.preempt
                  ?after_save:
                    (Option.map
                       (fun f ~tid ~ctx_addr -> f ~rid:r.rid ~tid ~ctx_addr)
                       hook)
                  r.kern)
            (live_replicas t)
      | Dev_irq dpn ->
          List.iter
            (fun r ->
              if not r.finished then ignore (Kernel.wake_irq_waiters r.kern ~dpn))
            (live_replicas t))
    evs

(* Completion of an asynchronous round: all live replicas are at the same
   logical time. Execute any rendezvoused FT operation, vote, deliver. *)
let end_round t =
  Trace.round_end t.trace ~seq:t.round_seq;
  t.phase <- Ph_idle;
  maybe_checkpoint t

let finish_async_round t round =
  let lv = live_replicas t in
  let fts = List.map (fun r -> r.pending_ft) lv in
  let all_none = List.for_all (fun f -> f = None) fts in
  let all_same =
    match fts with
    | [] -> true
    | f0 :: rest -> List.for_all (fun f -> f = f0) rest
  in
  let continue_round () =
    (match List.find_opt (fun r -> r.pending_ft <> None) lv with
    | Some { pending_ft = Some (num, args); _ } ->
        Metrics.incr t.ms.m_ft_rounds;
        let commit = ft_stage t num args in
        (* Only reads touch the device *before* the vote (the primary has
           already distributed device data); writes commit after a
           successful vote, so a faulty primary can be removed safely. *)
        let io =
          (num = Syscall.sys_ft_mem_access && args.(0) = 0)
          || num = Syscall.sys_ft_mem_rep
        in
        vote_signatures t ~io_in_flight:io (fun () ->
            commit ();
            deliver_events t round.events;
            List.iter (fun r -> r.pending_ft <- None) (live_replicas t);
            maybe_reintegrate t;
            equalize_stalls t;
            List.iter (resume_replica t) (live_replicas t);
            end_round t)
    | _ ->
        vote_signatures t ~io_in_flight:false (fun () ->
            deliver_events t round.events;
            maybe_reintegrate t;
            equalize_stalls t;
            List.iter (resume_replica t) (live_replicas t);
            end_round t))
  in
  if all_none || all_same then continue_round ()
  else begin
    (* Divergent pending syscalls: treat as detected divergence. *)
    publish_signatures t;
    if handle_mismatch t ~io_in_flight:false then begin
      List.iter (fun r -> r.pending_ft <- None) (live_replicas t);
      equalize_stalls t;
      List.iter (resume_replica t) (live_replicas t);
      end_round t
    end
  end

let finish_rendezvous t =
  Metrics.incr t.ms.m_rendezvous;
  let lv = live_replicas t in
  let fts = List.map (fun r -> r.pending_ft) lv in
  let all_same =
    match fts with [] -> true | f0 :: rest -> List.for_all (fun f -> f = f0) rest
  in
  let resume () =
    List.iter (fun r -> r.pending_ft <- None) (live_replicas t);
    equalize_stalls t;
    List.iter (resume_replica t) (live_replicas t);
    end_round t
  in
  if all_same then
    match List.hd fts with
    | Some (num, args) ->
        Metrics.incr t.ms.m_ft_rounds;
        let commit = ft_stage t num args in
        (* Only reads touch the device *before* the vote (the primary has
           already distributed device data); writes commit after a
           successful vote, so a faulty primary can be removed safely. *)
        let io =
          (num = Syscall.sys_ft_mem_access && args.(0) = 0)
          || num = Syscall.sys_ft_mem_rep
        in
        vote_signatures t ~io_in_flight:io (fun () ->
            commit ();
            resume ())
    | None ->
        (* Sync_vote rendezvous: vote only. *)
        vote_signatures t ~io_in_flight:false resume
  else begin
    publish_signatures t;
    if handle_mismatch t ~io_in_flight:false then resume ()
  end

(* ---------------------------------------------------------------------- *)
(* Joining and catch-up                                                    *)
(* ---------------------------------------------------------------------- *)

let publish_clock t r clk =
  let enc = Clock.encode clk in
  let base = (shared t).Layout.time_base + (4 * r.rid) in
  Array.iteri (fun i w -> Mem.write (mem t) (base + i) w) enc;
  Mem.write (mem t) ((shared t).Layout.bar_base + r.rid) t.round_seq;
  charge r publish_cost

let read_clock t rid =
  let base = (shared t).Layout.time_base + (4 * rid) in
  Clock.decode (Array.init 4 (fun i -> Mem.read (mem t) (base + i)))

let arrived_bar t rid =
  Mem.read (mem t) ((shared t).Layout.bar_base + rid) = t.round_seq

(* Join the gather stage at a kernel entry. *)
let join_gather t r =
  if not r.joined then begin
    r.joined <- true;
    Machine.clear_ipi t.mach ~core_id:r.rid;
    let count = event_count t r in
    let clk =
      (* LC logical time is the event count alone: a replica at a kernel
         entry after [count] events is at position "kernel boundary",
         whatever user instruction it was interrupted at. Only CC
         publishes the precise user position. *)
      if
        t.cfg.Config.mode = Config.CC
        && Kernel.current_tid r.kern >= 0
        && not r.finished
      then Clock.capture (profile t) ~count (Kernel.core r.kern)
      else Clock.in_kernel ~count
    in
    publish_clock t r clk;
    (* Publishing and parking at the barrier are hypervisor crossings
       when the stack runs virtualised. *)
    vm_charge t r;
    tp_begin t r Trace.Gather_wait;
    r.state <- Rs_gather_wait
  end

(* Mark a replica arrived at the final barrier. *)
let arrive t r =
  (Kernel.core r.kern).Core.bp <- None;
  Mem.write (mem t) ((shared t).Layout.bar_base + r.rid) t.round_seq;
  vm_charge t r;
  if r.move_started >= 0 then begin
    Metrics.observe t.ms.m_catchup_cycles
      (float_of_int (now t - r.move_started));
    r.move_started <- -1
  end;
  r.arrived_at <- now t;
  tp_begin t r Trace.Vote_wait;
  r.state <- Rs_vote_wait

(* After the gather completes: elect the leader and set every replica
   moving (or arrived). *)
let start_move t round =
  let lv = live_replicas t in
  let joined = List.filter (fun r -> r.joined) lv in
  let clocks = List.map (fun r -> (r, read_clock t r.rid)) joined in
  match clocks with
  | [] -> ()
  | (_, c0) :: _ ->
      let leader_clock =
        List.fold_left
          (fun acc (_, c) -> if Clock.compare c acc > 0 then c else acc)
          c0 clocks
      in
      t.round_seq <- t.round_seq + 1;
      (* Fresh sequence for the arrival barrier. *)
      List.iter
        (fun (r, c) ->
          if Clock.equal_position c leader_clock then arrive t r
          else begin
            r.move_started <- now t;
            (* Catch-up distance (the drift the round must absorb):
               completed-branch deficit between two precise user
               positions, event-count deficit otherwise. *)
            let dist =
              match (c.Clock.pos, leader_clock.Clock.pos) with
              | ( Clock.At_user { branches_adj = a; _ },
                  Clock.At_user { branches_adj = la; _ } ) ->
                  la - a
              | _ -> leader_clock.Clock.count - c.Clock.count
            in
            Metrics.observe t.ms.m_catchup_dist (float_of_int (max 0 dist));
            match t.cfg.Config.mode with
            | Config.LC | Config.Base ->
                tp_begin t r Trace.Chase;
                r.state <- Rs_chase leader_clock.Clock.count
            | Config.CC ->
                tp_begin t r Trace.Catchup;
                r.state <-
                  Rs_catchup
                    {
                      leader_clock;
                      bp_set = false;
                      overshoot = false;
                      pmu_active = false;
                      pmu_done = false;
                    }
          end)
        clocks;
      round.stage <- `Move

(* ---------------------------------------------------------------------- *)
(* Per-cycle replica stepping                                              *)
(* ---------------------------------------------------------------------- *)

let enter_rendezvous t r =
  (match t.phase with
  | Ph_idle ->
      t.round_seq <- t.round_seq + 1;
      (* Via the replica's child trace: when this entry is replayed at a
         window barrier the event must land *after* the replica's
         buffered in-window events, which only the child can order. In
         forwarding mode this is identical to emitting on the root. *)
      Trace.round_begin r.rtrace ~seq:t.round_seq;
      t.phase <- Ph_rdv { rdv_started = now t }
  | Ph_rdv _ -> ()
  | Ph_async _ -> () (* cannot happen: async joins are taken first *));
  r.arrived_at <- now t;
  tp_begin t r Trace.Rendezvous;
  r.state <- Rs_rendezvous;
  Mem.write (mem t) ((shared t).Layout.bar_base + r.rid) t.round_seq

(* Post-syscall bookkeeping shared by every mode: join/arrive/rendezvous. *)
let post_syscall t r num =
  match t.phase with
  | Ph_async round when round.stage = `Gather -> join_gather t r
  | Ph_async _ -> (
      (* Move stage: arrival checks. *)
      match r.state with
      | Rs_chase target when event_count t r >= target -> arrive t r
      | Rs_catchup cu
        when cu.leader_clock.Clock.pos = Clock.In_kernel
             && event_count t r >= cu.leader_clock.Clock.count
             && Kernel.current_tid r.kern < 0 ->
          arrive t r
      | _ -> ())
  | Ph_idle | Ph_rdv _ -> (
      (* Inside a parallel window the rendezvous entry mutates shared
         round state; park the worker and let the orchestrator replay
         the entry at this exact cycle. *)
      let rendezvous () =
        match r.wctx with
        | Some w -> w.wpark <- Some (w.wv_now, Pk_rendezvous)
        | None -> enter_rendezvous t r
      in
      match r.pending_ft with
      | Some _ -> rendezvous ()
      | None ->
          if
            t.cfg.Config.sync_level = Config.Sync_vote
            && t.cfg.Config.mode <> Config.Base
            && num <> Syscall.sys_exit
          then rendezvous ())

let on_syscall t r num =
  Signature.bump_event (mem t) ~base:(sig_base t r.rid);
  vm_charge t r;
  if
    t.cfg.Config.mode <> Config.Base
    && (t.cfg.Config.sync_level = Config.Sync_args
       || t.cfg.Config.sync_level = Config.Sync_vote)
  then begin
    let regs = (Kernel.core r.kern).Core.regs in
    let nargs = Syscall.arg_count num in
    let words = Array.init (1 + nargs) (fun i -> if i = 0 then num else regs.(i - 1)) in
    Signature.add_words (mem t) ~base:(sig_base t r.rid) words
  end;
  (match Kernel.handle_syscall r.kern num with
  | Kernel.Sr_local -> ()
  | Kernel.Sr_ft { num = fnum; args } ->
      if t.cfg.Config.mode = Config.Base then ft_base t r fnum args
      else r.pending_ft <- Some (fnum, args));
  if Kernel.all_exited r.kern then r.finished <- true;
  post_syscall t r num

let on_fault t r fault =
  vm_charge t r;
  (match Kernel.handle_fault r.kern fault with
  | Kernel.Fd_user_fault | Kernel.Fd_user_exception ->
      rlog_event t r (E_user_fault r.rid)
  | Kernel.Fd_kernel_abort a ->
      rlog_event t r (E_kernel_abort r.rid);
      if t.cfg.Config.exception_barriers then begin
        (* Caught by the exception-handler barrier: halt this replica in a
           detectable (fail-stop) way; the others will time out. *)
        r.state <- Rs_halted;
        (Kernel.core r.kern).Core.halted <- true
      end
      else if t.cfg.Config.mode = Config.Base then begin
        r.state <- Rs_halted;
        (Kernel.core r.kern).Core.halted <- true;
        let reason = H_kernel_exception (Printf.sprintf "phys abort @%d" a) in
        match r.wctx with
        | Some w -> w.wpark <- Some (w.wv_now, Pk_halt reason)
        | None -> halt_system t reason
      end
      else
        (* Replicated without exception barriers: an uncontrolled abort
           takes the whole system down mid-round. Such configurations
           are ineligible for the parallel engine
           ({!Config.parallel_ineligibility}), so this never runs inside
           a window. *)
        halt_system t (H_kernel_exception (Printf.sprintf "phys abort @%d" a)));
  if Kernel.all_exited r.kern then r.finished <- true;
  if r.state <> Rs_halted then
    match t.phase with
    | Ph_async round when round.stage = `Gather -> join_gather t r
    | _ -> ()

(* Execute one core cycle of user code for a running/chasing replica. *)
let run_user t r =
  (* An externally halted core (crashed/overclocked/hung) freezes: it
     neither executes nor reaches kernel entries, so the others' barrier
     times out — do not mistake it for a clean thread exit. *)
  if (Kernel.core r.kern).Core.halted then ()
  else if Kernel.current_tid r.kern < 0 then ()
  else
    match Kernel.step r.kern with
    | Core.Ran | Core.Stalled -> (
        (* Deferred publication: a replica IPI'd at a rep-string first
           steps past it (Section III-D). *)
        if r.defer_publish then
          match t.phase with
          | Ph_async { stage = `Gather; _ }
            when not (Core.rep_in_progress (Kernel.core r.kern) (Kernel.env r.kern))
            ->
              r.defer_publish <- false;
              join_gather t r
          | _ -> ())
    | Core.Event (Core.Ev_syscall n) -> on_syscall t r n
    | Core.Event (Core.Ev_fault f) -> on_fault t r f
    | Core.Event Core.Ev_halt ->
        Kernel.exit_current r.kern;
        if Kernel.all_exited r.kern then r.finished <- true
    | Core.Event Core.Ev_breakpoint ->
        (* Stale breakpoint outside a catch-up: clear and continue. *)
        (Kernel.core r.kern).Core.bp <- None

let on_ipi t r =
  Machine.clear_ipi t.mach ~core_id:r.rid;
  Metrics.incr t.ms.m_ipis;
  charge r (profile t).Arch.irq_cost;
  vm_charge t r;
  match t.phase with
  | Ph_async { stage = `Gather; _ } ->
      if
        t.cfg.Config.mode = Config.CC
        && Kernel.current_tid r.kern >= 0
        && Core.rep_in_progress (Kernel.core r.kern) (Kernel.env r.kern)
      then begin
        (* Stopped at a rep-string: step past it before publishing a
           precise position (paper Section III-D). *)
        Metrics.incr t.ms.m_rep_steps;
        Trace.rep_step r.rtrace ~rid:r.rid;
        charge r (profile t).Arch.rep_walk_cost;
        r.defer_publish <- true
      end
      else join_gather t r
  | _ -> ()

let step_catchup t r cu =
  let core = Kernel.core r.kern in
  let p = profile t in
  let leader = cu.leader_clock in
  let count = event_count t r in
  if count < leader.Clock.count then run_user t r
  else begin
    match leader.Clock.pos with
    | Clock.In_kernel ->
        (* Arrival for kernel-parked leaders happens in post_syscall; a
           replica still running here with the full count has diverged and
           will time the round out. *)
        run_user t r
    | Clock.At_user { branches_adj = leader_adj; ip } ->
        let adj_now () =
          let raw = Core.branch_count core p in
          if core.Core.last_was_cntinc then raw - 1 else raw
        in
        if t.cfg.Config.fast_catchup && (not cu.pmu_done) && not cu.bp_set
        then begin
          (* Paper Section VI: cover most of the branch deficit with a
             PMU-overflow interrupt instead of a debug exception per pass
             over the leader's address; arm the breakpoint only for the
             final stretch. *)
          if cu.pmu_active then begin
            (match Kernel.step r.kern with
            | Core.Ran | Core.Stalled -> ()
            | Core.Event (Core.Ev_syscall n) ->
                on_syscall t r n;
                cu.overshoot <- true
            | Core.Event (Core.Ev_fault f) -> on_fault t r f
            | Core.Event Core.Ev_halt ->
                Kernel.exit_current r.kern;
                if Kernel.all_exited r.kern then r.finished <- true
            | Core.Event Core.Ev_breakpoint -> core.Core.bp <- None);
            if adj_now () >= leader_adj - 8 then begin
              cu.pmu_active <- false;
              cu.pmu_done <- true;
              (* The overflow interrupt that ends the fast phase. *)
              charge r p.Arch.irq_cost;
              vm_charge t r;
              tp_begin t r Trace.Catchup
            end
          end
          else if leader_adj - adj_now () > 32 then begin
            cu.pmu_active <- true;
            tp_begin t r Trace.Pmu_catchup;
            charge r p.Arch.breakpoint_set_cost
            (* programming the counter *)
          end
          else cu.pmu_done <- true
        end
        else if not cu.bp_set then begin
          cu.bp_set <- true;
          charge r p.Arch.breakpoint_set_cost;
          core.Core.bp <- Some ip;
          (* Already exactly at the leader's position? *)
          let here = Clock.capture p ~count core in
          if Clock.equal_position here leader then arrive t r
        end
        else
          match Kernel.step r.kern with
          | Core.Ran | Core.Stalled -> ()
          | Core.Event Core.Ev_breakpoint ->
              Metrics.incr t.ms.m_bp_fires;
              charge r p.Arch.debug_exception_cost;
              vm_charge t r;
              let here = Clock.capture p ~count:(event_count t r) core in
              if Clock.equal_position here leader then arrive t r
              else begin
                if Clock.compare here leader > 0 then cu.overshoot <- true;
                (* Step past the breakpointed address with the resume
                   flag: the bp-fire/single-step pair of Section III-D. *)
                Metrics.incr t.ms.m_single_steps;
                Trace.single_step r.rtrace ~rid:r.rid;
                core.Core.bp_suppress <- true
              end
          | Core.Event (Core.Ev_syscall n) ->
              (* Divergence: more syscalls than the leader. *)
              on_syscall t r n;
              cu.overshoot <- true
          | Core.Event (Core.Ev_fault f) -> on_fault t r f
          | Core.Event Core.Ev_halt ->
              Kernel.exit_current r.kern;
              if Kernel.all_exited r.kern then r.finished <- true
  end

let step_replica t r =
  match r.state with
  | Rs_removed | Rs_halted -> ()
  | Rs_gather_wait | Rs_vote_wait | Rs_rendezvous ->
      (* Spinning at a barrier: charged kernel work (publishing, voting,
         VM crossings) overlaps the wait instead of deferring resume. *)
      let core = Kernel.core r.kern in
      if core.Core.stall > 0 then core.Core.stall <- core.Core.stall - 1
  | Rs_chase target ->
      if event_count t r >= target then arrive t r else run_user t r
  | Rs_catchup cu -> step_catchup t r cu
  | Rs_run ->
      if (Kernel.core r.kern).Core.halted then ()
      (* A hung core answers neither IPIs nor its own work. *)
      else if Machine.ipi_visible t.mach ~core_id:r.rid then on_ipi t r
      else if r.finished then begin
        match t.phase with
        | Ph_async { stage = `Gather; _ } -> join_gather t r
        | _ -> ()
      end
      else if Kernel.current_tid r.kern < 0 then begin
        (* Idle: all threads blocked. *)
        match t.phase with
        | Ph_async { stage = `Gather; _ } -> join_gather t r
        | _ -> ()
      end
      else run_user t r

(* ---------------------------------------------------------------------- *)
(* Phase advancement and round initiation                                  *)
(* ---------------------------------------------------------------------- *)

let initiate_round t evs =
  Metrics.incr t.ms.m_rounds;
  t.round_seq <- t.round_seq + 1;
  Trace.round_begin t.trace ~seq:t.round_seq;
  List.iter
    (fun r ->
      r.joined <- false;
      tp_begin t r Trace.Ipi_wait;
      Machine.send_ipi t.mach ~target:r.rid)
    (live_replicas t);
  t.phase <- Ph_async { events = evs; stage = `Gather; round_started = now t }

let base_tick t =
  let r = t.replicas.(0) in
  if not r.finished then begin
    charge r (profile t).Arch.irq_cost;
    vm_charge t r;
    t.ticks <- t.ticks + 1;
    Metrics.incr t.ms.m_ticks;
    let hook = t.after_save in
    Kernel.preempt
      ?after_save:
        (Option.map (fun f ~tid ~ctx_addr -> f ~rid:0 ~tid ~ctx_addr) hook)
      r.kern
  end

let advance_phase t =
  match t.phase with
  | Ph_idle ->
      if t.cfg.Config.mode = Config.Base then begin
        if now t >= t.next_tick then begin
          t.next_tick <- now t + t.cfg.Config.tick_interval;
          base_tick t
        end;
        match Machine.pending_irq t.mach ~core_id:0 with
        | Some dpn ->
            Machine.ack_irq t.mach dpn;
            let r = t.replicas.(0) in
            charge r (profile t).Arch.irq_cost;
            vm_charge t r;
            ignore (Kernel.wake_irq_waiters r.kern ~dpn)
        | None -> ()
      end
      else begin
        let evs = ref [] in
        if now t >= t.next_tick then begin
          (* Absolute cadence: a round that overruns the tick interval
             does not push the next tick out, otherwise replica drift —
             and hence catch-up cost — grows with round duration. Keep a
             quarter-interval minimum spacing so an overloaded system
             still makes forward progress. *)
          t.next_tick <-
            max
              (t.next_tick + t.cfg.Config.tick_interval)
              (now t + (t.cfg.Config.tick_interval / 4));
          if not (finished t) then evs := Tick :: !evs
        end;
        (match Machine.pending_irq t.mach ~core_id:t.prim with
        | Some dpn ->
            Machine.ack_irq t.mach dpn;
            evs := Dev_irq dpn :: !evs
        | None -> ());
        if !evs <> [] then initiate_round t !evs
      end
  | Ph_async round -> (
      if now t - round.round_started > t.cfg.Config.barrier_timeout then begin
        let stragglers =
          List.filter
            (fun r ->
              match round.stage with
              | `Gather -> not r.joined
              | `Move -> r.state <> Rs_vote_wait)
            (live_replicas t)
        in
        if handle_timeout t ~stragglers then
          round.round_started <- now t (* fresh budget for the survivors *)
      end
      else
        match round.stage with
        | `Gather ->
            if List.for_all (fun r -> r.joined) (live_replicas t) then
              start_move t round
        | `Move ->
            if
              List.for_all
                (fun r -> r.state = Rs_vote_wait && arrived_bar t r.rid)
                (live_replicas t)
            then finish_async_round t round)
  | Ph_rdv rdv ->
      if now t - rdv.rdv_started > t.cfg.Config.barrier_timeout then begin
        let stragglers =
          List.filter (fun r -> r.state <> Rs_rendezvous) (live_replicas t)
        in
        if handle_timeout t ~stragglers then rdv.rdv_started <- now t
      end
      else if
        List.for_all
          (fun r -> r.state = Rs_rendezvous && arrived_bar t r.rid)
          (live_replicas t)
      then finish_rendezvous t
      (* A replica that exited (or hung) while the others rendezvous is a
         straggler; without timeout masking it is caught by the barrier
         timeout above, not by a vote — the paper's hanging-replica case. *)

(* ---------------------------------------------------------------------- *)
(* One simulated cycle (shared by both engines)                             *)
(* ---------------------------------------------------------------------- *)

(* The classic cycle: advance the machine, step every replica in rid
   order, then let the round-lifecycle state machine react. The
   sequential engine is exactly this in a loop; the parallel engine
   falls back to it whenever a cycle cannot be windowed (async rounds,
   pending IPIs). *)
let classic_cycle t =
  Machine.tick t.mach;
  Array.iter (fun r -> step_replica t r) t.replicas;
  advance_phase t

(* Quiescent-burst fast path for the block-compiled backend. An
   unreplicated machine spends almost every cycle in the same
   configuration: phase [Ph_idle], the one replica in [Rs_run] with no
   breakpoint armed, no devices attached, no IPI in flight, tracing off,
   and the next preemption tick thousands of cycles away. Every
   per-cycle check [classic_cycle] performs is loop-invariant across
   such a stretch, and [advance_phase] is provably a no-op until the
   cycle whose post-tick [now] reaches [next_tick]. When the
   block-compiled backend is active we exploit this: hand [Blockc.run] a
   fuel budget that stops strictly short of the tick boundary, let it
   burn cycles in a tight loop that refills the bus lanes inline, then
   account the elapsed time to [Machine.now] and handle the terminating
   event exactly as [run_user] would have. The burst is bit-identical to
   running [classic_cycle] [consumed] times — the differential suite and
   the [bench exec] identity gate hold the two paths equal — and the
   engine falls back to [classic_cycle] whenever any precondition fails.
   Returns the number of cycles consumed, or [None] if ineligible. *)
let burst_cycles t ~budget =
  if
    t.cfg.Config.mode <> Config.Base
    || t.cfg.Config.trace <> None
    || Array.length t.mach.Machine.devices
       > (match t.net with Some _ -> 1 | None -> 0)
  then None
  else
    let r = t.replicas.(0) in
    let core = Kernel.core r.kern in
    match r.state with
    | Rs_run
      when (not r.finished)
           && (not core.Core.halted)
           && core.Core.bp = None
           && (not core.Core.bp_suppress)
           && Kernel.current_tid r.kern >= 0
           && not (Machine.ipi_visible t.mach ~core_id:0) -> (
        match Kernel.block_cache r.kern with
        | None -> None
        | Some bc ->
            (* Stay strictly short of the tick boundary: the cycle whose
               post-tick [now] equals [next_tick] must run through
               [classic_cycle] so [advance_phase] delivers the tick. *)
            let fuel = min budget (t.next_tick - now t - 1) in
            (* A networked machine may burst too (the replay primary's
               common case): clip the fuel so no device-visible
               activity falls inside the window. [Netdev.next_event] is
               the first cycle the device could deliver a frame or has
               its IRQ line up; stopping strictly short of it leaves
               that cycle to [classic_cycle], whose [Machine.tick] runs
               the delivery and whose [advance_phase] delivers the IRQ
               on exactly the cycles per-cycle stepping would. Guest
               device access cannot happen mid-burst: MMIO is
               syscall-mediated ([translate_mmio]), and a syscall
               terminates the burst. *)
            let fuel =
              match t.net with
              | None -> fuel
              | Some nd -> (
                  match Netdev.next_event nd ~after:(now t) with
                  | None -> fuel
                  | Some at -> min fuel (at - now t - 1))
            in
            if fuel <= 0 then None
            else begin
              let consumed, ev =
                Blockc.run bc ~buses:t.mach.Machine.buses ~fuel
              in
              t.mach.Machine.now <- t.mach.Machine.now + consumed;
              (* Refresh the device clock before dispatching the event:
                 a terminating syscall may read or write device
                 registers, and their completion stamps must carry the
                 post-burst cycle exactly as under per-cycle stepping
                 (where [dev_tick] runs every cycle). Nothing can be
                 due for delivery — the fuel clip above guarantees the
                 window is device-quiescent. *)
              Machine.tick_devices t.mach;
              (match ev with
              | None -> ()
              | Some (Core.Ev_syscall n) -> on_syscall t r n
              | Some (Core.Ev_fault f) -> on_fault t r f
              | Some Core.Ev_halt ->
                  Kernel.exit_current r.kern;
                  if Kernel.all_exited r.kern then r.finished <- true
              | Some Core.Ev_breakpoint ->
                  (* Unreachable: [bp = None] is a burst precondition. *)
                  core.Core.bp <- None);
              Some consumed
            end)
    | _ -> None

let replica_state_name t rid =
  let r = t.replicas.(rid) in
  let state =
    match r.state with
    | Rs_run -> if r.finished then "run(finished)" else "run"
    | Rs_gather_wait -> "gather"
    | Rs_chase n -> Printf.sprintf "chase(%d)" n
    | Rs_catchup _ -> "catchup"
    | Rs_vote_wait -> "vote-wait"
    | Rs_rendezvous -> "rendezvous"
    | Rs_halted -> "halted"
    | Rs_removed -> "removed"
  in
  let phase =
    match t.phase with
    | Ph_idle -> "idle"
    | Ph_async { stage = `Gather; _ } -> "async-gather"
    | Ph_async { stage = `Move; _ } -> "async-move"
    | Ph_rdv _ -> "rdv"
  in
  Printf.sprintf "%s/%s count=%d" state phase
    (Signature.event_count (mem t) ~base:(sig_base t rid))
