(** In-memory key-value server (the paper's Redis counterpart).

    A single-threaded, event-driven server — deliberately matching the
    paper's choice of Redis as "implemented in ANSI C … single-threaded,
    event-driven … saves us from analysing source code for data races" —
    fused with its network driver, running over the simulated NIC:

    - requests arrive as packets in the NIC's DMA ring (outside the
      sphere of replication),
    - input replication is mode-dependent, as in Section III-E: under
      LC the primary's driver copies packets to the cross-replica shared
      buffer in user mode and the replicas rendezvous on
      [Sys_input_wait]; under CC the identical-instruction-stream
      requirement forces every device register access through
      [FT_Mem_Access] and every DMA buffer through [FT_Mem_Rep],
    - every outgoing response is contributed to the state signature with
      [FT_Add_Trace] before the doorbell rings (the paper's output
      voting; disabled by the LC-*-N configurations of Table VII),
    - the store itself is a chained hash table in replicated memory.

    Operations: GET, PUT (fixed-width values), and a small SCAN
    (YCSB-E). The server loops forever; the harness stops the clock. *)

val vlen : int
(** Value width in words (8). *)

val nbuckets : int

val req_magic : int
val resp_magic : int

val op_get : int
val op_put : int
val op_scan : int

(* Request layout: [magic; seq; op; key; ...]. PUT carries [vlen] value
   words at index 4; SCAN carries the scan length at index 4.
   Response layout: [magic; seq; status; op; payload...]. *)

val req_words_get : int
val req_words_put : int
val req_words_scan : int

val program :
  ?max_records:int -> ?net_dpn:int -> branch_count:bool -> unit ->
  Rcoe_isa.Program.t
(** [max_records] bounds the node pool (default 8192). [net_dpn] is the
    network device's page id (default 0). *)
