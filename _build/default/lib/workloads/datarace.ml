open Rcoe_isa
open Reg

let default_threads = 32
let default_iters = 40

let counter_label = "shared_counter"

(* Worker: [iters] times { load counter; idle; bump register; store }.
   The idle delay widens the race window, as in the paper's benchmark. *)
let program ?(threads = default_threads) ?(iters = default_iters)
    ?(locked = false) ~branch_count () =
  let build worker_addr =
    let a = Asm.create "datarace" in
    Asm.space a counter_label 2;
    Asm.label a "worker";
    Asm.for_up a R7 ~start:0 ~stop:(Instr.Imm iters) (fun () ->
        if locked then begin
          (* Kernel-mediated atomic increment (the CC-safe idiom). *)
          Asm.la a R0 counter_label;
          Asm.movi a R1 1;
          Asm.movi a R2 0;
          Asm.movi a R3 0;
          Asm.syscall a Rcoe_kernel.Syscall.sys_atomic
        end
        else begin
          Asm.la a R4 counter_label;
          Asm.ld a R5 R4 0;
          (* Idle for a short interval with the value in a register. *)
          Asm.for_up a R6 ~start:0 ~stop:(Instr.Imm 15) (fun () -> Asm.nop a);
          Asm.addi a R5 R5 1;
          Asm.st a R4 R5 0
        end);
    Wl.exit_thread a;
    Asm.label a "main";
    (* Spawn the workers, remembering the first tid. *)
    Wl.spawn_label ~entry:worker_addr a ~arg:0;
    Asm.mov a R10 R0;
    for _ = 2 to threads do
      Wl.spawn_label ~entry:worker_addr a ~arg:0
    done;
    (* Join all workers (tids are contiguous from the first). *)
    Asm.mov a R11 R10;
    Asm.addi a R12 R10 threads;
    Asm.while_ a Instr.Lt R11 (Instr.Reg R12) (fun () ->
        Asm.mov a R0 R11;
        Asm.syscall a Rcoe_kernel.Syscall.sys_join;
        Asm.addi a R11 R11 1);
    Wl.exit_thread a;
    Asm.assemble ~entry:"main" ~branch_count a
  in
  Wl.resolve_entry build ~label:"worker"
