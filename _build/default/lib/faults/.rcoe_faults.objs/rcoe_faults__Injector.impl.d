lib/faults/injector.ml: Array Context Layout List Printf Rcoe_kernel Rcoe_machine Rcoe_util Rng
