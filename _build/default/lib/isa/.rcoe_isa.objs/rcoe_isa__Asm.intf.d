lib/isa/asm.mli: Instr Program Reg
