(** Generic forward/backward dataflow over a {!Cfg.t}.

    A worklist fixpoint solver parameterised by a join-semilattice. Facts
    propagate block-to-block; the per-instruction [transfer] function is
    folded across each block, and an optional [edge] function adjusts the
    fact flowing along an edge by its kind — e.g. a stack-balance
    analysis maps [Call] edges to bottom (stay intraprocedural) while
    letting [Retsite] edges carry the caller's depth across the call.

    The solver also provides a ready-made backward register-liveness
    instance built on {!Instr.defs}/{!Instr.uses}. *)

type direction = Forward | Backward

exception Diverged of int
(** Raised by [Make.solve] when the worklist has not stabilised within
    its iteration budget — the payload is the first address of the block
    still changing. Finite-height lattices never trip the guard; infinite
    ascending chains (e.g. an interval domain without widening) do. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) : sig
  type result = {
    before : L.t array;
        (** Fact immediately before each instruction executes. *)
    after : L.t array;
        (** Fact immediately after each instruction executes. *)
  }

  val solve :
    cfg:Cfg.t ->
    direction:direction ->
    init:L.t ->
    bottom:L.t ->
    transfer:(int -> Instr.t -> L.t -> L.t) ->
    ?edge:(Cfg.edge_kind -> L.t -> L.t) ->
    ?edge_at:(src:int -> Cfg.edge_kind -> L.t -> L.t) ->
    ?widen:(at:int -> old:L.t -> L.t -> L.t) ->
    ?max_visits:int ->
    ?entries:int list ->
    unit ->
    result
  (** [init] seeds the boundary blocks: for [Forward] the blocks whose
      first address is in [entries] (default: the CFG roots); for
      [Backward] the blocks in [entries] (by first address) or, by
      default, every block with no successors. [bottom] must be a
      neutral element of [join]. [transfer addr instr fact] is applied
      in execution order for [Forward] and reverse order for
      [Backward].

      [edge_at] supersedes [edge] when given: it additionally receives
      the address of the control-transfer instruction owning the edge
      (the last instruction of the source block), letting clients
      resolve e.g. which [Jal] a [Retsite] edge belongs to, or refine
      facts by the branch condition at [src].

      [widen ~at ~old fact] is applied to every block's joined inflow
      ([at] is the block's first address, [old] the previous boundary
      fact, bottom on the first visit); return [fact] unchanged for a
      plain join. Supplying an extrapolating widening is what guarantees
      termination on infinite-ascending-chain lattices.

      [max_visits] bounds total block recomputations (default
      [256 * (blocks + 8)]); exceeding it raises {!Diverged}. *)
end

val live_in : Cfg.t -> Reg.t list array
(** Registers live before each instruction: the canonical backward
    instance (may-liveness, exits seeded empty). *)
