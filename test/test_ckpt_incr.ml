(* Tests for dirty-page incremental checkpointing: Mem write tracking
   and its first-out-of-range Abort payloads, the page-table dirty
   mirror, the deferred-reduction checksum fast paths, delta-chain ring
   eviction (fold-on-evict), and the acceptance sweep proving that
   Config.Incremental restores bit-for-bit identically to Config.Full
   across LC/CC x DMR/TMR on both engines, at strictly lower charged
   checkpoint cost. *)

open Rcoe_machine
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
module Fletcher = Rcoe_checksum.Fletcher
module Metrics = Rcoe_obs.Metrics

let x86 = Arch.X86
let psz = Mem.page_size

(* --- Mem dirty bitmap ---------------------------------------------------- *)

let dirty_pages m = Mem.snapshot_dirty m ~addr:0 ~len:(Mem.size m)

let test_dirty_bitmap () =
  let m = Mem.create (8 * psz) in
  (* A fresh memory is fully clean. *)
  Alcotest.(check (list int)) "fresh is clean" [] (dirty_pages m);
  Alcotest.(check bool) "page_is_dirty clean" false
    (Mem.page_is_dirty m ~addr:0);
  (* write marks exactly the containing page. *)
  Mem.write m (2 * psz) 7;
  Alcotest.(check (list int)) "write marks its page" [ 2 * psz ]
    (dirty_pages m);
  Alcotest.(check bool) "page_is_dirty anywhere in page" true
    (Mem.page_is_dirty m ~addr:((2 * psz) + psz - 1));
  (* write_block spanning a page boundary marks both pages; results stay
     ascending and page-aligned. *)
  Mem.write_block m ((5 * psz) - 2) (Array.make 4 1);
  Alcotest.(check (list int)) "block marks span ascending"
    [ 2 * psz; 4 * psz; 5 * psz ]
    (dirty_pages m);
  Mem.clear_dirty m;
  Alcotest.(check (list int)) "clear_dirty" [] (dirty_pages m);
  (* fill, blit, and flip_bit go through the same tracking. *)
  Mem.fill m ~addr:psz ~len:1 3;
  Mem.blit m ~src:0 ~dst:(6 * psz) ~len:2;
  Mem.flip_bit m ~addr:(3 * psz) ~bit:0;
  Alcotest.(check (list int)) "fill/blit/flip all tracked"
    [ psz; 3 * psz; 6 * psz ]
    (dirty_pages m);
  (* snapshot_dirty windows: only pages intersecting [addr, addr+len). *)
  Alcotest.(check (list int)) "windowed snapshot" [ 3 * psz ]
    (Mem.snapshot_dirty m ~addr:(2 * psz) ~len:(2 * psz));
  Alcotest.(check (list int)) "empty window" []
    (Mem.snapshot_dirty m ~addr:0 ~len:0);
  (* Zero-length block ops at the end boundary are legal and clean. *)
  Mem.clear_dirty m;
  Mem.write_block m (Mem.size m) [||];
  Alcotest.(check (list int)) "empty write_block clean" [] (dirty_pages m);
  Alcotest.check_raises "snapshot_dirty bounds"
    (Invalid_argument "Mem.snapshot_dirty") (fun () ->
      ignore (Mem.snapshot_dirty m ~addr:0 ~len:(Mem.size m + 1)))

(* --- Abort payloads on block operations (regression) --------------------- *)

let test_block_abort_payloads () =
  let m = Mem.create 100 in
  (* A block op that starts in range but runs off the end must report
     the first out-of-range address, not the (valid) start address. *)
  Alcotest.check_raises "write_block overrun" (Mem.Abort 100) (fun () ->
      Mem.write_block m 90 (Array.make 20 0));
  Alcotest.check_raises "read_block overrun" (Mem.Abort 100) (fun () ->
      ignore (Mem.read_block m 95 10));
  Alcotest.check_raises "fill overrun" (Mem.Abort 100) (fun () ->
      Mem.fill m ~addr:99 ~len:2 0);
  Alcotest.check_raises "blit src overrun" (Mem.Abort 100) (fun () ->
      Mem.blit m ~src:98 ~dst:0 ~len:5);
  Alcotest.check_raises "blit dst overrun" (Mem.Abort 100) (fun () ->
      Mem.blit m ~src:0 ~dst:97 ~len:5);
  (* A start address beyond the end is itself the first bad address. *)
  Alcotest.check_raises "start past end" (Mem.Abort 140) (fun () ->
      Mem.write_block m 140 (Array.make 4 0));
  (* Negative start addresses keep reporting the start address. *)
  Alcotest.check_raises "negative start" (Mem.Abort (-3)) (fun () ->
      Mem.write_block m (-3) (Array.make 4 0));
  Alcotest.check_raises "negative len" (Mem.Abort 5) (fun () ->
      ignore (Mem.read_block m 5 (-1)));
  (* None of the failed ops may have dirtied anything. *)
  Alcotest.(check (list int)) "failed ops leave memory clean" []
    (dirty_pages m)

(* --- page-table dirty mirror --------------------------------------------- *)

let test_pte_dirty_mirror () =
  let m = Mem.create (16 * psz) in
  let t = { Page_table.base = 8; npages = 4 } in
  Page_table.clear m t;
  let pte ?(valid = true) ?(device = false) ppn =
    { Page_table.valid; writable = true; dma = false; device; ppn }
  in
  Page_table.set m t ~vpn:0 (pte 2);
  Page_table.set m t ~vpn:1 (pte 3);
  Page_table.set m t ~vpn:2 (pte ~device:true 4);
  Page_table.set m t ~vpn:3 (pte ~valid:false 5);
  Mem.clear_dirty m;
  (* Dirty the frames of vpn 0 (mirrorable), vpn 2 (device - skipped)
     and vpn 3 (invalid - skipped). *)
  Mem.write m (2 * psz) 1;
  Mem.write m (4 * psz) 1;
  Mem.write m (5 * psz) 1;
  Alcotest.(check int) "mirrors only valid non-device frames" 1
    (Page_table.mirror_dirty m t);
  Alcotest.(check bool) "vpn 0 mirrored" true (Page_table.is_dirty m t ~vpn:0);
  Alcotest.(check bool) "vpn 1 clean frame" false
    (Page_table.is_dirty m t ~vpn:1);
  Alcotest.(check bool) "device vpn skipped" false
    (Page_table.is_dirty m t ~vpn:2);
  Alcotest.(check bool) "invalid vpn skipped" false
    (Page_table.is_dirty m t ~vpn:3);
  (* Already-mirrored entries are not counted twice. *)
  Alcotest.(check int) "idempotent" 0 (Page_table.mirror_dirty m t);
  (* The software bit is invisible to encode/decode and a set rebuilds
     the word, clearing the mirror - like an OS-managed spare PTE bit. *)
  Alcotest.(check bool) "decode ignores mirror bit" true
    (Page_table.get m t ~vpn:0 = pte 2);
  Page_table.set m t ~vpn:0 (pte 2);
  Alcotest.(check bool) "set clears mirror" false
    (Page_table.is_dirty m t ~vpn:0);
  Page_table.set_dirty m t ~vpn:1;
  Page_table.set_dirty m t ~vpn:2;
  Page_table.clear_all_dirty m t;
  for vpn = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "clear_all_dirty vpn %d" vpn)
      false
      (Page_table.is_dirty m t ~vpn)
  done

(* --- deferred-reduction checksum identity -------------------------------- *)

(* Sizes straddling the reduction block boundary, plus degenerate ones. *)
let checksum_sizes = [ 0; 1; 7; 4095; 4096; 4097; 9000 ]

let mk_words n =
  (* Deterministic, full-32-bit-range values (including ones whose low
     bits look "negative" to a naive masking bug). *)
  Array.init n (fun i -> (i * 0x9E3779B9) land 0xFFFFFFFF)

let test_fletcher_add_words_identity () =
  List.iter
    (fun n ->
      let ws = mk_words n in
      let bulk = Fletcher.create () and ref_ = Fletcher.create () in
      (* Non-zero starting state so carried accumulators are exercised. *)
      Fletcher.add_word bulk 0xDEADBEEF;
      Fletcher.add_word ref_ 0xDEADBEEF;
      Fletcher.add_words bulk ws;
      Array.iter (Fletcher.add_word ref_) ws;
      Alcotest.(check (pair int int))
        (Printf.sprintf "fletcher identical at n=%d" n)
        (Fletcher.value ref_) (Fletcher.value bulk))
    checksum_sizes

let test_signature_add_words_identity () =
  List.iter
    (fun n ->
      let ws = mk_words n in
      let ma = Mem.create 8 and mb = Mem.create 8 in
      Signature.reset ma ~base:0;
      Signature.reset mb ~base:0;
      Signature.add_word ma ~base:0 0xDEADBEEF;
      Signature.add_word mb ~base:0 0xDEADBEEF;
      Signature.add_words ma ~base:0 ws;
      Array.iter (Signature.add_word mb ~base:0) ws;
      Alcotest.(check bool)
        (Printf.sprintf "signature identical at n=%d" n)
        true
        (Signature.equal3 (Signature.read ma ~base:0)
           (Signature.read mb ~base:0));
      (* The bulk path must keep the signature page write-tracked. *)
      if n > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "bulk path marks dirty at n=%d" n)
          true
          (Mem.page_is_dirty ma ~addr:0))
    checksum_sizes

(* --- delta-chain ring eviction (fold-on-evict) --------------------------- *)

(* Drive a real workload through three quiescent cuts, capturing each
   cut both as Full (reference) and incrementally (engine protocol:
   Full base, then deltas, clearing dirty flags). Pushing the third
   incremental snapshot into a depth-2 ring evicts the base and folds
   it into the middle delta, which must then restore bit-for-bit like
   the Full snapshot of the same cut. *)
let test_ring_eviction_folds_base () =
  let config =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~seed:9 ())
      with
      Config.exception_barriers = true;
    }
  in
  let program =
    Md5sum.program ~message_words:96 ~iters:8 ~seed:6 ~branch_count:false ()
  in
  let sys = System.create ~config ~program in
  let mem = (System.machine sys).Machine.mem in
  let lay = System.layout sys in
  let capture ?clear_dirty ~kind () =
    let replicas =
      List.map
        (fun rid -> (rid, System.kernel sys rid, System.replica_done sys rid))
        (System.live sys)
    in
    Checkpoint.capture ?clear_dirty mem lay ~kind ~cycle:(System.now sys)
      ~round_seq:0 ~ticks:0 ~prim:(System.primary sys) ~replicas
  in
  let fullring = Checkpoint.create ~depth:3 in
  let incr = Checkpoint.create ~depth:2 in
  let cuts =
    List.map
      (fun i ->
        System.run sys ~max_cycles:30_000;
        Alcotest.(check bool)
          (Printf.sprintf "cut %d is mid-run" i)
          true
          ((not (System.finished sys)) && System.halted sys = None);
        let f = capture ~clear_dirty:false ~kind:Checkpoint.Full () in
        Checkpoint.push fullring f;
        let kind =
          if Checkpoint.count incr = 0 then Checkpoint.Full
          else Checkpoint.Delta
        in
        let d = capture ~kind () in
        Checkpoint.push incr d;
        (f, d))
      [ 1; 2; 3 ]
  in
  (* Depth 2 held: the base was evicted and folded into cut 2's delta. *)
  Alcotest.(check int) "ring bounded" 2 (Checkpoint.count incr);
  (match Checkpoint.to_list incr with
  | [ newest; folded ] ->
      Alcotest.(check bool) "newest still a delta" true
        (Checkpoint.kind newest = Checkpoint.Delta);
      Alcotest.(check bool) "folded base is self-contained" true
        (Checkpoint.kind folded = Checkpoint.Full)
  | l -> Alcotest.failf "ring holds %d snapshots" (List.length l));
  (* The surviving ring snapshots (the fold replaced cut 2's delta with
     a new self-contained snap, so resolve through the ring itself)
     restore the same replica partitions as the Full snapshots of their
     cuts - including the folded base, which absorbed cut 1's pages. *)
  let f2, _ = List.nth cuts 1 and f3, _ = List.nth cuts 2 in
  let ring_newest, ring_folded =
    match Checkpoint.to_list incr with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  List.iter
    (fun (label, f, d) ->
      List.iter
        (fun rid ->
          let a = Checkpoint.resolve_partition fullring f ~rid in
          let b = Checkpoint.resolve_partition incr d ~rid in
          Alcotest.(check bool)
            (Printf.sprintf "%s replica %d identical" label rid)
            true (a = b))
        (System.live sys))
    [ ("folded cut 2", f2, ring_folded); ("cut 3", f3, ring_newest) ];
  (* And a memory-level restore agrees end-to-end, not just per slot. *)
  Checkpoint.restore_memory mem lay fullring f3;
  let img_full = Mem.read_block mem 0 (Mem.size mem) in
  Checkpoint.restore_memory mem lay incr ring_newest;
  let img_incr = Mem.read_block mem 0 (Mem.size mem) in
  Alcotest.(check bool) "restored memory identical" true
    (img_full = img_incr);
  (* The O(dirty) claim: the delta captures copied strictly fewer words
     than their Full twins, and accounting balances. *)
  List.iteri
    (fun i (f, d) ->
      Alcotest.(check int)
        (Printf.sprintf "cut %d words accounting" (i + 1))
        (Checkpoint.total_words f)
        (Checkpoint.total_words d);
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "cut %d delta is smaller" (i + 1))
          true
          (Checkpoint.words d < Checkpoint.words f))
    cuts

(* --- acceptance: Full vs Incremental, LC/CC x DMR/TMR, both engines ------ *)

let sum_hist sys name =
  match Metrics.find_histogram (System.metrics sys) name with
  | None -> 0.
  | Some h -> List.fold_left ( +. ) 0. (Metrics.samples h)

(* One faulty run: checkpointing on, a transient signature corruption
   mid-run, recovery by rollback. masking = false so TMR also recovers
   by rollback instead of masking the fault away. *)
let faulty_run ~mode ~nreplicas ~engine ~ckpt_mode =
  let config =
    {
      (Runner.config_for ~mode ~nreplicas ~arch:x86 ~seed:11 ())
      with
      Config.engine;
      exception_barriers = true;
      masking = false;
      barrier_timeout = 600_000;
      checkpoint_every = 2;
      checkpoint_depth = 3;
      max_rollbacks = 8;
      checkpoint_mode = ckpt_mode;
    }
  in
  let program =
    Md5sum.program ~message_words:96 ~iters:8 ~seed:6 ~branch_count:false ()
  in
  let sys = System.create ~config ~program in
  System.run sys ~max_cycles:60_000;
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 1 + 1) ~bit:7;
  System.run sys ~max_cycles:60_000_000;
  sys

let check_engines_identical ~label a b =
  Alcotest.(check int) (label ^ ": final cycle") (System.now a) (System.now b);
  Alcotest.(check bool) (label ^ ": rollbacks") true
    (System.rollbacks a = System.rollbacks b);
  Alcotest.(check int)
    (label ^ ": checkpoints")
    (System.checkpoints_taken a)
    (System.checkpoints_taken b);
  List.iter
    (fun rid ->
      Alcotest.(check string)
        (Printf.sprintf "%s: output r%d" label rid)
        (System.output a rid) (System.output b rid))
    (System.live a)

let sweep_config ~mode ~nreplicas () =
  let name =
    Printf.sprintf "%s-%d" (Config.mode_to_string mode) nreplicas
  in
  let run engine ckpt_mode = faulty_run ~mode ~nreplicas ~engine ~ckpt_mode in
  let sf = run Config.Sequential Config.Full in
  let pf = run Config.Parallel Config.Full in
  let si = run Config.Sequential Config.Incremental in
  let pi = run Config.Parallel Config.Incremental in
  List.iter
    (fun (l, sys) ->
      Alcotest.(check bool) (name ^ l ^ ": finished") true
        (System.finished sys);
      Alcotest.(check bool) (name ^ l ^ ": recovered, no halt") true
        (System.halted sys = None);
      Alcotest.(check bool) (name ^ l ^ ": rolled back") true
        (System.rollbacks sys <> []);
      Alcotest.(check string) (name ^ l ^ ": correct output") "........"
        (System.output sys 0))
    [ ("/seq-full", sf); ("/par-full", pf); ("/seq-incr", si);
      ("/par-incr", pi) ];
  (* Both engines agree bit-for-bit within each checkpoint mode. *)
  check_engines_identical ~label:(name ^ "/full seq=par") sf pf;
  check_engines_identical ~label:(name ^ "/incr seq=par") si pi;
  (* Incremental is observably equivalent to Full: same recovered
     outputs on every replica. (Cycle counts legitimately differ - the
     capture stall is mode-dependent.) *)
  List.iter
    (fun rid ->
      Alcotest.(check string)
        (Printf.sprintf "%s: full=incr output r%d" name rid)
        (System.output sf rid) (System.output si rid))
    (System.live sf);
  (* And strictly cheaper: fewer charged checkpoint cycles end-to-end. *)
  Alcotest.(check bool) (name ^ ": incremental charges less") true
    (sum_hist si "ckpt.cost_cycles" < sum_hist sf "ckpt.cost_cycles")

let test_sweep_lc_dmr () = sweep_config ~mode:Config.LC ~nreplicas:2 ()
let test_sweep_lc_tmr () = sweep_config ~mode:Config.LC ~nreplicas:3 ()
let test_sweep_cc_dmr () = sweep_config ~mode:Config.CC ~nreplicas:2 ()
let test_sweep_cc_tmr () = sweep_config ~mode:Config.CC ~nreplicas:3 ()

let suite =
  [
    Alcotest.test_case "dirty bitmap semantics" `Quick test_dirty_bitmap;
    Alcotest.test_case "block-op abort payloads" `Quick
      test_block_abort_payloads;
    Alcotest.test_case "page-table dirty mirror" `Quick test_pte_dirty_mirror;
    Alcotest.test_case "fletcher add_words identity" `Quick
      test_fletcher_add_words_identity;
    Alcotest.test_case "signature add_words identity" `Quick
      test_signature_add_words_identity;
    Alcotest.test_case "ring eviction folds base" `Quick
      test_ring_eviction_folds_base;
    Alcotest.test_case "full=incr sweep LC-DMR" `Slow test_sweep_lc_dmr;
    Alcotest.test_case "full=incr sweep LC-TMR" `Slow test_sweep_lc_tmr;
    Alcotest.test_case "full=incr sweep CC-DMR" `Slow test_sweep_cc_dmr;
    Alcotest.test_case "full=incr sweep CC-TMR" `Slow test_sweep_cc_tmr;
  ]
