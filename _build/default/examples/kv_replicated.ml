(* A replicated key-value service: the paper's Redis benchmark in
   miniature. The same server program runs unreplicated, DMR and TMR
   under both coupling modes; a YCSB-style client measures throughput and
   verifies every returned value against its embedded CRC.

     dune exec examples/kv_replicated.exe *)

open Rcoe_core
open Rcoe_workloads
open Rcoe_harness

let run label mode n =
  let config =
    Runner.config_for ~mode ~nreplicas:n ~arch:Rcoe_machine.Arch.X86
      ~with_net:true ()
  in
  let res =
    Kv_run.run ~config ~workload:Ycsb.A ~records:150 ~operations:900 ()
  in
  let c = res.Kv_run.counters in
  Printf.printf "  %-6s %8.1f kops/s   (%d/%d ops ok, %d corrupt, %d errors)%s\n"
    label res.Kv_run.kops_per_sec c.Ycsb.completed c.Ycsb.issued
    c.Ycsb.corrupted c.Ycsb.client_errors
    (match System.halted res.Kv_run.sys with
    | None -> ""
    | Some h -> "  HALTED: " ^ System.halt_reason_to_string h);
  res.Kv_run.kops_per_sec

let () =
  Printf.printf
    "KV server under YCSB-A (50%% reads / 50%% updates), 150 records:\n\n";
  let base = run "Base" Config.Base 1 in
  let lcd = run "LC-D" Config.LC 2 in
  let lct = run "LC-T" Config.LC 3 in
  let ccd = run "CC-D" Config.CC 2 in
  let cct = run "CC-T" Config.CC 3 in
  Printf.printf
    "\nrelative to base: LC-D %.2f  LC-T %.2f  CC-D %.2f  CC-T %.2f\n"
    (lcd /. base) (lct /. base) (ccd /. base) (cct /. base);
  Printf.printf
    "\nLC-RCoE replicates the driver in user mode and loses ~25-35%%;\n\
     CC-RCoE must route every device access through the kernel\n\
     (FT_Mem_Access / FT_Mem_Rep) and pays much more — the paper's\n\
     Fig. 3 trade-off.\n"
