open Rcoe_isa
open Reg

let default_loops = 60

let result_label = "whet_result"

(* Polynomial approximations stand in for the transcendental functions of
   the original (our ISA has no sin/cos/exp); like the original, each
   module is a tight loop of FP operations on a tiny working set. *)
let program ?(loops = default_loops) ~branch_count () =
  let a = Asm.create "whetstone" in
  Asm.data_floats a "e1" [| 1.0; -1.0; -1.0; -1.0 |];
  Asm.space a result_label 4;
  Asm.label a "main";
  (* Module counts scale with [loops] like the original's N1..N8. *)
  let n1 = loops * 40
  and n2 = loops * 28
  and n3 = loops * 32
  and n4 = loops * 86
  and n5 = loops * 22
  and n6 = loops * 60
  and n7 = loops * 16
  and n8 = loops * 12 in

  (* Module 1: simple identities x = (x+y+z-t)*0.5 etc. — tight loop. *)
  Asm.emit a (Instr.Fldi (F0, 1.0));
  Asm.emit a (Instr.Fldi (F1, -1.0));
  Asm.emit a (Instr.Fldi (F2, -1.0));
  Asm.emit a (Instr.Fldi (F3, -1.0));
  Asm.emit a (Instr.Fldi (F7, 0.499975));
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n1) (fun () ->
      Asm.emit a (Instr.Falu (Instr.Fadd, F4, F0, F1));
      Asm.emit a (Instr.Falu (Instr.Fadd, F4, F4, F2));
      Asm.emit a (Instr.Falu (Instr.Fsub, F4, F4, F3));
      Asm.emit a (Instr.Falu (Instr.Fmul, F0, F4, F7));
      Asm.emit a (Instr.Falu (Instr.Fadd, F4, F0, F1));
      Asm.emit a (Instr.Falu (Instr.Fsub, F4, F4, F2));
      Asm.emit a (Instr.Falu (Instr.Fadd, F4, F4, F3));
      Asm.emit a (Instr.Falu (Instr.Fmul, F1, F4, F7)));

  (* Module 2: array elements. *)
  Asm.la a R5 "e1";
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n2) (fun () ->
      Asm.emit a (Instr.Fld (F0, R5, 0));
      Asm.emit a (Instr.Fld (F1, R5, 1));
      Asm.emit a (Instr.Falu (Instr.Fadd, F2, F0, F1));
      Asm.emit a (Instr.Falu (Instr.Fmul, F2, F2, F7));
      Asm.emit a (Instr.Fst (F2, R5, 2));
      Asm.emit a (Instr.Fld (F3, R5, 2));
      Asm.emit a (Instr.Falu (Instr.Fsub, F3, F3, F0));
      Asm.emit a (Instr.Fst (F3, R5, 3)));

  (* Module 3: "trig" — degree-3 polynomial evaluation, tight. *)
  Asm.emit a (Instr.Fldi (F0, 0.5));
  Asm.emit a (Instr.Fldi (F5, 0.1666));
  Asm.emit a (Instr.Fldi (F6, 0.0083));
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n3) (fun () ->
      Asm.emit a (Instr.Falu (Instr.Fmul, F1, F0, F0));
      Asm.emit a (Instr.Falu (Instr.Fmul, F2, F1, F0));
      Asm.emit a (Instr.Falu (Instr.Fmul, F3, F2, F5));
      Asm.emit a (Instr.Falu (Instr.Fsub, F3, F0, F3));
      Asm.emit a (Instr.Falu (Instr.Fmul, F4, F2, F1));
      Asm.emit a (Instr.Falu (Instr.Fmul, F4, F4, F6));
      Asm.emit a (Instr.Falu (Instr.Fadd, F0, F3, F4));
      Asm.emit a (Instr.Funop (Instr.Fabs, F0, F0)));

  (* Module 4: conditional jumps — int ops in a tight loop. *)
  Asm.movi a R6 1;
  Asm.movi a R7 0;
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n4) (fun () ->
      Asm.if_ a Instr.Eq R6 (Instr.Imm 1)
        ~else_:(fun () -> Asm.movi a R6 1)
        (fun () -> Asm.movi a R6 0);
      Asm.add a R7 R7 R6);

  (* Module 5: sqrt/div chains. *)
  Asm.emit a (Instr.Fldi (F0, 0.75));
  Asm.emit a (Instr.Fldi (F1, 3.1416));
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n5) (fun () ->
      Asm.emit a (Instr.Funop (Instr.Fsqrt, F2, F1));
      Asm.emit a (Instr.Falu (Instr.Fdiv, F3, F2, F1));
      Asm.emit a (Instr.Falu (Instr.Fadd, F0, F0, F3));
      Asm.emit a (Instr.Funop (Instr.Fsqrt, F0, F0)));

  (* Module 6: integer arithmetic in a tight loop. *)
  Asm.movi a R8 1;
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n6) (fun () ->
      Asm.muli a R8 R8 3;
      Asm.remi a R8 R8 4099;
      Asm.addi a R8 R8 1);

  (* Module 7: again FP identities with memory traffic. *)
  Asm.la a R5 "e1";
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n7) (fun () ->
      Asm.emit a (Instr.Fld (F0, R5, 0));
      Asm.emit a (Instr.Falu (Instr.Fmul, F0, F0, F7));
      Asm.emit a (Instr.Fst (F0, R5, 0)));

  (* Module 8: procedure-call module. *)
  Asm.for_up a R4 ~start:0 ~stop:(Instr.Imm n8) (fun () ->
      Wl.call a "p3");

  (* Publish results and finish. *)
  Asm.la a R4 result_label;
  Asm.emit a (Instr.Fst (F0, R4, 0));
  Asm.emit a (Instr.Fst (F1, R4, 1));
  Asm.st a R4 R7 2;
  Asm.st a R4 R8 3;
  Wl.add_trace a ~label:result_label ~words:4;
  Wl.exit_thread a;

  Wl.func a "p3" (fun () ->
      Asm.emit a (Instr.Falu (Instr.Fmul, F2, F0, F7));
      Asm.emit a (Instr.Falu (Instr.Fadd, F3, F2, F1));
      Asm.emit a (Instr.Falu (Instr.Fmul, F3, F3, F7)));

  Asm.assemble ~entry:"main" ~branch_count a
