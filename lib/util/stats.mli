(** Small descriptive-statistics helpers used by the experiment harness to
    report means and standard deviations in the paper's style (std. dev. in
    units of the least significant digit, shown in parentheses). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** [summarize xs] computes sample statistics ([stddev] uses the n-1
    denominator; it is 0 for fewer than two samples).
    Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float
val stddev : float list -> float

val geomean : float list -> float
(** Geometric mean; used for the SPLASH-2 overhead summary (Table IV).
    Raises [Invalid_argument] on the empty list or non-positive values. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in \[0,100\], nearest-rank on sorted data. *)

val histogram : buckets:float list -> float list -> (float * int) list
(** [histogram ~buckets xs] counts samples into upper-bound buckets:
    one [(bound, count)] pair per distinct bucket (sorted ascending),
    where a sample [x] lands in the first bucket with [x <= bound].
    Samples above the largest bound are not counted. Raises
    [Invalid_argument] on an empty bucket list. *)

val format_paper : decimals:int -> summary -> string
(** Render as the paper does: ["86 (0)"], ["130 (11)"] — mean with the
    standard deviation in parentheses expressed in units of the least
    significant printed digit. *)
