(** Order-sensitive Fletcher checksums.

    The paper reduces kernel state updates, driver-contributed data and
    system-call parameters to a small signature using a Fletcher checksum,
    chosen because it "is dependent on the values forming the checksum as
    well as the order in which they are applied" (Section III-C). The
    replication engine accumulates one of these per replica and compares
    them when voting.

    The accumulator ingests machine words; [value] exposes the running
    checksum as two words (sum and order-sensitive sum-of-sums), which
    together with the event count form the paper's three-word signature. *)

type t

val create : unit -> t

val reset : t -> unit

val add_word : t -> int -> unit
(** Feed one machine word (folded to 32 bits before accumulation). *)

val add_words : t -> int array -> unit

val add_string : t -> string -> unit
(** Feed a byte string (packed little-endian into words). *)

val value : t -> int * int
(** [(c0, c1)]: the two running sums, each in \[0, 2^32). *)

val digest : t -> int
(** A single 64-bit-word rendering of [value]: [c1 lsl 32 lor c0]. *)

val equal : t -> t -> bool

val copy : t -> t

val fletcher32 : string -> int
(** One-shot classical Fletcher-32 of a byte string (16-bit blocks,
    modulo 65535); used by tests as an independent reference. *)

val frame : int array -> int
(** One-shot per-frame checksum over machine words (each word reduced
    mod 65535 before the classical Fletcher recurrence; result packed as
    [c1 * 65536 + c0]). Used as the NIC's wire-side ground truth for the
    ingress-verification path: it is computable with only add/rem
    operations, so the kvstore guest driver mirrors it exactly and the
    {!Rcoe_isa.Absint} interval domain can bound the accumulators. *)
