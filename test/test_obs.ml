(* Tests for the tracing/metrics subsystem: ring semantics, run
   determinism, Chrome-JSON export structure, detection latency, and
   the zero-cost-when-disabled guarantee. *)

open Rcoe_core
open Rcoe_harness
module Trace = Rcoe_obs.Trace
module Metrics = Rcoe_obs.Metrics
module Json = Rcoe_obs.Json
module Export = Rcoe_obs.Export

let x86 = Rcoe_machine.Arch.X86

(* --- ring buffer ------------------------------------------------------- *)

let test_ring_wraparound () =
  let tr = Trace.create { Trace.capacity = 4 } in
  let cycle = ref 0 in
  Trace.set_clock tr (fun () -> !cycle);
  for i = 1 to 10 do
    cycle := i * 100;
    Trace.bp_fire tr ~rid:(i mod 2)
  done;
  Alcotest.(check int) "total" 10 (Trace.total tr);
  Alcotest.(check int) "dropped" 6 (Trace.dropped tr);
  let evs = Trace.events tr in
  Alcotest.(check int) "kept" 4 (List.length evs);
  Alcotest.(check (list int)) "newest four, oldest first"
    [ 700; 800; 900; 1000 ]
    (List.map (fun e -> e.Trace.ts) evs)

let test_disabled_records_nothing () =
  let tr = Trace.disabled () in
  Trace.bp_fire tr ~rid:0;
  Trace.vote tr ~rid:0 ~count:1 ~c0:2 ~c1:3 ~agree:true;
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  Alcotest.(check int) "total" 0 (Trace.total tr);
  Alcotest.(check (list pass)) "empty" [] (Trace.events tr)

let test_injection_survives_disabled () =
  let tr = Trace.disabled () in
  let cycle = ref 0 in
  Trace.set_clock tr (fun () -> !cycle);
  cycle := 4242;
  Trace.injection tr ~addr:100 ~bit:3;
  Alcotest.(check (option int)) "marked" (Some 4242) (Trace.last_injection tr);
  Trace.clear_last_injection tr;
  Alcotest.(check (option int)) "cleared" None (Trace.last_injection tr)

(* --- traced runs ------------------------------------------------------- *)

let traced_config ?(mode = Config.LC) ?(capacity = 16384) () =
  {
    (Runner.config_for ~mode ~nreplicas:2 ~arch:x86 ~seed:7 ())
    with
    Config.trace = Some { Trace.capacity };
  }

let program () =
  Rcoe_workloads.Dhrystone.program
    ~branch_count:(Rcoe_workloads.Wl.branch_count_for x86) ()

let test_deterministic_streams () =
  let run () =
    let r = Runner.run_program ~config:(traced_config ()) ~program:(program ()) () in
    Trace.events (System.trace r.Runner.sys)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  Alcotest.(check bool) "identical event streams" true (a = b)

(* --- export ------------------------------------------------------------ *)

let test_export_structure () =
  let r =
    Runner.run_program ~config:(traced_config ~mode:Config.CC ())
      ~program:(program ()) ()
  in
  let tr = System.trace r.Runner.sys in
  let json = Export.to_chrome_json tr in
  match Json.parse json with
  | Error e -> Alcotest.failf "export does not parse: %s" e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Alcotest.(check bool) "non-empty" true (evs <> []);
          let ph e =
            match Json.member "ph" e with
            | Some (Json.String s) -> s
            | _ -> Alcotest.fail "event without ph"
          in
          List.iter
            (fun e ->
              let p = ph e in
              Alcotest.(check bool)
                (Printf.sprintf "ph %S is X/i/M" p)
                true
                (List.mem p [ "X"; "i"; "M" ]))
            evs;
          (* Every completed sync round produced one complete
             gather-phase duration pair per replica, and the engine
             closes exactly as many vote-wait spans. *)
          let spans name rid =
            List.length
              (List.filter
                 (fun e ->
                   ph e = "X"
                   && Json.member "name" e = Some (Json.String name)
                   && Json.member "tid" e = Some (Json.Int rid)
                   && Json.member "pid" e = Some (Json.Int 0))
                 evs)
          in
          let g0 = spans "gather" 0 in
          Alcotest.(check bool) "rounds traced" true (g0 > 0);
          Alcotest.(check int) "gather/vote-wait pair (rid 0)" g0
            (spans "vote-wait" 0);
          Alcotest.(check int) "gather/vote-wait pair (rid 1)" (spans "gather" 1)
            (spans "vote-wait" 1)
      | _ -> Alcotest.fail "no traceEvents list")

(* --- detection latency ------------------------------------------------- *)

let test_detection_latency_histogram () =
  let config = traced_config () in
  let sys = System.create ~config ~program:(program ()) in
  System.run sys ~max_cycles:30_000;
  let injected_at = System.now sys in
  let addr = System.sig_base sys 1 + 1 and bit = 5 in
  Rcoe_machine.Mem.flip_bit
    (System.machine sys).Rcoe_machine.Machine.mem ~addr ~bit;
  Trace.injection (System.trace sys) ~addr ~bit;
  System.run sys ~max_cycles:3_000_000;
  (match System.halted sys with
  | Some System.H_mismatch -> ()
  | h ->
      Alcotest.failf "expected H_mismatch, got %s"
        (match h with
        | Some r -> System.halt_reason_to_string r
        | None -> "no halt"));
  let expected = float_of_int (System.now sys - injected_at) in
  match Metrics.find_histogram (System.metrics sys) "detect.latency_cycles" with
  | None -> Alcotest.fail "detect.latency_cycles not registered"
  | Some h -> (
      match Metrics.samples h with
      | [ l ] ->
          Alcotest.(check (float 1e-9)) "latency = halt - injection" expected l
      | ls -> Alcotest.failf "expected one sample, got %d" (List.length ls))

(* --- zero cost when disabled ------------------------------------------- *)

let test_tracing_does_not_perturb_cycles () =
  let cycles trace =
    let config =
      { (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~seed:7 ())
        with Config.trace }
    in
    let r = Runner.run_program ~config ~program:(program ()) () in
    Alcotest.(check bool) "finished" true r.Runner.finished;
    r.Runner.cycles
  in
  Alcotest.(check int) "same cycle count with and without tracing"
    (cycles None)
    (cycles (Some { Trace.capacity = 16384 }))

(* --- metrics ----------------------------------------------------------- *)

let test_metrics_duplicate_name_raises () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x.y" in
  Metrics.incr ~by:3 c;
  Alcotest.(check int) "count" 3 (Metrics.count c);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Metrics: duplicate instrument \"x.y\"") (fun () ->
      ignore (Metrics.histogram m "x.y"))

let suite =
  [
    Alcotest.test_case "ring wrap-around keeps newest" `Quick
      test_ring_wraparound;
    Alcotest.test_case "disabled trace records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "injection mark survives disabled ring" `Quick
      test_injection_survives_disabled;
    Alcotest.test_case "traced runs are deterministic" `Quick
      test_deterministic_streams;
    Alcotest.test_case "chrome export is well-formed" `Quick
      test_export_structure;
    Alcotest.test_case "detection latency histogram" `Quick
      test_detection_latency_histogram;
    Alcotest.test_case "tracing does not perturb cycle counts" `Quick
      test_tracing_does_not_perturb_cycles;
    Alcotest.test_case "metrics duplicate name raises" `Quick
      test_metrics_duplicate_name_raises;
  ]
