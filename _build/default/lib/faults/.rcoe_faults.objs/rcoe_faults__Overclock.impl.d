lib/faults/overclock.ml: Array Layout List Option Printf Rcoe_kernel Rcoe_machine Rcoe_util Rng
