(* Determinism regression suite for the domain-parallel execution
   engine: [Config.Parallel] must be bit-for-bit identical to
   [Config.Sequential] — same final cycle, outputs, stats, metrics,
   logs, and cycle-stamped trace events — across LC/CC x DMR/TMR,
   under fault injection with rollback recovery, and in Base mode.
   Also covers the [Rcoe_util.Barrier] primitive and the lint-style
   parallel-eligibility rejections. *)

open Rcoe_machine
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
module Barrier = Rcoe_util.Barrier
module Trace = Rcoe_obs.Trace
module Metrics = Rcoe_obs.Metrics

let x86 = Arch.X86

(* --- the barrier primitive ---------------------------------------------- *)

let test_barrier_validation () =
  Alcotest.check_raises "parties >= 1"
    (Invalid_argument "Barrier.create: parties must be >= 1") (fun () ->
      ignore (Barrier.create 0))

let test_barrier_single_party () =
  (* A 1-party barrier opens immediately; generations still advance. *)
  let b = Barrier.create 1 in
  Barrier.await b;
  Barrier.await b;
  Alcotest.(check pass) "no deadlock" () ()

let test_barrier_rendezvous () =
  (* Two domains ping-pong through a cyclic barrier: after each await
     the other side's previous-phase write must be visible. *)
  let b = Barrier.create 2 in
  let cell = ref 0 in
  let seen = Array.make 3 (-1) in
  let d =
    Domain.spawn (fun () ->
        for i = 0 to 2 do
          cell := (2 * i) + 1;
          Barrier.await b;
          (* phase A: worker wrote *)
          Barrier.await b
          (* phase B: orchestrator read and wrote back *)
        done)
  in
  for i = 0 to 2 do
    Barrier.await b;
    seen.(i) <- !cell;
    Barrier.await b
  done;
  Domain.join d;
  Alcotest.(check (array int)) "each phase visible" [| 1; 3; 5 |] seen

let test_barrier_reuse_many_generations () =
  let b = Barrier.create 2 in
  let n = 500 in
  let sum = ref 0 in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to n do
          Barrier.await b
        done)
  in
  for i = 1 to n do
    sum := !sum + i;
    Barrier.await b
  done;
  Domain.join d;
  Alcotest.(check int) "generations cycled" (n * (n + 1) / 2) !sum

(* --- eligibility lint --------------------------------------------------- *)

let test_parallel_ineligibility () =
  let base =
    Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ()
  in
  let eligible =
    { base with Config.engine = Config.Parallel; exception_barriers = true }
  in
  (match Config.parallel_ineligibility eligible with
  | None -> ()
  | Some r -> Alcotest.failf "eligible config rejected: %s" r);
  (match Config.validate eligible with
  | Ok () -> ()
  | Error e -> Alcotest.failf "eligible config invalid: %s" e);
  let expect_reason label cfg frag =
    match Config.parallel_ineligibility cfg with
    | None -> Alcotest.failf "%s must be ineligible" label
    | Some reason ->
        let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s reason names the feature" label)
          true (contains reason frag);
        (* validate must reject the same configuration with the same
           lint-style reason. *)
        (match Config.validate { cfg with Config.engine = Config.Parallel } with
        | Error e ->
            Alcotest.(check bool) "validate carries the reason" true
              (contains e frag)
        | Ok () -> Alcotest.failf "%s must fail validation" label)
  in
  expect_reason "with_net"
    { eligible with Config.with_net = true }
    "with_net";
  expect_reason "uncontrolled kernel aborts"
    { eligible with Config.exception_barriers = false }
    "exception_barriers";
  (* Base mode never takes the whole system down from a sibling replica:
     aborts are deferred to the window boundary, so Base + Parallel is
     eligible even without exception barriers. *)
  let base_par =
    {
      (Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 ()) with
      Config.engine = Config.Parallel;
    }
  in
  (match Config.parallel_ineligibility base_par with
  | None -> ()
  | Some r -> Alcotest.failf "Base must stay eligible: %s" r)

(* --- bit-for-bit identity ----------------------------------------------- *)

let check_metrics_identical a b =
  let ma = System.metrics a and mb = System.metrics b in
  Alcotest.(check (list string)) "metric names" (Metrics.names ma)
    (Metrics.names mb);
  List.iter
    (fun name ->
      (match (Metrics.find_counter ma name, Metrics.find_counter mb name) with
      | Some ca, Some cb ->
          Alcotest.(check int) ("counter " ^ name) (Metrics.count ca)
            (Metrics.count cb)
      | _ -> ());
      match (Metrics.find_histogram ma name, Metrics.find_histogram mb name)
      with
      | Some ha, Some hb ->
          Alcotest.(check (list (float 0.0))) ("histogram " ^ name)
            (Metrics.samples ha) (Metrics.samples hb)
      | _ -> ())
    (Metrics.names ma)

let check_identical ~label a b =
  Alcotest.(check int) (label ^ ": final cycle") (System.now a) (System.now b);
  Alcotest.(check bool) (label ^ ": finished") (System.finished a)
    (System.finished b);
  Alcotest.(check bool) (label ^ ": halt parity") true
    (System.halted a = System.halted b);
  Alcotest.(check int) (label ^ ": ticks") (System.tick_count a)
    (System.tick_count b);
  Alcotest.(check bool) (label ^ ": event log") true
    (System.events a = System.events b);
  Alcotest.(check bool) (label ^ ": downgrades") true
    (System.downgrades a = System.downgrades b);
  Alcotest.(check bool) (label ^ ": rollbacks") true
    (System.rollbacks a = System.rollbacks b);
  Alcotest.(check int)
    (label ^ ": checkpoints")
    (System.checkpoints_taken a)
    (System.checkpoints_taken b);
  let n = (System.config a).Config.nreplicas in
  for rid = 0 to n - 1 do
    Alcotest.(check string)
      (Printf.sprintf "%s: output r%d" label rid)
      (System.output a rid) (System.output b rid)
  done;
  check_metrics_identical a b;
  let ta = System.trace a and tb = System.trace b in
  Alcotest.(check int) (label ^ ": trace total") (Trace.total ta)
    (Trace.total tb);
  let ea = Trace.events ta and eb = Trace.events tb in
  Alcotest.(check int) (label ^ ": trace length") (List.length ea)
    (List.length eb);
  List.iteri
    (fun i (eva, evb) ->
      if eva <> evb then
        Alcotest.failf "%s: trace event %d differs: ts=%d rid=%d vs ts=%d rid=%d"
          label i eva.Trace.ts eva.Trace.rid evb.Trace.ts evb.Trace.rid)
    (List.combine ea eb)

let engine_cfg engine cfg =
  {
    cfg with
    Config.engine;
    (* The parallel engine requires fail-stop (exception-barrier)
       confinement of kernel aborts under replication; both runs of a
       pair use the same setting so the comparison is apples-to-apples. *)
    exception_barriers = (cfg.Config.mode <> Config.Base);
    trace = Some { Trace.capacity = 1 lsl 16 };
  }

let md5 () =
  Md5sum.program ~message_words:64 ~iters:6 ~seed:2 ~branch_count:false ()

let run_healthy cfg =
  let sys = System.create ~config:cfg ~program:(md5 ()) in
  System.run sys ~max_cycles:80_000_000;
  sys

let pair_test ?(expect_complete = true) ~label mk () =
  let a = mk Config.Sequential and b = mk Config.Parallel in
  if expect_complete then
    Alcotest.(check bool) (label ^ ": sequential run completed") true
      (System.finished a || System.halted a <> None);
  check_identical ~label a b

let healthy_pair ~mode ~nreplicas ?(sync_level = Config.Sync_args) ?(vm = false)
    () =
  pair_test
    ~label:
      (Printf.sprintf "%s-%d%s" (Config.mode_to_string mode) nreplicas
         (if vm then "+vm" else ""))
    (fun engine ->
      let cfg =
        {
          (Runner.config_for ~mode ~nreplicas ~arch:x86 ~sync_level ~seed:7 ())
          with
          Config.vm;
        }
      in
      run_healthy (engine_cfg engine cfg))
    ()

let test_identity_lc_dmr () = healthy_pair ~mode:Config.LC ~nreplicas:2 ()
let test_identity_lc_tmr () = healthy_pair ~mode:Config.LC ~nreplicas:3 ()
let test_identity_cc_dmr () = healthy_pair ~mode:Config.CC ~nreplicas:2 ()
let test_identity_cc_tmr () = healthy_pair ~mode:Config.CC ~nreplicas:3 ()

let test_identity_cc_dmr_vm () =
  (* VM exits are the one metric workers defer; this pair exercises the
     deferred-count path on every in-window kernel crossing. *)
  healthy_pair ~mode:Config.CC ~nreplicas:2 ~vm:true ()

let test_identity_sync_vote () =
  (* Sync_vote rendezvouses on every syscall: maximum density of
     window-terminating rendezvous parks. *)
  healthy_pair ~mode:Config.LC ~nreplicas:2 ~sync_level:Config.Sync_vote ()

let test_identity_base () =
  pair_test ~label:"Base"
    (fun engine ->
      let cfg = Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86 () in
      run_healthy (engine_cfg engine cfg))
    ()

let test_identity_stop_predicate () =
  (* The ~stop polling contract: predicates run at the same multiples of
     128 cycles under both engines, so an early stop lands on the same
     cycle. *)
  pair_test ~expect_complete:false ~label:"stop"
    (fun engine ->
      let cfg =
        engine_cfg engine
          (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86 ~seed:7 ())
      in
      let sys = System.create ~config:cfg ~program:(md5 ()) in
      System.run sys ~max_cycles:80_000_000 ~stop:(fun s ->
          String.length (System.output s 0) >= 3);
      Alcotest.(check bool) "stop fired mid-run" false (System.finished sys);
      sys)
    ()

(* --- fault injection, masking and rollback under Parallel ---------------- *)

let injected_run ~engine ~nreplicas ~masking ~checkpointing =
  let cfg =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas ~arch:x86 ~seed:11 ()) with
      Config.engine;
      exception_barriers = true;
      masking;
      barrier_timeout = 600_000;
      checkpoint_every = (if checkpointing then 2 else 0);
      checkpoint_depth = 3;
      max_rollbacks = 8;
      trace = Some { Trace.capacity = 1 lsl 16 };
    }
  in
  let program =
    Md5sum.program ~message_words:96 ~iters:8 ~seed:6 ~branch_count:false ()
  in
  let sys = System.create ~config:cfg ~program in
  System.run sys ~max_cycles:60_000;
  (* Corrupt a replica signature between runs (the injection itself is
     engine-independent: both engines are quiescent here). *)
  let addr = System.sig_base sys 1 + 1 and bit = 7 in
  Mem.flip_bit (System.machine sys).Machine.mem ~addr ~bit;
  Trace.injection (System.trace sys) ~addr ~bit;
  System.run sys ~max_cycles:60_000_000;
  sys

let test_identity_rollback_recovery () =
  let mk engine =
    injected_run ~engine ~nreplicas:2 ~masking:false ~checkpointing:true
  in
  let a = mk Config.Sequential and b = mk Config.Parallel in
  Alcotest.(check bool) "recovered" true
    (System.finished a && System.halted a = None && System.rollbacks a <> []);
  check_identical ~label:"rollback" a b

let test_identity_mismatch_failstop () =
  let mk engine =
    injected_run ~engine ~nreplicas:2 ~masking:false ~checkpointing:false
  in
  let a = mk Config.Sequential and b = mk Config.Parallel in
  Alcotest.(check bool) "fail-stop" true
    (System.halted a = Some System.H_mismatch);
  check_identical ~label:"mismatch" a b

let test_identity_tmr_masking () =
  let mk engine =
    injected_run ~engine ~nreplicas:3 ~masking:true ~checkpointing:false
  in
  let a = mk Config.Sequential and b = mk Config.Parallel in
  Alcotest.(check bool) "masked, run continued" true
    (System.halted a = None && System.downgrades a <> []);
  check_identical ~label:"masking" a b

let suite =
  [
    Alcotest.test_case "barrier: create validation" `Quick
      test_barrier_validation;
    Alcotest.test_case "barrier: single party" `Quick test_barrier_single_party;
    Alcotest.test_case "barrier: two-domain rendezvous" `Quick
      test_barrier_rendezvous;
    Alcotest.test_case "barrier: many generations" `Quick
      test_barrier_reuse_many_generations;
    Alcotest.test_case "parallel eligibility lint" `Quick
      test_parallel_ineligibility;
    Alcotest.test_case "identity: LC-DMR" `Quick test_identity_lc_dmr;
    Alcotest.test_case "identity: LC-TMR" `Quick test_identity_lc_tmr;
    Alcotest.test_case "identity: CC-DMR" `Quick test_identity_cc_dmr;
    Alcotest.test_case "identity: CC-TMR" `Quick test_identity_cc_tmr;
    Alcotest.test_case "identity: CC-DMR under VM" `Quick
      test_identity_cc_dmr_vm;
    Alcotest.test_case "identity: Sync_vote rendezvous density" `Quick
      test_identity_sync_vote;
    Alcotest.test_case "identity: Base mode" `Quick test_identity_base;
    Alcotest.test_case "identity: stop predicate" `Quick
      test_identity_stop_predicate;
    Alcotest.test_case "identity: rollback recovery" `Quick
      test_identity_rollback_recovery;
    Alcotest.test_case "identity: mismatch fail-stop" `Quick
      test_identity_mismatch_failstop;
    Alcotest.test_case "identity: TMR masking downgrade" `Quick
      test_identity_tmr_masking;
  ]
