(* Full-vs-incremental checkpoint capture benchmark.

   For each workload the bench drives the simulation in chunks and, at
   every chunk boundary (a quiescent point — see System.run), captures
   the same cut twice into two private rings:

   - a Full snapshot (dirty flags left untouched), and
   - an Incremental snapshot (Full only for the ring's base, Delta
     afterwards, clearing the dirty flags — the engine's protocol).

   Both kinds therefore see the identical machine state, so the copied
   word counts are deterministic and the wall times are directly
   comparable. The bench also cross-checks the contract on the final
   capture: the resolved incremental image must be bit-for-bit the full
   image.

   A second, end-to-end phase runs the same workload with the engine's
   own checkpointing (checkpoint_every > 0) under both
   Config.checkpoint_mode settings and reports the simulated
   ckpt.cost_cycles the replicas were charged — the figure the paper's
   recovery experiments trade against rollback re-execution distance.

   `dune exec bench/main.exe -- ckpt` prints the table; the same rows
   are embedded in BENCH_baseline.json (schema v2) and checked by
   `baseline-check`: word counts and charged cycles exactly, the
   incremental capture wall time within RCOE_BENCH_TOLERANCE. *)

open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
module Json = Rcoe_obs.Json
module Metrics = Rcoe_obs.Metrics

let reps = 3
let captures_per_run = 12

type row = {
  k_name : string;
  k_captures : int;
  k_full_words : int;
  k_incr_words : int;
  k_full_wall : float;
  k_incr_wall : float;
  (* End-to-end engine runs, one per checkpoint mode. The capture
     stall differs between modes, which shifts round timing, so the
     checkpoint counts can legitimately differ too — both are recorded
     and exact-checked. *)
  k_full_ckpts : int;
  k_incr_ckpts : int;
  k_full_cost : int;  (* sum of ckpt.cost_cycles, Full mode *)
  k_incr_cost : int;  (* sum of ckpt.cost_cycles, Incremental mode *)
}

(* --- capture microbench -------------------------------------------------- *)

type side = {
  ring : Checkpoint.t;
  mutable words : int;
  mutable wall : float;
}

let mk_side () = { ring = Checkpoint.create ~depth:4; words = 0; wall = 0. }

let capture_into side ?clear_dirty ~kind sys =
  let mem = (System.machine sys).Rcoe_machine.Machine.mem in
  let replicas =
    List.map
      (fun rid -> (rid, System.kernel sys rid, System.replica_done sys rid))
      (System.live sys)
  in
  let t0 = Unix.gettimeofday () in
  let snap =
    Checkpoint.capture ?clear_dirty mem (System.layout sys) ~kind
      ~cycle:(System.now sys) ~round_seq:0 ~ticks:0
      ~prim:(System.primary sys) ~replicas
  in
  side.wall <- side.wall +. (Unix.gettimeofday () -. t0);
  Checkpoint.push side.ring snap;
  side.words <- side.words + Checkpoint.words snap;
  snap

(* Capture the current cut as both kinds. Full first, without touching
   the dirty flags, so the incremental side's baseline is undisturbed. *)
let capture_pair ~full ~incr sys =
  let fsnap = capture_into full ~clear_dirty:false ~kind:Checkpoint.Full sys in
  let kind =
    if Checkpoint.count incr.ring = 0 then Checkpoint.Full
    else Checkpoint.Delta
  in
  let isnap = capture_into incr ~kind sys in
  (fsnap, isnap)

let check_identical ~name full incr (fsnap, isnap) =
  List.iter
    (fun (img : Checkpoint.replica_image) ->
      let rid = img.Checkpoint.i_rid in
      let a = Checkpoint.resolve_partition full.ring fsnap ~rid in
      let b = Checkpoint.resolve_partition incr.ring isnap ~rid in
      if a <> b then
        failwith
          (Printf.sprintf
             "ckpt bench: %s: incremental restore diverges from full \
              (replica %d)"
             name rid))
    fsnap.Checkpoint.s_replicas

(* One rep of the chunked capture phase; [drive] advances the workload
   and invokes its callback at every quiescent chunk boundary. *)
let capture_run ~name ~drive () =
  let full = mk_side () and incr = mk_side () in
  let taken = ref 0 in
  let last = ref None in
  drive (fun sys ->
      if !taken < captures_per_run then begin
        last := Some (capture_pair ~full ~incr sys);
        taken := !taken + 1
      end);
  (match !last with
  | Some pair -> check_identical ~name full incr pair
  | None -> failwith (Printf.sprintf "ckpt bench: %s took no captures" name));
  (full, incr, !taken)

(* --- workload drivers ---------------------------------------------------- *)

let kv_config ~ckpt_mode ~every =
  {
    (Runner.config_for ~mode:Config.CC ~nreplicas:2
       ~arch:Rcoe_machine.Arch.X86 ~seed:7 ~with_net:true ())
    with
    Config.checkpoint_every = every;
    checkpoint_mode = ckpt_mode;
    exception_barriers = true;
  }

(* lu-c at scale 8 runs ~0.5M cycles; the short tick interval gives the
   engine enough sync rounds to checkpoint at a realistic cadence. *)
let splash_scale = 8

let splash_config ?tick_interval ~ckpt_mode ~every () =
  {
    (Runner.config_for ~mode:Config.CC ~nreplicas:2
       ~arch:Rcoe_machine.Arch.X86 ~seed:7 ?tick_interval ())
    with
    Config.checkpoint_every = every;
    checkpoint_mode = ckpt_mode;
    exception_barriers = true;
  }

let drive_kv on_boundary =
  (* The inject hook fires at every client chunk (400 cycles); sample
     every 24th so captures spread across the run. *)
  let calls = ref 0 in
  let inject sys =
    Stdlib.incr calls;
    if !calls mod 24 = 0 then on_boundary sys
  in
  ignore
    (Kv_run.run
       ~config:(kv_config ~ckpt_mode:Config.Full ~every:0)
       ~workload:Ycsb.A ~records:48 ~operations:128 ~inject ())

let drive_splash on_boundary =
  let program = Splash.program "lu-c" ~scale:splash_scale ~branch_count:false () in
  let sys =
    System.create
      ~config:(splash_config ~ckpt_mode:Config.Full ~every:0 ())
      ~program
  in
  let guard = ref 0 in
  while (not (System.finished sys)) && System.halted sys = None && !guard < 400 do
    System.run sys ~max_cycles:35_000;
    Stdlib.incr guard;
    if not (System.finished sys) then on_boundary sys
  done

(* --- end-to-end engine runs ---------------------------------------------- *)

let sum_hist sys name =
  match Metrics.find_histogram (System.metrics sys) name with
  | None -> 0
  | Some h -> int_of_float (List.fold_left ( +. ) 0. (Metrics.samples h))

let engine_kv ckpt_mode =
  let res =
    Kv_run.run
      ~config:(kv_config ~ckpt_mode ~every:8)
      ~workload:Ycsb.A ~records:48 ~operations:128 ()
  in
  (System.checkpoints_taken res.Kv_run.sys, sum_hist res.Kv_run.sys "ckpt.cost_cycles")

let engine_splash ckpt_mode =
  let program = Splash.program "lu-c" ~scale:splash_scale ~branch_count:false () in
  let sys =
    System.create
      ~config:(splash_config ~tick_interval:10_000 ~ckpt_mode ~every:2 ())
      ~program
  in
  System.run sys ~max_cycles:60_000_000;
  if not (System.finished sys) then
    failwith "ckpt bench: splash engine run did not finish";
  (System.checkpoints_taken sys, sum_hist sys "ckpt.cost_cycles")

(* --- measurement --------------------------------------------------------- *)

let median3 a b c = List.nth (List.sort compare [ a; b; c ]) 1

let measure_workload ~name ~drive ~engine =
  Printf.printf "  %-10s capture%!" name;
  let runs = List.init reps (fun _ -> capture_run ~name ~drive ()) in
  let (f0, i0, taken0) = List.hd runs in
  List.iter
    (fun (f, i, taken) ->
      if f.words <> f0.words || i.words <> i0.words || taken <> taken0 then
        failwith
          (Printf.sprintf "ckpt bench: %s is not run-to-run deterministic" name))
    runs;
  let walls side = List.map side runs in
  let wall_of pick =
    match walls pick with
    | [ a; b; c ] -> median3 a b c
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  Printf.printf " engine-full%!";
  let e_ckpts_f, full_cost = engine Config.Full in
  Printf.printf " engine-incr%!";
  let e_ckpts_i, incr_cost = engine Config.Incremental in
  print_newline ();
  {
    k_name = name;
    k_captures = taken0;
    k_full_words = f0.words;
    k_incr_words = i0.words;
    k_full_wall = wall_of (fun (f, _, _) -> f.wall);
    k_incr_wall = wall_of (fun (_, i, _) -> i.wall);
    k_full_ckpts = e_ckpts_f;
    k_incr_ckpts = e_ckpts_i;
    k_full_cost = full_cost;
    k_incr_cost = incr_cost;
  }

let measure_all () =
  Printf.printf "Measuring checkpoint capture (%d captures x %d reps)\n%!"
    captures_per_run reps;
  [
    measure_workload ~name:"kvstore" ~drive:drive_kv ~engine:engine_kv;
    measure_workload ~name:"splash-lu-c" ~drive:drive_splash ~engine:engine_splash;
  ]

let print_table rows =
  let t =
    Rcoe_util.Table.create
      ~headers:
        [ "workload"; "captures"; "full words"; "incr words"; "full wall";
          "incr wall"; "ckpt cost full"; "ckpt cost incr" ]
  in
  List.iter
    (fun r ->
      Rcoe_util.Table.add_row t
        [
          r.k_name; string_of_int r.k_captures;
          string_of_int r.k_full_words; string_of_int r.k_incr_words;
          Printf.sprintf "%.4fs" r.k_full_wall;
          Printf.sprintf "%.4fs" r.k_incr_wall;
          string_of_int r.k_full_cost; string_of_int r.k_incr_cost;
        ])
    rows;
  Rcoe_util.Table.print t;
  List.iter
    (fun r ->
      if r.k_incr_words >= r.k_full_words then
        Printf.eprintf
          "ckpt: WARNING: %s: incremental copied no fewer words than full\n"
          r.k_name;
      if r.k_incr_cost >= r.k_full_cost then
        Printf.eprintf
          "ckpt: WARNING: %s: incremental charged no fewer cycles than full\n"
          r.k_name)
    rows

let to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.String r.k_name);
             ("captures", Json.Int r.k_captures);
             ( "full",
               Json.Obj
                 [
                   ("words", Json.Int r.k_full_words);
                   ("wall_s", Json.Float r.k_full_wall);
                   ("cost_cycles", Json.Int r.k_full_cost);
                   ("engine_checkpoints", Json.Int r.k_full_ckpts);
                 ] );
             ( "incremental",
               Json.Obj
                 [
                   ("words", Json.Int r.k_incr_words);
                   ("wall_s", Json.Float r.k_incr_wall);
                   ("cost_cycles", Json.Int r.k_incr_cost);
                   ("engine_checkpoints", Json.Int r.k_incr_ckpts);
                 ] );
           ])
       rows)

let run () = print_table (measure_all ())
