open Rcoe_workloads

let cfg ?(records = 20) ?(operations = 50) ?(seed = 5) () =
  { Ycsb.records; operations; seed }

(* --- value integrity ---------------------------------------------------- *)

let test_value_crc_embedded () =
  let g = Ycsb.create (cfg ()) Ycsb.A in
  let v = Ycsb.value_for g ~key:7 ~version:3 in
  Alcotest.(check int) "width" Kvstore.vlen (Array.length v);
  Alcotest.(check int) "crc"
    (Rcoe_checksum.Crc32.words (Array.sub v 0 (Kvstore.vlen - 1)))
    v.(Kvstore.vlen - 1);
  Alcotest.(check int) "key embedded" 7 v.(0)

(* --- load phase ---------------------------------------------------------- *)

let test_load_phase_covers_all_records () =
  let g = Ycsb.create (cfg ~records:10 ()) Ycsb.C in
  let keys = ref [] in
  for _ = 1 to 10 do
    match Ycsb.next_request g with
    | Some req ->
        Alcotest.(check int) "put" Kvstore.op_put req.(2);
        keys := req.(3) :: !keys
    | None -> Alcotest.fail "load phase too short"
  done;
  Alcotest.(check bool) "load done" true (Ycsb.load_phase_done g);
  Alcotest.(check (list int)) "keys 0..9" (List.init 10 (fun i -> 9 - i)) !keys

(* --- mixes ---------------------------------------------------------------- *)

let drain_ops g n =
  let gets = ref 0 and puts = ref 0 and scans = ref 0 in
  let rec go remaining =
    if remaining > 0 then
      match Ycsb.next_request g with
      | Some req ->
          (if req.(2) = Kvstore.op_get then incr gets
           else if req.(2) = Kvstore.op_put then incr puts
           else incr scans);
          (* Answer immediately so in-flight never saturates. *)
          Ycsb.on_response g
            (Array.append
               [| Kvstore.resp_magic; req.(1); 0; req.(2) |]
               (Ycsb.value_for g ~key:req.(3) ~version:0));
          go (remaining - 1)
      | None -> ()
  in
  go n;
  (!gets, !puts, !scans)

let test_mix_c_read_only () =
  let g = Ycsb.create (cfg ~records:10 ~operations:100 ()) Ycsb.C in
  ignore (drain_ops g 10) (* load *);
  let gets, puts, scans = drain_ops g 100 in
  Alcotest.(check int) "all reads" 100 gets;
  Alcotest.(check int) "no writes" 0 puts;
  Alcotest.(check int) "no scans" 0 scans

let test_mix_a_half_and_half () =
  let g = Ycsb.create (cfg ~records:10 ~operations:400 ()) Ycsb.A in
  ignore (drain_ops g 10);
  let gets, puts, _ = drain_ops g 400 in
  Alcotest.(check bool)
    (Printf.sprintf "roughly 50/50 (%d/%d)" gets puts)
    true
    (gets > 150 && puts > 150)

let test_mix_e_mostly_scans () =
  let g = Ycsb.create (cfg ~records:10 ~operations:200 ()) Ycsb.E in
  ignore (drain_ops g 10);
  let _, puts, scans = drain_ops g 200 in
  Alcotest.(check bool) "scans dominate" true (scans > 150);
  Alcotest.(check bool) "some inserts" true (puts > 0)

let test_mix_f_rmw_pairs () =
  let g = Ycsb.create (cfg ~records:10 ~operations:50 ()) Ycsb.F in
  ignore (drain_ops g 10);
  (* F issues a GET; once answered, the paired PUT follows. *)
  (match Ycsb.next_request g with
  | Some req ->
      Alcotest.(check int) "read first" Kvstore.op_get req.(2);
      Ycsb.on_response g
        (Array.append
           [| Kvstore.resp_magic; req.(1); 0; req.(2) |]
           (Ycsb.value_for g ~key:req.(3) ~version:0));
      (match Ycsb.next_request g with
      | Some put ->
          Alcotest.(check int) "then write" Kvstore.op_put put.(2);
          Alcotest.(check int) "same key" req.(3) put.(3)
      | None -> Alcotest.fail "expected paired put")
  | None -> Alcotest.fail "expected get")

let test_mix_d_inserts_grow_keyspace () =
  let g = Ycsb.create (cfg ~records:10 ~operations:300 ()) Ycsb.D in
  ignore (drain_ops g 10);
  let _, puts, _ = drain_ops g 300 in
  Alcotest.(check bool) "inserts happened" true (puts > 0)

(* --- response validation --------------------------------------------------- *)

let start_run g ~records =
  (* Push through exactly the load phase, answering everything. *)
  ignore (drain_ops g records)

let test_response_corruption_detected () =
  let g = Ycsb.create (cfg ~records:5 ~operations:10 ()) Ycsb.C in
  start_run g ~records:5;
  match Ycsb.next_request g with
  | Some req ->
      let v = Ycsb.value_for g ~key:req.(3) ~version:0 in
      v.(2) <- v.(2) lxor 64;
      (* silent corruption *)
      Ycsb.on_response g
        (Array.append [| Kvstore.resp_magic; req.(1); 0; req.(2) |] v);
      Alcotest.(check int) "corruption counted" 1
        (Ycsb.counters g).Ycsb.corrupted
  | None -> Alcotest.fail "expected request"

let test_response_bad_magic () =
  let g = Ycsb.create (cfg ()) Ycsb.C in
  Ycsb.on_response g [| 0xBAD; 0; 0; 0 |];
  Alcotest.(check int) "client error" 1 (Ycsb.counters g).Ycsb.client_errors

let test_response_unknown_seq () =
  let g = Ycsb.create (cfg ()) Ycsb.C in
  Ycsb.on_response g [| Kvstore.resp_magic; 999; 0; 0 |];
  Alcotest.(check int) "client error" 1 (Ycsb.counters g).Ycsb.client_errors

let test_response_not_found_counted () =
  let g = Ycsb.create (cfg ~records:5 ()) Ycsb.C in
  start_run g ~records:5;
  match Ycsb.next_request g with
  | Some req ->
      Ycsb.on_response g [| Kvstore.resp_magic; req.(1); 1; req.(2) |];
      Alcotest.(check int) "not found" 1 (Ycsb.counters g).Ycsb.not_found
  | None -> Alcotest.fail "expected request"

let test_finished_condition () =
  let g = Ycsb.create (cfg ~records:3 ~operations:4 ()) Ycsb.C in
  Alcotest.(check bool) "not finished at start" false (Ycsb.finished g);
  ignore (drain_ops g 3);
  ignore (drain_ops g 4);
  Alcotest.(check bool) "finished" true (Ycsb.finished g);
  Alcotest.(check (option (array int))) "no more requests" None
    (Ycsb.next_request g)

let test_outstanding_tracking () =
  let g = Ycsb.create (cfg ~records:3 ()) Ycsb.C in
  (match Ycsb.next_request g with
  | Some req ->
      Alcotest.(check int) "one outstanding" 1 (Ycsb.outstanding g);
      Ycsb.on_response g
        (Array.append
           [| Kvstore.resp_magic; req.(1); 0; req.(2) |]
           (Ycsb.value_for g ~key:req.(3) ~version:0))
  | None -> Alcotest.fail "expected");
  Alcotest.(check int) "drained" 0 (Ycsb.outstanding g)

let qcheck_values_always_valid =
  QCheck.Test.make ~name:"generated values always pass the CRC check" ~count:300
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (key, version) ->
      let g = Ycsb.create (cfg ()) Ycsb.A in
      let v = Ycsb.value_for g ~key ~version in
      Rcoe_checksum.Crc32.words (Array.sub v 0 (Kvstore.vlen - 1))
      = v.(Kvstore.vlen - 1))

let suite =
  [
    Alcotest.test_case "value CRC embedded" `Quick test_value_crc_embedded;
    Alcotest.test_case "load phase covers records" `Quick
      test_load_phase_covers_all_records;
    Alcotest.test_case "mix C read-only" `Quick test_mix_c_read_only;
    Alcotest.test_case "mix A 50/50" `Quick test_mix_a_half_and_half;
    Alcotest.test_case "mix E mostly scans" `Quick test_mix_e_mostly_scans;
    Alcotest.test_case "mix F read-modify-write pairs" `Quick test_mix_f_rmw_pairs;
    Alcotest.test_case "mix D inserts" `Quick test_mix_d_inserts_grow_keyspace;
    Alcotest.test_case "response corruption detected" `Quick
      test_response_corruption_detected;
    Alcotest.test_case "response bad magic" `Quick test_response_bad_magic;
    Alcotest.test_case "response unknown seq" `Quick test_response_unknown_seq;
    Alcotest.test_case "response not-found" `Quick test_response_not_found_counted;
    Alcotest.test_case "finished condition" `Quick test_finished_condition;
    Alcotest.test_case "outstanding tracking" `Quick test_outstanding_tracking;
    QCheck_alcotest.to_alcotest qcheck_values_always_valid;
  ]
