open Rcoe_util
open Rcoe_kernel

type region = { r_base : int; r_words : int; r_name : string }

let kernel_regions (lay : Layout.t) =
  let per_replica =
    Array.to_list lay.Layout.partitions
    |> List.mapi (fun i (p : Layout.partition) ->
           {
             r_base = p.Layout.p_base;
             r_words = p.Layout.user_base - p.Layout.p_base;
             r_name = Printf.sprintf "kernel%d" i;
           })
  in
  per_replica
  @ [
      {
        r_base = lay.Layout.shared.Layout.s_base;
        r_words = lay.Layout.shared.Layout.s_words;
        r_name = "shared";
      };
    ]

let user_region (lay : Layout.t) ~rid =
  let p = lay.Layout.partitions.(rid) in
  {
    r_base = p.Layout.user_base;
    r_words = p.Layout.user_words;
    r_name = Printf.sprintf "user%d" rid;
  }

let all_replica_regions (lay : Layout.t) =
  kernel_regions lay
  @ List.init lay.Layout.nreplicas (fun rid -> user_region lay ~rid)

let dma_region (lay : Layout.t) =
  { r_base = lay.Layout.dma_base; r_words = lay.Layout.dma_words; r_name = "dma" }

let active_user_region (lay : Layout.t) ~rid ~used_words =
  let p = lay.Layout.partitions.(rid) in
  {
    r_base = p.Layout.user_base;
    r_words = max Layout.page_size (min used_words p.Layout.user_words);
    r_name = Printf.sprintf "user%d" rid;
  }

let x86_active_campaign lay ~used_words =
  kernel_regions lay
  @ [ active_user_region lay ~rid:0 ~used_words:(used_words 0); dma_region lay ]

let arm_active_campaign (lay : Layout.t) ~used_words =
  kernel_regions lay
  @ List.init lay.Layout.nreplicas (fun rid ->
        active_user_region lay ~rid ~used_words:(used_words rid))
  @ [ dma_region lay ]

let x86_campaign lay =
  kernel_regions lay @ [ user_region lay ~rid:0; dma_region lay ]

let arm_campaign lay = all_replica_regions lay @ [ dma_region lay ]

type t = {
  rng : Rng.t;
  pools : region array;
  total_words : int;
  mutable nflips : int;
  itrace : Rcoe_obs.Trace.t;
}

let create ?trace ~seed pools =
  if pools = [] then invalid_arg "Injector.create: no regions";
  let pools = Array.of_list pools in
  (* Flip addresses depend on the region *order* (a flip indexes the
     concatenated pools), so canonicalise it: a given (seed, region set)
     draws the same flip sequence however the caller built the list. *)
  Array.sort (fun a b -> compare a.r_base b.r_base) pools;
  let total_words = Array.fold_left (fun n r -> n + r.r_words) 0 pools in
  let itrace =
    match trace with Some tr -> tr | None -> Rcoe_obs.Trace.disabled ()
  in
  { rng = Rng.create seed; pools; total_words; nflips = 0; itrace }

let flip_one t mem =
  let w = Rng.int t.rng t.total_words in
  let rec locate i remaining =
    let r = t.pools.(i) in
    if remaining < r.r_words then (r.r_base + remaining, r.r_name)
    else locate (i + 1) (remaining - r.r_words)
  in
  let addr, name = locate 0 w in
  let bit = Rng.int t.rng 32 in
  Rcoe_machine.Mem.flip_bit mem ~addr ~bit;
  Rcoe_obs.Trace.injection t.itrace ~addr ~bit;
  t.nflips <- t.nflips + 1;
  (addr, bit, name)

let flips t = t.nflips

let reg_flip_hook ?trace ~seed ~only_rid ~armed ~count mem ~rid ~tid:_
    ~ctx_addr =
  if rid = only_rid && !armed then begin
    armed := false;
    incr count;
    let rng = Rng.create (seed + !count) in
    (* 16 integer registers + the instruction pointer. *)
    let word = Rng.int rng 17 in
    let off = if word = 16 then Context.ip_offset else Context.reg_offset word in
    let bit = Rng.int rng 32 in
    Rcoe_machine.Mem.flip_bit mem ~addr:(ctx_addr + off) ~bit;
    match trace with
    | Some tr -> Rcoe_obs.Trace.injection tr ~addr:(ctx_addr + off) ~bit
    | None -> ()
  end
