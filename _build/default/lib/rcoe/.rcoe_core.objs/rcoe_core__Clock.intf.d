lib/rcoe/clock.mli: Rcoe_machine
