type t =
  | R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

type f = F0 | F1 | F2 | F3 | F4 | F5 | F6 | F7

let count = 16
let fcount = 8

let index = function
  | R0 -> 0 | R1 -> 1 | R2 -> 2 | R3 -> 3
  | R4 -> 4 | R5 -> 5 | R6 -> 6 | R7 -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let of_index = function
  | 0 -> R0 | 1 -> R1 | 2 -> R2 | 3 -> R3
  | 4 -> R4 | 5 -> R5 | 6 -> R6 | 7 -> R7
  | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11
  | 12 -> R12 | 13 -> R13 | 14 -> R14 | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Reg.of_index: %d" n)

let findex = function
  | F0 -> 0 | F1 -> 1 | F2 -> 2 | F3 -> 3
  | F4 -> 4 | F5 -> 5 | F6 -> 6 | F7 -> 7

let f_of_index = function
  | 0 -> F0 | 1 -> F1 | 2 -> F2 | 3 -> F3
  | 4 -> F4 | 5 -> F5 | 6 -> F6 | 7 -> F7
  | n -> invalid_arg (Printf.sprintf "Reg.f_of_index: %d" n)

let to_string r = "r" ^ string_of_int (index r)
let f_to_string r = "f" ^ string_of_int (findex r)

let branch_counter = R9
let sp = R13
let lr = R14

let all =
  [ R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; R12; R13; R14; R15 ]

let equal (a : t) (b : t) = a = b
let fequal (a : f) (b : f) = a = b
