(** The per-replica microkernel.

    seL4-flavoured mechanisms: threads with contexts saved in kernel
    memory, a round-robin scheduler driven by *synchronized* preemption
    ticks (the replication engine decides when a tick is delivered, so
    all replicas switch threads at the same logical time), an address
    space backed by an in-memory page table, and a small syscall set.
    Device drivers are ordinary user threads; which physical pages their
    MMIO/DMA windows alias is decided per replica role by the replication
    engine through {!map_page}.

    The kernel implements only replica-local mechanisms. Everything
    cross-replica — signatures, barriers, voting, the FT_* syscalls,
    interrupt delivery — lives in the [rcoe] library, which drives this
    module. Policy callbacks ({!callbacks}) let the engine observe kernel
    state updates (for the signature) and answer [get_info] queries. *)

type thread_state =
  | T_ready
  | T_running
  | T_blocked_irq of int  (** device page id *)
  | T_blocked_join of int  (** tid *)
  | T_blocked_input  (** LC input-replication rendezvous *)
  | T_exited

type thread = {
  tid : int;
  mutable tstate : thread_state;
  ctx_addr : int;  (** Physical address of the saved context. *)
  entry : int;
}

type t

type callbacks = {
  cb_info : int -> int -> int;
      (** [cb_info rid key]: answers [Sys_get_info]. *)
  cb_kernel_update : int -> int array -> unit;
      (** [cb_kernel_update rid words]: a kernel state update to fold
          into the replica's signature (page-table writes, thread
          lifecycle events, scheduling decisions). *)
}

type syscall_result =
  | Sr_local  (** Handled here (thread may have blocked or exited). *)
  | Sr_ft of { num : int; args : int array }
      (** An FT_* synchronisation-point syscall for the engine. *)

type fault_disposition =
  | Fd_user_fault  (** Memory fault in user code; thread killed. *)
  | Fd_user_exception  (** Other user exception; thread killed. *)
  | Fd_kernel_abort of int
      (** Physical abort through a corrupted translation — the
          simulated counterpart of the paper's kernel data aborts. *)

val create :
  ?trace:Rcoe_obs.Trace.t ->
  ?backend:Rcoe_machine.Blockc.backend ->
  machine:Rcoe_machine.Machine.t ->
  rid:int ->
  core_id:int ->
  layout:Layout.t ->
  program:Rcoe_isa.Program.t ->
  callbacks:callbacks ->
  unit ->
  t
(** [trace] overrides the sink for this kernel's replica-scope trace
    events (syscall dispatch, preemptions, faults, bus stalls); it
    defaults to the machine's trace. The replication engine passes a
    per-replica child trace ({!Rcoe_obs.Trace.child}) so replicas can
    record events concurrently from separate domains. The kernel's core
    uses the machine's per-core bus lane
    ({!Rcoe_machine.Machine.bus_lane}).

    [backend] selects the execution backend {!step} dispatches to:
    the oracle interpreter ([Interp], default) or the block compiler
    ([Blocks]) — observably identical, cycle for cycle. The kernel also
    takes a private copy of the program's code array at creation, so
    self-modifying patches ({!patch_code}) stay replica-local. *)

val step : t -> Rcoe_machine.Core.step_result
(** Advance this kernel's core by one architectural cycle through the
    configured execution backend. Engines must call this instead of
    [Core.step] directly so backend selection applies uniformly
    (including catch-up replay). *)

val block_cache : t -> Rcoe_machine.Blockc.t option
(** The block-compiler cache, when the [Blocks] backend is active —
    diagnostic surface for tests and benches ({!Rcoe_machine.Blockc.stats}). *)

val patch_code : t -> addr:int -> Rcoe_isa.Instr.t -> unit
(** Overwrite one instruction in this kernel's private code image and
    invalidate the block cache for its page. Raises [Invalid_argument]
    out of code bounds. Guests reach this through the
    {!Syscall.sys_code_patch} syscall; checkpoint {!restore} and
    {!adopt_runtime_from} undo/adopt patches as part of their
    contract. *)

val rid : t -> int
val core : t -> Rcoe_machine.Core.t
val env : t -> Rcoe_machine.Core.env
val layout : t -> Layout.t
val partition : t -> Layout.partition
val program : t -> Rcoe_isa.Program.t
val output : t -> Buffer.t
(** Everything the replica wrote with [Sys_putchar]. *)

(* --- address space --------------------------------------------------- *)

val map_page : ?quiet:bool -> t -> vpn:int -> Rcoe_machine.Page_table.pte -> unit
(** Write a PTE. Unless [quiet], the update is reported through
    [cb_kernel_update] with the frame number expressed *relative to the
    replica's partition* (absolute frame numbers necessarily differ
    between replicas, but relative ones are identical for replicated
    execution, so they can be checksummed). [quiet] is for
    role-dependent mappings — device windows and primary promotion —
    which legitimately differ between replicas. *)

val map_range : t -> va:int -> words:int -> ppn0:int ->
  writable:bool -> dma:bool -> device:bool -> unit
(** Map consecutive pages starting at [va] to frames [ppn0], [ppn0+1]…
    [va] must be page-aligned. *)

val alloc_frame : t -> int
(** Bump-allocate a user frame; returns its physical page number.
    Raises [Failure] when the partition is exhausted. *)

val used_user_words : t -> int
(** Words of the user area handed out by the low-end frame allocator
    (data segment, stacks) — the part of the partition that actually
    holds live state, which is what fault-injection campaigns should
    target. *)

val alloc_frame_high : t -> int
(** Allocate a frame from the top of the partition. Used for
    role-dependent frames (MMIO aliases, DMA shadows) so that the number
    of low-end allocations — and hence the partition-relative frame
    number of every replicated allocation — stays identical across
    replicas. *)

val setup_address_space : t -> unit
(** Map and initialise the program's data segment and the scratch page.
    Stacks are mapped on demand by {!spawn}. *)

val dma_pages_mapped : t -> int list
(** Virtual page numbers currently mapped with the DMA mark — what the
    masking code must re-route when the primary is removed. *)

(* --- threads and scheduling ------------------------------------------ *)

val spawn : t -> entry:int -> arg:int -> int
(** Create a thread (maps its stack, initialises its context, enqueues
    it). Raises [Failure] past {!Layout.max_threads}. *)

val start : t -> unit
(** Load the first runnable thread onto the core. Call once after
    {!spawn}ing the initial thread. *)

val current_tid : t -> int
(** [-1] when idle. *)

val thread : t -> int -> thread

val preempt : ?after_save:(tid:int -> ctx_addr:int -> unit) -> t -> unit
(** Timer tick: round-robin to the next ready thread (no-op when none).
    [after_save] runs after the outgoing context has been written to
    memory and before the next thread is loaded — the window in which the
    paper's register fault injector flips a bit in the saved user state
    (Section V-C2). *)

val exit_current : t -> unit
(** Terminate the current thread (used for the bare-metal [Halt]). *)

val block_current : t -> thread_state -> unit
(** Save the current thread with the given blocked state and schedule
    the next ready thread (or go idle). *)

val unblock : t -> int -> unit
(** Make a blocked thread ready; if the core is idle, dispatch it. *)

val wake_irq_waiters : t -> dpn:int -> int
val wake_input_waiters : t -> int

val runnable : t -> bool
(** A thread is on the core or ready to run. *)

val all_exited : t -> bool

val live_thread_count : t -> int

(* --- syscalls and faults --------------------------------------------- *)

val handle_syscall : t -> int -> syscall_result
(** Dispatch a [Core.Ev_syscall]. Charges the syscall cost to the core.
    The syscall instruction has already retired; results go to [r0]. *)

val handle_fault : t -> Rcoe_machine.Core.fault -> fault_disposition
(** Kill the faulting thread and schedule away. *)

val last_fault : t -> (int * Rcoe_machine.Core.fault) option
(** The most recent (tid, fault) that killed a thread, if any. *)

(* --- user-memory access (kernel copyin/copyout) ---------------------- *)

exception User_mem_error of int
(** A user virtual address did not translate (argument of the failing
    va). *)

val read_user : t -> va:int -> int
val write_user : t -> va:int -> int -> unit
val read_user_block : t -> va:int -> len:int -> int array
val write_user_block : t -> va:int -> int array -> unit

val translate_mmio : t -> va:int -> (int * int) option
(** If [va] maps to a device page in this replica's address space,
    [(device page id, word offset)]. *)

type snapshot
(** A copy of this kernel's runtime bookkeeping (threads, scheduler
    queue, interrupt latches, allocator positions, console-output
    length, last fault) and the core's architectural state. Memory —
    contexts, page table, user frames — is not included: checkpointing
    engines snapshot the whole partition separately. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Restore the state captured by {!snapshot}. The caller must restore
    the partition memory to the matching point itself (the snapshot and
    the partition image form one consistent cut). Console output written
    after the snapshot is truncated away, any armed breakpoint is
    cleared, and the core's halted flag is restored — a replica halted
    after the capture comes back alive. *)

val adopt_runtime_from : t -> src:t -> unit
(** Re-integration support (paper Section IV-C): after the engine has
    copied the source replica's entire partition into this replica's
    partition (and rebased the page-table frame numbers), adopt the
    source kernel's runtime bookkeeping — threads, scheduler queue,
    interrupt latches, frame-allocator positions — and the source core's
    register state, so this replica resumes execution at exactly the
    source's position. *)
