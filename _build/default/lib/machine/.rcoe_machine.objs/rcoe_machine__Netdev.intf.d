lib/machine/netdev.mli: Device Mem
