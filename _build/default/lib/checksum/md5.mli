(** MD5 (RFC 1321), implemented from the specification.

    Used as the host-side reference for the register-fault experiment
    (paper Table VIII): the simulated `md5sum` workload computes digests on
    the simulated ISA and the experiment compares them against this
    implementation to classify silent corruptions.

    Not OCaml's [Digest] module: having our own keeps the word-level round
    functions available to the ISA code generator, which emits the same
    rounds as simulated instructions. *)

val string : string -> string
(** [string s] is the 16-byte binary digest of [s]. *)

val hex : string -> string
(** [hex s] is the 32-character lowercase hex digest of [s]. *)

val words : int array -> string
(** Digest of an array of machine words, each contributing its low 32 bits
    little-endian — matching the byte order the simulated workload uses. *)

(** Round schedule constants, exposed for the ISA code generator so that
    the simulated md5sum provably runs the same algorithm. *)

val k : int array
(** The 64 sine-derived constants, each in \[0, 2^32). *)

val s : int array
(** The 64 per-round left-rotation amounts. *)
