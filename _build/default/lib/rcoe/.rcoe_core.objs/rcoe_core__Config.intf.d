lib/rcoe/config.mli: Rcoe_machine
