(** A reusable (cyclic) synchronisation barrier for OCaml domains.

    [parties] participants call {!await}; every call blocks until all
    [parties] calls of the current cycle have arrived, then all are
    released together and the barrier resets for the next cycle. The
    release carries the usual mutex happens-before edge, so writes made
    by any participant before its [await] are visible to every
    participant after the matching release.

    This is the rendezvous primitive of the domain-parallel replica
    engine ([Rcoe_core.System] with [Config.engine = Parallel]): the
    orchestrating domain and one worker domain per replica meet here at
    the start and end of every parallel execution window. *)

type t

val create : int -> t
(** [create parties] makes a barrier for [parties] participants.
    Raises [Invalid_argument] if [parties < 1]. *)

val parties : t -> int

val await : t -> unit
(** Block until all parties of the current cycle have called [await],
    then continue. The barrier is cyclic: it resets automatically and
    may be awaited again. *)
