lib/isa/branch_count.mli: Instr
