lib/workloads/datarace.ml: Asm Instr Rcoe_isa Rcoe_kernel Reg Wl
