(** The redundant co-execution engine.

    Owns the machine, the per-replica kernels, and the synchronisation
    protocol of Section III:

    - Interrupts (the preemption tick and device IRQs) are received
      conceptually by the primary; the engine raises IPIs to every live
      replica, each of which joins the round at its next kernel entry and
      publishes its logical time in the shared region.
    - Once all have published, the leading replica is elected by logical
      time. LC followers resume until their event count reaches the
      leader's; CC followers additionally catch up to the leader's exact
      instruction position using a global breakpoint (paying a debug
      exception per hit, doubled on Arm, plus VM exits when virtualised —
      the costs Sections III-D/F analyse). A replica stopped at a
      rep-string instruction cannot publish a precise position; it first
      steps past it (paying a guest-page-walk cost in a VM).
    - At the barrier the replicas vote on their three-word signatures.
      Mismatch in a DMR (or unmasked) system halts it; a masked TMR
      system runs the Listing-5 vote and downgrades to DMR, re-electing
      a primary and patching DMA page mappings when the primary was the
      faulty one (Section IV).
    - [FT_*] syscalls and (at sync level S) every syscall are rendezvous
      points: all replicas meet at the same event count, the operation
      executes once against the device with its data folded into every
      signature, and a vote runs.

    A replica that hangs, diverges, or crashes fails to join within
    [barrier_timeout] and the round times out — the paper's second
    detection mechanism. *)

type halt_reason =
  | H_mismatch  (** Signature divergence detected; no masking possible. *)
  | H_no_consensus  (** Listing-5 vote failed to agree on the faulter. *)
  | H_timeout  (** Barrier timeout: straggling or hung replica. *)
  | H_kernel_exception of string
      (** Uncontrolled kernel abort (x86 without exception barriers). *)
  | H_masking_blocked
      (** Faulty primary during device I/O: downgrade is unsafe. *)

val halt_reason_to_string : halt_reason -> string

type event_kind =
  | E_user_fault of int  (** rid *)
  | E_kernel_abort of int
  | E_mismatch
  | E_timeout
  | E_downgrade of int  (** removed rid *)
  | E_reintegrate of int  (** re-admitted rid *)
  | E_rollback of int
      (** Rollback recovery: cycle of the checkpoint rewound to. *)
  | E_ingress_drop of int
      (** Ingress-checksum mismatch: the request sequence id parsed from
          the dropped frame ([-1] when unparseable). *)

type stats = {
  mutable ticks_delivered : int;
  mutable rounds : int;
  mutable votes : int;
  mutable ipis : int;
  mutable bp_fires : int;
  mutable ft_rounds : int;
  mutable rendezvous : int;
}

type t

val create : config:Config.t -> program:Rcoe_isa.Program.t -> t
(** Validates the configuration and program compatibility (CC forbids
    exclusives; compiler-assisted profiles require a branch-counted
    program), runs the static analyzer ({!Rcoe_isa.Lint.analyze}),
    builds the machine, partitions memory, sets up one kernel per
    replica with role-dependent device mappings, and spawns the
    program's main thread everywhere. Networked configurations
    additionally run the footprint analyzer ({!Eligibility.check});
    its verdict decides whether [with_net] may use the parallel engine.
    Raises [Invalid_argument] on an invalid configuration — including,
    when {!Config.strict_lint} is set, a lint-rejected program or a racy
    ({!Rcoe_isa.Lint.CC_required}) program under LC coupling, and, for
    [engine = Parallel] with [with_net], a program whose footprint the
    analyzer could not prove free of raw device-ring accesses (the
    message carries the per-instruction provenance). *)

val lint_report : t -> Rcoe_isa.Lint.report
(** The static-analysis report computed at [create] time. *)

val lint_warnings : t -> string list
(** Warning-severity lint messages (data races, unresolvable spawns) —
    what an LC run should surface before silently risking divergence. *)

val eligibility : t -> Eligibility.t option
(** The footprint analyzer's parallel-eligibility report, computed at
    [create] time for every networked configuration regardless of
    engine ([None] when [with_net] is off). An [Eligible] verdict is
    what admitted a networked configuration to the parallel engine; an
    [Ineligible] one carries instruction-address provenance for each
    device-region access the analysis could not rule out. *)

val config : t -> Config.t
val machine : t -> Rcoe_machine.Machine.t
val layout : t -> Rcoe_kernel.Layout.t
val netdev : t -> Rcoe_machine.Netdev.t option
val kernel : t -> int -> Rcoe_kernel.Kernel.t
val primary : t -> int
val live : t -> int list
val now : t -> int

val stats : t -> stats
(** A snapshot view over the metrics registry (the former hand-
    maintained record); fresh on each call. *)

val metrics : t -> Rcoe_obs.Metrics.t
(** The full counter/gauge/histogram registry: everything in {!stats}
    plus catch-up distances, barrier waits, VM exits, detection
    latencies, … — the per-phase quantities of paper Tables II/V/X. *)

val trace : t -> Rcoe_obs.Trace.t
(** The structured execution trace. Disabled (and free) unless
    {!Config.trace} was set; export with {!Rcoe_obs.Export}. *)

val run : ?stop:(t -> bool) -> t -> max_cycles:int -> unit
(** Advance the simulation until the program finishes on every live
    replica, the system halts, [max_cycles] elapse (counted from this
    call), or [stop] returns true (checked every 128 cycles).

    Dispatches on {!Config.engine}:

    - [Sequential] steps every replica on the calling domain, one
      simulated cycle at a time — the reference semantics.
    - [Parallel] runs each live replica's between-sync-point stretch on
      its own host domain ([Domain.t]) and replays the round/vote logic
      at a window boundary on the calling domain. The contract is
      {b bit-for-bit determinism}: final cycle, outputs, votes, halt
      reasons, metrics, event log, and cycle-stamped trace events are
      identical to [Sequential] for any eligible configuration (see
      {!Config.parallel_ineligibility}). The [test/test_engine_par.ml]
      suite enforces this across LC/CC x DMR/TMR, fault injection,
      rollback recovery and masking.

    Checkpoint capture, rollback, and fault injection between [run]
    calls need no extra care under [Parallel]: worker domains exist
    only inside a call to [run], and within one they are quiescent
    (parked at a barrier) whenever round logic — including
    {!Checkpoint} capture/restore — executes. *)

val replay_drain : t -> unit
(** Under {!Config.Replay} detection, close the accumulating chunk and
    block until every in-flight chunk's verdict has been harvested —
    the pipeline is empty on return. Serving harnesses call this once
    the client is done: the guest service loops forever, so [run]'s
    terminal drain never fires and up to [replay_queue_depth - 1]
    chunks would otherwise end the session unverified. A mismatch
    found here recovers (or halts) through the normal rollback path.
    No-op under [Lockstep] detection. *)

val finished : t -> bool
val halted : t -> halt_reason option

val downgrades : t -> (int * int * int) list
(** [(cycle, removed_rid, downgrade_cycles)] — most recent first. *)

val request_reintegration : t -> rid:int -> (unit, string) result
(** Extension (paper Section IV-C): schedule a previously removed
    replica to be re-admitted at the end of the next synchronisation
    round, by copying a healthy non-primary replica's full partition
    (kernel and user state), rebasing its page table, and adopting its
    execution state — upgrading DMR back to TMR without a reboot. *)

val reintegrations : t -> (int * int) list
(** [(cycle, rid)] re-admissions, most recent first. *)

val rollbacks : t -> (int * int) list
(** [(detected_at, checkpoint_cycle)] rollback recoveries, most recent
    first. Non-empty iff the run recovered from at least one detection
    that would otherwise have halted it. Enabled by
    {!Config.checkpoint_every} > 0: after every successfully voted
    round (at the configured interval) the engine snapshots all
    replicated state into a bounded ring ({!Checkpoint}); a DMR
    signature mismatch, a failed masking vote, or a blocked downgrade
    then rewinds to the newest verified snapshot and re-executes,
    with a [max_rollbacks] budget and exponential escalation to older
    snapshots, so persistent faults still fail-stop. *)

val checkpoints_taken : t -> int
(** Verified checkpoints captured over the run. *)

val events : t -> (int * event_kind) list
(** Notable events with their cycle, most recent first. Bounded: long
    fault-injection campaigns keep only the newest ~2048 entries. *)

val output : t -> int -> string
(** Replica [rid]'s console output. *)

val replica_done : t -> int -> bool

val tick_count : t -> int

val set_after_save_hook :
  t -> (rid:int -> tid:int -> ctx_addr:int -> unit) option -> unit
(** Hook running after a preempted thread's context is saved — the
    register fault injector's window. *)

val sig_base : t -> int -> int
(** Physical address of replica [rid]'s signature accumulator (for the
    fault injector and tests). *)

val replica_state_name : t -> int -> string
(** Diagnostic: the replica's engine state plus the global phase. *)
