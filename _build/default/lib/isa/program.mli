(** Assembled programs.

    A program is a Harvard-layout image: instructions live in [code]
    (addressed by index; not reachable through data loads/stores, so
    memory fault injection cannot corrupt user text — a documented
    deviation from the paper), while initialised data and BSS blocks are
    laid out from [data_base] upward in the program's virtual address
    space.

    Floating-point values stored to memory are packed as IEEE-754 single
    precision bits in the low 32 bits of a word ([float_to_word] /
    [word_to_float]); FP registers hold doubles internally. *)

type data_block = {
  block_label : string;
  block_addr : int;  (** Virtual word address of the first element. *)
  block_init : int array;  (** Initial contents ([0]s for BSS). *)
}

type t = {
  name : string;
  code : Instr.t array;  (** All branch targets are [Abs]; no [La] remains. *)
  data : data_block list;
  data_words : int;  (** Total words from [data_base] used by data+BSS. *)
  entry : int;
  code_labels : (string * int) list;
  branch_counted : bool;
      (** Whether the compiler-assisted branch-counting pass ran. *)
}

val data_base : int
(** Virtual word address where program data starts (64 Ki words). *)

val label_addr : t -> string -> int
(** Code address of a label. Raises [Not_found]. *)

val data_addr : t -> string -> int
(** Virtual address of a data block. Raises [Not_found]. *)

val data_image : t -> int array
(** The initial data segment, [data_words] long, relative to
    [data_base]. *)

val float_to_word : float -> int
val word_to_float : int -> float

val disassemble : t -> string
(** Multi-line listing with addresses and label annotations. *)

val instruction_count : t -> int
