examples/fault_masking_demo.mli:
