lib/machine/machine.ml: Arch Array Bus Core Device Mem Rcoe_util Rng
