type t = {
  parties : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable arrived : int;
  mutable generation : int;
}

let create parties =
  if parties < 1 then invalid_arg "Barrier.create: parties must be >= 1";
  {
    parties;
    mutex = Mutex.create ();
    cond = Condition.create ();
    arrived = 0;
    generation = 0;
  }

let parties t = t.parties

let await t =
  Mutex.lock t.mutex;
  let gen = t.generation in
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    (* Last arriver releases the cohort and resets for the next cycle. *)
    t.arrived <- 0;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond
  end
  else
    while t.generation = gen do
      Condition.wait t.cond t.mutex
    done;
  Mutex.unlock t.mutex
