test/main.mli:
