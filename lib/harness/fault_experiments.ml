open Rcoe_core
open Rcoe_workloads
open Rcoe_faults
open Rcoe_util

let x86 = Rcoe_machine.Arch.X86
let arm = Rcoe_machine.Arch.Arm

let header = Report.header
(* ----------------------------------------------------------- Table VII -- *)

type t7_config = {
  t7_label : string;
  t7_mode : Config.mode;
  t7_n : int;
  t7_trace : bool;
}

let t7_configs =
  [
    { t7_label = "Base"; t7_mode = Config.Base; t7_n = 1; t7_trace = true };
    { t7_label = "LC-D"; t7_mode = Config.LC; t7_n = 2; t7_trace = true };
    { t7_label = "LC-T"; t7_mode = Config.LC; t7_n = 3; t7_trace = true };
    { t7_label = "CC-D"; t7_mode = Config.CC; t7_n = 2; t7_trace = true };
    { t7_label = "CC-T"; t7_mode = Config.CC; t7_n = 3; t7_trace = true };
    { t7_label = "LC-D-N"; t7_mode = Config.LC; t7_n = 2; t7_trace = false };
    { t7_label = "LC-T-N"; t7_mode = Config.LC; t7_n = 3; t7_trace = false };
  ]

(* One fault-injection trial: run the KV workload while flipping memory
   bits at a fixed cadence; classify what the trial produced. *)
let kv_fault_trial ~arch ~mode ~n ~trace ~barriers ~campaign ~seed
    ~flip_interval =
  let config =
    {
      (Runner.config_for ~mode ~nreplicas:n ~arch ~with_net:true ~seed ())
      with
      Config.trace_output = trace;
      exception_barriers = barriers;
      (* Detection must win the race against the client's patience: the
         paper's barrier timeout is milliseconds while clients wait much
         longer before declaring the server dead. *)
      barrier_timeout = 200_000;
    }
  in
  let injector = ref None in
  let next_flip = ref flip_interval in
  let flips = ref 0 in
  let inject sys =
    let inj =
      match !injector with
      | Some i -> i
      | None ->
          let used rid = Rcoe_kernel.Kernel.used_user_words (System.kernel sys rid) in
          let i =
            Injector.create ~seed:(seed * 7919)
              (campaign (System.layout sys) ~used_words:used)
          in
          injector := Some i;
          i
    in
    if System.now sys >= !next_flip then begin
      next_flip := System.now sys + flip_interval;
      ignore (Injector.flip_one inj (System.machine sys).Rcoe_machine.Machine.mem);
      incr flips
    end
  in
  let res =
    Kv_run.run ~config ~workload:Ycsb.A ~records:100 ~operations:120
      ~gen_seed:(seed + 5000) ~stall_limit:700_000 ~max_cycles:2_500_000
      ~inject ~stop_on_error:true ()
  in
  let c = res.Kv_run.counters in
  let outcome =
    Outcome.classify ~sys:res.Kv_run.sys
      ~client_corrupt:(c.Ycsb.corrupted > 0)
      ~client_error:(c.Ycsb.client_errors > 0 || res.Kv_run.stalled)
  in
  (outcome, !flips)

let print_tally tbl label tally total_flips =
  let open Outcome in
  Table.add_row tbl
    ([ label; string_of_int total_flips ]
    @ List.map
        (fun o -> string_of_int (tally_get tally o))
        [
          Ycsb_corruption; Ycsb_error; User_mem_fault; User_other_fault;
          Kernel_exception; Barrier_timeout; Signature_mismatch;
        ]
    @ [ string_of_int (tally_uncontrolled tally) ])

let one_trial_for_debug ~mode ~n ~seed =
  kv_fault_trial ~arch:x86 ~mode ~n ~trace:true ~barriers:false
    ~campaign:Injector.x86_active_campaign ~seed ~flip_interval:3_000

let table7 ?(trials = 40) ~variant () =
  let arch, barriers, campaign, vname =
    match variant with
    | `X86 ->
        (x86, false, Injector.x86_active_campaign, "x86 (no exception barriers)")
    | `Arm ->
        (arm, true, Injector.arm_active_campaign, "Arm (with exception barriers)")
  in
  header
    (Printf.sprintf "Table VII (%s): memory fault injection on the KV server"
       vname)
    "base: faults escape as corruption/errors/crashes; LC/CC detect all \
     but ~1-1.5% (timeouts + signature mismatches); kernel aborts are \
     uncontrolled kernel exceptions on x86 but caught by barriers on \
     Arm; the -N rows (no output tracing) fail at 10-40x the rate";
  let tbl =
    Table.create
      ~headers:
        [
          "config"; "flips"; "ycsb-corru"; "ycsb-err"; "user-mem"; "user-oth";
          "kern-exc"; "timeout"; "mismatch"; "UNCONTROLLED";
        ]
  in
  List.iter
    (fun tc ->
      if not (variant = `X86 && not tc.t7_trace) then begin
        (* The paper shows the -N rows for the Arm campaign. *)
        let tally = Outcome.tally_create () in
        let total_flips = ref 0 in
        for seed = 1 to trials do
          let outcome, flips =
            kv_fault_trial ~arch ~mode:tc.t7_mode ~n:tc.t7_n ~trace:tc.t7_trace
              ~barriers ~campaign ~seed:(seed * 31) ~flip_interval:3_000
          in
          Outcome.tally_add tally outcome;
          total_flips := !total_flips + flips
        done;
        print_tally tbl tc.t7_label tally !total_flips
      end)
    t7_configs;
  Table.print tbl;
  Printf.printf
    "(UNCONTROLLED counts trials whose error escaped: corruption, client \
     errors, crashes, kernel exceptions; detected and error-free trials \
     are controlled)\n%!"

(* ---------------------------------------------------------- Table VIII -- *)

let table8 ?(trials = 60) () =
  header "Table VIII: register fault injection on md5sum (VM, x86)"
    "base: 100% uncontrolled (about one third crashes, two thirds silent \
     digest corruptions); CC-D: 100% controlled (~96% signature \
     mismatches, ~4% timeouts), zero corrupt outputs escape";
  let tbl =
    Table.create
      ~headers:
        [ "config"; "injected"; "crashes"; "corruptions"; "timeouts";
          "mismatches"; "uncontrolled"; "controlled" ]
  in
  let run_campaign label mode n =
    let crashes = ref 0
    and corruptions = ref 0
    and timeouts = ref 0
    and mismatches = ref 0
    and injected = ref 0 in
    for seed = 1 to trials do
      let config =
        {
          (Runner.config_for ~mode ~nreplicas:n ~arch:x86 ~vm:true
             ~seed:(seed * 17) ())
          with
          Config.barrier_timeout = 600_000;
        }
      in
      let program =
        Md5sum.program ~message_words:96 ~iters:40 ~seed:(seed * 3)
          ~branch_count:false ()
      in
      let sys = System.create ~config ~program in
      let armed = ref false and count = ref 0 in
      System.set_after_save_hook sys
        (Some
           (Injector.reg_flip_hook ~seed:(seed * 101) ~only_rid:0 ~armed ~count
              (System.machine sys).Rcoe_machine.Machine.mem));
      (* Arm the injector before every tick until the trial resolves. *)
      let resolved = ref false in
      while not !resolved do
        armed := true;
        System.run sys ~max_cycles:60_000;
        let out = System.output sys 0 in
        let crashed =
          List.exists
            (fun (_, k) -> match k with System.E_user_fault _ -> true | _ -> false)
            (System.events sys)
        in
        match System.halted sys with
        | Some System.H_timeout ->
            incr timeouts;
            resolved := true
        | Some (System.H_mismatch | System.H_no_consensus | System.H_masking_blocked) ->
            incr mismatches;
            resolved := true
        | Some (System.H_kernel_exception _) ->
            incr crashes;
            resolved := true
        | None ->
            if String.contains out 'X' then begin
              incr corruptions;
              resolved := true
            end
            else if crashed && n = 1 then begin
              (* Unreplicated: a dead thread is a crash. Replicated: the
                 dead replica leaves the others to time the round out, so
                 keep running until the detector fires. *)
              incr crashes;
              resolved := true
            end
            else if System.finished sys then resolved := true
      done;
      injected := !injected + !count
    done;
    Table.add_row tbl
      [
        label;
        string_of_int !injected;
        string_of_int !crashes;
        string_of_int !corruptions;
        string_of_int !timeouts;
        string_of_int !mismatches;
        string_of_int (!crashes + !corruptions);
        string_of_int (!timeouts + !mismatches);
      ]
  in
  run_campaign "Base (VM)" Config.Base 1;
  run_campaign "CC-D (VM)" Config.CC 2;
  Table.print tbl

(* ------------------------------------------------------------ Table IX -- *)

let table9 ?(trials = 50) () =
  header "Table IX: overclocking (correlated fault bursts) on Arm"
    "user-mode errors dominate the unprotected system; LC detects all \
     but ~2.5% (mostly barrier timeouts); occasional reboots and wedged \
     interrupts remain externally visible";
  let tbl =
    Table.create
      ~headers:
        [
          "config"; "user-flt"; "ycsb-corru"; "ycsb-err"; "reboot"; "timeout";
          "mismatch"; "uncontrolled";
        ]
  in
  let run_campaign label mode n =
    let tally = Outcome.tally_create () in
    for seed = 1 to trials do
      let config =
        {
          (Runner.config_for ~mode ~nreplicas:n ~arch:arm ~with_net:true
             ~seed:(seed * 23) ())
          with
          Config.exception_barriers = true;
          barrier_timeout = 200_000;
        }
      in
      let oc = ref None in
      let next_burst = ref 30_000 in
      let rebooted = ref false in
      let reg_target = ref None in
      let hook_installed = ref false in
      let inject sys =
        if not !hook_installed then begin
          hook_installed := true;
          (* Register corruption: flip a bit in the saved context of the
             targeted replica at its next preemption. *)
          let rng = Rcoe_util.Rng.create (seed * 4099) in
          System.set_after_save_hook sys
            (Some
               (fun ~rid ~tid:_ ~ctx_addr ->
                 match !reg_target with
                 | Some r when r = rid ->
                     reg_target := None;
                     let word = Rcoe_util.Rng.int rng 17 in
                     let off =
                       if word = 16 then Rcoe_kernel.Context.ip_offset
                       else Rcoe_kernel.Context.reg_offset word
                     in
                     Rcoe_machine.Mem.flip_bit
                       (System.machine sys).Rcoe_machine.Machine.mem
                       ~addr:(ctx_addr + off)
                       ~bit:(Rcoe_util.Rng.int rng 32)
                 | _ -> ()))
        end;
        let o =
          match !oc with
          | Some o -> o
          | None ->
              let used rid =
                Rcoe_kernel.Kernel.used_user_words (System.kernel sys rid)
              in
              let o =
                Overclock.create ~active_user:used ~seed:(seed * 577)
                  (System.layout sys)
              in
              oc := Some o;
              o
        in
        if (not !rebooted) && System.now sys >= !next_burst then begin
          next_burst := System.now sys + 18_000;
          match Overclock.step o (System.machine sys).Rcoe_machine.Machine.mem with
          | Overclock.Burst _ -> ()
          | Overclock.Reg_burst rid -> reg_target := Some rid
          | Overclock.Reboot ->
              rebooted := true;
              Array.iter
                (fun c -> c.Rcoe_machine.Core.halted <- true)
                (System.machine sys).Rcoe_machine.Machine.cores
          | Overclock.Irq_loss -> (
              match System.netdev sys with
              | Some nd -> Rcoe_machine.Netdev.set_wedged nd true
              | None -> ())
        end
      in
      let res =
        Kv_run.run ~config ~workload:Ycsb.A ~records:24 ~operations:60
          ~gen_seed:(seed + 9000) ~stall_limit:500_000 ~max_cycles:2_500_000
          ~inject ~stop_on_error:true ()
      in
      let c = res.Kv_run.counters in
      let outcome =
        if !rebooted then Outcome.System_reboot
        else
          Outcome.classify ~sys:res.Kv_run.sys
            ~client_corrupt:(c.Ycsb.corrupted > 0)
            ~client_error:(c.Ycsb.client_errors > 0 || res.Kv_run.stalled)
      in
      Outcome.tally_add tally outcome
    done;
    let open Outcome in
    Table.add_row tbl
      [
        label;
        string_of_int
          (tally_get tally User_mem_fault + tally_get tally User_other_fault);
        string_of_int (tally_get tally Ycsb_corruption);
        string_of_int (tally_get tally Ycsb_error);
        string_of_int (tally_get tally System_reboot);
        string_of_int (tally_get tally Barrier_timeout);
        string_of_int (tally_get tally Signature_mismatch);
        string_of_int (tally_uncontrolled tally);
      ]
  in
  run_campaign "Base" Config.Base 1;
  run_campaign "LC-D" Config.LC 2;
  run_campaign "LC-T" Config.LC 3;
  Table.print tbl

(* ----------------------------------------------- detection latency -- *)

let detection_latency ?(runs = 5) () =
  header "Detection latency vs tick interval and sync level"
    "latency ~ tick interval at level A (detected at the next \
     synchronisation); roughly the inter-syscall gap at level S (every \
     syscall votes) - the paper's tunable performance-safety trade-off";
  let tbl =
    Table.create
      ~headers:[ "tick interval"; "level"; "mean latency (cycles)"; "max" ]
  in
  (* A compute loop with a syscall every ~600 cycles. *)
  let program =
    let a = Rcoe_isa.Asm.create "latency" in
    let open Rcoe_isa in
    Asm.label a "main";
    Asm.for_up a Reg.R4 ~start:0 ~stop:(Instr.Imm 1_000_000) (fun () ->
        Asm.remi a Reg.R5 Reg.R4 199;
        Asm.if_ a Instr.Eq Reg.R5 (Instr.Imm 0) (fun () ->
            Asm.movi a Reg.R0 46;
            Asm.syscall a Rcoe_kernel.Syscall.sys_putchar));
    Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
    Asm.assemble ~entry:"main" a
  in
  List.iter
    (fun tick_interval ->
      List.iter
        (fun (lname, level) ->
          let lats = ref [] in
          for seed = 1 to runs do
            let config =
              Runner.config_for ~mode:Config.LC ~nreplicas:2 ~arch:x86
                ~sync_level:level ~tick_interval ~seed:(seed * 41) ()
            in
            let sys = System.create ~config ~program in
            let warm = 30_000 + (seed * 1_000) in
            System.run sys ~max_cycles:warm;
            let injected_at = System.now sys in
            let addr = System.sig_base sys 1 + 1 and bit = seed mod 30 in
            Rcoe_machine.Mem.flip_bit
              (System.machine sys).Rcoe_machine.Machine.mem ~addr ~bit;
            (* Mark the injection so the engine's detection-latency
               histogram measures the same interval we compute here. *)
            Rcoe_obs.Trace.injection (System.trace sys) ~addr ~bit;
            System.run sys ~max_cycles:3_000_000;
            match System.halted sys with
            | Some System.H_mismatch ->
                lats := float_of_int (System.now sys - injected_at) :: !lats
            | _ -> ()
          done;
          match !lats with
          | [] -> Table.add_row tbl [ string_of_int tick_interval; lname; "n/a"; "" ]
          | ls ->
              Table.add_row tbl
                [
                  string_of_int tick_interval;
                  lname;
                  Printf.sprintf "%.0f" (Rcoe_util.Stats.mean ls);
                  Printf.sprintf "%.0f"
                    (List.fold_left Float.max 0.0 ls);
                ])
        [ ("A", Config.Sync_args); ("S", Config.Sync_vote) ])
    [ 5_000; 20_000; 50_000; 100_000 ];
  Table.print tbl

(* ----------------------------------------------- recovery campaign -- *)

(* One md5sum trial on a CC-D system: run to a warm point, then corrupt
   one replica's signature accumulator (immediately detectable at the
   next vote). [`Transient] flips once; [`Persistent] re-flips after
   every rollback, modelling a stuck-at fault the recovery cannot outrun.
   Without checkpointing every such detection halts the system. *)
let recovery_trial ?(exec_backend = Config.Interp) ~checkpointing ~fault ~seed
    () =
  let config =
    {
      (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:x86
         ~seed:(seed * 17) ())
      with
      Config.barrier_timeout = 600_000;
      checkpoint_every = (if checkpointing then 2 else 0);
      checkpoint_depth = 3;
      max_rollbacks = 8;
      exec_backend;
    }
  in
  let program =
    Md5sum.program ~message_words:96 ~iters:12 ~seed:(seed * 3)
      ~branch_count:false ()
  in
  let sys = System.create ~config ~program in
  (* Warm long enough for the checkpoint ring to fill, so the
     persistent case demonstrates the whole escalation chain (retry
     newest -> drop -> older) before the budget fail-stops it. *)
  System.run sys ~max_cycles:150_000;
  let mem = (System.machine sys).Rcoe_machine.Machine.mem in
  let flip () =
    let addr = System.sig_base sys 1 + 1 and bit = seed mod 30 in
    Rcoe_machine.Mem.flip_bit mem ~addr ~bit;
    Rcoe_obs.Trace.injection (System.trace sys) ~addr ~bit
  in
  flip ();
  (* A persistent fault must re-assert before the system can take a
     fresh (clean) checkpoint, or each re-assertion looks like a new
     transient; poll in sub-round windows for it. *)
  let window, budget =
    match fault with `Transient -> (100_000, ref 200) | `Persistent -> (10_000, ref 600)
  in
  let rollbacks_seen = ref (List.length (System.rollbacks sys)) in
  while
    (not (System.finished sys)) && System.halted sys = None && !budget > 0
  do
    decr budget;
    System.run sys ~max_cycles:window;
    (* A persistent fault re-asserts itself after every recovery: the
       rollback restored the accumulator, so corrupt it again. *)
    let rb = List.length (System.rollbacks sys) in
    if fault = `Persistent && rb > !rollbacks_seen then begin
      rollbacks_seen := rb;
      if System.halted sys = None && not (System.finished sys) then flip ()
    end
  done;
  let out = System.output sys 0 in
  let outcome =
    Outcome.classify ~sys ~client_corrupt:(String.contains out 'X')
      ~client_error:(not (System.finished sys) && System.halted sys = None)
  in
  let latencies =
    match Rcoe_obs.Metrics.find_histogram (System.metrics sys)
            "recover.latency_cycles"
    with
    | Some h -> Rcoe_obs.Metrics.samples h
    | None -> []
  in
  (outcome, List.length (System.rollbacks sys),
   System.checkpoints_taken sys, latencies)

(* The same signature-corruption campaign on an unreplicated primary
   under asynchronous replay detection ([Config.Replay]): detection is
   a checker's end-of-chunk signature disagreement rather than a
   lockstep vote, and recovery rolls back to the mismatching chunk's
   pinned start checkpoint. A transient must end [Recovered] with the
   fault-free reference output — on both execution backends; a
   persistent fault re-asserts after the rollback, and the repeat
   verdict against the same chunk fail-stops: replay re-executed the
   chunk from a clean snapshot and it *still* mismatched, so the
   fault is deterministic and retrying cannot help. *)
let replay_recovery_trial ?(exec_backend = Config.Interp) ~fault ~seed () =
  let config =
    {
      (Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:x86
         ~seed:(seed * 17) ())
      with
      Config.detection = Config.Replay;
      replay_chunk_ticks = 2;
      checkpoint_depth = 3;
      max_rollbacks = 8;
      exec_backend;
    }
  in
  let program =
    Md5sum.program ~message_words:96 ~iters:12 ~seed:(seed * 3)
      ~branch_count:false ()
  in
  (* Fault-free reference output: recovery must reproduce it exactly. *)
  let reference =
    let sys =
      System.create
        ~config:{ config with Config.detection = Config.Lockstep } ~program
    in
    System.run sys ~max_cycles:10_000_000;
    System.output sys 0
  in
  let sys = System.create ~config ~program in
  System.run sys ~max_cycles:150_000;
  let mem = (System.machine sys).Rcoe_machine.Machine.mem in
  let flip () =
    let addr = System.sig_base sys 0 + 1 and bit = seed mod 30 in
    Rcoe_machine.Mem.flip_bit mem ~addr ~bit;
    Rcoe_obs.Trace.injection (System.trace sys) ~addr ~bit
  in
  flip ();
  let window, budget =
    match fault with
    | `Transient -> (100_000, ref 200)
    | `Persistent -> (10_000, ref 600)
  in
  let rollbacks_seen = ref (List.length (System.rollbacks sys)) in
  while
    (not (System.finished sys)) && System.halted sys = None && !budget > 0
  do
    decr budget;
    System.run sys ~max_cycles:window;
    let rb = List.length (System.rollbacks sys) in
    if fault = `Persistent && rb > !rollbacks_seen then begin
      rollbacks_seen := rb;
      if System.halted sys = None && not (System.finished sys) then flip ()
    end
  done;
  let out = System.output sys 0 in
  let outcome =
    Outcome.classify ~sys
      ~client_corrupt:(System.finished sys && out <> reference)
      ~client_error:(not (System.finished sys) && System.halted sys = None)
  in
  let latencies =
    match
      Rcoe_obs.Metrics.find_histogram (System.metrics sys)
        "recover.latency_cycles"
    with
    | Some h -> Rcoe_obs.Metrics.samples h
    | None -> []
  in
  ( outcome,
    List.length (System.rollbacks sys),
    System.checkpoints_taken sys,
    latencies )

let recovery_table ?(trials = 12) () =
  header "Recovery campaign: DMR halt vs DMR rollback on md5sum (CC-D, x86)"
    "without checkpoints every injected signature corruption halts the \
     run (controlled, but service dead); with a checkpoint ring the same \
     transient faults re-execute to a correct finish (Recovered); a \
     persistent fault exhausts the rollback budget and still fail-stops";
  let tbl =
    Table.create
      ~headers:
        [
          "config"; "fault"; "trials"; "recovered"; "mismatch-halt";
          "no-error"; "UNCONTROLLED"; "ckpts"; "rollbacks";
          "mean-recovery-cyc";
        ]
  in
  let uncontrolled_total = ref 0 in
  let row label ~checkpointing ~fault =
    let tally = Outcome.tally_create () in
    let rollbacks = ref 0 and ckpts = ref 0 and lats = ref [] in
    for seed = 1 to trials do
      let outcome, rb, ck, ls = recovery_trial ~checkpointing ~fault ~seed () in
      Outcome.tally_add tally outcome;
      rollbacks := !rollbacks + rb;
      ckpts := !ckpts + ck;
      lats := ls @ !lats
    done;
    uncontrolled_total := !uncontrolled_total + Outcome.tally_uncontrolled tally;
    let open Outcome in
    Table.add_row tbl
      [
        label;
        (match fault with `Transient -> "transient" | `Persistent -> "persistent");
        string_of_int trials;
        string_of_int (tally_get tally Recovered);
        string_of_int (tally_get tally Signature_mismatch);
        string_of_int (tally_get tally No_error);
        string_of_int (tally_uncontrolled tally);
        string_of_int !ckpts;
        string_of_int !rollbacks;
        (match !lats with
        | [] -> "n/a"
        | ls -> Printf.sprintf "%.0f" (Rcoe_util.Stats.mean ls));
      ]
  in
  (* Replay-detection rows ride the same campaign: the transient rows
     must be 100% Recovered (a fail-stop would be controlled but
     defeats replay's point — count it against the CI gate), the
     persistent row must fail-stop: a second verdict against the same
     re-executed chunk escalates past the lone chunk-start snapshot
     (the fault is deterministic under replay, so retrying cannot
     help) and halts with the ring empty. *)
  let replay_failures = ref 0 in
  let replay_row label ~exec_backend ~fault =
    let tally = Outcome.tally_create () in
    let rollbacks = ref 0 and ckpts = ref 0 and lats = ref [] in
    for seed = 1 to trials do
      let outcome, rb, ck, ls =
        replay_recovery_trial ~exec_backend ~fault ~seed ()
      in
      Outcome.tally_add tally outcome;
      if fault = `Transient && outcome <> Outcome.Recovered then
        incr replay_failures;
      rollbacks := !rollbacks + rb;
      ckpts := !ckpts + ck;
      lats := ls @ !lats
    done;
    uncontrolled_total :=
      !uncontrolled_total + Outcome.tally_uncontrolled tally;
    let open Outcome in
    Table.add_row tbl
      [
        label;
        (match fault with
        | `Transient -> "transient"
        | `Persistent -> "persistent");
        string_of_int trials;
        string_of_int (tally_get tally Recovered);
        string_of_int (tally_get tally Signature_mismatch);
        string_of_int (tally_get tally No_error);
        string_of_int (tally_uncontrolled tally);
        string_of_int !ckpts;
        string_of_int !rollbacks;
        (match !lats with
        | [] -> "n/a"
        | ls -> Printf.sprintf "%.0f" (Rcoe_util.Stats.mean ls));
      ]
  in
  row "CC-D halt" ~checkpointing:false ~fault:`Transient;
  row "CC-D rollback" ~checkpointing:true ~fault:`Transient;
  row "CC-D rollback" ~checkpointing:true ~fault:`Persistent;
  replay_row "Replay interp" ~exec_backend:Config.Interp ~fault:`Transient;
  replay_row "Replay blocks" ~exec_backend:Config.Blocks ~fault:`Transient;
  replay_row "Replay interp" ~exec_backend:Config.Interp ~fault:`Persistent;
  Table.print tbl;
  if !replay_failures > 0 then
    Printf.printf
      "REPLAY: %d transient trial(s) did not end Recovered\n" !replay_failures;
  Printf.printf
    "(recovery latency = re-execution distance back to the detection \
     point plus the restore stall; replay rows recover an unreplicated \
     primary from chunk-start checkpoints after an asynchronous checker \
     verdict; scaled trial counts as in EXPERIMENTS.md)\n%!";
  !uncontrolled_total + !replay_failures

(* -------------------------------------------- DMA ingress campaign -- *)

(* One serving trial with a bit flipped inside an in-flight RX DMA
   frame — the paper's Table VII residual: the frame sits outside the
   sphere of replication, so voting never sees the flip and no
   checkpoint covers the ring, leaving rollback powerless. With
   [ingress_check] off the corrupted PUT is stored and served silently
   until a later GET trips the client's embedded CRC; with it on, the
   consume path recomputes the frame checksum against the NIC's
   enqueue-time RX_CSUM, NACKs the frame, and the client's
   retransmission re-delivers the pristine payload. *)
let ingress_trial ?(exec_backend = Config.Interp) ~mode ~n ~ingress_check
    ~fault ~seed () =
  let config =
    {
      (Runner.config_for ~mode ~nreplicas:n ~arch:x86 ~with_net:true
         ~seed:(13 * seed) ())
      with
      Config.ingress_check;
      barrier_timeout = 200_000;
      exec_backend;
    }
  in
  let fault_spec =
    if fault then
      Some
        {
          Loadgen.fault_after = 8;
          fault_bit = seed;
          fault_target = Loadgen.Dma_frame;
        }
    else None
  in
  (* YCSB-B (95% reads): a corrupted PUT's key is overwhelmingly
     likely to be GET before the next overwrite, so the checking-off
     rows surface the corruption client-side instead of silently
     erasing the evidence under write-heavy churn. *)
  let res =
    Loadgen.run ~config ~workload:Ycsb.B ~records:40 ~requests:200
      ~gen_seed:700 ~stall_limit:1_500_000 ~max_cycles:60_000_000
      ~retry_after:60_000 ?fault:fault_spec ()
  in
  let c = res.Loadgen.counters in
  let outcome =
    Outcome.classify ~sys:res.Loadgen.sys
      ~client_corrupt:(c.Ycsb.corrupted > 0)
      ~client_error:(c.Ycsb.client_errors > 0 || res.Loadgen.stalled)
  in
  (outcome, res)

let ingress_table ?(trials = 6) () =
  header
    "DMA ingress campaign: in-flight RX frame corruption, checksum path \
     off vs on"
    "off: the flip is served silently until a later GET trips the \
     client CRC (YCSB corruption, uncontrolled) - detection by \
     replication is structurally impossible since the frame is outside \
     the SoR; on: the consume path drops the frame against RX_CSUM and \
     the client retransmission re-delivers it (controlled), with the \
     seq-sorted outcome digest matching the fault-free reference";
  let tbl =
    Table.create
      ~headers:
        [
          "config"; "ingress"; "trials"; "fired"; "dropped"; "redeliv";
          "silent-corru"; "ingress-drop"; "no-error"; "UNCONTROLLED";
          "digest=ref";
        ]
  in
  let uncontrolled_total = ref 0 in
  let row label mode n ingress_check =
    (* Fault-free reference: the seq-sorted outcome digest is invariant
       under drop-induced completion reordering, so one reference run
       serves every trial of the row. *)
    let _, refr = ingress_trial ~mode ~n ~ingress_check ~fault:false ~seed:1 () in
    let tally = Outcome.tally_create () in
    let fired = ref 0 and dropped = ref 0 and redeliv = ref 0 in
    let corrupt = ref 0 and digest_ok = ref 0 in
    for seed = 1 to trials do
      let outcome, res =
        ingress_trial ~mode ~n ~ingress_check ~fault:true ~seed ()
      in
      Outcome.tally_add tally outcome;
      if res.Loadgen.fault_fired then incr fired;
      dropped := !dropped + res.Loadgen.ingress_dropped;
      redeliv := !redeliv + res.Loadgen.redelivered;
      corrupt := !corrupt + res.Loadgen.counters.Ycsb.corrupted;
      if
        res.Loadgen.outcome_sorted_digest = refr.Loadgen.outcome_sorted_digest
        && res.Loadgen.completed = refr.Loadgen.completed
      then incr digest_ok
    done;
    (* The off rows are *expected* to be uncontrolled — that is the
       hole being demonstrated; only the checking-on rows gate. *)
    if ingress_check then
      uncontrolled_total :=
        !uncontrolled_total + Outcome.tally_uncontrolled tally;
    let open Outcome in
    Table.add_row tbl
      [
        label;
        (if ingress_check then "on" else "off");
        string_of_int trials;
        string_of_int !fired;
        string_of_int !dropped;
        string_of_int !redeliv;
        string_of_int (tally_get tally Ycsb_corruption);
        string_of_int (tally_get tally Ingress_dropped);
        string_of_int (tally_get tally No_error);
        string_of_int (tally_uncontrolled tally);
        Printf.sprintf "%d/%d" !digest_ok trials;
      ]
  in
  row "LC-D" Config.LC 2 false;
  row "LC-D" Config.LC 2 true;
  row "CC-D" Config.CC 2 false;
  row "CC-D" Config.CC 2 true;
  Table.print tbl;
  Printf.printf
    "(silent-corru counts trials whose corruption reached the client; \
     ingress-drop counts trials where the frame was dropped and \
     redelivered; digest=ref compares the seq-sorted outcome digest \
     against a fault-free reference run)\n%!";
  !uncontrolled_total

(* The @faultquick gate's DMA-corruption leg: one deterministic off/on
   pair on CC-D. Returns the number of violated expectations. *)
let ingress_quick ?(seed = 3) () =
  let fails = ref 0 in
  let expect cond msg =
    if not cond then begin
      incr fails;
      Printf.printf "ingress-quick: FAILED: %s\n" msg
    end
  in
  let off_outcome, off =
    ingress_trial ~mode:Config.CC ~n:2 ~ingress_check:false ~fault:true ~seed ()
  in
  let on_outcome, on_ =
    ingress_trial ~mode:Config.CC ~n:2 ~ingress_check:true ~fault:true ~seed ()
  in
  Printf.printf
    "ingress-quick: off => %s (corrupted=%d), on => %s (checked=%d \
     dropped=%d redelivered=%d)\n%!"
    (Outcome.to_string off_outcome)
    off.Loadgen.counters.Rcoe_workloads.Ycsb.corrupted
    (Outcome.to_string on_outcome)
    on_.Loadgen.ingress_checked on_.Loadgen.ingress_dropped
    on_.Loadgen.redelivered;
  expect off.Loadgen.fault_fired "checking off: DMA flip did not land";
  expect
    (off.Loadgen.counters.Rcoe_workloads.Ycsb.corrupted > 0)
    "checking off: corruption should reach the client (silent until the \
     CRC trips)";
  expect
    (off_outcome = Outcome.Ycsb_corruption)
    "checking off: outcome should classify as YCSB corruption";
  expect on_.Loadgen.fault_fired "checking on: DMA flip did not land";
  expect
    (on_.Loadgen.ingress_dropped >= 1)
    "checking on: the corrupted frame should be dropped at ingress";
  expect
    (on_.Loadgen.counters.Rcoe_workloads.Ycsb.corrupted = 0)
    "checking on: no corruption may reach the client";
  expect
    (on_outcome = Outcome.Ingress_dropped)
    "checking on: outcome should classify as controlled ingress drop";
  expect (not on_.Loadgen.stalled)
    "checking on: redelivery should finish the run";
  !fails

let all ~quick =
  let t = if quick then 25 else 80 in
  table7 ~trials:t ~variant:`X86 ();
  table7 ~trials:t ~variant:`Arm ();
  table8 ~trials:(if quick then 20 else 60) ();
  table9 ~trials:(if quick then 20 else 60) ();
  ignore (recovery_table ~trials:(if quick then 6 else 16) ());
  ignore (ingress_table ~trials:(if quick then 3 else 8) ());
  detection_latency ~runs:(if quick then 3 else 8) ()
