test/test_masking_cc.ml: Alcotest Arch Config Datarace Kv_run Kvstore Machine Mem Rcoe_core Rcoe_harness Rcoe_isa Rcoe_kernel Rcoe_machine Rcoe_workloads Runner String System Wl Ycsb
