lib/kernel/context.ml: Array Core Int64 Layout Mem Rcoe_isa Rcoe_machine
