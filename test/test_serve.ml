(* Fast serving-harness checks on the sequential engine: request
   accounting, attribution closure, open-loop pacing, the fault
   campaign with client-side retransmission over the DMA hole, and the
   refresh-on-read net./trace. gauges. The heavy 10k-request Seq/Par
   identity runs live in the separate [serve_det] binary. *)

open Rcoe_core
open Rcoe_harness
open Rcoe_workloads
module Arch = Rcoe_machine.Arch
module Hdr = Rcoe_obs.Hdr
module Json = Rcoe_obs.Json
module Metrics = Rcoe_obs.Metrics
module Reqtrace = Rcoe_obs.Reqtrace

let config ?(checkpoint_every = 0) () =
  {
    (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:Arch.X86
       ~with_net:true ~seed:5 ())
    with
    Config.checkpoint_every;
    max_rollbacks = 3;
  }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  nn = 0 || go 0

let test_closed_loop_accounting () =
  let r =
    Loadgen.run ~config:(config ()) ~workload:Ycsb.A ~records:48 ~requests:300
      ()
  in
  Alcotest.(check bool) "not stalled" false r.Loadgen.stalled;
  Alcotest.(check int) "all answered" r.Loadgen.issued r.Loadgen.completed;
  Alcotest.(check int) "run ops" 300 r.Loadgen.run_ops;
  Alcotest.(check int) "outcome log covers everything" r.Loadgen.completed
    (List.length r.Loadgen.outcome_log);
  Alcotest.(check int) "e2e histogram covers everything" r.Loadgen.completed
    (Hdr.count (Reqtrace.e2e r.Loadgen.rt));
  Alcotest.(check int) "no corruption" 0 r.Loadgen.counters.Ycsb.corrupted;
  Alcotest.(check int) "no client errors" 0
    r.Loadgen.counters.Ycsb.client_errors;
  Alcotest.(check int) "nothing left open" 0
    (Reqtrace.open_requests r.Loadgen.rt)

let test_attribution_sums_exactly () =
  let r =
    Loadgen.run ~config:(config ~checkpoint_every:4 ()) ~workload:Ycsb.B
      ~records:48 ~requests:300 ()
  in
  let a = Reqtrace.attribution r.Loadgen.rt in
  let total = List.assoc "total_cycles" a in
  let parts =
    List.fold_left
      (fun acc (k, v) -> if k = "total_cycles" then acc else acc + v)
      0 a
  in
  Alcotest.(check int) "classes sum to total" total parts;
  Alcotest.(check bool) "total positive" true (total > 0);
  (* Phase stamps partition the end-to-end time the same way. *)
  let e2e_sum = Hdr.sum (Reqtrace.e2e r.Loadgen.rt) in
  Alcotest.(check int) "attribution covers e2e" e2e_sum total

let test_open_loop () =
  let r =
    Loadgen.run ~config:(config ()) ~workload:Ycsb.A ~records:48 ~requests:300
      ~pacing:(Loadgen.Open { interval = 6_000; max_queue = 32 })
      ()
  in
  Alcotest.(check bool) "not stalled" false r.Loadgen.stalled;
  Alcotest.(check int) "all answered" r.Loadgen.issued r.Loadgen.completed;
  (* Arrivals every 6000 cycles leave the server mostly idle: run-phase
     elapsed time is pinned near requests * interval, not server speed. *)
  Alcotest.(check bool) "paced by the arrival clock" true
    (r.Loadgen.elapsed_cycles >= 299 * 6_000)

let test_fault_campaign_retransmission () =
  let r =
    Loadgen.run ~config:(config ~checkpoint_every:2 ()) ~workload:Ycsb.A
      ~records:64 ~requests:500
      ~fault:
        { Loadgen.fault_after = 200; fault_bit = 7;
          fault_target = Loadgen.Sig_word }
      ()
  in
  Alcotest.(check bool) "recovered, not stalled" false r.Loadgen.stalled;
  Alcotest.(check bool) "rolled back" true (r.Loadgen.rollbacks >= 1);
  Alcotest.(check int) "all answered despite the DMA hole" r.Loadgen.issued
    r.Loadgen.completed;
  Alcotest.(check int) "no client errors" 0
    r.Loadgen.counters.Ycsb.client_errors;
  (* The rollback rewound consumed requests and replayed a doorbell;
     the client-side protocol absorbed both. *)
  Alcotest.(check bool) "lost request retransmitted" true
    (r.Loadgen.retransmits >= 1);
  Alcotest.(check bool) "replayed response filtered" true
    (r.Loadgen.dup_responses >= 1);
  let d = Reqtrace.detect_hdr r.Loadgen.rt in
  let s = Reqtrace.stall_hdr r.Loadgen.rt in
  Alcotest.(check bool) "detection latencies recorded" true (Hdr.count d >= 1);
  Alcotest.(check bool) "recovery stalls recorded" true (Hdr.count s >= 1);
  Alcotest.(check bool) "stall attribution nonzero" true
    (List.assoc "rollback_stall" (Reqtrace.attribution r.Loadgen.rt) > 0)

let test_net_trace_gauges () =
  let r =
    Loadgen.run ~config:(config ()) ~workload:Ycsb.A ~records:32 ~requests:100
      ()
  in
  let m = System.metrics r.Loadgen.sys in
  let gauge name =
    match Metrics.find_gauge m name with
    | Some g -> int_of_float (Metrics.value g)
    | None -> Alcotest.failf "gauge %s not registered" name
  in
  Alcotest.(check int) "net.rx_dropped" 0 (gauge "net.rx_dropped");
  Alcotest.(check bool) "net.rx_ring_hwm" true (gauge "net.rx_ring_hwm" >= 1);
  Alcotest.(check bool) "net.tx_sent counts responses" true
    (gauge "net.tx_sent" >= r.Loadgen.completed);
  Alcotest.(check bool) "net.tx_pending_hwm" true
    (gauge "net.tx_pending_hwm" >= 1);
  Alcotest.(check int) "trace.dropped_events" 0 (gauge "trace.dropped_events")

let test_report_json () =
  let r =
    Loadgen.run ~config:(config ()) ~workload:Ycsb.A ~records:32 ~requests:100
      ()
  in
  let j = Json.to_string (Loadgen.report_json r ~engine:"sequential") in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in report") true
        (contains j ("\"" ^ key ^ "\"")))
    [
      "schema"; "engine"; "throughput_kops"; "outcome_digest"; "end_sigs";
      "requests"; "attribution"; "net"; "rx_dropped"; "dropped_events";
      "retransmits"; "dup_responses"; "ingress_check"; "ingress_checked";
      "ingress_dropped"; "redelivered"; "outcome_sorted_digest"; "rx_nacked";
      "ingress_stall";
    ];
  Alcotest.(check bool) "schema tagged" true
    (contains j "rcoe-serve-report/v2")

let test_perfetto_request_track () =
  let r =
    Loadgen.run ~config:(config ()) ~workload:Ycsb.A ~records:32 ~requests:100
      ()
  in
  let events = Reqtrace.chrome_events r.Loadgen.rt in
  Alcotest.(check bool) "one complete event per request plus metadata" true
    (List.length events > r.Loadgen.completed);
  let j =
    Rcoe_obs.Export.to_chrome_json ~extra:events (System.trace r.Loadgen.sys)
  in
  Alcotest.(check bool) "requests process named" true (contains j "requests");
  Alcotest.(check bool) "request lanes named" true (contains j "req lane 0");
  Alcotest.(check bool) "per-phase args present" true
    (contains j "\"service\"")

let suite =
  [
    Alcotest.test_case "closed loop accounting" `Quick
      test_closed_loop_accounting;
    Alcotest.test_case "attribution sums exactly" `Quick
      test_attribution_sums_exactly;
    Alcotest.test_case "open loop pacing" `Quick test_open_loop;
    Alcotest.test_case "fault campaign + retransmission" `Quick
      test_fault_campaign_retransmission;
    Alcotest.test_case "net/trace gauges" `Quick test_net_trace_gauges;
    Alcotest.test_case "report json" `Quick test_report_json;
    Alcotest.test_case "perfetto request track" `Quick
      test_perfetto_request_track;
  ]
