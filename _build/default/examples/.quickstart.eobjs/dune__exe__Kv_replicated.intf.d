examples/kv_replicated.mli:
