open Rcoe_machine
open Rcoe_kernel
open Rcoe_core

(* --- Clock --------------------------------------------------------------- *)

let user ~count ~b ~ip =
  { Clock.count; pos = Clock.At_user { branches_adj = b; ip } }

let test_clock_order_by_count () =
  Alcotest.(check bool) "count dominates" true
    (Clock.compare (user ~count:2 ~b:0 ~ip:0) (user ~count:1 ~b:999 ~ip:999) > 0)

let test_clock_order_by_branches () =
  Alcotest.(check bool) "branches next" true
    (Clock.compare (user ~count:1 ~b:5 ~ip:0) (user ~count:1 ~b:4 ~ip:100) > 0)

let test_clock_order_by_ip () =
  Alcotest.(check bool) "ip last" true
    (Clock.compare (user ~count:1 ~b:5 ~ip:10) (user ~count:1 ~b:5 ~ip:9) > 0)

let test_clock_kernel_after_user () =
  Alcotest.(check bool) "kernel-parked is later" true
    (Clock.compare (Clock.in_kernel ~count:1) (user ~count:1 ~b:9999 ~ip:9999) > 0)

let test_clock_encode_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "roundtrip" true
        (Clock.equal_position c (Clock.decode (Clock.encode c))
        && Clock.compare c (Clock.decode (Clock.encode c)) = 0))
    [ user ~count:3 ~b:17 ~ip:42; Clock.in_kernel ~count:9 ]

let test_clock_counter_race_adjustment () =
  (* Paper Listing 3: a replica that executed the counter increment but
     not yet the branch must compare as one completed branch behind. *)
  let profile = Arch.arm in
  let core = Core.create ~id:0 ~jitter_seed:1 in
  core.Core.regs.(9) <- 10;
  core.Core.ip <- 268;
  core.Core.last_was_cntinc <- true;
  let behind = Clock.capture profile ~count:1 core in
  core.Core.last_was_cntinc <- false;
  let ahead = Clock.capture profile ~count:1 core in
  (match behind.Clock.pos with
  | Clock.At_user { branches_adj; _ } ->
      Alcotest.(check int) "adjusted down" 9 branches_adj
  | Clock.In_kernel -> Alcotest.fail "expected user position");
  Alcotest.(check bool) "race-adjusted ordering" true
    (Clock.compare behind ahead < 0)

let test_clock_hw_mode_no_adjustment () =
  let core = Core.create ~id:0 ~jitter_seed:1 in
  core.Core.hw_branches <- 10;
  core.Core.last_was_cntinc <- true;
  (* HW counting ignores the compiler-race flag only via capture used with
     compiler profiles; with the x86 profile the raw PMU value is... also
     adjusted by the flag, but the flag is never set by hardware counting
     because Cntinc does not appear in x86 builds. Simulate that. *)
  core.Core.last_was_cntinc <- false;
  match (Clock.capture Arch.x86 ~count:0 core).Clock.pos with
  | Clock.At_user { branches_adj; _ } -> Alcotest.(check int) "raw" 10 branches_adj
  | Clock.In_kernel -> Alcotest.fail "expected user"

(* --- Signature ------------------------------------------------------------ *)

let test_signature_matches_fletcher () =
  let mem = Mem.create 64 in
  Signature.reset mem ~base:0;
  let words = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  Signature.add_words mem ~base:0 words;
  let f = Rcoe_checksum.Fletcher.create () in
  Rcoe_checksum.Fletcher.add_words f words;
  let _, c0, c1 = Signature.read mem ~base:0 in
  Alcotest.(check (pair int int)) "same recurrence"
    (Rcoe_checksum.Fletcher.value f) (c0, c1)

let test_signature_event_count () =
  let mem = Mem.create 64 in
  Signature.reset mem ~base:8;
  Signature.bump_event mem ~base:8;
  Signature.bump_event mem ~base:8;
  Alcotest.(check int) "count" 2 (Signature.event_count mem ~base:8)

let test_signature_injectable () =
  let mem = Mem.create 64 in
  Signature.reset mem ~base:0;
  Signature.add_word mem ~base:0 77;
  let before = Signature.read mem ~base:0 in
  Mem.flip_bit mem ~addr:1 ~bit:3;
  Alcotest.(check bool) "flip changes signature" false
    (Signature.equal3 before (Signature.read mem ~base:0))

(* --- Vote (paper Listing 5 / Table I) -------------------------------------- *)

let mk_vote_env n =
  let lay = Layout.compute ~nreplicas:n ~user_words:1024 in
  let mem = Mem.create lay.Layout.total_words in
  (mem, lay.Layout.shared)

let test_vote_single_faulter () =
  (* Table I, first example: R2 has a different checksum. *)
  let mem, sh = mk_vote_env 3 in
  Vote.publish_signature mem sh ~rid:0 (5, 0xdead, 0xbeef);
  Vote.publish_signature mem sh ~rid:1 (5, 0xdead, 0xbeef);
  Vote.publish_signature mem sh ~rid:2 (5, 0xdead, 0xbee0);
  Alcotest.(check bool) "disagree" false
    (Vote.signatures_agree mem sh ~live:[ 0; 1; 2 ]);
  match Vote.run mem sh ~live:[ 0; 1; 2 ] with
  | Vote.Faulty 2 -> ()
  | Vote.Faulty n -> Alcotest.failf "wrong faulter %d" n
  | Vote.No_consensus -> Alcotest.fail "expected consensus"

let test_vote_faulter_is_first () =
  let mem, sh = mk_vote_env 3 in
  Vote.publish_signature mem sh ~rid:0 (5, 1, 1);
  Vote.publish_signature mem sh ~rid:1 (5, 2, 2);
  Vote.publish_signature mem sh ~rid:2 (5, 2, 2);
  match Vote.run mem sh ~live:[ 0; 1; 2 ] with
  | Vote.Faulty 0 -> ()
  | _ -> Alcotest.fail "expected replica 0"

let test_vote_all_different_no_consensus () =
  (* Table I, second example: all checksums differ. *)
  let mem, sh = mk_vote_env 3 in
  Vote.publish_signature mem sh ~rid:0 (5, 1, 1);
  Vote.publish_signature mem sh ~rid:1 (5, 2, 2);
  Vote.publish_signature mem sh ~rid:2 (5, 3, 3);
  match Vote.run mem sh ~live:[ 0; 1; 2 ] with
  | Vote.No_consensus -> ()
  | Vote.Faulty n -> Alcotest.failf "unexpected consensus on %d" n

let test_vote_rejects_dmr () =
  let mem, sh = mk_vote_env 2 in
  Alcotest.(check bool) "raises" true
    (try ignore (Vote.run mem sh ~live:[ 0; 1 ]); false
     with Invalid_argument _ -> true)

let test_vote_five_replicas () =
  (* "Supports any number of replicas N >= 3." *)
  let mem, sh = mk_vote_env 5 in
  List.iter
    (fun r ->
      Vote.publish_signature mem sh ~rid:r
        (if r = 3 then (9, 9, 9) else (1, 2, 3)))
    [ 0; 1; 2; 3; 4 ];
  match Vote.run mem sh ~live:[ 0; 1; 2; 3; 4 ] with
  | Vote.Faulty 3 -> ()
  | _ -> Alcotest.fail "expected replica 3"

let test_vote_after_downgrade_subset () =
  (* Voting among a non-contiguous live set (after an earlier removal). *)
  let mem, sh = mk_vote_env 4 in
  List.iter
    (fun r ->
      Vote.publish_signature mem sh ~rid:r
        (if r = 2 then (7, 7, 7) else (4, 4, 4)))
    [ 0; 2; 3 ];
  match Vote.run mem sh ~live:[ 0; 2; 3 ] with
  | Vote.Faulty 2 -> ()
  | _ -> Alcotest.fail "expected replica 2"

let qcheck_vote_convicts_the_odd_one =
  QCheck.Test.make ~name:"vote always convicts the unique deviant" ~count:200
    QCheck.(triple (int_bound 2) (int_bound 1000) (int_bound 1000))
    (fun (faulty, a, b) ->
      QCheck.assume (a <> b);
      let mem, sh = mk_vote_env 3 in
      List.iter
        (fun r ->
          Vote.publish_signature mem sh ~rid:r
            (if r = faulty then (1, b, b) else (1, a, a)))
        [ 0; 1; 2 ];
      Vote.run mem sh ~live:[ 0; 1; 2 ] = Vote.Faulty faulty)

(* --- Config --------------------------------------------------------------- *)

let test_config_validation () =
  let bad cfg = match Config.validate cfg with Error _ -> true | Ok () -> false in
  Alcotest.(check bool) "base with 2" true
    (bad { Config.default with Config.nreplicas = 2 });
  Alcotest.(check bool) "lc with 1" true
    (bad { Config.default with Config.mode = Config.LC });
  Alcotest.(check bool) "masking needs 3" true
    (bad { Config.default with Config.mode = Config.LC; nreplicas = 2; masking = true });
  Alcotest.(check bool) "vm on arm" true
    (bad
       {
         Config.default with
         Config.mode = Config.CC;
         nreplicas = 2;
         vm = true;
         arch = Arch.Arm;
       });
  Alcotest.(check bool) "lc vm" true
    (bad { Config.default with Config.mode = Config.LC; nreplicas = 2; vm = true });
  Alcotest.(check bool) "cc masking on arm" true
    (bad
       {
         Config.default with
         Config.mode = Config.CC;
         nreplicas = 3;
         masking = true;
         arch = Arch.Arm;
       });
  Alcotest.(check bool) "lc masking on arm ok" false
    (bad
       {
         Config.default with
         Config.mode = Config.LC;
         nreplicas = 3;
         masking = true;
         arch = Arch.Arm;
       })

let test_config_labels () =
  let lbl mode n =
    Config.replicas_label { Config.default with Config.mode; nreplicas = n }
  in
  Alcotest.(check string) "base" "Base" (lbl Config.Base 1);
  Alcotest.(check string) "lcd" "LC-D" (lbl Config.LC 2);
  Alcotest.(check string) "cct" "CC-T" (lbl Config.CC 3);
  Alcotest.(check string) "lc5" "LC-5" (lbl Config.LC 5)

(* --- System-level behaviours ----------------------------------------------- *)

let spin_exit_program ~loops =
  let a = Rcoe_isa.Asm.create "spin" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.for_up a Rcoe_isa.Reg.R4 ~start:0 ~stop:(Rcoe_isa.Instr.Imm loops)
    (fun () -> Rcoe_isa.Asm.nop a);
  Rcoe_isa.Asm.syscall a Syscall.sys_exit;
  Rcoe_isa.Asm.assemble ~entry:"main" a

let lc_cfg ?(n = 2) ?(masking = false) () =
  {
    Config.default with
    Config.mode = Config.LC;
    nreplicas = n;
    masking;
    tick_interval = 5_000;
    barrier_timeout = 100_000;
  }

let test_system_detects_signature_corruption () =
  let sys =
    System.create ~config:(lc_cfg ()) ~program:(spin_exit_program ~loops:200_000)
  in
  System.run sys ~max_cycles:20_000;
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 1 + 2) ~bit:11;
  System.run sys ~max_cycles:2_000_000;
  Alcotest.(check bool) "halted with mismatch" true
    (System.halted sys = Some System.H_mismatch)

let test_system_detects_hung_replica () =
  let sys =
    System.create ~config:(lc_cfg ()) ~program:(spin_exit_program ~loops:500_000)
  in
  System.run sys ~max_cycles:20_000;
  (* Halt replica 1's core: a hanging replica (paper: straggler). *)
  (System.machine sys).Machine.cores.(1).Core.halted <- true;
  System.run sys ~max_cycles:2_000_000;
  Alcotest.(check bool) "timeout" true (System.halted sys = Some System.H_timeout)

let test_system_masks_follower_fault () =
  let sys =
    System.create
      ~config:(lc_cfg ~n:3 ~masking:true ())
      ~program:(spin_exit_program ~loops:600_000)
  in
  System.run sys ~max_cycles:20_000;
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 2 + 1) ~bit:4;
  System.run sys ~max_cycles:3_000_000;
  (match System.downgrades sys with
  | [ (_, 2, _) ] -> ()
  | _ -> Alcotest.fail "expected downgrade of replica 2");
  Alcotest.(check (list int)) "live set" [ 0; 1 ] (System.live sys);
  Alcotest.(check bool) "still running" true (System.halted sys = None)

let test_system_masks_primary_and_reroutes () =
  let sys =
    System.create
      ~config:(lc_cfg ~n:3 ~masking:true ())
      ~program:(spin_exit_program ~loops:600_000)
  in
  System.run sys ~max_cycles:20_000;
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 0 + 1) ~bit:4;
  System.run sys ~max_cycles:3_000_000;
  (match System.downgrades sys with
  | [ (_, 0, cost) ] ->
      Alcotest.(check bool) "primary removal costs more" true (cost > 100_000)
  | _ -> Alcotest.fail "expected downgrade of replica 0");
  Alcotest.(check int) "new primary" 1 (System.primary sys);
  Alcotest.(check int) "irqs re-routed" 1 (System.machine sys).Machine.irq_route

let test_system_dmr_mismatch_halts () =
  (* DMR can only detect: no masking possible even if requested... the
     config validator rejects masking with n=2, so a plain DMR mismatch
     must halt. *)
  let sys =
    System.create ~config:(lc_cfg ~n:2 ())
      ~program:(spin_exit_program ~loops:400_000)
  in
  System.run sys ~max_cycles:20_000;
  Mem.flip_bit (System.machine sys).Machine.mem
    ~addr:(System.sig_base sys 0 + 1) ~bit:2;
  System.run sys ~max_cycles:2_000_000;
  Alcotest.(check bool) "halted" true (System.halted sys <> None)

let test_system_deterministic_given_seed () =
  let run () =
    let sys =
      System.create ~config:(lc_cfg ()) ~program:(spin_exit_program ~loops:50_000)
    in
    System.run sys ~max_cycles:10_000_000;
    (System.now sys, (System.stats sys).System.rounds)
  in
  Alcotest.(check (pair int int)) "bit-identical reruns" (run ()) (run ())

let test_system_cc_requires_counted_program_on_arm () =
  let cfg =
    {
      Config.default with
      Config.mode = Config.CC;
      nreplicas = 2;
      arch = Arch.Arm;
    }
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (System.create ~config:cfg ~program:(spin_exit_program ~loops:10));
       false
     with Invalid_argument _ -> true)

let test_system_cc_rejects_exclusives () =
  let a = Rcoe_isa.Asm.create "excl" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.emit a (Rcoe_isa.Instr.Ldex (Rcoe_isa.Reg.R1, Rcoe_isa.Reg.R2));
  Rcoe_isa.Asm.syscall a Syscall.sys_exit;
  let program = Rcoe_isa.Asm.assemble ~entry:"main" a in
  let cfg = { Config.default with Config.mode = Config.CC; nreplicas = 2 } in
  Alcotest.(check bool) "raises" true
    (try ignore (System.create ~config:cfg ~program); false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "clock: count dominates" `Quick test_clock_order_by_count;
    Alcotest.test_case "clock: branches next" `Quick test_clock_order_by_branches;
    Alcotest.test_case "clock: ip last" `Quick test_clock_order_by_ip;
    Alcotest.test_case "clock: kernel after user" `Quick test_clock_kernel_after_user;
    Alcotest.test_case "clock: encode roundtrip" `Quick test_clock_encode_roundtrip;
    Alcotest.test_case "clock: counter-race adjustment" `Quick
      test_clock_counter_race_adjustment;
    Alcotest.test_case "clock: hw mode raw count" `Quick
      test_clock_hw_mode_no_adjustment;
    Alcotest.test_case "signature matches Fletcher" `Quick
      test_signature_matches_fletcher;
    Alcotest.test_case "signature event count" `Quick test_signature_event_count;
    Alcotest.test_case "signature injectable" `Quick test_signature_injectable;
    Alcotest.test_case "vote: single faulter (Table I)" `Quick
      test_vote_single_faulter;
    Alcotest.test_case "vote: faulter is replica 0" `Quick test_vote_faulter_is_first;
    Alcotest.test_case "vote: all different (Table I)" `Quick
      test_vote_all_different_no_consensus;
    Alcotest.test_case "vote: rejects DMR" `Quick test_vote_rejects_dmr;
    Alcotest.test_case "vote: five replicas" `Quick test_vote_five_replicas;
    Alcotest.test_case "vote: non-contiguous live set" `Quick
      test_vote_after_downgrade_subset;
    QCheck_alcotest.to_alcotest qcheck_vote_convicts_the_odd_one;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "config labels" `Quick test_config_labels;
    Alcotest.test_case "system detects signature corruption" `Quick
      test_system_detects_signature_corruption;
    Alcotest.test_case "system detects hung replica" `Quick
      test_system_detects_hung_replica;
    Alcotest.test_case "system masks follower fault" `Quick
      test_system_masks_follower_fault;
    Alcotest.test_case "system masks primary + reroutes" `Quick
      test_system_masks_primary_and_reroutes;
    Alcotest.test_case "DMR mismatch halts" `Quick test_system_dmr_mismatch_halts;
    Alcotest.test_case "deterministic given seed" `Quick
      test_system_deterministic_given_seed;
    Alcotest.test_case "CC on Arm requires counted program" `Quick
      test_system_cc_requires_counted_program_on_arm;
    Alcotest.test_case "CC rejects exclusives" `Quick test_system_cc_rejects_exclusives;
  ]
