(** Replication-safety lint: the static analyzer that proves which
    coupling mode a program is eligible for.

    The paper's trade-off (Section III): LC-RCoE is cheap but unsound
    for racy programs — replicas may interleave shared-memory accesses
    differently and silently diverge — while CC-RCoE tolerates races by
    keeping precise logical time. [analyze] classifies a program:

    - {!LC_safe}: every shared-memory access across concurrent thread
      roots is protected (exclusive-monitor held on all paths, an
      atomic instruction, or kernel-mediated) — safe under any mode;
    - {!CC_required}: some write to shared data is unprotected on a
      path while two or more thread instances can touch the region —
      LC replicas may diverge, closely-coupled execution is needed;
    - {!Rejected}: structurally broken — a branch out of the code
      array (the Harvard analogue of a jump into data), an unresolved
      symbolic target, execution falling off the end, or an unbalanced
      stack — on a {e reachable} path. Unreachable breakage demotes to
      an informational finding.

    For branch-counted programs ([~branch_count:true]) the analyzer
    additionally verifies the compiler pass's invariants (the GCC
    plugin of paper Section III-B): every reachable branch is
    immediately preceded by [Cntinc] and cannot be jumped to directly,
    and no reachable instruction other than [Cntinc] touches the
    reserved counter register. *)

type severity = Info | Warning | Error

type verdict = LC_safe | CC_required | Rejected

type finding = {
  f_addr : int option;  (** Instruction address, when the finding has one. *)
  f_rule : string;  (** Short rule id, e.g. ["data-race"], ["stack"]. *)
  f_severity : severity;
  f_message : string;
}

type report = {
  verdict : verdict;
  findings : finding list;
      (** Deduplicated; errors first, then warnings, then infos, and
          within a severity sorted by instruction address (address-less
          findings first). *)
  cfg : Cfg.t;  (** The graph the verdict was computed on. *)
}

val analyze :
  ?exit_syscalls:int list -> ?spawn_syscall:int -> Program.t -> report
(** Run the full pass: CFG + reachability, stack balance, branch-count
    invariants (branch-counted programs only), exclusive/rep-string
    inventory, and the lockset-style race analysis. Syscall numbers
    default to the kernel ABI ([0] = exit, [2] = spawn). *)

val severity_to_string : severity -> string
val verdict_to_string : verdict -> string

(** {1 Individual checks}

    The building blocks of [analyze], exported for callers that want a
    single answer (these subsume the historical {!Check} scans). *)

val exclusives : Program.t -> (int * Instr.t) list
(** All [Ldex]/[Stex] instructions (syntactic). *)

val rep_strings : Program.t -> (int * Instr.t) list
(** All [Rep_movs] instructions (syntactic). *)

val unresolved_targets : Program.t -> (int * Instr.t) list
(** Branches whose target is still symbolic or out of range
    (syntactic; includes unreachable code). *)

val reserved_register_violations : Program.t -> (int * Instr.t) list
(** Reachable non-[Cntinc] instructions that read or write the
    reserved branch-counter register — the semantic replacement for
    the old whole-array scan (violations in dead code no longer
    count). *)

val verify_branch_count : Program.t -> (int * Instr.t) list
(** Reachable branches that are not immediately preceded by [Cntinc],
    or that some jump targets directly (skipping their increment).
    Empty for any output of the {!Branch_count} pass; non-empty when a
    [Cntinc] was removed or displaced by hand. Applies to any program
    regardless of its [branch_counted] flag. *)
