lib/rcoe/vote.mli: Rcoe_kernel Rcoe_machine
