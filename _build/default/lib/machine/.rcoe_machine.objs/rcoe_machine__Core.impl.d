lib/machine/core.ml: Arch Array Bus Float Mem Page_table Printf Rcoe_isa Rcoe_util Rng
