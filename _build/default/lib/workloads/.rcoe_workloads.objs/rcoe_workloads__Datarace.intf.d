lib/workloads/datarace.mli: Rcoe_isa
