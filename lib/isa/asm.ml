type item = Branch_count.item = I of Instr.t | L of string

type t = {
  unit_name : string;
  mutable items : item list; (* reversed *)
  mutable blocks : (string * int array) list; (* reversed; label, init *)
  mutable fresh : int;
}

let create unit_name = { unit_name; items = []; blocks = []; fresh = 0 }

let emit t i = t.items <- I i :: t.items

let label t l =
  let bound = function L l' -> String.equal l l' | I _ -> false in
  if List.exists bound t.items then
    invalid_arg (Printf.sprintf "Asm.label: %s already bound" l);
  t.items <- L l :: t.items

let new_label t hint =
  t.fresh <- t.fresh + 1;
  Printf.sprintf ".%s_%d" hint t.fresh

let data t l init =
  if List.mem_assoc l t.blocks then
    invalid_arg (Printf.sprintf "Asm.data: duplicate block %s" l);
  t.blocks <- (l, init) :: t.blocks

let data_floats t l fs = data t l (Array.map Program.float_to_word fs)

let space t l n = data t l (Array.make n 0)

(* Shorthand emitters. *)

let nop t = emit t Instr.Nop
let mov t rd rs = emit t (Instr.Mov (rd, Instr.Reg rs))
let movi t rd n = emit t (Instr.Mov (rd, Instr.Imm n))
let la t rd l = emit t (Instr.La (rd, l))

let alu3 op t rd ra rb = emit t (Instr.Alu (op, rd, ra, Instr.Reg rb))
let alui op t rd ra n = emit t (Instr.Alu (op, rd, ra, Instr.Imm n))

let add t = alu3 Instr.Add t
let addi t = alui Instr.Add t
let sub t = alu3 Instr.Sub t
let subi t = alui Instr.Sub t
let mul t = alu3 Instr.Mul t
let muli t = alui Instr.Mul t
let div t = alu3 Instr.Div t
let divi t = alui Instr.Div t
let rem t = alu3 Instr.Rem t
let remi t = alui Instr.Rem t
let and_ t = alu3 Instr.And t
let andi t = alui Instr.And t
let or_ t = alu3 Instr.Or t
let ori t = alui Instr.Or t
let xor t = alu3 Instr.Xor t
let xori t = alui Instr.Xor t
let not_ t rd rs = emit t (Instr.Not (rd, rs))
let shli t = alui Instr.Shl t
let shri t = alui Instr.Shr t
let shl t = alu3 Instr.Shl t
let shr t = alu3 Instr.Shr t

let ld t rd rs off = emit t (Instr.Ld (rd, rs, off))
let st t rbase rs off = emit t (Instr.St (rbase, rs, off))
let push t r = emit t (Instr.Push r)
let pop t r = emit t (Instr.Pop r)
let b t c r o l = emit t (Instr.B (c, r, o, Instr.Lbl l))
let jmp t l = emit t (Instr.Jmp (Instr.Lbl l))
let jal t l = emit t (Instr.Jal (Instr.Lbl l))
let ret t = emit t Instr.Ret
let syscall t n = emit t (Instr.Syscall n)
let halt t = emit t Instr.Halt

(* Structured control flow. *)

let negate = function
  | Instr.Eq -> Instr.Ne
  | Instr.Ne -> Instr.Eq
  | Instr.Lt -> Instr.Ge
  | Instr.Le -> Instr.Gt
  | Instr.Gt -> Instr.Le
  | Instr.Ge -> Instr.Lt

let while_ t c r o body =
  let top = new_label t "while_top" and exit = new_label t "while_exit" in
  label t top;
  emit t (Instr.B (negate c, r, o, Instr.Lbl exit));
  body ();
  jmp t top;
  label t exit

let for_up t r ~start ~stop body =
  movi t r start;
  let top = new_label t "for_top" and exit = new_label t "for_exit" in
  label t top;
  emit t (Instr.B (Instr.Ge, r, stop, Instr.Lbl exit));
  body ();
  addi t r r 1;
  jmp t top;
  label t exit

let if_ t c r o ?else_ then_ =
  let lelse = new_label t "if_else" and lend = new_label t "if_end" in
  emit t (Instr.B (negate c, r, o, Instr.Lbl lelse));
  then_ ();
  (match else_ with
  | None -> label t lelse
  | Some e ->
      jmp t lend;
      label t lelse;
      e ());
  label t lend

(* Assembly. *)

let assemble ?entry ?(branch_count = false) ?(verify = false) t =
  let items = List.rev t.items in
  let items = if branch_count then Branch_count.insert items else items in
  (* Lay out data blocks. *)
  let blocks = List.rev t.blocks in
  let _, data =
    List.fold_left
      (fun (addr, acc) (l, init) ->
        ( addr + Array.length init,
          { Program.block_label = l; block_addr = addr; block_init = init }
          :: acc ))
      (Program.data_base, []) blocks
  in
  let data = List.rev data in
  let data_words =
    List.fold_left (fun n (_, init) -> n + Array.length init) 0 blocks
  in
  (* Assign code addresses; labels bind to the next instruction. *)
  let code_labels = Hashtbl.create 64 in
  let naddr =
    List.fold_left
      (fun addr -> function
        | I _ -> addr + 1
        | L l ->
            if Hashtbl.mem code_labels l then
              invalid_arg (Printf.sprintf "Asm.assemble: duplicate label %s" l);
            Hashtbl.replace code_labels l addr;
            addr)
      0 items
  in
  let resolve_target instr = function
    | Instr.Abs a ->
        if a < 0 || a >= naddr then
          invalid_arg
            (Printf.sprintf "Asm.assemble: target %d out of range in %s" a
               (Instr.to_string instr));
        Instr.Abs a
    | Instr.Lbl l -> (
        match Hashtbl.find_opt code_labels l with
        | Some a -> Instr.Abs a
        | None ->
            invalid_arg (Printf.sprintf "Asm.assemble: undefined label %s" l))
  in
  let data_block_addr l =
    match
      List.find_opt (fun b -> String.equal b.Program.block_label l) data
    with
    | Some b -> b.Program.block_addr
    | None ->
        invalid_arg (Printf.sprintf "Asm.assemble: undefined data block %s" l)
  in
  let resolve instr =
    match instr with
    | Instr.La (rd, l) -> Instr.Mov (rd, Instr.Imm (data_block_addr l))
    | _ -> (
        match Instr.target_of instr with
        | None -> instr
        | Some tgt -> Instr.with_target instr (resolve_target instr tgt))
  in
  let code =
    items
    |> List.filter_map (function I i -> Some (resolve i) | L _ -> None)
    |> Array.of_list
  in
  let entry_addr =
    match entry with
    | None -> 0
    | Some l -> (
        match Hashtbl.find_opt code_labels l with
        | Some a -> a
        | None ->
            invalid_arg (Printf.sprintf "Asm.assemble: undefined entry %s" l))
  in
  let program =
    {
      Program.name = t.unit_name;
      code;
      data;
      data_words;
      entry = entry_addr;
      code_labels = Hashtbl.fold (fun l a acc -> (l, a) :: acc) code_labels [];
      branch_counted = branch_count;
    }
  in
  if branch_count then begin
    match Check.reserved_register_violations program with
    | [] -> ()
    | (addr, instr) :: _ ->
        invalid_arg
          (Printf.sprintf
             "Asm.assemble: %s uses reserved branch-counter register at %d: %s"
             t.unit_name addr (Instr.to_string instr))
  end;
  if verify then begin
    let report = Lint.analyze program in
    if report.Lint.verdict = Lint.Rejected then begin
      let detail =
        match
          List.find_opt
            (fun f -> f.Lint.f_severity = Lint.Error)
            report.Lint.findings
        with
        | Some f -> (
            match f.Lint.f_addr with
            | Some a -> Printf.sprintf "%s (at %d)" f.Lint.f_message a
            | None -> f.Lint.f_message)
        | None -> "rejected by lint"
      in
      invalid_arg
        (Printf.sprintf "Asm.assemble: %s rejected by the static analyzer: %s"
           t.unit_name detail)
    end
  end;
  program
