(** Architecture profiles.

    The paper evaluates on two machines whose differences drive the whole
    design space:

    - x86 (Skylake i7-6700, 3.4 GHz): the PMU counts user-mode retired
      branches precisely (branch-retired minus far-branches), breakpoints
      have a resume flag (one debug exception per hit), page tables have a
      spare bit for marking DMA buffers, and VMs are supported.
    - Arm (i.MX6 Cortex-A9, 0.8–1 GHz): no precise branch PMU event, so
      CC-RCoE needs compiler-assisted counting on a reserved register;
      no resume flag, so every breakpoint costs two debug exceptions; no
      spare page-table bit, so error masking under CC is unsupported; a
      single core cannot saturate the memory bus.

    A {!profile} packages these differences plus the cycle-cost model used
    by the simulator. Costs are in simulated cycles; they are calibrated
    to reproduce the paper's overhead *shapes*, not its absolute times. *)

type t = X86 | Arm

type count_mode =
  | Hardware  (** PMU counts branches; zero per-branch overhead. *)
  | Compiler_assisted
      (** Programs must be assembled with the {!Branch_count} pass;
          the counter lives in the reserved register and is
          context-switched with the thread. *)

type profile = {
  arch : t;
  freq_mhz : int;  (** Converts cycles to microseconds in reports. *)
  syscall_cost : int;  (** Kernel entry + exit. *)
  fault_cost : int;
  irq_cost : int;  (** Interrupt entry + acknowledgment. *)
  ipi_latency : int;  (** Cycles for an IPI to reach another core. *)
  debug_exception_cost : int;
      (** Per breakpoint hit; the Arm profile pays roughly double
          (no resume flag: target breakpoint + single-step exception). *)
  breakpoint_set_cost : int;  (** Programming the debug registers. *)
  vm_exit_cost : int;  (** Added to every kernel crossing in VM mode. *)
  rep_walk_cost : int;
      (** Software walk of guest page tables needed to recognise a
          rep-string instruction at a prospective breakpoint in a VM. *)
  mem_extra_cycles : int;  (** Extra cycles per data-memory access. *)
  bus_rate : float;  (** Memory-bus word-transfers per cycle. *)
  jitter_p : float;  (** Per-instruction probability of a stall. *)
  jitter_cycles : int;  (** Stall length (cache/TLB-miss model). *)
  count_mode : count_mode;
  has_resume_flag : bool;
  pt_spare_bit : bool;  (** Spare PTE bit available for DMA marking. *)
}

val x86 : profile
val arm : profile

val profile_of : t -> profile
val to_string : t -> string

val cycles_to_us : profile -> int -> float
(** [cycles_to_us p c] converts simulated cycles to microseconds at the
    profile's clock frequency. *)
