(** The replay engine's input log: every host-boundary event the
    primary absorbed during a chunk, cycle-stamped, in arrival order.

    Replay-based detection (RepTFD; see {!Config.detection}) only works
    if a chunk's execution is a pure function of its start state plus
    its external inputs. Inside the simulator that holds by
    construction — ticks, IRQs, DMA delivery and MMIO are all
    deterministic consequences of machine state — so the only genuine
    inputs are the host's [Netdev.inject] calls (client packets and
    retransmissions). Each log entry records the primary's cycle at the
    moment of the call plus inject's own arguments; a checker replays a
    chunk by stepping a shadow machine to each entry's cycle and
    re-issuing the inject against the shadow device, which reproduces
    the primary's device timeline bit-for-bit (delivery cycles
    included, because the shadow's [Netdev.next_event] then sees the
    same queue).

    Fault-injector flips ([Mem.flip_bit]) are deliberately {e not}
    inputs: the checker replays the fault-free execution, which is
    exactly what makes the end-of-chunk comparison detect the flip. *)

type event = {
  ev_at : int;
      (** Primary cycle when the host issued the inject (the machine is
          quiescent between [run] calls, so this is exact). *)
  ev_deliver_at : int;  (** Inject's [~now] argument (arrival cycle). *)
  ev_payload : int array;  (** Copied at record time. *)
}

type t

val create : unit -> t

val record : t -> at:int -> deliver_at:int -> int array -> unit
(** Append one event (copies the payload). *)

val cut : t -> event list
(** Drain and return everything recorded since the previous [cut], in
    record order — the input log of the chunk just closed. *)

val pending : t -> int
(** Events recorded since the last {!cut}. *)

val clear : t -> unit
(** Drop all recorded events (pipeline reset after a rollback). *)

val replay_onto :
  Rcoe_machine.Netdev.t -> event list -> upto:int -> event list
(** [replay_onto net events ~upto] applies every event with
    [ev_at <= upto] to [net] (in order) and returns the rest — the
    checker calls this each time its shadow machine reaches the next
    event boundary. *)

val next_at : event list -> int option
(** The cycle stamp of the first pending event, if any. *)
