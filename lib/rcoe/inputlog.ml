type event = { ev_at : int; ev_deliver_at : int; ev_payload : int array }

type t = { mutable events : event list (* newest first *) }

let create () = { events = [] }

let record t ~at ~deliver_at payload =
  t.events <-
    { ev_at = at; ev_deliver_at = deliver_at; ev_payload = Array.copy payload }
    :: t.events

let cut t =
  let out = List.rev t.events in
  t.events <- [];
  out

let pending t = List.length t.events

let clear t = t.events <- []

let replay_onto net events ~upto =
  let rec go = function
    | ev :: rest when ev.ev_at <= upto ->
        Rcoe_machine.Netdev.inject net ~now:ev.ev_deliver_at ev.ev_payload;
        go rest
    | rest -> rest
  in
  go events

let next_at = function [] -> None | ev :: _ -> Some ev.ev_at
