(* End-to-end smoke tests: a small program running under every
   replication mode on both architecture profiles. *)

open Rcoe_isa
open Rcoe_core

(* Building the entry address for spawn requires knowing the label's code
   address; assemble twice: once to learn it, once for real. *)
let make ~branch_count =
  let build worker_addr =
    let a = Asm.create "smoke" in
    let open Reg in
    Asm.space a "cell" 4;
    Asm.label a "worker";
    Asm.la a R4 "cell";
    Asm.mov a R1 R0;
    Asm.mov a R0 R4;
    Asm.movi a R2 0;
    Asm.movi a R3 0;
    Asm.syscall a Rcoe_kernel.Syscall.sys_atomic;
    Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
    Asm.label a "main";
    Asm.movi a R5 0;
    Asm.for_up a R6 ~start:1 ~stop:(Instr.Imm 60_001) (fun () ->
        Asm.add a R5 R5 R6);
    Asm.la a R4 "cell";
    Asm.st a R4 R5 1;
    Asm.movi a R0 worker_addr;
    Asm.movi a R1 42;
    Asm.syscall a Rcoe_kernel.Syscall.sys_spawn;
    Asm.mov a R7 R0;
    Asm.movi a R0 worker_addr;
    Asm.movi a R1 58;
    Asm.syscall a Rcoe_kernel.Syscall.sys_spawn;
    Asm.mov a R8 R0;
    Asm.mov a R0 R7;
    Asm.syscall a Rcoe_kernel.Syscall.sys_join;
    Asm.mov a R0 R8;
    Asm.syscall a Rcoe_kernel.Syscall.sys_join;
    (* Publish the cell into the signature. *)
    Asm.la a R0 "cell";
    Asm.movi a R1 2;
    Asm.syscall a Rcoe_kernel.Syscall.sys_ft_add_trace;
    Asm.movi a R0 (Char.code 'o');
    Asm.syscall a Rcoe_kernel.Syscall.sys_putchar;
    Asm.movi a R0 (Char.code 'k');
    Asm.syscall a Rcoe_kernel.Syscall.sys_putchar;
    Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
    Asm.assemble ~entry:"main" ~branch_count a
  in
  let probe = build 0 in
  build (Program.label_addr probe "worker")

let run_config cfg =
  let profile = Rcoe_machine.Arch.profile_of cfg.Config.arch in
  let branch_count =
    profile.Rcoe_machine.Arch.count_mode = Rcoe_machine.Arch.Compiler_assisted
  in
  let program = make ~branch_count in
  let sys = System.create ~config:cfg ~program in
  System.run sys ~max_cycles:20_000_000;
  sys

let check_finished name sys =
  (match System.halted sys with
  | Some r ->
      Alcotest.failf "%s halted: %s" name (System.halt_reason_to_string r)
  | None -> ());
  Alcotest.(check bool) (name ^ " finished") true (System.finished sys);
  Alcotest.(check string) (name ^ " output") "ok" (System.output sys 0)

let cfg ~mode ~n ~arch =
  {
    Config.default with
    Config.mode;
    nreplicas = n;
    arch;
    tick_interval = 20_000;
    barrier_timeout = 200_000;
    user_words = 64 * 1024;
  }

let test_base_x86 () =
  check_finished "base-x86" (run_config (cfg ~mode:Config.Base ~n:1 ~arch:Rcoe_machine.Arch.X86))

let test_base_arm () =
  check_finished "base-arm" (run_config (cfg ~mode:Config.Base ~n:1 ~arch:Rcoe_machine.Arch.Arm))

let test_lc_dmr_x86 () =
  let sys = run_config (cfg ~mode:Config.LC ~n:2 ~arch:Rcoe_machine.Arch.X86) in
  check_finished "lc-d-x86" sys;
  Alcotest.(check string) "replica outputs equal" (System.output sys 0)
    (System.output sys 1)

let test_lc_tmr_x86 () =
  check_finished "lc-t-x86" (run_config (cfg ~mode:Config.LC ~n:3 ~arch:Rcoe_machine.Arch.X86))

let test_lc_dmr_arm () =
  check_finished "lc-d-arm" (run_config (cfg ~mode:Config.LC ~n:2 ~arch:Rcoe_machine.Arch.Arm))

let test_cc_dmr_x86 () =
  let sys = run_config (cfg ~mode:Config.CC ~n:2 ~arch:Rcoe_machine.Arch.X86) in
  check_finished "cc-d-x86" sys

let test_cc_tmr_x86 () =
  check_finished "cc-t-x86" (run_config (cfg ~mode:Config.CC ~n:3 ~arch:Rcoe_machine.Arch.X86))

let test_cc_dmr_arm () =
  check_finished "cc-d-arm" (run_config (cfg ~mode:Config.CC ~n:2 ~arch:Rcoe_machine.Arch.Arm))

let test_signatures_used () =
  let sys = run_config (cfg ~mode:Config.LC ~n:2 ~arch:Rcoe_machine.Arch.X86) in
  let st = System.stats sys in
  Alcotest.(check bool) "some rounds happened" true (st.System.rounds > 0);
  Alcotest.(check bool) "votes happened" true (st.System.votes > 0);
  Alcotest.(check bool) "ft rendezvous happened" true (st.System.ft_rounds > 0)

let test_cc_bp_machinery () =
  let sys = run_config (cfg ~mode:Config.CC ~n:2 ~arch:Rcoe_machine.Arch.X86) in
  let st = System.stats sys in
  Alcotest.(check bool) "rounds happened" true (st.System.rounds > 0);
  Alcotest.(check bool) "ticks delivered" true (st.System.ticks_delivered > 0)

let suite =
  [
    Alcotest.test_case "base x86 finishes" `Quick test_base_x86;
    Alcotest.test_case "base arm finishes" `Quick test_base_arm;
    Alcotest.test_case "LC DMR x86" `Quick test_lc_dmr_x86;
    Alcotest.test_case "LC TMR x86" `Quick test_lc_tmr_x86;
    Alcotest.test_case "LC DMR arm" `Quick test_lc_dmr_arm;
    Alcotest.test_case "CC DMR x86" `Quick test_cc_dmr_x86;
    Alcotest.test_case "CC TMR x86" `Quick test_cc_tmr_x86;
    Alcotest.test_case "CC DMR arm (compiler-assisted)" `Quick test_cc_dmr_arm;
    Alcotest.test_case "sync rounds and votes happen" `Quick test_signatures_used;
    Alcotest.test_case "CC rounds complete" `Quick test_cc_bp_machinery;
  ]
