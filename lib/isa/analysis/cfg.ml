type edge_kind = Fall | Jump | Call | Retsite | Indirect

type issue = Out_of_range of int | Symbolic of string | Off_end

type block = {
  id : int;
  first : int;
  last : int;
  mutable succs : (int * edge_kind) list;
  mutable preds : (int * edge_kind) list;
}

type t = {
  program : Program.t;
  blocks : block array;
  block_of_addr : int array;
  insn_succs : (edge_kind * int) list array;
  issues : (int * issue) list;
  roots : (int * int) list;
  unknown_spawns : int list;
  reachable : bool array;
}

let issue_to_string = function
  | Out_of_range a -> Printf.sprintf "branch target %d outside code" a
  | Symbolic l -> Printf.sprintf "unresolved symbolic target %s" l
  | Off_end -> "execution falls off the end of the code"

let default_exit_syscalls = [ 0 ] (* Sys_exit *)
let default_spawn_syscall = 2 (* Sys_spawn *)

(* Instruction-level successors plus the list of unfollowable targets. *)
let compute_succs (p : Program.t) ~exit_syscalls =
  let code = p.Program.code in
  let n = Array.length code in
  let issues = ref [] in
  let label_addrs =
    List.sort_uniq compare (List.map snd p.Program.code_labels)
    |> List.filter (fun a -> a >= 0 && a < n)
  in
  let succs = Array.make n [] in
  for i = 0 to n - 1 do
    let add k a = succs.(i) <- (k, a) :: succs.(i) in
    let target kind = function
      | Instr.Abs a ->
          if a < 0 || a >= n then issues := (i, Out_of_range a) :: !issues
          else add kind a
      | Instr.Lbl l -> issues := (i, Symbolic l) :: !issues
    in
    let fall kind =
      if i + 1 >= n then issues := (i, Off_end) :: !issues
      else add kind (i + 1)
    in
    (match code.(i) with
    | Instr.Ret | Instr.Halt -> ()
    | Instr.Syscall k when List.mem k exit_syscalls -> ()
    | Instr.Jmp tgt -> target Jump tgt
    | Instr.Jal tgt ->
        target Call tgt;
        fall Retsite
    | Instr.B (_, _, _, tgt) | Instr.Fb (_, _, _, tgt) ->
        target Jump tgt;
        fall Fall
    | Instr.Jr _ -> List.iter (fun a -> add Indirect a) label_addrs
    | _ -> fall Fall);
    succs.(i) <- List.rev succs.(i)
  done;
  (succs, List.rev !issues)

let bfs n succs starts =
  let seen = Array.make n false in
  let q = Queue.create () in
  List.iter
    (fun a ->
      if a >= 0 && a < n && not seen.(a) then begin
        seen.(a) <- true;
        Queue.add a q
      end)
    starts;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun (_, j) ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Queue.add j q
        end)
      succs.(i)
  done;
  seen

(* Recover the spawn entry address: scan backwards from the spawn syscall
   for [mov r0, #entry], stopping at branches or any other write to r0. *)
let spawn_target code i =
  let rec scan j =
    if j < 0 then None
    else
      match code.(j) with
      | Instr.Mov (r, Instr.Imm e) when Reg.equal r Reg.R0 -> Some e
      | ins ->
          if
            Instr.is_branch ins
            || List.exists (Reg.equal Reg.R0) (Instr.defs ins)
          then None
          else scan (j - 1)
  in
  scan (i - 1)

let insn_in_cycle n succs i =
  if i < 0 || i >= n then false
  else
    let starts = List.map snd succs.(i) in
    let seen = bfs n succs starts in
    seen.(i)

(* Root discovery is a fixpoint: spawn sites only count once they are
   reachable from the current root set, and a newly discovered root can
   make further spawn sites reachable. Multiplicities saturate at 2. *)
let compute_roots (p : Program.t) succs ~spawn_syscall =
  let code = p.Program.code in
  let n = Array.length code in
  let label_addrs =
    List.sort_uniq compare (List.map snd p.Program.code_labels)
    |> List.filter (fun a -> a >= 0 && a < n)
  in
  let entry_roots =
    if n = 0 then []
    else if p.Program.entry >= 0 && p.Program.entry < n then
      [ (p.Program.entry, 1) ]
    else []
  in
  let sat m = min m 2 in
  let rec fix roots =
    let reach = bfs n succs (List.map fst roots) in
    let spawn_mults = Hashtbl.create 8 in
    let unknown = ref [] in
    for i = 0 to n - 1 do
      if reach.(i) then
        match code.(i) with
        | Instr.Syscall k when k = spawn_syscall -> (
            match spawn_target code i with
            | Some e when e >= 0 && e < n ->
                let m = if insn_in_cycle n succs i then 2 else 1 in
                let prev =
                  Option.value (Hashtbl.find_opt spawn_mults e) ~default:0
                in
                Hashtbl.replace spawn_mults e (sat (prev + m))
            | Some _ | None -> unknown := i :: !unknown)
        | _ -> ()
    done;
    if !unknown <> [] then
      (* Spawn target unknown: any label could be a thread entry. *)
      List.iter
        (fun a ->
          let prev =
            Option.value (Hashtbl.find_opt spawn_mults a) ~default:0
          in
          Hashtbl.replace spawn_mults a (sat (prev + 2)))
        label_addrs;
    let roots' =
      let spawned =
        Hashtbl.fold (fun a m acc -> (a, m) :: acc) spawn_mults []
      in
      let merged = Hashtbl.create 8 in
      List.iter
        (fun (a, m) ->
          let prev = Option.value (Hashtbl.find_opt merged a) ~default:0 in
          Hashtbl.replace merged a (sat (prev + m)))
        (entry_roots @ spawned);
      Hashtbl.fold (fun a m acc -> (a, m) :: acc) merged []
      |> List.sort compare
    in
    if roots' = roots then (roots, List.rev !unknown) else fix roots'
  in
  fix (List.sort compare entry_roots)

let compute_blocks (p : Program.t) succs roots =
  let code = p.Program.code in
  let n = Array.length code in
  if n = 0 then ([||], [||])
  else begin
    let leader = Array.make n false in
    leader.(0) <- true;
    List.iter (fun (a, _) -> leader.(a) <- true) roots;
    for i = 0 to n - 1 do
      let ins = code.(i) in
      let terminal =
        match succs.(i) with
        | [] -> true
        | [ (Fall, j) ] when j = i + 1 -> Instr.is_branch ins
        | _ -> true
      in
      if terminal && i + 1 < n then leader.(i + 1) <- true;
      List.iter (fun (_, j) -> leader.(j) <- true) succs.(i)
    done;
    let block_of_addr = Array.make n (-1) in
    let blocks = ref [] in
    let nb = ref 0 in
    let i = ref 0 in
    while !i < n do
      let first = !i in
      incr i;
      while !i < n && not leader.(!i) do
        incr i
      done;
      let b =
        { id = !nb; first; last = !i - 1; succs = []; preds = [] }
      in
      for a = first to !i - 1 do
        block_of_addr.(a) <- !nb
      done;
      blocks := b :: !blocks;
      incr nb
    done;
    let blocks = Array.of_list (List.rev !blocks) in
    Array.iter
      (fun b ->
        b.succs <-
          List.map (fun (k, a) -> (block_of_addr.(a), k)) succs.(b.last))
      blocks;
    Array.iter
      (fun b ->
        List.iter
          (fun (sid, k) ->
            blocks.(sid).preds <- (b.id, k) :: blocks.(sid).preds)
          b.succs)
      blocks;
    Array.iter (fun b -> b.preds <- List.rev b.preds) blocks;
    (blocks, block_of_addr)
  end

let build ?(exit_syscalls = default_exit_syscalls)
    ?(spawn_syscall = default_spawn_syscall) (p : Program.t) =
  let n = Array.length p.Program.code in
  let insn_succs, issues = compute_succs p ~exit_syscalls in
  let roots, unknown_spawns = compute_roots p insn_succs ~spawn_syscall in
  let reachable = bfs n insn_succs (List.map fst roots) in
  let blocks, block_of_addr = compute_blocks p insn_succs roots in
  {
    program = p;
    blocks;
    block_of_addr;
    insn_succs;
    issues;
    roots;
    unknown_spawns;
    reachable;
  }

let reachable t a =
  a >= 0 && a < Array.length t.reachable && t.reachable.(a)

let reachable_from t a =
  bfs (Array.length t.reachable) t.insn_succs [ a ]

let in_cycle t a =
  insn_in_cycle (Array.length t.reachable) t.insn_succs a

let dead_code t =
  let n = Array.length t.reachable in
  let runs = ref [] in
  let start = ref (-1) in
  for i = 0 to n - 1 do
    if not t.reachable.(i) then begin
      if !start < 0 then start := i
    end
    else if !start >= 0 then begin
      runs := (!start, i - 1) :: !runs;
      start := -1
    end
  done;
  if !start >= 0 then runs := (!start, n - 1) :: !runs;
  List.rev !runs
