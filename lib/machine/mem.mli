(** Physical memory.

    One flat, word-addressed array shared by all replicas, like the real
    machine: the kernel partitions it between replicas and a small shared
    region, and fault injection flips bits anywhere in it. Out-of-range
    accesses raise {!Abort}, which the core/kernel turn into a (kernel)
    data abort — this is how a corrupted page-table entry whose frame
    number decodes to garbage manifests, as in the paper's Table VII
    "kernel exceptions" row.

    {b Write tracking.} Memory also keeps one dirty flag per
    {!page_size}-word physical page, set by every mutating operation
    ([write], [write_block], [blit], [fill] and, through [write],
    [flip_bit]). The checkpoint layer reads the flags with
    {!snapshot_dirty} at quiescent points to capture O(dirty) delta
    snapshots instead of full images, and resets them with
    {!clear_dirty} — the software analogue of the paging-hardware
    dirty bit the paper's platforms expose. Reads never touch the
    flags. Under the parallel engine each worker domain writes only its
    own (page-aligned) partition, so distinct domains touch distinct
    flag entries, and the flags are only read while the workers are
    parked at a barrier. *)

exception Abort of int
(** Physical address out of range. The payload is the {e first}
    out-of-range address of the offending access: for a block
    operation whose base is in range but whose end is not, that is the
    first word past the end of memory, not the base. *)

val page_shift : int
(** 8: dirty tracking works on 256-word pages (matches
    [Page_table.page_shift]; defined here because [Page_table] itself
    stores PTEs in a [Mem.t]). *)

val page_size : int

type t

val create : int -> t
(** [create size] is zeroed memory of [size] words, all pages clean. *)

val size : t -> int

val read : t -> int -> int
(** Raises {!Abort}. *)

val write : t -> int -> int -> unit
(** Raises {!Abort}. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Word copy within physical memory; raises {!Abort} on any
    out-of-range word. *)

val read_block : t -> int -> int -> int array
val write_block : t -> int -> int array -> unit

val flip_bit : t -> addr:int -> bit:int -> unit
(** Fault injection: XOR bit [bit] (0–61) of the word at [addr].
    Raises {!Abort} if out of range, [Invalid_argument] on a bad bit.
    Marks the page dirty (the flip is a real write and must survive a
    delta capture). *)

val fill : t -> addr:int -> len:int -> int -> unit

val page_is_dirty : t -> addr:int -> bool
(** Has the page containing physical address [addr] been written since
    the last {!clear_dirty}? *)

val snapshot_dirty : t -> addr:int -> len:int -> int list
(** Base addresses (ascending, page-aligned) of the dirty pages
    intersecting [[addr, addr+len)]. [len <= 0] is the empty list;
    otherwise the range must lie within memory ([Invalid_argument]).
    Does not clear the flags. *)

val clear_dirty : t -> unit
(** Mark every page clean. Call only from checkpoint capture/restore at
    a quiescent point: clearing concurrently with replica execution
    would lose writes from the next delta. *)
